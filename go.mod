module github.com/fastmath/pumi-go

go 1.23
