// Package pumi is a Go implementation of PUMI, the Parallel Unstructured
// Mesh Infrastructure, together with ParMA, partitioning using mesh
// adjacencies (Seol, Smith, Ibanez, Shephard — SC 2012).
//
// The package is a facade over the library's subsystems, re-exporting
// the stable API surface:
//
//   - geometric models (gmi): analytic non-manifold boundary
//     representations with adjacency and shape interrogation;
//   - the mesh (mesh): a complete topological representation with O(1)
//     adjacencies, classification, tags, sets and iterators;
//   - fields (field): nodal tensor data with Lagrange shapes, global
//     numbering and synchronization;
//   - the distributed mesh (partition): parts, remote copies, the
//     partition model, migration, ghosting and multiple parts per
//     process, running on the pcu message-passing substrate;
//   - partitioners (zpart): RCB/RIB and multilevel graph/hypergraph;
//   - ParMA (parma): multi-criteria diffusive partition improvement and
//     heavy part splitting;
//   - adaptation (adapt): size-field-driven refinement and coarsening
//     with solution transfer.
//
// A minimal parallel workflow:
//
//	model := pumi.Box(1, 1, 1)
//	err := pumi.Run(8, func(ctx *pumi.Ctx) error {
//		var serial *pumi.Mesh
//		if ctx.Rank() == 0 {
//			serial = pumi.BoxMesh(model, 16, 16, 16)
//		}
//		dm := pumi.Adopt(ctx, model.Model, 3, serial, 1)
//		pumi.PartitionRCB(dm, serial)
//		pri, _ := pumi.ParsePriority("Vtx>Rgn")
//		pumi.Balance(dm, pri, pumi.DefaultBalanceConfig())
//		return pumi.CheckDistributed(dm)
//	})
package pumi

import (
	"github.com/fastmath/pumi-go/internal/adapt"
	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/field"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// Geometry and linear algebra.
type (
	// Vec is a point or vector in R^3.
	Vec = vec.V
	// Model is a non-manifold boundary-representation geometric model.
	Model = gmi.Model
	// ModelRef names a model entity (the classification target).
	ModelRef = gmi.Ref
	// BoxModel is the analytic box domain.
	BoxModel = gmi.BoxModel
	// RectModel is the analytic 2D rectangle domain.
	RectModel = gmi.RectModel
	// VesselModel is the bent-tube AAA surrogate domain.
	VesselModel = gmi.VesselModel
)

// Mesh types.
type (
	// Mesh is one mesh part: the complete topological representation.
	Mesh = mesh.Mesh
	// Ent is a mesh entity handle M^d_i.
	Ent = mesh.Ent
	// EntType enumerates topological entity types.
	EntType = mesh.Type
)

// Entity types.
const (
	Vertex  = mesh.Vertex
	Edge    = mesh.Edge
	Tri     = mesh.Tri
	Quad    = mesh.Quad
	Tet     = mesh.Tet
	Hex     = mesh.Hex
	Prism   = mesh.Prism
	Pyramid = mesh.Pyramid
)

// Parallel runtime.
type (
	// Ctx is one rank's handle on the parallel runtime.
	Ctx = pcu.Ctx
	// Topology describes the node/core machine layout.
	Topology = hwtopo.Topology
	// DMesh is a distributed mesh: this rank's parts plus global layout.
	DMesh = partition.DMesh
	// Part is one part of a distributed mesh with its global ids.
	Part = partition.Part
	// Plan maps elements to destination parts for migration.
	Plan = partition.Plan
	// PtnModel is the partition model (residence-set classes).
	PtnModel = partition.PtnModel
)

// Fields.
type (
	// Field is nodal tensor data over a mesh part.
	Field = field.Field
	// FieldShape selects the nodal distribution (Linear, Quadratic).
	FieldShape = field.Shape
)

// Field shapes.
const (
	Linear    = field.Linear
	Quadratic = field.Quadratic
)

// ParMA.
type (
	// Priority is a ParMA entity-type priority list (e.g. Vtx>Rgn).
	Priority = parma.Priority
	// BalanceConfig controls ParMA improvement.
	BalanceConfig = parma.Config
	// BalanceResult reports a Balance run.
	BalanceResult = parma.Result
)

// SizeField prescribes desired edge lengths for adaptation.
type SizeField = adapt.SizeField

// TagKind identifies the value type of an entity tag.
type TagKind = ds.TagKind

// Tag kinds.
const (
	TagInt        = ds.TagInt
	TagFloat      = ds.TagFloat
	TagIntSlice   = ds.TagIntSlice
	TagFloatSlice = ds.TagFloatSlice
	TagBytes      = ds.TagBytes
)

// GeomInput is the element-point view geometric partitioners consume.
type GeomInput = zpart.GeomInput

// BoundaryTraffic classifies part-boundary duplication by architecture.
type BoundaryTraffic = partition.BoundaryTraffic

// Model constructors.
var (
	// Box builds the [0,lx]x[0,ly]x[0,lz] box model.
	Box = gmi.Box
	// Rect builds the 2D rectangle model.
	Rect = gmi.Rect
	// Vessel builds the AAA-surrogate bent-tube model.
	Vessel = gmi.Vessel
	// Wing builds the wing-box surrogate model.
	Wing = gmi.Wing
)

// Mesh generation.
var (
	// NewMesh creates an empty mesh part of the given dimension.
	NewMesh = mesh.New
	// BoxMesh generates a classified structured tet mesh of a box.
	BoxMesh = meshgen.Box3D
	// RectMesh generates a classified structured tri mesh of a rectangle.
	RectMesh = meshgen.Rect2D
	// VesselMesh generates a classified tet mesh of the vessel model.
	VesselMesh = meshgen.Vessel3D
)

// Mesh I/O.
var (
	// SaveMesh writes a mesh to a file.
	SaveMesh = meshio.SaveFile
	// LoadMesh reads a mesh from a file.
	LoadMesh = meshio.LoadFile
)

// Parallel runtime entry points.
var (
	// Run executes a function on n ranks of a single node.
	Run = pcu.Run
	// RunOn executes a function on n ranks of a given machine topology.
	RunOn = pcu.RunOn
	// Cluster builds a synthetic multi-node topology.
	Cluster = hwtopo.Cluster
	// DetectTopology returns the host machine's topology.
	DetectTopology = hwtopo.Detect
	// Collective reductions over all ranks.
	SumInt64   = pcu.SumInt64
	SumFloat64 = pcu.SumFloat64
	MaxFloat64 = pcu.MaxFloat64
	MaxInt64   = pcu.MaxInt64
)

// Distributed mesh services.
var (
	// Adopt wraps a serial mesh (rank 0) into a distributed mesh.
	Adopt = partition.Adopt
	// NewDMesh creates an empty distributed mesh.
	NewDMesh = partition.New
	// Migrate moves elements between parts per the plans.
	Migrate = partition.Migrate
	// PlansFromAssignment turns a rank-0 global assignment into plans.
	PlansFromAssignment = partition.PlansFromAssignment
	// Ghost builds N layers of read-only ghost elements.
	Ghost = partition.Ghost
	// RemoveGhosts deletes all ghost entities.
	RemoveGhosts = partition.RemoveGhosts
	// SyncGhostFloatTag pushes owners' element tag values to ghosts.
	SyncGhostFloatTag = partition.SyncGhostFloatTag
	// BuildPtnModel constructs the partition model.
	BuildPtnModel = partition.BuildPtnModel
	// CheckDistributed verifies distributed mesh invariants.
	CheckDistributed = partition.CheckDistributed
	// GatherCounts gathers per-part entity counts of one dimension.
	GatherCounts = partition.GatherCounts
	// EntityImbalance returns (mean, max/mean) for one dimension.
	EntityImbalance = partition.EntityImbalance
	// GlobalCount counts distinct entities across all parts.
	GlobalCount = partition.GlobalCount
	// GatherBoundaryTraffic sums on-node vs off-node boundary sharing.
	GatherBoundaryTraffic = partition.GatherBoundaryTraffic
)

// Partitioners.
var (
	// Centroids extracts element points for geometric partitioning.
	Centroids = zpart.Centroids
	// RCB is recursive coordinate bisection.
	RCB = zpart.RCB
	// RIB is recursive inertial bisection.
	RIB = zpart.RIB
	// DualGraph extracts the element face-adjacency graph.
	DualGraph = zpart.DualGraph
	// MLGraph is the multilevel graph partitioner.
	MLGraph = zpart.MLGraph
	// ElementHypergraph extracts the element hypergraph.
	ElementHypergraph = zpart.ElementHypergraph
	// PHG is the multilevel hypergraph partitioner.
	PHG = zpart.PHG
)

// ParMA operations.
var (
	// ParsePriority parses a priority list like "Vtx=Edge>Rgn".
	ParsePriority = parma.ParsePriority
	// Balance runs multi-criteria partition improvement.
	Balance = parma.Balance
	// HeavyPartSplit merges light parts and splits heavy ones.
	HeavyPartSplit = parma.HeavyPartSplit
	// DefaultBalanceConfig is the paper's 5% tolerance setup.
	DefaultBalanceConfig = parma.DefaultConfig
)

// Fields.
var (
	// NewField creates a nodal field on a mesh part.
	NewField = field.New
	// FindField looks up a field by name.
	FindField = field.Find
	// SyncField pushes owned shared node values to copies.
	SyncField = field.Sync
	// AccumulateShared folds copy contributions into owner nodes.
	AccumulateShared = field.AccumulateShared
	// NumberField assigns global DOF ids across parts.
	NumberField = field.Number
)

// Adaptation.
var (
	// UniformSize is a constant size field.
	UniformSize = adapt.Uniform
	// RefineMesh splits long edges of one part.
	RefineMesh = adapt.Refine
	// CoarsenMesh collapses short edges of one part.
	CoarsenMesh = adapt.Coarsen
	// AdaptParallel adapts a distributed mesh to a size field.
	AdaptParallel = adapt.Parallel
	// NewFieldTransfer carries linear fields through adaptation.
	NewFieldTransfer = adapt.NewFieldTransfer
	// AdaptMesh is the serial refine+coarsen driver for one part.
	AdaptMesh = adapt.Adapt
	// PredictedElements estimates an element's post-adaptation count.
	PredictedElements = adapt.PredictedElements
)

// Mesh-to-mesh solution transfer and point location.
var (
	// Locate finds the element containing a point by mesh walking.
	Locate = field.Locate
	// TransferField re-samples a linear field between meshes.
	TransferField = field.Transfer
	// BalanceWeights runs ParMA diffusion on application weights.
	BalanceWeights = parma.BalanceWeights
)

// PartitionRCB distributes a serial mesh held by rank 0 of dm across
// all parts with recursive coordinate bisection — the common first step
// of every workflow in this library. serial must be the mesh passed to
// Adopt (nil on other ranks).
func PartitionRCB(dm *DMesh, serial *Mesh) {
	var plan map[Ent]int32
	if dm.Ctx.Rank() == 0 && serial != nil {
		in, els := Centroids(serial)
		assign := RCB(in, dm.NParts())
		plan = map[Ent]int32{}
		for i, el := range els {
			plan[el] = assign[i]
		}
	}
	Migrate(dm, PlansFromAssignment(dm, plan))
}

// adaptDefaults returns the default adaptation options (exported via
// AdaptOptions for callers who want to tune them).
func adaptDefaults() AdaptOptions { return adapt.DefaultOptions() }

// AdaptOptions configures distributed adaptation.
type AdaptOptions = adapt.Options

// DefaultAdaptOptions returns the default adaptation options.
func DefaultAdaptOptions() AdaptOptions { return adapt.DefaultOptions() }
