package pumi

// The benchmark suite regenerates the paper's evaluation under `go test
// -bench`: one benchmark per table and figure (see EXPERIMENTS.md for
// the mapping), plus ablation benchmarks for the design choices called
// out in DESIGN.md. Quality numbers (imbalances, boundary sizes) are
// attached to the timing output via b.ReportMetric, so a single -bench
// run reports both the paper's time and balance columns.

import (
	"math"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/adapt"
	"github.com/fastmath/pumi-go/internal/experiments"
	"github.com/fastmath/pumi-go/internal/field"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// benchVessel caches the serial AAA-surrogate mesh generation.
func benchVessel(b *testing.B, ns, n int) (*gmi.VesselModel, *mesh.Mesh) {
	b.Helper()
	model := gmi.Vessel(10, 1, 0.6, 1.2)
	return model, meshgen.Vessel3D(model, ns, n)
}

// --- Table I-III: partitioning methods on the AAA surrogate ---

// BenchmarkTable3_T0_Hypergraph times the global hypergraph partitioner
// (the paper's T0, Zoltan PHG: 249 s at full scale).
func BenchmarkTable3_T0_Hypergraph(b *testing.B) {
	model, serial := benchVessel(b, 20, 8)
	_ = model
	h, _ := zpart.ElementHypergraph(serial, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign := zpart.PHG(h, 16)
		if i == 0 {
			sizes := make([]int64, 16)
			for _, p := range assign {
				sizes[p]++
			}
			_, imb := partition.Imbalance(sizes)
			b.ReportMetric((imb-1)*100, "rgnImb%")
		}
	}
}

// benchParMATest distributes the T0 partition and times ParMA balancing
// with the given priority (the paper's T1-T4: 5.5-8.8 s at full scale,
// 28-45x faster than T0).
func benchParMATest(b *testing.B, priority string) {
	model, serial := benchVessel(b, 20, 8)
	h, els := zpart.ElementHypergraph(serial, 0)
	assign := zpart.PHG(h, 16)
	asg := make([]int32, len(els))
	copy(asg, assign)
	pri, err := parma.ParsePriority(priority)
	if err != nil {
		b.Fatal(err)
	}
	var imbAfter float64
	totalBalance := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The full pipeline (rebuild + balance) is what ns/op reports;
		// the ParMA balance time alone — the paper's Table III column —
		// is attached as the balance-sec/op metric.
		var balanceSecs float64
		err := pcu.Run(4, func(ctx *pcu.Ctx) error {
			var sm *mesh.Mesh
			if ctx.Rank() == 0 {
				sm = meshgen.Vessel3D(model, 20, 8)
			}
			dm := partition.Adopt(ctx, model.Model, 3, sm, 4)
			var plan map[mesh.Ent]int32
			if ctx.Rank() == 0 {
				plan = map[mesh.Ent]int32{}
				j := 0
				for el := range sm.Elements() {
					plan[el] = asg[j]
					j++
				}
			}
			partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
			ctx.Barrier()
			start := time.Now()
			parma.Balance(dm, pri, parma.Config{Tolerance: 1.05, MaxIters: 60})
			elapsed := time.Since(start).Seconds()
			_, imb := partitionImb(dm, pri.Dims()[0]) // collective
			if ctx.Rank() == 0 {
				balanceSecs = elapsed
				imbAfter = imb
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		totalBalance += balanceSecs
	}
	b.ReportMetric((imbAfter-1)*100, "priImb%")
	b.ReportMetric(totalBalance/float64(b.N), "balance-sec/op")
}

func BenchmarkTable3_T1_ParMA_VtxRgn(b *testing.B)      { benchParMATest(b, "Vtx>Rgn") }
func BenchmarkTable3_T2_ParMA_VtxEdgeRgn(b *testing.B)  { benchParMATest(b, "Vtx=Edge>Rgn") }
func BenchmarkTable3_T3_ParMA_EdgeRgn(b *testing.B)     { benchParMATest(b, "Edge>Rgn") }
func BenchmarkTable3_T4_ParMA_EdgeFaceRgn(b *testing.B) { benchParMATest(b, "Edge=Face>Rgn") }

// --- Fig 13: adaptation without load balancing ---

func BenchmarkFig13_AdaptNoBalance(b *testing.B) {
	cfg := experiments.Fig13Config{
		NX: 10, NY: 6, NZ: 3, Parts: 8, Ranks: 4,
		Fine: 0.12, Coarse: 0.8, Band: 0.3, WithSplit: false,
	}
	var peak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		peak = res.PeakImbalance
	}
	b.ReportMetric(peak, "peakImb")
}

// BenchmarkFig13_HeavyPartSplit measures the §III-B repair of the
// adapted imbalance.
func BenchmarkFig13_HeavyPartSplit(b *testing.B) {
	cfg := experiments.Fig13Config{
		NX: 10, NY: 6, NZ: 3, Parts: 8, Ranks: 4,
		Fine: 0.12, Coarse: 0.8, Band: 0.3, WithSplit: true,
	}
	var after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		after = res.SplitImbalance
	}
	b.ReportMetric(after, "imbAfterSplit")
}

// --- §II-D: hybrid two-level communication ---

func benchComm(b *testing.B, topo hwtopo.Topology, workers int) {
	// Large payloads keep the copy/serialize cost (the off-node
	// penalty) dominant over barrier overhead.
	payload := make([]byte, 512<<10)
	b.SetBytes(int64(2 * len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := pcu.RunOn(workers, topo, func(ctx *pcu.Ctx) error {
			next := (ctx.Rank() + 1) % ctx.Size()
			prev := (ctx.Rank() + ctx.Size() - 1) % ctx.Size()
			for p := 0; p < 20; p++ {
				ctx.To(next).Bytes(payload)
				ctx.To(prev).Bytes(payload)
				ctx.Exchange()
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHybridComm_OnNode exchanges among ranks sharing one node
// (by-reference delivery).
func BenchmarkHybridComm_OnNode(b *testing.B) {
	benchComm(b, hwtopo.Cluster(1, 8), 8)
}

// BenchmarkHybridComm_OffNode exchanges among ranks on distinct nodes
// (serialized copies) — the cost two-level partitioning avoids.
func BenchmarkHybridComm_OffNode(b *testing.B) {
	benchComm(b, hwtopo.Cluster(8, 1), 8)
}

// --- §II distributed services: migration and ghosting ---

func BenchmarkMigration(b *testing.B) {
	model := gmi.Box(1, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := pcu.Run(4, func(ctx *pcu.Ctx) error {
			var serial *mesh.Mesh
			if ctx.Rank() == 0 {
				serial = meshgen.Box3D(model, 10, 10, 10)
			}
			dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
			var plan map[mesh.Ent]int32
			if ctx.Rank() == 0 {
				in, els := zpart.Centroids(serial)
				assign := zpart.RCB(in, 4)
				plan = map[mesh.Ent]int32{}
				for j, el := range els {
					plan[el] = assign[j]
				}
			}
			partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGhosting(b *testing.B) {
	model := gmi.Box(1, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := pcu.Run(4, func(ctx *pcu.Ctx) error {
			var serial *mesh.Mesh
			if ctx.Rank() == 0 {
				serial = meshgen.Box3D(model, 10, 10, 10)
			}
			dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
			var plan map[mesh.Ent]int32
			if ctx.Rank() == 0 {
				in, els := zpart.Centroids(serial)
				assign := zpart.RCB(in, 4)
				plan = map[mesh.Ent]int32{}
				for j, el := range els {
					plan[el] = assign[j]
				}
			}
			partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
			partition.Ghost(dm, 2, 1)
			partition.RemoveGhosts(dm)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- §III-A: local splitting to extreme part counts ---

func BenchmarkLocalSplit(b *testing.B) {
	cfg := experiments.LocalSplitConfig{
		NX: 14, NY: 14, NZ: 7, CoarseParts: 4, SplitFactor: 16, Ranks: 4,
	}
	var split, after float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLocalSplit(cfg)
		if err != nil {
			b.Fatal(err)
		}
		split = (res.SplitVtxImb - 1) * 100
		after = (res.ParMAVtxImb - 1) * 100
	}
	b.ReportMetric(split, "splitImb%")
	b.ReportMetric(after, "afterImb%")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAdjacency_MDS measures upward adjacency through the
// use-list storage.
func BenchmarkAdjacency_MDS(b *testing.B) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 10, 10, 10)
	var verts []mesh.Ent
	for v := range m.Iter(0) {
		verts = append(verts, v)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		v := verts[i%len(verts)]
		n += len(m.Adjacent(v, 3))
	}
	if n == 0 {
		b.Fatal("no adjacencies")
	}
}

// BenchmarkAdjacency_MapBaseline measures the same multi-level upward
// traversal against map-backed one-level adjacency storage — the
// design alternative MDS-style arrays with intrusive use lists replace.
func BenchmarkAdjacency_MapBaseline(b *testing.B) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 10, 10, 10)
	// Build the map-backed one-level upward adjacency.
	up := map[mesh.Ent][]mesh.Ent{}
	for d := 0; d < 3; d++ {
		for e := range m.Iter(d) {
			up[e] = m.Up(e)
		}
	}
	var verts []mesh.Ent
	for v := range m.Iter(0) {
		verts = append(verts, v)
	}
	step := func(ents []mesh.Ent) []mesh.Ent {
		var out []mesh.Ent
		for _, e := range ents {
			for _, u := range up[e] {
				dup := false
				for _, x := range out {
					if x == u {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, u)
				}
			}
		}
		return out
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		v := verts[i%len(verts)]
		n += len(step(step(step([]mesh.Ent{v}))))
	}
	if n == 0 {
		b.Fatal("no adjacencies")
	}
}

// BenchmarkAblation_SelectionRule compares ParMA's boundary-shape
// cavity selection (Fig 9/10) against naive "any boundary element"
// selection, reporting the resulting part-boundary growth.
func BenchmarkAblation_SelectionRule(b *testing.B) {
	for _, ordered := range []bool{true, false} {
		name := "fig9-ordered"
		if !ordered {
			name = "unordered"
		}
		b.Run(name, func(b *testing.B) {
			var boundary int64
			for i := 0; i < b.N; i++ {
				boundary = runSelectionAblation(b, ordered)
			}
			b.ReportMetric(float64(boundary), "bndVtx")
		})
	}
}

func runSelectionAblation(b *testing.B, ordered bool) int64 {
	model := gmi.Box(4, 1, 1)
	var out int64
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 12, 4, 4)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
		var plan map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			plan = map[mesh.Ent]int32{}
			for el := range serial.Elements() {
				c := serial.Centroid(el)
				p := int32(c.X)
				if p > 3 {
					p = 3
				}
				if p == 1 && c.Y < 0.5 {
					p = 0
				}
				plan[el] = p
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
		pri, _ := parma.ParsePriority("Rgn")
		cfg := parma.Config{Tolerance: 1.05, MaxIters: 40}
		cfg.NaiveSelection = !ordered
		parma.Balance(dm, pri, cfg)
		tr := partition.GatherBoundaryTraffic(dm, 0)
		if ctx.Rank() == 0 {
			out = tr.SharedTotal
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkAdaptRefine measures serial size-driven refinement.
func BenchmarkAdaptRefine(b *testing.B) {
	model := gmi.Box(1, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := meshgen.Box3D(model, 4, 4, 4)
		b.StartTimer()
		adapt.Refine(m, adapt.Uniform(0.12), nil, 10)
	}
}

// BenchmarkFieldEval measures field evaluation inside elements.
func BenchmarkFieldEval(b *testing.B) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 6, 6, 6)
	f, err := field.New(m, "u", 1, field.Linear)
	if err != nil {
		b.Fatal(err)
	}
	f.SetByFunc(func(p vec.V) []float64 { return []float64{p.X + p.Y + p.Z} })
	var els []mesh.Ent
	for el := range m.Elements() {
		els = append(els, el)
	}
	b.ResetTimer()
	s := 0.0
	for i := 0; i < b.N; i++ {
		el := els[i%len(els)]
		s += f.Eval(el, m.Centroid(el))[0]
	}
	if math.IsNaN(s) {
		b.Fatal("NaN")
	}
}

// --- helpers ---

func partitionImb(dm *partition.DMesh, dim int) (float64, float64) {
	return partition.EntityImbalance(dm, dim)
}
