package pumi_test

import (
	"fmt"

	pumi "github.com/fastmath/pumi-go"
)

// ExampleBoxMesh builds a serial classified mesh and interrogates it.
func ExampleBoxMesh() {
	model := pumi.Box(1, 1, 1)
	m := pumi.BoxMesh(model, 2, 2, 2)
	fmt.Println("tets:", m.Count(3))
	fmt.Println("vertices:", m.Count(0))
	boundary := 0
	for f := range m.Iter(2) {
		if m.Classification(f).Dim == 2 {
			boundary++
		}
	}
	fmt.Println("boundary faces:", boundary)
	// Output:
	// tets: 48
	// vertices: 27
	// boundary faces: 48
}

// ExampleParsePriority shows the paper's priority notation.
func ExampleParsePriority() {
	pri, _ := pumi.ParsePriority("Face=Edge>Rgn")
	fmt.Println(pri) // equal levels reorder by increasing dimension
	// Output:
	// Edge=Face>Rgn
}

// ExampleRun distributes a mesh, balances it with ParMA, and verifies
// the distributed invariants.
func ExampleRun() {
	model := pumi.Box(1, 1, 1)
	err := pumi.Run(4, func(ctx *pumi.Ctx) error {
		var serial *pumi.Mesh
		if ctx.Rank() == 0 {
			serial = pumi.BoxMesh(model, 4, 4, 4)
		}
		dm := pumi.Adopt(ctx, model.Model, 3, serial, 1)
		pumi.PartitionRCB(dm, serial)
		pri, _ := pumi.ParsePriority("Vtx>Rgn")
		pumi.Balance(dm, pri, pumi.DefaultBalanceConfig())
		if err := pumi.CheckDistributed(dm); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			fmt.Println("elements:", pumi.GlobalCount(dm, 3))
		} else {
			pumi.GlobalCount(dm, 3) // collective
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// elements: 384
}

// ExampleRCB partitions element centroids geometrically.
func ExampleRCB() {
	model := pumi.Rect(2, 1)
	m := pumi.RectMesh(model, 4, 2)
	in, _ := pumi.Centroids(m)
	assign := pumi.RCB(in, 2)
	counts := [2]int{}
	for _, p := range assign {
		counts[p]++
	}
	fmt.Println("part sizes:", counts[0], counts[1])
	// Output:
	// part sizes: 8 8
}
