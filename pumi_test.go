package pumi

import (
	"testing"
)

// TestFacadeWorkflow exercises the documented public API end to end:
// generate, distribute, balance, adapt, field transfer, verify.
func TestFacadeWorkflow(t *testing.T) {
	model := Box(2, 1, 1)
	err := Run(4, func(ctx *Ctx) error {
		var serial *Mesh
		if ctx.Rank() == 0 {
			serial = BoxMesh(model, 8, 4, 4)
		}
		dm := Adopt(ctx, model.Model, 3, serial, 1)
		PartitionRCB(dm, serial)
		if err := CheckDistributed(dm); err != nil {
			return err
		}
		pri, err := ParsePriority("Vtx>Rgn")
		if err != nil {
			return err
		}
		Balance(dm, pri, DefaultBalanceConfig())
		if _, imb := EntityImbalance(dm, 0); imb > 1.3 {
			t.Errorf("vertex imbalance %g", imb)
		}
		AdaptParallel(dm, UniformSize(0.2), adaptDefaults())
		if err := CheckDistributed(dm); err != nil {
			return err
		}
		Ghost(dm, 2, 1)
		RemoveGhosts(dm)
		return CheckDistributed(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSerialPieces(t *testing.T) {
	model := Rect(1, 1)
	m := RectMesh(model, 4, 4)
	if m.Count(2) != 32 {
		t.Fatalf("tris = %d", m.Count(2))
	}
	f, err := NewField(m, "u", 1, Linear)
	if err != nil {
		t.Fatal(err)
	}
	f.SetByFunc(func(p Vec) []float64 { return []float64{p.X} })
	if FindField(m, "u", Linear) == nil {
		t.Fatal("FindField failed")
	}
	in, _ := Centroids(m)
	part := RCB(in, 4)
	if len(part) != 32 {
		t.Fatal("RCB assignment size")
	}
	g, _ := DualGraph(m)
	if cut := g.EdgeCut(MLGraph(g, 2)); cut <= 0 {
		t.Fatal("MLGraph cut")
	}
}
