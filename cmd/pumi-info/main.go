// pumi-info inspects a mesh file: entity counts, classification
// summary, element quality histogram, and — when an assignment is
// given — per-part balance and the partition model.
//
// Usage:
//
//	pumi-info -mesh box.pumi -model box:1,1,1
//	pumi-info -mesh aaa.pumi -model vessel:10,1,0.6,1.2 -assign aaa.part -ranks 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

func main() {
	cmdutil.SetTool("pumi-info")
	meshFile := flag.String("mesh", "", "input mesh file")
	modelFlag := flag.String("model", "", "model spec matching the mesh")
	assignFile := flag.String("assign", "", "optional element assignment to analyze")
	ranks := flag.Int("ranks", 4, "ranks used for the partition-model analysis")
	flag.Parse()
	if *meshFile == "" {
		cmdutil.Usagef("-mesh is required")
	}
	ms, err := cmdutil.ParseModelSpec(*modelFlag)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	model, _ := ms.Build()
	m, err := meshio.LoadFile(*meshFile, model)
	if err != nil {
		cmdutil.Fail(err)
	}
	if err := m.CheckConsistency(); err != nil {
		cmdutil.Failf("mesh inconsistent: %v", err)
	}
	cmdutil.PrintMeshStats(os.Stdout, m)

	// Classification summary per model entity.
	fmt.Println("\nclassification (mesh entities per model entity):")
	type key struct {
		dim int8
		tag int32
	}
	counts := map[key][4]int{}
	for d := 0; d <= m.Dim(); d++ {
		for e := range m.Iter(d) {
			c := m.Classification(e)
			k := key{c.Dim, c.Tag}
			arr := counts[k]
			arr[d]++
			counts[k] = arr
		}
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dim != keys[j].dim {
			return keys[i].dim < keys[j].dim
		}
		return keys[i].tag < keys[j].tag
	})
	for _, k := range keys {
		arr := counts[k]
		fmt.Printf("  g%dd#%-4d  vtx %6d  edge %6d  face %6d  rgn %6d\n",
			k.dim, k.tag, arr[0], arr[1], arr[2], arr[3])
	}

	// Quality histogram (mean-ratio).
	fmt.Println("\nelement quality (mean ratio):")
	bins := make([]int, 10)
	worst := 1.0
	for el := range m.Elements() {
		q := m.MeanRatioQuality(el)
		if q < worst {
			worst = q
		}
		b := int(q * 10)
		if b > 9 {
			b = 9
		}
		if b < 0 {
			b = 0
		}
		bins[b]++
	}
	for i, c := range bins {
		fmt.Printf("  %.1f-%.1f | %-6d %s\n", float64(i)/10, float64(i+1)/10, c,
			strings.Repeat("#", min(c/5, 60)))
	}
	fmt.Printf("  worst quality: %.3f\n", worst)

	if *assignFile == "" {
		return
	}
	af, err := os.Open(*assignFile)
	if err != nil {
		cmdutil.Fail(err)
	}
	assign, err := meshio.ReadAssignment(af)
	af.Close()
	if err != nil {
		cmdutil.Fail(err)
	}
	nparts := 0
	for _, p := range assign {
		if int(p)+1 > nparts {
			nparts = int(p) + 1
		}
	}
	if nparts%*ranks != 0 {
		cmdutil.Usagef("part count %d not divisible by ranks %d", nparts, *ranks)
	}
	fmt.Printf("\npartition analysis (%d parts over %d ranks):\n", nparts, *ranks)
	err = pcu.Run(*ranks, func(ctx *pcu.Ctx) error {
		// Reconcile rank 0's local load failure before the collective
		// schedule; an early return from one rank would strand the rest
		// in Adopt.
		var serial *mesh.Mesh
		var loadErr error
		if ctx.Rank() == 0 {
			serial, loadErr = meshio.LoadFile(*meshFile, model)
		}
		if err := meshio.GatherErrors(ctx, loadErr, "loading mesh on rank 0"); err != nil {
			return err
		}
		dm := partition.Adopt(ctx, model, ms.Dim(), serial, nparts / *ranks)
		var plan map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			plan = map[mesh.Ent]int32{}
			i := 0
			for el := range serial.Elements() {
				plan[el] = assign[i]
				i++
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
		names := []string{"vtx", "edge", "face", "rgn"}
		for d := 0; d <= ms.Dim(); d++ {
			mean, imb := partition.EntityImbalance(dm, d)
			if ctx.Rank() == 0 {
				fmt.Printf("  %-5s mean %10.1f  imbalance %6.2f%%\n", names[d], mean, (imb-1)*100)
			}
		}
		tr := partition.GatherBoundaryTraffic(dm, 0)
		pm := partition.BuildPtnModel(dm)
		if ctx.Rank() == 0 {
			fmt.Printf("  shared vertices: %d\n", tr.SharedTotal)
			byDim := [4]int{}
			for _, pe := range pm.Ents {
				byDim[pe.Dim]++
			}
			fmt.Printf("  partition model: %d P0, %d P1, %d P2, %d P3\n",
				byDim[0], byDim[1], byDim[2], byDim[3])
		}
		return partition.CheckDistributed(dm)
	})
	if err != nil {
		cmdutil.Fail(err)
	}
}
