// pumi-bench regenerates the paper's evaluation: every table and figure
// has an experiment id, and -exp selects which to run (or "all"). Scale
// flags let the experiments grow toward the paper's sizes on bigger
// machines; the defaults run in seconds and preserve the paper's
// qualitative shapes.
//
//	pumi-bench -exp all
//	pumi-bench -exp table2 -ns 80 -n 20 -parts 64 -ranks 16
//	pumi-bench -exp fig13 -parts 32
//	pumi-bench -chaos 1,2,3,4 -chaos-dir /tmp/ck
//	pumi-bench -chaos 1,2,3,4 -recover
//	pumi-bench -chaos 5 -recover -conform automata.json -trace soak.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/fastmath/pumi-go/internal/chaos"
	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/experiments"
	"github.com/fastmath/pumi-go/internal/lint/automata"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
)

func main() {
	cmdutil.SetTool("pumi-bench")
	exp := flag.String("exp", "all", "experiment: table1 | table2 | table3 | fig12 | fig13 | hybrid | migrate | localsplit | all")
	ns := flag.Int("ns", 0, "vessel axial layers (table experiments)")
	n := flag.Int("n", 0, "vessel cross-section resolution")
	parts := flag.Int("parts", 0, "part count override")
	ranks := flag.Int("ranks", 0, "rank count override")
	timeout := flag.Duration("timeout", 0, "wall-clock limit; expiring aborts parallel runs with a structured error")
	chaosSeeds := flag.String("chaos", "", "comma-separated seeds: run the fault-injection soak instead of experiments")
	chaosDir := flag.String("chaos-dir", "", "checkpoint directory for -chaos (default a temp dir)")
	chaosRecover := flag.Bool("recover", false, "with -chaos: run the self-healing soak (survivable world, shrink-and-recover) instead of the restart soak")
	jsonOut := flag.String("json", "", "run the PCU microbenchmark suite instead of experiments and write machine-readable results to FILE ('-' for stdout)")
	sanitize := flag.Bool("san", false, "run everything under pumi-san: cross-check collective schedules across ranks, enforce owner-only mesh writes, and print the op-sequence hash at exit")
	conformFile := flag.String("conform", "", "with -chaos -recover: pumi-proto/1 automata artifact (pumi-vet -emit-automata); every world of the soak runs under the chaos.RunRecoverable machine's online protocol monitor")
	tracePath := flag.String("trace", "", cmdutil.TraceUsage)
	listenAddr := flag.String("listen", "", cmdutil.ListenUsage)
	flag.Parse()
	defer cmdutil.WithTimeout(*timeout)()
	defer cmdutil.StartTrace(*tracePath)()
	defer cmdutil.StartListen(*listenAddr)()
	if *sanitize {
		san.Enable()
		pcu.SetDefaultSanitize(true)
	}

	if *conformFile != "" && (*chaosSeeds == "" || !*chaosRecover) {
		cmdutil.Usagef("-conform requires -chaos and -recover (the artifact's machine describes the self-healing soak)")
	}

	if *chaosSeeds != "" {
		runChaos(*chaosSeeds, *chaosDir, *sanitize, *chaosRecover, loadConform(*conformFile))
		sanReport(*sanitize)
		return
	}
	if *jsonOut != "" {
		runJSONBench(*jsonOut)
		sanReport(*sanitize)
		return
	}

	tcfg := experiments.DefaultTableConfig()
	if *ns > 0 {
		tcfg.NS = *ns
	}
	if *n > 0 {
		tcfg.N = *n
	}
	if *parts > 0 {
		tcfg.Parts = *parts
	}
	if *ranks > 0 {
		tcfg.Ranks = *ranks
	}
	fcfg := experiments.DefaultFig13Config()
	if *parts > 0 {
		fcfg.Parts = *parts
	}
	if *ranks > 0 {
		fcfg.Ranks = *ranks
	}

	needTable := false
	runs := map[string]bool{}
	switch *exp {
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "fig12", "fig13", "hybrid", "migrate", "localsplit"} {
			runs[e] = true
		}
		needTable = true
	case "table1", "table2", "table3", "fig12":
		runs[*exp] = true
		needTable = *exp != "table1"
	case "fig13", "hybrid", "migrate", "localsplit":
		runs[*exp] = true
	default:
		cmdutil.Usagef("unknown experiment %q", *exp)
	}

	if runs["table1"] {
		fmt.Println("== Table I: tests and parameters for the partition improvement algorithms ==")
		fmt.Printf("%-5s %s\n", "Test", "Method")
		for _, t := range experiments.Tests {
			m := t.Method
			if t.Priority != "" {
				m += " " + t.Priority
			}
			fmt.Printf("%-5s %s\n", t.Name, m)
		}
		fmt.Println()
	}
	if needTable {
		res, err := experiments.RunTable(tcfg)
		if err != nil {
			cmdutil.Fail(err)
		}
		if runs["table2"] || runs["table3"] {
			fmt.Println("== Table II (entity imbalance) and Table III (time) ==")
			fmt.Print(experiments.FormatTable(res))
			fmt.Println()
		}
		if runs["fig12"] {
			fmt.Println("== Fig 12: normalized vertices and edges per part, before/after ParMA T2 ==")
			fmt.Println("part, vtx_before, vtx_after, edge_before, edge_after")
			for i := range res.Fig12.VtxBefore {
				fmt.Printf("%d, %.4f, %.4f, %.4f, %.4f\n", i,
					res.Fig12.VtxBefore[i], res.Fig12.VtxAfter[i],
					res.Fig12.EdgeBefore[i], res.Fig12.EdgeAfter[i])
			}
			fmt.Println()
		}
	}
	if runs["fig13"] {
		fmt.Println("== Fig 13: element imbalance histogram after adaptation without load balancing ==")
		res, err := experiments.RunFig13(fcfg)
		if err != nil {
			cmdutil.Fail(err)
		}
		fmt.Print(experiments.FormatFig13(res))
		fmt.Println()
	}
	if runs["hybrid"] {
		fmt.Println("== Hybrid two-level communication (paper §II-D, up to 32 workers/node) ==")
		points, err := experiments.RunHybrid(experiments.DefaultHybridConfig())
		if err != nil {
			cmdutil.Fail(err)
		}
		fmt.Print(experiments.FormatHybrid(points))
		fmt.Println()
	}
	if runs["migrate"] {
		fmt.Println("== Migration and ghosting scaling (paper §II distributed services) ==")
		points, err := experiments.RunMigrate(experiments.DefaultMigrateConfig())
		if err != nil {
			cmdutil.Fail(err)
		}
		fmt.Print(experiments.FormatMigrate(points))
		fmt.Println()
	}
	if runs["localsplit"] {
		fmt.Println("== Local splitting spike and ParMA recovery (paper §III-A, 16,384 -> 1.5M parts) ==")
		res, err := experiments.RunLocalSplit(experiments.DefaultLocalSplitConfig())
		if err != nil {
			cmdutil.Fail(err)
		}
		fmt.Print(experiments.FormatLocalSplit(res))
	}
	sanReport(*sanitize)
}

// sanReport prints the pumi-san ledger when -san was given: the number
// of clean sanitized runs this process completed and the cumulative
// op-sequence hash. Two identically-seeded invocations must print the
// same hash — a cheap determinism check for any experiment.
func sanReport(on bool) {
	if !on {
		return
	}
	runs, hash := pcu.SanSummary()
	fmt.Printf("pumi-san: %d sanitized run(s), op-sequence hash %#016x\n", runs, hash)
}

// runChaos drives one fault-injection soak per seed: a balancing run
// under the seed's fault plan that must end cleanly or with a
// structured failure, followed by a checkpoint restart when one was
// committed. Any unclassifiable outcome fails the command. With
// recover, the soak runs self-healing instead: a Survivable world
// retries transient wire damage in place, and a permanent rank death
// shrinks the world over the survivors and resumes from the last
// checkpoint.
// loadConform resolves -conform: the chaos.RunRecoverable machine of a
// pumi-proto/1 artifact as an online protocol, or nil when unset.
func loadConform(path string) *san.Protocol {
	if path == "" {
		return nil
	}
	set, err := automata.LoadFile(path)
	if err != nil {
		cmdutil.Fail(err)
	}
	m := set.Find("chaos.RunRecoverable")
	if m == nil {
		cmdutil.Usagef("%s holds no chaos.RunRecoverable machine", path)
	}
	p, err := m.Protocol()
	if err != nil {
		cmdutil.Fail(err)
	}
	return p
}

func runChaos(seeds, dir string, sanitize, recover bool, conform *san.Protocol) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pumi-chaos-*")
		if err != nil {
			cmdutil.Fail(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	for _, field := range strings.Split(seeds, ",") {
		seed, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			cmdutil.Usagef("bad -chaos seed %q: %v", field, err)
		}
		ckdir := fmt.Sprintf("%s/seed-%d", dir, seed)
		if err := os.MkdirAll(ckdir, 0o755); err != nil {
			cmdutil.Fail(err)
		}
		cfg := chaos.Config{
			Seed:         seed,
			Dir:          ckdir,
			StallTimeout: 30 * time.Second,
			Sanitize:     sanitize,
			Conform:      conform,
		}
		if recover {
			out, err := chaos.RunRecoverable(cfg)
			if err != nil {
				cmdutil.Fail(err)
			}
			fmt.Println(out)
			continue
		}
		out, err := chaos.Soak(cfg)
		if err != nil {
			cmdutil.Fail(err)
		}
		fmt.Println(out)
	}
}
