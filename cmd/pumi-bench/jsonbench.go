package main

// The -json mode: a fixed suite of PCU data-movement microbenchmarks
// emitting machine-readable results, so the repository can commit a
// performance trajectory (BENCH_baseline.json, BENCH_pr4.json, ...) and
// any change to the communication hot path is provable with before and
// after numbers from the same harness. The suite measures the packing
// kernels, the decode kernels, sparse and dense neighbor exchanges on
// both placements (on-node by-reference delivery, off-node serialized
// copies), collectives, the run-wide performance counters, and one
// end-to-end migration. Traffic per phase (messages and bytes by
// architecture class) comes from a separate counted probe run.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/telemetry"
	"github.com/fastmath/pumi-go/internal/trace"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// benchResult is one machine-readable microbenchmark row. Exchange rows
// additionally carry the per-phase traffic split measured by a counted
// probe run of the same workload.
type benchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`

	OnNodeMsgsPerOp   float64 `json:"on_node_msgs_per_op,omitempty"`
	OffNodeMsgsPerOp  float64 `json:"off_node_msgs_per_op,omitempty"`
	OnNodeBytesPerOp  float64 `json:"on_node_bytes_per_op,omitempty"`
	OffNodeBytesPerOp float64 `json:"off_node_bytes_per_op,omitempty"`
}

// benchDoc is the file layout; results keep suite order so two files
// diff row by row.
type benchDoc struct {
	Schema  string        `json:"schema"`
	Go      string        `json:"go"`
	Note    string        `json:"note"`
	Results []benchResult `json:"results"`
}

const (
	packN           = 4096
	exchangeRanks   = 8
	exchangePayload = 1024
	probePhases     = 64
)

// runJSONBench runs the suite and writes the document to path ("-" for
// stdout).
func runJSONBench(path string) {
	doc := benchDoc{
		Schema: "pumi-bench/json/1",
		Go:     runtime.Version(),
		Note:   "regenerate with `make bench` (pumi-bench -json FILE); see README Benchmarks",
	}
	type suiteEntry struct {
		name     string
		setBytes int64
		fn       func(b *testing.B)
		probe    func() (pcu.Stats, int) // traffic probe: stats, phases counted
	}
	suite := []suiteEntry{
		{name: "pack/int32s/n=4096", setBytes: 4 * packN, fn: benchPackInt32s},
		{name: "pack/float64s/n=4096", setBytes: 8 * packN, fn: benchPackFloat64s},
		{name: "pack/bytes/n=65536", setBytes: 65536, fn: benchPackBytes},
		{name: "unpack/int32s/n=4096", setBytes: 4 * packN, fn: benchUnpackInt32s},
		{name: "unpack/float64s/n=4096", setBytes: 8 * packN, fn: benchUnpackFloat64s},
		{name: "unpack/scalars/n=4096", setBytes: 8 * packN, fn: benchUnpackScalars},
		{
			name: "exchange/sparse/on-node", setBytes: 2 * exchangePayload,
			fn:    benchExchange(hwtopo.Cluster(1, exchangeRanks), false),
			probe: probeExchange(hwtopo.Cluster(1, exchangeRanks), false),
		},
		{
			name: "exchange/sparse/on-node/traced", setBytes: 2 * exchangePayload,
			fn: benchExchangeTraced(hwtopo.Cluster(1, exchangeRanks), false),
		},
		{
			name: "exchange/sparse/on-node/conform", setBytes: 2 * exchangePayload,
			fn: benchExchangeConform(hwtopo.Cluster(1, exchangeRanks), false),
		},
		{
			name: "exchange/sparse/on-node/metered", setBytes: 2 * exchangePayload,
			fn: benchExchangeMetered(hwtopo.Cluster(1, exchangeRanks), false),
		},
		{
			name: "exchange/sparse/off-node", setBytes: 2 * exchangePayload,
			fn:    benchExchange(hwtopo.Cluster(exchangeRanks, 1), false),
			probe: probeExchange(hwtopo.Cluster(exchangeRanks, 1), false),
		},
		{
			name: "exchange/sparse/off-node/traced", setBytes: 2 * exchangePayload,
			fn: benchExchangeTraced(hwtopo.Cluster(exchangeRanks, 1), false),
		},
		{
			name: "exchange/sparse/off-node/conform", setBytes: 2 * exchangePayload,
			fn: benchExchangeConform(hwtopo.Cluster(exchangeRanks, 1), false),
		},
		{
			name: "exchange/sparse/off-node/metered", setBytes: 2 * exchangePayload,
			fn: benchExchangeMetered(hwtopo.Cluster(exchangeRanks, 1), false),
		},
		{
			name: "exchange/dense/on-node", setBytes: exchangeRanks * exchangePayload,
			fn:    benchExchange(hwtopo.Cluster(1, exchangeRanks), true),
			probe: probeExchange(hwtopo.Cluster(1, exchangeRanks), true),
		},
		{
			name: "exchange/sparse/two-node", setBytes: 2 * exchangePayload,
			fn:    benchExchange(hwtopo.Cluster(2, exchangeRanks/2), false),
			probe: probeExchange(hwtopo.Cluster(2, exchangeRanks/2), false),
		},
		{name: "collective/allreduce/ranks=8", fn: benchAllreduce},
		{name: "collective/allreduce/ranks=8/conform", fn: benchAllreduceConform},
		{name: "counters/add/ranks=8", fn: benchCounters},
		{name: "sync/shared/box10/ranks=4", fn: benchSyncShared(syncPlain)},
		{name: "reduce/shared/box10/ranks=4", fn: benchSyncShared(syncReduce)},
		{name: "sync/shared/replan/box10/ranks=4", fn: benchSyncShared(syncReplan)},
		{name: "migrate/box10/ranks=4", fn: benchMigrateOnce(false)},
		{name: "migrate/box10/ranks=4/traced", fn: benchMigrateOnce(true)},
	}
	for _, e := range suite {
		fn := e.fn
		setBytes := e.setBytes
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if setBytes > 0 {
				b.SetBytes(setBytes)
			}
			fn(b)
		})
		row := benchResult{
			Name:        e.name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if setBytes > 0 && r.T > 0 {
			row.MBPerSec = float64(setBytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		if e.probe != nil {
			stats, phases := e.probe()
			row.OnNodeMsgsPerOp = float64(stats.OnNodeMsgs) / float64(phases)
			row.OffNodeMsgsPerOp = float64(stats.OffNodeMsgs) / float64(phases)
			row.OnNodeBytesPerOp = float64(stats.OnNodeBytes) / float64(phases)
			row.OffNodeBytesPerOp = float64(stats.OffNodeBytes) / float64(phases)
		}
		doc.Results = append(doc.Results, row)
		fmt.Fprintf(os.Stderr, "%-28s %12.1f ns/op %8d allocs/op\n", e.name, row.NsPerOp, row.AllocsPerOp)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		cmdutil.Fail(err)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		cmdutil.Fail(err)
	}
}

func benchPackInt32s(b *testing.B) {
	vals := make([]int32, packN)
	for i := range vals {
		vals[i] = int32(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf pcu.Buffer
		buf.Int32s(vals)
	}
}

func benchPackFloat64s(b *testing.B) {
	vals := make([]float64, packN)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf pcu.Buffer
		buf.Float64s(vals)
	}
}

func benchPackBytes(b *testing.B) {
	vals := make([]byte, 65536)
	for i := range vals {
		vals[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf pcu.Buffer
		buf.Bytes(vals)
	}
}

func benchUnpackInt32s(b *testing.B) {
	vals := make([]int32, packN)
	for i := range vals {
		vals[i] = int32(i * 3)
	}
	var src pcu.Buffer
	src.Int32s(vals)
	raw := src.Raw()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		r := pcu.NewReader(raw)
		out := r.Int32s()
		r.Done()
		sink += out[0]
	}
	_ = sink
}

func benchUnpackFloat64s(b *testing.B) {
	vals := make([]float64, packN)
	for i := range vals {
		vals[i] = float64(i) * 1.25
	}
	var src pcu.Buffer
	src.Float64s(vals)
	raw := src.Raw()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		r := pcu.NewReader(raw)
		out := r.Float64s()
		r.Done()
		sink += out[0]
	}
	_ = sink
}

func benchUnpackScalars(b *testing.B) {
	var src pcu.Buffer
	for i := 0; i < packN; i++ {
		src.Int64(int64(i))
	}
	raw := src.Raw()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		r := pcu.NewReader(raw)
		for j := 0; j < packN; j++ {
			sink += r.Int64()
		}
		r.Done()
	}
	_ = sink
}

// benchExchange measures one neighbor-exchange phase per op: each rank
// packs to its ring neighbors (sparse) or to every rank (dense),
// exchanges, and fully decodes what arrived. All b.N phases run inside
// one spawned world so goroutine startup is amortized away.
func benchExchange(topo hwtopo.Topology, dense bool) func(b *testing.B) {
	return benchExchangeOpt(pcu.Options{Topo: topo, StallTimeout: -1}, dense)
}

// benchExchangeTraced is the same workload with the flight recorder
// armed, so the committed benchmark file documents the tracing overhead
// (the /traced row vs its plain sibling) on both delivery classes.
func benchExchangeTraced(topo hwtopo.Topology, dense bool) func(b *testing.B) {
	return func(b *testing.B) {
		tr := trace.New(exchangeRanks, trace.Config{})
		benchExchangeOpt(pcu.Options{Topo: topo, StallTimeout: -1, Trace: tr}, dense)(b)
	}
}

// loopProtocol is a single accepting state with a self-loop on each op:
// the cheapest automaton that accepts the benchmark workload, so the
// /conform rows isolate the per-op monitor cost (one atomic step per
// blocking op, zero steady-state allocations) from any protocol logic.
func loopProtocol(ops ...string) *san.Protocol {
	edges := map[string]int{}
	for _, op := range ops {
		edges[op] = 0
	}
	p, err := san.NewProtocol("bench.Loop", ops, 0, []bool{true}, []map[string]int{edges})
	if err != nil {
		cmdutil.Fail(err)
	}
	return p
}

// benchExchangeMetered is the same workload with live metering armed —
// latency and arrival-skew histograms, queue and pool gauges and the
// per-neighbor traffic matrix all recording — so the /metered row vs
// its plain sibling documents the telemetry overhead on both delivery
// classes. The zero-alloc pin for this path is
// pcu.TestExchangeMeteredZeroAlloc.
func benchExchangeMetered(topo hwtopo.Topology, dense bool) func(b *testing.B) {
	return func(b *testing.B) {
		opt := pcu.Options{Topo: topo, StallTimeout: -1, Metrics: telemetry.NewRegistry()}
		benchExchangeOpt(opt, dense)(b)
	}
}

// benchExchangeConform is the same workload with the online protocol
// monitor armed, so the /conform row vs its plain sibling documents the
// conformance overhead on the exchange hot path.
func benchExchangeConform(topo hwtopo.Topology, dense bool) func(b *testing.B) {
	return func(b *testing.B) {
		opt := pcu.Options{Topo: topo, StallTimeout: -1, Conform: loopProtocol("exchange", "barrier")}
		benchExchangeOpt(opt, dense)(b)
	}
}

func benchExchangeOpt(opt pcu.Options, dense bool) func(b *testing.B) {
	return func(b *testing.B) {
		payload := make([]byte, exchangePayload)
		for i := range payload {
			payload[i] = byte(i)
		}
		b.ResetTimer()
		_, err := pcu.RunOpt(exchangeRanks, opt, func(c *pcu.Ctx) error {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			for i := 0; i < b.N; i++ {
				if dense {
					for p := 0; p < c.Size(); p++ {
						c.To(p).Bytes(payload)
					}
				} else {
					c.To(next).Bytes(payload)
					c.To(prev).Bytes(payload)
				}
				for _, m := range c.Exchange() {
					for !m.Data.Empty() {
						if v := m.Data.BytesVal(); len(v) != exchangePayload {
							return fmt.Errorf("short payload %d", len(v))
						}
					}
					m.Data.Done()
				}
			}
			return nil
		})
		if err != nil {
			cmdutil.Fail(err)
		}
	}
}

// probeExchange runs a fixed number of phases of the same workload and
// returns the world's traffic counters, for per-phase message and byte
// accounting alongside the timing row.
func probeExchange(topo hwtopo.Topology, dense bool) func() (pcu.Stats, int) {
	return func() (pcu.Stats, int) {
		payload := make([]byte, exchangePayload)
		stats, err := pcu.RunOpt(exchangeRanks, pcu.Options{Topo: topo, StallTimeout: -1}, func(c *pcu.Ctx) error {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			for i := 0; i < probePhases; i++ {
				if dense {
					for p := 0; p < c.Size(); p++ {
						c.To(p).Bytes(payload)
					}
				} else {
					c.To(next).Bytes(payload)
					c.To(prev).Bytes(payload)
				}
				for _, m := range c.Exchange() {
					for !m.Data.Empty() {
						m.Data.BytesVal()
					}
					m.Data.Done()
				}
			}
			return nil
		})
		if err != nil {
			cmdutil.Fail(err)
		}
		return stats, probePhases
	}
}

func benchAllreduce(b *testing.B) {
	b.ResetTimer()
	err := pcu.Run(exchangeRanks, func(c *pcu.Ctx) error {
		for i := 0; i < b.N; i++ {
			if got := pcu.SumInt64(c, 1); got != int64(c.Size()) {
				return fmt.Errorf("allreduce = %d", got)
			}
		}
		return nil
	})
	if err != nil {
		cmdutil.Fail(err)
	}
}

// benchAllreduceConform is the collective row under the online monitor.
func benchAllreduceConform(b *testing.B) {
	opt := pcu.Options{Conform: loopProtocol("allreduce")}
	b.ResetTimer()
	_, err := pcu.RunOpt(exchangeRanks, opt, func(c *pcu.Ctx) error {
		for i := 0; i < b.N; i++ {
			if got := pcu.SumInt64(c, 1); got != int64(c.Size()) {
				return fmt.Errorf("allreduce = %d", got)
			}
		}
		return nil
	})
	if err != nil {
		cmdutil.Fail(err)
	}
}

// benchCounters measures the run-wide performance counter hot path
// under full contention: every rank accumulates into the same named
// counter and timer concurrently, b.N times each.
func benchCounters(b *testing.B) {
	b.ResetTimer()
	err := pcu.Run(exchangeRanks, func(c *pcu.Ctx) error {
		ctrs := c.Counters()
		for i := 0; i < b.N; i++ {
			t := ctrs.Start("bench.op")
			ctrs.Add("bench.count", 1)
			t.Stop()
		}
		return nil
	})
	if err != nil {
		cmdutil.Fail(err)
	}
}

// syncBenchMode selects the boundary-exchange workload measured by
// benchSyncShared.
type syncBenchMode int

const (
	// syncPlain is the steady-state owner-to-copies push: the boundary
	// structure never changes, so a compiled plan stays hot.
	syncPlain syncBenchMode = iota
	// syncReduce is the copies-to-owner accumulation direction.
	syncReduce
	// syncReplan is the mutate-every-round worst case: each round dirties
	// the boundary structure first, so a plan-based implementation must
	// recompile its exchange schedule on every round.
	syncReplan
)

// benchSyncShared measures one shared-boundary data round per op on a
// box mesh RCB-distributed over 4 ranks: pack a float per owned (or
// non-owned, for reduce) boundary vertex, exchange, apply on the other
// side. Values live in a plain per-slot slice so the pack and apply
// callbacks are allocation-free and the row isolates the exchange
// machinery itself. Setup (mesh generation + migration) happens once
// per world and is excluded via b.ResetTimer.
func benchSyncShared(mode syncBenchMode) func(b *testing.B) {
	vertDims := []int{0}
	return func(b *testing.B) {
		model := gmi.Box(1, 1, 1)
		_, err := pcu.RunOpt(4, pcu.Options{StallTimeout: -1}, func(ctx *pcu.Ctx) error {
			var serial *mesh.Mesh
			if ctx.Rank() == 0 {
				serial = meshgen.Box3D(model, 10, 10, 10)
			}
			dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
			var plan map[mesh.Ent]int32
			if ctx.Rank() == 0 {
				in, els := zpart.Centroids(serial)
				assign := zpart.RCB(in, 4)
				plan = map[mesh.Ent]int32{}
				for j, el := range els {
					plan[el] = assign[j]
				}
			}
			partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
			m := dm.Parts[0].M
			var maxI int32
			for e := range m.IterType(mesh.Vertex) {
				if e.I > maxI {
					maxI = e.I
				}
			}
			vals := make([]float64, maxI+1)
			for e := range m.IterType(mesh.Vertex) {
				vals[e.I] = float64(m.Part())
			}
			pack := func(p *partition.Part, e mesh.Ent, buf *pcu.Buffer) { buf.Float64(vals[e.I]) }
			applySet := func(p *partition.Part, e mesh.Ent, r *pcu.Reader) { vals[e.I] = r.Float64() }
			applyAdd := func(p *partition.Part, e mesh.Ent, r *pcu.Reader) { vals[e.I] += r.Float64() }
			// A boundary vertex whose ownership write dirties the
			// boundary structure each replan round.
			bv := mesh.NilEnt
			for e := range m.PartBoundary(0) {
				bv = e
				break
			}
			round := func() {
				switch mode {
				case syncReduce:
					partition.ReduceShared(dm, vertDims, pack, applyAdd)
				case syncReplan:
					if bv.Ok() {
						m.SetOwner(bv, m.Owner(bv))
					}
					partition.SyncShared(dm, vertDims, pack, applySet)
				default:
					partition.SyncShared(dm, vertDims, pack, applySet)
				}
			}
			for i := 0; i < 4; i++ {
				round() // warm buffer pools (and any cached exchange plan)
			}
			ctx.Barrier()
			if ctx.Rank() == 0 {
				// All ranks are parked in the next Barrier, so resetting
				// the timer and allocation counters here excludes every
				// rank's setup from the measurement.
				b.ResetTimer()
			}
			ctx.Barrier()
			for i := 0; i < b.N; i++ {
				round()
			}
			return nil
		})
		if err != nil {
			cmdutil.Fail(err)
		}
	}
}

// benchMigrateOnce is the end-to-end row: distribute a serial box mesh
// onto 4 ranks by RCB, once per op. The traced variant runs the same
// migration with the flight recorder armed — the overhead comparison at
// realistic phase granularity, where spans last milliseconds rather
// than the microseconds of the exchange microbenchmark.
func benchMigrateOnce(traced bool) func(b *testing.B) {
	return func(b *testing.B) {
		model := gmi.Box(1, 1, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var opt pcu.Options
			if traced {
				opt.Trace = trace.New(4, trace.Config{})
			}
			err := migrateRun(model, opt)
			if err != nil {
				cmdutil.Fail(err)
			}
		}
	}
}

func migrateRun(model *gmi.BoxModel, opt pcu.Options) error {
	_, err := pcu.RunOpt(4, opt, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 10, 10, 10)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
		var plan map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			in, els := zpart.Centroids(serial)
			assign := zpart.RCB(in, 4)
			plan = map[mesh.Ent]int32{}
			for j, el := range els {
				plan[el] = assign[j]
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
		return nil
	})
	return err
}
