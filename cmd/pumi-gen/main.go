// pumi-gen generates a classified unstructured mesh over one of the
// analytic geometric models and writes it to a file, the first stage of
// the library's mesh workflows.
//
// Usage:
//
//	pumi-gen -model box:1,1,1 -grid 16,16,16 -o box.pumi
//	pumi-gen -model vessel:10,1,0.6,1.2 -grid 40,12 -o aaa.pumi
//	pumi-gen -model rect:2,1 -grid 32,16 -o rect.pumi
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/meshio"
)

func main() {
	cmdutil.SetTool("pumi-gen")
	modelFlag := flag.String("model", "box:1,1,1", "model spec: box:LX,LY,LZ | rect:LX,LY | vessel:LEN,R0,BULGE,BEND | wing:SPAN,CHORD,THICK")
	gridFlag := flag.String("grid", "8,8,8", "grid resolution: NX,NY,NZ (box/wing), NX,NY (rect), NS,N (vessel)")
	out := flag.String("o", "mesh.pumi", "output mesh file")
	flag.Parse()

	spec, err := cmdutil.ParseModelSpec(*modelFlag)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	grid, err := parseGrid(*gridFlag)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	_, typed := spec.Build()
	var m *mesh.Mesh
	switch t := typed.(type) {
	case *gmi.RectModel:
		if len(grid) != 2 {
			cmdutil.Usagef("rect needs -grid NX,NY")
		}
		m = meshgen.Rect2D(t, grid[0], grid[1])
	case *gmi.BoxModel:
		if len(grid) != 3 {
			cmdutil.Usagef("%s needs -grid NX,NY,NZ", spec.Kind)
		}
		m = meshgen.Box3D(t, grid[0], grid[1], grid[2])
	case *gmi.VesselModel:
		if len(grid) != 2 {
			cmdutil.Usagef("vessel needs -grid NS,N")
		}
		m = meshgen.Vessel3D(t, grid[0], grid[1])
	default:
		cmdutil.Usagef("unsupported model kind %q", spec.Kind)
	}
	if err := m.CheckConsistency(); err != nil {
		cmdutil.Failf("generated mesh inconsistent: %v", err)
	}
	if err := meshio.SaveFile(*out, m); err != nil {
		cmdutil.Fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
	cmdutil.PrintMeshStats(os.Stdout, m)
}

func parseGrid(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad grid component %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
