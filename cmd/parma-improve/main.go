// parma-improve runs ParMA multi-criteria partition improvement on a
// partitioned mesh: it loads a mesh and an element assignment,
// distributes the mesh across an in-process parallel run, balances with
// the given priority list, and reports per-entity imbalance before and
// after (a Table II-style report for arbitrary inputs).
//
// Usage:
//
//	parma-improve -mesh aaa.pumi -model vessel:10,1,0.6,1.2 \
//	    -assign aaa.part -ranks 8 -priority "Vtx=Edge>Rgn" -tol 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

func main() {
	cmdutil.SetTool("parma-improve")
	meshFile := flag.String("mesh", "", "input mesh file")
	modelFlag := flag.String("model", "", "model spec matching the mesh")
	assignFile := flag.String("assign", "", "element assignment file (from pumi-part)")
	ranks := flag.Int("ranks", 4, "process count (parts are spread over ranks)")
	priority := flag.String("priority", "Rgn", "ParMA priority list, e.g. Vtx>Rgn or Vtx=Edge>Rgn")
	tol := flag.Float64("tol", 0.05, "imbalance tolerance (0.05 = 5%)")
	iters := flag.Int("iters", 60, "max diffusion iterations per entity type")
	split := flag.Bool("split", false, "run heavy part splitting before diffusion")
	flag.Parse()
	if *meshFile == "" || *assignFile == "" {
		cmdutil.Usagef("-mesh and -assign are required")
	}
	ms, err := cmdutil.ParseModelSpec(*modelFlag)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	model, _ := ms.Build()

	af, err := os.Open(*assignFile)
	if err != nil {
		cmdutil.Fail(err)
	}
	assign, err := meshio.ReadAssignment(af)
	af.Close()
	if err != nil {
		cmdutil.Fail(err)
	}
	nparts := 0
	for _, p := range assign {
		if int(p)+1 > nparts {
			nparts = int(p) + 1
		}
	}
	if nparts%*ranks != 0 {
		cmdutil.Usagef("part count %d must be divisible by ranks %d", nparts, *ranks)
	}
	pri, err := parma.ParsePriority(*priority)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}

	err = pcu.Run(*ranks, func(ctx *pcu.Ctx) error {
		// Only rank 0 loads; reconcile its local failure across the
		// world before entering the collective schedule, so a bad file
		// fails every rank instead of deadlocking the others in Adopt.
		var serial *mesh.Mesh
		var loadErr error
		if ctx.Rank() == 0 {
			serial, loadErr = meshio.LoadFile(*meshFile, model)
			if loadErr == nil && serial.Count(serial.Dim()) != len(assign) {
				loadErr = fmt.Errorf("assignment has %d entries for %d elements",
					len(assign), serial.Count(serial.Dim()))
			}
		}
		if err := meshio.GatherErrors(ctx, loadErr, "loading mesh on rank 0"); err != nil {
			return err
		}
		dim := ms.Dim()
		dm := partition.Adopt(ctx, model, dim, serial, nparts / *ranks)
		var plan map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			plan = map[mesh.Ent]int32{}
			i := 0
			for el := range serial.Elements() {
				plan[el] = assign[i]
				i++
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))

		report := func(stage string) {
			for d := 0; d <= dim; d++ {
				mean, imb := partition.EntityImbalance(dm, d)
				if ctx.Rank() == 0 {
					fmt.Printf("%-8s dim %d: mean %10.1f  imbalance %7.2f%%\n",
						stage, d, mean, (imb-1)*100)
				}
			}
		}
		report("before")
		start := time.Now()
		if *split {
			res := parma.HeavyPartSplit(dm, parma.Config{Tolerance: 1 + *tol, MaxIters: *iters})
			if ctx.Rank() == 0 {
				fmt.Printf("heavy part split: %d merges, %d pieces, imbalance %.2f%% -> %.2f%%\n",
					res.Merges, res.SplitPieces, (res.Before-1)*100, (res.After-1)*100)
			}
		}
		res := parma.Balance(dm, pri, parma.Config{Tolerance: 1 + *tol, MaxIters: *iters})
		elapsed := time.Since(start)
		report("after")
		if ctx.Rank() == 0 {
			fmt.Printf("ParMA %s: %v", pri, elapsed)
			for _, lv := range res.Levels {
				fmt.Printf("  [dim %d: %d iters, %.2f%% -> %.2f%%]",
					lv.Dim, lv.Iters, (lv.Before-1)*100, (lv.After-1)*100)
			}
			fmt.Println()
		}
		return partition.CheckDistributed(dm)
	})
	if err != nil {
		cmdutil.Fail(err)
	}
}
