// pumi-adapt adapts a mesh to a size field and writes the result: the
// serial entry point to the adaptation machinery (the distributed path
// is exercised by examples/m6adapt and pumi-bench -exp fig13).
//
// Size field specs:
//
//	uniform:H                 constant target edge length H
//	band:AXIS,CENTER,WIDTH,FINE,COARSE
//	                          FINE inside |axis-CENTER|<WIDTH, else COARSE
//
// Usage:
//
//	pumi-adapt -mesh box.pumi -model box:1,1,1 -size uniform:0.05 -o fine.pumi
//	pumi-adapt -mesh wing.pumi -model wing:4,2,0.5 -size band:x,2,0.3,0.05,0.5 -o shock.pumi
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/fastmath/pumi-go/internal/adapt"
	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/vec"
)

func main() {
	cmdutil.SetTool("pumi-adapt")
	meshFile := flag.String("mesh", "", "input mesh file")
	modelFlag := flag.String("model", "", "model spec matching the mesh (for boundary snapping)")
	sizeFlag := flag.String("size", "", "size field spec: uniform:H | band:AXIS,CENTER,WIDTH,FINE,COARSE")
	out := flag.String("o", "adapted.pumi", "output mesh file")
	coarsen := flag.Bool("coarsen", true, "also collapse over-resolved edges")
	rounds := flag.Int("rounds", 15, "max refinement rounds")
	flag.Parse()
	if *meshFile == "" || *sizeFlag == "" {
		cmdutil.Usagef("-mesh and -size are required")
	}
	ms, err := cmdutil.ParseModelSpec(*modelFlag)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	model, _ := ms.Build()
	size, err := parseSize(*sizeFlag)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	m, err := meshio.LoadFile(*meshFile, model)
	if err != nil {
		cmdutil.Fail(err)
	}
	before := m.Count(m.Dim())
	splits, collapses := adapt.Adapt(m, size, nil, *coarsen, *rounds)
	if err := m.CheckConsistency(); err != nil {
		cmdutil.Failf("adapted mesh inconsistent: %v", err)
	}
	fmt.Printf("adapted: %d -> %d elements (%d splits, %d collapses)\n",
		before, m.Count(m.Dim()), splits, collapses)
	if n := len(adapt.MarkLongEdges(m, size)); n > 0 {
		fmt.Printf("warning: %d edges still exceed the size field (raise -rounds)\n", n)
	}
	if err := meshio.SaveFile(*out, m); err != nil {
		cmdutil.Fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
	cmdutil.PrintMeshStats(os.Stdout, m)
}

func parseSize(s string) (adapt.SizeField, error) {
	kind, rest, _ := strings.Cut(s, ":")
	fields := strings.Split(rest, ",")
	switch strings.ToLower(kind) {
	case "uniform":
		if len(fields) != 1 {
			return nil, fmt.Errorf("uniform needs one parameter")
		}
		h, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || h <= 0 {
			return nil, fmt.Errorf("bad size %q", fields[0])
		}
		return adapt.Uniform(h), nil
	case "band":
		if len(fields) != 5 {
			return nil, fmt.Errorf("band needs AXIS,CENTER,WIDTH,FINE,COARSE")
		}
		axis := map[string]int{"x": 0, "y": 1, "z": 2}[strings.ToLower(fields[0])]
		var vals [4]float64
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad band parameter %q", fields[i+1])
			}
			vals[i] = v
		}
		center, width, fine, coarse := vals[0], vals[1], vals[2], vals[3]
		return func(p vec.V) float64 {
			if math.Abs(p.Comp(axis)-center) < width {
				return fine
			}
			return coarse
		}, nil
	}
	return nil, fmt.Errorf("unknown size field kind %q", kind)
}
