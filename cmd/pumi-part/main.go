// pumi-part partitions a mesh with one of the global partitioners and
// writes the element-to-part assignment, reporting the balance and cut
// quality of the result.
//
// Usage:
//
//	pumi-part -mesh aaa.pumi -model vessel:10,1,0.6,1.2 -parts 64 -method hypergraph -o aaa.part
//	pumi-part -mesh box.pumi -model box:1,1,1 -parts 16 -method rcb
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/zpart"
)

func main() {
	cmdutil.SetTool("pumi-part")
	meshFile := flag.String("mesh", "", "input mesh file (from pumi-gen)")
	modelFlag := flag.String("model", "", "model spec matching the mesh (optional; used for snapping metadata)")
	parts := flag.Int("parts", 4, "number of parts")
	method := flag.String("method", "rcb", "partitioner: rcb | rib | graph | hypergraph")
	out := flag.String("o", "", "output assignment file (optional)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit; expiring aborts the run")
	flag.Parse()
	defer cmdutil.WithTimeout(*timeout)()
	if *meshFile == "" {
		cmdutil.Usagef("-mesh is required")
	}
	model := cmdutilModel(*modelFlag)
	m, err := meshio.LoadFile(*meshFile, model)
	if err != nil {
		cmdutil.Fail(err)
	}
	start := time.Now()
	var assign []int32
	switch *method {
	case "rcb":
		in, _ := zpart.Centroids(m)
		assign = zpart.RCB(in, *parts)
	case "rib":
		in, _ := zpart.Centroids(m)
		assign = zpart.RIB(in, *parts)
	case "graph":
		g, _ := zpart.DualGraph(m)
		assign = zpart.MLGraph(g, *parts)
	case "hypergraph":
		h, _ := zpart.ElementHypergraph(m, 0)
		assign = zpart.PHG(h, *parts)
	default:
		cmdutil.Usagef("unknown method %q", *method)
	}
	elapsed := time.Since(start)

	sizes := make([]int64, *parts)
	for _, p := range assign {
		sizes[p]++
	}
	var max, total int64
	for _, s := range sizes {
		total += s
		if s > max {
			max = s
		}
	}
	mean := float64(total) / float64(*parts)
	fmt.Printf("method %s: %d elements to %d parts in %v\n", *method, total, *parts, elapsed)
	fmt.Printf("element balance: mean %.1f, max %d, imbalance %.2f%%\n",
		mean, max, (float64(max)/mean-1)*100)
	g, _ := zpart.DualGraph(m)
	fmt.Printf("dual-graph edge cut: %.0f\n", g.EdgeCut(assign))
	h, _ := zpart.ElementHypergraph(m, 0)
	fmt.Printf("hypergraph connectivity-1 cut: %.0f\n", h.ConnectivityCut(assign))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cmdutil.Fail(err)
		}
		defer f.Close()
		if err := meshio.WriteAssignment(f, assign); err != nil {
			cmdutil.Fail(err)
		}
		if err := f.Close(); err != nil {
			cmdutil.Fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func cmdutilModel(spec string) *gmi.Model {
	if spec == "" {
		return nil
	}
	ms, err := cmdutil.ParseModelSpec(spec)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	model, _ := ms.Build()
	return model
}
