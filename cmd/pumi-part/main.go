// pumi-part partitions a mesh with one of the global partitioners and
// writes the element-to-part assignment, reporting the balance and cut
// quality of the result.
//
// Usage:
//
//	pumi-part -mesh aaa.pumi -model vessel:10,1,0.6,1.2 -parts 64 -method hypergraph -o aaa.part
//	pumi-part -mesh box.pumi -model box:1,1,1 -parts 16 -method rcb
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/zpart"
)

func main() {
	cmdutil.SetTool("pumi-part")
	meshFile := flag.String("mesh", "", "input mesh file (from pumi-gen)")
	modelFlag := flag.String("model", "", "model spec matching the mesh (optional; used for snapping metadata)")
	parts := flag.Int("parts", 4, "number of parts")
	method := flag.String("method", "rcb", "partitioner: rcb | rib | graph | hypergraph")
	out := flag.String("o", "", "output assignment file (optional)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit; expiring aborts the run")
	sanitize := flag.Bool("san", false, "after partitioning, distribute the assignment across in-process ranks and verify the distributed mesh under pumi-san")
	tracePath := flag.String("trace", "", cmdutil.TraceUsage)
	listenAddr := flag.String("listen", "", cmdutil.ListenUsage)
	flag.Parse()
	defer cmdutil.WithTimeout(*timeout)()
	defer cmdutil.StartTrace(*tracePath)()
	defer cmdutil.StartListen(*listenAddr)()
	if *meshFile == "" {
		cmdutil.Usagef("-mesh is required")
	}
	model := cmdutilModel(*modelFlag)
	m, err := meshio.LoadFile(*meshFile, model)
	if err != nil {
		cmdutil.Fail(err)
	}
	start := time.Now()
	var assign []int32
	switch *method {
	case "rcb":
		in, _ := zpart.Centroids(m)
		assign = zpart.RCB(in, *parts)
	case "rib":
		in, _ := zpart.Centroids(m)
		assign = zpart.RIB(in, *parts)
	case "graph":
		g, _ := zpart.DualGraph(m)
		assign = zpart.MLGraph(g, *parts)
	case "hypergraph":
		h, _ := zpart.ElementHypergraph(m, 0)
		assign = zpart.PHG(h, *parts)
	default:
		cmdutil.Usagef("unknown method %q", *method)
	}
	elapsed := time.Since(start)

	sizes := make([]int64, *parts)
	for _, p := range assign {
		sizes[p]++
	}
	var max, total int64
	for _, s := range sizes {
		total += s
		if s > max {
			max = s
		}
	}
	mean := float64(total) / float64(*parts)
	fmt.Printf("method %s: %d elements to %d parts in %v\n", *method, total, *parts, elapsed)
	fmt.Printf("element balance: mean %.1f, max %d, imbalance %.2f%%\n",
		mean, max, (float64(max)/mean-1)*100)
	g, _ := zpart.DualGraph(m)
	fmt.Printf("dual-graph edge cut: %.0f\n", g.EdgeCut(assign))
	h, _ := zpart.ElementHypergraph(m, 0)
	fmt.Printf("hypergraph connectivity-1 cut: %.0f\n", h.ConnectivityCut(assign))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cmdutil.Fail(err)
		}
		defer f.Close()
		if err := meshio.WriteAssignment(f, assign); err != nil {
			cmdutil.Fail(err)
		}
		if err := f.Close(); err != nil {
			cmdutil.Fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *sanitize {
		// Last, because the migration consumes the serial mesh.
		if err := sanVerify(m, model, assign, *parts); err != nil {
			cmdutil.Fail(err)
		}
		runs, hash := pcu.SanSummary()
		fmt.Printf("pumi-san: distributed verify clean (%d run(s), op-sequence hash %#016x)\n", runs, hash)
	}
}

// sanVerify replays the element assignment as a real migration: one
// in-process rank per part adopts the serial mesh, migrates every
// element to its assigned part, and runs the distributed-mesh verifier
// — all under pumi-san, so the migration protocol's collective schedule
// is cross-checked rank-against-rank and every mesh write is checked
// for ownership. Element index i is the i-th element of m.Elements(),
// the canonical order shared by all the partitioners' inputs.
func sanVerify(m *mesh.Mesh, model *gmi.Model, assign []int32, parts int) error {
	els := ds.Collect(m.Elements())
	if len(els) != len(assign) {
		return fmt.Errorf("assignment covers %d elements, mesh has %d", len(assign), len(els))
	}
	san.Enable()
	defer san.Disable()
	_, err := pcu.RunOpt(parts, pcu.Options{Sanitize: true}, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = m
		}
		dm := partition.Adopt(ctx, model, m.Dim(), serial, 1)
		var amap map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			amap = make(map[mesh.Ent]int32, len(els))
			for i, el := range els {
				amap[el] = assign[i]
			}
		}
		if err := partition.TryMigrate(dm, partition.PlansFromAssignment(dm, amap)); err != nil {
			return err
		}
		return partition.Verify(dm)
	})
	return err
}

func cmdutilModel(spec string) *gmi.Model {
	if spec == "" {
		return nil
	}
	ms, err := cmdutil.ParseModelSpec(spec)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	model, _ := ms.Build()
	return model
}
