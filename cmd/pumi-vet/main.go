// Command pumi-vet runs PUMI's project-specific static analyzers over
// the module. It is the static half of the correctness tooling (the
// dynamic half is `go test -race` plus mesh.VerifyParallel):
//
//	go run ./cmd/pumi-vet ./...
//
// Exit status is 0 when the tree is clean, 1 when any analyzer fired,
// 2 on usage or load errors. See internal/lint for the analyzers:
//
//	ctxescape     *pcu.Ctx escaping its goroutine (directly or via helpers)
//	collmismatch  collectives under rank-dependent branches, however
//	              many calls deep the collective hides
//	bufdiscipline stale phase buffers / unchecked message readers
//	enthandle     cross-part entity-handle comparisons
//	maporder      map iteration order flowing into sends/reductions
//	phaseorder    begin/to/exchange ordering of phased exchanges
//
// The analyzers are interprocedural: a pre-pass builds a callgraph with
// per-function summaries (reaches a collective? leaks its Ctx
// parameter? contributes sends?), so wrapping a violation in helper
// functions does not hide it.
//
// `-json` switches the report to NDJSON, one object per finding on
// stdout ({"file","line","col","analyzer","message"}), for editors and
// CI; the human format stays the default.
//
// Code that violates an invariant on purpose — the deadlock-diagnosis
// tests skip collectives on some ranks to prove the watchdog catches
// it — suppresses a finding with a directive on or directly above the
// offending line:
//
//	pcu.SumInt64(c, 1) //pumi-vet:ignore collmismatch
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/lint"
)

func main() {
	cmdutil.SetTool("pumi-vet")
	var (
		list    = flag.Bool("list", false, "list analyzers and exit")
		only    = flag.String("analyzers", "", "comma-separated subset of analyzers to run")
		noTests = flag.Bool("notests", false, "skip _test.go files")
		jsonOut = flag.Bool("json", false, "emit NDJSON (one JSON object per finding) instead of the human format")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pumi-vet [flags] [packages]\n\n"+
			"Packages are directories, optionally ending in /... for a recursive\n"+
			"walk (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			cmdutil.Usagef("unknown analyzer %q", name)
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	loader.IncludeTests = !*noTests
	pkgs, err := loader.Load(cwd, flag.Args()...)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		if *jsonOut {
			fmt.Println(d.JSON())
		} else {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		cmdutil.Failf("%d finding(s)", len(diags))
	}
}
