// Command pumi-vet runs PUMI's project-specific static analyzers over
// the module. It is the static half of the correctness tooling (the
// dynamic half is `go test -race` plus mesh.VerifyParallel):
//
//	go run ./cmd/pumi-vet ./...
//
// Exit status is 0 when the tree is clean, 1 when any analyzer fired,
// 2 on usage or load errors. See internal/lint for the analyzers:
//
//	ctxescape     *pcu.Ctx escaping its goroutine (directly or via helpers)
//	collmismatch  collectives under rank-dependent branches, however
//	              many calls deep the collective hides
//	bufdiscipline stale phase buffers / unchecked message readers
//	enthandle     cross-part entity-handle comparisons
//	maporder      map iteration order flowing into sends/reductions
//	phaseorder    begin/to/exchange ordering of phased exchanges
//	collseq       rank-dependent branches/loops with divergent
//	              collective schedules, proved over inferred effect terms
//	rankdiv       rank-derived values (arithmetic on Rank(), rank-indexed
//	              data, rank-returning helpers) guarding collectives or
//	              loop bounds without a reconciling collective
//
// The analyzers are interprocedural: a pre-pass builds a callgraph with
// per-function summaries (reaches a collective? leaks its Ctx
// parameter? contributes sends? returns a rank-derived value?) and a
// communication-effect term per function, so wrapping a violation in
// helper functions does not hide it.
//
// Output formats: the human format is the default; `-json` switches to
// NDJSON, one object per finding ({"file","line","col","analyzer",
// "message"}); `-sarif` emits a SARIF 2.1.0 log for GitHub code
// scanning and SARIF-aware editors. `-checksarif FILE` validates a
// previously written SARIF file (the CI smoke lane).
//
// Protocol automata: `-emit-automata` compiles the communication-effect
// terms of the standard entry points (parma.Balance, partition.Migrate,
// meshio checkpoints, pcu.Agree, chaos.RunRecoverable) into minimal
// DFAs and writes the versioned pumi-proto/1 JSON artifact to stdout;
// the committed copy under internal/lint/automata/golden/ is enforced
// by `make proto-check`, loaded online by pcu (Options.Conform) and
// replayed offline by `pumi-trace -conform`. `-effects [-func substr]
// [-v]` prints the inferred effect terms themselves — the static view
// the analyzers prove over and the runtime projection the automata are
// compiled from (-v adds each schedule's derivative exploration).
//
// Self-hosting gate: `-baseline FILE` filters findings through a
// committed baseline — only new findings (and stale baseline entries)
// fail the run; `-writebaseline FILE` records the current findings as
// the new baseline. `make vet-self` wires these to
// internal/lint/selfbaseline.txt.
//
// Code that violates an invariant on purpose — the deadlock-diagnosis
// tests skip collectives on some ranks to prove the watchdog catches
// it — suppresses a finding with a directive on or directly above the
// offending line:
//
//	pcu.SumInt64(c, 1) //pumi-vet:ignore collmismatch
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/lint"
)

func main() {
	cmdutil.SetTool("pumi-vet")
	var (
		list       = flag.Bool("list", false, "list analyzers and exit")
		only       = flag.String("analyzers", "", "comma-separated subset of analyzers to run")
		noTests    = flag.Bool("notests", false, "skip _test.go files")
		jsonOut    = flag.Bool("json", false, "emit NDJSON (one JSON object per finding) instead of the human format")
		sarifOut   = flag.Bool("sarif", false, "emit a SARIF 2.1.0 log instead of the human format")
		baseline   = flag.String("baseline", "", "baseline file of accepted findings; only new findings fail the run")
		writeBase  = flag.String("writebaseline", "", "write the current findings to this baseline file and exit 0")
		checkSarif = flag.String("checksarif", "", "validate a SARIF file produced by -sarif and exit")
		nonEmpty   = flag.Bool("nonempty", false, "with -checksarif, also fail if the log holds zero results")
		emitAuto   = flag.Bool("emit-automata", false, "compile the protocol automata of the standard entry points to a pumi-proto/1 JSON artifact on stdout and exit")
		effects    = flag.Bool("effects", false, "print the inferred communication-effect terms (static and runtime) and exit")
		funcPat    = flag.String("func", "", "with -effects, show only functions whose qualified name contains this substring")
		verbose    = flag.Bool("v", false, "with -effects, also print the derivative exploration of each runtime schedule")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pumi-vet [flags] [packages]\n\n"+
			"Packages are directories, optionally ending in /... for a recursive\n"+
			"walk (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *checkSarif != "" {
		data, err := os.ReadFile(*checkSarif)
		if err != nil {
			cmdutil.Usagef("%v", err)
		}
		n, err := lint.CheckSARIF(data)
		if err != nil {
			cmdutil.Failf("%v", err)
		}
		if *nonEmpty && n == 0 {
			cmdutil.Failf("sarif log %s is valid but holds zero results", *checkSarif)
		}
		fmt.Printf("sarif ok: %d result(s)\n", n)
		return
	}
	if *jsonOut && *sarifOut {
		cmdutil.Usagef("-json and -sarif are mutually exclusive")
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			cmdutil.Usagef("unknown analyzer %q", name)
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}
	loader.IncludeTests = !*noTests
	if *emitAuto {
		// The artifact must be a pure function of the non-test sources.
		loader.IncludeTests = false
	}
	pkgs, err := loader.Load(cwd, flag.Args()...)
	if err != nil {
		cmdutil.Usagef("%v", err)
	}

	if *emitAuto {
		set, err := lint.EmitAutomata(pkgs, nil)
		if err != nil {
			cmdutil.Failf("%v", err)
		}
		out, err := set.Encode()
		if err != nil {
			cmdutil.Failf("%v", err)
		}
		os.Stdout.Write(out)
		return
	}
	if *effects {
		fmt.Print(lint.FormatEffects(pkgs, *funcPat, *verbose))
		return
	}

	diags := lint.Run(pkgs, analyzers)
	root := loader.ModRoot()

	if *writeBase != "" {
		body := lint.FormatBaseline(diags, root)
		if err := os.WriteFile(*writeBase, []byte(body), 0o644); err != nil {
			cmdutil.Usagef("%v", err)
		}
		fmt.Printf("wrote %d baseline finding(s) to %s\n", len(diags), *writeBase)
		return
	}

	stale := []string(nil)
	if *baseline != "" {
		accepted, err := lint.LoadBaseline(*baseline)
		if err != nil {
			cmdutil.Usagef("%v", err)
		}
		diags, stale = lint.FilterBaseline(diags, accepted, root)
	}

	switch {
	case *sarifOut:
		out, err := lint.SARIF(analyzers, diags)
		if err != nil {
			cmdutil.Failf("%v", err)
		}
		os.Stdout.Write(out)
	case *jsonOut:
		for _, d := range diags {
			fmt.Println(d.JSON())
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, k := range stale {
		fmt.Fprintf(os.Stderr, "stale baseline entry (no longer reported): %s\n", k)
	}
	if len(diags) > 0 || len(stale) > 0 {
		cmdutil.Failf("%d new finding(s), %d stale baseline entr(ies)", len(diags), len(stale))
	}
}
