// pumi-trace explores flight-recorder output: the Chrome trace-event
// timelines and metrics summaries written by pumi-bench -trace and
// pumi-part -trace (and by trace.WriteChrome / WriteSummary directly).
//
//	pumi-trace out.json                      # dump the timeline
//	pumi-trace -rank 3 out.json              # one rank's track
//	pumi-trace -phase migrate out.json       # phases matching a substring
//	pumi-trace out.summary.json              # render the metrics summary
//	pumi-trace before.json after.json        # diff per-phase durations
//	pumi-trace -validate out.json out.summary.json
//	pumi-trace -critical out.json              # per-phase straggler blame table
//	pumi-trace -conform automata.json -entry chaos.RunRecoverable out.json
//
// Every reader accepts gzip-compressed recordings (.json.gz)
// transparently.
//
// -conform replays each rank's blocking-op stream through a protocol
// automaton from a pumi-proto/1 artifact (pumi-vet -emit-automata) —
// the offline counterpart of running the world with pcu.Options.Conform
// set. World markers in the trace become shrink transitions, so a
// supervised run's epochs replay as one word. A rank whose stream walks
// off the automaton fails the run with the same witness the online
// monitor would have raised; a rank ending mid-protocol (it died with a
// revoked world) is reported but legal.
//
// Timelines render interactively at https://ui.perfetto.dev; this tool
// is the terminal-side view of the same files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/fastmath/pumi-go/internal/cmdutil"
	"github.com/fastmath/pumi-go/internal/lint/automata"
	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/trace"
)

func main() {
	cmdutil.SetTool("pumi-trace")
	rank := flag.Int("rank", -1, "show only this rank's track (-1 for all)")
	phase := flag.String("phase", "", "show only events whose name contains this substring")
	validate := flag.Bool("validate", false, "validate each file against its schema and exit; nonzero status on the first invalid file")
	critical := flag.Bool("critical", false, "print the critical-path blame table: each phase's arrival skew attributed to its last-arriving rank and the span that delayed it")
	conformFile := flag.String("conform", "", "pumi-proto/1 automata artifact; replay each rank's op stream through it and fail on violations")
	entry := flag.String("entry", "", "with -conform, the machine to enforce (defaults when the artifact holds exactly one)")
	flag.Parse()
	args := flag.Args()

	if *conformFile != "" {
		if len(args) != 1 {
			cmdutil.Usagef("-conform needs exactly one timeline file; got %d", len(args))
		}
		conform(*conformFile, *entry, args[0], *rank)
		return
	}

	if *critical {
		if len(args) != 1 {
			cmdutil.Usagef("-critical needs exactly one timeline file; got %d", len(args))
		}
		criticalPath(args[0])
		return
	}

	if *validate {
		if len(args) == 0 {
			cmdutil.Usagef("-validate needs at least one file")
		}
		for _, path := range args {
			kind, err := validateFile(path)
			if err != nil {
				cmdutil.Fail(fmt.Errorf("%s: %w", path, err))
			}
			fmt.Printf("%s: valid %s\n", path, kind)
		}
		return
	}

	switch len(args) {
	case 1:
		dump(args[0], *rank, *phase)
	case 2:
		diff(args[0], args[1], *phase)
	default:
		cmdutil.Usagef("need one file (dump) or two files (diff); got %d", len(args))
	}
}

// conform replays every rank's recorded op stream through one machine
// of a pumi-proto/1 artifact and reports per-rank verdicts. Exit is
// nonzero when any rank steps off the automaton; a rank that merely
// ends mid-protocol (non-accepting) is noted but legal — it died with a
// revoked world.
func conform(artifact, entry, tracePath string, only int) {
	set, err := automata.LoadFile(artifact)
	if err != nil {
		cmdutil.Fail(err)
	}
	if entry == "" {
		if len(set.Automata) != 1 {
			names := make([]string, len(set.Automata))
			for i := range set.Automata {
				names[i] = set.Automata[i].Entry
			}
			cmdutil.Usagef("artifact holds %d machines; pick one with -entry (%s)",
				len(set.Automata), strings.Join(names, ", "))
		}
		entry = set.Automata[0].Entry
	}
	m := set.Find(entry)
	if m == nil {
		cmdutil.Usagef("artifact has no machine for entry %q", entry)
	}
	p, err := m.Protocol()
	if err != nil {
		cmdutil.Fail(err)
	}
	data := readTraceFile(tracePath)
	streams, err := trace.OpStreams(data, san.RuntimeCollectiveOps, "pcu.world", san.OpShrink)
	if err != nil {
		cmdutil.Fail(err)
	}
	if len(streams) == 0 {
		cmdutil.Failf("%s holds no blocking-op events", tracePath)
	}
	ranks := make([]int, 0, len(streams))
	for r := range streams {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	violations := 0
	fmt.Printf("conform %s: %d rank stream(s)\n", entry, len(streams))
	for _, r := range ranks {
		if only >= 0 && r != only {
			continue
		}
		res := san.Replay(p, r, streams[r])
		switch {
		case res.Err != nil:
			violations++
			fmt.Printf("rank %-3d VIOLATION at op %d: got %q in state %d, automaton expects %v\n",
				r, res.Err.Index, res.Err.Op, res.Err.State, res.Err.Expected)
		case res.Accepted:
			fmt.Printf("rank %-3d ok: %d op(s), %d shrink reset(s), accepted\n", r, res.Steps, res.Resets)
		default:
			fmt.Printf("rank %-3d incomplete: %d op(s) end mid-protocol in state %d (rank died with a revoked world?)\n",
				r, res.Steps, res.State)
		}
	}
	if violations > 0 {
		cmdutil.Failf("%d rank(s) violated protocol %s", violations, entry)
	}
}

// readTraceFile loads a recording, transparently decompressing
// gzip-compressed timelines (.json.gz) so every reader below works on
// plain bytes.
func readTraceFile(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		cmdutil.Fail(err)
	}
	plain, err := trace.MaybeGunzip(data)
	if err != nil {
		cmdutil.Fail(fmt.Errorf("%s: %w", path, err))
	}
	return plain
}

func validateFile(path string) (trace.FileKind, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return trace.FileUnknown, err
	}
	return trace.ValidateFile(data)
}

// criticalPath renders the blame table of one timeline: per phase, the
// arrival skew between first and last rank, which rank arrived last and
// what that rank was doing instead.
func criticalPath(path string) {
	rep, err := trace.CriticalPathChrome(readTraceFile(path))
	if err != nil {
		cmdutil.Fail(fmt.Errorf("%s: %w", path, err))
	}
	rep.Format(os.Stdout)
}

// chromeEvent mirrors the records trace.WriteChrome emits; only the
// fields this tool reads are declared.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData"`
}

// load validates a file and decodes it as either a timeline or a
// summary; exactly one of the returns is non-nil.
func load(path string) (*chromeFile, *trace.Summary) {
	data := readTraceFile(path)
	kind, err := trace.ValidateFile(data)
	if err != nil {
		cmdutil.Fail(fmt.Errorf("%s: %w", path, err))
	}
	switch kind {
	case trace.FileChrome:
		var cf chromeFile
		if err := json.Unmarshal(data, &cf); err != nil {
			cmdutil.Fail(fmt.Errorf("%s: %w", path, err))
		}
		return &cf, nil
	default:
		var s trace.Summary
		if err := json.Unmarshal(data, &s); err != nil {
			cmdutil.Fail(fmt.Errorf("%s: %w", path, err))
		}
		return nil, &s
	}
}

func dump(path string, rank int, phase string) {
	cf, sum := load(path)
	if sum != nil {
		dumpSummary(sum, rank, phase)
		return
	}
	dumpChrome(cf, rank, phase)
}

func dumpChrome(cf *chromeFile, rank int, phase string) {
	// Per-rank span stacks so Ends print their duration and nesting
	// renders as indentation. The writer sorted records by timestamp and
	// validation proved the B/E nesting, so a linear pass suffices.
	type open struct {
		name string
		ts   float64
	}
	stacks := map[int][]open{}
	show := func(tid int, name string) bool {
		return (rank < 0 || tid == rank) && (phase == "" || strings.Contains(name, phase))
	}
	for _, e := range cf.TraceEvents {
		st := stacks[e.Tid]
		switch e.Ph {
		case "M":
			continue
		case "B":
			if show(e.Tid, e.Name) {
				fmt.Printf("rank %-3d %12.3fus %s%s{\n", e.Tid, e.Ts, indent(len(st)), e.Name)
			}
			stacks[e.Tid] = append(st, open{name: e.Name, ts: e.Ts})
		case "E":
			d := 0.0
			depth := len(st)
			if depth > 0 {
				depth--
				d = e.Ts - st[depth].ts
				stacks[e.Tid] = st[:depth]
			}
			if show(e.Tid, e.Name) {
				fmt.Printf("rank %-3d %12.3fus %s}%s (%.3fus)\n", e.Tid, e.Ts, indent(depth), e.Name, d)
			}
		default: // instants and counters
			if show(e.Tid, e.Name) {
				fmt.Printf("rank %-3d %12.3fus %s%s %s\n", e.Tid, e.Ts, indent(len(st)), e.Name, renderArgs(e.Args))
			}
		}
	}
	for k, v := range cf.OtherData {
		if strings.HasPrefix(k, "dropped_") {
			fmt.Printf("# %s = %s event(s) lost to ring wrap\n", k, v)
		}
	}
}

func indent(depth int) string { return strings.Repeat("  ", depth) }

// renderArgs renders an instant's args deterministically (sorted keys).
func renderArgs(args map[string]any) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, args[k]))
	}
	return strings.Join(parts, " ")
}

func dumpSummary(s *trace.Summary, rank int, phase string) {
	fmt.Printf("%s: %d rank(s), %d event(s), %d dropped\n", s.Schema, s.Ranks, s.Events, s.Dropped)
	if len(s.Phases) > 0 {
		fmt.Printf("\n%-28s %8s %12s %12s %12s %6s\n", "phase", "count", "total_s", "max_rank_s", "avg_rank_s", "imb")
		for _, p := range s.Phases {
			if phase != "" && !strings.Contains(p.Name, phase) {
				continue
			}
			fmt.Printf("%-28s %8d %12.6f %12.6f %12.6f %6.2f\n",
				p.Name, p.Count, p.TotalSec, p.MaxRankSec, p.AvgRankSec, p.Imbalance)
		}
	}
	if len(s.Neighbors) > 0 {
		fmt.Printf("\n%-6s %-6s %10s %12s %10s  %s\n", "rank", "peer", "msgs", "bytes", "on_node", "size histogram (2^i buckets)")
		for _, n := range s.Neighbors {
			if rank >= 0 && n.Rank != rank {
				continue
			}
			fmt.Printf("%-6d %-6d %10d %12d %10d  %v\n", n.Rank, n.Peer, n.Msgs, n.Bytes, n.OnNodeMsgs, n.Hist)
		}
	}
	if len(s.Parma) > 0 {
		fmt.Printf("\nparma imbalance trajectory:\n")
		for _, p := range s.Parma {
			fmt.Printf("  dim %d iter %2d  imb %.4f\n", p.Dim, p.Iter, p.Imb)
		}
	}
}

// phaseTotal is one side of a diff row.
type phaseTotal struct {
	count int64
	sec   float64
}

// phaseTotals reduces either file kind to per-phase totals.
func phaseTotals(path string) map[string]phaseTotal {
	cf, sum := load(path)
	totals := map[string]phaseTotal{}
	if sum != nil {
		for _, p := range sum.Phases {
			totals[p.Name] = phaseTotal{count: p.Count, sec: p.TotalSec}
		}
		return totals
	}
	type open struct {
		name string
		ts   float64
	}
	stacks := map[int][]open{}
	for _, e := range cf.TraceEvents {
		st := stacks[e.Tid]
		switch e.Ph {
		case "B":
			stacks[e.Tid] = append(st, open{name: e.Name, ts: e.Ts})
		case "E":
			if n := len(st); n > 0 {
				t := totals[e.Name]
				t.count++
				t.sec += (e.Ts - st[n-1].ts) / 1e6
				totals[e.Name] = t
				stacks[e.Tid] = st[:n-1]
			}
		}
	}
	return totals
}

// diff compares per-phase durations of two recordings — before/after a
// change, or two configurations of the same run.
func diff(pathA, pathB, phase string) {
	a, b := phaseTotals(pathA), phaseTotals(pathB)
	names := map[string]bool{}
	for n := range a {
		names[n] = true
	}
	for n := range b {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		if phase == "" || strings.Contains(n, phase) {
			sorted = append(sorted, n)
		}
	}
	sort.Strings(sorted)
	fmt.Printf("%-28s %12s %12s %10s\n", "phase", "a_total_s", "b_total_s", "delta")
	for _, n := range sorted {
		ta, okA := a[n]
		tb, okB := b[n]
		switch {
		case !okA:
			fmt.Printf("%-28s %12s %12.6f %10s\n", n, "-", tb.sec, "added")
		case !okB:
			fmt.Printf("%-28s %12.6f %12s %10s\n", n, ta.sec, "-", "removed")
		case ta.sec > 0:
			fmt.Printf("%-28s %12.6f %12.6f %+9.1f%%\n", n, ta.sec, tb.sec, (tb.sec/ta.sec-1)*100)
		default:
			fmt.Printf("%-28s %12.6f %12.6f %10s\n", n, ta.sec, tb.sec, "n/a")
		}
	}
}
