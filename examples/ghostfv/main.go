// Ghost FV: a cell-centered finite-volume style computation on a
// distributed mesh — the paper's motivating use of ghosting. Each part
// holds one layer of read-only ghost elements so that a cell-gradient
// stencil (face neighbors) evaluates without per-iteration
// communication; only one tag synchronization per "time step" is
// needed. Run with:
//
//	go run ./examples/ghostfv
package main

import (
	"fmt"
	"log"
	"math"

	pumi "github.com/fastmath/pumi-go"
)

func main() {
	model := pumi.Box(2, 1, 1)
	const ranks = 6

	err := pumi.Run(ranks, func(ctx *pumi.Ctx) error {
		var serial *pumi.Mesh
		if ctx.Rank() == 0 {
			serial = pumi.BoxMesh(model, 12, 6, 6)
		}
		dm := pumi.Adopt(ctx, model.Model, 3, serial, 1)
		pumi.PartitionRCB(dm, serial)

		// Cell-centered data: u(c) = x + 2y + 3z at the cell centroid.
		for _, part := range dm.Parts {
			m := part.M
			tag, err := m.Tags.Create("u", pumi.TagFloat, 0)
			if err != nil {
				return err
			}
			for el := range m.Elements() {
				c := m.Centroid(el)
				m.Tags.SetFloat(tag, el, c.X+2*c.Y+3*c.Z)
			}
		}

		// One ghost layer across faces localizes every face-neighbor.
		pumi.Ghost(dm, 2, 1)
		// Push owner values into the ghost copies ("including tag
		// data", as the paper defines ghosts).
		pumi.SyncGhostFloatTag(dm, "u")

		// Least-squares cell gradient from face neighbors; for a linear
		// field the result is exact, which proves the ghost values are
		// in place (interior stencils would otherwise be truncated at
		// part boundaries).
		worst := 0.0
		cells := 0
		for _, part := range dm.Parts {
			m := part.M
			tag := m.Tags.Find("u")
			for el := range m.Elements() {
				if m.IsGhost(el) {
					continue
				}
				nbs := m.BridgeAdjacent(el, 2, 3)
				if len(nbs) < 3 {
					continue // corner cells: not enough stencil
				}
				u0, _ := m.Tags.GetFloat(tag, el)
				c0 := m.Centroid(el)
				// Normal equations for grad u from neighbor deltas.
				var a [3][3]float64
				var b [3]float64
				for _, nb := range nbs {
					un, ok := m.Tags.GetFloat(tag, nb)
					if !ok {
						return fmt.Errorf("neighbor %v has no value (ghost sync failed?)", nb)
					}
					d := m.Centroid(nb).Sub(c0)
					du := un - u0
					v := [3]float64{d.X, d.Y, d.Z}
					for r := 0; r < 3; r++ {
						for c := 0; c < 3; c++ {
							a[r][c] += v[r] * v[c]
						}
						b[r] += v[r] * du
					}
				}
				g, ok := solve3(a, b)
				if !ok {
					continue
				}
				e := math.Abs(g[0]-1) + math.Abs(g[1]-2) + math.Abs(g[2]-3)
				if e > worst {
					worst = e
				}
				cells++
			}
		}
		if ctx.Rank() == 0 {
			fmt.Printf("rank 0: evaluated gradients on %d cells\n", cells)
		}
		if worst > 1e-9 {
			return fmt.Errorf("gradient error %g: ghost stencils incomplete", worst)
		}
		if ctx.Rank() == 0 {
			fmt.Printf("cell gradients exact to %g — ghost stencils complete across part boundaries\n", worst)
		}
		pumi.RemoveGhosts(dm)
		return pumi.CheckDistributed(dm)
	})
	if err != nil {
		log.Fatal(err)
	}
}

// solve3 solves a 3x3 symmetric positive system by Gaussian elimination.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	for i := 0; i < 3; i++ {
		p := i
		for r := i + 1; r < 3; r++ {
			if math.Abs(a[r][i]) > math.Abs(a[p][i]) {
				p = r
			}
		}
		a[i], a[p] = a[p], a[i]
		b[i], b[p] = b[p], b[i]
		if math.Abs(a[i][i]) < 1e-14 {
			return [3]float64{}, false
		}
		for r := i + 1; r < 3; r++ {
			f := a[r][i] / a[i][i]
			for c := i; c < 3; c++ {
				a[r][c] -= f * a[i][c]
			}
			b[r] -= f * b[i]
		}
	}
	var x [3]float64
	for i := 2; i >= 0; i-- {
		s := b[i]
		for c := i + 1; c < 3; c++ {
			s -= a[i][c] * x[c]
		}
		x[i] = s / a[i][i]
	}
	return x, true
}
