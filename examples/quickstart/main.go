// Quickstart: the serial mesh API — build a classified mesh over an
// analytic model, interrogate adjacencies, attach tags and fields, and
// measure entities. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pumi "github.com/fastmath/pumi-go"
)

func main() {
	// The geometric model: a unit box with 8 model vertices, 12 model
	// edges, 6 model faces and 1 model region.
	model := pumi.Box(1, 1, 1)
	fmt.Printf("model: %d vertices, %d edges, %d faces, %d regions\n",
		model.Count(0), model.Count(1), model.Count(2), model.Count(3))

	// A structured tetrahedral mesh classified against it.
	m := pumi.BoxMesh(model, 4, 4, 4)
	fmt.Printf("mesh:  %d vertices, %d edges, %d faces, %d tets\n",
		m.Count(0), m.Count(1), m.Count(2), m.Count(3))

	// Adjacency interrogation is O(1) per neighbor in the complete
	// representation: any order, any direction.
	var v pumi.Ent
	for x := range m.Iter(0) {
		v = x
		break
	}
	fmt.Printf("first vertex %v at %v:\n", v, m.Coord(v))
	fmt.Printf("  %d edges, %d faces, %d regions around it\n",
		len(m.Adjacent(v, 1)), len(m.Adjacent(v, 2)), len(m.Adjacent(v, 3)))

	// Geometric classification links each mesh entity to the model
	// entity it discretizes.
	onBoundary := 0
	for f := range m.Iter(2) {
		if m.Classification(f).Dim == 2 {
			onBoundary++
		}
	}
	fmt.Printf("boundary faces: %d\n", onBoundary)

	// Tags attach arbitrary data; sets group entities.
	wall := m.Set("wall-faces")
	for f := range m.Iter(2) {
		if m.Classification(f).Dim == 2 {
			wall.Add(f)
		}
	}
	fmt.Printf("set %q holds %d faces\n", "wall-faces", wall.Len())

	// Fields hold nodal tensor data.
	u, err := pumi.NewField(m, "temperature", 1, pumi.Linear)
	if err != nil {
		log.Fatal(err)
	}
	u.SetByFunc(func(p pumi.Vec) []float64 { return []float64{p.X + p.Y} })
	for el := range m.Elements() {
		c := m.Centroid(el)
		got := u.Eval(el, c)
		fmt.Printf("temperature at centroid %v = %.3f\n", c, got[0])
		break
	}

	// Measures.
	vol := 0.0
	for el := range m.Elements() {
		vol += m.Measure(el)
	}
	fmt.Printf("total volume %.6f (exact: 1)\n", vol)

	if err := m.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("mesh is consistent")
}
