// AAA: the paper's abdominal-aorta-aneurysm workflow (Figs 11-12,
// Tables I-III) at example scale — generate the vessel surrogate,
// partition it with the hypergraph method, inspect the vertex imbalance
// spike, and repair it with ParMA multi-criteria improvement. Run with:
//
//	go run ./examples/aaa
package main

import (
	"fmt"
	"log"
	"time"

	pumi "github.com/fastmath/pumi-go"
)

func main() {
	// The AAA surrogate: a bent tube with an aneurysm bulge.
	model := pumi.Vessel(10, 1, 0.6, 1.2)
	const ranks, partsPerRank = 8, 4
	nparts := ranks * partsPerRank

	err := pumi.Run(ranks, func(ctx *pumi.Ctx) error {
		var serial *pumi.Mesh
		var assign []int32
		var phgTime time.Duration
		if ctx.Rank() == 0 {
			serial = pumi.VesselMesh(model, 24, 10)
			fmt.Printf("vessel mesh: %d tets, %d vertices\n", serial.Count(3), serial.Count(0))
			start := time.Now()
			h, _ := pumi.ElementHypergraph(serial, 0)
			assign = pumi.PHG(h, nparts)
			phgTime = time.Since(start)
			fmt.Printf("hypergraph partition (T0) to %d parts in %v\n", nparts, phgTime)
		}
		dm := pumi.Adopt(ctx, model.Model, 3, serial, partsPerRank)
		var plan map[pumi.Ent]int32
		if ctx.Rank() == 0 {
			plan = map[pumi.Ent]int32{}
			i := 0
			for el := range serial.Elements() {
				plan[el] = assign[i]
				i++
			}
		}
		pumi.Migrate(dm, pumi.PlansFromAssignment(dm, plan))

		report := func(stage string) {
			names := []string{"Vtx", "Edge", "Face", "Rgn"}
			if ctx.Rank() == 0 {
				fmt.Printf("%s:\n", stage)
			}
			for d := 0; d <= 3; d++ {
				mean, imb := pumi.EntityImbalance(dm, d)
				if ctx.Rank() == 0 {
					fmt.Printf("  %-5s mean %8.1f   imbalance %6.2f%%\n",
						names[d], mean, (imb-1)*100)
				}
			}
		}
		report("after hypergraph partitioning (T0)")

		// Test T2 of the paper: balance vertices and edges without
		// harming regions beyond tolerance.
		pri, err := pumi.ParsePriority("Vtx=Edge>Rgn")
		if err != nil {
			return err
		}
		start := time.Now()
		res := pumi.Balance(dm, pri, pumi.DefaultBalanceConfig())
		parmaTime := time.Since(start)
		report("after ParMA Vtx=Edge>Rgn (T2)")
		if ctx.Rank() == 0 {
			fmt.Printf("ParMA time %v vs hypergraph %v (levels: %+v)\n",
				parmaTime, phgTime, res.Levels)
		}

		// The partition model after improvement.
		pm := pumi.BuildPtnModel(dm)
		if ctx.Rank() == 0 {
			byDim := [4]int{}
			for _, pe := range pm.Ents {
				byDim[pe.Dim]++
			}
			fmt.Printf("partition model: %d P0, %d P1, %d P2, %d P3 entities\n",
				byDim[0], byDim[1], byDim[2], byDim[3])
		}
		return pumi.CheckDistributed(dm)
	})
	if err != nil {
		log.Fatal(err)
	}
}
