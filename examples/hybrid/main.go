// Hybrid: two-level architecture-aware mesh partitioning (paper §II-D,
// Figs 5/6) — partition first to nodes, then to the cores within each
// node, and observe that part boundaries split into on-node (shared
// memory) and off-node (network) classes. On-node boundaries can live
// implicitly in shared memory; only off-node boundaries cost explicit
// duplication and network traffic, so the two-level layout pushes
// sharing on-node. Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	pumi "github.com/fastmath/pumi-go"
)

const (
	nodes = 4
	cores = 4
)

// twoLevel assigns elements node-first (RCB across nodes), then
// core-level (local RIB within each node's chunk), so part ids land
// node-major like the rank layout. The node-level cuts match the first
// two levels of the one-level RCB, so the off-node boundary cannot
// exceed the one-level layout's inter-node sharing.
func twoLevel(serial *pumi.Mesh) map[pumi.Ent]int32 {
	in, els := pumi.Centroids(serial)
	nodeOf := pumi.RCB(in, nodes)
	plan := map[pumi.Ent]int32{}
	for nd := 0; nd < nodes; nd++ {
		var idx []int
		for i, a := range nodeOf {
			if int(a) == nd {
				idx = append(idx, i)
			}
		}
		var local pumi.GeomInput
		for _, i := range idx {
			local.Pts = append(local.Pts, in.Pts[i])
		}
		coreOf := pumi.RIB(local, cores)
		for j, i := range idx {
			plan[els[i]] = int32(nd*cores + int(coreOf[j]))
		}
	}
	return plan
}

// oblivious computes the same RCB parts but places them on cores
// round-robin across nodes, the way an architecture-unaware system
// might schedule them: geometric neighbors land on different nodes.
func oblivious(serial *pumi.Mesh) map[pumi.Ent]int32 {
	in, els := pumi.Centroids(serial)
	assign := pumi.RCB(in, nodes*cores)
	plan := map[pumi.Ent]int32{}
	for i, el := range els {
		p := int(assign[i])
		scattered := (p%nodes)*cores + p/nodes
		plan[el] = int32(scattered)
	}
	return plan
}

// aligned keeps RCB's natural nesting: consecutive part ids share
// nodes, which is exactly what its recursive bisection produces.
func aligned(serial *pumi.Mesh) map[pumi.Ent]int32 {
	in, els := pumi.Centroids(serial)
	assign := pumi.RCB(in, nodes*cores)
	plan := map[pumi.Ent]int32{}
	for i, el := range els {
		plan[el] = assign[i]
	}
	return plan
}

func run(name string, planner func(*pumi.Mesh) map[pumi.Ent]int32) {
	topo := pumi.Cluster(nodes, cores)
	model := pumi.Box(2, 2, 1)
	_, err := pumi.RunOn(nodes*cores, topo, func(ctx *pumi.Ctx) error {
		var serial *pumi.Mesh
		var plan map[pumi.Ent]int32
		if ctx.Rank() == 0 {
			serial = pumi.BoxMesh(model, 16, 16, 8)
			plan = planner(serial)
		}
		dm := pumi.Adopt(ctx, model.Model, 3, serial, 1)
		pumi.Migrate(dm, pumi.PlansFromAssignment(dm, plan))
		if err := pumi.CheckDistributed(dm); err != nil {
			return err
		}
		tr := pumi.GatherBoundaryTraffic(dm, 0)
		_, imb := pumi.EntityImbalance(dm, 3)
		if ctx.Rank() == 0 {
			offPct := float64(tr.SharedOffNode) / float64(tr.SharedTotal) * 100
			fmt.Printf("%-34s elem imb %5.2f%%  shared vtx %5d (off-node %5d = %4.1f%%)\n",
				name+":", (imb-1)*100, tr.SharedTotal, tr.SharedOffNode, offPct)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	fmt.Printf("machine: %d nodes x %d cores\n", nodes, cores)
	run("architecture-oblivious placement", oblivious)
	run("node-aligned one-level RCB", aligned)
	run("two-level (nodes, then cores)", twoLevel)
}
