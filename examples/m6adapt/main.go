// M6 adapt: the paper's shock-adaptation study (Figs 7/8/13) at example
// scale — adapt a wing surrogate to a shock-front size field without
// load balancing, show the element-imbalance histogram, then repair it
// with ParMA heavy part splitting plus diffusion. A solution field is
// carried through the adaptation. Run with:
//
//	go run ./examples/m6adapt
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	pumi "github.com/fastmath/pumi-go"
)

func main() {
	model := pumi.Wing(4, 2, 0.5)
	const ranks, parts = 8, 16

	err := pumi.Run(ranks, func(ctx *pumi.Ctx) error {
		var serial *pumi.Mesh
		if ctx.Rank() == 0 {
			serial = pumi.BoxMesh(model, 16, 8, 4)
		}
		dm := pumi.Adopt(ctx, model.Model, 3, serial, parts/ranks)
		pumi.PartitionRCB(dm, serial)

		// A "mach number" style field to carry through adaptation.
		for _, part := range dm.Parts {
			f, err := pumi.NewField(part.M, "mach", 1, pumi.Linear)
			if err != nil {
				return err
			}
			f.SetByFunc(func(p pumi.Vec) []float64 {
				return []float64{2 - math.Tanh((p.X+0.35*p.Y-2.35)*8)}
			})
		}

		// The shock front: a slanted band of fine resolution.
		size := func(p pumi.Vec) float64 {
			d := math.Abs((p.X + 0.35*p.Y) - 2.35)
			if d < 0.25 {
				return 0.07
			}
			return 0.6
		}
		before := pumi.GlobalCount(dm, 3)
		opts := pumi.DefaultAdaptOptions()
		opts.Transfer = pumi.NewFieldTransfer("mach")
		st := pumi.AdaptParallel(dm, size, opts)
		after := pumi.GlobalCount(dm, 3)
		if ctx.Rank() == 0 {
			fmt.Printf("adapted %d -> %d elements in %d rounds (%d splits, %d collapses, %d localized)\n",
				before, after, st.Rounds, st.Splits, st.Collapses, st.Localized)
		}

		// Fig 13: the histogram of element imbalance with no load
		// balancing applied prior to (or during) adaptation.
		counts := pumi.GatherCounts(dm, 3)
		if ctx.Rank() == 0 {
			mean := 0.0
			for _, c := range counts {
				mean += float64(c)
			}
			mean /= float64(len(counts))
			fmt.Println("element imbalance per part (count/average):")
			for p, c := range counts {
				r := float64(c) / mean
				fmt.Printf("  part %2d: %6d  %5.2f %s\n", p, c, r,
					strings.Repeat("#", int(r*10)))
			}
		}
		_, imb := pumi.EntityImbalance(dm, 3)
		if ctx.Rank() == 0 {
			fmt.Printf("peak imbalance %.2f\n", imb)
		}

		// Repair: heavy part splitting, then diffusion (paper §III-B).
		cfg := pumi.DefaultBalanceConfig()
		sres := pumi.HeavyPartSplit(dm, cfg)
		pri, _ := pumi.ParsePriority("Rgn")
		pumi.Balance(dm, pri, cfg)
		_, fixed := pumi.EntityImbalance(dm, 3)
		if ctx.Rank() == 0 {
			fmt.Printf("after heavy part splitting (%d merges, %d pieces) + diffusion: %.2f\n",
				sres.Merges, sres.SplitPieces, fixed)
		}

		// The transferred field is still exact for the smooth profile
		// away from truncation error: spot check its range.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, part := range dm.Parts {
			f := pumi.FindField(part.M, "mach", pumi.Linear)
			for v := range part.M.Iter(0) {
				if x, ok := f.Get(v); ok {
					lo = math.Min(lo, x[0])
					hi = math.Max(hi, x[0])
				}
			}
		}
		if ctx.Rank() == 0 {
			fmt.Printf("transferred field range: [%.3f, %.3f]\n", lo, hi)
		}
		return pumi.CheckDistributed(dm)
	})
	if err != nil {
		log.Fatal(err)
	}
}
