// Poisson: a complete distributed finite-element solve on PUMI — the
// kind of PDE workload the infrastructure exists to serve. The Laplace
// equation is solved on a box with Dirichlet data from a harmonic
// function; since the exact solution is linear, the linear FE solution
// matches it exactly at convergence, so the example checks itself.
//
// Every ingredient of the paper's workflow appears: mesh generation,
// RCB partitioning, ParMA vertex balancing (vertex balance is what
// matters to an FE solve, as the paper's motivation says), per-element
// assembly, accumulation of shared-node contributions to owners, owner
// broadcast back to copies, and Jacobi iteration with one
// synchronization per step. Run with:
//
//	go run ./examples/poisson
package main

import (
	"fmt"
	"log"
	"math"

	pumi "github.com/fastmath/pumi-go"
)

func main() {
	model := pumi.Box(1, 1, 1)
	const ranks = 8

	err := pumi.Run(ranks, func(ctx *pumi.Ctx) error {
		var serial *pumi.Mesh
		if ctx.Rank() == 0 {
			serial = pumi.BoxMesh(model, 8, 8, 8)
		}
		dm := pumi.Adopt(ctx, model.Model, 3, serial, 1)
		pumi.PartitionRCB(dm, serial)
		pri, _ := pumi.ParsePriority("Vtx>Rgn")
		pumi.Balance(dm, pri, pumi.DefaultBalanceConfig())

		// The manufactured (harmonic) solution.
		exact := func(p pumi.Vec) float64 { return p.X + 2*p.Y - 3*p.Z + 0.5 }

		// u: the iterate, fixed to the exact values on the boundary.
		// diag: the assembled diagonal of the stiffness matrix.
		for _, part := range dm.Parts {
			m := part.M
			u, err := pumi.NewField(m, "u", 1, pumi.Linear)
			if err != nil {
				return err
			}
			if _, err := pumi.NewField(m, "diag", 1, pumi.Linear); err != nil {
				return err
			}
			if _, err := pumi.NewField(m, "z", 1, pumi.Linear); err != nil {
				return err
			}
			for v := range m.Iter(0) {
				if m.Classification(v).Dim < 3 {
					u.Set(v, exact(m.Coord(v))) // Dirichlet boundary
				} else {
					u.Set(v, 0)
				}
			}
		}
		// Assemble the diagonal once: K_ii = sum_el V * g_i . g_i.
		for _, part := range dm.Parts {
			m := part.M
			diag := pumi.FindField(m, "diag", pumi.Linear)
			for el := range m.Elements() {
				verts, grads, vol := elementGradients(m, el)
				for i, v := range verts {
					d := diag.MustGet(v)
					diag.Set(v, d[0]+vol*grads[i].Dot(grads[i]))
				}
			}
		}
		pumi.AccumulateShared(dm, "diag", pumi.Linear)
		pumi.SyncField(dm, "diag", pumi.Linear)

		// Jacobi iterations: z = K u assembled element-wise, then
		// u_i <- u_i - (z_i / K_ii) on interior nodes.
		const iters = 300
		for it := 0; it < iters; it++ {
			for _, part := range dm.Parts {
				m := part.M
				u := pumi.FindField(m, "u", pumi.Linear)
				z := pumi.FindField(m, "z", pumi.Linear)
				for v := range m.Iter(0) {
					z.Set(v, 0)
				}
				for el := range m.Elements() {
					verts, grads, vol := elementGradients(m, el)
					var du [4]float64
					for j, v := range verts {
						du[j] = u.MustGet(v)[0]
					}
					for i, v := range verts {
						s := 0.0
						for j := range verts {
							s += vol * grads[i].Dot(grads[j]) * du[j]
						}
						cur := z.MustGet(v)
						z.Set(v, cur[0]+s)
					}
				}
			}
			pumi.AccumulateShared(dm, "z", pumi.Linear)
			for _, part := range dm.Parts {
				m := part.M
				u := pumi.FindField(m, "u", pumi.Linear)
				z := pumi.FindField(m, "z", pumi.Linear)
				diag := pumi.FindField(m, "diag", pumi.Linear)
				for v := range m.Iter(0) {
					if !m.IsOwned(v) || m.Classification(v).Dim < 3 {
						continue // copies follow owners; boundary pinned
					}
					ui := u.MustGet(v)[0]
					zi := z.MustGet(v)[0]
					di := diag.MustGet(v)[0]
					u.Set(v, ui-zi/di*0.9) // damped Jacobi
				}
			}
			pumi.SyncField(dm, "u", pumi.Linear)
		}

		// Error against the exact solution.
		var worst float64
		for _, part := range dm.Parts {
			m := part.M
			u := pumi.FindField(m, "u", pumi.Linear)
			for v := range m.Iter(0) {
				if e := math.Abs(u.MustGet(v)[0] - exact(m.Coord(v))); e > worst {
					worst = e
				}
			}
		}
		worst = pumi.MaxFloat64(ctx, worst)
		nodes := pumi.GlobalCount(dm, 0)
		if ctx.Rank() == 0 {
			fmt.Printf("solved Laplace on %d nodes across %d parts: max error %.2e\n",
				nodes, dm.NParts(), worst)
		}
		if worst > 2e-3 {
			return fmt.Errorf("Jacobi did not converge: max error %g", worst)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// elementGradients returns a tet's vertices, the constant gradients of
// their linear shape functions, and the element volume.
func elementGradients(m *pumi.Mesh, el pumi.Ent) ([]pumi.Ent, [4]pumi.Vec, float64) {
	verts := m.Verts(el)
	var p [4]pumi.Vec
	for i, v := range verts {
		p[i] = m.Coord(v)
	}
	vol := math.Abs(p[1].Sub(p[0]).Cross(p[2].Sub(p[0])).Dot(p[3].Sub(p[0]))) / 6
	var grads [4]pumi.Vec
	// grad(lambda_i) = n_i / (6V), with n_i the opposite-face cross
	// product oriented toward vertex i (|n_i| = 2 * face area).
	for i := 0; i < 4; i++ {
		a, b, c := p[(i+1)%4], p[(i+2)%4], p[(i+3)%4]
		n := b.Sub(a).Cross(c.Sub(a))
		if n.Dot(p[i].Sub(a)) < 0 {
			n = n.Scale(-1)
		}
		grads[i] = n.Scale(1 / (6 * vol))
	}
	return verts, grads, vol
}
