GO ?= go

.PHONY: all build test bench race vet pumi-vet chaos check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchmem ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

pumi-vet:
	$(GO) run ./cmd/pumi-vet ./...

# Short race-enabled chaos soak at fixed seeds: balancing under fault
# injection must end cleanly or with a structured failure + checkpoint
# restart (see DESIGN.md §7).
chaos:
	$(GO) test -race -count=1 -run 'TestSoak' ./internal/chaos/

# The full local gate: what CI runs.
check: vet pumi-vet build test race chaos
