GO ?= go

.PHONY: all build test bench bench-go bench-smoke race vet pumi-vet vet-self sarif-smoke chaos chaos-recover san-smoke trace-smoke telemetry-smoke proto-gen proto-check conform-smoke plan-smoke check

all: build

build:
	$(GO) build ./...

# The plain (non-race) test lane also runs the allocation-regression
# tests pinning steady-state To/Exchange/decode at 0 allocs/op; they
# self-skip under -race and under the sanitizer.
test:
	$(GO) test -shuffle=on ./...

# Regenerate the committed machine-readable benchmark results
# (BENCH_pr9.json reflects the current tree; BENCH_baseline.json is the
# frozen pre-overhaul reference and BENCH_pr9_pre.json the frozen
# pre-plan reference — do not regenerate either). The /traced rows
# measure the same exchange with the flight recorder armed, the
# /conform rows the same workload under the online protocol monitor,
# and the sync/reduce rows the compiled boundary-exchange plans, so the
# file documents all three overheads (see DESIGN.md §10, §13 and §14).
bench:
	$(GO) run ./cmd/pumi-bench -json BENCH_pr10.json

# Go micro-benchmarks, benchstat-ready:
#   make bench-go | benchstat -
bench-go:
	$(GO) test -run '^$$' -bench=. -benchmem ./internal/pcu/

# One-iteration compile-and-run of every benchmark — catches bit-rotted
# benchmark code without paying for a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./internal/pcu/...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

pumi-vet:
	$(GO) run ./cmd/pumi-vet ./...

# Self-hosting gate: all analyzers over the whole repo, tests included,
# against the committed baseline. Any finding not in the baseline fails;
# stale entries fail too, so the baseline can only shrink silently.
# Accept a new finding deliberately with:
#   go run ./cmd/pumi-vet -writebaseline internal/lint/selfbaseline.txt ./...
vet-self:
	$(GO) run ./cmd/pumi-vet -baseline internal/lint/selfbaseline.txt ./...

# SARIF smoke: emit SARIF over the analyzer fixtures (which are built to
# produce findings, hence the || true on the emitting run) and
# schema-check that the result is valid and non-empty.
sarif-smoke:
	$(GO) run ./cmd/pumi-vet -sarif internal/lint/testdata/src/... > /tmp/pumi-vet-smoke.sarif || true
	$(GO) run ./cmd/pumi-vet -checksarif /tmp/pumi-vet-smoke.sarif -nonempty

# Short race-enabled chaos soak at fixed seeds: balancing under fault
# injection must end cleanly or with a structured failure + checkpoint
# restart (see DESIGN.md §7).
chaos:
	$(GO) test -race -count=1 -run 'TestSoak' ./internal/chaos/

# Race-enabled self-healing soak: every FaultKind through the outcome
# matrix, plus seeded permanent rank-kills that must shrink the world,
# restore the last checkpoint, and finish Verify-green
# (see DESIGN.md §12).
chaos-recover:
	$(GO) test -race -count=1 -run 'TestFaultMatrix|TestRecoverable' ./internal/chaos/

# pumi-san smoke: the faulted balancing stack under the runtime
# sanitizer with the race detector on — collective schedules
# cross-checked at every sync point, mesh writes checked for ownership
# (see DESIGN.md §8).
san-smoke:
	$(GO) test -race -count=1 -run 'TestSoakSanitized|TestSanitized' ./internal/chaos/ ./internal/partition/

# Traced smoke: the hybrid exchange sweep (in-process worlds up to 32
# ranks) under pumi-san with the flight recorder armed, then both
# emitted files — Chrome timeline and metrics summary — schema-validated
# by pumi-trace (see DESIGN.md §10).
trace-smoke:
	$(GO) run ./cmd/pumi-bench -exp hybrid -san -trace /tmp/pumi-trace-smoke.json
	$(GO) run ./cmd/pumi-trace -validate /tmp/pumi-trace-smoke.json /tmp/pumi-trace-smoke.summary.json
	$(GO) run ./cmd/pumi-trace -critical /tmp/pumi-trace-smoke.json

# Telemetry smoke: the balancing stack runs metered with the live
# introspection endpoint up, rank 0 scrapes /metrics, /trace, /protocol
# and /healthz over real HTTP mid-run, and every document must validate
# against its schema (see DESIGN.md §15).
telemetry-smoke:
	$(GO) test -race -count=1 -run 'TestTelemetrySmoke|TestTelemetrySourcesLive' ./internal/chaos/ ./internal/pcu/

# Regenerate the committed protocol-automata artifact: the communication
# effect terms of the standard entry points compiled to minimal DFAs
# (pumi-proto/1 JSON, see DESIGN.md §13). Run after any change that
# moves a collective in parma.Balance, partition.Migrate, the meshio
# checkpoints, pcu.Agree, or chaos.RunRecoverable.
proto-gen:
	$(GO) run ./cmd/pumi-vet -emit-automata ./... > internal/lint/automata/golden/automata.json

# Build-time protocol gate: the committed artifact must match what the
# current sources compile to. Drift means a collective schedule changed
# without regenerating (make proto-gen) — review the diff, then commit.
proto-check:
	$(GO) run ./cmd/pumi-vet -emit-automata ./... > /tmp/pumi-proto-check.json
	diff -u internal/lint/automata/golden/automata.json /tmp/pumi-proto-check.json

# Conformance smoke: the race-enabled online+offline enforcement tests —
# a seeded rank-kill soak under the golden chaos.RunRecoverable machine
# with its trace replayed, and the pcu-level witness-matching checks.
conform-smoke:
	$(GO) test -race -count=1 -run 'TestConform' ./internal/pcu/ ./internal/chaos/

# Plan smoke: race-enabled recoverable soak over the plan-backed ParMA
# balance with the pcu sanitizer recording the op stream — two passes
# per seed must report identical recovery trajectories and identical
# op-sequence hashes (see DESIGN.md §14).
plan-smoke:
	$(GO) test -race -count=1 -run 'TestPlanSmoke' ./internal/chaos/

# The full local gate: what CI runs.
check: vet vet-self sarif-smoke proto-check build test race chaos chaos-recover san-smoke trace-smoke telemetry-smoke conform-smoke plan-smoke bench-smoke
