GO ?= go

.PHONY: all build test bench race vet pumi-vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

pumi-vet:
	$(GO) run ./cmd/pumi-vet ./...

# The full local gate: what CI runs.
check: vet pumi-vet build test race
