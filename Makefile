GO ?= go

.PHONY: all build test bench race vet pumi-vet chaos san-smoke check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

bench:
	$(GO) test -bench=. -benchmem ./...

race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

pumi-vet:
	$(GO) run ./cmd/pumi-vet ./...

# Short race-enabled chaos soak at fixed seeds: balancing under fault
# injection must end cleanly or with a structured failure + checkpoint
# restart (see DESIGN.md §7).
chaos:
	$(GO) test -race -count=1 -run 'TestSoak' ./internal/chaos/

# pumi-san smoke: the faulted balancing stack under the runtime
# sanitizer with the race detector on — collective schedules
# cross-checked at every sync point, mesh writes checked for ownership
# (see DESIGN.md §8).
san-smoke:
	$(GO) test -race -count=1 -run 'TestSoakSanitized|TestSanitized' ./internal/chaos/ ./internal/partition/

# The full local gate: what CI runs.
check: vet pumi-vet build test race chaos san-smoke
