package pcu

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ULFM-style failure mitigation. A reliable-world runtime answers every
// failure with total teardown: one dead rank poisons the barrier and
// every survivor exits with ErrPeerFailed. User-Level Failure
// Mitigation (the MPI fault-tolerance proposal) instead lets the
// survivors observe the failure as a *revocation* of the world, agree
// on who died, and rebuild a smaller world to continue in. This file is
// that protocol, in three pieces:
//
//   - Agree: a fault-tolerant agreement collective. Ordinary
//     collectives park in the world barrier, which a dead rank blocks
//     forever; Agree parks in its own gate whose arrival threshold is
//     the number of ranks not convicted as failed, and the watchdog
//     feeds it suspicion (vanished ranks) so the threshold drops and
//     the survivors complete with a consistent verdict naming the dead.
//   - Revocation: in a Survivable world the watchdog convicts vanished
//     ranks and poisons the barrier with a *RevokedError naming them —
//     instead of diagnosing an indistinguishable stall — so every
//     survivor unwinds with the same structured cause.
//   - Supervise: the self-healing driver. It runs a body, catches the
//     revocation, computes the survivor count, and re-runs the body on
//     a shrunken world with stable re-numbered ranks (ShrinkMap), until
//     the body completes or a non-revocation failure surfaces.

// ErrRevoked is wrapped by every world revocation: the structured
// teardown of a Survivable run whose dead ranks were convicted by the
// watchdog, in place of an undiagnosed stall.
var ErrRevoked = errors.New("pcu: world revoked")

// RevokedError names the ranks convicted as failed when a Survivable
// world was revoked. Every surviving rank observes the same error; a
// supervisor uses Failed to build the shrunken successor world.
type RevokedError struct {
	Failed []int // convicted ranks, run numbering, sorted ascending
}

func (e *RevokedError) Error() string {
	return fmt.Sprintf("pcu: world revoked: failed ranks %v", e.Failed)
}

func (e *RevokedError) Unwrap() error { return ErrRevoked }

// poison wraps barrier poisoning at the World level so waiters outside
// the barrier — ranks parked in the Agree gate — wake up too.
func (w *World) poison() { w.poisonWith(ErrPeerFailed) }

// poisonWith poisons the world with the given cause (first cause wins)
// and wakes every Agree waiter so no rank sleeps through a teardown.
func (w *World) poisonWith(cause error) {
	w.bar.poisonWith(cause)
	w.agree.wake()
}

// markFailed merges ranks into the conviction list and returns the full
// sorted list. Idempotent; the watchdog calls it on every poll that
// observes vanished ranks.
func (w *World) markFailed(ranks []int) (all []int, grew bool) {
	w.failMu.Lock()
	for _, r := range ranks {
		if r >= 0 && r < w.size && !w.failed[r] {
			w.failed[r] = true
			grew = true
		}
	}
	for r, f := range w.failed {
		if f {
			all = append(all, r)
		}
	}
	w.failMu.Unlock()
	return all, grew
}

// failedList returns the sorted conviction list.
func (w *World) failedList() []int {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	var all []int
	for r, f := range w.failed {
		if f {
			all = append(all, r)
		}
	}
	return all
}

// liveCount returns how many ranks are not convicted.
func (w *World) liveCount() int {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	n := w.size
	for _, f := range w.failed {
		if f {
			n--
		}
	}
	return n
}

// revoke convicts the given ranks and tears the world down with a
// *RevokedError naming the full conviction list.
func (w *World) revoke(ranks []int) {
	all, _ := w.markFailed(ranks)
	w.poisonWith(&RevokedError{Failed: all})
}

// agreeState is the Agree collective's gate: a reusable generation
// barrier whose arrival threshold is the live (unconvicted) rank count,
// recomputed whenever the watchdog feeds suspicion.
type agreeState struct {
	w    *World
	mu   sync.Mutex
	cond *sync.Cond

	gen     int64 // completed rounds
	waiting int   // arrivals parked in the current round
	arrived int   // arrivals in the current round (includes the finisher)
	acc     bool  // AND of the votes contributed this round

	lastOK     bool  // verdict of round gen-1
	lastFailed []int // conviction list at round gen-1's completion
}

func (a *agreeState) init(w *World) {
	a.w = w
	a.cond = sync.NewCond(&a.mu)
	a.acc = true
}

// wake broadcasts the gate so parked waiters recheck for poison or a
// lowered threshold. Nil-safe no-op before init.
func (a *agreeState) wake() {
	if a.cond == nil {
		return
	}
	a.mu.Lock()
	a.cond.Broadcast()
	a.mu.Unlock()
}

// parked returns how many ranks are blocked in the gate; the watchdog
// adds it to the barrier's count when deciding whether a run is stuck.
func (a *agreeState) parked() int {
	if a.cond == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// suspect convicts vanished ranks and wakes the gate so a pending round
// re-evaluates its threshold. Returns true when the conviction list
// grew.
func (a *agreeState) suspect(ranks []int) bool {
	_, grew := a.w.markFailed(ranks)
	if grew {
		a.wake()
	}
	return grew
}

// finishLocked completes the current round: records its verdict,
// advances the generation, and releases the waiters. Caller holds a.mu.
func (a *agreeState) finishLocked() {
	a.lastOK = a.acc
	a.lastFailed = a.w.failedList()
	a.gen++
	a.arrived = 0
	a.acc = true
	a.cond.Broadcast()
}

// agree is one rank's participation in a round. It blocks until every
// live rank has arrived — where "live" shrinks as the watchdog convicts
// vanished ranks — then returns the AND of the contributed votes and
// the conviction list at completion.
func (a *agreeState) agree(c *Ctx, vote bool) (bool, []int) {
	rs := &c.w.ranks[c.rank]
	a.mu.Lock()
	gen := a.gen
	a.arrived++
	a.acc = a.acc && vote
	for {
		if gen != a.gen {
			// Round finished by another rank.
			ok, failed := a.lastOK, a.lastFailed
			a.mu.Unlock()
			return ok, failed
		}
		if cause := a.w.bar.causeErr(); cause != nil {
			a.mu.Unlock()
			panic(cause)
		}
		if a.arrived >= a.w.liveCount() {
			a.finishLocked()
			ok, failed := a.lastOK, a.lastFailed
			a.mu.Unlock()
			return ok, failed
		}
		a.waiting++
		rs.blocked.Store(true)
		a.cond.Wait()
		rs.blocked.Store(false)
		a.waiting--
	}
}

// Agree is a fault-tolerant agreement collective: every live rank
// contributes a vote, and all of them receive the same verdict — the
// logical AND of the votes — together with the list of ranks convicted
// as failed (empty in a healthy world). Unlike every other collective,
// Agree completes on the survivors while a rank is dead: the watchdog
// feeds the gate suspicion, the arrival threshold drops to the live
// count, and the round closes without the dead rank's vote.
//
// Agree is collective over the live ranks: all of them must call it the
// same number of times. It is not recorded in the sanitizer's shadow
// log — survivor schedules legitimately diverge from a dead rank's —
// and it does not park in the world barrier.
func Agree(c *Ctx, vote bool) (bool, []int) {
	c.w.colls.Add(1)
	c.beginOp(&opAgree, false)
	defer c.endOp()
	return c.w.agree.agree(c, vote)
}

// ShrinkMap returns the stable renumbering for a world of n ranks that
// lost the given ranks: survivors keep their relative order and pack
// densely from zero. out[old] is the survivor's new rank, or -1 for a
// failed rank.
func ShrinkMap(n int, failed []int) []int {
	dead := make(map[int]bool, len(failed))
	for _, r := range failed {
		dead[r] = true
	}
	out := make([]int, n)
	next := 0
	for r := 0; r < n; r++ {
		if dead[r] {
			out[r] = -1
			continue
		}
		out[r] = next
		next++
	}
	return out
}

// Epoch identifies one attempt of a supervised run.
type Epoch struct {
	// Attempt counts revocations survived so far: 0 for the first
	// attempt, 1 after the first shrink, and so on.
	Attempt int
	// Size is this attempt's world size.
	Size int
	// Initial is the first attempt's world size.
	Initial int
	// Failed lists the ranks convicted when the previous attempt was
	// revoked, in the previous attempt's numbering; nil on attempt 0.
	Failed []int
}

// Supervise is the self-healing run loop: it executes body on n ranks
// under opt (with Survivable forced on), and when the world is revoked
// — the watchdog convicted dead ranks and every survivor unwound with
// the same *RevokedError — it rebuilds a smaller world over the
// survivors and runs body again with the next Epoch, until body
// completes or fails for a non-revocation reason.
//
// nextSize, when non-nil, chooses each rebuilt world's rank count from
// the survivor count (a mesh-aware supervisor rounds down to a divisor
// of its part count); it must return a value in [1, survivors]. When
// nil the rebuilt world uses every survivor.
//
// Faults are injected only into the first attempt: a revocation
// consumes the fault plan, so recovery runs fault-free — matching the
// model where the failed hardware is gone from the world.
func Supervise(n int, opt Options, nextSize func(survivors int) int, body func(*Ctx, Epoch) error) (Stats, error) {
	opt.Survivable = true
	ep := Epoch{Size: n, Initial: n}
	for {
		cur := ep // body goroutines must see this attempt's epoch
		stats, err := RunOpt(cur.Size, opt, func(c *Ctx) error { return body(c, cur) })
		var rev *RevokedError
		if !errors.As(err, &rev) {
			return stats, err
		}
		failed := append([]int(nil), rev.Failed...)
		sort.Ints(failed)
		survivors := cur.Size - len(failed)
		if survivors < 1 {
			return stats, err
		}
		size := survivors
		if nextSize != nil {
			size = nextSize(survivors)
			if size < 1 || size > survivors {
				return stats, fmt.Errorf("pcu: supervisor chose world size %d outside [1, %d]: %w", size, survivors, err)
			}
		}
		ep = Epoch{Attempt: cur.Attempt + 1, Size: size, Initial: cur.Initial, Failed: failed}
		opt.Faults = nil
	}
}
