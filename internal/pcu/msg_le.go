//go:build 386 || amd64 || amd64p32 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm

package pcu

import "unsafe"

// Bulk codec kernels, little-endian fast path: the wire format is
// little-endian fixed-width, which on these architectures is exactly
// the in-memory layout of the element slice — so a bulk pack or unpack
// is a single memmove. msg_generic.go holds the portable loops; both
// produce byte-identical wire data.

func packInt32s(dst []byte, v []int32) {
	if len(v) == 0 {
		return
	}
	copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v)))
}

func packInt64s(dst []byte, v []int64) {
	if len(v) == 0 {
		return
	}
	copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)))
}

func packFloat64s(dst []byte, v []float64) {
	if len(v) == 0 {
		return
	}
	copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)))
}

func unpackInt32s(dst []int32, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 4*len(dst)), src)
}

func unpackInt64s(dst []int64, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src)
}

func unpackFloat64s(dst []float64, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src)
}
