package pcu

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer accumulates typed data to be sent to one peer during a
// communication phase. All values are encoded little-endian at fixed
// width so a Reader on the receiving side can decode them in order.
//
// A buffer obtained from Ctx.To is valid only until the phase's
// Exchange: on-node delivery hands the bytes to the receiver by
// reference, so Exchange seals the buffer and any later pack call
// panics. Packing for the next phase starts from a fresh To call.
type Buffer struct {
	buf    []byte
	sealed bool
}

// seal marks the buffer as delivered; further packing panics.
func (b *Buffer) seal() { b.sealed = true }

func (b *Buffer) check() {
	if b.sealed {
		panic("pcu: buffer written after Exchange delivered it; call To again for the next phase")
	}
}

// Len returns the number of encoded bytes.
func (b *Buffer) Len() int { return len(b.buf) }

// Raw returns the encoded bytes; the caller must not mutate them.
func (b *Buffer) Raw() []byte { return b.buf }

// Byte appends one byte.
func (b *Buffer) Byte(v byte) {
	b.check()
	b.buf = append(b.buf, v)
}

// Int32 appends a 32-bit integer.
func (b *Buffer) Int32(v int32) {
	b.check()
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(v))
}

// Int64 appends a 64-bit integer.
func (b *Buffer) Int64(v int64) {
	b.check()
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(v))
}

// Float64 appends a 64-bit float.
func (b *Buffer) Float64(v float64) {
	b.check()
	b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(v))
}

// Bytes appends a length-prefixed byte string.
func (b *Buffer) Bytes(v []byte) {
	b.Int32(int32(len(v)))
	b.buf = append(b.buf, v...)
}

// Int32s appends a length-prefixed slice of 32-bit integers.
func (b *Buffer) Int32s(v []int32) {
	b.Int32(int32(len(v)))
	for _, x := range v {
		b.Int32(x)
	}
}

// Float64s appends a length-prefixed slice of floats.
func (b *Buffer) Float64s(v []float64) {
	b.Int32(int32(len(v)))
	for _, x := range v {
		b.Float64(x)
	}
}

// Message is one received payload: the sending rank and its data.
type Message struct {
	From int
	Data *Reader
}

// Reader decodes a received payload in the order it was packed.
// Decoding past the end or against the wrong type indicates a protocol
// bug between sender and receiver and panics with a diagnostic.
//
// A Reader backing an off-node frame that failed validation carries a
// *CorruptError instead of data; every method — including Empty,
// Remaining and Done — panics with it, so a corrupt message can never
// be silently skipped by a decode loop. Callers that want to recover
// structured corruption check Err first or recover the panic and test
// it with errors.Is(err, ErrCorruptMessage).
type Reader struct {
	data []byte
	off  int
	fail *CorruptError
}

// NewReader wraps raw bytes for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// failedReader returns a Reader that surfaces err on any use.
func failedReader(err *CorruptError) *Reader { return &Reader{fail: err} }

// Err returns the frame-validation error carried by this Reader, or nil
// if the payload arrived intact. Checking Err is the non-panicking way
// to observe corruption.
func (r *Reader) Err() error {
	if r.fail == nil {
		return nil
	}
	return r.fail
}

func (r *Reader) check() {
	if r.fail != nil {
		panic(r.fail)
	}
}

// Remaining reports how many bytes are left to decode.
func (r *Reader) Remaining() int {
	r.check()
	return len(r.data) - r.off
}

// Empty reports whether the payload is fully consumed.
func (r *Reader) Empty() bool { return r.Remaining() == 0 }

// Done asserts the payload is fully consumed. Trailing bytes mean the
// sender packed more than the receiver decoded — a protocol bug — and
// panic with a diagnostic. Fixed-format decoders call Done after the
// last decode; variable-length decoders loop on Empty instead.
func (r *Reader) Done() {
	if n := r.Remaining(); n != 0 {
		panic(fmt.Sprintf("pcu: message has %d undecoded trailing bytes", n))
	}
}

func (r *Reader) need(n int) {
	r.check()
	if n < 0 || r.Remaining() < n {
		panic(fmt.Sprintf("pcu: message underflow: need %d bytes, have %d", n, r.Remaining()))
	}
}

// Byte decodes one byte.
func (r *Reader) Byte() byte {
	r.need(1)
	v := r.data[r.off]
	r.off++
	return v
}

// Int32 decodes a 32-bit integer.
func (r *Reader) Int32() int32 {
	r.need(4)
	v := int32(binary.LittleEndian.Uint32(r.data[r.off:]))
	r.off += 4
	return v
}

// Int64 decodes a 64-bit integer.
func (r *Reader) Int64() int64 {
	r.need(8)
	v := int64(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// Float64 decodes a 64-bit float.
func (r *Reader) Float64() float64 {
	r.need(8)
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// lenPrefix decodes a length prefix and validates it against the bytes
// actually remaining (elemSize bytes per element) BEFORE the caller
// allocates, so a corrupt or hostile prefix yields a bounded diagnostic
// panic instead of a multi-gigabyte allocation.
func (r *Reader) lenPrefix(elemSize int) int {
	n := int(r.Int32())
	if n < 0 {
		panic(fmt.Sprintf("pcu: corrupt length prefix %d", n))
	}
	if need := n * elemSize; need > r.Remaining() {
		panic(fmt.Sprintf("pcu: corrupt length prefix: %d elements (%d bytes) but only %d bytes remain",
			n, need, r.Remaining()))
	}
	return n
}

// BytesVal decodes a length-prefixed byte string. The returned slice
// aliases the message buffer and must not be mutated.
func (r *Reader) BytesVal() []byte {
	n := r.lenPrefix(1)
	v := r.data[r.off : r.off+n]
	r.off += n
	return v
}

// Int32s decodes a length-prefixed slice of 32-bit integers.
func (r *Reader) Int32s() []int32 {
	n := r.lenPrefix(4)
	out := make([]int32, n)
	for i := range out {
		out[i] = r.Int32()
	}
	return out
}

// Float64s decodes a length-prefixed slice of floats.
func (r *Reader) Float64s() []float64 {
	n := r.lenPrefix(8)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}
