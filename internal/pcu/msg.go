package pcu

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer accumulates typed data to be sent to one peer during a
// communication phase. All values are encoded little-endian at fixed
// width so a Reader on the receiving side can decode them in order.
//
// A buffer obtained from Ctx.To is valid only until the phase's
// Exchange: on-node delivery hands the bytes to the receiver by
// reference, so Exchange seals the buffer and any later pack call
// panics. Packing for the next phase starts from a fresh To call,
// which returns the same per-peer Buffer, unsealed, over a recycled
// backing array.
type Buffer struct {
	buf    []byte
	sealed bool
	// active marks that To has handed this buffer out in the current
	// phase (it is listed in the Ctx's active-peer table).
	active bool
}

// seal marks the buffer as delivered; further packing panics.
func (b *Buffer) seal() { b.sealed = true }

func (b *Buffer) check() {
	if b.sealed {
		panic("pcu: buffer written after Exchange delivered it; call To again for the next phase")
	}
}

// Len returns the number of encoded bytes.
func (b *Buffer) Len() int { return len(b.buf) }

// Raw returns the encoded bytes; the caller must not mutate them.
func (b *Buffer) Raw() []byte { return b.buf }

// Reset truncates a standalone buffer for reuse, keeping its backing
// array. Buffers obtained from Ctx.To must not be Reset — they are
// recycled by the next To — and the bufdiscipline analyzer flags Reset
// on a delivered phase buffer like any other stale write.
func (b *Buffer) Reset() {
	b.buf = b.buf[:0]
	b.sealed = false
}

// grow extends the buffer by n bytes and returns the region to fill.
func (b *Buffer) grow(n int) []byte {
	b.buf = append(b.buf, make([]byte, n)...)
	return b.buf[len(b.buf)-n:]
}

// Byte appends one byte.
func (b *Buffer) Byte(v byte) {
	b.check()
	b.buf = append(b.buf, v)
}

// Int32 appends a 32-bit integer.
func (b *Buffer) Int32(v int32) {
	b.check()
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(v))
}

// Int64 appends a 64-bit integer.
func (b *Buffer) Int64(v int64) {
	b.check()
	b.buf = binary.LittleEndian.AppendUint64(b.buf, uint64(v))
}

// Float64 appends a 64-bit float.
func (b *Buffer) Float64(v float64) {
	b.check()
	b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(v))
}

// Bytes appends a length-prefixed byte string.
func (b *Buffer) Bytes(v []byte) {
	b.Int32(int32(len(v)))
	b.buf = append(b.buf, v...)
}

// Int32s appends a length-prefixed slice of 32-bit integers as one
// bulk encode over a pre-grown region. The wire format is identical to
// packing the prefix and each element individually.
func (b *Buffer) Int32s(v []int32) {
	b.Int32(int32(len(v)))
	packInt32s(b.grow(4*len(v)), v)
}

// Int64s appends a length-prefixed slice of 64-bit integers in bulk.
func (b *Buffer) Int64s(v []int64) {
	b.Int32(int32(len(v)))
	packInt64s(b.grow(8*len(v)), v)
}

// Float64s appends a length-prefixed slice of floats in bulk.
func (b *Buffer) Float64s(v []float64) {
	b.Int32(int32(len(v)))
	packFloat64s(b.grow(8*len(v)), v)
}

// Message is one received payload: the sending rank and its data.
type Message struct {
	From int
	Data *Reader
}

// Reader decodes a received payload in the order it was packed.
// Decoding past the end or against the wrong type indicates a protocol
// bug between sender and receiver and panics with a diagnostic.
//
// A Reader handed out by Exchange is pooled: Done on a fully-consumed
// message recycles the Reader and its backing array into the receiving
// rank's free lists. After Done, the Reader and any slice decoded from
// it without copying (BytesNoCopy/BytesVal) are invalid — the bytes
// will be overwritten by a later phase. Copy (Reader.Bytes) anything
// that must outlive the message.
//
// A Reader backing an off-node frame that failed validation carries a
// *CorruptError instead of data; every method — including Empty,
// Remaining and Done — panics with it, so a corrupt message can never
// be silently skipped by a decode loop. Callers that want to recover
// structured corruption check Err first or recover the panic and test
// it with errors.Is(err, ErrCorruptMessage).
type Reader struct {
	data  []byte
	off   int
	fail  *CorruptError
	owner *Ctx // receiving rank's pool; nil for NewReader and corrupt frames
}

// NewReader wraps raw bytes for decoding. Readers made this way are not
// pooled: Done only asserts full consumption.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Reset repoints a standalone Reader at data, reusing the struct so
// sub-message decode loops (one embedded payload per entity) do not
// allocate. Must not be called on a pooled Reader still owned by an
// exchange message.
func (r *Reader) Reset(data []byte) { *r = Reader{data: data} }

// failedReader returns a Reader that surfaces err on any use.
func failedReader(err *CorruptError) *Reader { return &Reader{fail: err} }

// Err returns the frame-validation error carried by this Reader, or nil
// if the payload arrived intact. Checking Err is the non-panicking way
// to observe corruption.
func (r *Reader) Err() error {
	if r.fail == nil {
		return nil
	}
	return r.fail
}

func (r *Reader) check() {
	if r.fail != nil {
		panic(r.fail)
	}
}

// Remaining reports how many bytes are left to decode.
func (r *Reader) Remaining() int {
	r.check()
	return len(r.data) - r.off
}

// Empty reports whether the payload is fully consumed.
func (r *Reader) Empty() bool { return r.Remaining() == 0 }

// Done asserts the payload is fully consumed. Trailing bytes mean the
// sender packed more than the receiver decoded — a protocol bug — and
// panic with a diagnostic. Fixed-format decoders call Done after the
// last decode; variable-length decoders loop on Empty and then call
// Done to release the message.
//
// On a pooled Reader (one returned by Exchange), Done also recycles the
// Reader and its backing array, so steady-state decode is
// allocation-free. Any uncopied slice obtained from BytesNoCopy or
// BytesVal is invalid from this point on.
func (r *Reader) Done() {
	if n := r.Remaining(); n != 0 {
		panic(fmt.Sprintf("pcu: message has %d undecoded trailing bytes", n))
	}
	if c := r.owner; c != nil {
		r.owner = nil
		c.releaseBuf(r.data)
		r.data = nil
		r.off = 0
		c.releaseReader(r)
	}
}

func (r *Reader) need(n int) {
	r.check()
	if n < 0 || r.Remaining() < n {
		panic(fmt.Sprintf("pcu: message underflow: need %d bytes, have %d", n, r.Remaining()))
	}
}

// Byte decodes one byte.
func (r *Reader) Byte() byte {
	r.need(1)
	v := r.data[r.off]
	r.off++
	return v
}

// Int32 decodes a 32-bit integer.
func (r *Reader) Int32() int32 {
	r.need(4)
	v := int32(binary.LittleEndian.Uint32(r.data[r.off:]))
	r.off += 4
	return v
}

// Int64 decodes a 64-bit integer.
func (r *Reader) Int64() int64 {
	r.need(8)
	v := int64(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// Float64 decodes a 64-bit float.
func (r *Reader) Float64() float64 {
	r.need(8)
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// lenPrefix decodes a length prefix and validates it against the bytes
// actually remaining (elemSize bytes per element) BEFORE the caller
// allocates, so a corrupt or hostile prefix yields a bounded diagnostic
// panic instead of a multi-gigabyte allocation.
func (r *Reader) lenPrefix(elemSize int) int {
	n := int(r.Int32())
	if n < 0 {
		panic(fmt.Sprintf("pcu: corrupt length prefix %d", n))
	}
	if need := n * elemSize; need > r.Remaining() {
		panic(fmt.Sprintf("pcu: corrupt length prefix: %d elements (%d bytes) but only %d bytes remain",
			n, need, r.Remaining()))
	}
	return n
}

// Bytes decodes a length-prefixed byte string into a fresh copy that
// remains valid after Done. Use BytesNoCopy when the bytes are consumed
// before the message is released.
func (r *Reader) Bytes() []byte {
	return append([]byte(nil), r.BytesNoCopy()...)
}

// BytesNoCopy decodes a length-prefixed byte string without copying.
// The returned slice aliases the message buffer: it must not be
// mutated and is invalid after Done recycles the message.
func (r *Reader) BytesNoCopy() []byte {
	n := r.lenPrefix(1)
	v := r.data[r.off : r.off+n]
	r.off += n
	return v
}

// BytesVal is the historical name of BytesNoCopy: the returned slice
// aliases the message buffer, must not be mutated, and is invalid after
// Done.
func (r *Reader) BytesVal() []byte { return r.BytesNoCopy() }

// Int32s decodes a length-prefixed slice of 32-bit integers in bulk.
func (r *Reader) Int32s() []int32 {
	n := r.lenPrefix(4)
	return r.bulkInt32s(make([]int32, 0, n), n)
}

// AppendInt32s decodes a length-prefixed slice of 32-bit integers,
// appending to dst so a caller-owned scratch slice can absorb the
// decode without allocating.
func (r *Reader) AppendInt32s(dst []int32) []int32 {
	n := r.lenPrefix(4)
	return r.bulkInt32s(dst, n)
}

func (r *Reader) bulkInt32s(dst []int32, n int) []int32 {
	src := r.data[r.off : r.off+4*n]
	r.off += 4 * n
	m := len(dst)
	dst = append(dst, make([]int32, n)...)
	unpackInt32s(dst[m:], src)
	return dst
}

// Int64s decodes a length-prefixed slice of 64-bit integers in bulk.
func (r *Reader) Int64s() []int64 {
	n := r.lenPrefix(8)
	return r.bulkInt64s(make([]int64, 0, n), n)
}

// AppendInt64s decodes a length-prefixed slice of 64-bit integers,
// appending to dst.
func (r *Reader) AppendInt64s(dst []int64) []int64 {
	n := r.lenPrefix(8)
	return r.bulkInt64s(dst, n)
}

func (r *Reader) bulkInt64s(dst []int64, n int) []int64 {
	src := r.data[r.off : r.off+8*n]
	r.off += 8 * n
	m := len(dst)
	dst = append(dst, make([]int64, n)...)
	unpackInt64s(dst[m:], src)
	return dst
}

// Float64s decodes a length-prefixed slice of floats in bulk.
func (r *Reader) Float64s() []float64 {
	n := r.lenPrefix(8)
	return r.bulkFloat64s(make([]float64, 0, n), n)
}

// AppendFloat64s decodes a length-prefixed slice of floats, appending
// to dst.
func (r *Reader) AppendFloat64s(dst []float64) []float64 {
	n := r.lenPrefix(8)
	return r.bulkFloat64s(dst, n)
}

func (r *Reader) bulkFloat64s(dst []float64, n int) []float64 {
	src := r.data[r.off : r.off+8*n]
	r.off += 8 * n
	m := len(dst)
	dst = append(dst, make([]float64, n)...)
	unpackFloat64s(dst[m:], src)
	return dst
}
