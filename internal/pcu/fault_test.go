package pcu

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/hwtopo"
)

// collectiveLoop is a body doing nops collectives so fault plans have
// operations to strike.
func collectiveLoop(nops int) func(*Ctx) error {
	return func(c *Ctx) error {
		for i := 0; i < nops; i++ {
			SumInt64(c, int64(c.Rank()))
		}
		return nil
	}
}

func TestFaultPanicDeterministic(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Rank: 1, Op: 3, Kind: FaultPanic}}}
	var msgs []string
	for i := 0; i < 2; i++ {
		_, err := RunOpt(4, Options{Faults: plan}, collectiveLoop(5))
		if !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("run %d: want ErrFaultInjected, got %v", i, err)
		}
		if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "op 3") {
			t.Fatalf("error does not name rank/op: %v", err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("injected failure not deterministic:\n%s\nvs\n%s", msgs[0], msgs[1])
	}
}

func TestFaultVanishDiagnosedByWatchdog(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Rank: 2, Op: 2, Kind: FaultVanish}}}
	_, err := RunOpt(4, Options{Faults: plan, StallTimeout: 5 * time.Second}, collectiveLoop(4))
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stall error should wrap ErrStalled: %v", err)
	}
	var vanished, blocked int
	for _, r := range stall.Ranks {
		if r.Vanished {
			vanished++
			if r.Rank != 2 {
				t.Errorf("wrong vanished rank: %+v", r)
			}
		}
		if r.Blocked {
			blocked++
		}
	}
	if vanished != 1 || blocked != 3 {
		t.Fatalf("want 1 vanished + 3 blocked ranks, got %d/%d in:\n%v", vanished, blocked, err)
	}
}

func TestSkippedExchangeDiagnosedByWatchdog(t *testing.T) {
	// Rank 0 skips the phase entirely; its peers block in Exchange
	// forever. The watchdog must terminate the run with a diagnosis
	// naming the stalled ranks and their phase counts — the run must
	// never hang until the Go test timeout.
	_, err := RunOpt(4, Options{StallTimeout: 5 * time.Second}, func(c *Ctx) error {
		//pumi-vet:ignore collseq // deliberate divergence: the watchdog must catch it
		if c.Rank() == 0 {
			return nil // never calls Exchange
		}
		c.To((c.Rank() + 1) % 4).Int32(int32(c.Rank()))
		c.Exchange()
		return nil
	})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	for _, r := range stall.Ranks {
		switch r.Rank {
		case 0:
			if !r.Done || r.Blocked {
				t.Errorf("rank 0 should be reported finished: %+v", r)
			}
			if r.Exchanges != 0 {
				t.Errorf("rank 0 phase count should be 0: %+v", r)
			}
		default:
			if !r.Blocked || r.Op != "exchange" {
				t.Errorf("rank %d should be blocked in exchange: %+v", r.Rank, r)
			}
			if r.Exchanges != 1 {
				t.Errorf("rank %d should report 1 exchange entered: %+v", r.Rank, r)
			}
		}
	}
	if !strings.Contains(err.Error(), "blocked in exchange") {
		t.Fatalf("diagnosis should name the blocked op:\n%v", err)
	}
}

func TestMismatchedCollectiveDiagnosedByWatchdog(t *testing.T) {
	// Ranks 1..3 enter an Allreduce rank 0 never joins; after rank 0
	// finishes they are parked for good.
	_, err := RunOpt(4, Options{StallTimeout: 5 * time.Second}, func(c *Ctx) error {
		c.Barrier()
		//pumi-vet:ignore collseq // deliberate divergence: the watchdog must catch it
		if c.Rank() != 0 {
			SumInt64(c, 1) //pumi-vet:ignore collmismatch
		}
		return nil
	})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	var blocked int
	for _, r := range stall.Ranks {
		if r.Blocked {
			blocked++
			if r.Op != "allreduce" {
				t.Errorf("blocked rank %d should be in allreduce: %+v", r.Rank, r)
			}
			if r.Collectives != 2 {
				t.Errorf("blocked rank %d should count 2 collectives: %+v", r.Rank, r)
			}
		}
	}
	if blocked != 3 {
		t.Fatalf("want 3 blocked ranks, got %d:\n%v", blocked, err)
	}
}

func TestFaultDelayCompletesClean(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Rank: 0, Op: 1, Kind: FaultDelay, Delay: 5 * time.Millisecond}}}
	if _, err := RunOpt(3, Options{Faults: plan}, collectiveLoop(3)); err != nil {
		t.Fatalf("delay fault should not fail the run: %v", err)
	}
}

// offNodePair runs 2 ranks on separate nodes so all cross-rank traffic
// is framed, with rank 0's first exchange subject to the given fault.
func offNodePair(kind FaultKind, body func(*Ctx) error) error {
	_, err := offNodePairFault(Fault{Rank: 0, Op: 1, Kind: kind}, Options{}, body)
	return err
}

// offNodePairFault is offNodePair with full control over the fault and
// extra options, returning the run's stats for retry/replay assertions.
func offNodePairFault(f Fault, opt Options, body func(*Ctx) error) (Stats, error) {
	opt.Topo = hwtopo.Cluster(2, 1)
	opt.Faults = &FaultPlan{Faults: []Fault{f}}
	if opt.StallTimeout == 0 {
		opt.StallTimeout = 5 * time.Second
	}
	return RunOpt(2, opt, body)
}

func exchangePairBody(c *Ctx) error {
	c.To(1 - c.Rank()).Int64(42)
	for _, m := range c.Exchange() {
		if v := m.Data.Int64(); v != 42 {
			return fmt.Errorf("rank %d decoded %d from rank %d", c.Rank(), v, m.From)
		}
		m.Data.Done()
	}
	return nil
}

func TestFaultCorruptRecoveredByRetry(t *testing.T) {
	// A transient (non-sticky) wire corruption: the receiver's CRC check
	// rejects the frame, the retransmit layer repairs it from the
	// sender's kept copy, and the exchange completes cleanly.
	st, err := offNodePairFault(Fault{Rank: 0, Op: 1, Kind: FaultCorrupt}, Options{}, exchangePairBody)
	if err != nil {
		t.Fatalf("transient corruption should be retried away: %v", err)
	}
	if st.Retries != 1 {
		t.Fatalf("want exactly 1 retried frame, got %d", st.Retries)
	}
}

func TestFaultTruncateRecoveredByRetry(t *testing.T) {
	st, err := offNodePairFault(Fault{Rank: 0, Op: 1, Kind: FaultTruncate}, Options{}, exchangePairBody)
	if err != nil {
		t.Fatalf("transient truncation should be retried away: %v", err)
	}
	if st.Retries != 1 {
		t.Fatalf("want exactly 1 retried frame, got %d", st.Retries)
	}
}

func TestFaultCorruptStickySurfacesStructuredError(t *testing.T) {
	// Sticky corruption damages the retransmits too: the retry budget
	// dies and the failure escalates to the structured fatal error,
	// naming the spent budget.
	st, err := offNodePairFault(
		Fault{Rank: 0, Op: 1, Kind: FaultCorrupt, Sticky: true},
		Options{RetryBackoff: -1}, exchangePairBody)
	if !errors.Is(err, ErrCorruptMessage) {
		t.Fatalf("want ErrCorruptMessage, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.From != 0 || ce.To != 1 {
		t.Fatalf("corruption misattributed: %+v", ce)
	}
	if !strings.Contains(ce.Reason, "CRC") {
		t.Fatalf("want CRC reason, got %q", ce.Reason)
	}
	if ce.Retries != DefaultRetryBudget {
		t.Fatalf("want the full budget of %d retransmits spent, got %d", DefaultRetryBudget, ce.Retries)
	}
	if !strings.Contains(ce.Error(), "retransmit") {
		t.Fatalf("error should name the spent retransmits: %v", ce)
	}
	if st.Retries != 0 {
		t.Fatalf("no retransmit succeeded, Stats.Retries should be 0, got %d", st.Retries)
	}
}

func TestFaultTruncateStickySurfacesStructuredError(t *testing.T) {
	_, err := offNodePairFault(
		Fault{Rank: 0, Op: 1, Kind: FaultTruncate, Sticky: true},
		Options{RetryBackoff: -1}, exchangePairBody)
	if !errors.Is(err, ErrCorruptMessage) {
		t.Fatalf("want ErrCorruptMessage, got %v", err)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("want truncation reason, got %v", err)
	}
}

func TestFaultCorruptFatalWithRetryDisabled(t *testing.T) {
	// RetryBudget < 0 restores the pre-retry contract: every validation
	// failure is immediately fatal, with no retransmits spent.
	_, err := offNodePairFault(
		Fault{Rank: 0, Op: 1, Kind: FaultCorrupt},
		Options{RetryBudget: -1}, exchangePairBody)
	if !errors.Is(err, ErrCorruptMessage) {
		t.Fatalf("want ErrCorruptMessage, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Retries != 0 {
		t.Fatalf("retry layer disabled, want 0 retransmits, got %d", ce.Retries)
	}
}

func TestFaultDuplicateDroppedAsReplay(t *testing.T) {
	// The replayed frame is detected by the sequence check and dropped,
	// like any reliable transport's duplicate suppression: the receiver
	// sees exactly one clean message and the run passes.
	st, err := offNodePairFault(Fault{Rank: 0, Op: 1, Kind: FaultDuplicate}, Options{},
		func(c *Ctx) error {
			c.To(1 - c.Rank()).Int64(42)
			msgs := c.Exchange()
			if len(msgs) != 1 {
				return fmt.Errorf("rank %d: want 1 delivery after duplicate suppression, got %d", c.Rank(), len(msgs))
			}
			if v := msgs[0].Data.Int64(); v != 42 {
				return fmt.Errorf("rank %d decoded %d", c.Rank(), v)
			}
			msgs[0].Data.Done()
			return nil
		})
	if err != nil {
		t.Fatalf("duplicate should be suppressed silently: %v", err)
	}
	if st.Replays != 1 {
		t.Fatalf("want exactly 1 dropped replay, got %d", st.Replays)
	}
}

func TestCorruptReaderPanicsOnAnyUse(t *testing.T) {
	r := failedReader(&CorruptError{From: 1, To: 0, Reason: "test"})
	for name, f := range map[string]func(){
		"Empty":     func() { r.Empty() },
		"Remaining": func() { r.Remaining() },
		"Done":      func() { r.Done() },
		"Byte":      func() { r.Byte() },
		"Int32s":    func() { r.Int32s() },
	} {
		func() {
			defer func() {
				p := recover()
				err, ok := p.(error)
				if !ok || !errors.Is(err, ErrCorruptMessage) {
					t.Errorf("%s: want ErrCorruptMessage panic, got %v", name, p)
				}
			}()
			f()
		}()
	}
}

func TestReaderRejectsHostileLengthPrefix(t *testing.T) {
	for name, tc := range map[string]struct {
		pack   func(b *Buffer)
		decode func(r *Reader)
	}{
		"huge int32s": {
			func(b *Buffer) { b.Int32(1 << 30) },
			func(r *Reader) { r.Int32s() },
		},
		"negative int32s": {
			func(b *Buffer) { b.Int32(-5) },
			func(r *Reader) { r.Int32s() },
		},
		"huge float64s": {
			func(b *Buffer) { b.Int32(1 << 30) },
			func(r *Reader) { r.Float64s() },
		},
		"huge bytes": {
			func(b *Buffer) { b.Int32(1 << 30) },
			func(r *Reader) { r.BytesVal() },
		},
		"negative bytes": {
			func(b *Buffer) { b.Int32(-1) },
			func(r *Reader) { r.BytesVal() },
		},
	} {
		b := &Buffer{}
		tc.pack(b)
		r := NewReader(b.Raw())
		func() {
			defer func() {
				p := recover()
				s, _ := p.(string)
				if !strings.Contains(s, "corrupt length prefix") {
					t.Errorf("%s: want descriptive bounded panic, got %v", name, p)
				}
			}()
			tc.decode(r)
			t.Errorf("%s: decode of hostile prefix did not panic", name)
		}()
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	a := RandomFaultPlan(7, 8, 20)
	b := RandomFaultPlan(7, 8, 20)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different plans:\n%s\nvs\n%s", a, b)
	}
	if len(a.Faults) == 0 {
		t.Fatal("plan should contain at least one fault")
	}
	for _, f := range a.Faults {
		if f.Rank < 0 || f.Rank >= 8 || f.Op < 1 || f.Op > 20 {
			t.Fatalf("fault out of bounds: %+v", f)
		}
	}
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		seen[RandomFaultPlan(seed, 8, 20).String()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("20 seeds produced only %d distinct plans", len(seen))
	}
}

func TestAbortAllTearsDownRun(t *testing.T) {
	cause := errors.New("wall-clock timeout exceeded")
	started := make(chan struct{}, 4)
	go func() {
		for i := 0; i < 4; i++ {
			<-started
		}
		time.Sleep(10 * time.Millisecond)
		if n := AbortAll(cause); n != 1 {
			t.Errorf("AbortAll aborted %d runs, want 1", n)
		}
	}()
	_, err := RunOpt(4, Options{StallTimeout: -1}, func(c *Ctx) error {
		started <- struct{}{}
		for {
			c.Barrier()
			time.Sleep(time.Millisecond)
		}
	})
	if !errors.Is(err, cause) {
		t.Fatalf("want abort cause, got %v", err)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	// A short stall timeout must not fire while ranks make steady
	// progress through many phases.
	_, err := RunOpt(4, Options{StallTimeout: 250 * time.Millisecond}, func(c *Ctx) error {
		for i := 0; i < 50; i++ {
			c.To((c.Rank() + 1) % 4).Int32(int32(i))
			for _, m := range c.Exchange() {
				m.Data.Int32()
				m.Data.Done()
			}
			SumInt64(c, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("healthy run reported error: %v", err)
	}
}
