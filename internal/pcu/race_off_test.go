//go:build !race

package pcu

const raceEnabled = false
