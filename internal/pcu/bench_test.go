package pcu

import (
	"testing"

	"github.com/fastmath/pumi-go/internal/hwtopo"
)

// Micro-benchmarks for the PCU hot paths: bulk pack/decode kernels
// against their element-wise equivalents, and the phased exchange under
// on-node (by-reference delivery) and off-node (copying delivery)
// topologies. Runnable with benchstat:
//
//	go test -run=^$ -bench=. -count=10 ./internal/pcu | benchstat -
//
// The committed BENCH_*.json files at the repo root track the same
// operations through the pumi-bench -json harness.

const (
	benchPackN   = 4096
	benchRanks   = 8
	benchPayload = 1024
)

func benchInt32s(n int) []int32 {
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(i * 3)
	}
	return v
}

func benchFloat64s(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i) * 1.25
	}
	return v
}

// BenchmarkPackInt32s compares the bulk Int32s kernel against packing
// the same length-prefixed slice one element at a time (the pre-bulk
// wire loop; the encodings are byte-identical).
func BenchmarkPackInt32s(b *testing.B) {
	vals := benchInt32s(benchPackN)
	b.Run("bulk", func(b *testing.B) {
		var buf Buffer
		b.ReportAllocs()
		b.SetBytes(4 + 4*benchPackN)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			buf.Int32s(vals)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		var buf Buffer
		b.ReportAllocs()
		b.SetBytes(4 + 4*benchPackN)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			buf.Int32(int32(len(vals)))
			for _, v := range vals {
				buf.Int32(v)
			}
		}
	})
}

// BenchmarkPackFloat64s is the float flavor of BenchmarkPackInt32s.
func BenchmarkPackFloat64s(b *testing.B) {
	vals := benchFloat64s(benchPackN)
	b.Run("bulk", func(b *testing.B) {
		var buf Buffer
		b.ReportAllocs()
		b.SetBytes(4 + 8*benchPackN)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			buf.Float64s(vals)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		var buf Buffer
		b.ReportAllocs()
		b.SetBytes(4 + 8*benchPackN)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			buf.Int32(int32(len(vals)))
			for _, v := range vals {
				buf.Float64(v)
			}
		}
	})
}

// BenchmarkUnpackInt32s compares bulk decode (into a reused scratch
// slice, the zero-alloc path) against element-wise decode.
func BenchmarkUnpackInt32s(b *testing.B) {
	var src Buffer
	src.Int32s(benchInt32s(benchPackN))
	raw := src.Raw()
	b.Run("bulk", func(b *testing.B) {
		scratch := make([]int32, 0, benchPackN)
		var r Reader
		b.ReportAllocs()
		b.SetBytes(4 + 4*benchPackN)
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			scratch = r.AppendInt32s(scratch[:0])
			r.Done()
		}
	})
	b.Run("scalar", func(b *testing.B) {
		scratch := make([]int32, 0, benchPackN)
		var r Reader
		b.ReportAllocs()
		b.SetBytes(4 + 4*benchPackN)
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			n := int(r.Int32())
			scratch = scratch[:0]
			for j := 0; j < n; j++ {
				scratch = append(scratch, r.Int32())
			}
			r.Done()
		}
	})
}

// benchExchangeOnce runs b.N phases on every rank: each rank sends a
// fixed payload around a ring (sparse) or to every rank including
// itself (dense) and drains its inbox with the zero-copy decode path.
// One op is one full phase across all ranks.
func benchExchangeOnce(b *testing.B, topo hwtopo.Topology, dense bool) {
	payload := make([]byte, benchPayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.ReportAllocs()
	RunOpt(benchRanks, Options{Topo: topo, StallTimeout: -1}, func(c *Ctx) error {
		for i := 0; i < b.N; i++ {
			if dense {
				for p := 0; p < c.Size(); p++ {
					c.To(p).Bytes(payload)
				}
			} else {
				c.To((c.Rank() + 1) % c.Size()).Bytes(payload)
			}
			for _, m := range c.Exchange() {
				_ = m.Data.BytesNoCopy()
				m.Data.Done()
			}
		}
		return nil
	})
}

// BenchmarkExchangeSparse: ring traffic, the neighbor-bounded pattern
// of mesh communication. on-node delivers by reference; off-node
// places every rank on its own node so each message is framed, CRC'd
// and copied.
func BenchmarkExchangeSparse(b *testing.B) {
	b.Run("on-node", func(b *testing.B) {
		benchExchangeOnce(b, hwtopo.Cluster(1, benchRanks), false)
	})
	b.Run("off-node", func(b *testing.B) {
		benchExchangeOnce(b, hwtopo.Cluster(benchRanks, 1), false)
	})
}

// BenchmarkExchangeDense: all-to-all including self, the worst case
// for the active-peer table.
func BenchmarkExchangeDense(b *testing.B) {
	b.Run("on-node", func(b *testing.B) {
		benchExchangeOnce(b, hwtopo.Cluster(1, benchRanks), true)
	})
	b.Run("off-node", func(b *testing.B) {
		benchExchangeOnce(b, hwtopo.Cluster(benchRanks, 1), true)
	})
}

// BenchmarkCountersAdd exercises the sharded counter fast path from
// every rank at once.
func BenchmarkCountersAdd(b *testing.B) {
	b.ReportAllocs()
	RunOpt(benchRanks, Options{StallTimeout: -1}, func(c *Ctx) error {
		ctrs := c.Counters()
		for i := 0; i < b.N; i++ {
			ctrs.Add("bench.count", 1)
		}
		return nil
	})
}
