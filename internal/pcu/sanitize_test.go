package pcu

import (
	"errors"
	"fmt"
	"testing"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/san"
)

// sanWorkload is a small deterministic mix of collectives and
// exchanges: a ring exchange, reductions and a broadcast.
func sanWorkload(c *Ctx) error {
	c.Barrier()
	right := (c.Rank() + 1) % c.Size()
	b := c.To(right)
	b.Int64(int64(c.Rank() * 100))
	msgs := c.Exchange()
	for _, m := range msgs {
		v := m.Data.Int64()
		m.Data.Done()
		if err := m.Data.Err(); err != nil {
			return err
		}
		if v != int64(m.From*100) {
			return fmt.Errorf("rank %d: got %d from %d", c.Rank(), v, m.From)
		}
	}
	if sum := SumInt64(c, 1); sum != int64(c.Size()) {
		return fmt.Errorf("sum %d", sum)
	}
	if root := Bcast(c, 0, c.Rank()); root != 0 {
		return fmt.Errorf("bcast %d", root)
	}
	return nil
}

// TestSanitizeCleanRun: a uniform schedule passes the cross-check and
// yields a nonzero trace hash.
func TestSanitizeCleanRun(t *testing.T) {
	stats, err := RunOpt(4, Options{Sanitize: true}, sanWorkload)
	if err != nil {
		t.Fatalf("sanitized run failed: %v", err)
	}
	if stats.SanHash == 0 {
		t.Fatal("sanitized run reported no trace hash")
	}
}

// TestSanitizeDivergence: ranks entering different collectives at the
// same sync point must fail with a *san.DivergenceError naming the
// first mismatching op on both sides.
func TestSanitizeDivergence(t *testing.T) {
	_, err := RunOpt(2, Options{Sanitize: true}, func(c *Ctx) error {
		c.Barrier() // op 0: uniform
		//pumi-vet:ignore collseq // deliberate divergence: the sanitizer must catch it
		if c.Rank() == 0 {
			c.Barrier() // op 1: rank 0 enters barrier...
		} else {
			SumInt64(c, 1) // ...while rank 1 enters allreduce
		}
		return nil
	})
	if err == nil {
		t.Fatal("divergent schedule passed the sanitizer")
	}
	if !errors.Is(err, san.ErrDivergence) {
		t.Fatalf("error does not match san.ErrDivergence: %v", err)
	}
	var div *san.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("error carries no *san.DivergenceError: %v", err)
	}
	if div.Index != 1 {
		t.Fatalf("first mismatch at op %d, want 1: %v", div.Index, div)
	}
	ops := map[string]bool{div.Op: true, div.PeerOp: true}
	if !ops["barrier"] || !ops["allreduce"] {
		t.Fatalf("mismatching ops %q vs %q, want barrier vs allreduce", div.Op, div.PeerOp)
	}
}

// TestSanitizeDivergenceDeterministic: the divergence diagnosis is a
// deterministic function of the schedule — a rerun produces the
// identical error text, so seeded replays are debuggable.
func TestSanitizeDivergenceDeterministic(t *testing.T) {
	run := func() string {
		_, err := RunOpt(3, Options{Sanitize: true}, func(c *Ctx) error {
			SumInt64(c, 1)
			//pumi-vet:ignore collseq // deliberate divergence: the sanitizer must catch it
			if c.Rank() == 2 {
				c.Barrier()
			} else {
				Bcast(c, 0, 7)
			}
			return nil
		})
		if err == nil {
			t.Fatal("divergent schedule passed the sanitizer")
		}
		return err.Error()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("divergence diagnosis not reproducible:\n  %s\n  %s", a, b)
	}
}

// TestSanitizeIdenticalHashes: two identically-seeded runs produce
// identical op-sequence trace hashes, and the hash is sensitive to
// schedule and payload changes.
func TestSanitizeIdenticalHashes(t *testing.T) {
	topo := hwtopo.Cluster(2, 2)
	run := func(body func(*Ctx) error) uint64 {
		stats, err := RunOpt(4, Options{Topo: topo, Sanitize: true}, body)
		if err != nil {
			t.Fatalf("sanitized run failed: %v", err)
		}
		return stats.SanHash
	}
	a, b := run(sanWorkload), run(sanWorkload)
	if a != b || a == 0 {
		t.Fatalf("identical workloads hash %#x vs %#x", a, b)
	}
	// A different schedule changes the hash.
	other := run(func(c *Ctx) error { c.Barrier(); return nil })
	if other == a {
		t.Fatal("different schedule kept the same trace hash")
	}
	// Same schedule, different payload bytes: the trace (not the
	// schedule) hash must catch it — this is the runtime signature of
	// map-order nondeterminism in packed messages.
	payload := func(v int64) func(*Ctx) error {
		return func(c *Ctx) error {
			c.To((c.Rank() + 1) % c.Size()).Int64(v)
			msgs := c.Exchange()
			for _, m := range msgs {
				m.Data.Int64()
				m.Data.Done()
				if err := m.Data.Err(); err != nil {
					return err
				}
			}
			return nil
		}
	}
	p1, p2 := run(payload(1)), run(payload(2))
	if p1 == p2 {
		t.Fatal("payload change kept the same trace hash")
	}
}

// TestSanitizeUnsanitizedUnchanged: without Sanitize the run reports no
// hash and keeps its op count (the sanitizer adds no collectives).
func TestSanitizeUnsanitizedUnchanged(t *testing.T) {
	plain, err := RunOpt(4, Options{}, sanWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if plain.SanHash != 0 {
		t.Fatalf("unsanitized run reported trace hash %#x", plain.SanHash)
	}
	sanitized, err := RunOpt(4, Options{Sanitize: true}, sanWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if sanitized.Collectives != plain.Collectives {
		t.Fatalf("sanitizer changed the collective count: %d vs %d",
			sanitized.Collectives, plain.Collectives)
	}
}

// TestSanSummaryLedger: the process-wide ledger folds clean sanitized
// runs deterministically and skips failed ones.
func TestSanSummaryLedger(t *testing.T) {
	session := func() (int64, uint64) {
		ResetSanSummary()
		for i := 0; i < 2; i++ {
			if _, err := RunOpt(4, Options{Sanitize: true}, sanWorkload); err != nil {
				t.Fatal(err)
			}
		}
		// A failed run must not pollute the ledger.
		if _, err := RunOpt(2, Options{Sanitize: true}, func(c *Ctx) error {
			//pumi-vet:ignore collseq // deliberate divergence: the sanitizer must catch it
			if c.Rank() == 0 {
				c.Barrier() // deliberate divergence
			} else {
				SumInt64(c, 1)
			}
			return nil
		}); err == nil {
			t.Fatal("divergent run passed")
		}
		return SanSummary()
	}
	runsA, hashA := session()
	runsB, hashB := session()
	if runsA != 2 {
		t.Fatalf("ledger counted %d clean runs, want 2", runsA)
	}
	if runsA != runsB || hashA != hashB || hashA == 0 {
		t.Fatalf("ledger not reproducible: (%d, %#x) vs (%d, %#x)", runsA, hashA, runsB, hashB)
	}
}

// TestSetDefaultSanitize: the process-wide switch sanitizes runs that
// did not opt in via Options.
func TestSetDefaultSanitize(t *testing.T) {
	SetDefaultSanitize(true)
	defer SetDefaultSanitize(false)
	stats, err := RunOpt(2, Options{}, sanWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SanHash == 0 {
		t.Fatal("default-sanitized run reported no trace hash")
	}
}
