package pcu

// Collective operations. Every rank of a run must call the same
// collective in the same order. Reductions apply op in ascending rank
// order, so all ranks compute bit-identical results.

// Allreduce combines one value per rank with op and returns the result
// on every rank.
func Allreduce[T any](c *Ctx, v T, op func(T, T) T) T {
	c.collStart(&opAllreduce)
	defer c.endOp()
	c.w.slots[c.rank] = v
	c.wait()
	acc := c.w.slots[0].(T)
	for r := 1; r < c.w.size; r++ {
		acc = op(acc, c.w.slots[r].(T))
	}
	c.wait()
	return acc
}

// Reduce combines one value per rank with op; the result is valid on
// root (other ranks receive the zero value).
func Reduce[T any](c *Ctx, root int, v T, op func(T, T) T) T {
	c.collStart(&opReduce)
	defer c.endOp()
	c.w.slots[c.rank] = v
	c.wait()
	var acc T
	if c.rank == root {
		acc = c.w.slots[0].(T)
		for r := 1; r < c.w.size; r++ {
			acc = op(acc, c.w.slots[r].(T))
		}
	}
	c.wait()
	return acc
}

// Bcast distributes root's value to every rank.
func Bcast[T any](c *Ctx, root int, v T) T {
	c.collStart(&opBcast)
	defer c.endOp()
	if c.rank == root {
		c.w.slots[root] = v
	}
	c.wait()
	out := c.w.slots[root].(T)
	c.wait()
	return out
}

// Allgather returns every rank's value, indexed by rank, on every rank.
func Allgather[T any](c *Ctx, v T) []T {
	c.collStart(&opAllgather)
	defer c.endOp()
	c.w.slots[c.rank] = v
	c.wait()
	out := make([]T, c.w.size)
	for r := 0; r < c.w.size; r++ {
		out[r] = c.w.slots[r].(T)
	}
	c.wait()
	return out
}

// Exscan returns the exclusive prefix reduction of v over ranks below
// this one; rank 0 receives the provided identity.
func Exscan[T any](c *Ctx, v, identity T, op func(T, T) T) T {
	c.collStart(&opExscan)
	defer c.endOp()
	c.w.slots[c.rank] = v
	c.wait()
	acc := identity
	for r := 0; r < c.rank; r++ {
		acc = op(acc, c.w.slots[r].(T))
	}
	c.wait()
	return acc
}

// SumInt64 is an allreduce summing int64 values.
func SumInt64(c *Ctx, v int64) int64 {
	return Allreduce(c, v, func(a, b int64) int64 { return a + b })
}

// MaxInt64 is an allreduce taking the maximum of int64 values.
func MaxInt64(c *Ctx, v int64) int64 {
	return Allreduce(c, v, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// MinInt64 is an allreduce taking the minimum of int64 values.
func MinInt64(c *Ctx, v int64) int64 {
	return Allreduce(c, v, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

// SumFloat64 is an allreduce summing float64 values.
func SumFloat64(c *Ctx, v float64) float64 {
	return Allreduce(c, v, func(a, b float64) float64 { return a + b })
}

// MaxFloat64 is an allreduce taking the maximum of float64 values.
func MaxFloat64(c *Ctx, v float64) float64 {
	return Allreduce(c, v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// ExscanInt64 is an exclusive prefix sum of int64 values, the building
// block of global numbering.
func ExscanInt64(c *Ctx, v int64) int64 {
	return Exscan(c, v, 0, func(a, b int64) int64 { return a + b })
}
