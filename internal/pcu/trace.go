package pcu

// Flight-recorder wiring: when a run is traced (Options.Trace or the
// process-wide collector installed by a tool's -trace flag), every rank
// records its blocking operations, per-peer deliveries and injected
// faults into its ring of the run's trace.Trace. Recording is a single
// ring store under an uncontended mutex — zero allocations, no
// collectives — so a traced schedule is the real schedule and the
// alloc-regression tests hold with tracing on.

import (
	"sync/atomic"

	"github.com/fastmath/pumi-go/internal/trace"
)

// defaultTracer is the process-wide trace collector, installed by tools
// (pumi-bench -trace, pumi-part -trace) so every run they start records
// without threading an option through each experiment.
var defaultTracer atomic.Pointer[trace.Collector]

// SetDefaultTrace installs col as the process-wide trace collector:
// every subsequent run without an explicit Options.Trace records into a
// fresh per-run trace and adds it to col when the run ends, normally or
// not. Pass nil to turn default tracing off.
func SetDefaultTrace(col *trace.Collector) { defaultTracer.Store(col) }

// Trace returns this rank's flight recorder, or nil when the run is
// untraced. All Recorder methods are nil-safe, so instrumented code
// calls c.Trace().Begin(...) unconditionally.
func (c *Ctx) Trace() *trace.Recorder { return c.tr }
