package pcu

import (
	"hash/crc32"
	"sync"
	"time"
)

// Transient-fault retry. Off-node frames travel with length, CRC32 and
// a per-pair sequence number; historically any validation failure was
// fatal (ErrCorruptMessage). Real interconnects treat single-frame
// damage as transient: the sender keeps the frame until it is
// acknowledged, and the receiver requests a bounded number of
// retransmits with exponential backoff before escalating. This file is
// that layer.
//
// The retransmit store is armed only when a run carries a fault plan —
// the sole source of wire damage in this architecture — so fault-free
// hot paths pay nothing (no kept copies, no map traffic, no
// allocations). When armed:
//
//   - every framed send deposits what a retransmit would deliver: the
//     payload plus the framing the sender claims for it. A Sticky wire
//     fault damages the kept payload while the framing keeps describing
//     the pristine bytes — modeling a link that damages every
//     transmission, not just one;
//   - a receiver whose validation fails fetches the kept frame, backs
//     off exponentially, and revalidates, up to Options.RetryBudget
//     times; success is counted in Stats.Retries and traced as a
//     "retry" fault event;
//   - a frame that validates (first try or after retries) is
//     acknowledged, dropping the kept copy;
//   - a replayed frame (sequence number already delivered) is dropped
//     and counted in Stats.Replays — duplicate suppression, not an
//     error.
//
// Retry success and failure are deterministic functions of the fault
// plan: a non-sticky fault always recovers on the first retransmit, a
// sticky one always exhausts the budget.

// DefaultRetryBudget is how many retransmits a receiver requests for
// one damaged frame when Options.RetryBudget is zero.
const DefaultRetryBudget = 3

// DefaultRetryBackoff is the base backoff before the first retransmit
// when Options.RetryBackoff is zero; attempt k waits base<<(k-1).
const DefaultRetryBackoff = 100 * time.Microsecond

// resendKey addresses one kept frame: sender, receiver, and the
// per-pair sequence number it was framed with.
type resendKey struct {
	from, to int
	seq      int64
}

// resentFrame is one kept frame as a retransmit would deliver it: the
// payload bytes plus the framing the sender claims. For a healthy link
// the framing matches the bytes; under a Sticky fault it does not.
type resentFrame struct {
	data    []byte
	wantLen int
	crc     uint32
}

// valid reports whether the frame's bytes match its claimed framing.
func (f resentFrame) valid() bool {
	return len(f.data) == f.wantLen && crc32.ChecksumIEEE(f.data) == f.crc
}

// resendStore holds the kept frames. One mutex suffices: it is touched
// only on framed (off-node) sends of fault-plan runs, never on the
// fault-free hot path.
type resendStore struct {
	mu     sync.Mutex
	frames map[resendKey]resentFrame
}

func newResendStore() *resendStore {
	return &resendStore{frames: make(map[resendKey]resentFrame)}
}

// keep deposits the sender's copy of one framed payload.
func (s *resendStore) keep(from, to int, seq int64, f resentFrame) {
	s.mu.Lock()
	s.frames[resendKey{from, to, seq}] = f
	s.mu.Unlock()
}

// fetch returns the kept frame for a retransmit, leaving it stored so a
// failed revalidation can fetch again.
func (s *resendStore) fetch(from, to int, seq int64) (resentFrame, bool) {
	s.mu.Lock()
	f, ok := s.frames[resendKey{from, to, seq}]
	s.mu.Unlock()
	return f, ok
}

// ack drops the kept frame once the receiver validated a delivery.
func (s *resendStore) ack(from, to int, seq int64) {
	s.mu.Lock()
	delete(s.frames, resendKey{from, to, seq})
	s.mu.Unlock()
}

// retryBudget resolves the configured retransmit budget.
func (w *World) retryBudget() int {
	if w.retryLimit < 0 {
		return 0
	}
	if w.retryLimit == 0 {
		return DefaultRetryBudget
	}
	return w.retryLimit
}

// retryWait sleeps the exponential backoff before retransmit attempt
// k (1-based). Backoff is wall-clock only; it never changes the
// logical schedule, so seeded runs stay deterministic.
func (w *World) retryWait(attempt int) {
	base := w.retryDelay
	if base == 0 {
		base = DefaultRetryBackoff
	}
	if base < 0 {
		return
	}
	time.Sleep(base << (attempt - 1))
}

// recoverFrame runs the receiver side of the retransmit protocol for a
// delivery that failed length or CRC validation. It returns the
// repaired payload and the number of retransmits spent, or ok=false
// with the spent count when the budget dies or no copy was kept.
func (c *Ctx) recoverFrame(d delivery) (data []byte, retries int, ok bool) {
	store := c.w.resend
	if store == nil {
		return nil, 0, false
	}
	budget := c.w.retryBudget()
	for attempt := 1; attempt <= budget; attempt++ {
		c.w.retryWait(attempt)
		retries = attempt
		resent, kept := store.fetch(d.from, c.rank, d.seq)
		if !kept {
			return nil, retries, false
		}
		if !resent.valid() {
			continue // the link is still damaging frames (Sticky fault)
		}
		store.ack(d.from, c.rank, d.seq)
		c.w.retries.Add(1)
		c.Counters().Add("pcu.retry", 1)
		c.tr.Fault("retry", d.seq)
		return resent.data, retries, true
	}
	return nil, retries, false
}
