// Package pcu is the Parallel Control Utility: the message-passing
// substrate every distributed algorithm in this library runs on. It
// plays the role MPI plays for PUMI.
//
// Because Go has no MPI ecosystem, pcu implements an in-process
// distributed runtime: Run spawns one goroutine per rank, each rank owns
// only its private state, and all inter-rank communication flows through
// this package — phased sparse neighbor exchanges (the PCU
// begin/pack/send/receive pattern used by migration, ghosting and ParMA)
// and collectives (barrier, reduce, allreduce, allgather, broadcast,
// exclusive scan).
//
// The runtime is architecture aware: ranks are mapped onto an
// hwtopo.Topology, and messages between ranks on different nodes pass
// through an explicit serialize-and-copy path while on-node messages are
// handed over by reference. This reproduces the genuine cost asymmetry
// between network and shared-memory communication that the paper's
// two-level partitioning exploits, and the runtime counts both classes
// of traffic separately so experiments can report it.
package pcu
