// Package pcu is the Parallel Control Utility: the message-passing
// substrate every distributed algorithm in this library runs on. It
// plays the role MPI plays for PUMI.
//
// Because Go has no MPI ecosystem, pcu implements an in-process
// distributed runtime: Run spawns one goroutine per rank, each rank owns
// only its private state, and all inter-rank communication flows through
// this package — phased sparse neighbor exchanges (the PCU
// begin/pack/send/receive pattern used by migration, ghosting and ParMA)
// and collectives (barrier, reduce, allreduce, allgather, broadcast,
// exclusive scan).
//
// The runtime is architecture aware: ranks are mapped onto an
// hwtopo.Topology, and messages between ranks on different nodes pass
// through an explicit serialize-and-copy path while on-node messages are
// handed over by reference. This reproduces the genuine cost asymmetry
// between network and shared-memory communication that the paper's
// two-level partitioning exploits, and the runtime counts both classes
// of traffic separately so experiments can report it.
//
// # Memory-ordering contract
//
// The runtime stays race-free under the following discipline, which all
// code in this module follows and go test -race plus the pumi-vet
// static analyzers enforce:
//
//   - A Ctx is goroutine-confined. It must only be used by the rank
//     goroutine it was handed to: never capture it in a go statement,
//     store it in a global, or send it over a channel (the ctxescape
//     analyzer flags all three). Everything reachable only through a
//     Ctx — its out-buffers, the Messages returned by Exchange — is
//     private to that rank.
//
//   - All cross-rank data transfer is synchronized by the barrier. The
//     barrier guards its generation counter with a mutex/cond pair, so
//     every write a rank performs before bar.wait() returns
//     happens-before every read any rank performs after the same
//     barrier generation completes. Exchange publishes inbox entries
//     under the inbox mutex before its single delivery barrier, and
//     collects them after it. Deliveries are phase-tagged rather than
//     fenced by a second barrier: a fast rank can run at most one phase
//     ahead (its next barrier cannot complete until every rank reaches
//     it), so an inbox holds entries of at most two adjacent phases and
//     collection filters by tag, leaving newer entries in place.
//     Sanitized runs keep a second wait so every checked op spans
//     exactly two sync points.
//
//   - Exchange machinery is pooled per rank. The per-peer Buffers, the
//     backing arrays and the Readers handed out by Exchange all recycle
//     through free lists owned by a single rank, so reuse needs no
//     synchronization: on-node delivery transfers array ownership to
//     the receiver, and the receiver's Reader.Done returns the array to
//     its own pool. Consequently a Message, its Reader and any slice
//     decoded without copying (BytesNoCopy, BytesVal) are valid only
//     until Done — or the next Exchange — and must never be stored;
//     Reader.Bytes returns a copy that survives. The bufdiscipline
//     analyzer flags uses of an uncopied slice past Done.
//
//   - Collectives write only their own World.slots entry, then barrier,
//     then read the other entries, then barrier again before any rank
//     may overwrite its slot for the next collective. No slot is ever
//     written concurrently with a read.
//
//   - A Buffer handed out by Ctx.To is sealed once Exchange delivers
//     it, because on-node delivery passes the bytes by reference;
//     packing into a stale buffer panics instead of racing with the
//     receiver's decode (the bufdiscipline analyzer catches this
//     statically, the seal catches it at run time).
//
//   - The traffic counters are atomics, so Stats may be called from any
//     rank at any time — including concurrently with message delivery —
//     and yields a consistent (if instantaneous) snapshot.
package pcu
