package pcu

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Collective watchdog. A rank that skips a collective (or dies without
// panicking) leaves its peers blocked in the shared barrier forever —
// historically a silent hang. The watchdog turns that hang into an
// actionable error: it polls the run's progress and, when the run can
// no longer advance, poisons the barrier with a *StallError carrying a
// per-rank diagnosis (which op each rank is blocked in and how many
// collectives/exchanges it has completed).
//
// Two triggers:
//
//   - certain deadlock: every rank is either finished or blocked in the
//     barrier, at least one is blocked, and the state is identical
//     across two consecutive polls. No timeout is needed — the run
//     provably cannot advance — so diagnosis is near-immediate.
//   - timeout stall: at least one rank has been blocked with no barrier
//     progress anywhere for longer than the configured stall timeout
//     (covers livelock and pathological stragglers).

// DefaultStallTimeout is the watchdog timeout used when Options leaves
// StallTimeout zero. Legitimate compute phases between collectives must
// finish within it; tests that provoke deadlocks use much smaller
// values.
const DefaultStallTimeout = 2 * time.Minute

// ErrStalled is wrapped by every watchdog teardown.
var ErrStalled = errors.New("pcu: collective stall")

// RankSnapshot is one rank's progress record in a stall diagnosis.
type RankSnapshot struct {
	Rank        int
	Op          string // op the rank is blocked in ("" while computing)
	Collectives int64  // collectives entered by this rank
	Exchanges   int64  // exchanges entered by this rank
	Blocked     bool
	Done        bool
	Vanished    bool
	// SinceProgress is how long this rank's progress state had been
	// unchanged when the diagnosis was taken (watchdog-observed, rounded
	// to milliseconds), so a report distinguishes a slow rank — short
	// SinceProgress, still moving — from a dead one stuck since the
	// beginning of the stall window. Zero when the watchdog never saw
	// the rank change (diagnosis on the first polls).
	SinceProgress time.Duration
}

func (r RankSnapshot) describe() string {
	idle := ""
	if r.SinceProgress > 0 {
		idle = fmt.Sprintf(", idle %v", r.SinceProgress)
	}
	switch {
	case r.Vanished:
		return fmt.Sprintf("rank %d vanished (colls=%d exchs=%d%s)", r.Rank, r.Collectives, r.Exchanges, idle)
	case r.Done:
		return fmt.Sprintf("rank %d finished (colls=%d exchs=%d%s)", r.Rank, r.Collectives, r.Exchanges, idle)
	case r.Blocked:
		return fmt.Sprintf("rank %d blocked in %s (colls=%d exchs=%d%s)", r.Rank, r.Op, r.Collectives, r.Exchanges, idle)
	default:
		return fmt.Sprintf("rank %d computing (colls=%d exchs=%d%s)", r.Rank, r.Collectives, r.Exchanges, idle)
	}
}

// StallError is the watchdog's diagnosis of a run that can no longer
// make progress.
type StallError struct {
	Reason string
	Ranks  []RankSnapshot
	// Trails holds each rank's flight-recorder tail (one rendered line
	// per rank) when the stalled run was traced: the last operations,
	// sends and faults leading up to the stall, not just the op each
	// rank is frozen in. Empty for untraced runs.
	Trails []string
	// Counters is the run's merged perf report (perf.Counters.Report) at
	// diagnosis time, so a stall carries its counter state — how much
	// work each phase did before freezing — without a separate scrape.
	// Empty when the run accumulated nothing.
	Counters string
}

func (e *StallError) Error() string {
	var b strings.Builder
	b.WriteString("pcu: collective stall: ")
	b.WriteString(e.Reason)
	for _, r := range e.Ranks {
		b.WriteString("\n  ")
		b.WriteString(r.describe())
	}
	if len(e.Trails) > 0 {
		b.WriteString("\n  flight recorder:")
		for _, t := range e.Trails {
			b.WriteString("\n    ")
			b.WriteString(t)
		}
	}
	if e.Counters != "" {
		b.WriteString("\n  counters:")
		for _, line := range strings.Split(strings.TrimRight(e.Counters, "\n"), "\n") {
			b.WriteString("\n    ")
			b.WriteString(line)
		}
	}
	return b.String()
}

func (e *StallError) Unwrap() error { return ErrStalled }

// snapshot collects every rank's progress state. Each field is read
// atomically; a snapshot only triggers a teardown when it repeats
// across consecutive polls, so skew between fields of a rank mid-update
// cannot produce a false diagnosis.
func (w *World) snapshot() []RankSnapshot {
	out := make([]RankSnapshot, len(w.ranks))
	for i := range w.ranks {
		rs := &w.ranks[i]
		op := ""
		if p := rs.op.Load(); p != nil {
			op = *p
		}
		out[i] = RankSnapshot{
			Rank:        i,
			Op:          op,
			Collectives: rs.colls.Load(),
			Exchanges:   rs.exchs.Load(),
			Blocked:     rs.blocked.Load(),
			Done:        rs.done.Load(),
			Vanished:    rs.vanished.Load(),
		}
	}
	return out
}

func sameSnapshot(a, b []RankSnapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// watch runs until stop closes, poisoning the barrier with a
// *StallError when the run stalls.
func (w *World) watch(timeout time.Duration, stop chan struct{}) {
	interval := timeout / 8
	if interval > 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var prev []RankSnapshot
	var lastChange []time.Time
	prevGen := -1
	prevCertain := false
	lastActivity := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if w.bar.isPoisoned() {
			return // already tearing down
		}
		snap := w.snapshot()
		parked, gen := w.bar.state()
		now := time.Now()
		if lastChange == nil {
			lastChange = make([]time.Time, len(snap))
			for i := range lastChange {
				lastChange[i] = now
			}
		}
		for i := range snap {
			if prev != nil && snap[i] != prev[i] {
				lastChange[i] = now
			}
		}
		// idleStamped fills each snapshot entry's time-since-progress
		// right before a diagnosis is published.
		idleStamped := func() []RankSnapshot {
			for i := range snap {
				snap[i].SinceProgress = now.Sub(lastChange[i]).Round(time.Millisecond)
			}
			return snap
		}
		var vanished []int
		for _, r := range snap {
			if r.Vanished {
				vanished = append(vanished, r.Rank)
			}
		}
		if w.survivable && len(vanished) > 0 {
			// Feed suspicion to the agreement gate. A fresh conviction is
			// activity: it may complete a pending Agree round, so give the
			// survivors a poll to move before judging the run stuck.
			if w.agree.suspect(vanished) {
				lastActivity = now
				prev, prevGen = snap, gen
				prevCertain = false
				continue
			}
		}
		if gen != prevGen || !sameSnapshot(prev, snap) {
			lastActivity = now
			prev, prevGen = snap, gen
			prevCertain = false
			continue
		}
		anyBlocked, allStuck, nBlocked := false, true, 0
		for _, r := range snap {
			if r.Blocked {
				anyBlocked = true
				nBlocked++
			} else if !r.Done {
				allStuck = false
			}
		}
		if !anyBlocked {
			lastActivity = now
			continue
		}
		// Certain only when every flagged rank has actually parked — in
		// the barrier or the Agree gate (a rank between flagging and
		// parking might still be the arrival that fills the barrier and
		// releases everyone).
		certain := allStuck && parked+w.agree.parked() == nBlocked
		if certain && prevCertain {
			if w.survivable && len(vanished) > 0 {
				// The dead ranks block the survivors forever: revoke the
				// world with a consistent conviction instead of reporting
				// an undiagnosed stall.
				w.revoke(vanished)
				return
			}
			w.stall(&StallError{
				Reason: "deadlock: every rank is finished or blocked, none can advance",
				Ranks:  idleStamped(),
			})
			return
		}
		prevCertain = certain
		if time.Since(lastActivity) > timeout {
			if w.survivable && len(vanished) > 0 {
				w.revoke(vanished)
				return
			}
			w.stall(&StallError{
				Reason: fmt.Sprintf("no progress for %v", timeout),
				Ranks:  idleStamped(),
			})
			return
		}
	}
}

// stallTrail is how many flight-recorder events per rank a stall
// diagnosis carries: enough to see the phase pattern leading up to the
// stall without flooding the report.
const stallTrail = 8

// stall records the diagnosis and releases all blocked ranks by
// poisoning the barrier with it.
func (w *World) stall(err *StallError) {
	if err.Trails == nil {
		// Safe while ranks still run: each Recorder snapshot locks its
		// ring against the owning rank's writes.
		err.Trails = w.tr.TailStrings(stallTrail)
	}
	if err.Counters == "" {
		// Shard merging is read-only and lock-per-shard: safe while the
		// stalled ranks sit in the barrier.
		err.Counters = w.counters.Report()
	}
	w.stallMu.Lock()
	if w.stallErr == nil {
		w.stallErr = err
	}
	w.stallMu.Unlock()
	w.poisonWith(err)
}
