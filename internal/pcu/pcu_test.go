package pcu

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/fastmath/pumi-go/internal/hwtopo"
)

func TestRunBasics(t *testing.T) {
	var visited atomic.Int64
	err := Run(7, func(c *Ctx) error {
		if c.Size() != 7 {
			return fmt.Errorf("size = %d", c.Size())
		}
		visited.Add(1 << uint(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 1<<7-1 {
		t.Fatalf("ranks visited bitmap = %b", visited.Load())
	}
}

func TestRunRejectsBadCounts(t *testing.T) {
	if err := Run(0, func(*Ctx) error { return nil }); err == nil {
		t.Fatal("0 ranks accepted")
	}
	if _, err := RunOn(5, hwtopo.Cluster(1, 4), func(*Ctx) error { return nil }); err == nil {
		t.Fatal("ranks exceeding topology accepted")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	err := Run(3, func(c *Ctx) error {
		if c.Rank() == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunPanicDoesNotDeadlock(t *testing.T) {
	err := Run(4, func(c *Ctx) error {
		//pumi-vet:ignore collseq // deliberate divergence: panic poisoning must unblock peers
		if c.Rank() == 2 {
			panic("dead rank")
		}
		c.Barrier() // would deadlock without poisoning
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "dead rank") {
		t.Fatalf("err = %v", err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const n = 8
	var phase atomic.Int64
	err := Run(n, func(c *Ctx) error {
		for i := 0; i < 50; i++ {
			phase.Add(1)
			c.Barrier()
			if got := phase.Load(); got != int64((i+1)*n) {
				return fmt.Errorf("iter %d: phase=%d", i, got)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceAndFriends(t *testing.T) {
	err := Run(6, func(c *Ctx) error {
		r := int64(c.Rank())
		if s := SumInt64(c, r); s != 15 {
			return fmt.Errorf("sum = %d", s)
		}
		if m := MaxInt64(c, r); m != 5 {
			return fmt.Errorf("max = %d", m)
		}
		if m := MinInt64(c, 10-r); m != 5 {
			return fmt.Errorf("min = %d", m)
		}
		if s := SumFloat64(c, 0.5); s != 3.0 {
			return fmt.Errorf("fsum = %g", s)
		}
		if m := MaxFloat64(c, float64(c.Rank())); m != 5.0 {
			return fmt.Errorf("fmax = %g", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastReduceGatherScan(t *testing.T) {
	err := Run(5, func(c *Ctx) error {
		v := Bcast(c, 2, c.Rank()*100)
		if v != 200 {
			return fmt.Errorf("bcast = %d", v)
		}
		sum := Reduce(c, 0, int64(1), func(a, b int64) int64 { return a + b })
		//pumi-vet:ignore collseq // assertion failure ends the run; poisoning unblocks peers
		if c.Rank() == 0 && sum != 5 {
			return fmt.Errorf("reduce = %d", sum)
		}
		all := Allgather(c, c.Rank()*c.Rank())
		want := []int{0, 1, 4, 9, 16}
		if !slices.Equal(all, want) {
			return fmt.Errorf("allgather = %v", all)
		}
		// Exclusive prefix sum of ones is the rank itself.
		if p := ExscanInt64(c, 1); p != int64(c.Rank()) {
			return fmt.Errorf("exscan = %d", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeRing(t *testing.T) {
	const n = 9
	err := Run(n, func(c *Ctx) error {
		next := (c.Rank() + 1) % n
		c.To(next).Int32(int32(c.Rank()))
		msgs := c.Exchange()
		if len(msgs) != 1 {
			return fmt.Errorf("got %d messages", len(msgs))
		}
		prev := (c.Rank() + n - 1) % n
		if msgs[0].From != prev {
			return fmt.Errorf("from = %d, want %d", msgs[0].From, prev)
		}
		if v := msgs[0].Data.Int32(); v != int32(prev) {
			return fmt.Errorf("payload = %d", v)
		}
		if !msgs[0].Data.Empty() {
			return errors.New("leftover bytes")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeAllToAllSortedAndPhased(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Ctx) error {
		for phase := 0; phase < 4; phase++ {
			for p := 0; p < n; p++ {
				c.To(p).Int32(int32(c.Rank()*1000 + phase))
			}
			msgs := c.Exchange()
			if len(msgs) != n {
				return fmt.Errorf("phase %d: %d messages", phase, len(msgs))
			}
			for i, m := range msgs {
				if m.From != i {
					return fmt.Errorf("messages not sorted by sender: %d at %d", m.From, i)
				}
				if v := m.Data.Int32(); v != int32(i*1000+phase) {
					return fmt.Errorf("phase mixing: got %d", v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeEmptyPhase(t *testing.T) {
	err := Run(4, func(c *Ctx) error {
		// A rank that packs nothing still participates.
		if c.Rank() == 0 {
			c.To(3).Byte(7)
		}
		msgs := c.Exchange()
		if c.Rank() == 3 {
			if len(msgs) != 1 || msgs[0].Data.Byte() != 7 {
				return errors.New("rank 3 missed the message")
			}
		} else if len(msgs) != 0 {
			return fmt.Errorf("rank %d got %d messages", c.Rank(), len(msgs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeSelfMessage(t *testing.T) {
	err := Run(2, func(c *Ctx) error {
		c.To(c.Rank()).Int64(int64(c.Rank()) + 10)
		msgs := c.Exchange()
		if len(msgs) != 1 || msgs[0].From != c.Rank() {
			return fmt.Errorf("self message missing: %v", msgs)
		}
		if v := msgs[0].Data.Int64(); v != int64(c.Rank())+10 {
			return fmt.Errorf("self payload = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTopologyAwareStats(t *testing.T) {
	// 2 nodes x 2 cores: ranks 0,1 on node 0; ranks 2,3 on node 1.
	topo := hwtopo.Cluster(2, 2)
	stats, err := RunOn(4, topo, func(c *Ctx) error {
		//pumi-vet:ignore collseq // assertion failure ends the run; poisoning unblocks peers
		if c.Rank() == 0 {
			if !c.SameNode(1) || c.SameNode(2) {
				return errors.New("SameNode wrong")
			}
			if got := c.NodePeers(); !slices.Equal(got, []int{0, 1}) {
				return fmt.Errorf("NodePeers = %v", got)
			}
		}
		c.To(1).Int32(1) // on-node for 0, off-node for 2,3
		c.Exchange()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Senders 0 and 1 are on node 0 with peer 1; senders 2,3 are off-node.
	if stats.OnNodeMsgs != 2 || stats.OffNodeMsgs != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.OnNodeBytes != 8 || stats.OffNodeBytes != 8 {
		t.Fatalf("byte stats = %+v", stats)
	}
}

func TestBufferReaderRoundTrip(t *testing.T) {
	var b Buffer
	b.Byte(9)
	b.Int32(-5)
	b.Int64(1 << 40)
	b.Float64(3.25)
	b.Bytes([]byte("hi"))
	b.Int32s([]int32{1, -2, 3})
	b.Float64s([]float64{0.5, -0.5})
	r := NewReader(b.buf)
	if r.Byte() != 9 || r.Int32() != -5 || r.Int64() != 1<<40 || r.Float64() != 3.25 {
		t.Fatal("scalar round trip failed")
	}
	if string(r.BytesVal()) != "hi" {
		t.Fatal("bytes round trip failed")
	}
	if !slices.Equal(r.Int32s(), []int32{1, -2, 3}) {
		t.Fatal("int32s round trip failed")
	}
	if !slices.Equal(r.Float64s(), []float64{0.5, -0.5}) {
		t.Fatal("float64s round trip failed")
	}
	if !r.Empty() {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestReaderUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	NewReader([]byte{1, 2}).Int32()
}

func TestBufferSealedAfterExchange(t *testing.T) {
	err := Run(2, func(c *Ctx) error {
		b := c.To(1 - c.Rank())
		b.Int32(1)
		c.Exchange()
		defer func() {
			if recover() == nil {
				panic("stale buffer write did not panic")
			}
		}()
		b.Int32(2) // must panic: the phase's Exchange delivered this buffer
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Stats must be safe to read from any rank while other ranks are
// mid-delivery; run it under -race with heavy concurrent traffic.
func TestStatsDuringTrafficRace(t *testing.T) {
	const n = 8
	topo := hwtopo.Cluster(2, 4) // both on-node and off-node paths
	_, err := RunOn(n, topo, func(c *Ctx) error {
		for phase := 0; phase < 20; phase++ {
			for p := 0; p < n; p++ {
				c.To(p).Int64(int64(phase))
			}
			s := c.Stats() // concurrent with peers' inbox appends
			if s.OnNodeMsgs < 0 || s.OffNodeMsgs < 0 {
				return errors.New("negative counter")
			}
			for _, m := range c.Exchange() {
				m.Data.Int64()
				m.Data.Done()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackToInvalidPeerPanics(t *testing.T) {
	err := Run(2, func(c *Ctx) error {
		if c.Rank() == 0 {
			c.To(5)
		}
		c.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "invalid peer") {
		t.Fatalf("err = %v", err)
	}
}

// Property: Allreduce with any associative-commutative op over random
// per-rank values agrees with the serial fold on every rank.
func TestAllreduceProperty(t *testing.T) {
	f := func(vals []int32) bool {
		n := len(vals)
		if n == 0 || n > 12 {
			return true
		}
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		okAll := true
		err := Run(n, func(c *Ctx) error {
			got := SumInt64(c, int64(vals[c.Rank()]))
			if got != want {
				okAll = false
			}
			return nil
		})
		return err == nil && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: random sparse exchanges deliver exactly what was sent —
// every payload arrives at its addressee, intact, exactly once.
func TestExchangeDeliveryProperty(t *testing.T) {
	f := func(seed uint32) bool {
		const n = 5
		ok := true
		err := Run(n, func(c *Ctx) error {
			rng := uint64(seed) + uint64(c.Rank())*0x9e3779b9 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			// Each rank sends 0..3 messages to random peers carrying
			// (from, to, nonce); receivers verify.
			type sent struct{ to, nonce int64 }
			var mine []sent
			k := int(next() % 4)
			for i := 0; i < k; i++ {
				to := int(next() % n)
				nonce := int64(next())
				b := c.To(to)
				b.Int64(int64(c.Rank()))
				b.Int64(int64(to))
				b.Int64(nonce)
				mine = append(mine, sent{to: int64(to), nonce: nonce})
			}
			msgs := c.Exchange()
			count := 0
			for _, m := range msgs {
				for !m.Data.Empty() {
					from := m.Data.Int64()
					to := m.Data.Int64()
					m.Data.Int64() // nonce
					if from != int64(m.From) || to != int64(c.Rank()) {
						return errBadDelivery
					}
					count++
				}
			}
			// Conservation: total sent == total received.
			sentN := SumInt64(c, int64(len(mine)))
			recvN := SumInt64(c, int64(count))
			if sentN != recvN {
				return errBadDelivery
			}
			return nil
		})
		if err != nil {
			ok = false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

var errBadDelivery = errors.New("pcu: bad delivery")

func TestGenericCollectivesWithStructs(t *testing.T) {
	type stats struct {
		Min, Max int
	}
	err := Run(5, func(c *Ctx) error {
		v := stats{Min: c.Rank(), Max: c.Rank()}
		all := Allreduce(c, v, func(a, b stats) stats {
			if b.Min < a.Min {
				a.Min = b.Min
			}
			if b.Max > a.Max {
				a.Max = b.Max
			}
			return a
		})
		if all.Min != 0 || all.Max != 4 {
			return fmt.Errorf("allreduce struct = %+v", all)
		}
		got := Bcast(c, 3, []int{c.Rank()})
		if len(got) != 1 || got[0] != 3 {
			return fmt.Errorf("bcast slice = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
