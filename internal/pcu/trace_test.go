package pcu

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/trace"
)

// TestTracedExchangeRecordsTimeline runs a ring exchange under an
// explicit Options.Trace and checks the flight recorder caught the real
// schedule: one exchange span and one send per phase per rank, sends
// naming the right peer and delivery class, and a Chrome export that
// passes schema validation.
func TestTracedExchangeRecordsTimeline(t *testing.T) {
	const ranks, phases = 4, 3
	tr := trace.New(ranks, trace.Config{})
	// Two ranks per node: rank r sends to r+1, so ranks 0 and 2 send
	// on-node and ranks 1 and 3 send off-node.
	_, err := RunOpt(ranks, Options{Topo: hwtopo.Cluster(2, 2), Trace: tr}, func(c *Ctx) error {
		for i := 0; i < phases; i++ {
			c.To((c.Rank() + 1) % c.Size()).Int32(int32(i))
			for _, m := range c.Exchange() {
				m.Data.Int32()
				m.Data.Done()
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		var begins, ends, sends, barriers int
		for _, e := range tr.Rank(r).Snapshot() {
			switch {
			case e.Kind == trace.KindBegin && e.Name == "exchange":
				begins++
			case e.Kind == trace.KindEnd && e.Name == "exchange":
				ends++
			case e.Kind == trace.KindBegin && e.Name == "barrier":
				barriers++
			case e.Kind == trace.KindSend:
				sends++
				if want := int64((r + 1) % ranks); e.A != want {
					t.Errorf("rank %d send to peer %d, want %d", r, e.A, want)
				}
				wantOnNode := hwtopo.Cluster(2, 2).SameNode(r, (r+1)%ranks)
				if (e.V != 0) != wantOnNode {
					t.Errorf("rank %d send on_node=%v, want %v", r, e.V != 0, wantOnNode)
				}
			}
		}
		if begins != phases || ends != phases || sends != phases || barriers != 1 {
			t.Errorf("rank %d recorded begins=%d ends=%d sends=%d barriers=%d, want %d/%d/%d/1",
				r, begins, ends, sends, barriers, phases, phases, phases)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if kind, err := trace.ValidateFile(buf.Bytes()); err != nil || kind != trace.FileChrome {
		t.Fatalf("traced run's chrome export invalid: kind=%v err=%v", kind, err)
	}
}

// TestTraceTooSmallRejected: a trace sized for fewer ranks than the run
// is a configuration error, not a partial recording.
func TestTraceTooSmallRejected(t *testing.T) {
	_, err := RunOpt(4, Options{Trace: trace.New(2, trace.Config{})}, func(c *Ctx) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "trace sized for 2 ranks") {
		t.Fatalf("undersized trace accepted: err=%v", err)
	}
}

// TestDefaultTraceCollector: with a process-wide collector installed,
// runs without an explicit Options.Trace record into it — including
// failed runs, whose timeline is what the trace is for.
func TestDefaultTraceCollector(t *testing.T) {
	col := trace.NewCollector(trace.Config{Ring: 256})
	SetDefaultTrace(col)
	defer SetDefaultTrace(nil)
	Run(2, func(c *Ctx) error {
		c.Barrier()
		return nil
	})
	if col.Runs() != 1 {
		t.Fatalf("collector holds %d runs, want 1", col.Runs())
	}
	s := col.Summarize()
	found := false
	for _, p := range s.Phases {
		if p.Name == "barrier" && p.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("collector summary missing the barrier phase: %+v", s.Phases)
	}
}

// TestStallErrorCarriesTraceTail provokes a stall with an injected
// delay (the chaos harness's stall mechanism) on a traced run and
// requires the *StallError to carry per-rank flight-recorder tails that
// name the stalled collective and the fault that caused it.
func TestStallErrorCarriesTraceTail(t *testing.T) {
	const ranks = 3
	tr := trace.New(ranks, trace.Config{})
	plan := &FaultPlan{Faults: []Fault{{Rank: 1, Op: 3, Kind: FaultDelay, Delay: 600 * time.Millisecond}}}
	_, err := RunOpt(ranks, Options{
		Trace:        tr,
		Faults:       plan,
		StallTimeout: 50 * time.Millisecond,
	}, func(c *Ctx) error {
		for i := 0; i < 5; i++ {
			c.Barrier()
		}
		return nil
	})
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("delayed rank produced %v, want *StallError", err)
	}
	if len(stall.Trails) != ranks {
		t.Fatalf("stall carries %d trails, want one per rank: %v", len(stall.Trails), stall.Trails)
	}
	// The blocked ranks' tails end in an open barrier span; the delayed
	// rank's tail shows the injected fault.
	for _, r := range []int{0, 2} {
		if !strings.Contains(stall.Trails[r], "barrier{") {
			t.Errorf("rank %d trail %q does not name the stalled collective", r, stall.Trails[r])
		}
	}
	if !strings.Contains(stall.Trails[1], "fault delay") {
		t.Errorf("rank 1 trail %q does not show the injected delay", stall.Trails[1])
	}
	if !strings.Contains(err.Error(), "flight recorder:") {
		t.Errorf("stall message does not render the trails:\n%v", err)
	}
}
