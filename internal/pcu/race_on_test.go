//go:build race

package pcu

// raceEnabled gates allocation-regression tests: the race detector's
// instrumentation changes allocation behavior, so alloc counts are only
// pinned in the plain build.
const raceEnabled = true
