package pcu

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"testing"
	"time"
)

func TestAgreeHealthyWorld(t *testing.T) {
	// With every rank alive, Agree is an AND-reduction with an empty
	// conviction list, consistent on all ranks.
	if err := Run(4, func(c *Ctx) error {
		ok, failed := Agree(c, true)
		if !ok || len(failed) != 0 {
			return fmt.Errorf("rank %d: unanimous true vote got (%v, %v)", c.Rank(), ok, failed)
		}
		ok, failed = Agree(c, c.Rank() != 2)
		if ok || len(failed) != 0 {
			return fmt.Errorf("rank %d: dissenting vote got (%v, %v)", c.Rank(), ok, failed)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreeCompletesOverVanishedRank(t *testing.T) {
	// Rank 2 dies entering the Agree itself (its op 2). The survivors
	// park in the agreement gate; the watchdog convicts the vanished
	// rank, the threshold drops, and the round closes with a verdict
	// naming the dead — the run finishes cleanly without teardown.
	plan := &FaultPlan{Faults: []Fault{{Rank: 2, Op: 2, Kind: FaultVanish}}}
	var mu sync.Mutex
	verdicts := map[int][]int{}
	_, err := RunOpt(4, Options{
		Faults:       plan,
		Survivable:   true,
		StallTimeout: 2 * time.Second,
	}, func(c *Ctx) error {
		c.Barrier() // op 1
		ok, failed := Agree(c, true) // op 2; rank 2 vanishes here
		if !ok {
			return fmt.Errorf("rank %d: surviving votes were all true, got verdict false", c.Rank())
		}
		mu.Lock()
		verdicts[c.Rank()] = failed
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("survivors should complete the run: %v", err)
	}
	if len(verdicts) != 3 {
		t.Fatalf("want verdicts from 3 survivors, got %d", len(verdicts))
	}
	for r, failed := range verdicts {
		if !slices.Equal(failed, []int{2}) {
			t.Fatalf("rank %d: want conviction [2], got %v", r, failed)
		}
	}
}

func TestSurvivableWorldRevokedOnVanish(t *testing.T) {
	// Rank 1 dies entering a Barrier; the survivors are parked in the
	// world barrier, which no agreement can release. In a Survivable
	// world the watchdog must revoke — every survivor unwinds with the
	// same *RevokedError naming the dead rank — instead of reporting an
	// undiagnosed stall.
	plan := &FaultPlan{Faults: []Fault{{Rank: 1, Op: 2, Kind: FaultVanish}}}
	_, err := RunOpt(4, Options{
		Faults:       plan,
		Survivable:   true,
		StallTimeout: 2 * time.Second,
	}, collectiveLoop(4))
	var rev *RevokedError
	if !errors.As(err, &rev) {
		t.Fatalf("want *RevokedError, got %v", err)
	}
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("revocation should wrap ErrRevoked: %v", err)
	}
	if !slices.Equal(rev.Failed, []int{1}) {
		t.Fatalf("want failed ranks [1], got %v", rev.Failed)
	}
}

func TestNonSurvivableWorldStallsOnVanish(t *testing.T) {
	// The same death without Survivable keeps the pre-ULFM contract:
	// the watchdog diagnoses a stall, not a revocation.
	plan := &FaultPlan{Faults: []Fault{{Rank: 1, Op: 2, Kind: FaultVanish}}}
	_, err := RunOpt(4, Options{
		Faults:       plan,
		StallTimeout: 2 * time.Second,
	}, collectiveLoop(4))
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	if errors.Is(err, ErrRevoked) {
		t.Fatalf("non-survivable world must not revoke: %v", err)
	}
}

func TestStallErrorReportsSinceProgress(t *testing.T) {
	// The stall diagnosis carries per-rank time-since-last-progress so a
	// report distinguishes a slow rank from a dead one.
	plan := &FaultPlan{Faults: []Fault{{Rank: 1, Op: 2, Kind: FaultVanish}}}
	_, err := RunOpt(4, Options{
		Faults:       plan,
		StallTimeout: 500 * time.Millisecond,
	}, collectiveLoop(4))
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *StallError, got %v", err)
	}
	idle := 0
	for _, r := range stall.Ranks {
		if r.SinceProgress > 0 {
			idle++
		}
	}
	if idle == 0 {
		t.Fatalf("no rank reports time since progress:\n%v", err)
	}
}

func TestShrinkMap(t *testing.T) {
	for _, tc := range []struct {
		n      int
		failed []int
		want   []int
	}{
		{4, nil, []int{0, 1, 2, 3}},
		{4, []int{1}, []int{0, -1, 1, 2}},
		{4, []int{0, 3}, []int{-1, 0, 1, -1}},
		{2, []int{0}, []int{-1, 0}},
	} {
		if got := ShrinkMap(tc.n, tc.failed); !slices.Equal(got, tc.want) {
			t.Errorf("ShrinkMap(%d, %v) = %v, want %v", tc.n, tc.failed, got, tc.want)
		}
	}
}

func TestSuperviseShrinksAndCompletes(t *testing.T) {
	// Attempt 0 loses rank 1 to a permanent death; Supervise catches the
	// revocation and re-runs the body on the 3 survivors, fault-free.
	plan := &FaultPlan{Faults: []Fault{{Rank: 1, Op: 2, Kind: FaultVanish}}}
	var mu sync.Mutex
	var epochs []Epoch
	_, err := Supervise(4, Options{
		Faults:       plan,
		StallTimeout: 2 * time.Second,
	}, nil, func(c *Ctx, ep Epoch) error {
		if c.Rank() == 0 {
			mu.Lock()
			epochs = append(epochs, ep)
			mu.Unlock()
		}
		for i := 0; i < 4; i++ {
			SumInt64(c, int64(c.Rank()))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervised run should recover: %v", err)
	}
	if len(epochs) != 2 {
		t.Fatalf("want 2 attempts, got %d: %+v", len(epochs), epochs)
	}
	first, second := epochs[0], epochs[1]
	if first.Attempt != 0 || first.Size != 4 || first.Initial != 4 || first.Failed != nil {
		t.Fatalf("bad first epoch: %+v", first)
	}
	if second.Attempt != 1 || second.Size != 3 || second.Initial != 4 || !slices.Equal(second.Failed, []int{1}) {
		t.Fatalf("bad recovery epoch: %+v", second)
	}
}

func TestSuperviseNextSizeHook(t *testing.T) {
	// The supervisor's size hook shrinks further than the survivor count
	// (a mesh-aware caller rounds down to a divisor of its part count).
	plan := &FaultPlan{Faults: []Fault{{Rank: 3, Op: 1, Kind: FaultVanish}}}
	sizes := make(chan int, 8)
	_, err := Supervise(4, Options{
		Faults:       plan,
		StallTimeout: 2 * time.Second,
	}, func(survivors int) int {
		if survivors != 3 {
			t.Errorf("want 3 survivors, got %d", survivors)
		}
		return 2
	}, func(c *Ctx, ep Epoch) error {
		if c.Rank() == 0 {
			sizes <- ep.Size
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("supervised run should recover: %v", err)
	}
	close(sizes)
	var got []int
	for s := range sizes {
		got = append(got, s)
	}
	if !slices.Equal(got, []int{4, 2}) {
		t.Fatalf("want attempt sizes [4 2], got %v", got)
	}
}

func TestSupervisePassesThroughOtherFailures(t *testing.T) {
	// A non-revocation failure (an injected panic) must not trigger
	// recovery: Supervise returns it unchanged.
	plan := &FaultPlan{Faults: []Fault{{Rank: 0, Op: 1, Kind: FaultPanic}}}
	attempts := 0
	_, err := Supervise(2, Options{
		Faults:       plan,
		StallTimeout: 2 * time.Second,
	}, nil, func(c *Ctx, ep Epoch) error {
		if c.Rank() == 0 {
			attempts++
		}
		c.Barrier()
		return nil
	})
	if !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("want the injected panic surfaced, got %v", err)
	}
	if attempts != 1 {
		t.Fatalf("panic must not be retried: %d attempts", attempts)
	}
}
