package pcu

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Fault injection. A FaultPlan is a seeded, deterministic schedule of
// failures threaded through RunOpt: the plan names a rank and the index
// of a blocking operation (collective or Exchange) on that rank, and
// the runtime provokes the failure exactly there, so any test or
// command can replay an exact failure from its seed alone.
//
// Fault classes:
//
//   - FaultPanic:     the rank panics entering the op. The barrier is
//     poisoned and the whole run tears down with a structured
//     *FaultError (peers observe ErrPeerFailed).
//   - FaultVanish:    the rank silently stops participating, as if its
//     process died without notice. Nothing is poisoned; the remaining
//     ranks deadlock and the collective watchdog diagnoses the stall.
//   - FaultDelay:     the rank sleeps before entering the op
//     (straggler simulation; exercises watchdog false-positive
//     margins).
//   - FaultCorrupt:   every off-node payload the rank sends during the
//     op has one byte flipped after framing, like wire corruption. The
//     receiver's CRC check rejects the frame; the transient-fault layer
//     fetches a retransmit from the sender's kept copy and the exchange
//     completes (counted in Stats.Retries). A Sticky corruption poisons
//     the retransmits too, so the retry budget dies and decoding
//     surfaces a structured ErrCorruptMessage naming the spent budget.
//   - FaultTruncate:  off-node payloads sent during the op lose their
//     tail; the frame length check rejects them at the receiver and the
//     same retransmit path recovers them (or not, when Sticky).
//   - FaultDuplicate: off-node payloads sent during the op are
//     delivered twice; the frame sequence check detects the replay and
//     drops it (counted in Stats.Replays), like any reliable transport.
//
// On-node messages travel by reference through shared memory and are
// not subject to wire faults, matching the architecture the runtime
// models.

// FaultKind enumerates the injectable failure classes.
type FaultKind int

const (
	FaultNone FaultKind = iota
	FaultPanic
	FaultVanish
	FaultDelay
	FaultCorrupt
	FaultTruncate
	FaultDuplicate
)

var faultNames = [...]string{
	FaultNone:      "none",
	FaultPanic:     "panic",
	FaultVanish:    "vanish",
	FaultDelay:     "delay",
	FaultCorrupt:   "corrupt",
	FaultTruncate:  "truncate",
	FaultDuplicate: "duplicate",
}

func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled failure: Kind strikes Rank at its Op-th
// blocking operation (1-based count of collectives plus exchanges on
// that rank).
type Fault struct {
	Rank  int
	Op    int64
	Kind  FaultKind
	Delay time.Duration
	// Sticky marks a wire fault (corrupt/truncate) as permanent for the
	// affected frames: the sender's kept retransmission copies carry the
	// same damage, so the receiver's retry budget is spent in vain and
	// the failure escalates to a fatal ErrCorruptMessage. Non-sticky
	// wire faults are transient — the first retransmit recovers them.
	Sticky bool
}

func (f Fault) String() string {
	if f.Kind == FaultDelay {
		return fmt.Sprintf("rank %d %s %v at op %d", f.Rank, f.Kind, f.Delay, f.Op)
	}
	if f.Sticky {
		return fmt.Sprintf("rank %d sticky %s at op %d", f.Rank, f.Kind, f.Op)
	}
	return fmt.Sprintf("rank %d %s at op %d", f.Rank, f.Kind, f.Op)
}

// FaultPlan is a deterministic failure schedule. The zero/nil plan
// injects nothing.
type FaultPlan struct {
	Seed   int64
	Faults []Fault
}

// String describes the plan for logs and replay records.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return "no faults"
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return fmt.Sprintf("seed %d: %s", p.Seed, strings.Join(parts, "; "))
}

// find returns the fault scheduled for (rank, op), or nil.
func (p *FaultPlan) find(rank int, op int64) *Fault {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Rank == rank && f.Op == op {
			return f
		}
	}
	return nil
}

// RandomFaultPlan derives a deterministic plan from the seed: one or
// two faults on random ranks, striking within the first maxOp blocking
// operations. The same (seed, ranks, maxOp) always yields the same
// plan.
func RandomFaultPlan(seed int64, ranks int, maxOp int64) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	kinds := []FaultKind{
		FaultPanic, FaultVanish, FaultDelay,
		FaultCorrupt, FaultTruncate, FaultDuplicate,
	}
	n := 1 + rng.Intn(2)
	plan := &FaultPlan{Seed: seed}
	used := map[[2]int64]bool{}
	for i := 0; i < n; i++ {
		f := Fault{
			Rank: rng.Intn(ranks),
			Op:   1 + rng.Int63n(maxOp),
			Kind: kinds[rng.Intn(len(kinds))],
		}
		if f.Kind == FaultDelay {
			f.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
		}
		key := [2]int64{int64(f.Rank), f.Op}
		if used[key] {
			continue
		}
		used[key] = true
		plan.Faults = append(plan.Faults, f)
	}
	sort.Slice(plan.Faults, func(i, j int) bool {
		if plan.Faults[i].Op != plan.Faults[j].Op {
			return plan.Faults[i].Op < plan.Faults[j].Op
		}
		return plan.Faults[i].Rank < plan.Faults[j].Rank
	})
	return plan
}

// ErrFaultInjected is wrapped by every failure the fault layer provokes
// directly (FaultPanic), so harnesses can separate injected failures
// from organic ones.
var ErrFaultInjected = errors.New("pcu: injected fault")

// FaultError reports an injected fatal fault.
type FaultError struct {
	Fault Fault
}

func (e *FaultError) Error() string { return "pcu: injected fault: " + e.Fault.String() }

func (e *FaultError) Unwrap() error { return ErrFaultInjected }

// ErrCorruptMessage is wrapped by every frame-validation failure on an
// off-node payload that the transient-fault layer could not repair:
// the retransmit store had no copy of the frame, or the retry budget
// died with every retransmit failing validation too. The error
// surfaces when the receiver decodes the message.
var ErrCorruptMessage = errors.New("pcu: corrupt off-node message")

// CorruptError identifies one rejected off-node frame.
type CorruptError struct {
	From, To int
	Reason   string
	// Retries counts the retransmits the receiver fetched and
	// revalidated before giving up; zero when no retransmit path was
	// available (no fault plan armed, or retries disabled).
	Retries int
}

func (e *CorruptError) Error() string {
	if e.Retries > 0 {
		return fmt.Sprintf("pcu: corrupt off-node message from rank %d to rank %d: %s (after %d retransmit(s))",
			e.From, e.To, e.Reason, e.Retries)
	}
	return fmt.Sprintf("pcu: corrupt off-node message from rank %d to rank %d: %s",
		e.From, e.To, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorruptMessage }

// vanishSignal makes a rank disappear without poisoning the barrier;
// RunOpt recovers it and records the rank as vanished.
type vanishSignal struct{ fault Fault }
