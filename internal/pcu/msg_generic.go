//go:build !(386 || amd64 || amd64p32 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm)

package pcu

import (
	"encoding/binary"
	"math"
)

// Bulk codec kernels, portable path for big-endian (or unknown)
// architectures: explicit little-endian conversion per element. See
// msg_le.go for the memmove fast path.

func packInt32s(dst []byte, v []int32) {
	for i, x := range v {
		binary.LittleEndian.PutUint32(dst[i*4:], uint32(x))
	}
}

func packInt64s(dst []byte, v []int64) {
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[i*8:], uint64(x))
	}
}

func packFloat64s(dst []byte, v []float64) {
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(x))
	}
}

func unpackInt32s(dst []int32, src []byte) {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

func unpackInt64s(dst []int64, src []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

func unpackFloat64s(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}
