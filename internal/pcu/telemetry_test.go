package pcu

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/telemetry"
	"github.com/fastmath/pumi-go/internal/trace"
)

func TestWorldMetricsRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	const ranks = 4
	_, err := RunOpt(ranks, Options{Topo: hwtopo.Cluster(2, 2), Metrics: reg}, func(c *Ctx) error {
		for i := 0; i < 3; i++ {
			c.To((c.Rank() + 1) % c.Size()).Bytes(make([]byte, 64))
			for _, m := range c.Exchange() {
				_ = m.Data.BytesNoCopy()
				m.Data.Done()
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("pcu.op.exchange.ns").Count(); got != ranks*3 {
		t.Errorf("exchange latency observations = %d, want %d", got, ranks*3)
	}
	if got := reg.Histogram("pcu.op.barrier.ns").Count(); got != ranks {
		t.Errorf("barrier latency observations = %d, want %d", got, ranks)
	}
	// One skew observation per collective instance (recorded by the
	// releasing rank only).
	if got := reg.Histogram("pcu.skew.exchange.ns").Count(); got != 3 {
		t.Errorf("exchange skew observations = %d, want 3", got)
	}
	if got := reg.Histogram("pcu.skew.barrier.ns").Count(); got != 1 {
		t.Errorf("barrier skew observations = %d, want 1", got)
	}
	// Ring exchange: every rank sent the same 64-byte payload (plus
	// framing) to its right neighbor three times, so all cells agree and
	// carry at least the raw payload bytes.
	m := reg.Matrix("pcu.neighbor.bytes")
	want := m.Get(0, 1)
	if want < 3*64 {
		t.Errorf("neighbor bytes 0->1 = %d, want >= %d", want, 3*64)
	}
	for r := 1; r < ranks; r++ {
		if got := m.Get(r, (r+1)%ranks); got != want {
			t.Errorf("neighbor bytes %d->%d = %d, want %d", r, (r+1)%ranks, got, want)
		}
	}
	// The live-rank gauge must balance back to zero after the run.
	if v, ok := reg.Gauge("pcu.live_ranks").Get(0); !ok || v != 0 {
		t.Errorf("live_ranks after run = %v (set=%v), want 0", v, ok)
	}
	if _, ok := reg.Gauge("pcu.straggler.rank").Get(0); !ok {
		t.Error("straggler rank gauge never set")
	}
	// The whole registry must render as valid Prometheus text.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("prometheus output invalid: %v\n%s", err, buf.String())
	}
}

func TestDefaultMetricsRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	SetDefaultMetrics(reg)
	defer SetDefaultMetrics(nil)
	if err := Run(2, func(c *Ctx) error { c.Barrier(); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram("pcu.op.barrier.ns").Count(); got != 2 {
		t.Errorf("default-registry barrier observations = %d, want 2", got)
	}
	if DefaultMetrics() != reg {
		t.Error("DefaultMetrics does not return the installed registry")
	}
}

// TestExchangeMeteredZeroAlloc repeats the steady-state exchange check
// with metering on: every phase observes latency/skew histograms, sets
// queue/pool gauges and accumulates the neighbor matrix, and the whole
// metered cycle must still allocate nothing. This is the acceptance bar
// for leaving metering enabled during benchmarks.
func TestExchangeMeteredZeroAlloc(t *testing.T) {
	allocGate(t)
	const (
		ranks  = 4
		warmup = 8
		runs   = 100
	)
	// Two ranks per node so both the on-node and the framed off-node
	// send paths run under metering.
	reg := telemetry.NewRegistry()
	payload := make([]byte, 256)
	ints := make([]int32, 64)
	var avg float64
	RunOpt(ranks, Options{Topo: hwtopo.Cluster(2, 2), StallTimeout: -1, Metrics: reg}, func(c *Ctx) error {
		scratch := make([]int32, 0, len(ints))
		phase := func() {
			b := c.To((c.Rank() + 1) % c.Size())
			b.Bytes(payload)
			b.Int32s(ints)
			for _, m := range c.Exchange() {
				_ = m.Data.BytesNoCopy()
				scratch = m.Data.AppendInt32s(scratch[:0])
				m.Data.Done()
			}
		}
		for i := 0; i < warmup; i++ {
			phase()
		}
		if c.Rank() == 0 {
			avg = testing.AllocsPerRun(runs, phase)
		} else {
			for i := 0; i < runs+1; i++ {
				phase()
			}
		}
		return nil
	})
	if avg != 0 {
		t.Errorf("metered steady-state exchange: %.1f allocs/phase, want 0", avg)
	}
	// Metering must actually have been on, not compiled out.
	if reg.Histogram("pcu.op.exchange.ns").Count() == 0 {
		t.Error("no latency observations recorded during a metered run")
	}
	if reg.Histogram("pcu.skew.exchange.ns").Count() == 0 {
		t.Error("no skew observations recorded during a metered run")
	}
}

// TestTelemetrySourcesLive serves the composed introspection sources
// over HTTP while a conformance-monitored, traced, metered world is
// mid-run, and checks all four endpoints respond with valid documents —
// the in-process shape of the telemetry-smoke lane.
func TestTelemetrySourcesLive(t *testing.T) {
	reg := telemetry.NewRegistry()
	SetDefaultMetrics(reg)
	defer SetDefaultMetrics(nil)
	col := trace.NewCollector(trace.Config{})
	SetDefaultTrace(col)
	defer SetDefaultTrace(nil)

	srv, err := telemetry.Serve("127.0.0.1:0", TelemetrySources())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hold all ranks mid-run on a channel so the scrape observes an
	// active world, then release.
	release := make(chan struct{})
	scraped := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := RunOpt(2, Options{Conform: epochProto(t)}, func(c *Ctx) error {
			c.Barrier()
			if c.Rank() == 0 {
				scraped <- nil // world is live and mid-protocol: scrape now
				<-release
			}
			c.Exchange()
			return nil
		})
		if err != nil {
			t.Errorf("run under scrape failed: %v", err)
		}
	}()
	<-scraped

	states := ProtocolStates()
	if len(states) != 2 {
		t.Errorf("protocol states = %d, want 2", len(states))
	}
	for _, s := range states {
		if s.Entry != "test.Epoch" || s.Steps < 1 {
			t.Errorf("bad cursor %+v", s)
		}
	}
	h := HealthReport()
	if !h.Healthy || h.Worlds != 1 || len(h.Lines) != 1 {
		t.Errorf("health mid-run = %+v, want healthy with 1 world", h)
	}
	var buf bytes.Buffer
	if err := WriteLiveChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if kind, err := trace.ValidateFile(buf.Bytes()); err != nil || kind != trace.FileChrome {
		t.Fatalf("live /trace document: kind=%v err=%v", kind, err)
	}
	if !strings.Contains(buf.String(), "barrier") {
		t.Error("live trace missing the barrier span")
	}

	close(release)
	wg.Wait()

	// After the run: no worlds, still healthy, protocol list empty, and
	// the collector-backed trace view still serves the finished run.
	if h := HealthReport(); !h.Healthy || h.Worlds != 0 {
		t.Errorf("health after run = %+v", h)
	}
	if s := ProtocolStates(); len(s) != 0 {
		t.Errorf("protocol states after run = %d, want 0", len(s))
	}
	buf.Reset()
	if err := WriteLiveChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("collector-backed /trace is empty after the run")
	}
}
