package pcu

import (
	"testing"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/trace"
)

// Allocation-regression tests: the buffer pool's whole point is that
// steady-state communication does not touch the garbage collector.
// These pin the hot paths at exactly zero allocations per phase. They
// are skipped under -race (instrumentation changes allocation
// behavior) and under the sanitizer (schedule hashing allocates by
// design); CI runs them in the plain test lane.

// allocGate skips t when allocation counts are not meaningful.
func allocGate(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if defaultSanitize.Load() {
		t.Skip("sanitizer schedule hashing allocates by design")
	}
}

// TestExchangeSteadyStateZeroAlloc drives a ring exchange — To, bulk
// pack, Exchange, zero-copy decode, Done — and requires that after a
// few warm-up phases the whole cycle allocates nothing on any rank.
// Rank 0 measures with testing.AllocsPerRun (a process-wide malloc
// count) while the other ranks run phases in lockstep with it; since
// every rank's phase must be allocation-free, concurrent activity
// cannot produce a false pass.
func TestExchangeSteadyStateZeroAlloc(t *testing.T) {
	allocGate(t)
	const (
		ranks  = 4
		warmup = 8
		runs   = 100
	)
	payload := make([]byte, 256)
	ints := make([]int32, 64)
	var avg float64
	RunOpt(ranks, Options{StallTimeout: -1}, func(c *Ctx) error {
		scratch := make([]int32, 0, len(ints))
		phase := func() {
			b := c.To((c.Rank() + 1) % c.Size())
			b.Bytes(payload)
			b.Int32s(ints)
			for _, m := range c.Exchange() {
				_ = m.Data.BytesNoCopy()
				scratch = m.Data.AppendInt32s(scratch[:0])
				m.Data.Done()
			}
		}
		for i := 0; i < warmup; i++ {
			phase()
		}
		if c.Rank() == 0 {
			avg = testing.AllocsPerRun(runs, phase)
		} else {
			// AllocsPerRun calls its function runs+1 times (one
			// untimed warm-up call); the exchange is collective, so
			// every other rank must run exactly as many phases.
			for i := 0; i < runs+1; i++ {
				phase()
			}
		}
		return nil
	})
	if avg != 0 {
		t.Errorf("steady-state To+Exchange+decode: %.1f allocs/phase, want 0", avg)
	}
}

// TestExchangeOffNodeSteadyStateZeroAlloc repeats the steady-state
// check with every rank on its own node, so each message goes through
// the framed, CRC-checked, copying off-node path — which must also
// recycle through the pools.
func TestExchangeOffNodeSteadyStateZeroAlloc(t *testing.T) {
	allocGate(t)
	const (
		ranks  = 4
		warmup = 8
		runs   = 100
	)
	payload := make([]byte, 256)
	var avg float64
	RunOpt(ranks, Options{Topo: hwtopo.Cluster(ranks, 1), StallTimeout: -1}, func(c *Ctx) error {
		phase := func() {
			c.To((c.Rank() + 1) % c.Size()).Bytes(payload)
			for _, m := range c.Exchange() {
				_ = m.Data.BytesNoCopy()
				m.Data.Done()
			}
		}
		for i := 0; i < warmup; i++ {
			phase()
		}
		if c.Rank() == 0 {
			avg = testing.AllocsPerRun(runs, phase)
		} else {
			for i := 0; i < runs+1; i++ {
				phase()
			}
		}
		return nil
	})
	if avg != 0 {
		t.Errorf("off-node steady-state exchange: %.1f allocs/phase, want 0", avg)
	}
}

// TestExchangeTracedZeroAlloc repeats the steady-state exchange check
// with the flight recorder on: every phase emits span, send and decode
// events into the per-rank rings, and the whole traced cycle must still
// allocate nothing. This is the acceptance bar for leaving tracing
// enabled during benchmarks.
func TestExchangeTracedZeroAlloc(t *testing.T) {
	allocGate(t)
	const (
		ranks  = 4
		warmup = 8
		runs   = 100
	)
	// Two ranks per node so each phase exercises both the on-node and
	// the off-node (framed) send instrumentation.
	topo := hwtopo.Cluster(2, 2)
	tr := trace.New(ranks, trace.Config{})
	payload := make([]byte, 256)
	ints := make([]int32, 64)
	var avg float64
	RunOpt(ranks, Options{Topo: topo, StallTimeout: -1, Trace: tr}, func(c *Ctx) error {
		scratch := make([]int32, 0, len(ints))
		phase := func() {
			b := c.To((c.Rank() + 1) % c.Size())
			b.Bytes(payload)
			b.Int32s(ints)
			for _, m := range c.Exchange() {
				_ = m.Data.BytesNoCopy()
				scratch = m.Data.AppendInt32s(scratch[:0])
				m.Data.Done()
			}
		}
		for i := 0; i < warmup; i++ {
			phase()
		}
		if c.Rank() == 0 {
			avg = testing.AllocsPerRun(runs, phase)
		} else {
			for i := 0; i < runs+1; i++ {
				phase()
			}
		}
		return nil
	})
	if avg != 0 {
		t.Errorf("traced steady-state exchange: %.1f allocs/phase, want 0", avg)
	}
	// The recorder must actually have been recording, not compiled out.
	for r := 0; r < ranks; r++ {
		if tr.Rank(r).Dropped() == 0 && len(tr.Rank(r).Snapshot()) == 0 {
			t.Errorf("rank %d recorded no events during a traced run", r)
		}
	}
}

// TestBulkKernelsZeroAlloc pins the standalone pack/decode kernels:
// once a Buffer's backing array and a decode scratch slice have grown,
// bulk encode and append-decode allocate nothing.
func TestBulkKernelsZeroAlloc(t *testing.T) {
	allocGate(t)
	ints := make([]int32, 512)
	floats := make([]float64, 512)
	var buf Buffer
	var r Reader
	iScratch := make([]int32, 0, len(ints))
	fScratch := make([]float64, 0, len(floats))
	cycle := func() {
		buf.Reset()
		buf.Int32s(ints)
		buf.Float64s(floats)
		r.Reset(buf.Raw())
		iScratch = r.AppendInt32s(iScratch[:0])
		fScratch = r.AppendFloat64s(fScratch[:0])
		r.Done()
	}
	cycle() // grow the backing array once
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("bulk pack+decode cycle: %.1f allocs/op, want 0", avg)
	}
}

// TestCounterAddZeroAlloc pins the sharded counter fast path: Add on an
// existing cell is a lock-free atomic and must not allocate.
func TestCounterAddZeroAlloc(t *testing.T) {
	allocGate(t)
	var avg float64
	RunOpt(1, Options{StallTimeout: -1}, func(c *Ctx) error {
		ctrs := c.Counters()
		ctrs.Add("alloc.test", 1) // create the cell
		avg = testing.AllocsPerRun(100, func() {
			ctrs.Add("alloc.test", 1)
		})
		return nil
	})
	if avg != 0 {
		t.Errorf("Shard.Add on existing cell: %.1f allocs/op, want 0", avg)
	}
}
