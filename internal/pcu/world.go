package pcu

import (
	"errors"
	"fmt"
	"hash/crc32"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/perf"
	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/telemetry"
	"github.com/fastmath/pumi-go/internal/trace"
)

// ErrPeerFailed is the error a rank observes when another rank panicked
// and the run is being torn down.
var ErrPeerFailed = errors.New("pcu: a peer rank failed")

// Stats counts the communication traffic of a run, split into on-node
// (shared-memory, by-reference) and off-node (serialized copy) classes.
type Stats struct {
	OnNodeMsgs   int64
	OffNodeMsgs  int64
	OnNodeBytes  int64
	OffNodeBytes int64
	Collectives  int64
	// Retries counts off-node frames recovered by the transient-fault
	// retransmit layer: each one failed CRC/length validation on
	// delivery and was repaired from the sender's kept copy.
	Retries int64
	// Replays counts duplicated off-node frames detected by the
	// sequence check and dropped (duplicate suppression).
	Replays int64
	// SanHash is the run's combined op-sequence trace hash, valid after
	// a sanitized run completes (zero otherwise). Identically-seeded
	// sanitized runs produce identical hashes.
	SanHash uint64
}

// Options configures a run beyond its rank count.
type Options struct {
	// Topo is the machine topology; the zero value maps all ranks onto
	// one shared-memory node.
	Topo hwtopo.Topology
	// Faults is an optional deterministic failure schedule.
	Faults *FaultPlan
	// StallTimeout bounds how long the run may go without barrier
	// progress before the watchdog tears it down with a *StallError.
	// Zero selects DefaultStallTimeout; a negative value disables the
	// watchdog entirely.
	StallTimeout time.Duration
	// RetryBudget bounds how many retransmits a receiver requests for
	// one off-node frame that fails CRC/length validation before the
	// failure escalates to a fatal ErrCorruptMessage. Zero selects
	// DefaultRetryBudget; a negative value disables the transient-fault
	// retry layer entirely (every validation failure is fatal, the
	// pre-retry behavior). The layer only arms when Faults is non-nil —
	// the sole source of wire damage — so fault-free runs never pay for
	// it.
	RetryBudget int
	// RetryBackoff is the base exponential backoff before retransmit
	// attempt k (the receiver waits RetryBackoff<<(k-1)). Zero selects
	// DefaultRetryBackoff; a negative value retries without waiting.
	RetryBackoff time.Duration
	// Survivable arms ULFM-style failure mitigation: when a rank dies
	// without teardown (FaultVanish, a real crash) and its surviving
	// peers can no longer advance, the watchdog convicts the dead ranks
	// and revokes the world with a *RevokedError naming them — instead
	// of diagnosing an indistinguishable stall — so a supervisor
	// (pcu.Supervise) can rebuild a shrunken world over the survivors.
	Survivable bool
	// Sanitize enables pumi-san's collective-schedule shadow checking
	// for this run (see internal/san): each rank's op sequence is
	// hashed and cross-checked at every sync point, and divergence
	// fails the run with a *san.DivergenceError naming the first
	// mismatching op. SetDefaultSanitize turns it on process-wide.
	Sanitize bool
	// Trace, when non-nil, records every rank's blocking operations,
	// deliveries and injected faults into the given flight recorder
	// (which must be sized for at least the run's rank count). When nil
	// and a process-wide collector is installed via SetDefaultTrace, the
	// run records into a fresh trace added to the collector at the end.
	Trace *trace.Trace
	// Conform, when non-nil, drives every rank's blocking-op stream
	// through the given protocol automaton online (see internal/san and
	// `pumi-vet -emit-automata`): each op a rank enters must follow an
	// automaton edge, and a rank returning success must sit in an
	// accepting state. The first off-automaton op fails the run with a
	// *san.ProtocolError naming the op and the expected set.
	Conform *san.Protocol
	// Metrics, when non-nil, records the run's op latency and
	// arrival-skew histograms, queue/pool gauges and per-neighbor
	// traffic matrix into the given registry (see internal/telemetry).
	// When nil and a process-wide registry is installed via
	// SetDefaultMetrics, the run records into that instead. Recording is
	// atomic-only and allocation-free, so metering can stay on during
	// benchmarks.
	Metrics *telemetry.Registry
}

// World holds the shared state of one parallel run: the reusable
// barrier, the collective scratch slots, the per-rank inboxes and the
// traffic counters. Rank code never touches a World directly; it goes
// through its Ctx.
type World struct {
	size   int
	topo   hwtopo.Topology
	bar    barrier
	faults *FaultPlan
	san    *sanState    // non-nil when the run is sanitized
	tr     *trace.Trace // non-nil when the run is traced

	// id is the process-unique world number introspection output uses;
	// start anchors the world's monotonic clock and wm holds the
	// pre-resolved metric handles (nil when the run is unmetered).
	id    int64
	start time.Time
	wm    *worldMetrics

	// conform is the online protocol-automaton monitor, non-nil when the
	// run carries Options.Conform.
	conform *san.Conformance

	// resend is the transient-fault retransmit store, armed only when
	// the run carries a fault plan; retryLimit/retryDelay come from
	// Options.RetryBudget/RetryBackoff.
	resend     *resendStore
	retryLimit int
	retryDelay time.Duration

	// survivable worlds revoke (instead of stalling) when ranks die;
	// failed is the conviction list and agree the fault-tolerant
	// agreement state, both fed by the watchdog.
	survivable bool
	failMu     sync.Mutex
	failed     []bool
	agree      agreeState

	slots []any // collective scratch, one slot per rank

	inboxes []inbox

	// ranks is the per-rank progress state the watchdog polls.
	ranks []rankState

	stallMu  sync.Mutex
	stallErr *StallError

	onMsgs, offMsgs, onBytes, offBytes, colls atomic.Int64
	retries, replays                          atomic.Int64

	counters perf.Counters
	shards   []*perf.Shard // one counter shard per rank
}

// Interned op names: rankState.op holds a pointer so recording progress
// on the hot path is a single atomic store with no boxing allocation.
var (
	opNone      = ""
	opExchange  = "exchange"
	opBarrier   = "barrier"
	opAllreduce = "allreduce"
	opReduce    = "reduce"
	opBcast     = "bcast"
	opAllgather = "allgather"
	opExscan    = "exscan"
	opAgree     = "agree"

	// opWorldStart is the instant-event marker each rank emits when its
	// world starts; offline conformance replay treats the second and
	// later markers on a rank as epoch (shrink) boundaries.
	opWorldStart = "pcu.world"
)

// rankState is one rank's progress record, written lock-free by the
// rank itself and read by the watchdog. Each field is independently
// atomic; the watchdog tolerates skew between fields because it only
// acts on states that repeat across consecutive polls.
type rankState struct {
	op       atomic.Pointer[string] // blocking op currently entered (opNone while computing)
	colls    atomic.Int64
	exchs    atomic.Int64
	blocked  atomic.Bool // parked in the barrier
	done     atomic.Bool // body returned, panicked, or vanished
	vanished atomic.Bool

	// arrival is when (world-monotonic ns) this rank reached the current
	// op's first barrier wait, arrivalSeq the 1-based op index it belongs
	// to. The releasing rank of each collective reads both to attribute
	// the op's cost to its last arriver (recordSkew); the sequence match
	// keeps a fast rank's next-op stamp out of the current op's scan.
	arrival    atomic.Int64
	arrivalSeq atomic.Int64
}

type inbox struct {
	mu   sync.Mutex
	msgs []delivery
}

// delivery is one in-flight payload. Off-node payloads are framed:
// length, CRC and a per-(sender,receiver) sequence number travel with
// the copied bytes, and the receiver validates all three before
// handing the data to decode. The phase tag keeps a fast sender's
// next-phase deliveries out of a slow receiver's current collection;
// the barrier keeps any rank at most one phase ahead, so an inbox
// holds deliveries from at most two adjacent phases.
type delivery struct {
	from    int
	data    []byte
	framed  bool
	wantLen int
	crc     uint32
	seq     int64
	phase   int64
}

// freeListCap bounds the per-rank buffer and reader free lists; arrays
// past the cap are dropped to the garbage collector so one-directional
// traffic cannot grow a receiver's pool without bound.
const freeListCap = 32

// Ctx is one rank's view of the run. A Ctx must only be used by the
// goroutine it was handed to.
type Ctx struct {
	w    *World
	rank int

	// Sparse peer table: bufs[p] is the packing buffer permanently
	// assigned to peer p (To returns the same *Buffer every phase), and
	// act lists the peers activated in the current phase. Replaces the
	// per-phase map so steady-state packing does not allocate.
	bufs []*Buffer
	act  []int

	// free and freeRd recycle payload arrays and Readers: Reader.Done
	// returns both to the receiving rank's lists, and To/Exchange grab
	// from them, so steady-state phases are allocation-free.
	free   [][]byte
	freeRd []*Reader

	// arrived and msgs are collection scratch reused across phases. The
	// []Message returned by Exchange aliases msgs and is valid until
	// the next Exchange.
	arrived []delivery
	msgs    []Message

	// phase counts this rank's exchanges; all ranks agree on it because
	// Exchange is collective.
	phase int64

	// pendingFault is a message-level fault armed by beginOp for the
	// current Exchange and applied to each off-node send.
	pendingFault *Fault
	// sanPending marks that this rank published sanitizer state for
	// the current op and must cross-check after the next wait.
	sanPending bool
	// sendSeq/recvSeq track off-node frame sequence numbers per peer.
	sendSeq []int64
	recvSeq []int64

	// tr is this rank's flight recorder (nil when the run is untraced;
	// Recorder methods are nil-safe).
	tr *trace.Recorder

	// Metering state for the current blocking op: its interned name, its
	// 1-based index, the world-monotonic entry time, and how many barrier
	// waits it has performed (the first wait is the op's arrival point).
	opName  *string
	opSeq   int64
	opStart int64
	opWaits int32
}

// worlds tracks the active runs so AbortAll can tear them down.
var worlds sync.Map // *World -> struct{}

// AbortAll poisons every active run's barrier with cause, releasing all
// blocked ranks. It returns the number of runs aborted. Used by command
// wall-clock timeouts to turn a hung run into a diagnosable error.
func AbortAll(cause error) int {
	n := 0
	worlds.Range(func(k, _ any) bool {
		k.(*World).poisonWith(cause)
		n++
		return true
	})
	return n
}

// Run executes body on n ranks mapped onto a single shared-memory node.
func Run(n int, body func(*Ctx) error) error {
	_, err := RunOpt(n, Options{}, body)
	return err
}

// RunOn executes body on n ranks mapped onto the given topology and
// returns the aggregated communication statistics.
func RunOn(n int, topo hwtopo.Topology, body func(*Ctx) error) (Stats, error) {
	return RunOpt(n, Options{Topo: topo}, body)
}

// RunOpt executes body on n ranks under the given options. It returns
// an error if any rank returned an error or panicked; a panic on one
// rank tears down the whole run (peers observe ErrPeerFailed). Faults
// from opt.Faults are injected deterministically, and the collective
// watchdog converts deadlocks into a *StallError naming each rank's
// blocked operation and phase counts.
func RunOpt(n int, opt Options, body func(*Ctx) error) (Stats, error) {
	if n < 1 {
		return Stats{}, fmt.Errorf("pcu: rank count %d < 1", n)
	}
	topo := opt.Topo
	if topo.Cores() == 0 {
		topo = hwtopo.Cluster(1, n)
	}
	if topo.Cores() < n {
		return Stats{}, fmt.Errorf("pcu: %d ranks exceed topology %v", n, topo)
	}
	w := &World{
		size:       n,
		topo:       topo,
		faults:     opt.Faults,
		retryLimit: opt.RetryBudget,
		retryDelay: opt.RetryBackoff,
		survivable: opt.Survivable,
		failed:     make([]bool, n),
		slots:      make([]any, n),
		inboxes:    make([]inbox, n),
		ranks:      make([]rankState, n),
		shards:     make([]*perf.Shard, n),
	}
	if opt.Faults != nil && opt.RetryBudget >= 0 {
		w.resend = newResendStore()
	}
	w.agree.init(w)
	w.id = worldSeq.Add(1)
	w.start = time.Now()
	reg := opt.Metrics
	if reg == nil {
		reg = defaultMetrics.Load()
	}
	w.wm = newWorldMetrics(reg)
	for i := range w.shards {
		w.shards[i] = w.counters.NewShard()
	}
	if opt.Sanitize || defaultSanitize.Load() {
		w.san = newSanState(n)
	}
	if opt.Conform != nil {
		w.conform = san.NewConformance(opt.Conform, n)
	}
	tr := opt.Trace
	var col *trace.Collector
	if tr != nil {
		if tr.Ranks() < n {
			return Stats{}, fmt.Errorf("pcu: trace sized for %d ranks, run has %d", tr.Ranks(), n)
		}
	} else if col = defaultTracer.Load(); col != nil {
		tr = trace.New(n, col.Config())
	}
	w.tr = tr
	w.bar.init(n)
	worlds.Store(w, struct{}{})
	defer worlds.Delete(w)

	timeout := opt.StallTimeout
	if timeout == 0 {
		timeout = DefaultStallTimeout
	}
	stop := make(chan struct{})
	if timeout > 0 {
		go w.watch(timeout, stop)
	}

	if w.wm != nil {
		w.wm.liveRanks.Add(0, float64(n))
		defer w.wm.liveRanks.Add(0, -float64(n))
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			rs := &w.ranks[rank]
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = w.classify(rank, rs, p)
				}
				rs.done.Store(true)
				rs.blocked.Store(false)
				rs.op.Store(&opNone)
			}()
			c := &Ctx{w: w, rank: rank, tr: tr.Rank(rank)}
			// The world-start marker lets offline replay (pumi-trace
			// -conform) see epoch boundaries: Supervise reruns emit one
			// marker per epoch on each rank.
			c.tr.Point(opWorldStart, int64(n))
			err := body(c)
			if err == nil && w.conform != nil {
				// A rank claiming success must have completed the
				// protocol: reject returns from mid-automaton states.
				err = w.conform.Finish(rank)
			}
			errs[rank] = err
		}(r)
	}
	wg.Wait()
	close(stop)
	// Collector-owned traces are added even when the run failed: a
	// failure's timeline is exactly what the trace is for.
	col.Add(tr)
	err := w.verdict(errs)
	if w.san != nil {
		final := w.san.finish()
		if err == nil {
			sanLedgerFold(final)
		}
	}
	return w.Stats(), err
}

// classify converts one rank's recovered panic into its recorded error
// and poisons the barrier when the panic is this rank's own failure
// (rather than the propagated teardown cause).
func (w *World) classify(rank int, rs *rankState, p any) error {
	if _, ok := p.(vanishSignal); ok {
		// The rank disappears without teardown; its peers deadlock and
		// the watchdog reports the stall.
		rs.vanished.Store(true)
		return nil
	}
	err, ok := p.(error)
	if !ok {
		w.poison()
		return fmt.Errorf("pcu: rank %d panicked: %v\n%s", rank, p, debug.Stack())
	}
	switch {
	case errors.Is(err, ErrPeerFailed) || err == w.bar.causeErr():
		// Propagated teardown, not this rank's fault.
		return err
	case errors.Is(err, ErrFaultInjected) || errors.Is(err, ErrCorruptMessage) ||
		errors.Is(err, san.ErrDivergence) || errors.Is(err, san.ErrOwnership) ||
		errors.Is(err, san.ErrProtocol):
		// Structured failure: keep the message deterministic (no stack)
		// so a seeded replay produces an identical error.
		w.poison()
		return fmt.Errorf("pcu: rank %d: %w", rank, err)
	default:
		w.poison()
		return fmt.Errorf("pcu: rank %d panicked: %v\n%s", rank, err, debug.Stack())
	}
}

// verdict reduces the per-rank errors to the run's single result,
// reporting real failures before secondary teardown noise.
func (w *World) verdict(errs []error) error {
	cause := w.bar.causeErr()
	var primary []error
	for _, e := range errs {
		if e == nil || e == cause || errors.Is(e, ErrPeerFailed) {
			continue
		}
		primary = append(primary, e)
	}
	if len(primary) > 0 {
		return errors.Join(primary...)
	}
	// No rank-level failure: the teardown cause itself is the story
	// (watchdog stall, AbortAll, or a bare peer-failure echo).
	return cause
}

// Stats returns a snapshot of the world's traffic counters.
func (w *World) Stats() Stats {
	s := Stats{
		OnNodeMsgs:   w.onMsgs.Load(),
		OffNodeMsgs:  w.offMsgs.Load(),
		OnNodeBytes:  w.onBytes.Load(),
		OffNodeBytes: w.offBytes.Load(),
		Collectives:  w.colls.Load(),
		Retries:      w.retries.Load(),
		Replays:      w.replays.Load(),
	}
	if w.san != nil {
		s.SanHash = w.san.final.Load()
	}
	return s
}

// Rank returns this rank's id in [0, Size).
func (c *Ctx) Rank() int { return c.rank }

// Size returns the number of ranks in the run.
func (c *Ctx) Size() int { return c.w.size }

// Topo returns the machine topology of the run.
func (c *Ctx) Topo() hwtopo.Topology { return c.w.topo }

// Node returns the node hosting this rank.
func (c *Ctx) Node() int { return c.w.topo.NodeOf(c.rank) }

// SameNode reports whether peer shares this rank's node memory.
func (c *Ctx) SameNode(peer int) bool { return c.w.topo.SameNode(c.rank, peer) }

// NodePeers returns the ranks on this rank's node, including itself.
func (c *Ctx) NodePeers() []int {
	return c.w.topo.NodeRanks(c.Node(), c.w.size)
}

// Counters returns this rank's shard of the run-wide performance
// counters. Accumulation is lock-free and rank-local; reads (Count,
// Elapsed, Report) merge every rank's shard.
func (c *Ctx) Counters() *perf.Shard { return c.w.shards[c.rank] }

// Stats returns a snapshot of the run-wide traffic counters.
func (c *Ctx) Stats() Stats { return c.w.Stats() }

// beginOp records entry into a blocking operation and injects any fault
// the plan schedules for this rank at this op index.
func (c *Ctx) beginOp(name *string, isExchange bool) {
	rs := &c.w.ranks[c.rank]
	rs.op.Store(name)
	c.tr.Begin(*name)
	if m := c.w.conform; m != nil {
		if err := m.Step(c.rank, *name); err != nil {
			panic(err)
		}
	}
	var op int64
	if isExchange {
		op = rs.exchs.Add(1) + rs.colls.Load()
	} else {
		op = rs.colls.Add(1) + rs.exchs.Load()
	}
	c.opName, c.opSeq, c.opWaits = name, op, 0
	if c.w.wm != nil {
		c.opStart = c.w.since()
	}
	f := c.w.faults.find(c.rank, op)
	if f == nil {
		return
	}
	c.tr.Fault(f.Kind.String(), op)
	switch f.Kind {
	case FaultPanic:
		panic(&FaultError{Fault: *f})
	case FaultVanish:
		panic(vanishSignal{fault: *f})
	case FaultDelay:
		time.Sleep(f.Delay)
	case FaultCorrupt, FaultTruncate, FaultDuplicate:
		c.pendingFault = f
	}
}

// Ops returns how many blocking operations (collectives plus
// exchanges) this rank has entered so far. Fault plans index operations
// with the same 1-based count, so a harness can probe a deterministic
// workload once and then aim faults at exact phases of a later run.
func (c *Ctx) Ops() int64 {
	rs := &c.w.ranks[c.rank]
	return rs.colls.Load() + rs.exchs.Load()
}

// endOp records leaving a blocking operation.
func (c *Ctx) endOp() {
	rs := &c.w.ranks[c.rank]
	if c.tr != nil {
		if p := rs.op.Load(); p != nil && *p != opNone {
			c.tr.End(*p)
		}
	}
	if wm := c.w.wm; wm != nil && c.opName != nil {
		wm.opNs[c.opName].Observe(c.rank, c.w.since()-c.opStart)
	}
	rs.op.Store(&opNone)
}

// collStart is beginOp for collectives, also bumping the traffic stat
// and recording the op in the sanitizer shadow log.
func (c *Ctx) collStart(name *string) {
	c.w.colls.Add(1)
	c.beginOp(name, false)
	c.sanRecord(*name, 0)
}

// since returns world-monotonic nanoseconds (time since RunOpt began).
func (w *World) since() int64 { return int64(time.Since(w.start)) }

// wait parks in the shared barrier, flagging the rank as blocked so the
// watchdog can tell waiting from computing.
func (c *Ctx) wait() {
	rs := &c.w.ranks[c.rank]
	first := c.opWaits == 0
	c.opWaits++
	if first && c.w.wm != nil {
		// The op's arrival point: compute (and any injected delay) is
		// behind us, the sync wait starts here.
		rs.arrival.Store(c.w.since())
		rs.arrivalSeq.Store(c.opSeq)
	}
	rs.blocked.Store(true)
	defer rs.blocked.Store(false)
	if releaser := c.w.bar.wait(); releaser && first && c.opName != nil {
		// This rank's arrival filled the barrier: it is the op's last
		// arriver, and every peer's arrival stamp for this op is final —
		// attribute the collective before anyone races ahead.
		c.w.recordSkew(c.opName, c.opSeq)
	}
	if c.sanPending {
		// First wait of a sanitized op: every rank has published its
		// schedule hash for this op and none can overwrite it before
		// the op's second wait, so cross-check now.
		c.sanPending = false
		c.w.san.check(c.rank)
	}
}

// grabBuf pops a recycled payload array (length zero, capacity grown by
// earlier phases) or returns nil, letting append allocate.
func (c *Ctx) grabBuf() []byte {
	if n := len(c.free); n > 0 {
		b := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return b
	}
	return nil
}

// releaseBuf returns a payload array to this rank's free list.
func (c *Ctx) releaseBuf(b []byte) {
	if cap(b) == 0 || len(c.free) >= freeListCap {
		return
	}
	c.free = append(c.free, b[:0])
}

// releaseReader recycles a fully-consumed pooled Reader struct.
func (c *Ctx) releaseReader(r *Reader) {
	if len(c.freeRd) < freeListCap {
		c.freeRd = append(c.freeRd, r)
	}
}

// pooledReader wraps data in a Reader owned by this rank: its Done
// recycles both the struct and the data array.
func (c *Ctx) pooledReader(data []byte) *Reader {
	if n := len(c.freeRd); n > 0 {
		r := c.freeRd[n-1]
		c.freeRd[n-1] = nil
		c.freeRd = c.freeRd[:n-1]
		*r = Reader{data: data, owner: c}
		return r
	}
	return &Reader{data: data, owner: c}
}

// To returns the packing buffer for the given peer in the current
// communication phase. Each peer has one permanently-assigned buffer:
// the first To of a phase unseals it and attaches a pooled backing
// array; Exchange seals it again when it delivers. Packing to oneself
// is allowed and delivered locally.
func (c *Ctx) To(peer int) *Buffer {
	if peer < 0 || peer >= c.w.size {
		panic(fmt.Sprintf("pcu: rank %d packed to invalid peer %d", c.rank, peer))
	}
	if c.bufs == nil {
		c.bufs = make([]*Buffer, c.w.size)
	}
	b := c.bufs[peer]
	if b == nil {
		b = &Buffer{}
		c.bufs[peer] = b
	}
	if !b.active {
		b.active = true
		b.sealed = false
		b.buf = c.grabBuf()
		c.act = append(c.act, peer)
	}
	return b
}

// deliver appends one payload to peer p's inbox.
func (c *Ctx) deliver(p int, d delivery) {
	ib := &c.w.inboxes[p]
	ib.mu.Lock()
	ib.msgs = append(ib.msgs, d)
	ib.mu.Unlock()
}

// Exchange completes one sparse communication phase: every buffer
// packed with To is delivered, and the messages sent to this rank by
// its peers are returned, sorted by sending rank. All ranks must call
// Exchange the same number of times (it is collective).
//
// The returned messages, their Readers, and any byte slices decoded
// from them without copying are valid until this rank's next Exchange
// or until Reader.Done, whichever comes first: Done recycles the
// message's backing array into this rank's buffer pool.
//
// Off-node payloads are framed with length, CRC32 and a per-pair
// sequence number; a frame failing validation is still returned, but
// its Reader surfaces a structured *CorruptError (wrapping
// ErrCorruptMessage) on first use instead of decoding garbage.
func (c *Ctx) Exchange() []Message {
	c.beginOp(&opExchange, true)
	defer c.endOp()
	// Deliver in sorted peer order for determinism.
	slices.Sort(c.act)
	if c.w.san != nil {
		c.sanRecord(opExchange, c.sanExchangeDetail(c.act))
	}
	phase := c.phase
	c.phase++
	for _, p := range c.act {
		b := c.bufs[p]
		data := b.buf
		// The receiver may get these bytes by reference; writing to the
		// buffer after this point would race with the receiver's decode,
		// so further pack calls panic until the next To.
		b.seal()
		b.active = false
		b.buf = nil
		if wm := c.w.wm; wm != nil {
			wm.sendBytes.Observe(c.rank, int64(len(data)))
			wm.neighborBytes.Add(c.rank, p, int64(len(data)))
		}
		if c.SameNode(p) {
			// Shared memory: hand the buffer over by reference. The
			// array's ownership moves to the receiver, whose Reader.Done
			// recycles it into the receiver's pool.
			c.w.onMsgs.Add(1)
			c.w.onBytes.Add(int64(len(data)))
			c.tr.Send(p, len(data), true)
			c.deliver(p, delivery{from: c.rank, data: data, phase: phase})
			continue
		}
		// Distributed memory: the payload crosses the network, so it is
		// copied, like an NIC transfer, and framed for validation. The
		// sender keeps its own array for the next phase.
		c.w.offMsgs.Add(1)
		c.w.offBytes.Add(int64(len(data)))
		c.tr.Send(p, len(data), false)
		cp := append(c.grabBuf(), data...)
		c.releaseBuf(data)
		if c.sendSeq == nil {
			c.sendSeq = make([]int64, c.w.size)
		}
		c.sendSeq[p]++
		d := delivery{
			from:    c.rank,
			data:    cp,
			framed:  true,
			wantLen: len(cp),
			crc:     crc32.ChecksumIEEE(cp),
			seq:     c.sendSeq[p],
			phase:   phase,
		}
		if c.w.resend != nil {
			// Keep what a retransmit would deliver: a pristine copy with
			// matching framing. A Sticky wire fault damages the kept copy
			// below, so retransmits fail validation too.
			c.w.resend.keep(c.rank, p, d.seq, resentFrame{
				data:    append([]byte(nil), cp...),
				wantLen: d.wantLen,
				crc:     d.crc,
			})
		}
		if f := c.pendingFault; f != nil {
			damage := func(kept *resentFrame) {}
			switch f.Kind {
			case FaultCorrupt:
				if len(cp) > 0 {
					cp[len(cp)/2] ^= 0x40 // wire corruption after framing
					damage = func(kept *resentFrame) { kept.data[len(kept.data)/2] ^= 0x40 }
				} else {
					d.wantLen = 1 // nothing to flip; break the length instead
					damage = func(kept *resentFrame) { kept.wantLen = 1 }
				}
			case FaultTruncate:
				d.data = cp[:len(cp)/2]
				damage = func(kept *resentFrame) { kept.data = kept.data[:len(kept.data)/2] }
			case FaultDuplicate:
				c.deliver(p, d) // replayed frame; the copy below is the dup
			}
			if f.Sticky && c.w.resend != nil {
				if kept, ok := c.w.resend.fetch(c.rank, p, d.seq); ok {
					damage(&kept)
					c.w.resend.keep(c.rank, p, d.seq, kept)
				}
			}
		}
		c.deliver(p, d)
	}
	c.act = c.act[:0]
	c.pendingFault = nil
	// One global barrier: after it, every rank has delivered its phase,
	// so this rank's inbox holds everything addressed to it. There is no
	// second barrier — a fast rank may deliver its *next* phase before a
	// slow rank collects, but the phase tag keeps those deliveries out
	// of the current collection, so a sparse phase costs its neighbors
	// plus one synchronization instead of two.
	c.wait()
	ib := &c.w.inboxes[c.rank]
	ib.mu.Lock()
	arrived := c.arrived[:0]
	keep := ib.msgs[:0]
	for _, d := range ib.msgs {
		if d.phase == phase {
			arrived = append(arrived, d)
		} else {
			keep = append(keep, d)
		}
	}
	ib.msgs = keep
	ib.mu.Unlock()
	c.arrived = arrived
	if wm := c.w.wm; wm != nil {
		wm.queueDepth.SetInt(c.rank, int64(len(arrived)))
		wm.poolFree.SetInt(c.rank, int64(len(c.free)))
	}
	// Stable sort: frames from one sender keep their send order, which
	// the duplicate-detection sequence check depends on.
	slices.SortStableFunc(arrived, func(a, b delivery) int { return a.from - b.from })
	mine := c.msgs[:0]
	for _, d := range arrived {
		if m, keep := c.accept(d); keep {
			mine = append(mine, m)
		}
	}
	c.msgs = mine
	if c.w.san != nil {
		// Sanitized runs keep the second barrier so every op spans
		// exactly two waits: a fast rank must not overwrite its
		// published shadow slot before a slow rank has checked it.
		c.wait()
	}
	return mine
}

// accept validates one delivery's frame. A replayed frame (sequence
// number already delivered) is dropped — duplicate suppression, keep
// is false. A frame failing length or CRC validation goes through the
// transient-fault retransmit protocol (recoverFrame); only when that
// cannot repair it does accept yield a Message whose Reader fails with
// a *CorruptError on first decode, so unrecoverable corruption can
// never be silently skipped.
func (c *Ctx) accept(d delivery) (Message, bool) {
	if !d.framed {
		return Message{From: d.from, Data: c.pooledReader(d.data)}, true
	}
	if c.recvSeq == nil {
		c.recvSeq = make([]int64, c.w.size)
	}
	corrupt := func(reason string, retries int) (Message, bool) {
		return Message{From: d.from, Data: failedReader(&CorruptError{
			From: d.from, To: c.rank, Reason: reason, Retries: retries,
		})}, true
	}
	want := c.recvSeq[d.from] + 1
	switch {
	case d.seq < want:
		// Replayed frame: already delivered. Drop it like any reliable
		// transport's duplicate suppression and recycle the copy.
		c.w.replays.Add(1)
		c.Counters().Add("pcu.replay", 1)
		c.tr.Fault("replay-drop", d.seq)
		c.releaseBuf(d.data)
		return Message{}, false
	case d.seq > want:
		c.recvSeq[d.from] = d.seq
		return corrupt(fmt.Sprintf("lost frame: expected seq %d, got %d", want, d.seq), 0)
	}
	c.recvSeq[d.from] = d.seq
	badLen := len(d.data) != d.wantLen
	if badLen || crc32.ChecksumIEEE(d.data) != d.crc {
		if data, retries, ok := c.recoverFrame(d); ok {
			c.releaseBuf(d.data)
			return Message{From: d.from, Data: c.pooledReader(data)}, true
		} else if badLen {
			return corrupt(fmt.Sprintf("truncated frame: length %d, frame header says %d", len(d.data), d.wantLen), retries)
		} else {
			return corrupt("CRC mismatch", retries)
		}
	}
	if s := c.w.resend; s != nil {
		s.ack(d.from, c.rank, d.seq)
	}
	return Message{From: d.from, Data: c.pooledReader(d.data)}, true
}

// Barrier blocks until all ranks have called it.
func (c *Ctx) Barrier() {
	c.collStart(&opBarrier)
	defer c.endOp()
	c.wait()
	if c.w.san != nil {
		// Sanitized runs sync twice so a fast rank cannot overwrite
		// its published shadow slot before a slow rank has read it;
		// every other op already spans two waits.
		c.wait()
	}
}

// barrier is a reusable sense-counting barrier. Poisoning releases all
// current and future waiters by panicking them with the teardown cause
// (ErrPeerFailed when a rank dies, a *StallError when the watchdog
// fires), preventing deadlock when a rank cannot arrive.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	count    int
	gen      int
	poisoned bool
	cause    error
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

// wait parks until every rank arrives. It reports whether this caller
// was the releaser — the arrival that filled the generation — which the
// metering layer uses to attribute the collective to its last arriver.
func (b *barrier) wait() bool {
	b.mu.Lock()
	if b.poisoned {
		cause := b.cause
		b.mu.Unlock()
		panic(cause)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if gen != b.gen {
		// This generation completed: every rank arrived, so the wait
		// succeeded. A poison that lands in the release window affects
		// the next wait, not this one — otherwise which ranks observe a
		// failure would depend on wakeup timing, and deterministic
		// post-wait work (like the sanitizer's divergence check) could
		// be preempted on some ranks by a peer's teardown.
		b.mu.Unlock()
		return false
	}
	poisoned, cause := b.poisoned, b.cause
	b.mu.Unlock()
	if poisoned {
		panic(cause)
	}
	return false
}

func (b *barrier) poison() { b.poisonWith(ErrPeerFailed) }

// poisonWith poisons the barrier with the given cause; the first cause
// wins and later poisonings keep it.
func (b *barrier) poisonWith(cause error) {
	b.mu.Lock()
	if !b.poisoned {
		b.poisoned = true
		b.cause = cause
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *barrier) isPoisoned() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.poisoned
}

// causeErr returns the teardown cause, or nil if the barrier is healthy.
func (b *barrier) causeErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cause
}

// state returns how many ranks are parked in the current generation and
// the generation number; the watchdog uses both to detect stuck runs.
func (b *barrier) state() (count, gen int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count, b.gen
}
