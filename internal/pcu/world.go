package pcu

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/perf"
)

// ErrPeerFailed is the error a rank observes when another rank panicked
// and the run is being torn down.
var ErrPeerFailed = errors.New("pcu: a peer rank failed")

// Stats counts the communication traffic of a run, split into on-node
// (shared-memory, by-reference) and off-node (serialized copy) classes.
type Stats struct {
	OnNodeMsgs   int64
	OffNodeMsgs  int64
	OnNodeBytes  int64
	OffNodeBytes int64
	Collectives  int64
}

// World holds the shared state of one parallel run: the reusable
// barrier, the collective scratch slots, the per-rank inboxes and the
// traffic counters. Rank code never touches a World directly; it goes
// through its Ctx.
type World struct {
	size int
	topo hwtopo.Topology
	bar  barrier

	slots []any // collective scratch, one slot per rank

	inboxes []inbox

	onMsgs, offMsgs, onBytes, offBytes, colls atomic.Int64

	counters perf.Counters
}

type inbox struct {
	mu   sync.Mutex
	msgs []Message
}

// Ctx is one rank's view of the run. A Ctx must only be used by the
// goroutine it was handed to.
type Ctx struct {
	w    *World
	rank int
	out  map[int]*Buffer
}

// Run executes body on n ranks mapped onto a single shared-memory node.
func Run(n int, body func(*Ctx) error) error {
	if n < 1 {
		return fmt.Errorf("pcu: rank count %d < 1", n)
	}
	_, err := RunOn(n, hwtopo.Cluster(1, n), body)
	return err
}

// RunOn executes body on n ranks mapped onto the given topology and
// returns the aggregated communication statistics. It returns an error
// if any rank returned an error or panicked; a panic on one rank tears
// down the whole run (peers observe ErrPeerFailed).
func RunOn(n int, topo hwtopo.Topology, body func(*Ctx) error) (Stats, error) {
	if n < 1 {
		return Stats{}, fmt.Errorf("pcu: rank count %d < 1", n)
	}
	if topo.Cores() < n {
		return Stats{}, fmt.Errorf("pcu: %d ranks exceed topology %v", n, topo)
	}
	w := &World{
		size:    n,
		topo:    topo,
		slots:   make([]any, n),
		inboxes: make([]inbox, n),
	}
	w.bar.init(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if err, ok := p.(error); ok && errors.Is(err, ErrPeerFailed) {
						errs[rank] = err
					} else {
						errs[rank] = fmt.Errorf("pcu: rank %d panicked: %v\n%s", rank, p, debug.Stack())
					}
					w.bar.poison()
				}
			}()
			errs[rank] = body(&Ctx{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	// Report real failures before secondary ErrPeerFailed noise.
	var primary, secondary []error
	for _, e := range errs {
		switch {
		case e == nil:
		case errors.Is(e, ErrPeerFailed):
			secondary = append(secondary, e)
		default:
			primary = append(primary, e)
		}
	}
	if len(primary) > 0 {
		return w.Stats(), errors.Join(primary...)
	}
	if len(secondary) > 0 {
		return w.Stats(), secondary[0]
	}
	return w.Stats(), nil
}

// Stats returns a snapshot of the world's traffic counters.
func (w *World) Stats() Stats {
	return Stats{
		OnNodeMsgs:   w.onMsgs.Load(),
		OffNodeMsgs:  w.offMsgs.Load(),
		OnNodeBytes:  w.onBytes.Load(),
		OffNodeBytes: w.offBytes.Load(),
		Collectives:  w.colls.Load(),
	}
}

// Rank returns this rank's id in [0, Size).
func (c *Ctx) Rank() int { return c.rank }

// Size returns the number of ranks in the run.
func (c *Ctx) Size() int { return c.w.size }

// Topo returns the machine topology of the run.
func (c *Ctx) Topo() hwtopo.Topology { return c.w.topo }

// Node returns the node hosting this rank.
func (c *Ctx) Node() int { return c.w.topo.NodeOf(c.rank) }

// SameNode reports whether peer shares this rank's node memory.
func (c *Ctx) SameNode(peer int) bool { return c.w.topo.SameNode(c.rank, peer) }

// NodePeers returns the ranks on this rank's node, including itself.
func (c *Ctx) NodePeers() []int {
	return c.w.topo.NodeRanks(c.Node(), c.w.size)
}

// Counters returns the run-wide performance counters.
func (c *Ctx) Counters() *perf.Counters { return &c.w.counters }

// Stats returns a snapshot of the run-wide traffic counters.
func (c *Ctx) Stats() Stats { return c.w.Stats() }

// To returns the packing buffer for the given peer in the current
// communication phase, creating it on first use. Packing to oneself is
// allowed and delivered locally.
func (c *Ctx) To(peer int) *Buffer {
	if peer < 0 || peer >= c.w.size {
		panic(fmt.Sprintf("pcu: rank %d packed to invalid peer %d", c.rank, peer))
	}
	if c.out == nil {
		c.out = make(map[int]*Buffer)
	}
	b := c.out[peer]
	if b == nil {
		b = &Buffer{}
		c.out[peer] = b
	}
	return b
}

// Exchange completes one sparse communication phase: every buffer
// packed with To is delivered, and the messages sent to this rank by
// its peers are returned, sorted by sending rank. All ranks must call
// Exchange the same number of times (it is collective).
func (c *Ctx) Exchange() []Message {
	// Deliver in sorted peer order for determinism.
	peers := make([]int, 0, len(c.out))
	for p := range c.out {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	for _, p := range peers {
		b := c.out[p]
		data := b.buf
		// The receiver may get these bytes by reference; writing to the
		// buffer after this point would race with the receiver's decode,
		// so further pack calls panic.
		b.seal()
		if c.SameNode(p) {
			// Shared memory: hand the buffer over by reference.
			c.w.onMsgs.Add(1)
			c.w.onBytes.Add(int64(len(data)))
		} else {
			// Distributed memory: the payload crosses the network,
			// so it is copied, like an NIC transfer.
			c.w.offMsgs.Add(1)
			c.w.offBytes.Add(int64(len(data)))
			cp := make([]byte, len(data))
			copy(cp, data)
			data = cp
		}
		ib := &c.w.inboxes[p]
		ib.mu.Lock()
		ib.msgs = append(ib.msgs, Message{From: c.rank, Data: NewReader(data)})
		ib.mu.Unlock()
	}
	c.out = nil
	c.w.bar.wait()
	ib := &c.w.inboxes[c.rank]
	ib.mu.Lock()
	mine := ib.msgs
	ib.msgs = nil
	ib.mu.Unlock()
	sort.Slice(mine, func(i, j int) bool { return mine[i].From < mine[j].From })
	// Second barrier: no rank may start delivering the next phase while
	// another rank has not yet collected this phase's inbox.
	c.w.bar.wait()
	return mine
}

// Barrier blocks until all ranks have called it.
func (c *Ctx) Barrier() {
	c.w.colls.Add(1)
	c.w.bar.wait()
}

// barrier is a reusable sense-counting barrier. poison releases all
// current and future waiters by panicking them with ErrPeerFailed,
// preventing deadlock when a rank dies.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	count    int
	gen      int
	poisoned bool
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

func (b *barrier) wait() {
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		panic(ErrPeerFailed)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	poisoned := b.poisoned
	b.mu.Unlock()
	if poisoned {
		panic(ErrPeerFailed)
	}
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
