package pcu

// Live metrics wiring: when a run carries Options.Metrics (or a
// process-wide registry is installed by a tool's -listen flag), the op
// hot path records latency and arrival-skew histograms, queue-depth and
// pool-occupancy gauges and the per-neighbor traffic matrix into the
// registry. Every record is a handful of atomics on handles resolved
// once per world — zero allocations, no locks, no collectives — so a
// metered schedule is the real schedule and the alloc-regression tests
// hold with metering on (TestExchangeMeteredZeroAlloc).
//
// The same file composes the process's introspection sources
// (TelemetrySources): collective-free views over every active world's
// trace rings, conformance cursors and watchdog state, which
// cmdutil.StartListen hands to telemetry.Serve.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"github.com/fastmath/pumi-go/internal/telemetry"
	"github.com/fastmath/pumi-go/internal/trace"
)

// defaultMetrics is the process-wide registry, installed by tools
// (pumi-bench -listen, pumi-part -listen) so every run they start
// meters without threading an option through each experiment.
var defaultMetrics atomic.Pointer[telemetry.Registry]

// SetDefaultMetrics installs r as the process-wide metrics registry:
// every subsequent run without an explicit Options.Metrics records into
// it. Pass nil to turn default metering off.
func SetDefaultMetrics(r *telemetry.Registry) {
	if r == nil {
		defaultMetrics.Store(nil)
		return
	}
	defaultMetrics.Store(r)
}

// DefaultMetrics returns the process-wide registry, or nil.
func DefaultMetrics() *telemetry.Registry {
	return defaultMetrics.Load()
}

// Metrics returns the registry this run records into, or nil when the
// run is unmetered. All registry handles are nil-safe, so instrumented
// subsystems (partition, parma, meshio) resolve series unconditionally.
func (c *Ctx) Metrics() *telemetry.Registry {
	if c.w.wm == nil {
		return nil
	}
	return c.w.wm.reg
}

// worldMetrics holds one world's pre-resolved series handles, keyed by
// the interned op-name pointers the hot path already carries — an op
// record is a map hit on a pointer key plus three atomic adds.
type worldMetrics struct {
	reg *telemetry.Registry

	opNs   map[*string]*telemetry.Histogram // op latency by op name
	opSkew map[*string]*telemetry.Histogram // last-minus-first arrival gap

	sendBytes  *telemetry.Histogram // per-delivery payload size
	queueDepth *telemetry.Gauge     // inbox deliveries collected per exchange
	poolFree   *telemetry.Gauge     // recycled buffers available per rank
	liveRanks  *telemetry.Gauge     // ranks currently inside run bodies

	stragglerRank *telemetry.Gauge // last-arriving rank of the latest collective
	stragglerSkew *telemetry.Gauge // its arrival gap in nanoseconds

	neighborBytes *telemetry.Matrix // (sender, receiver) payload bytes
}

// opNames lists every interned blocking-op name the hot path can record
// under; both per-op series maps are resolved over it once per world.
var opNames = []*string{
	&opExchange, &opBarrier, &opAllreduce, &opReduce,
	&opBcast, &opAllgather, &opExscan, &opAgree,
}

func newWorldMetrics(reg *telemetry.Registry) *worldMetrics {
	if reg == nil {
		return nil
	}
	wm := &worldMetrics{
		reg:           reg,
		opNs:          make(map[*string]*telemetry.Histogram, len(opNames)),
		opSkew:        make(map[*string]*telemetry.Histogram, len(opNames)),
		sendBytes:     reg.Histogram("pcu.send.bytes"),
		queueDepth:    reg.Gauge("pcu.queue.depth"),
		poolFree:      reg.Gauge("pcu.pool.free"),
		liveRanks:     reg.Gauge("pcu.live_ranks"),
		stragglerRank: reg.Gauge("pcu.straggler.rank"),
		stragglerSkew: reg.Gauge("pcu.straggler.skew_ns"),
		neighborBytes: reg.Matrix("pcu.neighbor.bytes"),
	}
	for _, name := range opNames {
		wm.opNs[name] = reg.Histogram("pcu.op." + *name + ".ns")
		wm.opSkew[name] = reg.Histogram("pcu.skew." + *name + ".ns")
	}
	return wm
}

// recordSkew attributes the collective that just released to its
// last-arriving rank: called by the releasing rank (the one whose
// barrier arrival filled the generation) on the first wait of an op.
// Arrival stamps are matched by op sequence number, so a fast rank
// already stamping its next op is excluded rather than misattributed.
// Reads are atomic and rank-local state is untouched — scraping-grade
// attribution with zero schedule impact.
func (w *World) recordSkew(name *string, seq int64) {
	wm := w.wm
	if wm == nil {
		return
	}
	first, last := int64(math.MaxInt64), int64(math.MinInt64)
	blamed := -1
	for i := range w.ranks {
		rs := &w.ranks[i]
		if rs.arrivalSeq.Load() != seq {
			continue
		}
		a := rs.arrival.Load()
		if a < first {
			first = a
		}
		if a > last {
			last = a
			blamed = i
		}
	}
	if blamed < 0 || first > last {
		return
	}
	skew := last - first
	wm.opSkew[name].Observe(blamed, skew)
	wm.stragglerRank.SetInt(0, int64(blamed))
	wm.stragglerSkew.SetInt(0, skew)
}

// worldSeq hands out stable ids for introspection output.
var worldSeq atomic.Int64

// ProtocolStates returns every active conformance-monitored world's
// per-rank cursor positions, sorted by (world, rank) — the /protocol
// endpoint's payload. Collective-free: cursors are atomics.
func ProtocolStates() []telemetry.ProtocolState {
	var out []telemetry.ProtocolState
	worlds.Range(func(k, _ any) bool {
		w := k.(*World)
		m := w.conform
		if m == nil {
			return true
		}
		p := m.Protocol()
		for r := 0; r < m.Ranks(); r++ {
			state, steps := m.Cursor(r)
			out = append(out, telemetry.ProtocolState{
				World:     int(w.id),
				Entry:     p.Entry(),
				Rank:      r,
				State:     state,
				Steps:     steps,
				Accepting: p.Accepting(state),
				Expected:  p.Expected(state),
			})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].World != out[j].World {
			return out[i].World < out[j].World
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// HealthReport reflects the watchdogs' live verdicts over every active
// world: healthy while no barrier is poisoned, with one descriptive
// line per world — the /healthz endpoint's payload.
func HealthReport() telemetry.Health {
	h := telemetry.Health{Healthy: true}
	type line struct {
		id   int64
		text string
	}
	var lines []line
	worlds.Range(func(k, _ any) bool {
		w := k.(*World)
		h.Worlds++
		blocked, done := 0, 0
		for i := range w.ranks {
			if w.ranks[i].blocked.Load() {
				blocked++
			}
			if w.ranks[i].done.Load() {
				done++
			}
		}
		switch {
		case w.bar.isPoisoned():
			h.Healthy = false
			lines = append(lines, line{w.id, fmt.Sprintf(
				"world %d: tearing down: %v", w.id, w.bar.causeErr())})
		default:
			lines = append(lines, line{w.id, fmt.Sprintf(
				"world %d: %d ranks (%d blocked, %d done), %d collectives",
				w.id, w.size, blocked, done, w.colls.Load())})
		}
		return true
	})
	sort.Slice(lines, func(i, j int) bool { return lines[i].id < lines[j].id })
	for _, l := range lines {
		h.Lines = append(h.Lines, l.text)
	}
	return h
}

// WriteLiveChrome streams the live per-rank ring tails of every active
// traced world as one Chrome-trace JSON document — the /trace
// endpoint's payload. Ring snapshots take only each recorder's own
// mutex, so a scrape never blocks a collective. When no world is
// active, the process-wide collector's finished runs are served
// instead (a scrape between benchmark repetitions still sees data).
func WriteLiveChrome(w io.Writer) error {
	var traces []*trace.Trace
	worlds.Range(func(k, _ any) bool {
		if tr := k.(*World).tr; tr != nil {
			traces = append(traces, tr)
		}
		return true
	})
	if len(traces) == 0 {
		if col := defaultTracer.Load(); col != nil && col.Runs() > 0 {
			return col.WriteChrome(w)
		}
	}
	return trace.WriteChromeMerged(w, traces)
}

// TelemetrySources composes the process's introspection callbacks for
// telemetry.Serve: the default metrics registry, the live trace view,
// the conformance cursors and the watchdog verdicts.
func TelemetrySources() telemetry.Sources {
	return telemetry.Sources{
		Metrics:   DefaultMetrics(),
		TraceJSON: WriteLiveChrome,
		Protocol:  ProtocolStates,
		Health:    HealthReport,
	}
}
