package pcu

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/trace"
)

// epochProto is the hand-built automaton for one barrier·exchange epoch
// with a shrink edge looping from the accept state back to the start —
// the machine -emit-automata derives for a supervised body.
func epochProto(t *testing.T) *san.Protocol {
	t.Helper()
	p, err := san.NewProtocol("test.Epoch",
		[]string{"barrier", "exchange", san.OpShrink}, 0,
		[]bool{false, false, true},
		[]map[string]int{
			{"barrier": 1},
			{"exchange": 2},
			{san.OpShrink: 0},
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConformOnlineAccepts(t *testing.T) {
	_, err := RunOpt(4, Options{Conform: epochProto(t)}, func(c *Ctx) error {
		c.Barrier()
		c.Exchange()
		return nil
	})
	if err != nil {
		t.Fatalf("conforming run failed: %v", err)
	}
}

func TestConformOnlineOutOfOrder(t *testing.T) {
	_, err := RunOpt(2, Options{Conform: epochProto(t)}, func(c *Ctx) error {
		//pumi-vet:ignore collseq // deliberate divergence: the monitor must catch it
		if c.Rank() == 0 {
			c.Exchange() //pumi-vet:ignore collmismatch // protocol requires barrier first
		}
		c.Barrier()
		c.Exchange()
		return nil
	})
	if !errors.Is(err, san.ErrProtocol) {
		t.Fatalf("err = %v, want protocol violation", err)
	}
	var pe *san.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err %v carries no *san.ProtocolError", err)
	}
	want := &san.ProtocolError{
		Entry: "test.Epoch", Rank: 0, Index: 0, Op: "exchange",
		State: 0, Expected: []string{"barrier"},
	}
	if !reflect.DeepEqual(pe, want) {
		t.Errorf("witness %+v, want %+v", pe, want)
	}
}

func TestConformOnlineEarlyReturn(t *testing.T) {
	// Ranks return success from mid-protocol: Finish must reject.
	_, err := RunOpt(2, Options{Conform: epochProto(t)}, func(c *Ctx) error {
		c.Barrier()
		return nil
	})
	if !errors.Is(err, san.ErrProtocol) {
		t.Fatalf("err = %v, want protocol violation at return", err)
	}
}

// TestConformOfflineReplay runs two traced epochs, extracts each rank's
// op stream from the Chrome export (the second pcu.world marker becomes
// the shrink boundary) and replays it through the automaton.
func TestConformOfflineReplay(t *testing.T) {
	p := epochProto(t)
	col := trace.NewCollector(trace.Config{Ring: 256})
	SetDefaultTrace(col)
	defer SetDefaultTrace(nil)
	for epoch := 0; epoch < 2; epoch++ {
		if _, err := RunOpt(2, Options{}, func(c *Ctx) error {
			c.Barrier()
			c.Exchange()
			return nil
		}); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	var buf bytes.Buffer
	if err := col.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	streams, err := trace.OpStreams(buf.Bytes(), san.RuntimeCollectiveOps, "pcu.world", san.OpShrink)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 2 {
		t.Fatalf("got streams for %d ranks, want 2: %v", len(streams), streams)
	}
	for rank, ops := range streams {
		want := []string{"barrier", "exchange", san.OpShrink, "barrier", "exchange"}
		if !reflect.DeepEqual(ops, want) {
			t.Errorf("rank %d stream %v, want %v", rank, ops, want)
		}
		res := san.Replay(p, rank, ops)
		if res.Err != nil || !res.Accepted || res.Resets != 0 {
			t.Errorf("rank %d replay: %+v", rank, res)
		}
	}
}

// TestConformWitnessesMatch checks the tentpole invariant: an injected
// out-of-order collective is caught online and offline with the same
// witness.
func TestConformWitnessesMatch(t *testing.T) {
	p := epochProto(t)
	col := trace.NewCollector(trace.Config{Ring: 256})
	SetDefaultTrace(col)
	defer SetDefaultTrace(nil)
	_, err := RunOpt(2, Options{Conform: p}, func(c *Ctx) error {
		//pumi-vet:ignore collseq // deliberate divergence: both checkers must catch it
		if c.Rank() == 0 {
			c.Exchange() //pumi-vet:ignore collmismatch
		}
		c.Barrier()
		c.Exchange()
		return nil
	})
	var online *san.ProtocolError
	if !errors.As(err, &online) {
		t.Fatalf("online run: %v, want protocol violation", err)
	}
	var buf bytes.Buffer
	if err := col.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	streams, err := trace.OpStreams(buf.Bytes(), san.RuntimeCollectiveOps, "pcu.world", san.OpShrink)
	if err != nil {
		t.Fatal(err)
	}
	res := san.Replay(p, online.Rank, streams[online.Rank])
	var offline *san.ProtocolError
	if !errors.As(res.Err, &offline) {
		t.Fatalf("offline replay of rank %d: %+v, want protocol violation", online.Rank, res)
	}
	if !reflect.DeepEqual(online, offline) {
		t.Errorf("witnesses diverge:\n online  %+v\n offline %+v", online, offline)
	}
}
