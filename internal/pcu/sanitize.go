package pcu

// pumi-san runtime wiring: when a run is sanitized (Options.Sanitize or
// the process-wide default set by a tool's -san flag), every rank keeps
// a san.OpLog shadowing its collective op sequence. Entering an op
// publishes the log's rolling schedule hash into a per-rank slot of the
// shared World before the op's first barrier wait; after that wait —
// when every rank is between the op's two sync points, so all slots
// are current and stable — each rank cross-checks the slots. This is
// the "debug allreduce": it reuses the op's own barrier instead of
// issuing extra collectives, so the sanitized schedule is the real
// schedule. A mismatch panics with a *san.DivergenceError naming the
// first op where the two schedules differ.
//
// Barrier has only one wait of its own, so sanitized runs give it a
// second one: without it, a fast rank could enter its next op and
// overwrite its slot before a slow rank has compared against it. With
// that, every op spans exactly two waits and the publish/check windows
// of consecutive ops never overlap.

import (
	"sync"
	"sync/atomic"

	"github.com/fastmath/pumi-go/internal/san"
)

// defaultSanitize is the process-wide sanitize switch, set by tools
// (pumi-bench -san) so every run they start is sanitized without
// threading an option through each experiment.
var defaultSanitize atomic.Bool

// SetDefaultSanitize makes every subsequent run sanitized (or not),
// regardless of its Options.Sanitize.
func SetDefaultSanitize(on bool) { defaultSanitize.Store(on) }

// sanState is the per-World shadow state of a sanitized run.
type sanState struct {
	logs  []*san.OpLog // per-rank op sequence, written by the rank itself
	sched []uint64     // published schedule hashes, one slot per rank
	op    []string     // published op names (for slot-level diagnosis)
	final atomic.Uint64
}

func newSanState(n int) *sanState {
	s := &sanState{
		logs:  make([]*san.OpLog, n),
		sched: make([]uint64, n),
		op:    make([]string, n),
	}
	for i := range s.logs {
		s.logs[i] = san.NewOpLog()
	}
	return s
}

// sanRecord logs this rank's entry into a collective op and publishes
// the updated schedule hash. Must be called before the op's first
// wait; the matching check runs right after that wait.
func (c *Ctx) sanRecord(name string, detail uint64) {
	s := c.w.san
	if s == nil {
		return
	}
	log := s.logs[c.rank]
	log.Record(name, detail)
	s.sched[c.rank] = log.SchedHash()
	s.op[c.rank] = name
	c.sanPending = true
}

// sanExchangeDetail summarizes the payload shape of the Exchange this
// rank is about to run — destinations, byte counts and contents in
// sorted peer order — for the trace hash. Payload reorderings from
// map-iteration nondeterminism change this even when sizes match.
func (c *Ctx) sanExchangeDetail(peers []int) uint64 {
	detail := san.DetailSeed
	for _, p := range peers {
		detail = san.HashDetail(detail, uint64(p))
		detail = san.HashBytes(detail, c.bufs[p].buf)
	}
	return detail
}

// sanCheck cross-checks the published schedule hashes. It runs with
// every rank parked between the current op's two waits, so slot reads
// are ordered after all slot writes and before any overwrite by a next
// op.
func (s *sanState) check(rank int) {
	mine := s.sched[rank]
	for peer := range s.sched {
		if s.sched[peer] == mine {
			continue
		}
		a, b := s.logs[rank], s.logs[peer]
		i := san.FirstMismatch(a, b)
		op, peerOp := "(none)", "(none)"
		if i < 0 {
			// Hashes differ but one schedule prefixes the other: the
			// first mismatch is where the shorter log ends.
			i = min(a.Len(), b.Len())
		}
		if i < a.Len() {
			op = a.At(i).Name
		}
		if i < b.Len() {
			peerOp = b.At(i).Name
		}
		panic(&san.DivergenceError{Rank: rank, Peer: peer, Index: i, Op: op, PeerOp: peerOp})
	}
}

// finish computes the run's combined trace hash (per-rank trace hashes
// folded in rank order) once all rank goroutines have returned.
func (s *sanState) finish() uint64 {
	final := san.DetailSeed
	for _, l := range s.logs {
		final = san.HashDetail(final, l.Hash())
	}
	s.final.Store(final)
	return final
}

// sanLedger accumulates the trace hashes of completed clean sanitized
// runs process-wide, so a tool can print one fingerprint for a whole
// benchmark session. Failed runs are excluded: their teardown order is
// timing-dependent, so their partial logs do not reproduce.
var sanLedger struct {
	mu   sync.Mutex
	runs int64
	hash uint64
}

func sanLedgerFold(h uint64) {
	sanLedger.mu.Lock()
	sanLedger.runs++
	sanLedger.hash = san.Fold(sanLedger.hash, h)
	sanLedger.mu.Unlock()
}

// SanSummary returns how many clean sanitized runs completed in this
// process and the cumulative op-sequence trace hash over them. Two
// identically-seeded sessions must report identical summaries.
func SanSummary() (runs int64, hash uint64) {
	sanLedger.mu.Lock()
	defer sanLedger.mu.Unlock()
	return sanLedger.runs, sanLedger.hash
}

// ResetSanSummary clears the ledger (tests).
func ResetSanSummary() {
	sanLedger.mu.Lock()
	sanLedger.runs, sanLedger.hash = 0, 0
	sanLedger.mu.Unlock()
}
