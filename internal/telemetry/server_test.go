package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Histogram("op.ns").Observe(0, 1500)
	r.Gauge("live").SetInt(0, 4)

	healthy := true
	srv, err := Serve("127.0.0.1:0", Sources{
		Metrics: r,
		TraceJSON: func(w io.Writer) error {
			_, err := io.WriteString(w, `{"traceEvents":[],"otherData":{"schema":"pumi-trace/chrome/1"}}`)
			return err
		},
		Protocol: func() []ProtocolState {
			return []ProtocolState{{World: 1, Entry: "parma.Balance", Rank: 0, State: 2, Steps: 9, Expected: []string{"pcu.barrier"}}}
		},
		Health: func() Health {
			return Health{Healthy: healthy, Worlds: 1, Lines: []string{"world 1: 4 ranks live"}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if _, err := ValidatePrometheus(body); err != nil {
		t.Fatalf("/metrics invalid: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "pumi_op_ns_count 1") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}

	code, body = get(t, base+"/trace")
	if code != 200 {
		t.Fatalf("/trace status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("/trace missing traceEvents")
	}

	code, body = get(t, base+"/protocol")
	if code != 200 {
		t.Fatalf("/protocol status %d", code)
	}
	var states []ProtocolState
	if err := json.Unmarshal(body, &states); err != nil {
		t.Fatalf("/protocol not JSON: %v", err)
	}
	if len(states) != 1 || states[0].Entry != "parma.Balance" {
		t.Fatalf("/protocol content wrong: %+v", states)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz status %d", code)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil || !h.Healthy {
		t.Fatalf("/healthz content wrong: %v %s", err, body)
	}

	healthy = false
	code, _ = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status %d, want 503", code)
	}
}

func TestServeEmptySources(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Sources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/trace", "/protocol", "/healthz"} {
		code, _ := get(t, base+path)
		if code != 200 {
			t.Fatalf("%s status %d with empty sources", path, code)
		}
	}
	var nilSrv *Server
	if nilSrv.Addr() != "" {
		t.Fatal("nil server Addr")
	}
	if err := nilSrv.Close(); err != nil {
		t.Fatal("nil server Close")
	}
}
