package telemetry

// A minimal validator for the Prometheus text exposition format, used
// by the telemetry-smoke lane to check what /metrics serves without
// depending on an external scraper. It enforces the structure this
// package emits: TYPE comments, legal metric names, parseable sample
// values, histogram bucket monotonicity and sum/count consistency.

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
)

// ValidatePrometheus checks data against the text exposition format and
// the invariants of this package's export. It returns the number of
// samples seen.
func ValidatePrometheus(data []byte) (int, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	samples := 0
	line := 0
	typed := map[string]string{}
	// Per-histogram bucket cumulative check state.
	var histName string
	var lastCum float64
	var lastLE float64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, kind := fields[2], fields[3]
				if !promNameRe.MatchString(name) {
					return samples, fmt.Errorf("line %d: bad metric name %q", line, name)
				}
				switch kind {
				case "histogram", "gauge", "counter":
				default:
					return samples, fmt.Errorf("line %d: unknown type %q", line, kind)
				}
				if _, dup := typed[name]; dup {
					return samples, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
				}
				typed[name] = kind
				if kind == "histogram" {
					histName, lastCum, lastLE = name, 0, -1
				} else {
					histName = ""
				}
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(text)
		if m == nil {
			return samples, fmt.Errorf("line %d: unparseable sample %q", line, text)
		}
		name, labels, value := m[1], m[2], m[3]
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return samples, fmt.Errorf("line %d: bad value %q: %v", line, value, err)
		}
		samples++
		if histName != "" && name == histName+"_bucket" {
			le := labels
			if i := strings.Index(le, `le="`); i >= 0 {
				le = le[i+4:]
				le = le[:strings.Index(le, `"`)]
			} else {
				return samples, fmt.Errorf("line %d: histogram bucket without le label", line)
			}
			bound := float64(0)
			if le == "+Inf" {
				bound = math.Inf(1)
			} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
				return samples, fmt.Errorf("line %d: bad le %q", line, le)
			}
			if bound <= lastLE {
				return samples, fmt.Errorf("line %d: le %q not increasing", line, le)
			}
			if v < lastCum {
				return samples, fmt.Errorf("line %d: bucket count %g not cumulative (previous %g)", line, v, lastCum)
			}
			lastLE, lastCum = bound, v
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}
