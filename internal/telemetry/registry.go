// Package telemetry is the live metrics plane of the parallel runtime:
// a sharded registry of fixed-bucket histograms, sampled gauges and
// per-neighbor traffic matrices, recorded from the communication hot
// paths and scraped over HTTP (Serve) without perturbing the schedule.
//
// The registry extends the perf counters with distributions: a counter
// says how much total time a phase took, a histogram says how that time
// was distributed — the difference between "exchange cost 3s" and "one
// in a thousand exchanges cost 100x the median", which is the straggler
// signal the paper's load-balancing story turns on.
//
// Two design rules, both load-bearing:
//
//   - Zero steady-state allocations. Series are created once (Histogram,
//     Gauge and Matrix return stable handles); recording on a handle —
//     Observe, Set, Add — is a handful of atomic operations on
//     preallocated cells. The repo's AllocsPerRun tests pin this, so
//     metering can stay on during benchmarks.
//   - Collective-free, lock-free reads. Every cell is an atomic; a
//     scraper merges lanes with plain loads while ranks keep recording.
//     A scrape is therefore a consistent-enough snapshot (per-cell
//     atomicity, no cross-cell barrier) that never blocks a rank and
//     never enters a collective — scraping cannot deadlock or reorder
//     the schedule it is observing.
//
// Sharding: each series has Lanes independent cache-padded lanes and a
// recorder passes its rank as the lane (lane = rank mod Lanes), so
// concurrent ranks never contend on a cache line. Reads merge all lanes;
// gauges keep per-lane samples (the per-rank view the introspection
// endpoint serves).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	// Lanes is the number of independent accumulation lanes per series.
	// A power of two; recorders use lane = rank & (Lanes-1), so runs
	// wider than Lanes stay correct (two ranks share a lane's atomics)
	// and merely contend a little.
	Lanes = 16
	// Buckets is the fixed histogram resolution: power-of-two buckets,
	// bucket i holding values v with 2^(i-1) <= v < 2^i (bucket 0 holds
	// v <= 0 and v == nothing else; values at or beyond 2^(Buckets-2)
	// land in the last bucket). 48 buckets cover nanosecond latencies up
	// to ~39 hours and byte volumes up to 128 TiB.
	Buckets = 48
	// MatrixDim is the fixed rank dimension of a Matrix; indices are
	// masked, so runs wider than MatrixDim alias rather than grow.
	MatrixDim = 64

	laneMask = Lanes - 1
)

// BucketOf maps a value to its power-of-two bucket index — exported so
// offline analyzers (trace.CriticalPath's arrival-skew histograms) bin
// exactly the way the live registry does.
func BucketOf(v int64) int { return bucketOf(v) }

// bucketOf maps a value to its power-of-two bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= Buckets {
		return Buckets - 1
	}
	return b
}

// BucketLE returns the inclusive upper bound of bucket i (the
// Prometheus `le` boundary): 2^i - 1, with bucket 0 bounded at 0.
func BucketLE(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// histLane is one lane's cells, padded so adjacent lanes never share a
// cache line (the same false-sharing defense the trace recorders use).
type histLane struct {
	buckets [Buckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	_       [128 - (Buckets*8+16)%128]byte
}

// Histogram is one named fixed-bucket distribution. The handle is
// stable for the registry's lifetime; all methods are nil-safe so call
// sites meter unconditionally and pay one branch when metering is off.
type Histogram struct {
	name  string
	lanes []histLane
}

// Observe records one value into the lane's cells: three atomic adds,
// no allocation, no lock.
func (h *Histogram) Observe(lane int, v int64) {
	if h == nil {
		return
	}
	l := &h.lanes[lane&laneMask]
	l.buckets[bucketOf(v)].Add(1)
	l.count.Add(1)
	l.sum.Add(v)
}

// Count returns the merged observation count across lanes.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.lanes {
		n += h.lanes[i].count.Load()
	}
	return n
}

// Sum returns the merged sum of observed values across lanes.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	var s int64
	for i := range h.lanes {
		s += h.lanes[i].sum.Load()
	}
	return s
}

// Snapshot returns the merged bucket counts, count and sum.
func (h *Histogram) Snapshot() (buckets [Buckets]int64, count, sum int64) {
	if h == nil {
		return
	}
	for i := range h.lanes {
		l := &h.lanes[i]
		for b := range buckets {
			buckets[b] += l.buckets[b].Load()
		}
		count += l.count.Load()
		sum += l.sum.Load()
	}
	return
}

// gaugeLane is one lane's last-sampled value (float64 bits) and a
// set flag, padded against false sharing.
type gaugeLane struct {
	bits atomic.Uint64
	set  atomic.Uint32
	_    [128 - 12]byte
}

// Gauge is one named sampled value per lane: Set overwrites, reads see
// the latest sample. Lanes map to ranks, so the endpoint can show a
// per-rank view (queue depth on rank 3) as well as the merged extremes.
type Gauge struct {
	name  string
	lanes []gaugeLane
}

// Set samples the lane's value: one atomic store, no allocation.
func (g *Gauge) Set(lane int, v float64) {
	if g == nil {
		return
	}
	l := &g.lanes[lane&laneMask]
	l.bits.Store(math.Float64bits(v))
	l.set.Store(1)
}

// SetInt samples an integer value.
func (g *Gauge) SetInt(lane int, v int64) { g.Set(lane, float64(v)) }

// Add adjusts the lane's value by delta (CAS loop; used by rare-path
// up/down counters like the live-rank gauge).
func (g *Gauge) Add(lane int, delta float64) {
	if g == nil {
		return
	}
	l := &g.lanes[lane&laneMask]
	for {
		old := l.bits.Load()
		v := delta
		if l.set.Load() != 0 {
			v += math.Float64frombits(old)
		}
		if l.bits.CompareAndSwap(old, math.Float64bits(v)) {
			l.set.Store(1)
			return
		}
	}
}

// Get returns the lane's last sample and whether it was ever set.
func (g *Gauge) Get(lane int) (float64, bool) {
	if g == nil {
		return 0, false
	}
	l := &g.lanes[lane&laneMask]
	if l.set.Load() == 0 {
		return 0, false
	}
	return math.Float64frombits(l.bits.Load()), true
}

// Matrix is a named (rank, peer) counter grid — per-neighbor bytes or
// message counts. The grid is fixed at MatrixDim x MatrixDim and
// indices are masked, so Add is a single atomic on a preallocated cell.
type Matrix struct {
	name  string
	cells []atomic.Int64
}

// Add accumulates v into the (from, to) cell.
func (m *Matrix) Add(from, to int, v int64) {
	if m == nil {
		return
	}
	m.cells[(from&(MatrixDim-1))*MatrixDim+(to&(MatrixDim-1))].Add(v)
}

// Get returns the (from, to) cell's value.
func (m *Matrix) Get(from, to int) int64 {
	if m == nil {
		return 0
	}
	return m.cells[(from&(MatrixDim-1))*MatrixDim+(to&(MatrixDim-1))].Load()
}

// Registry holds the named series of one process. Series are created on
// first request and live for the registry's lifetime; handles are
// stable, so hot paths resolve once and record lock-free. All methods
// are nil-safe: a nil registry hands out nil handles whose record
// methods are no-ops, which is how unmetered runs pay one branch.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	matrices map[string]*Matrix
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    map[string]*Histogram{},
		gauges:   map[string]*Gauge{},
		matrices: map[string]*Matrix{},
	}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, lanes: make([]histLane, Lanes)}
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name, lanes: make([]gaugeLane, Lanes)}
		r.gauges[name] = g
	}
	return g
}

// Matrix returns the named matrix, creating it on first use.
func (r *Registry) Matrix(name string) *Matrix {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.matrices[name]
	if m == nil {
		m = &Matrix{name: name, cells: make([]atomic.Int64, MatrixDim*MatrixDim)}
		r.matrices[name] = m
	}
	return m
}

// promName sanitizes a series name into a legal Prometheus metric name:
// dots and dashes become underscores and the pumi_ namespace is
// prefixed.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("pumi_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4), deterministically: series sorted by name,
// histogram buckets in le order with trailing empties trimmed, gauges
// one sample per set lane labeled by rank, matrices as counters labeled
// rank/peer with zero cells elided. The render is lock-free over the
// cells (atomic loads), so a scrape never blocks a recording rank.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	matrices := make([]*Matrix, 0, len(r.matrices))
	for _, m := range r.matrices {
		matrices = append(matrices, m)
	}
	r.mu.Unlock()
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(matrices, func(i, j int) bool { return matrices[i].name < matrices[j].name })

	for _, h := range hists {
		buckets, count, sum := h.Snapshot()
		pn := promName(h.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		last := 0
		for i, v := range buckets {
			if v != 0 {
				last = i
			}
		}
		var cum int64
		for i := 0; i <= last; i++ {
			cum += buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, BucketLE(i), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, count)
	}
	for _, g := range gauges {
		pn := promName(g.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		any := false
		for lane := 0; lane < Lanes; lane++ {
			if v, ok := g.Get(lane); ok {
				fmt.Fprintf(w, "%s{rank=\"%d\"} %g\n", pn, lane, v)
				any = true
			}
		}
		if !any {
			fmt.Fprintf(w, "%s 0\n", pn)
		}
	}
	for _, m := range matrices {
		pn := promName(m.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for from := 0; from < MatrixDim; from++ {
			for to := 0; to < MatrixDim; to++ {
				if v := m.cells[from*MatrixDim+to].Load(); v != 0 {
					fmt.Fprintf(w, "%s_total{rank=\"%d\",peer=\"%d\"} %d\n", pn, from, to, v)
				}
			}
		}
	}
	return nil
}
