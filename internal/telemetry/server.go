package telemetry

// The per-process introspection endpoint. The server owns no data: it
// reads everything through the callbacks in Sources, which the process
// composes from whatever worlds it is running (see pcu.TelemetrySources
// and cmdutil.StartListen). Every handler is collective-free — reads go
// through atomics and ring snapshots only — so scraping a live run
// never participates in, or perturbs, the communication schedule.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// ProtocolState is one rank's live conformance-cursor position against
// a compiled protocol DFA (see DESIGN.md §13).
type ProtocolState struct {
	World     int      `json:"world"`
	Entry     string   `json:"entry"`
	Rank      int      `json:"rank"`
	State     int      `json:"state"`
	Steps     int      `json:"steps"`
	Accepting bool     `json:"accepting"`
	Expected  []string `json:"expected,omitempty"`
}

// Health is the watchdog's live verdict over all active worlds.
type Health struct {
	Healthy bool     `json:"healthy"`
	Worlds  int      `json:"worlds"`
	Lines   []string `json:"lines,omitempty"`
}

// Sources supplies the data the endpoint serves. Any field may be nil
// or zero; the corresponding route then serves an empty-but-valid
// document rather than failing, so a partially wired process is still
// scrapable.
type Sources struct {
	// Metrics backs /metrics (Prometheus text exposition).
	Metrics *Registry
	// TraceJSON writes the live per-rank ring tails as a Chrome-trace
	// JSON document (schema pumi-trace/chrome/1); backs /trace.
	TraceJSON func(w io.Writer) error
	// Protocol returns each rank's current conformance-cursor state;
	// backs /protocol.
	Protocol func() []ProtocolState
	// Health returns the watchdog verdict; backs /healthz (503 when
	// unhealthy, 200 otherwise).
	Health func() Health
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the endpoint on addr (e.g. "127.0.0.1:0" to pick a free
// port) and returns once it is accepting connections.
func Serve(addr string, src Sources) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if src.Metrics == nil {
			fmt.Fprintln(w, "# no registry wired")
			return
		}
		_ = src.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if src.TraceJSON == nil {
			_, _ = io.WriteString(w, `{"traceEvents":[],"otherData":{"schema":"pumi-trace/chrome/1"}}`)
			return
		}
		if err := src.TraceJSON(w); err != nil {
			// Headers are already out; all we can do is cut the body so
			// the client sees truncated JSON rather than a silent lie.
			panic(http.ErrAbortHandler)
		}
	})
	mux.HandleFunc("/protocol", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		states := []ProtocolState{}
		if src.Protocol != nil {
			if s := src.Protocol(); s != nil {
				states = s
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(states)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Healthy: true}
		if src.Health != nil {
			h = src.Health()
		}
		w.Header().Set("Content-Type", "application/json")
		if !h.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the endpoint. In-flight handlers are abandoned; the
// endpoint is diagnostic, not load-bearing.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
