package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketing(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41}, {math.MaxInt64, Buckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must satisfy BucketLE(i-1) < v <= BucketLE(i).
	for _, v := range []int64{1, 2, 3, 100, 1 << 20, 1<<47 - 1} {
		i := bucketOf(v)
		if v > BucketLE(i) {
			t.Errorf("value %d above its bucket %d bound %d", v, i, BucketLE(i))
		}
		if i > 0 && v <= BucketLE(i-1) {
			t.Errorf("value %d not above bucket %d's lower bound %d", v, i, BucketLE(i-1))
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.ns")
	var wg sync.WaitGroup
	for lane := 0; lane < Lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(lane, int64(i))
			}
		}(lane)
	}
	wg.Wait()
	if got := h.Count(); got != Lanes*1000 {
		t.Fatalf("count = %d, want %d", got, Lanes*1000)
	}
	wantSum := int64(Lanes) * (999 * 1000 / 2)
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	buckets, count, _ := h.Snapshot()
	var tot int64
	for _, b := range buckets {
		tot += b
	}
	if tot != count {
		t.Fatalf("bucket total %d != count %d", tot, count)
	}
	if again := r.Histogram("test.ns"); again != h {
		t.Fatal("handle not stable across lookups")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.depth")
	if _, ok := g.Get(3); ok {
		t.Fatal("unset gauge reported set")
	}
	g.Set(3, 7.5)
	if v, ok := g.Get(3); !ok || v != 7.5 {
		t.Fatalf("got %v %v, want 7.5 true", v, ok)
	}
	g.Add(3, -2.5)
	if v, _ := g.Get(3); v != 5 {
		t.Fatalf("after Add got %v, want 5", v)
	}
	g.Add(9, 2) // Add on an unset lane starts from zero
	if v, _ := g.Get(9); v != 2 {
		t.Fatalf("Add on unset lane got %v, want 2", v)
	}
	// Lane masking: lane Lanes aliases lane 0.
	g.SetInt(Lanes, 11)
	if v, _ := g.Get(0); v != 11 {
		t.Fatalf("lane aliasing got %v, want 11", v)
	}
}

func TestMatrix(t *testing.T) {
	r := NewRegistry()
	m := r.Matrix("test.bytes")
	m.Add(1, 2, 100)
	m.Add(1, 2, 50)
	m.Add(2, 1, 7)
	if got := m.Get(1, 2); got != 150 {
		t.Fatalf("Get(1,2) = %d, want 150", got)
	}
	if got := m.Get(2, 1); got != 7 {
		t.Fatalf("Get(2,1) = %d, want 7", got)
	}
	// Masked aliasing beyond MatrixDim.
	m.Add(MatrixDim+1, 2, 1)
	if got := m.Get(1, 2); got != 151 {
		t.Fatalf("aliased Get(1,2) = %d, want 151", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	h := r.Histogram("x")
	g := r.Gauge("x")
	m := r.Matrix("x")
	h.Observe(0, 1)
	g.Set(0, 1)
	g.Add(0, 1)
	m.Add(0, 0, 1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if _, ok := g.Get(0); ok {
		t.Fatal("nil gauge reported set")
	}
	if m.Get(0, 0) != 0 {
		t.Fatal("nil matrix accumulated")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pcu.op.exchange.ns")
	for i := int64(1); i <= 100; i++ {
		h.Observe(int(i), i*1000)
	}
	r.Gauge("pcu.live_ranks").SetInt(0, 8)
	r.Gauge("empty.gauge")
	r.Matrix("pcu.neighbor.bytes").Add(0, 1, 4096)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pumi_pcu_op_exchange_ns histogram",
		`pumi_pcu_op_exchange_ns_bucket{le="+Inf"} 100`,
		"pumi_pcu_op_exchange_ns_count 100",
		"# TYPE pumi_pcu_live_ranks gauge",
		`pumi_pcu_live_ranks{rank="0"} 8`,
		"pumi_empty_gauge 0",
		"# TYPE pumi_pcu_neighbor_bytes counter",
		`pumi_pcu_neighbor_bytes_total{rank="0",peer="1"} 4096`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	n, err := ValidatePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidatePrometheus: %v\n%s", err, out)
	}
	if n == 0 {
		t.Fatal("no samples")
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("render not deterministic")
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	bad := [][]byte{
		[]byte(""),
		[]byte("metric with spaces 1\n"),
		[]byte("# TYPE m unknowntype\nm 1\n"),
		[]byte("# TYPE m histogram\nm_bucket{le=\"4\"} 5\nm_bucket{le=\"2\"} 6\n"),
		[]byte("# TYPE m histogram\nm_bucket{le=\"2\"} 5\nm_bucket{le=\"4\"} 3\n"),
		[]byte("m notanumber\n"),
	}
	for i, b := range bad {
		if _, err := ValidatePrometheus(b); err == nil {
			t.Errorf("case %d: bad input accepted:\n%s", i, b)
		}
	}
}

// The metering hot paths must not allocate: metering stays on during
// benchmarks, and the pcu op path records into these cells per op. The
// pins self-skip under -race, matching internal/pcu/alloc_test.go.
func allocGate(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc pins are meaningless under -race")
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	allocGate(t)
	h := NewRegistry().Histogram("alloc.test")
	if avg := testing.AllocsPerRun(1000, func() {
		h.Observe(3, 12345)
	}); avg != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", avg)
	}
}

func TestGaugeSampleAllocs(t *testing.T) {
	allocGate(t)
	g := NewRegistry().Gauge("alloc.test")
	if avg := testing.AllocsPerRun(1000, func() {
		g.SetInt(3, 42)
		g.Add(5, 1)
	}); avg != 0 {
		t.Fatalf("Gauge sample allocates %v/op, want 0", avg)
	}
}

func TestMatrixAddAllocs(t *testing.T) {
	allocGate(t)
	m := NewRegistry().Matrix("alloc.test")
	if avg := testing.AllocsPerRun(1000, func() {
		m.Add(1, 2, 64)
	}); avg != 0 {
		t.Fatalf("Matrix.Add allocates %v/op, want 0", avg)
	}
}
