package adapt

import (
	"fmt"
	"math"
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
)

type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// TestRandomModificationSequence applies a long random interleaving of
// edge splits and collapses and asserts after every operation batch
// that the mesh stays structurally consistent and its total volume is
// exactly conserved.
func TestRandomModificationSequence(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 3, 3, 3)
	wantVol := totalMeasure(m)
	rng := xorshift(0xdeadbeef)
	ops := 0
	for round := 0; round < 6; round++ {
		// Random splits.
		var edges []mesh.Ent
		for e := range m.Iter(1) {
			edges = append(edges, e)
		}
		for i := 0; i < 30 && len(edges) > 0; i++ {
			e := edges[rng.next()%uint64(len(edges))]
			if !m.Alive(e) {
				continue
			}
			SplitEdge(m, e, NopTransfer{})
			ops++
		}
		// Random collapse attempts.
		edges = edges[:0]
		for e := range m.Iter(1) {
			edges = append(edges, e)
		}
		for i := 0; i < 30 && len(edges) > 0; i++ {
			e := edges[rng.next()%uint64(len(edges))]
			if !m.Alive(e) {
				continue
			}
			vs := m.Down(e)
			switch {
			case CanCollapse(m, e, vs[0], vs[1]):
				CollapseEdge(m, e, vs[0], vs[1], NopTransfer{})
				ops++
			case CanCollapse(m, e, vs[1], vs[0]):
				CollapseEdge(m, e, vs[1], vs[0], NopTransfer{})
				ops++
			}
		}
		if err := m.CheckConsistency(); err != nil {
			t.Fatalf("round %d (after %d ops): %v", round, ops, err)
		}
		if v := totalMeasure(m); math.Abs(v-wantVol) > 1e-9 {
			t.Fatalf("round %d: volume %g, want %g", round, v, wantVol)
		}
		// Euler characteristic of a ball stays 1 under local
		// modification.
		if chi := m.Count(0) - m.Count(1) + m.Count(2) - m.Count(3); chi != 1 {
			t.Fatalf("round %d: chi = %d", round, chi)
		}
	}
	if ops < 60 {
		t.Fatalf("only %d operations executed", ops)
	}
}

// TestParallel2DAdaptation runs the distributed pipeline on a 2D mesh:
// distribute, adapt to a band size field across a part boundary, check
// invariants — exercising every dim==2 code path in adaptation and
// migration.
func TestParallel2DAdaptation(t *testing.T) {
	err := pcu.Run(3, func(ctx *pcu.Ctx) error {
		model := gmi.Rect(3, 1)
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Rect2D(model, 9, 3)
		}
		dm := partition.Adopt(ctx, model.Model, 2, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			for el := range serial.Elements() {
				p := int32(serial.Centroid(el).X)
				if p > 2 {
					p = 2
				}
				assign[el] = p
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
		if err := partition.Verify(dm); err != nil {
			return fmt.Errorf("2D distribute: %w", err)
		}
		size := func(p vec.V) float64 {
			if math.Abs(p.X-1.5) < 0.3 {
				return 0.09
			}
			return 0.6
		}
		st := Parallel(dm, size, DefaultOptions())
		if st.Splits == 0 {
			return fmt.Errorf("no 2D splits")
		}
		var remaining int64
		for _, part := range dm.Parts {
			remaining += int64(len(MarkLongEdges(part.M, size)))
		}
		if pcu.SumInt64(ctx, remaining) != 0 {
			return fmt.Errorf("%d long edges remain", remaining)
		}
		// Area conserved.
		var area float64
		for _, part := range dm.Parts {
			m := part.M
			for el := range m.Elements() {
				if m.IsOwned(el) {
					area += m.Measure(el)
				}
			}
		}
		if got := pcu.SumFloat64(ctx, area); math.Abs(got-3) > 1e-9 {
			return fmt.Errorf("area = %g", got)
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitBoundary2DKeepsClassification splits a model-edge-classified
// 2D mesh edge and verifies the children and new vertex stay on the
// model edge.
func TestSplitBoundary2DKeepsClassification(t *testing.T) {
	model := gmi.Rect(1, 1)
	m := meshgen.Rect2D(model, 2, 2)
	var be mesh.Ent = mesh.NilEnt
	for e := range m.Iter(1) {
		if m.Classification(e).Dim == 1 {
			be = e
			break
		}
	}
	if !be.Ok() {
		t.Fatal("no boundary edge")
	}
	cls := m.Classification(be)
	vs := m.Down(be)
	mid := SplitEdge(m, be, NopTransfer{})
	if m.Classification(mid) != cls {
		t.Fatalf("mid classified %v, want %v", m.Classification(mid), cls)
	}
	for _, v := range vs {
		child := m.FindFromVerts(mesh.Edge, []mesh.Ent{v, mid})
		if !child.Ok() || m.Classification(child) != cls {
			t.Fatalf("child edge classification lost")
		}
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
