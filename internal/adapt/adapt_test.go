package adapt

import (
	"fmt"
	"math"
	"testing"

	"github.com/fastmath/pumi-go/internal/field"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
)

func totalMeasure(m *mesh.Mesh) float64 {
	v := 0.0
	for el := range m.Elements() {
		v += m.Measure(el)
	}
	return v
}

func TestSplitEdge2D(t *testing.T) {
	m := meshgen.Rect2D(gmi.Rect(1, 1), 1, 1) // 2 triangles
	before := m.Count(2)
	area := totalMeasure(m)
	// Split the diagonal (the only interior edge).
	var diag mesh.Ent
	for e := range m.Iter(1) {
		if m.Classification(e).Dim == 2 {
			diag = e
		}
	}
	mid := SplitEdge(m, diag, NopTransfer{})
	if m.Count(2) != before+2 {
		t.Fatalf("faces = %d", m.Count(2))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalMeasure(m)-area) > 1e-12 {
		t.Fatal("area changed")
	}
	if m.Coord(mid).Dist(vec.V{X: 0.5, Y: 0.5}) > 1e-12 {
		t.Fatalf("midpoint at %v", m.Coord(mid))
	}
}

func TestSplitEdge3DVolumeAndCounts(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 2, 2, 2)
	vol := totalMeasure(m)
	nb := m.Count(3)
	// Split a handful of interior edges.
	var interior []mesh.Ent
	for e := range m.Iter(1) {
		if m.Classification(e).Dim == 3 {
			interior = append(interior, e)
		}
	}
	if len(interior) == 0 {
		t.Fatal("no interior edges")
	}
	split := 0
	for _, e := range interior {
		if !m.Alive(e) {
			continue
		}
		n := len(m.Adjacent(e, 3))
		SplitEdge(m, e, NopTransfer{})
		if m.Count(3) != nb+n {
			t.Fatalf("regions %d, want %d", m.Count(3), nb+n)
		}
		nb = m.Count(3)
		split++
		if split >= 5 {
			break
		}
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalMeasure(m)-vol) > 1e-12 {
		t.Fatalf("volume changed: %g vs %g", totalMeasure(m), vol)
	}
}

func TestSplitBoundaryEdgeClassificationAndSnap(t *testing.T) {
	model := gmi.Vessel(10, 1, 0.5, 0.5)
	m := meshgen.Vessel3D(model, 4, 4)
	// Find a wall-classified edge and split it: the new vertex must be
	// classified on the wall and snapped onto the wall surface.
	var wallEdge mesh.Ent = mesh.NilEnt
	for e := range m.Iter(1) {
		if m.Classification(e) == (gmi.Ref{Dim: 2, Tag: 1}) {
			wallEdge = e
			break
		}
	}
	if !wallEdge.Ok() {
		t.Fatal("no wall edge")
	}
	mid := SplitEdge(m, wallEdge, NopTransfer{})
	if m.Classification(mid) != (gmi.Ref{Dim: 2, Tag: 1}) {
		t.Fatalf("mid classified %v", m.Classification(mid))
	}
	p := m.Coord(mid)
	q := model.Snap(gmi.Ref{Dim: 2, Tag: 1}, p)
	if p.Dist(q) > 1e-6 {
		t.Fatalf("midpoint not snapped: off by %g", p.Dist(q))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Boundary face count integrity: every face with one region is
	// boundary-classified.
	for f := range m.IterType(mesh.Tri) {
		if m.UpCount(f) == 1 && m.Classification(f).Dim != 2 {
			t.Fatalf("boundary face classified %v", m.Classification(f))
		}
		if m.UpCount(f) == 2 && m.Classification(f).Dim != 3 {
			t.Fatalf("interior face classified %v", m.Classification(f))
		}
	}
}

func TestRefineSatisfiesSizeField(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 2, 2, 2)
	size := Uniform(0.3)
	n := Refine(m, size, NopTransfer{}, 20)
	if n == 0 {
		t.Fatal("no splits")
	}
	if got := len(MarkLongEdges(m, size)); got != 0 {
		t.Fatalf("%d long edges remain", got)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalMeasure(m)-1) > 1e-9 {
		t.Fatal("volume changed")
	}
}

func TestCoarsenReducesElements(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 4, 4, 4)
	before := m.Count(3)
	vol := totalMeasure(m)
	n := Coarsen(m, Uniform(0.9), NopTransfer{}, 6)
	if n == 0 {
		t.Fatal("no collapses")
	}
	if m.Count(3) >= before {
		t.Fatalf("elements %d -> %d", before, m.Count(3))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(totalMeasure(m)-vol) > 1e-9 {
		t.Fatalf("volume changed: %g vs %g", totalMeasure(m), vol)
	}
}

func TestFieldTransferThroughRefinement(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 2, 2, 2)
	f, _ := field.New(m, "u", 1, field.Linear)
	fn := func(p vec.V) []float64 { return []float64{p.X + 2*p.Y - p.Z} }
	f.SetByFunc(fn)
	tr := NewFieldTransfer("u")
	Refine(m, Uniform(0.35), tr, 10)
	// Linear field transferred by midpoint averaging stays exact for
	// linear functions.
	for v := range m.Iter(0) {
		got, ok := f.Get(v)
		if !ok {
			t.Fatalf("vertex %v lost field", v)
		}
		want := fn(m.Coord(v))
		if math.Abs(got[0]-want[0]) > 1e-9 {
			t.Fatalf("v %v: %g want %g", v, got[0], want[0])
		}
	}
}

func TestParallelAdaptation(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 8, 2, 2)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			for el := range serial.Elements() {
				p := int32(serial.Centroid(el).X)
				if p > 3 {
					p = 3
				}
				assign[el] = p
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
		// Refine a band around the plane x = 2 (a shock front crossing
		// the part boundary between parts 1 and 2).
		size := func(p vec.V) float64 {
			d := math.Abs(p.X - 2)
			if d < 0.4 {
				return 0.22
			}
			return 0.8
		}
		before := partition.GlobalCount(dm, 3)
		st := Parallel(dm, size, DefaultOptions())
		after := partition.GlobalCount(dm, 3)
		if st.Splits == 0 {
			return fmt.Errorf("no splits")
		}
		if after <= before {
			return fmt.Errorf("element count %d -> %d", before, after)
		}
		if st.Localized == 0 {
			return fmt.Errorf("no boundary localization happened; the front must cross a part boundary")
		}
		// Size field satisfied globally.
		var remaining int64
		for _, part := range dm.Parts {
			remaining += int64(len(MarkLongEdges(part.M, size)))
		}
		if pcu.SumInt64(ctx, remaining) != 0 {
			return fmt.Errorf("%d long edges remain", remaining)
		}
		if err := partition.Verify(dm); err != nil {
			return err
		}
		// Volume conserved.
		var vol float64
		for _, part := range dm.Parts {
			m := part.M
			for el := range m.Elements() {
				if m.IsOwned(el) && !m.IsGhost(el) {
					vol += m.Measure(el)
				}
			}
		}
		total := pcu.SumFloat64(ctx, vol)
		if math.Abs(total-4) > 1e-6 {
			return fmt.Errorf("volume = %g", total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPredictElementWeight(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 2, 2, 2)
	// Uniform size equal to current edge length predicts roughly the
	// current count; half the size predicts ~8x.
	w1 := PredictElementWeight(m, Uniform(0.5))
	w2 := PredictElementWeight(m, Uniform(0.25))
	if w2 < 7.9*w1 {
		t.Fatalf("prediction not scaling: %g vs %g", w1, w2)
	}
}

func TestQuadraticFieldTransfer(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 2, 2, 2)
	f, err := field.New(m, "q", 1, field.Quadratic)
	if err != nil {
		t.Fatal(err)
	}
	// An exactly-quadratic function must survive refinement exactly.
	fn := func(p vec.V) []float64 {
		return []float64{p.X*p.X - 2*p.Y*p.Y + p.X*p.Z + 3*p.Y - 1}
	}
	f.SetByFunc(fn)
	tr := NewQuadraticFieldTransfer("q")
	if n := Refine(m, Uniform(0.3), tr, 10); n == 0 {
		t.Fatal("no splits")
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Every vertex node equals fn exactly; every edge node equals fn at
	// the midpoint (a quadratic field's edge node value along a straight
	// edge is the midpoint value).
	for v := range m.Iter(0) {
		got, ok := f.Get(v)
		if !ok {
			t.Fatalf("vertex %v lost its node", v)
		}
		want := fn(m.Coord(v))
		if math.Abs(got[0]-want[0]) > 1e-9 {
			t.Fatalf("vertex %v: %g want %g", v, got[0], want[0])
		}
	}
	for e := range m.Iter(1) {
		got, ok := f.Get(e)
		if !ok {
			t.Fatalf("edge %v lost its node", e)
		}
		want := fn(m.Centroid(e))
		if math.Abs(got[0]-want[0]) > 1e-9 {
			t.Fatalf("edge %v: %g want %g", e, got[0], want[0])
		}
	}
	// Element-interior evaluation is exact too.
	for el := range m.Elements() {
		c := m.Centroid(el)
		got := f.Eval(el, c)
		want := fn(c)
		if math.Abs(got[0]-want[0]) > 1e-9 {
			t.Fatalf("eval %g want %g", got[0], want[0])
		}
	}
}
