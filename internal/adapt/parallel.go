package adapt

import (
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// Options configures distributed adaptation.
type Options struct {
	// MaxRounds bounds the outer mark/localize/modify rounds.
	MaxRounds int
	// LocalizeRounds bounds the migrate-to-localize sub-iterations per
	// round.
	LocalizeRounds int
	// Coarsen enables edge collapsing of over-resolved regions.
	Coarsen bool
	// Transfer receives solution-transfer events (may be nil).
	Transfer Transfer
}

// DefaultOptions returns the settings used by the experiments.
func DefaultOptions() Options {
	return Options{MaxRounds: 12, LocalizeRounds: 6, Coarsen: true}
}

// Stats reports what a distributed adaptation did (globally summed).
type Stats struct {
	Rounds     int
	Splits     int64
	Collapses  int64
	Localized  int64 // elements migrated to localize boundary cavities
	ElemBefore int64
	ElemAfter  int64
}

// Parallel adapts a distributed mesh to the size field (collective).
// Each round: long part-boundary edges are localized by migrating their
// element cavities to the smallest residence part (the PUMI strategy of
// obtaining the entities a modification needs), then every part refines
// and optionally coarsens locally. Rounds repeat until the size field
// is met everywhere or MaxRounds is exhausted.
//
// No load balancing is performed here — by design. The paper's Fig 13
// experiment measures exactly the imbalance this produces; callers run
// ParMA afterwards (or predictively before).
func Parallel(dm *partition.DMesh, size SizeField, opts Options) Stats {
	var st Stats
	st.ElemBefore = partition.GlobalCount(dm, dm.Dim)
	for round := 0; round < opts.MaxRounds; round++ {
		st.Rounds = round + 1
		// Localize boundary cavities of marked edges, alternating the
		// flow direction between rounds.
		for lr := 0; lr < opts.LocalizeRounds; lr++ {
			moved := localizeMarked(dm, size, round%2 == 1)
			st.Localized += moved
			if moved == 0 {
				break
			}
		}
		// Local modification.
		var splits, collapses int64
		for _, part := range dm.Parts {
			splits += int64(Refine(part.M, size, opts.Transfer, 4))
			if opts.Coarsen {
				collapses += int64(Coarsen(part.M, size, opts.Transfer, 2))
			}
		}
		st.Splits += pcu.SumInt64(dm.Ctx, splits)
		st.Collapses += pcu.SumInt64(dm.Ctx, collapses)
		// Converged when no rank has marked edges left (interior or
		// boundary).
		remaining := int64(0)
		for _, part := range dm.Parts {
			remaining += int64(len(MarkLongEdges(part.M, size)))
		}
		if pcu.SumInt64(dm.Ctx, remaining) == 0 {
			break
		}
	}
	st.ElemAfter = partition.GlobalCount(dm, dm.Dim)
	return st
}

// localizeMarked migrates the element cavities of marked part-boundary
// edges to one residence part each, returning the global number of
// elements moved (collective). The destination is an extreme of the
// residence set — the minimum part id, or the maximum when useMax is
// set. Extreme-directed flow is monotone, so the subround loop
// terminates; the caller alternates the direction between rounds so a
// refinement zone sliced across many parts does not cascade entirely
// into the lowest part id.
func localizeMarked(dm *partition.DMesh, size SizeField, useMax bool) int64 {
	dest := func(m *mesh.Mesh, e mesh.Ent) int32 {
		res := m.Residence(e).Values()
		if useMax {
			return res[len(res)-1]
		}
		return res[0]
	}
	better := func(a, b int32) bool {
		if useMax {
			return a > b
		}
		return a < b
	}
	plans := make([]partition.Plan, len(dm.Parts))
	var moved int64
	for i, part := range dm.Parts {
		m := part.M
		self := m.Part()
		plans[i] = partition.Plan{}
		for _, e := range MarkLongEdges(m, size) {
			if !m.IsShared(e) {
				continue
			}
			d := dest(m, e)
			if d == self {
				continue // cavity gathers here
			}
			for _, el := range m.Adjacent(e, dm.Dim) {
				if cur, ok := plans[i][el]; !ok || better(d, cur) {
					plans[i][el] = d
				}
			}
		}
		moved += int64(len(plans[i]))
	}
	total := pcu.SumInt64(dm.Ctx, moved)
	partition.Migrate(dm, plans)
	return total
}

// PredictElementWeight estimates the element count a part will hold
// after adapting to the size field: each current element contributes
// its volume divided by the target element volume implied by the local
// size. This drives predictive load balancing.
func PredictElementWeight(m *mesh.Mesh, size SizeField) float64 {
	w := 0.0
	for el := range m.Elements() {
		if m.IsGhost(el) {
			continue
		}
		w += PredictedElements(m, el, size)
	}
	return w
}

// PredictedElements estimates how many elements one element becomes
// under the size field: its measure over the volume of a simplex with
// the local target edge length (h^3/6 for tets, h^2/2 for triangles —
// the shapes the edge-subdivision operator produces). Elements already
// at or below the target contribute 1 (coarsening merges are bounded by
// collapse validity, so predicting below 1 over-promises).
func PredictedElements(m *mesh.Mesh, el mesh.Ent, size SizeField) float64 {
	h := size(m.Centroid(el))
	if h <= 0 {
		return 1
	}
	var target float64
	if m.Dim() == 3 {
		target = h * h * h / 6
	} else {
		target = h * h / 2
	}
	n := m.Measure(el) / target
	if n < 1 {
		return 1
	}
	return n
}
