package adapt

import (
	"math"
	"sort"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/vec"
)

// minQuality rejects collapses producing elements below this mean-ratio
// shape quality.
const minQuality = 0.05

// CanCollapse reports whether edge (removed -> kept) may collapse:
// the removed vertex merges into the kept one and all elements around
// the edge disappear. Requirements:
//
//   - removed is not on the part boundary and is not a ghost;
//   - classification compatibility: the removed vertex is classified on
//     the same model entity as the edge (so the model geometry is not
//     changed by removing it);
//   - validity: every surviving element around removed keeps positive
//     volume/area, acceptable quality, and does not duplicate an
//     existing element.
func CanCollapse(m *mesh.Mesh, edge, removed, kept mesh.Ent) bool {
	if m.IsShared(removed) || m.IsGhost(removed) {
		return false
	}
	if m.Classification(removed) != m.Classification(edge) {
		return false
	}
	d := m.Dim()
	for _, el := range m.Adjacent(removed, d) {
		if m.IsGhost(el) {
			return false
		}
		if hasVert(m, el, kept) {
			continue // dies with the edge
		}
		verts := m.Verts(el)
		nv := make([]mesh.Ent, len(verts))
		for i, v := range verts {
			if v == removed {
				nv[i] = kept
			} else {
				nv[i] = v
			}
		}
		if m.FindFromVerts(el.T, nv).Ok() {
			return false // would duplicate an existing element
		}
		if !simplexValid(m, el.T, nv) {
			return false
		}
		// Orientation must be preserved: compare the signed measure of
		// the element under the same vertex labeling before and after
		// the substitution; a sign flip means the rebuilt element
		// inverts and overlaps its neighbors.
		if signedMeasure(m, verts)*signedMeasure(m, nv) <= 0 {
			return false
		}
	}
	return true
}

// signedMeasure returns the signed volume (tet) or signed z-area (tri)
// of a simplex given by vertex handles in a fixed labeling.
func signedMeasure(m *mesh.Mesh, verts []mesh.Ent) float64 {
	switch len(verts) {
	case 3:
		a, b, c := m.Coord(verts[0]), m.Coord(verts[1]), m.Coord(verts[2])
		return b.Sub(a).Cross(c.Sub(a)).Z / 2
	case 4:
		return vec.TetVolume(m.Coord(verts[0]), m.Coord(verts[1]), m.Coord(verts[2]), m.Coord(verts[3]))
	}
	return 0
}

func hasVert(m *mesh.Mesh, el, v mesh.Ent) bool {
	for _, x := range m.Adjacent(el, 0) {
		if x == v {
			return true
		}
	}
	return false
}

// simplexValid checks shape validity of a would-be element given its
// vertex handles.
func simplexValid(m *mesh.Mesh, t mesh.Type, verts []mesh.Ent) bool {
	pts := make([]vec.V, len(verts))
	for i, v := range verts {
		pts[i] = m.Coord(v)
	}
	switch t {
	case mesh.Tri:
		area := vec.TriArea(pts[0], pts[1], pts[2])
		l2 := pts[0].Sub(pts[1]).Norm2() + pts[1].Sub(pts[2]).Norm2() + pts[2].Sub(pts[0]).Norm2()
		return l2 > 0 && 4*math.Sqrt(3)*area/l2 > minQuality
	case mesh.Tet:
		vol := math.Abs(vec.TetVolume(pts[0], pts[1], pts[2], pts[3]))
		l2 := 0.0
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				l2 += pts[i].Sub(pts[j]).Norm2()
			}
		}
		if l2 == 0 {
			return false
		}
		s2 := l2 / 6
		ideal := math.Pow(s2, 1.5) / (6 * math.Sqrt2)
		return vol/ideal > minQuality
	}
	return false
}

// CollapseEdge merges removed into kept: elements around the edge are
// destroyed, the other elements around removed are rebuilt with kept in
// its place, and removed disappears with its orphaned closure. The
// caller must have verified CanCollapse.
func CollapseEdge(m *mesh.Mesh, edge, removed, kept mesh.Ent, tr Transfer) {
	if tr != nil {
		tr.Collapse(m, removed, kept)
	}
	d := m.Dim()
	dying := m.Adjacent(edge, d)
	rebuilt := m.Adjacent(removed, d)
	// Record the classification of every lower entity touching the
	// removed vertex in surviving cavities, keyed by its replacement
	// vertex set, so boundary sides keep their model classification.
	type clsRec struct {
		t  mesh.Type
		nv []mesh.Ent
		c  gmi.Ref
	}
	var recs []clsRec
	replace := func(verts []mesh.Ent) []mesh.Ent {
		nv := make([]mesh.Ent, len(verts))
		for i, v := range verts {
			if v == removed {
				nv[i] = kept
			} else {
				nv[i] = v
			}
		}
		return nv
	}
	for _, el := range rebuilt {
		if hasVert(m, el, kept) {
			continue
		}
		for dd := 1; dd < d; dd++ {
			for _, de := range m.Adjacent(el, dd) {
				if !hasVert(m, de, removed) {
					continue
				}
				nv := replace(m.Adjacent(de, 0))
				if m.FindFromVerts(de.T, nv).Ok() {
					// The replacement already exists (a side of a
					// dying element) and keeps its own classification.
					continue
				}
				recs = append(recs, clsRec{t: de.T, nv: nv, c: m.Classification(de)})
			}
		}
	}
	// Create replacements first (they share entities with survivors).
	for _, el := range rebuilt {
		if hasVert(m, el, kept) {
			continue
		}
		m.BuildFromVerts(el.T, replace(m.Verts(el)), m.Classification(el))
	}
	for _, r := range recs {
		child := m.FindFromVerts(r.t, r.nv)
		if child.Ok() {
			m.SetClassification(child, r.c)
		}
	}
	// Destroy all old elements around removed (including those around
	// the edge), then cascade orphans down to the removed vertex.
	old := map[mesh.Ent]bool{}
	for _, el := range dying {
		old[el] = true
	}
	for _, el := range rebuilt {
		old[el] = true
	}
	els := make([]mesh.Ent, 0, len(old))
	for el := range old {
		els = append(els, el)
	}
	sort.Slice(els, func(i, j int) bool { return els[i].Less(els[j]) })
	var lower []mesh.Ent
	for _, el := range els {
		for dd := d - 1; dd >= 0; dd-- {
			lower = append(lower, m.Adjacent(el, dd)...)
		}
		m.Destroy(el)
	}
	// Orphan sweep, highest dimension first.
	sort.Slice(lower, func(i, j int) bool {
		if lower[i].Dim() != lower[j].Dim() {
			return lower[i].Dim() > lower[j].Dim()
		}
		return lower[i].Less(lower[j])
	})
	for _, e := range lower {
		if m.Alive(e) && !m.HasUp(e) && e.T != mesh.Vertex {
			m.Destroy(e)
		}
	}
	if m.Alive(removed) && !m.HasUp(removed) {
		m.Destroy(removed)
	}
}

// Coarsen collapses short edges until the size field is satisfied or
// maxRounds passes complete, returning the number of collapses. Only
// part-interior cavities are touched.
func Coarsen(m *mesh.Mesh, size SizeField, tr Transfer, maxRounds int) int {
	collapses := 0
	for round := 0; round < maxRounds; round++ {
		type cand struct {
			e   mesh.Ent
			rel float64
		}
		var marked []cand
		for e := range m.Iter(1) {
			if m.IsGhost(e) {
				continue
			}
			l := m.Measure(e)
			// Evaluate the size conservatively (minimum over the edge)
			// so coarsening across a sharp size gradient cannot undo a
			// split that the gradient's fine side demanded — otherwise
			// refine and coarsen oscillate forever at the interface.
			vs := m.Down(e)
			h := size(m.Centroid(e))
			if ha := size(m.Coord(vs[0])); ha < h {
				h = ha
			}
			if hb := size(m.Coord(vs[1])); hb < h {
				h = hb
			}
			if h > 0 && l < collapseFactor*h {
				marked = append(marked, cand{e: e, rel: l / h})
			}
		}
		sort.Slice(marked, func(i, j int) bool {
			if marked[i].rel != marked[j].rel {
				return marked[i].rel < marked[j].rel
			}
			return marked[i].e.Less(marked[j].e)
		})
		n := 0
		for _, c := range marked {
			e := c.e
			if !m.Alive(e) {
				continue
			}
			vs := m.Down(e)
			switch {
			case CanCollapse(m, e, vs[0], vs[1]):
				CollapseEdge(m, e, vs[0], vs[1], tr)
				n++
			case CanCollapse(m, e, vs[1], vs[0]):
				CollapseEdge(m, e, vs[1], vs[0], tr)
				n++
			}
		}
		collapses += n
		if n == 0 {
			break
		}
	}
	return collapses
}
