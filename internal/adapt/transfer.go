package adapt

import (
	"github.com/fastmath/pumi-go/internal/field"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/vec"
)

// FieldTransfer carries the named linear fields through mesh
// modification: a split edge's new vertex receives the average of the
// edge's end values; a collapse leaves the kept vertex's value.
type FieldTransfer struct {
	Names []string
}

// NewFieldTransfer returns a transfer for the given field names.
func NewFieldTransfer(names ...string) *FieldTransfer {
	return &FieldTransfer{Names: names}
}

// EdgeSplit implements Transfer by linear interpolation.
func (ft *FieldTransfer) EdgeSplit(m *mesh.Mesh, edge, mid mesh.Ent) {
	vs := m.Down(edge)
	for _, name := range ft.Names {
		f := field.Find(m, name, field.Linear)
		if f == nil {
			continue
		}
		a := f.MustGet(vs[0])
		b := f.MustGet(vs[1])
		avg := make([]float64, len(a))
		for i := range avg {
			avg[i] = (a[i] + b[i]) / 2
		}
		f.Set(mid, avg...)
	}
}

// Collapse implements Transfer; the kept vertex's value already stands.
func (ft *FieldTransfer) Collapse(m *mesh.Mesh, removed, kept mesh.Ent) {}

// QuadraticFieldTransfer carries quadratic (vertex + edge node) fields
// through refinement exactly: the new vertex takes the parent edge
// node's value (the quadratic field's value at the midpoint), child
// edge nodes take the parent edge's 1D quadratic evaluated at the
// quarter points, and the new interior edges' nodes are evaluated from
// the parent elements before they are destroyed. Coarsening is not
// supported for quadratic fields (re-evaluate after collapse).
type QuadraticFieldTransfer struct {
	Names []string
	// pending holds node values for edges that will exist only after
	// the split completes, keyed by their vertex pair.
	pending map[[2]mesh.Ent]map[string][]float64
}

// NewQuadraticFieldTransfer returns a transfer for quadratic fields.
func NewQuadraticFieldTransfer(names ...string) *QuadraticFieldTransfer {
	return &QuadraticFieldTransfer{
		Names:   names,
		pending: map[[2]mesh.Ent]map[string][]float64{},
	}
}

func pairKey(a, b mesh.Ent) [2]mesh.Ent {
	if b.Less(a) {
		a, b = b, a
	}
	return [2]mesh.Ent{a, b}
}

func (qt *QuadraticFieldTransfer) stash(a, b mesh.Ent, name string, vals []float64) {
	key := pairKey(a, b)
	m := qt.pending[key]
	if m == nil {
		m = map[string][]float64{}
		qt.pending[key] = m
	}
	m[name] = vals
}

// EdgeSplit implements Transfer: it computes all child node values
// while the parent entities are still alive.
func (qt *QuadraticFieldTransfer) EdgeSplit(m *mesh.Mesh, edge, mid mesh.Ent) {
	vs := m.Down(edge)
	a, b := vs[0], vs[1]
	d := m.Dim()
	for _, name := range qt.Names {
		f := field.Find(m, name, field.Quadratic)
		if f == nil {
			continue
		}
		va := f.MustGet(a)
		vb := f.MustGet(b)
		ve := f.MustGet(edge)
		n := len(ve)
		// New vertex value: the parent edge node is the field value at
		// the midpoint.
		f.Set(mid, ve...)
		// Child edge nodes at the parent's 1D quarter points:
		// u(1/4) = 0.375 a - 0.125 b + 0.75 e (and mirrored).
		q1 := make([]float64, n)
		q3 := make([]float64, n)
		for i := 0; i < n; i++ {
			q1[i] = 0.375*va[i] - 0.125*vb[i] + 0.75*ve[i]
			q3[i] = -0.125*va[i] + 0.375*vb[i] + 0.75*ve[i]
		}
		qt.stash(a, mid, name, q1)
		qt.stash(mid, b, name, q3)
		// Interior child edges (mid, c): evaluate the parent element's
		// quadratic field at the new edge's midpoint.
		for _, el := range m.Adjacent(edge, d) {
			for _, c := range m.Adjacent(el, 0) {
				if c == a || c == b {
					continue
				}
				q := vec.Mid(m.Coord(mid), m.Coord(c))
				qt.stash(mid, c, name, f.Eval(el, q))
			}
		}
	}
}

// EdgeSplitDone implements PostSplitTransfer: the stashed values land
// on the now-existing child edges.
func (qt *QuadraticFieldTransfer) EdgeSplitDone(m *mesh.Mesh, a, b, mid mesh.Ent) {
	for key, byField := range qt.pending {
		delete(qt.pending, key)
		e := m.FindFromVerts(mesh.Edge, key[:])
		if !e.Ok() {
			continue
		}
		for name, vals := range byField {
			if f := field.Find(m, name, field.Quadratic); f != nil {
				f.Set(e, vals...)
			}
		}
	}
}

// Collapse implements Transfer. Quadratic coarsening transfer is not
// supported; surviving nodes keep their values.
func (qt *QuadraticFieldTransfer) Collapse(m *mesh.Mesh, removed, kept mesh.Ent) {}
