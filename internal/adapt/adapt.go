// Package adapt implements size-field-driven mesh adaptation by local
// mesh modification: edge splitting (refinement) and edge collapsing
// (coarsening) on triangle and tetrahedral meshes, with geometric
// classification maintained, new boundary vertices snapped to the
// model, and solution transfer callbacks for fields.
//
// In parallel, the package follows PUMI's approach to mesh modification
// near part boundaries: rather than coordinating modifications across
// parts, the elements around a boundary cavity are first migrated to a
// single part ("obtaining mesh entities needed for mesh modification
// operations"), making the modification purely local.
package adapt

import (
	"fmt"
	"sort"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/vec"
)

// SizeField prescribes the desired edge length at a point.
type SizeField func(p vec.V) float64

// Uniform returns a constant size field.
func Uniform(h float64) SizeField { return func(vec.V) float64 { return h } }

// splitFactor: an edge splits when its length exceeds splitFactor times
// the local size; ~sqrt(2) keeps split children from immediately
// collapsing.
const splitFactor = 1.4

// collapseFactor: an edge collapses when shorter than collapseFactor
// times the local size.
const collapseFactor = 0.45

// Transfer receives local modification events so solution data can
// follow the mesh. Callbacks run while both old and new entities are
// alive.
type Transfer interface {
	// EdgeSplit announces that edge was split at the new vertex mid.
	EdgeSplit(m *mesh.Mesh, edge, mid mesh.Ent)
	// Collapse announces that vertex removed is merging into kept.
	Collapse(m *mesh.Mesh, removed, kept mesh.Ent)
}

// PostSplitTransfer is an optional extension of Transfer: EdgeSplitDone
// fires after an edge split completes, when the child entities exist —
// the hook higher-order (edge-node) solution transfer needs.
type PostSplitTransfer interface {
	EdgeSplitDone(m *mesh.Mesh, a, b, mid mesh.Ent)
}

// NopTransfer ignores all events.
type NopTransfer struct{}

// EdgeSplit implements Transfer.
func (NopTransfer) EdgeSplit(*mesh.Mesh, mesh.Ent, mesh.Ent) {}

// Collapse implements Transfer.
func (NopTransfer) Collapse(*mesh.Mesh, mesh.Ent, mesh.Ent) {}

// SplitEdge bisects one edge: a new vertex appears at the snapped
// midpoint with the edge's classification, and every adjacent element
// is replaced by two. It returns the new vertex. The edge must be
// interior to the part or the caller must have localized its cavity.
func SplitEdge(m *mesh.Mesh, edge mesh.Ent, tr Transfer) mesh.Ent {
	if edge.T != mesh.Edge {
		panic(fmt.Sprintf("adapt: SplitEdge of %v", edge))
	}
	d := m.Dim()
	ab := m.Down(edge)
	a, b := ab[0], ab[1]
	cls := m.Classification(edge)
	p := vec.Mid(m.Coord(a), m.Coord(b))
	if model := m.Model(); model != nil && cls.Valid() && int(cls.Dim) < d {
		p = model.Snap(cls, p)
	}
	mid := m.CreateVertex(cls, p)
	if tr != nil {
		tr.EdgeSplit(m, edge, mid)
	}
	els := m.Adjacent(edge, d)
	// Record the old faces around the edge (3D) so their children can
	// inherit the exact parent classification: old face (a,b,c) splits
	// into (a,mid,c) and (mid,b,c), and the new edge (mid,c) lies
	// inside the old face.
	type faceRec struct {
		cls gmi.Ref
		opp mesh.Ent
	}
	var recs []faceRec
	var faces []mesh.Ent
	if d == 3 {
		faces = m.Adjacent(edge, 2)
		for _, f := range faces {
			opp := mesh.NilEnt
			for _, v := range m.Adjacent(f, 0) {
				if v != a && v != b {
					opp = v
				}
			}
			recs = append(recs, faceRec{cls: m.Classification(f), opp: opp})
		}
	}
	for _, el := range els {
		elCls := m.Classification(el)
		verts := m.Verts(el)
		// Replace the element by two copies with b and a swapped for
		// mid respectively. Vertex orders stay valid cycles/templates
		// because only one vertex changes.
		for _, drop := range []mesh.Ent{b, a} {
			nv := make([]mesh.Ent, len(verts))
			for i, v := range verts {
				if v == drop {
					nv[i] = mid
				} else {
					nv[i] = v
				}
			}
			m.BuildFromVerts(el.T, nv, elCls)
		}
	}
	// Remove the old elements, then the orphaned entities around the
	// old edge (its faces in 3D, then the edge itself).
	for _, el := range els {
		m.Destroy(el)
	}
	for _, f := range faces {
		if m.Alive(f) && !m.HasUp(f) {
			m.Destroy(f)
		}
	}
	if m.Alive(edge) && !m.HasUp(edge) {
		m.Destroy(edge)
	}
	// Child edges of the split edge inherit its classification.
	for _, v := range []mesh.Ent{a, b} {
		child := m.FindFromVerts(mesh.Edge, []mesh.Ent{v, mid})
		if child.Ok() {
			m.SetClassification(child, cls)
		}
	}
	// Children of each old face, and the new edge inside it, inherit
	// the old face's classification.
	for _, r := range recs {
		if !r.opp.Ok() {
			continue
		}
		for _, other := range []mesh.Ent{a, b} {
			child := m.FindFromVerts(mesh.Tri, []mesh.Ent{other, mid, r.opp})
			if child.Ok() {
				m.SetClassification(child, r.cls)
			}
		}
		inner := m.FindFromVerts(mesh.Edge, []mesh.Ent{mid, r.opp})
		if inner.Ok() {
			m.SetClassification(inner, r.cls)
		}
	}
	if ps, ok := tr.(PostSplitTransfer); ok && ps != nil {
		ps.EdgeSplitDone(m, a, b, mid)
	}
	return mid
}

// MarkLongEdges returns the edges whose length exceeds the size field's
// split threshold, longest (relative to the local size) first.
func MarkLongEdges(m *mesh.Mesh, size SizeField) []mesh.Ent {
	type cand struct {
		e   mesh.Ent
		rel float64
	}
	var out []cand
	for e := range m.Iter(1) {
		if m.IsGhost(e) {
			continue
		}
		l := m.Measure(e)
		h := size(m.Centroid(e))
		if h <= 0 {
			continue
		}
		if l > splitFactor*h {
			out = append(out, cand{e: e, rel: l / h})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].rel != out[j].rel {
			return out[i].rel > out[j].rel
		}
		return out[i].e.Less(out[j].e)
	})
	es := make([]mesh.Ent, len(out))
	for i, c := range out {
		es[i] = c.e
	}
	return es
}

// Refine splits long edges until the size field is satisfied or
// maxRounds passes complete. It returns the number of splits. Part
// boundaries are not crossed: shared edges are skipped (the parallel
// driver localizes them first).
func Refine(m *mesh.Mesh, size SizeField, tr Transfer, maxRounds int) int {
	splits := 0
	for round := 0; round < maxRounds; round++ {
		marked := MarkLongEdges(m, size)
		n := 0
		for _, e := range marked {
			if !m.Alive(e) || m.IsShared(e) {
				continue
			}
			SplitEdge(m, e, tr)
			n++
		}
		splits += n
		if n == 0 {
			break
		}
	}
	return splits
}

// Adapt is the serial driver combining refinement and coarsening:
// rounds alternate until neither operation fires (or maxRounds is
// exhausted), ending with a refinement pass so no long edges remain.
// It returns total splits and collapses.
func Adapt(m *mesh.Mesh, size SizeField, tr Transfer, coarsen bool, maxRounds int) (splits, collapses int) {
	for round := 0; round < maxRounds; round++ {
		s := Refine(m, size, tr, 3)
		c := 0
		if coarsen {
			c = Coarsen(m, size, tr, 1)
		}
		splits += s
		collapses += c
		if s+c == 0 {
			return splits, collapses
		}
	}
	// Ensure the size field is met even if coarsening fired on the
	// last round.
	splits += Refine(m, size, tr, maxRounds)
	return splits, collapses
}
