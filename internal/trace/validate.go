package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// FileKind reports which trace document a JSON file holds.
type FileKind int

const (
	// FileUnknown is a file matching neither schema.
	FileUnknown FileKind = iota
	// FileChrome is a Chrome trace-event timeline (ChromeSchema).
	FileChrome
	// FileSummary is a metrics summary (SummarySchema).
	FileSummary
)

func (k FileKind) String() string {
	switch k {
	case FileChrome:
		return "chrome"
	case FileSummary:
		return "summary"
	}
	return "unknown"
}

// MaybeGunzip transparently decompresses gzip data (sniffed by the
// 0x1f 0x8b magic) and passes anything else through untouched. Long
// chaos soaks gzip their multi-MB exports; every reader in this package
// and in pumi-trace accepts both forms.
func MaybeGunzip(data []byte) ([]byte, error) {
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		return data, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("gzip: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("gzip: %w", err)
	}
	return out, nil
}

// decodeChrome parses an exported Chrome timeline document.
func decodeChrome(data []byte) (*chromeDoc, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("chrome trace: %w", err)
	}
	return &doc, nil
}

// ValidateFile detects which trace document data holds and checks it
// structurally: schema tag, required fields, per-rank B/E span nesting
// for timelines, and phase/neighbor invariants for summaries. Gzipped
// exports (.json.gz) are decompressed transparently. It is the check
// `pumi-trace -validate` and the trace-smoke CI lane run against
// emitted files.
func ValidateFile(data []byte) (FileKind, error) {
	data, err := MaybeGunzip(data)
	if err != nil {
		return FileUnknown, err
	}
	var probe struct {
		Schema    string `json:"schema"`
		OtherData struct {
			Schema string `json:"schema"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return FileUnknown, fmt.Errorf("not JSON: %w", err)
	}
	switch {
	case probe.OtherData.Schema == ChromeSchema:
		return FileChrome, validateChrome(data)
	case probe.Schema == SummarySchema:
		return FileSummary, validateSummary(data)
	case probe.OtherData.Schema != "":
		return FileUnknown, fmt.Errorf("unknown chrome schema %q (want %q)", probe.OtherData.Schema, ChromeSchema)
	case probe.Schema != "":
		return FileUnknown, fmt.Errorf("unknown schema %q (want %q)", probe.Schema, SummarySchema)
	}
	return FileUnknown, fmt.Errorf("no trace schema tag (expected otherData.schema=%q or schema=%q)", ChromeSchema, SummarySchema)
}

func validateChrome(data []byte) error {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	// Per-track span nesting: every E must close the innermost open B of
	// its name, timestamps must be non-negative and non-decreasing.
	stacks := map[int][]string{}
	lastTs := -1.0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("chrome trace: event %d has no name", i)
		}
		if e.Ts < 0 {
			return fmt.Errorf("chrome trace: event %d (%s) has negative ts", i, e.Name)
		}
		if e.Ph != "M" {
			if e.Ts < lastTs {
				return fmt.Errorf("chrome trace: event %d (%s) goes back in time (%.3f < %.3f)", i, e.Name, e.Ts, lastTs)
			}
			lastTs = e.Ts
		}
		switch e.Ph {
		case "B":
			stacks[e.Tid] = append(stacks[e.Tid], e.Name)
		case "E":
			st := stacks[e.Tid]
			if len(st) == 0 {
				return fmt.Errorf("chrome trace: event %d closes %q on rank %d with no open span", i, e.Name, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				return fmt.Errorf("chrome trace: event %d closes %q on rank %d but %q is open", i, e.Name, e.Tid, top)
			}
			stacks[e.Tid] = st[:len(st)-1]
		case "i", "C", "M":
		default:
			return fmt.Errorf("chrome trace: event %d has unsupported phase %q", i, e.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("chrome trace: rank %d ends with %d unclosed spans (innermost %q)", tid, len(st), st[len(st)-1])
		}
	}
	return nil
}

func validateSummary(data []byte) error {
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("summary: %w", err)
	}
	if s.Ranks < 0 {
		return fmt.Errorf("summary: negative rank count %d", s.Ranks)
	}
	for _, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("summary: phase with empty name")
		}
		if p.Count < 0 || p.TotalSec < 0 || p.MaxRankSec < 0 || p.AvgRankSec < 0 {
			return fmt.Errorf("summary: phase %q has negative stats", p.Name)
		}
		if p.MaxRankSec > p.TotalSec*(1+1e-9) {
			return fmt.Errorf("summary: phase %q max_rank_sec %.9f exceeds total_sec %.9f", p.Name, p.MaxRankSec, p.TotalSec)
		}
	}
	for _, n := range s.Neighbors {
		if n.Rank < 0 || n.Rank >= s.Ranks || n.Peer < 0 || n.Peer >= s.Ranks {
			return fmt.Errorf("summary: neighbor pair %d->%d outside 0..%d", n.Rank, n.Peer, s.Ranks-1)
		}
		if n.Msgs < 0 || n.Bytes < 0 || n.OnNodeMsgs > n.Msgs {
			return fmt.Errorf("summary: neighbor pair %d->%d has inconsistent counts", n.Rank, n.Peer)
		}
		var hist uint64
		for _, v := range n.Hist {
			hist += v
		}
		if hist != uint64(n.Msgs) {
			return fmt.Errorf("summary: neighbor pair %d->%d histogram sums to %d, msgs is %d", n.Rank, n.Peer, hist, n.Msgs)
		}
	}
	for i, p := range s.Parma {
		if p.Imb < 0 {
			return fmt.Errorf("summary: parma point %d has negative imbalance", i)
		}
	}
	return nil
}
