package trace

// Critical-path analysis: who made each collective late, and what were
// they doing instead.
//
// In a bulk-synchronous run every collective ends when its *last* rank
// arrives — the paper's load-balancing story (ParMA §) is entirely
// about shrinking that arrival skew. The analyzer groups the k-th
// occurrence of each span name across ranks into one phase *instance*,
// reads each rank's Begin timestamp as its arrival, and blames the
// instance's cost on the last-arriving rank. The span that rank closed
// most recently before arriving is the work that delayed it — compute,
// a prior collective, an I/O phase — which is exactly the attribution
// a re-partitioner needs ("rank 3 is late into every exchange because
// its migrate unpack runs long").
//
// The same binning as the live registry (telemetry.BucketOf) is used
// for the arrival-skew histograms, so offline tables and live /metrics
// scrapes are directly comparable.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/fastmath/pumi-go/internal/telemetry"
)

// DelaySpan counts how often one span was the last thing the blamed
// rank finished before arriving late.
type DelaySpan struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// PhaseBlame aggregates the straggler attribution of one span name.
type PhaseBlame struct {
	// Name is the span name (e.g. "pcu.exchange").
	Name string `json:"name"`
	// Instances is how many cross-rank occurrences were matched.
	Instances int `json:"instances"`
	// TotalSkewNs sums each instance's last-minus-first arrival gap.
	TotalSkewNs int64 `json:"total_skew_ns"`
	// MaxSkewNs is the worst single instance's gap, MaxSkewRank the rank
	// that arrived last in it.
	MaxSkewNs   int64 `json:"max_skew_ns"`
	MaxSkewRank int   `json:"max_skew_rank"`
	// BlamedCount[r] is how many instances rank r arrived last in.
	BlamedCount []int64 `json:"blamed_count"`
	// DelayedBy counts the spans the blamed ranks closed immediately
	// before arriving, largest count first (name-ascending on ties).
	DelayedBy []DelaySpan `json:"delayed_by,omitempty"`
	// SkewHist is the arrival-skew distribution in telemetry's
	// power-of-two nanosecond buckets.
	SkewHist [telemetry.Buckets]int64 `json:"skew_hist"`
}

// CriticalPathReport is the per-phase straggler blame table of one run.
type CriticalPathReport struct {
	Ranks  int          `json:"ranks"`
	Phases []PhaseBlame `json:"phases"`
}

// arrival is one rank's entry into one phase instance.
type arrival struct {
	t       int64
	prevEnd string // span this rank closed most recently before arriving
	set     bool
}

// CriticalPathEvents computes the blame table from per-rank event
// streams (index = rank, events in chronological order). The result is
// deterministic: it depends only on the event contents, not on map
// iteration or the order ranks were registered or merged.
func CriticalPathEvents(perRank [][]Event) *CriticalPathReport {
	ranks := len(perRank)
	// instances[name] holds one slot per occurrence index, each with one
	// arrival per rank.
	type instanceSet struct {
		name string
		occ  [][]arrival // occ[k][rank]
	}
	byName := map[string]*instanceSet{}
	var names []string
	for rank, events := range perRank {
		// Occurrence pairing is positional, so each rank's stream must be
		// chronological. A merged capture (Collector, live multi-world
		// snapshots) concatenates runs in registration order; the stable
		// sort makes the table independent of that order.
		if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].T < events[j].T }) {
			events = append([]Event(nil), events...)
			sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
		}
		occCount := map[string]int{}
		prevEnd := ""
		for _, e := range events {
			switch e.Kind {
			case KindBegin:
				set := byName[e.Name]
				if set == nil {
					set = &instanceSet{name: e.Name}
					byName[e.Name] = set
					names = append(names, e.Name)
				}
				k := occCount[e.Name]
				occCount[e.Name] = k + 1
				for len(set.occ) <= k {
					set.occ = append(set.occ, make([]arrival, ranks))
				}
				set.occ[k][rank] = arrival{t: e.T, prevEnd: prevEnd, set: true}
			case KindEnd:
				prevEnd = e.Name
			}
		}
	}
	sort.Strings(names)

	report := &CriticalPathReport{Ranks: ranks}
	for _, name := range names {
		set := byName[name]
		pb := PhaseBlame{Name: name, BlamedCount: make([]int64, ranks)}
		delayed := map[string]int{}
		for _, arr := range set.occ {
			first, last := int64(math.MaxInt64), int64(math.MinInt64)
			blamed, n := -1, 0
			for r := ranks - 1; r >= 0; r-- {
				a := arr[r]
				if !a.set {
					continue
				}
				n++
				if a.t < first {
					first = a.t
				}
				// >= with the descending rank scan blames the lowest rank
				// on exact timestamp ties — deterministic either way.
				if a.t >= last {
					last, blamed = a.t, r
				}
			}
			if n < 2 {
				continue // a span one rank ran alone has no skew to blame
			}
			skew := last - first
			pb.Instances++
			pb.TotalSkewNs += skew
			pb.BlamedCount[blamed]++
			pb.SkewHist[telemetry.BucketOf(skew)]++
			if skew > pb.MaxSkewNs || pb.Instances == 1 {
				pb.MaxSkewNs, pb.MaxSkewRank = skew, blamed
			}
			if p := arr[blamed].prevEnd; p != "" {
				delayed[p]++
			}
		}
		if pb.Instances == 0 {
			continue
		}
		for dn, c := range delayed {
			pb.DelayedBy = append(pb.DelayedBy, DelaySpan{Name: dn, Count: c})
		}
		sort.Slice(pb.DelayedBy, func(i, j int) bool {
			a, b := pb.DelayedBy[i], pb.DelayedBy[j]
			if a.Count != b.Count {
				return a.Count > b.Count
			}
			return a.Name < b.Name
		})
		report.Phases = append(report.Phases, pb)
	}
	// Costliest skew first; name breaks ties so the table is stable.
	sort.SliceStable(report.Phases, func(i, j int) bool {
		a, b := report.Phases[i], report.Phases[j]
		if a.TotalSkewNs != b.TotalSkewNs {
			return a.TotalSkewNs > b.TotalSkewNs
		}
		return a.Name < b.Name
	})
	return report
}

// CriticalPath computes the blame table over the trace's current rings.
func (t *Trace) CriticalPath() *CriticalPathReport {
	if t == nil {
		return &CriticalPathReport{}
	}
	return CriticalPathEvents(t.capture().perRank)
}

// CriticalPathChrome computes the blame table from an exported Chrome
// timeline (as written by WriteChrome; gzip-transparent). Only B/E
// records participate — instants and counters carry no arrival info.
func CriticalPathChrome(data []byte) (*CriticalPathReport, error) {
	data, err := MaybeGunzip(data)
	if err != nil {
		return nil, err
	}
	kind, err := ValidateFile(data)
	if err != nil {
		return nil, err
	}
	if kind != FileChrome {
		return nil, fmt.Errorf("critical path needs a chrome timeline, got a %s file", kind)
	}
	doc, err := decodeChrome(data)
	if err != nil {
		return nil, err
	}
	maxTid := -1
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" && e.Tid > maxTid {
			maxTid = e.Tid
		}
	}
	perRank := make([][]Event, maxTid+1)
	for _, e := range doc.TraceEvents {
		if e.Tid < 0 || e.Tid > maxTid {
			continue
		}
		t := int64(e.Ts * 1e3) // µs back to ns
		switch e.Ph {
		case "B":
			perRank[e.Tid] = append(perRank[e.Tid], Event{T: t, Kind: KindBegin, Name: e.Name})
		case "E":
			perRank[e.Tid] = append(perRank[e.Tid], Event{T: t, Kind: KindEnd, Name: e.Name})
		}
	}
	return CriticalPathEvents(perRank), nil
}

// Format renders the blame table as the text `pumi-trace -critical`
// prints. The output is deterministic for a given report.
func (r *CriticalPathReport) Format(w io.Writer) {
	if r == nil || len(r.Phases) == 0 {
		fmt.Fprintln(w, "critical path: no multi-rank phases found")
		return
	}
	var instances int
	var total int64
	for _, p := range r.Phases {
		instances += p.Instances
		total += p.TotalSkewNs
	}
	fmt.Fprintf(w, "critical path: %d ranks, %d phases, %d instances, total arrival skew %v\n",
		r.Ranks, len(r.Phases), instances, time.Duration(total).Round(time.Microsecond))
	for _, p := range r.Phases {
		avg := time.Duration(0)
		if p.Instances > 0 {
			avg = time.Duration(p.TotalSkewNs / int64(p.Instances))
		}
		// The most-blamed rank, lowest rank on ties.
		worst, worstN := 0, int64(-1)
		for rk, c := range p.BlamedCount {
			if c > worstN {
				worst, worstN = rk, c
			}
		}
		fmt.Fprintf(w, "  %-28s n=%-5d total %-12v avg %-10v max %v (rank %d)  blames rank %d in %d/%d\n",
			p.Name, p.Instances,
			time.Duration(p.TotalSkewNs).Round(time.Microsecond),
			avg.Round(time.Microsecond),
			time.Duration(p.MaxSkewNs).Round(time.Microsecond), p.MaxSkewRank,
			worst, worstN, p.Instances)
		if len(p.DelayedBy) > 0 {
			parts := make([]string, 0, len(p.DelayedBy))
			for _, d := range p.DelayedBy {
				parts = append(parts, fmt.Sprintf("%s ×%d", d.Name, d.Count))
			}
			fmt.Fprintf(w, "    delayed by: %s\n", strings.Join(parts, ", "))
		}
		var hist []string
		for i, c := range p.SkewHist {
			if c != 0 {
				hist = append(hist, fmt.Sprintf("≤%v:%d", time.Duration(telemetry.BucketLE(i)), c))
			}
		}
		if len(hist) > 0 {
			fmt.Fprintf(w, "    skew histogram: %s\n", strings.Join(hist, " "))
		}
	}
}
