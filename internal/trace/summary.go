package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// SummarySchema identifies the metrics-summary JSON document.
const SummarySchema = "pumi-trace/summary/1"

// Summary is the aggregate view of a trace: where the time went per
// phase and how unevenly, who talked to whom and how much, and how the
// ParMA imbalance trajectory evolved. It is the machine-readable
// counterpart of the Chrome timeline, written alongside pumi-bench
// -json output.
type Summary struct {
	Schema  string `json:"schema"`
	Ranks   int    `json:"ranks"`
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped"`

	// Phases aggregates matched Begin/End spans by name across ranks.
	Phases []PhaseStat `json:"phases"`
	// Neighbors aggregates sends per (rank, peer) pair.
	Neighbors []NeighborStat `json:"neighbors,omitempty"`
	// Parma is the imbalance-vs-iteration series (taken from rank 0,
	// which observes the same allreduced imbalance as every rank).
	Parma []ParmaPoint `json:"parma,omitempty"`
}

// PhaseStat aggregates one span name across all ranks. Imbalance is
// max/avg of the per-rank totals — the paper's load-imbalance metric
// applied to time instead of element counts (1.0 = perfectly even).
type PhaseStat struct {
	Name       string  `json:"name"`
	Count      int64   `json:"count"`
	TotalSec   float64 `json:"total_sec"`
	MaxRankSec float64 `json:"max_rank_sec"`
	AvgRankSec float64 `json:"avg_rank_sec"`
	Imbalance  float64 `json:"imbalance"`
}

// NeighborStat aggregates the messages one rank delivered to one peer.
// Hist buckets message sizes by power of two: Hist[i] counts messages
// with 2^i <= bytes < 2^(i+1) (Hist[0] also counts empty payloads).
type NeighborStat struct {
	Rank       int      `json:"rank"`
	Peer       int      `json:"peer"`
	Msgs       int64    `json:"msgs"`
	Bytes      int64    `json:"bytes"`
	OnNodeMsgs int64    `json:"on_node_msgs"`
	Hist       []uint64 `json:"hist"`
}

// ParmaPoint is one balancing iteration's measured peak imbalance.
type ParmaPoint struct {
	Dim  int     `json:"dim"`
	Iter int     `json:"iter"`
	Imb  float64 `json:"imb"`
}

// histBucket maps a payload size to its power-of-two histogram bucket.
func histBucket(bytes int64) int {
	if bytes <= 1 {
		return 0
	}
	return 63 - bits.LeadingZeros64(uint64(bytes))
}

// Summarize computes the aggregate view of the trace.
func (t *Trace) Summarize() *Summary {
	if t == nil {
		return &Summary{Schema: SummarySchema}
	}
	return summarize(t.capture())
}

func summarize(c capture) *Summary {
	s := &Summary{Schema: SummarySchema, Ranks: len(c.perRank)}

	type phaseAcc struct {
		count   int64
		perRank []float64 // seconds per rank
	}
	phases := map[string]*phaseAcc{}
	type nbrKey struct{ rank, peer int }
	nbrs := map[nbrKey]*NeighborStat{}

	for rank, events := range c.perRank {
		s.Events += uint64(len(events))
		s.Dropped += c.dropped[rank]
		// Per-rank span stack; unmatched events at ring edges are
		// skipped, unclosed spans contribute nothing (their cost is
		// unknowable without an End).
		type open struct {
			name string
			t    int64
		}
		var stack []open
		for _, e := range events {
			switch e.Kind {
			case KindBegin:
				stack = append(stack, open{name: e.Name, t: e.T})
			case KindEnd:
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].name != e.Name {
						continue
					}
					acc := phases[e.Name]
					if acc == nil {
						acc = &phaseAcc{perRank: make([]float64, len(c.perRank))}
						phases[e.Name] = acc
					}
					acc.count++
					acc.perRank[rank] += float64(e.T-stack[i].t) / 1e9
					stack = stack[:i]
					break
				}
			case KindSend:
				k := nbrKey{rank: rank, peer: int(e.A)}
				ns := nbrs[k]
				if ns == nil {
					ns = &NeighborStat{Rank: rank, Peer: int(e.A), Hist: make([]uint64, 32)}
					nbrs[k] = ns
				}
				ns.Msgs++
				ns.Bytes += e.B
				if e.V != 0 {
					ns.OnNodeMsgs++
				}
				if b := histBucket(e.B); b < len(ns.Hist) {
					ns.Hist[b]++
				} else {
					ns.Hist[len(ns.Hist)-1]++
				}
			case KindParmaIter:
				if rank == 0 {
					s.Parma = append(s.Parma, ParmaPoint{Dim: int(e.A), Iter: int(e.B), Imb: e.V})
				}
			}
		}
	}

	for name, acc := range phases {
		ps := PhaseStat{Name: name, Count: acc.count}
		var active int
		for _, sec := range acc.perRank {
			ps.TotalSec += sec
			if sec > ps.MaxRankSec {
				ps.MaxRankSec = sec
			}
			active++
		}
		if active > 0 {
			ps.AvgRankSec = ps.TotalSec / float64(active)
		}
		if ps.AvgRankSec > 0 {
			ps.Imbalance = ps.MaxRankSec / ps.AvgRankSec
		}
		s.Phases = append(s.Phases, ps)
	}
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Name < s.Phases[j].Name })

	for _, ns := range nbrs {
		// Trim trailing empty histogram buckets for readable JSON.
		last := 0
		for i, v := range ns.Hist {
			if v != 0 {
				last = i
			}
		}
		ns.Hist = ns.Hist[:last+1]
		s.Neighbors = append(s.Neighbors, *ns)
	}
	sort.Slice(s.Neighbors, func(i, j int) bool {
		a, b := s.Neighbors[i], s.Neighbors[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Peer < b.Peer
	})
	return s
}

// WriteSummary writes the metrics summary as indented JSON.
func (t *Trace) WriteSummary(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: WriteSummary on nil trace")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Summarize())
}
