package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorderRoundTrip(t *testing.T) {
	tr := New(2, Config{Ring: 16})
	r0 := tr.Rank(0)
	r0.Begin("exchange")
	r0.Send(1, 256, true)
	r0.End("exchange")
	r0.Point("migrate.stage", 3)
	r0.ParmaIter(2, 1, 1.25)
	r0.Fault("delay", 7)
	tr.Rank(1).Begin("barrier")
	tr.Rank(1).End("barrier")

	ev := r0.Snapshot()
	if len(ev) != 6 {
		t.Fatalf("rank 0 retained %d events, want 6", len(ev))
	}
	wantKinds := []Kind{KindBegin, KindSend, KindEnd, KindPoint, KindParmaIter, KindFault}
	for i, e := range ev {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if i > 0 && e.T < ev[i-1].T {
			t.Errorf("event %d timestamp %d precedes event %d (%d)", i, e.T, i-1, ev[i-1].T)
		}
	}
	if s := ev[1]; s.A != 1 || s.B != 256 || s.V != 1 {
		t.Errorf("send event = %+v, want peer 1, 256 bytes, on-node", s)
	}
	if p := ev[4]; p.A != 2 || p.B != 1 || p.V != 1.25 {
		t.Errorf("parma event = %+v, want dim 2, iter 1, imb 1.25", p)
	}
	if d := r0.Dropped(); d != 0 {
		t.Errorf("Dropped() = %d, want 0", d)
	}
}

func TestRingWrapKeepsRecent(t *testing.T) {
	tr := New(1, Config{Ring: 4})
	r := tr.Rank(0)
	for i := 0; i < 10; i++ {
		r.Point("tick", int64(i))
	}
	ev := r.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.A != want {
			t.Errorf("retained event %d is tick %d, want %d (oldest must be dropped)", i, e.A, want)
		}
	}
	if d := r.Dropped(); d != 6 {
		t.Errorf("Dropped() = %d, want 6", d)
	}
	if tail := r.Tail(2); len(tail) != 2 || tail[1].A != 9 {
		t.Errorf("Tail(2) = %v, want ticks 8,9", tail)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Ranks() != 0 {
		t.Error("nil Trace.Ranks() != 0")
	}
	r := tr.Rank(0)
	if r != nil {
		t.Fatal("nil Trace.Rank(0) should be nil")
	}
	// Every emit and read must be a no-op, not a crash.
	r.Begin("x")
	r.BeginArgs("x", 1, 2, 3)
	r.End("x")
	r.Point("x", 1)
	r.Send(0, 0, false)
	r.ParmaIter(0, 0, 0)
	r.Fault("x", 1)
	r.Attach("x", nil)
	if r.Snapshot() != nil || r.Tail(4) != nil || r.Dropped() != 0 {
		t.Error("nil Recorder reads should be empty")
	}
	if tr.TailStrings(4) != nil {
		t.Error("nil Trace.TailStrings should be nil")
	}
}

func TestChromeExportValidates(t *testing.T) {
	tr := New(2, Config{})
	for rank := 0; rank < 2; rank++ {
		r := tr.Rank(rank)
		r.Begin("parma.iter")
		r.Begin("exchange")
		r.Send(1-rank, 128, rank == 0)
		r.End("exchange")
		r.ParmaIter(2, 0, 1.5)
		r.End("parma.iter")
	}
	// An unclosed span (run died mid-op) must get a synthesized End.
	tr.Rank(1).Begin("allreduce")

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	kind, err := ValidateFile(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted chrome trace fails validation: %v\n%s", err, buf.String())
	}
	if kind != FileChrome {
		t.Fatalf("ValidateFile kind = %v, want chrome", kind)
	}
	for _, want := range []string{`"thread_name"`, `"parma.imbalance"`, `"ph":"C"`, `"peer"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("chrome export missing %s", want)
		}
	}
}

func TestChromeOrphanEndSkipped(t *testing.T) {
	// A wrapped ring can retain an End whose Begin was overwritten; the
	// exporter must drop it rather than emit an unbalanced E record.
	tr := New(1, Config{Ring: 4})
	r := tr.Rank(0)
	r.Begin("lost")
	for i := 0; i < 4; i++ {
		r.Point("fill", int64(i))
	}
	r.End("lost")
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(buf.Bytes()); err != nil {
		t.Fatalf("orphan-End trace fails validation: %v", err)
	}
	if strings.Contains(buf.String(), `"lost"`) {
		t.Error("orphan End for overwritten Begin should not be exported")
	}
}

func TestSummaryStats(t *testing.T) {
	tr := New(2, Config{})
	r0, r1 := tr.Rank(0), tr.Rank(1)
	r0.Begin("exchange")
	r0.Send(1, 100, true)
	r0.Send(1, 300, false)
	r0.End("exchange")
	r1.Begin("exchange")
	r1.Send(0, 8, true)
	r1.End("exchange")
	r0.ParmaIter(2, 0, 1.8)
	r0.ParmaIter(2, 1, 1.2)
	r1.ParmaIter(2, 0, 1.8) // only rank 0's series is reported

	s := tr.Summarize()
	if s.Schema != SummarySchema || s.Ranks != 2 {
		t.Fatalf("summary header = %q/%d", s.Schema, s.Ranks)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "exchange" || s.Phases[0].Count != 2 {
		t.Fatalf("phases = %+v, want one exchange phase with count 2", s.Phases)
	}
	ph := s.Phases[0]
	if ph.MaxRankSec < ph.AvgRankSec || ph.Imbalance < 1 {
		t.Errorf("phase stats inconsistent: %+v", ph)
	}
	if len(s.Neighbors) != 2 {
		t.Fatalf("neighbors = %+v, want 2 pairs", s.Neighbors)
	}
	n01 := s.Neighbors[0]
	if n01.Rank != 0 || n01.Peer != 1 || n01.Msgs != 2 || n01.Bytes != 400 || n01.OnNodeMsgs != 1 {
		t.Errorf("pair 0->1 = %+v", n01)
	}
	var hist uint64
	for _, v := range n01.Hist {
		hist += v
	}
	if hist != 2 {
		t.Errorf("pair 0->1 histogram sums to %d, want 2", hist)
	}
	if len(s.Parma) != 2 || s.Parma[0].Imb != 1.8 || s.Parma[1].Iter != 1 {
		t.Errorf("parma series = %+v, want rank 0's two points", s.Parma)
	}

	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if kind, err := ValidateFile(buf.Bytes()); err != nil || kind != FileSummary {
		t.Fatalf("emitted summary fails validation: kind=%v err=%v", kind, err)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "pumi",
		"no schema":     `{"x":1}`,
		"wrong schema":  `{"schema":"pumi-bench/json/1"}`,
		"wrong chrome":  `{"traceEvents":[],"otherData":{"schema":"nope/9"}}`,
		"bad nesting":   `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},{"name":"b","ph":"E","ts":2,"pid":0,"tid":0}],"otherData":{"schema":"` + ChromeSchema + `"}}`,
		"unclosed span": `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}],"otherData":{"schema":"` + ChromeSchema + `"}}`,
		"bad neighbor":  `{"schema":"` + SummarySchema + `","ranks":2,"neighbors":[{"rank":0,"peer":5,"msgs":1,"bytes":1,"hist":[1]}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateFile([]byte(data)); err == nil {
			t.Errorf("%s: ValidateFile accepted %q", name, data)
		}
	}
}

func TestCollectorMergesRuns(t *testing.T) {
	col := NewCollector(Config{Ring: 64})
	for run := 0; run < 3; run++ {
		tr := New(2, col.Config())
		for rank := 0; rank < 2; rank++ {
			tr.Rank(rank).Begin("exchange")
			tr.Rank(rank).End("exchange")
		}
		col.Add(tr)
	}
	col.Add(nil) // failed run with no trace: ignored
	if col.Runs() != 3 {
		t.Fatalf("Runs() = %d, want 3", col.Runs())
	}
	s := col.Summarize()
	if s.Ranks != 2 || len(s.Phases) != 1 || s.Phases[0].Count != 6 {
		t.Fatalf("merged summary = ranks %d phases %+v, want 2 ranks, 6 exchange spans", s.Ranks, s.Phases)
	}
	var buf bytes.Buffer
	if err := col.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(buf.Bytes()); err != nil {
		t.Fatalf("merged chrome trace fails validation: %v", err)
	}
}

func TestTailStringsNameEvents(t *testing.T) {
	tr := New(2, Config{})
	tr.Rank(0).Begin("allreduce")
	tr.Rank(1).Send(0, 42, false)
	lines := tr.TailStrings(4)
	if len(lines) != 2 {
		t.Fatalf("TailStrings returned %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "allreduce") {
		t.Errorf("rank 0 tail %q does not name the collective", lines[0])
	}
	if !strings.Contains(lines[1], "send->0") || !strings.Contains(lines[1], "42B") {
		t.Errorf("rank 1 tail %q does not describe the send", lines[1])
	}
}

// TestEmitZeroAlloc pins the recording hot path: once the ring exists,
// every emit — spans, sends, ParMA points, fault marks — is a ring
// store under a mutex and must not allocate. This is the property that
// lets tracing stay on during the pcu alloc-regression tests.
func TestEmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	tr := New(1, Config{Ring: 128})
	r := tr.Rank(0)
	if avg := testing.AllocsPerRun(200, func() {
		r.Begin("exchange")
		r.Send(0, 4096, true)
		r.Send(0, 4096, false)
		r.ParmaIter(2, 1, 1.05)
		r.Fault("delay", 3)
		r.End("exchange")
	}); avg != 0 {
		t.Errorf("emit cycle: %.1f allocs/op, want 0", avg)
	}
}
