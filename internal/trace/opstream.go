package trace

import (
	"encoding/json"
	"fmt"
)

// OpStreams extracts each rank's blocking-op stream from a Chrome
// trace-event export (WriteChrome), for offline protocol-conformance
// replay (pumi-trace -conform). A span begin (ph "B") whose name is in
// ops appends that op to the rank's stream; an instant event (ph "i")
// named marker is an epoch boundary — each rank's second and later
// markers append markerOp, so a supervised run's shrink transitions
// appear in the stream exactly where the online monitor saw them.
// Event order in the export is chronological per rank (recorders stamp
// a shared monotonic epoch and the writer sorts stably), so the
// extracted streams replay in recording order.
func OpStreams(data []byte, ops []string, marker, markerOp string) (map[int][]string, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: parse chrome export: %w", err)
	}
	if doc.OtherData["schema"] != ChromeSchema {
		return nil, fmt.Errorf("trace: chrome export schema %q, want %q", doc.OtherData["schema"], ChromeSchema)
	}
	opSet := make(map[string]bool, len(ops))
	for _, op := range ops {
		opSet[op] = true
	}
	streams := map[int][]string{}
	markers := map[int]int{}
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "B" && opSet[e.Name]:
			streams[e.Tid] = append(streams[e.Tid], e.Name)
		case e.Ph == "i" && e.Name == marker:
			markers[e.Tid]++
			if markers[e.Tid] > 1 {
				streams[e.Tid] = append(streams[e.Tid], markerOp)
			}
		}
	}
	return streams, nil
}
