//go:build race

package trace

// raceEnabled gates the allocation-regression test: the race detector's
// instrumentation changes allocation behavior, so counts are only
// meaningful in the plain test lane.
const raceEnabled = true
