// Package trace is the flight recorder of the parallel runtime: every
// rank of a traced run records typed events — operation spans, sends
// with peer and byte counts, migration stages, ParMA iterations with
// their imbalance numbers — into a fixed-size ring buffer. Recording is
// allocation-free in the steady state (the ring is allocated once, all
// event fields are fixed-size, and names are interned strings), so
// tracing can stay on during benchmarks without perturbing the
// allocation behavior the repo's AllocsPerRun tests pin.
//
// When the ring fills, the oldest events are overwritten and counted as
// dropped: the recorder keeps the recent past, like an aircraft flight
// recorder, which is exactly what a stall or crash report needs. Two
// export views exist: a Chrome trace-event timeline (one track per
// rank, loadable in Perfetto or chrome://tracing) and a metrics summary
// (per-phase max/avg/imbalance across ranks, per-neighbor message
// volumes, the ParMA imbalance-vs-iteration series).
//
// All Recorder methods are nil-safe: call sites instrument
// unconditionally with c.Trace().Begin(...) and pay a single branch
// when tracing is off.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// epoch is the process-wide time origin: all event timestamps are
// nanoseconds since it, so traces from successive runs in one process
// merge onto one timeline.
var epoch = time.Now()

// now returns nanoseconds since the process trace epoch (monotonic).
func now() int64 { return int64(time.Since(epoch)) }

// Kind classifies one event record.
type Kind uint8

const (
	// KindBegin opens a named span (operation, phase, protocol stage).
	KindBegin Kind = 1 + iota
	// KindEnd closes the innermost open span with the same name.
	KindEnd
	// KindPoint is a named instant with one integer argument.
	KindPoint
	// KindSend is one delivered payload: A is the peer rank, B the byte
	// count, V is 1 for on-node (by-reference) delivery and 0 for
	// off-node (framed copy).
	KindSend
	// KindParmaIter is one ParMA balancing iteration: A is the entity
	// dimension, B the iteration index, V the peak imbalance.
	KindParmaIter
	// KindFault is an injected fault firing: Name is the fault kind, A
	// the 1-based op index it struck at.
	KindFault
	// KindBlob is an attached annotation payload (Blob holds the bytes
	// by reference; see Recorder.Attach for the aliasing contract).
	KindBlob
)

var kindNames = [...]string{
	KindBegin:     "begin",
	KindEnd:       "end",
	KindPoint:     "point",
	KindSend:      "send",
	KindParmaIter: "parma-iter",
	KindFault:     "fault",
	KindBlob:      "blob",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one fixed-size flight-recorder record. T is nanoseconds
// since the process trace epoch; the meaning of Name, A, B and V
// depends on Kind.
type Event struct {
	T    int64
	Kind Kind
	Name string
	A, B int64
	V    float64
	Blob []byte
}

// String renders the event for stall reports and pumi-trace dumps.
func (e Event) String() string {
	at := time.Duration(e.T).Round(time.Microsecond)
	switch e.Kind {
	case KindBegin:
		return fmt.Sprintf("%v %s{", at, e.Name)
	case KindEnd:
		return fmt.Sprintf("%v }%s", at, e.Name)
	case KindPoint:
		return fmt.Sprintf("%v %s(%d)", at, e.Name, e.A)
	case KindSend:
		class := "off-node"
		if e.V != 0 {
			class = "on-node"
		}
		return fmt.Sprintf("%v send->%d %dB %s", at, e.A, e.B, class)
	case KindParmaIter:
		return fmt.Sprintf("%v parma dim %d iter %d imb %.4f", at, e.A, e.B, e.V)
	case KindFault:
		return fmt.Sprintf("%v fault %s at op %d", at, e.Name, e.A)
	case KindBlob:
		return fmt.Sprintf("%v blob %s (%d bytes)", at, e.Name, len(e.Blob))
	}
	return fmt.Sprintf("%v ?%d", at, e.Kind)
}

// Config sizes the flight recorder.
type Config struct {
	// Ring is the per-rank ring capacity in events, rounded up to a
	// power of two. Zero selects DefaultRing. The ring is allocated once
	// at New; steady-state recording never grows it.
	Ring int
}

// DefaultRing is the per-rank ring capacity when Config leaves Ring
// zero: at roughly 80 bytes per event this is ~1.3 MB for a 4-rank run,
// and deep enough to hold several balancing iterations of history.
const DefaultRing = 4096

// Trace is the flight recorder of one parallel run: one Recorder per
// rank, all sharing the process trace epoch.
type Trace struct {
	cfg  Config
	recs []Recorder
}

// New creates a recorder set for ranks ranks. The rings are allocated
// here, once; recording is allocation-free afterwards.
func New(ranks int, cfg Config) *Trace {
	n := cfg.Ring
	if n <= 0 {
		n = DefaultRing
	}
	// Round up to a power of two so the ring index is a mask.
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Trace{cfg: cfg, recs: make([]Recorder, ranks)}
	for i := range t.recs {
		t.recs[i].rank = i
		t.recs[i].ring = make([]Event, size)
	}
	return t
}

// Ranks returns the number of per-rank recorders (0 on a nil Trace).
func (t *Trace) Ranks() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

// Rank returns rank r's recorder, or nil when t is nil — so a run can
// hand every rank a recorder unconditionally.
func (t *Trace) Rank(r int) *Recorder {
	if t == nil {
		return nil
	}
	return &t.recs[r]
}

// Recorder is one rank's flight recorder. Events are written by the
// rank's own goroutine; the mutex exists so a watchdog or exporter on
// another goroutine can snapshot the ring mid-run (an uncontended
// mutex keeps the hot path allocation- and syscall-free).
type Recorder struct {
	mu   sync.Mutex
	rank int
	ring []Event
	head uint64 // total events emitted; ring slot = head & (len-1)

	// Recorders live side by side in Trace.recs and every emit writes mu
	// and head, so without padding adjacent ranks would false-share cache
	// lines and serialize each other's hot paths. Two cache lines of pad
	// also defeats the adjacent-line prefetcher.
	_ [128 - 48]byte
}

// emit appends one event, overwriting the oldest when the ring is full.
func (r *Recorder) emit(e Event) {
	if r == nil {
		return
	}
	e.T = now()
	r.mu.Lock()
	r.ring[r.head&uint64(len(r.ring)-1)] = e
	r.head++
	r.mu.Unlock()
}

// Begin opens a named span. Names must be interned (package-level
// strings or literals) to keep recording allocation-free.
func (r *Recorder) Begin(name string) { r.emit(Event{Kind: KindBegin, Name: name}) }

// BeginArgs opens a named span carrying two integer arguments and a
// float (rendered as span args in the Chrome export).
func (r *Recorder) BeginArgs(name string, a, b int64, v float64) {
	r.emit(Event{Kind: KindBegin, Name: name, A: a, B: b, V: v})
}

// End closes the innermost open span with the same name.
func (r *Recorder) End(name string) { r.emit(Event{Kind: KindEnd, Name: name}) }

// Point records a named instant with one integer argument.
func (r *Recorder) Point(name string, a int64) { r.emit(Event{Kind: KindPoint, Name: name, A: a}) }

// Send records one delivered payload to peer of the given size.
func (r *Recorder) Send(peer, bytes int, onNode bool) {
	v := 0.0
	if onNode {
		v = 1
	}
	r.emit(Event{Kind: KindSend, Name: "send", A: int64(peer), B: int64(bytes), V: v})
}

// ParmaIter records one balancing iteration of entity dimension dim
// with its measured peak imbalance.
func (r *Recorder) ParmaIter(dim, iter int, imb float64) {
	r.emit(Event{Kind: KindParmaIter, Name: "parma.iter", A: int64(dim), B: int64(iter), V: imb})
}

// Fault records an injected fault of the named kind striking at the
// given 1-based op index.
func (r *Recorder) Fault(kind string, op int64) {
	r.emit(Event{Kind: KindFault, Name: kind, A: op})
}

// Attach records an annotation payload by reference: the ring retains
// blob without copying, so blob must remain valid for the lifetime of
// the trace. Never pass a slice aliasing a pooled message
// (Reader.BytesNoCopy/BytesVal) — its bytes are recycled at
// Reader.Done and the timeline would show a later phase's data; copy
// with Reader.Bytes first. pumi-vet's bufdiscipline check enforces
// this.
func (r *Recorder) Attach(name string, blob []byte) {
	r.emit(Event{Kind: KindBlob, Name: name, Blob: blob})
}

// Dropped returns how many events were overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped()
}

func (r *Recorder) dropped() uint64 {
	if r.head > uint64(len(r.ring)) {
		return r.head - uint64(len(r.ring))
	}
	return 0
}

// Snapshot returns a chronological copy of the retained events.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.head
	size := uint64(len(r.ring))
	first := uint64(0)
	if n > size {
		first = n - size
	}
	out := make([]Event, 0, n-first)
	for i := first; i < n; i++ {
		out = append(out, r.ring[i&(size-1)])
	}
	return out
}

// Tail returns a chronological copy of the last n retained events —
// the timeline fragment stall and chaos reports attach.
func (r *Recorder) Tail(n int) []Event {
	ev := r.Snapshot()
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	return ev
}

// TailStrings renders the last n events of every rank, one line per
// rank, for plain-text failure reports.
func (t *Trace) TailStrings(n int) []string {
	if t == nil {
		return nil
	}
	out := make([]string, 0, len(t.recs))
	for i := range t.recs {
		ev := t.recs[i].Tail(n)
		parts := make([]string, len(ev))
		for j, e := range ev {
			parts[j] = e.String()
		}
		out = append(out, fmt.Sprintf("rank %d: %s", i, strings.Join(parts, " | ")))
	}
	return out
}

// capture is the exporter-facing view of one or more runs: events per
// rank in chronological order plus per-rank drop counts.
type capture struct {
	perRank [][]Event
	dropped []uint64
}

func (t *Trace) capture() capture {
	c := capture{
		perRank: make([][]Event, len(t.recs)),
		dropped: make([]uint64, len(t.recs)),
	}
	for i := range t.recs {
		c.perRank[i] = t.recs[i].Snapshot()
		c.dropped[i] = t.recs[i].Dropped()
	}
	return c
}
