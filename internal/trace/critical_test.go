package trace

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

// ev builds one event with a fixed timestamp (tests never go through
// emit, which would stamp wall-clock time).
func ev(t int64, k Kind, name string) Event { return Event{T: t, Kind: k, Name: name} }

func TestCriticalPathEvents(t *testing.T) {
	// Two exchange instances, rank 2 late in both, delayed by "compute".
	perRank := [][]Event{
		{ev(0, KindBegin, "compute"), ev(100, KindEnd, "compute"), ev(100, KindBegin, "x"), ev(300, KindEnd, "x"),
			ev(300, KindBegin, "x"), ev(500, KindEnd, "x")},
		{ev(0, KindBegin, "compute"), ev(120, KindEnd, "compute"), ev(120, KindBegin, "x"), ev(300, KindEnd, "x"),
			ev(310, KindBegin, "x"), ev(500, KindEnd, "x")},
		{ev(0, KindBegin, "compute"), ev(250, KindEnd, "compute"), ev(250, KindBegin, "x"), ev(300, KindEnd, "x"),
			ev(400, KindBegin, "x"), ev(500, KindEnd, "x")},
	}
	r := CriticalPathEvents(perRank)
	if r.Ranks != 3 {
		t.Fatalf("ranks = %d", r.Ranks)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %d, want 2 (x and compute)", len(r.Phases))
	}
	x := r.Phases[0]
	if x.Name != "x" {
		t.Fatalf("costliest phase = %q, want x", x.Name)
	}
	if x.Instances != 2 {
		t.Fatalf("x instances = %d", x.Instances)
	}
	// Instance 0 skew 250-100=150, instance 1 skew 400-300=100.
	if x.TotalSkewNs != 250 || x.MaxSkewNs != 150 || x.MaxSkewRank != 2 {
		t.Fatalf("x skew total=%d max=%d rank=%d", x.TotalSkewNs, x.MaxSkewNs, x.MaxSkewRank)
	}
	if x.BlamedCount[2] != 2 {
		t.Fatalf("x blamed counts %v, want rank 2 twice", x.BlamedCount)
	}
	// Instance 0's straggler last closed "compute"; instance 1's last
	// closed the previous "x". Sorted count-desc then name-asc.
	want := []DelaySpan{{Name: "compute", Count: 1}, {Name: "x", Count: 1}}
	if len(x.DelayedBy) != 2 || x.DelayedBy[0] != want[0] || x.DelayedBy[1] != want[1] {
		t.Fatalf("x delayed-by %v, want %v", x.DelayedBy, want)
	}
}

func TestCriticalPathSingleRankPhasesIgnored(t *testing.T) {
	perRank := [][]Event{
		{ev(0, KindBegin, "solo"), ev(10, KindEnd, "solo")},
		{},
	}
	r := CriticalPathEvents(perRank)
	if len(r.Phases) != 0 {
		t.Fatalf("single-rank span produced blame: %+v", r.Phases)
	}
	var nilT *Trace
	if got := nilT.CriticalPath(); len(got.Phases) != 0 {
		t.Fatal("nil trace critical path not empty")
	}
}

// The blame table must not depend on the order worlds were registered
// or shards merged: concatenating two sequential runs' per-rank streams
// in either order must yield byte-identical tables (the analyzer
// re-sorts each stream by timestamp), and repeated runs must render
// identically despite Go's randomized map iteration.
func TestCriticalPathDeterminism(t *testing.T) {
	// Run 1 occupies t=0..100, run 2 t=1000..1100; distinct phase mixes
	// so name discovery order differs between merge orders.
	run1 := func(rank int, late int64) []Event {
		return []Event{
			ev(0, KindBegin, "zz.exchange"), ev(40+late, KindEnd, "zz.exchange"),
			ev(40+late, KindBegin, "aa.reduce"), ev(90+late, KindEnd, "aa.reduce"),
		}
	}
	run2 := func(rank int, late int64) []Event {
		return []Event{
			ev(1000, KindBegin, "aa.reduce"), ev(1030+late, KindEnd, "aa.reduce"),
			ev(1030+late, KindBegin, "mm.migrate"), ev(1090+late, KindEnd, "mm.migrate"),
		}
	}
	lates := []int64{0, 7, 23, 3}
	build := func(firstRun, secondRun func(int, int64) []Event) [][]Event {
		perRank := make([][]Event, len(lates))
		for r, late := range lates {
			perRank[r] = append(append([]Event{}, firstRun(r, late)...), secondRun(r, late)...)
		}
		return perRank
	}
	var first string
	for i := 0; i < 50; i++ {
		var perRank [][]Event
		if i%2 == 0 {
			perRank = build(run1, run2)
		} else {
			perRank = build(run2, run1) // registration order swapped
		}
		var buf bytes.Buffer
		CriticalPathEvents(perRank).Format(&buf)
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("iteration %d rendered differently:\n%s\nvs\n%s", i, buf.String(), first)
		}
	}
}

func TestCriticalPathChromeFixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "critical_fixture.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(data); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	r, err := CriticalPathChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	golden, err := os.ReadFile(filepath.Join("testdata", "critical_fixture.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Fatalf("blame table drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), golden)
	}

	// The gzipped fixture must yield the identical table (gzip-transparent
	// readers are the satellite contract).
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if kind, err := ValidateFile(gz.Bytes()); err != nil || kind != FileChrome {
		t.Fatalf("gzipped fixture: kind=%v err=%v", kind, err)
	}
	rz, err := CriticalPathChrome(gz.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	rz.Format(&buf2)
	if buf2.String() != buf.String() {
		t.Fatal("gzipped fixture rendered a different table")
	}
}

func TestMaybeGunzip(t *testing.T) {
	plain := []byte(`{"k":1}`)
	out, err := MaybeGunzip(plain)
	if err != nil || !bytes.Equal(out, plain) {
		t.Fatalf("passthrough broken: %v %s", err, out)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(plain)
	zw.Close()
	out, err = MaybeGunzip(gz.Bytes())
	if err != nil || !bytes.Equal(out, plain) {
		t.Fatalf("gunzip broken: %v %s", err, out)
	}
	if _, err := MaybeGunzip([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
}
