package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeSchema identifies the Chrome trace-event export of this
// package (stored under otherData.schema, since the top-level format is
// fixed by the trace-event spec).
const ChromeSchema = "pumi-trace/chrome/1"

// chromeDoc is the JSON-object form of the Chrome trace-event format:
// loadable by Perfetto and chrome://tracing.
type chromeDoc struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// chromeEvent is one trace-event record. Ts and Dur are microseconds
// (the unit the format fixes); Pid groups the run, Tid is the rank so
// each rank renders as its own track.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(t int64) float64 { return float64(t) / 1e3 }

// WriteChrome writes the trace as Chrome trace-event JSON: one thread
// track per rank, spans for Begin/End pairs, instants for sends,
// points and faults, and a counter track for the ParMA imbalance
// series. Open the file at https://ui.perfetto.dev or chrome://tracing.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: WriteChrome on nil trace")
	}
	return writeChrome(w, t.capture())
}

// WriteChromeMerged writes the merged timeline of several traces as one
// Chrome trace-event document — the live /trace endpoint's view over
// every active world. Nil traces are skipped; rank r of every trace
// lands on track r (all recorders share the process epoch, so the
// timelines interleave correctly).
func WriteChromeMerged(w io.Writer, traces []*Trace) error {
	ranks := 0
	for _, t := range traces {
		if t.Ranks() > ranks {
			ranks = t.Ranks()
		}
	}
	merged := capture{perRank: make([][]Event, ranks), dropped: make([]uint64, ranks)}
	for _, t := range traces {
		if t == nil {
			continue
		}
		tc := t.capture()
		for r := range tc.perRank {
			merged.perRank[r] = append(merged.perRank[r], tc.perRank[r]...)
			merged.dropped[r] += tc.dropped[r]
		}
	}
	return writeChrome(w, merged)
}

func writeChrome(w io.Writer, c capture) error {
	doc := chromeDoc{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"schema": ChromeSchema},
	}
	var lastT int64
	for rank, events := range c.perRank {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
		// Span matching: a ring that wrapped may retain an End without
		// its Begin (dropped off the head) — skip those — and the run may
		// have died inside a span, leaving a Begin without its End —
		// close those at the last timestamp seen so Perfetto still
		// renders them.
		type open struct {
			e   Event
			idx int // index into doc.TraceEvents of the emitted B record
		}
		var stack []open
		depth := func(name string) int {
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].e.Name == name {
					return i
				}
			}
			return -1
		}
		for _, e := range events {
			if e.T > lastT {
				lastT = e.T
			}
			switch e.Kind {
			case KindBegin:
				ce := chromeEvent{Name: e.Name, Ph: "B", Ts: usec(e.T), Pid: 0, Tid: rank}
				if e.A != 0 || e.B != 0 || e.V != 0 {
					ce.Args = map[string]any{"a": e.A, "b": e.B, "v": e.V}
				}
				stack = append(stack, open{e: e, idx: len(doc.TraceEvents)})
				doc.TraceEvents = append(doc.TraceEvents, ce)
			case KindEnd:
				i := depth(e.Name)
				if i < 0 {
					continue // orphan End: its Begin was overwritten by ring wrap
				}
				// Close anything opened after it first (the B was
				// overwritten mid-span or the span was abandoned by a
				// panic unwind) so the B/E nesting stays well-formed.
				for j := len(stack) - 1; j >= i; j-- {
					doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
						Name: stack[j].e.Name, Ph: "E", Ts: usec(e.T), Pid: 0, Tid: rank,
					})
				}
				stack = stack[:i]
			case KindPoint:
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: e.Name, Ph: "i", Ts: usec(e.T), Pid: 0, Tid: rank, S: "t",
					Args: map[string]any{"value": e.A},
				})
			case KindSend:
				onNode := e.V != 0
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "send", Ph: "i", Ts: usec(e.T), Pid: 0, Tid: rank, S: "t",
					Args: map[string]any{"peer": e.A, "bytes": e.B, "on_node": onNode},
				})
			case KindParmaIter:
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "parma.imbalance", Ph: "C", Ts: usec(e.T), Pid: 0, Tid: rank,
					Args: map[string]any{"imb": e.V},
				})
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "parma.iter", Ph: "i", Ts: usec(e.T), Pid: 0, Tid: rank, S: "t",
					Args: map[string]any{"dim": e.A, "iter": e.B, "imb": e.V},
				})
			case KindFault:
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: "fault:" + e.Name, Ph: "i", Ts: usec(e.T), Pid: 0, Tid: rank, S: "t",
					Args: map[string]any{"op": e.A},
				})
			case KindBlob:
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: e.Name, Ph: "i", Ts: usec(e.T), Pid: 0, Tid: rank, S: "t",
					Args: map[string]any{"blob": string(e.Blob)},
				})
			}
		}
		// Synthesize Ends for spans the run never closed.
		for j := len(stack) - 1; j >= 0; j-- {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: stack[j].e.Name, Ph: "E", Ts: usec(lastT), Pid: 0, Tid: rank,
			})
		}
		if d := c.dropped[rank]; d > 0 {
			doc.OtherData[fmt.Sprintf("dropped_rank_%d", rank)] = fmt.Sprint(d)
		}
	}
	// The trace-event spec wants records sorted by timestamp; a stable
	// sort keeps the B-before-E order of zero-length spans.
	sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
		return doc.TraceEvents[i].Ts < doc.TraceEvents[j].Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
