package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// Collector accumulates the traces of sequential runs in one process —
// the way pumi-bench and pumi-part repeat pcu.RunOpt — and exports them
// as one timeline. All recorders share the process trace epoch, so the
// runs land side by side in chronological order; rank r of every run
// maps to track r.
//
// A Collector is installed process-wide via pcu.SetDefaultTrace: every
// subsequent run without an explicit Options.Trace records into a fresh
// Trace drawn from the collector's Config and adds it here when the run
// ends (normally or not).
type Collector struct {
	mu     sync.Mutex
	cfg    Config
	traces []*Trace
}

// NewCollector creates a collector whose runs record with cfg.
func NewCollector(cfg Config) *Collector { return &Collector{cfg: cfg} }

// Config returns the recording configuration for new runs.
func (c *Collector) Config() Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

// Add appends one finished (or failed) run's trace.
func (c *Collector) Add(t *Trace) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	c.traces = append(c.traces, t)
	c.mu.Unlock()
}

// Runs returns how many traces have been collected.
func (c *Collector) Runs() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// capture merges the collected runs: rank r's events from every run,
// concatenated in collection order (runs are sequential, so this is
// chronological — all recorders stamp time against the same epoch).
func (c *Collector) capture() capture {
	c.mu.Lock()
	traces := append([]*Trace(nil), c.traces...)
	c.mu.Unlock()
	ranks := 0
	for _, t := range traces {
		if t.Ranks() > ranks {
			ranks = t.Ranks()
		}
	}
	merged := capture{perRank: make([][]Event, ranks), dropped: make([]uint64, ranks)}
	for _, t := range traces {
		tc := t.capture()
		for r := range tc.perRank {
			merged.perRank[r] = append(merged.perRank[r], tc.perRank[r]...)
			merged.dropped[r] += tc.dropped[r]
		}
	}
	return merged
}

// WriteChrome writes the merged timeline of every collected run as
// Chrome trace-event JSON.
func (c *Collector) WriteChrome(w io.Writer) error {
	return writeChrome(w, c.capture())
}

// Summarize computes the aggregate view over every collected run.
func (c *Collector) Summarize() *Summary {
	return summarize(c.capture())
}

// WriteSummary writes the merged metrics summary as indented JSON.
func (c *Collector) WriteSummary(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Summarize())
}
