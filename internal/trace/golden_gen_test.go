package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate the committed blame-table golden after a deliberate
// change to the Format layout or the fixture:
//
//	PUMI_REGEN_GOLDEN=1 go test ./internal/trace -run TestRegenCriticalGolden
func TestRegenCriticalGolden(t *testing.T) {
	if os.Getenv("PUMI_REGEN_GOLDEN") == "" {
		t.Skip("set PUMI_REGEN_GOLDEN=1 to rewrite testdata/critical_fixture.golden")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "critical_fixture.json"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := CriticalPathChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if err := os.WriteFile(filepath.Join("testdata", "critical_fixture.golden"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d bytes", buf.Len())
}
