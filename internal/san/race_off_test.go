//go:build !race

package san

const raceEnabled = false
