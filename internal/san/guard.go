package san

import (
	"fmt"
	"sync"
)

// OwnershipError reports an illegal mesh entity write: either a
// non-owner mutating a shared/ghost entity (Kind "owner") or a second
// goroutine mutating a goroutine-confined mesh (Kind "confinement").
// GID is the writing goroutine; OwnerGID is the goroutine that owns the
// mesh (first writer), so the offending pair is named in both kinds.
type OwnershipError struct {
	Kind          string // "owner" or "confinement"
	Op            string // mutator that fired: "coord", "classify", "flag", "tag", ...
	Ent           string // entity being written
	GID, OwnerGID int64
}

func (e *OwnershipError) Error() string {
	if e.Kind == "confinement" {
		return fmt.Sprintf(
			"pumi-san: mesh written by two goroutines: %s of %s on goroutine %d, but the mesh is confined to goroutine %d",
			e.Op, e.Ent, e.GID, e.OwnerGID)
	}
	return fmt.Sprintf(
		"pumi-san: non-owner write: %s of shared entity %s on goroutine %d (mesh goroutine %d); only the owning part may mutate a shared or ghost entity",
		e.Op, e.Ent, e.GID, e.OwnerGID)
}

// Is makes errors.Is(err, ErrOwnership) match.
func (e *OwnershipError) Is(target error) bool { return target == ErrOwnership }

// MeshGuard is the per-mesh shadow state behind the owner-only write
// check. It satisfies the mesh package's Guard interface structurally
// (this package cannot import mesh: mesh imports pcu, pcu imports san).
//
// Confinement: the first guarded write pins the mesh to its goroutine;
// any later write from a different goroutine panics with a
// *OwnershipError naming both goroutine ids. Ownership: a write to a
// shared or ghost entity this part does not own panics unless it
// happens inside a Suspend window — the sanctioned exceptions are the
// protocol steps that apply a remote owner's data (migration unpack and
// restitch, owner-to-copy tag synchronization).
type MeshGuard struct {
	mu        sync.Mutex
	ownerGID  int64
	suspended int
}

// NewMeshGuard returns a guard not yet pinned to a goroutine.
func NewMeshGuard() *MeshGuard { return &MeshGuard{} }

// CheckWrite validates one mutation. op names the mutator, ent the
// entity, and sharedNotOwned whether the entity is a shared or ghost
// copy this part does not own (computed by the caller, which can see
// the mesh). Violations panic with *OwnershipError.
func (g *MeshGuard) CheckWrite(op string, ent fmt.Stringer, sharedNotOwned bool) {
	gid := GoroutineID()
	g.mu.Lock()
	if g.ownerGID == 0 {
		g.ownerGID = gid
	}
	owner, susp := g.ownerGID, g.suspended
	g.mu.Unlock()
	if gid != owner {
		panic(&OwnershipError{Kind: "confinement", Op: op, Ent: ent.String(), GID: gid, OwnerGID: owner})
	}
	if sharedNotOwned && susp == 0 {
		panic(&OwnershipError{Kind: "owner", Op: op, Ent: ent.String(), GID: gid, OwnerGID: owner})
	}
}

// Suspend opens a window in which non-owner writes are sanctioned
// (goroutine confinement stays enforced). It returns the resume
// function; windows nest.
func (g *MeshGuard) Suspend() func() {
	g.mu.Lock()
	g.suspended++
	g.mu.Unlock()
	return func() {
		g.mu.Lock()
		g.suspended--
		g.mu.Unlock()
	}
}
