package san

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// epochProtocol hand-builds the DFA of (body · shrink)* · body with
// body = barrier · exchange — the shape pcu.Supervise produces — so the
// conformance tests don't depend on the compiler package (which tests
// against this package in the other direction).
//
//	0 -barrier-> 1 -exchange-> 2(accept) -shrink-> 0
func epochProtocol(t *testing.T) *Protocol {
	t.Helper()
	p, err := NewProtocol("test.Epoch",
		[]string{"barrier", "exchange", "shrink"},
		0,
		[]bool{false, false, true},
		[]map[string]int{
			{"barrier": 1},
			{"exchange": 2},
			{"shrink": 0},
		})
	if err != nil {
		t.Fatalf("NewProtocol: %v", err)
	}
	return p
}

func TestNewProtocolValidation(t *testing.T) {
	accept := []bool{true}
	cases := []struct {
		name  string
		ops   []string
		start int
		acc   []bool
		edges []map[string]int
		want  string
	}{
		{"no states", []string{"a"}, 0, nil, nil, "no states"},
		{"accept mismatch", []string{"a"}, 0, []bool{true, false}, []map[string]int{nil}, "accept flags"},
		{"start out of range", []string{"a"}, 3, accept, []map[string]int{nil}, "out of range"},
		{"wildcard in alphabet", []string{"a", "*"}, 0, accept, []map[string]int{nil}, "alphabet member"},
		{"duplicate op", []string{"a", "a"}, 0, accept, []map[string]int{nil}, "duplicate"},
		{"edge target out of range", []string{"a"}, 0, accept, []map[string]int{{"a": 7}}, "out of range"},
		{"edge op not in alphabet", []string{"a"}, 0, accept, []map[string]int{{"b": 0}}, "not in the alphabet"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewProtocol("test.Bad", tc.ops, tc.start, tc.acc, tc.edges)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestConformanceStep(t *testing.T) {
	p := epochProtocol(t)
	m := NewConformance(p, 2)

	// Rank 0 runs two full epochs; rank 1 runs one.
	for _, op := range []string{"barrier", "exchange", "shrink", "barrier", "exchange"} {
		if err := m.Step(0, op); err != nil {
			t.Fatalf("rank 0 %s: %v", op, err)
		}
	}
	for _, op := range []string{"barrier", "exchange"} {
		if err := m.Step(1, op); err != nil {
			t.Fatalf("rank 1 %s: %v", op, err)
		}
	}
	if err := m.Finish(0); err != nil {
		t.Fatalf("rank 0 finish: %v", err)
	}
	if err := m.Finish(1); err != nil {
		t.Fatalf("rank 1 finish: %v", err)
	}
}

func TestConformanceOutOfOrder(t *testing.T) {
	p := epochProtocol(t)
	m := NewConformance(p, 1)
	if err := m.Step(0, "barrier"); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	// exchange expected next; a premature barrier is off-automaton.
	err := m.Step(0, "barrier")
	if err == nil {
		t.Fatal("out-of-order barrier accepted")
	}
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("errors.Is(err, ErrProtocol) = false for %v", err)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not *ProtocolError", err)
	}
	want := &ProtocolError{Entry: "test.Epoch", Rank: 0, Index: 1, Op: "barrier", State: 1, Expected: []string{"exchange"}}
	if !reflect.DeepEqual(pe, want) {
		t.Fatalf("ProtocolError = %+v, want %+v", pe, want)
	}
	if !strings.Contains(pe.Error(), "expects exchange") {
		t.Fatalf("message lacks expected-set: %s", pe.Error())
	}

	// The cursor must not advance on failure: the same violation
	// reports again at the same state and index.
	err2 := m.Step(0, "agree")
	var pe2 *ProtocolError
	if !errors.As(err2, &pe2) || pe2.State != 1 || pe2.Index != 1 {
		t.Fatalf("cursor moved after violation: %+v", pe2)
	}
}

func TestConformanceUnknownOpRejected(t *testing.T) {
	p := epochProtocol(t)
	m := NewConformance(p, 1)
	err := m.Step(0, "agree") // not in this protocol's alphabet
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Op != "agree" {
		t.Fatalf("unknown op not rejected: %v", err)
	}
}

func TestConformanceFinishMidProtocol(t *testing.T) {
	p := epochProtocol(t)
	m := NewConformance(p, 1)
	if err := m.Step(0, "barrier"); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	err := m.Finish(0)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("finish mid-protocol: %v", err)
	}
	if pe.Op != "(return)" || pe.State != 1 {
		t.Fatalf("finish witness = %+v", pe)
	}
}

func TestConformanceWildcardDefault(t *testing.T) {
	// 0 -a-> 1(accept), plus a wildcard default on state 1 back to 1:
	// after the first op anything goes.
	p, err := NewProtocol("test.Wild", []string{"a"}, 0,
		[]bool{false, true},
		[]map[string]int{
			{"a": 1},
			{OpWildcard: 1},
		})
	if err != nil {
		t.Fatalf("NewProtocol: %v", err)
	}
	m := NewConformance(p, 1)
	for _, op := range []string{"a", "b", "a", "zzz"} {
		if err := m.Step(0, op); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	if err := m.Finish(0); err != nil {
		t.Fatalf("finish: %v", err)
	}
	// State 0 has no wildcard: an op outside the alphabet fails there.
	m2 := NewConformance(p, 1)
	if err := m2.Step(0, "b"); err == nil {
		t.Fatal("wildcard leaked into a state without a default edge")
	}
}

// TestConformanceStepZeroAlloc pins the conforming hot path at zero
// allocations per op: the monitor runs inside every traced collective,
// so any allocation here is a per-op leak on the PCU fast path.
func TestConformanceStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are pinned only in the non-race build")
	}
	p := epochProtocol(t)
	m := NewConformance(p, 1)
	ops := []string{"barrier", "exchange", "shrink"}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		if err := m.Step(0, ops[i%3]); err != nil {
			t.Fatalf("step: %v", err)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("Conformance.Step allocates %.1f/op, want 0", avg)
	}
}

func TestReplayEpochs(t *testing.T) {
	p := epochProtocol(t)

	// A full two-epoch stream: the shrink edge is a real transition, no
	// resets.
	res := Replay(p, 0, []string{"barrier", "exchange", "shrink", "barrier", "exchange"})
	if res.Err != nil {
		t.Fatalf("replay: %v", res.Err)
	}
	if !res.Accepted || res.Resets != 0 || res.Steps != 5 {
		t.Fatalf("replay = %+v", res)
	}

	// A revocation cuts epoch 0 mid-body: the shrink marker has no
	// transition from state 1, so the cursor resets to start and the
	// rebuilt world's epoch replays cleanly.
	res = Replay(p, 1, []string{"barrier", "shrink", "barrier", "exchange"})
	if res.Err != nil {
		t.Fatalf("replay with reset: %v", res.Err)
	}
	if !res.Accepted || res.Resets != 1 {
		t.Fatalf("replay with reset = %+v", res)
	}

	// Revoked-world early unwind: a rank that died mid-protocol ends its
	// stream non-accepting, which is informational — not an error.
	res = Replay(p, 2, []string{"barrier"})
	if res.Err != nil {
		t.Fatalf("early unwind: %v", res.Err)
	}
	if res.Accepted || res.State != 1 {
		t.Fatalf("early unwind = %+v", res)
	}

	// An off-automaton op is a hard failure with a witness.
	res = Replay(p, 3, []string{"barrier", "exchange", "exchange"})
	if res.Err == nil {
		t.Fatal("out-of-order exchange accepted")
	}
	if res.Err.Rank != 3 || res.Err.Index != 2 || res.Err.Op != "exchange" {
		t.Fatalf("replay witness = %+v", res.Err)
	}
}
