// Package san implements pumi-san, the runtime determinism and
// ownership sanitizer. It is the dynamic half of the invariant tooling
// whose static half is pumi-vet (internal/lint): where the analyzers
// prove properties of the source, san keeps per-rank shadow state
// during a run and turns the first violation into a structured error.
//
// Two invariants are checked:
//
//   - Collective schedule determinism. Every rank of a PUMI run must
//     enter the same collective operations in the same order. Each
//     rank's OpLog folds its op sequence into a rolling FNV-1a hash;
//     the PCU runtime cross-checks the hashes at every collective sync
//     point and reports the first mismatching op as a
//     *DivergenceError.
//
//   - Owner-only writes and goroutine confinement of mesh state. A
//     shared or ghost entity may only be mutated by the part that owns
//     it, and a mesh may only be mutated by the goroutine that owns the
//     part. MeshGuard checks both, capturing the goroutine ids of the
//     offending pair, with Suspend windows for the sanctioned
//     exceptions (migration unpack/restitch, owner-to-copy
//     synchronization).
//
// The package has no dependencies inside the module so that both the
// PCU runtime and the mesh layer can use it without import cycles.
package san

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
)

// enabled is the process-wide switch read by the layers that attach
// sanitizer state (pcu.RunOpt, partition part construction). Tools flip
// it with a -san flag; tests flip it around a scope.
var enabled atomic.Bool

// Enable turns the sanitizer on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns the sanitizer off process-wide.
func Disable() { enabled.Store(false) }

// Enabled reports whether the sanitizer is on.
func Enabled() bool { return enabled.Load() }

// Sentinel errors, matched with errors.Is. The concrete types
// (*DivergenceError, *OwnershipError) carry the diagnosis.
var (
	ErrDivergence = errors.New("pumi-san: collective op sequence diverged")
	ErrOwnership  = errors.New("pumi-san: illegal mesh entity write")
)

// FNV-1a parameters, shared by the op hash and the run ledger.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// HashDetail folds one value into a detail hash; use DetailSeed as the
// initial accumulator. Callers use it to summarize an op's payload
// shape (e.g. exchange destinations and byte counts) into the OpRecord
// detail.
func HashDetail(h, v uint64) uint64 { return fnvUint64(h, v) }

// HashBytes folds a byte slice (length then contents) into a detail
// hash, so payload reorderings — the runtime signature of map-order
// nondeterminism — change the trace even when sizes match.
func HashBytes(h uint64, b []byte) uint64 {
	h = fnvUint64(h, uint64(len(b)))
	for _, c := range b {
		h = fnvByte(h, c)
	}
	return h
}

// DetailSeed is the initial accumulator for HashDetail chains.
const DetailSeed = uint64(fnvOffset)

// Fold combines a completed run's hash into a cumulative ledger hash.
func Fold(acc, h uint64) uint64 {
	if acc == 0 {
		acc = fnvOffset
	}
	return fnvUint64(acc, h)
}

// OpRecord is one entry of a rank's collective op sequence.
type OpRecord struct {
	Name   string // op name: "barrier", "allreduce", "exchange", ...
	Detail uint64 // payload summary (exchange destinations/sizes), 0 if none
}

func (r OpRecord) String() string {
	if r.Detail == 0 {
		return r.Name
	}
	return fmt.Sprintf("%s[%#x]", r.Name, r.Detail)
}

// OpLog is one rank's shadow op sequence: the full record list plus two
// rolling hashes over it. The schedule hash folds in op names only and
// is what ranks cross-check — every rank must run the same collective
// schedule, but payload shapes (exchange destinations, byte counts)
// legitimately differ per rank. The trace hash folds in the details too
// and is the run-to-run reproducibility fingerprint: two runs of the
// same seeded workload must produce identical trace hashes.
//
// An OpLog is written only by its rank between collective sync points
// and read by peers only inside the barrier-ordered check window, so it
// needs no lock.
type OpLog struct {
	hash  uint64 // names + details: reproducibility trace
	sched uint64 // names only: cross-rank schedule
	ops   []OpRecord
}

// NewOpLog returns an empty log.
func NewOpLog() *OpLog { return &OpLog{hash: fnvOffset, sched: fnvOffset} }

// Record appends one op and folds it into both rolling hashes.
func (l *OpLog) Record(name string, detail uint64) {
	l.ops = append(l.ops, OpRecord{Name: name, Detail: detail})
	l.sched = fnvString(l.sched, name)
	l.hash = fnvUint64(fnvString(l.hash, name), detail)
}

// Hash returns the trace hash (names and details) over the ops
// recorded so far.
func (l *OpLog) Hash() uint64 { return l.hash }

// SchedHash returns the schedule hash (names only) over the ops
// recorded so far.
func (l *OpLog) SchedHash() uint64 { return l.sched }

// Len returns the number of ops recorded.
func (l *OpLog) Len() int { return len(l.ops) }

// At returns the i'th op record.
func (l *OpLog) At(i int) OpRecord { return l.ops[i] }

// FirstMismatch returns the index of the first op where the two logs'
// schedules differ — op names are compared, not details, since payload
// shapes legitimately vary per rank — or -1 if one schedule is a
// prefix of the other (including equality).
func FirstMismatch(a, b *OpLog) int {
	n := min(a.Len(), b.Len())
	for i := 0; i < n; i++ {
		if a.ops[i].Name != b.ops[i].Name {
			return i
		}
	}
	return -1
}

// DivergenceError reports that two ranks executed different collective
// op sequences. Index is the 0-based position of the first mismatching
// op; Op and PeerOp are the ops the two ranks entered there.
type DivergenceError struct {
	Rank, Peer int
	Index      int
	Op, PeerOp string
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf(
		"pumi-san: collective op sequence diverged at op %d: rank %d entered %s, rank %d entered %s",
		e.Index, e.Rank, e.Op, e.Peer, e.PeerOp)
}

// Is makes errors.Is(err, ErrDivergence) match.
func (e *DivergenceError) Is(target error) bool { return target == ErrDivergence }

// GoroutineID returns the current goroutine's id, parsed from the
// runtime.Stack header ("goroutine N [..."). It is a debugging
// identity for naming the offending pair in an OwnershipError, not a
// synchronization primitive.
func GoroutineID() int64 {
	var buf [64]byte
	s := buf[:runtime.Stack(buf[:], false)]
	// Skip "goroutine ".
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	s = s[len(prefix):]
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	id, err := strconv.ParseInt(string(s[:i]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}
