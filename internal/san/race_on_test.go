//go:build race

package san

// raceEnabled gates the allocation-regression test: the race detector's
// instrumentation changes allocation behavior, so alloc counts are only
// pinned in the plain build.
const raceEnabled = true
