package san

// Protocol conformance: the dynamic half of pumi-vet's protocol
// automata (internal/lint/automata). The static analyzer compiles each
// entry point's inferred communication-effect term into a minimal DFA
// over runtime collective op names; this file executes that DFA against
// a real run. A Protocol is the immutable compiled automaton; a
// Conformance is the per-run monitor that drives each rank's op stream
// through it. The first op with no transition from the current state is
// the violation, reported as a *ProtocolError naming the op, its stream
// index and the set of ops the automaton expected there.
//
// The monitor is built for the PCU hot path: Step is one map lookup and
// two slice writes, no allocations in the conforming case (pinned by
// TestConformanceStepZeroAlloc).

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// ErrProtocol is wrapped by every conformance violation; match with
// errors.Is. The concrete *ProtocolError carries the diagnosis.
var ErrProtocol = errors.New("pumi-san: collective op off the protocol automaton")

// Runtime op names shared by the PCU runtime (which records them via
// beginOp), the automata compiler (which maps static atoms onto them)
// and trace replay (which filters flight-recorder events down to them).
const (
	// OpShrink is the world-shrink boundary pseudo-op: the transition a
	// supervised run takes when a revoked world is rebuilt over the
	// survivors. Online it never appears as a runtime op (each epoch is
	// a fresh world with a fresh cursor); offline replay synthesizes it
	// from the per-rank world markers in the trace.
	OpShrink = "shrink"
	// OpWildcard labels the default transition of states whose source
	// term contains a dynamic call the analyzer cannot resolve: any op
	// is accepted there.
	OpWildcard = "*"
)

// RuntimeCollectiveOps lists every op name the PCU runtime can record
// for a blocking collective operation. Trace replay feeds exactly these
// (plus the synthesized OpShrink) into the automaton, so a protocol
// that omits one still catches it as off-automaton.
var RuntimeCollectiveOps = []string{
	"agree", "allgather", "allreduce", "barrier", "bcast", "exchange", "exscan", "reduce",
}

// ProtocolError reports the first op of a rank's stream that has no
// transition from the automaton's current state. Index is the 0-based
// position in the rank's collective op stream; Op is the offending op
// ("(return)" when the rank finished mid-protocol); Expected is the
// sorted set of ops the automaton would have accepted.
type ProtocolError struct {
	Entry    string // automaton entry point, e.g. "chaos.RunRecoverable"
	Rank     int
	Index    int
	Op       string
	State    int
	Expected []string
}

func (e *ProtocolError) Error() string {
	exp := "nothing (end of protocol)"
	if len(e.Expected) > 0 {
		exp = strings.Join(e.Expected, " or ")
	}
	return fmt.Sprintf(
		"pumi-san: rank %d op %d violates the %s protocol: entered %s in state %d where the automaton expects %s",
		e.Rank, e.Index, e.Entry, e.Op, e.State, exp)
}

// Is makes errors.Is(err, ErrProtocol) match.
func (e *ProtocolError) Is(target error) bool { return target == ErrProtocol }

// noEdge marks a missing transition in the dense edge table.
const noEdge = int32(-1)

// Protocol is a compiled protocol automaton: a DFA over collective op
// names, immutable and shareable across runs and ranks. Build one from
// a pumi-proto artifact via automata.Machine.Protocol, or directly with
// NewProtocol.
type Protocol struct {
	entry string
	ops   []string
	opID  map[string]int
	start int

	// Dense transition table: edges[s*width + id] is the successor of
	// state s on op id, or noEdge. Column len(ops) is the wildcard
	// (default) transition taken by ops outside the alphabet.
	width  int
	edges  []int32
	accept []bool

	// expected[s] is the sorted op set with transitions from s,
	// precomputed so the error path never recomputes it.
	expected [][]string
}

// NewProtocol validates and compiles a DFA description: ops is the
// alphabet (sorted or not; order defines nothing), edges[s] maps op
// names — alphabet members or OpWildcard — to successor states.
func NewProtocol(entry string, ops []string, start int, accept []bool, edges []map[string]int) (*Protocol, error) {
	n := len(edges)
	if n == 0 {
		return nil, fmt.Errorf("protocol %s: no states", entry)
	}
	if len(accept) != n {
		return nil, fmt.Errorf("protocol %s: %d accept flags for %d states", entry, len(accept), n)
	}
	if start < 0 || start >= n {
		return nil, fmt.Errorf("protocol %s: start state %d out of range [0,%d)", entry, start, n)
	}
	p := &Protocol{
		entry:  entry,
		ops:    append([]string(nil), ops...),
		opID:   make(map[string]int, len(ops)),
		start:  start,
		width:  len(ops) + 1,
		accept: append([]bool(nil), accept...),
	}
	for i, op := range p.ops {
		if op == OpWildcard {
			return nil, fmt.Errorf("protocol %s: wildcard %q cannot be an alphabet member", entry, op)
		}
		if _, dup := p.opID[op]; dup {
			return nil, fmt.Errorf("protocol %s: duplicate op %q", entry, op)
		}
		p.opID[op] = i
	}
	p.edges = make([]int32, n*p.width)
	for i := range p.edges {
		p.edges[i] = noEdge
	}
	p.expected = make([][]string, n)
	for s, row := range edges {
		var exp []string
		for op, next := range row {
			if next < 0 || next >= n {
				return nil, fmt.Errorf("protocol %s: state %d op %q leads to state %d out of range", entry, s, op, next)
			}
			id, ok := p.opID[op]
			if !ok {
				if op != OpWildcard {
					return nil, fmt.Errorf("protocol %s: state %d has edge on %q, not in the alphabet", entry, s, op)
				}
				id = len(p.ops)
			}
			p.edges[s*p.width+id] = int32(next)
			exp = append(exp, op)
		}
		sort.Strings(exp)
		p.expected[s] = exp
	}
	return p, nil
}

// Entry returns the automaton's entry point name.
func (p *Protocol) Entry() string { return p.entry }

// Ops returns the automaton's alphabet (wildcard excluded).
func (p *Protocol) Ops() []string { return append([]string(nil), p.ops...) }

// States returns the automaton's state count.
func (p *Protocol) States() int { return len(p.accept) }

// Start returns the initial state.
func (p *Protocol) Start() int { return p.start }

// Accepting reports whether state s is accepting: a run may legally
// finish there.
func (p *Protocol) Accepting(s int) bool { return p.accept[s] }

// Expected returns the sorted op set with transitions from state s —
// what the automaton would accept next there. The slice is shared and
// must not be mutated.
func (p *Protocol) Expected(s int) []string {
	if s < 0 || s >= len(p.expected) {
		return nil
	}
	return p.expected[s]
}

// step advances from state s on op. ok is false when the automaton has
// no transition — explicit or wildcard — for the op there.
func (p *Protocol) step(s int, op string) (next int, ok bool) {
	row := p.edges[s*p.width : (s+1)*p.width]
	if id, known := p.opID[op]; known {
		if t := row[id]; t != noEdge {
			return int(t), true
		}
	}
	// Ops outside the alphabet — and alphabet ops without an explicit
	// edge — fall through to the wildcard column.
	if t := row[p.width-1]; t != noEdge {
		return int(t), true
	}
	return s, false
}

// Conformance drives each rank of one run through a shared Protocol.
// Step and Finish are called only by the rank they name (the PCU
// runtime calls them from the rank's own goroutine). The cursors are
// atomics — not for the rank, which owns its cursor exclusively, but so
// a live scraper (the /protocol introspection endpoint) can read every
// rank's position mid-run without locks and without racing the hot
// path.
type Conformance struct {
	p     *Protocol
	state []atomic.Int32
	idx   []atomic.Int32
}

// NewConformance returns a monitor for a run of the given rank count,
// every rank starting at the protocol's initial state.
func NewConformance(p *Protocol, ranks int) *Conformance {
	m := &Conformance{
		p:     p,
		state: make([]atomic.Int32, ranks),
		idx:   make([]atomic.Int32, ranks),
	}
	for r := range m.state {
		m.state[r].Store(int32(p.start))
	}
	return m
}

// Ranks returns the monitor's rank count.
func (m *Conformance) Ranks() int { return len(m.state) }

// Protocol returns the automaton the monitor enforces.
func (m *Conformance) Protocol() *Protocol { return m.p }

// Cursor returns rank's current automaton state and how many ops it has
// consumed. Safe to call from any goroutine while the run advances; the
// two loads are independently atomic, so a concurrent Step may show
// state and steps one op apart — fine for introspection.
func (m *Conformance) Cursor(rank int) (state, steps int) {
	return int(m.state[rank].Load()), int(m.idx[rank].Load())
}

// Step consumes one collective op on the given rank. A conforming op
// advances the cursor and returns nil without allocating; an
// off-automaton op returns a *ProtocolError and leaves the cursor in
// place (subsequent calls keep failing at the same state).
func (m *Conformance) Step(rank int, op string) error {
	s := int(m.state[rank].Load())
	next, ok := m.p.step(s, op)
	if !ok {
		return &ProtocolError{
			Entry:    m.p.entry,
			Rank:     rank,
			Index:    int(m.idx[rank].Load()),
			Op:       op,
			State:    s,
			Expected: m.p.expected[s],
		}
	}
	m.state[rank].Store(int32(next))
	m.idx[rank].Add(1)
	return nil
}

// Finish checks that the rank's stream ended in an accepting state — a
// complete protocol word. The PCU runtime calls it only when the rank's
// body returned nil: a rank unwinding with an error (revocation,
// injected fault, teardown) legally stops mid-protocol.
func (m *Conformance) Finish(rank int) error {
	s := int(m.state[rank].Load())
	if m.p.accept[s] {
		return nil
	}
	return &ProtocolError{
		Entry:    m.p.entry,
		Rank:     rank,
		Index:    int(m.idx[rank].Load()),
		Op:       "(return)",
		State:    s,
		Expected: m.p.expected[s],
	}
}

// ReplayResult is one rank's offline verdict from Replay.
type ReplayResult struct {
	Steps    int            // ops consumed before stopping
	Resets   int            // shrink boundaries that reset to the start state
	Accepted bool           // final state is accepting (meaningless when Err != nil)
	State    int            // final state
	Err      *ProtocolError // first off-automaton op, nil when conformant
}

// Replay drives one rank's recorded op stream through the protocol —
// the offline counterpart of a Conformance monitor. OpShrink entries
// mark world boundaries: when the current state has a shrink
// transition the automaton follows it, otherwise the cursor resets to
// the start state — a revocation legally cuts the previous world's
// protocol mid-word, and the rebuilt world starts the protocol over.
// A non-accepting end of stream is reported via Accepted, not Err: a
// rank that died mid-protocol ends its trace there legitimately, and
// the caller decides whether acceptance is required.
func Replay(p *Protocol, rank int, ops []string) ReplayResult {
	res := ReplayResult{State: p.start}
	for i, op := range ops {
		next, ok := p.step(res.State, op)
		if !ok && op == OpShrink {
			res.State = p.start
			res.Resets++
			res.Steps++
			continue
		}
		if !ok {
			res.Err = &ProtocolError{
				Entry:    p.entry,
				Rank:     rank,
				Index:    i,
				Op:       op,
				State:    res.State,
				Expected: p.expected[res.State],
			}
			return res
		}
		res.State = next
		res.Steps++
	}
	res.Accepted = p.accept[res.State]
	return res
}
