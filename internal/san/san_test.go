package san

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestOpLogHashDeterministic(t *testing.T) {
	mk := func() *OpLog {
		l := NewOpLog()
		l.Record("barrier", 0)
		l.Record("exchange", 0xbeef)
		l.Record("allreduce", 0)
		return l
	}
	a, b := mk(), mk()
	if a.Hash() != b.Hash() {
		t.Fatalf("identical logs hash differently: %#x vs %#x", a.Hash(), b.Hash())
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	b.Record("barrier", 0)
	if a.Hash() == b.Hash() {
		t.Fatal("extended log kept the same hash")
	}
}

func TestOpLogHashSensitive(t *testing.T) {
	a, b := NewOpLog(), NewOpLog()
	a.Record("barrier", 0)
	b.Record("allreduce", 0)
	if a.Hash() == b.Hash() {
		t.Fatal("different ops hash equal")
	}
	// Detail participates in the trace hash but not the schedule
	// hash: exchange payload shapes legitimately differ per rank.
	c, d := NewOpLog(), NewOpLog()
	c.Record("exchange", 1)
	d.Record("exchange", 2)
	if c.Hash() == d.Hash() {
		t.Fatal("different details hash equal")
	}
	if c.SchedHash() != d.SchedHash() {
		t.Fatal("schedule hash leaked the payload detail")
	}
	if a.SchedHash() == b.SchedHash() {
		t.Fatal("different op names share a schedule hash")
	}
}

func TestFirstMismatch(t *testing.T) {
	a, b := NewOpLog(), NewOpLog()
	for _, op := range []string{"barrier", "allreduce", "exchange"} {
		a.Record(op, 0)
		b.Record(op, 0)
	}
	if i := FirstMismatch(a, b); i != -1 {
		t.Fatalf("equal logs mismatch at %d", i)
	}
	a.Record("barrier", 0)
	b.Record("bcast", 0)
	if i := FirstMismatch(a, b); i != 3 {
		t.Fatalf("mismatch at %d, want 3", i)
	}
	// A strict prefix is not a mismatch (the shorter rank simply has
	// not reached the op yet).
	c := NewOpLog()
	c.Record("barrier", 0)
	if i := FirstMismatch(a, c); i != -1 {
		t.Fatalf("prefix mismatch at %d, want -1", i)
	}
}

func TestDivergenceErrorIs(t *testing.T) {
	err := error(&DivergenceError{Rank: 0, Peer: 1, Index: 3, Op: "barrier", PeerOp: "allreduce"})
	if !errors.Is(err, ErrDivergence) {
		t.Fatal("DivergenceError does not match ErrDivergence")
	}
	want := "pumi-san: collective op sequence diverged at op 3: rank 0 entered barrier, rank 1 entered allreduce"
	if err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
}

func TestGoroutineID(t *testing.T) {
	if GoroutineID() == 0 {
		t.Fatal("GoroutineID returned 0 for a live goroutine")
	}
	mine := GoroutineID()
	if again := GoroutineID(); again != mine {
		t.Fatalf("id not stable: %d then %d", mine, again)
	}
	ch := make(chan int64)
	go func() { ch <- GoroutineID() }()
	if other := <-ch; other == mine {
		t.Fatalf("two goroutines share id %d", mine)
	}
}

type fakeEnt string

func (e fakeEnt) String() string { return string(e) }

// checkOwnership runs f, which must panic with an *OwnershipError of
// the given kind, and returns the error.
func checkOwnership(t *testing.T, kind string, f func()) (err *OwnershipError) {
	t.Helper()
	func() {
		defer func() {
			err, _ = recover().(*OwnershipError)
		}()
		f()
	}()
	if err == nil {
		t.Fatalf("no *OwnershipError panic from %s write", kind)
	}
	if err.Kind != kind {
		t.Fatalf("Kind = %q, want %q", err.Kind, kind)
	}
	if !errors.Is(err, ErrOwnership) {
		t.Fatal("OwnershipError does not match ErrOwnership")
	}
	return err
}

func TestMeshGuardOwnerWrite(t *testing.T) {
	g := NewMeshGuard()
	g.CheckWrite("coord", fakeEnt("vtx 1"), false) // owned: fine
	err := checkOwnership(t, "owner", func() {
		g.CheckWrite("tag", fakeEnt("vtx 2"), true)
	})
	if err.Op != "tag" || err.Ent != "vtx 2" {
		t.Fatalf("error names %s of %s", err.Op, err.Ent)
	}
	if err.GID == 0 || err.GID != err.OwnerGID {
		t.Fatalf("offending pair %d/%d, want same live goroutine", err.GID, err.OwnerGID)
	}
}

func TestMeshGuardSuspendWindow(t *testing.T) {
	g := NewMeshGuard()
	resume := g.Suspend()
	g.CheckWrite("tag", fakeEnt("vtx 2"), true) // sanctioned
	inner := g.Suspend()                        // windows nest
	g.CheckWrite("flag", fakeEnt("vtx 3"), true)
	inner()
	g.CheckWrite("tag", fakeEnt("vtx 4"), true)
	resume()
	checkOwnership(t, "owner", func() {
		g.CheckWrite("tag", fakeEnt("vtx 5"), true)
	})
}

func TestMeshGuardConfinement(t *testing.T) {
	g := NewMeshGuard()
	g.CheckWrite("coord", fakeEnt("vtx 1"), false) // pins the mesh here
	var wg sync.WaitGroup
	var got *OwnershipError
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				got, _ = p.(*OwnershipError)
			}
		}()
		g.CheckWrite("coord", fakeEnt("vtx 1"), false)
	}()
	wg.Wait()
	if got == nil {
		t.Fatal("cross-goroutine write did not panic")
	}
	if got.Kind != "confinement" {
		t.Fatalf("Kind = %q, want confinement", got.Kind)
	}
	if got.GID == got.OwnerGID || got.GID == 0 || got.OwnerGID == 0 {
		t.Fatalf("offending pair not captured: gid %d owner %d", got.GID, got.OwnerGID)
	}
	// Confinement holds even inside a Suspend window.
	resume := g.Suspend()
	defer resume()
	var still *OwnershipError
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if p := recover(); p != nil {
				still, _ = p.(*OwnershipError)
			}
		}()
		g.CheckWrite("tag", fakeEnt("vtx 9"), true)
	}()
	wg.Wait()
	if still == nil || still.Kind != "confinement" {
		t.Fatalf("suspend window relaxed confinement: %v", still)
	}
}

func TestEnableDisable(t *testing.T) {
	if Enabled() {
		t.Fatal("sanitizer enabled by default")
	}
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not stick")
	}
	Disable()
	if Enabled() {
		t.Fatal("Disable did not stick")
	}
}

func TestFoldAndHashDetail(t *testing.T) {
	if Fold(0, 1) == Fold(0, 2) {
		t.Fatal("Fold insensitive to value")
	}
	if Fold(Fold(0, 1), 2) == Fold(Fold(0, 2), 1) {
		t.Fatal("Fold insensitive to order")
	}
	d := HashDetail(DetailSeed, 7)
	if d == DetailSeed || d != HashDetail(DetailSeed, 7) {
		t.Fatalf("HashDetail unstable: %#x", d)
	}
	if HashBytes(DetailSeed, []byte{1, 2}) == HashBytes(DetailSeed, []byte{2, 1}) {
		t.Fatal("HashBytes insensitive to byte order")
	}
	if HashBytes(DetailSeed, nil) == DetailSeed {
		t.Fatal("HashBytes ignored the length")
	}
	var _ fmt.Stringer = OpRecord{Name: "exchange", Detail: 3}
	if s := (OpRecord{Name: "exchange", Detail: 3}).String(); s != "exchange[0x3]" {
		t.Fatalf("OpRecord.String = %q", s)
	}
	if s := (OpRecord{Name: "barrier"}).String(); s != "barrier" {
		t.Fatalf("OpRecord.String = %q", s)
	}
}
