package experiments

import (
	"bytes"
	"fmt"
	"time"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// MigrateConfig scales the distributed-services study backing the
// paper's claims that PUMI's migration and ghosting operate efficiently
// from a few parts to very large part counts.
type MigrateConfig struct {
	// NX, NY, NZ set the box mesh (6*NX*NY*NZ tets).
	NX, NY, NZ int
	// PartCounts lists the part counts swept (one rank per part).
	PartCounts []int
}

// DefaultMigrateConfig sweeps a ~36k-tet mesh over 2..32 parts.
func DefaultMigrateConfig() MigrateConfig {
	return MigrateConfig{NX: 18, NY: 18, NZ: 18, PartCounts: []int{2, 4, 8, 16, 32}}
}

// MigratePoint is one sweep row.
type MigratePoint struct {
	Parts          int
	Elements       int64
	DistributeSecs float64 // full-mesh migration from 1 part to all
	PerElementUs   float64
	GhostSecs      float64 // one face-bridged ghost layer
	GhostElems     int64
	BoundaryVtx    int64
}

// RunMigrate measures distribution (migration) and ghost-layer
// construction across part counts on a fixed mesh.
func RunMigrate(cfg MigrateConfig) ([]MigratePoint, error) {
	model := gmi.Box(1, 1, 1)
	var out []MigratePoint
	for _, p := range cfg.PartCounts {
		pt := MigratePoint{Parts: p}
		err := pcu.Run(p, func(ctx *pcu.Ctx) error {
			var serial *mesh.Mesh
			if ctx.Rank() == 0 {
				serial = meshgen.Box3D(model, cfg.NX, cfg.NY, cfg.NZ)
			}
			dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
			var plan map[mesh.Ent]int32
			if ctx.Rank() == 0 {
				in, els := zpart.Centroids(serial)
				assign := zpart.RCB(in, p)
				plan = map[mesh.Ent]int32{}
				for i, el := range els {
					plan[el] = assign[i]
				}
			}
			ctx.Barrier()
			start := time.Now()
			partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
			dist := time.Since(start).Seconds()

			elems := partition.GlobalCount(dm, 3)
			ctx.Barrier()
			start = time.Now()
			partition.Ghost(dm, 2, 1)
			ghost := time.Since(start).Seconds()
			var nGhost int64
			for _, part := range dm.Parts {
				nGhost += int64(part.NGhosts())
			}
			nGhost = pcu.SumInt64(ctx, nGhost)
			tr := partition.GatherBoundaryTraffic(dm, 0)
			partition.RemoveGhosts(dm)
			if err := partition.CheckDistributed(dm); err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				pt.Elements = elems
				pt.DistributeSecs = dist
				pt.PerElementUs = dist / float64(elems) * 1e6
				pt.GhostSecs = ghost
				pt.GhostElems = nGhost
				pt.BoundaryVtx = tr.SharedTotal
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatMigrate renders the sweep.
func FormatMigrate(points []MigratePoint) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%6s %10s %14s %12s %12s %12s %10s\n",
		"parts", "elements", "distribute(s)", "us/elem", "ghost(s)", "ghost ents", "bnd vtx")
	for _, p := range points {
		fmt.Fprintf(&b, "%6d %10d %14.4f %12.3f %12.4f %12d %10d\n",
			p.Parts, p.Elements, p.DistributeSecs, p.PerElementUs,
			p.GhostSecs, p.GhostElems, p.BoundaryVtx)
	}
	return b.String()
}
