package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"github.com/fastmath/pumi-go/internal/adapt"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// Fig13Config scales the shock-adaptation imbalance experiment (the
// ONERA M6 wing study of Fig 13).
type Fig13Config struct {
	// NX, NY, NZ set the wing-box surrogate grid.
	NX, NY, NZ int
	// Parts is the partition size (paper: 1024).
	Parts int
	// Ranks is the process count.
	Ranks int
	// Fine and Coarse are the size-field values inside and outside the
	// shock band; Band is its half-width.
	Fine, Coarse, Band float64
	// WithSplit additionally runs ParMA heavy part splitting +
	// diffusion afterwards and records the recovered imbalance.
	WithSplit bool
	// Predictive additionally measures predictive load balancing: the
	// estimated post-adaptation load is balanced before adapting. The
	// paper observes (§III-B) that large spikes survive this strategy —
	// which is the motivation for heavy part splitting — and the
	// measured PredictiveImbalance reproduces that observation.
	Predictive bool
}

// DefaultFig13Config adapts a ~23k-tet wing box on 16 parts.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		NX: 16, NY: 8, NZ: 4, Parts: 16, Ranks: 8,
		Fine: 0.07, Coarse: 0.6, Band: 0.25, WithSplit: true, Predictive: true,
	}
}

// Fig13Result is the histogram of element imbalance after adapting
// without prior load balancing.
type Fig13Result struct {
	Config        Fig13Config
	ElemBefore    int64
	ElemAfter     int64
	Ratios        []float64 // per part: count / average
	Bins          []float64 // bin centers (paper style)
	Hist          []int
	PeakImbalance float64
	PartsBelow50  int // parts with fewer than half the average elements
	PartsOver20   int // parts more than 20% over the average
	// After ParMA heavy part splitting + diffusion (if enabled).
	SplitImbalance float64
	// PredictiveImbalance is the post-adaptation element imbalance when
	// the partition is predictively weight-balanced first (if enabled).
	PredictiveImbalance float64
}

// shockSize returns the Fig 13 size field: a planar shock band across
// the wing surrogate, slanted so it crosses several parts.
func shockSize(cfg Fig13Config, lx, ly float64) adapt.SizeField {
	return func(p vec.V) float64 {
		// Slanted front: x + 0.35*y = const mid-plane.
		d := math.Abs((p.X + 0.35*p.Y) - 0.5*(lx+0.35*ly))
		if d < cfg.Band {
			return cfg.Fine
		}
		return cfg.Coarse
	}
}

// RunFig13 distributes a balanced wing-box mesh, adapts it to a shock
// size field with no load balancing, and histograms the resulting
// element imbalance (paper Fig 13). Optionally it then applies ParMA
// heavy part splitting followed by diffusion, demonstrating §III-B.
func RunFig13(cfg Fig13Config) (Fig13Result, error) {
	res := Fig13Result{Config: cfg}
	lx, ly, lz := 4.0, 2.0, 0.5
	model := gmi.Wing(lx, ly, lz)
	size := shockSize(cfg, lx, ly)
	k := cfg.Parts / cfg.Ranks
	if k*cfg.Ranks != cfg.Parts {
		return res, fmt.Errorf("experiments: parts %d not divisible by ranks %d", cfg.Parts, cfg.Ranks)
	}
	err := pcu.Run(cfg.Ranks, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, cfg.NX, cfg.NY, cfg.NZ)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, k)
		var plan map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			in, els := zpart.Centroids(serial)
			assign := zpart.RCB(in, cfg.Parts)
			plan = map[mesh.Ent]int32{}
			for i, el := range els {
				plan[el] = assign[i]
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
		elemBefore := partition.GlobalCount(dm, 3)

		opts := adapt.DefaultOptions()
		adapt.Parallel(dm, size, opts)
		elemAfter := partition.GlobalCount(dm, 3)

		counts := partition.GatherCounts(dm, 3)
		mean, imb := partition.Imbalance(counts)
		if ctx.Rank() == 0 {
			// Single writer into the shared result.
			res.ElemBefore = elemBefore
			res.ElemAfter = elemAfter
			res.PeakImbalance = imb
			res.Ratios = make([]float64, len(counts))
			for i, c := range counts {
				r := float64(c) / mean
				res.Ratios[i] = r
				if r < 0.5 {
					res.PartsBelow50++
				}
				if r > 1.2 {
					res.PartsOver20++
				}
			}
		}
		if cfg.WithSplit {
			pcfg := parma.Config{Tolerance: 1.05, MaxIters: 40}
			parma.HeavyPartSplit(dm, pcfg)
			pri, _ := parma.ParsePriority("Rgn")
			parma.Balance(dm, pri, pcfg)
			_, split := partition.EntityImbalance(dm, 3)
			if ctx.Rank() == 0 {
				res.SplitImbalance = split
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if cfg.Predictive {
		imb, perr := runFig13Predictive(cfg, model, size)
		if perr != nil {
			return res, perr
		}
		res.PredictiveImbalance = imb
	}
	// Histogram in the paper's style: ~11 bins across the ratio range.
	maxR := 0.0
	for _, r := range res.Ratios {
		if r > maxR {
			maxR = r
		}
	}
	nbins := 11
	width := maxR / float64(nbins)
	if width <= 0 {
		width = 1
	}
	res.Bins = make([]float64, nbins)
	res.Hist = make([]int, nbins)
	for i := range res.Bins {
		res.Bins[i] = width * (float64(i) + 0.5)
	}
	for _, r := range res.Ratios {
		b := int(r / width)
		if b >= nbins {
			b = nbins - 1
		}
		res.Hist[b]++
	}
	return res, nil
}

// runFig13Predictive repeats the pipeline, but balances the estimated
// post-adaptation load (element volume / target element volume) with
// ParMA weighted diffusion before adapting — the predictive strategy
// the paper contrasts with post-hoc repair. Returns the post-adaptation
// element imbalance.
func runFig13Predictive(cfg Fig13Config, model *gmi.BoxModel, size adapt.SizeField) (float64, error) {
	k := cfg.Parts / cfg.Ranks
	var out float64
	err := pcu.Run(cfg.Ranks, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, cfg.NX, cfg.NY, cfg.NZ)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, k)
		var plan map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			// Repartition with the predicted post-adaptation load as
			// element weights (how many elements each becomes).
			in, els := zpart.Centroids(serial)
			in.Wts = make([]float64, len(els))
			for i, el := range els {
				in.Wts[i] = adapt.PredictedElements(serial, el, size)
			}
			assign := zpart.RCB(in, cfg.Parts)
			plan = map[mesh.Ent]int32{}
			for i, el := range els {
				plan[el] = assign[i]
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
		// Refine the prediction balance with ParMA weighted diffusion.
		weight := func(m *mesh.Mesh, el mesh.Ent) float64 {
			return adapt.PredictedElements(m, el, size)
		}
		parma.BalanceWeights(dm, weight, parma.Config{Tolerance: 1.10, MaxIters: 40})
		adapt.Parallel(dm, size, adapt.DefaultOptions())
		_, imb := partition.EntityImbalance(dm, 3)
		if ctx.Rank() == 0 {
			out = imb
		}
		return nil
	})
	return out, err
}

// FormatFig13 renders the histogram as text.
func FormatFig13(res Fig13Result) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Adaptation without load balancing: %d -> %d elements on %d parts\n",
		res.ElemBefore, res.ElemAfter, res.Config.Parts)
	fmt.Fprintf(&b, "peak imbalance %.2f (paper: >4x); %d parts <50%% of average (paper: >120 of 1024); %d parts >20%% over\n",
		res.PeakImbalance, res.PartsBelow50, res.PartsOver20)
	for i, c := range res.Hist {
		fmt.Fprintf(&b, "%5.2f | %-4d %s\n", res.Bins[i], c, strings.Repeat("#", c))
	}
	if res.Config.WithSplit {
		fmt.Fprintf(&b, "after ParMA heavy part splitting + diffusion: peak imbalance %.2f\n",
			res.SplitImbalance)
	}
	if res.Config.Predictive {
		fmt.Fprintf(&b, "with predictive weighted balancing before adaptation: peak imbalance %.2f\n",
			res.PredictiveImbalance)
		fmt.Fprintf(&b, "  (spikes survive predictive balancing, as §III-B observes — the case for heavy part splitting)\n")
	}
	return b.String()
}
