// Package experiments implements the paper's evaluation: one driver per
// table and figure, shared by the pumi-bench command and the root
// benchmark suite. Every driver runs at a configurable scale; defaults
// reproduce the paper's shape (who wins, by what rough factor) on a
// laptop rather than its absolute numbers from Jaguar/Mira.
package experiments

import (
	"bytes"
	"fmt"
	"time"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// TableConfig scales the Table I-III reproduction (the AAA multi-criteria
// partition improvement study).
type TableConfig struct {
	// NS and N set the vessel surrogate grid: about 6*NS*N*N tets
	// stand in for the paper's 133M-tet AAA mesh.
	NS, N int
	// Parts is the target part count (paper: 16,384).
	Parts int
	// Ranks is the number of processes; Parts/Ranks parts per process
	// (paper: 512 cores x 32 parts).
	Ranks int
	// Tol is the imbalance tolerance (paper: 5% -> 1.05).
	Tol float64
	// MaxIters bounds ParMA iterations per entity type.
	MaxIters int
}

// DefaultTableConfig runs in seconds on a laptop: ~35k tets on 32 parts
// over 8 ranks.
func DefaultTableConfig() TableConfig {
	return TableConfig{NS: 40, N: 12, Parts: 32, Ranks: 8, Tol: 1.05, MaxIters: 100}
}

// Tests lists the paper's Table I test matrix.
var Tests = []struct {
	Name     string
	Method   string // "PHG" or a ParMA priority
	Priority string
}{
	{"T0", "Zoltan-style hypergraph (PHG)", ""},
	{"T1", "ParMA", "Vtx>Rgn"},
	{"T2", "ParMA", "Vtx=Edge>Rgn"},
	{"T3", "ParMA", "Edge>Rgn"},
	{"T4", "ParMA", "Edge=Face>Rgn"},
}

// TableRow is one line of the Table II / Table III reproduction.
type TableRow struct {
	Test     string
	Mean     [4]float64 // mean entity count per part, per dimension
	Imb      [4]float64 // peak imbalance (max / T0 mean), per dimension
	Balanced [4]bool    // which dims the test balances (for display)
	Seconds  float64    // Table III
	Boundary int64      // total shared entities (vtx) after the test
}

// Fig12Series carries the per-part normalized vertex and edge counts
// before and after ParMA test T2 (Fig 12 of the paper).
type Fig12Series struct {
	VtxBefore, VtxAfter   []float64
	EdgeBefore, EdgeAfter []float64
}

// TableResult bundles the Table I-III reproduction outputs.
type TableResult struct {
	Config TableConfig
	Rows   []TableRow
	Fig12  Fig12Series
	// SerialElems is the element count of the generated mesh.
	SerialElems int
}

// RunTable reproduces Tables I, II and III and Fig 12: generate the AAA
// surrogate, partition with the hypergraph method (T0, timed), then for
// each ParMA test re-distribute the T0 partition and run multi-criteria
// improvement (timed), recording per-entity means and peak imbalances.
func RunTable(cfg TableConfig) (TableResult, error) {
	res := TableResult{Config: cfg}
	if cfg.Parts%cfg.Ranks != 0 {
		return res, fmt.Errorf("experiments: parts %d not divisible by ranks %d", cfg.Parts, cfg.Ranks)
	}
	k := cfg.Parts / cfg.Ranks
	model := gmi.Vessel(10, 1, 0.6, 1.2)

	// Generate and partition serially once; reuse via serialization.
	serial := meshgen.Vessel3D(model, cfg.NS, cfg.N)
	res.SerialElems = serial.Count(3)
	t0 := time.Now()
	hg, els := zpart.ElementHypergraph(serial, 0)
	assign := zpart.PHG(hg, cfg.Parts)
	phgSeconds := time.Since(t0).Seconds()
	var blob bytes.Buffer
	if err := meshio.Write(&blob, serial); err != nil {
		return res, err
	}
	asg := make(map[int]int32, len(els))
	for i := range els {
		asg[i] = assign[i]
	}

	var t0Mean [4]float64
	for ti, test := range Tests {
		row := TableRow{Test: test.Name}
		var pri parma.Priority
		if test.Priority != "" {
			var err error
			pri, err = parma.ParsePriority(test.Priority)
			if err != nil {
				return res, err
			}
			for _, dims := range pri {
				for _, d := range dims {
					row.Balanced[d] = true
				}
			}
		} else {
			for d := range row.Balanced {
				row.Balanced[d] = true
			}
		}
		var fig Fig12Series
		err := pcu.Run(cfg.Ranks, func(ctx *pcu.Ctx) error {
			// Reconcile rank 0's local decode failure before Adopt's
			// collective schedule; a lone early return would strand the
			// other ranks.
			var sm *mesh.Mesh
			var loadErr error
			if ctx.Rank() == 0 {
				sm, loadErr = meshio.Read(bytes.NewReader(blob.Bytes()), model.Model)
			}
			if err := meshio.GatherErrors(ctx, loadErr, "decoding mesh on rank 0"); err != nil {
				return err
			}
			dm := partition.Adopt(ctx, model.Model, 3, sm, k)
			var plan map[mesh.Ent]int32
			if ctx.Rank() == 0 {
				plan = map[mesh.Ent]int32{}
				i := 0
				for el := range sm.Elements() {
					plan[el] = asg[i]
					i++
				}
			}
			partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))

			var before [4][]int64
			for d := 0; d <= 3; d++ {
				before[d] = partition.GatherCounts(dm, d)
			}
			elapsed := phgSeconds
			if pri != nil {
				start := time.Now()
				parma.Balance(dm, pri, parma.Config{Tolerance: cfg.Tol, MaxIters: cfg.MaxIters})
				elapsed = time.Since(start).Seconds()
			}
			// Gather on every rank (collective); record on rank 0 only
			// so the shared result structs see a single writer.
			for d := 0; d <= 3; d++ {
				counts := partition.GatherCounts(dm, d)
				mean, _ := partition.Imbalance(counts)
				if ctx.Rank() != 0 {
					continue
				}
				row.Mean[d] = mean
				ref := mean
				if ti > 0 {
					ref = t0Mean[d]
				}
				var max int64
				for _, c := range counts {
					if c > max {
						max = c
					}
				}
				if ref > 0 {
					row.Imb[d] = float64(max) / ref
				}
				if test.Name == "T2" {
					norm := func(cs []int64, m float64) []float64 {
						out := make([]float64, len(cs))
						for i, c := range cs {
							out[i] = float64(c) / m
						}
						return out
					}
					bm, _ := partition.Imbalance(before[d])
					switch d {
					case 0:
						fig.VtxBefore = norm(before[d], bm)
						fig.VtxAfter = norm(counts, bm)
					case 1:
						fig.EdgeBefore = norm(before[d], bm)
						fig.EdgeAfter = norm(counts, bm)
					}
				}
			}
			tr := partition.GatherBoundaryTraffic(dm, 0)
			if ctx.Rank() == 0 {
				row.Seconds = elapsed
				row.Boundary = tr.SharedTotal
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		if ti == 0 {
			t0Mean = row.Mean
		}
		if test.Name == "T2" {
			res.Fig12 = fig
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatTable renders the Table II / III reproduction the way the paper
// prints it.
func FormatTable(res TableResult) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "AAA surrogate: %d tets on %d parts (%d ranks x %d parts/rank), tol %.0f%%\n",
		res.SerialElems, res.Config.Parts, res.Config.Ranks,
		res.Config.Parts/res.Config.Ranks, (res.Config.Tol-1)*100)
	fmt.Fprintf(&b, "%-4s %-34s %10s %8s %10s %8s %10s %8s %10s %8s %9s %9s\n",
		"Test", "Method", "MeanRgn", "RgnImb%", "MeanFace", "FaceImb%",
		"MeanEdge", "EdgeImb%", "MeanVtx", "VtxImb%", "Time(s)", "BndVtx")
	for i, row := range res.Rows {
		method := Tests[i].Method
		if Tests[i].Priority != "" {
			method += " " + Tests[i].Priority
		}
		cell := func(d int) (string, string) {
			if !row.Balanced[d] && row.Test != "T0" {
				return "-", "-"
			}
			return fmt.Sprintf("%.0f", row.Mean[d]), fmt.Sprintf("%.2f", (row.Imb[d]-1)*100)
		}
		mr, ir := cell(3)
		mf, iff := cell(2)
		me, ie := cell(1)
		mv, iv := cell(0)
		// Region means always shown (the paper reports MeanRgn for all).
		mr = fmt.Sprintf("%.0f", row.Mean[3])
		ir = fmt.Sprintf("%.2f", (row.Imb[3]-1)*100)
		fmt.Fprintf(&b, "%-4s %-34s %10s %8s %10s %8s %10s %8s %10s %8s %9.3f %9d\n",
			row.Test, method, mr, ir, mf, iff, me, ie, mv, iv, row.Seconds, row.Boundary)
	}
	return b.String()
}
