package experiments

import (
	"bytes"
	"fmt"
	"time"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// HybridConfig scales the two-level communication study (§II-D: hybrid
// multi-threaded/MPI communication tested with up to 32 communicating
// threads on one Blue Gene/Q node).
type HybridConfig struct {
	// MaxWorkers is the largest rank count tested (paper: 32).
	MaxWorkers int
	// MsgBytes is the payload per neighbor message.
	MsgBytes int
	// Phases is the number of neighbor-exchange phases per measurement.
	Phases int
}

// DefaultHybridConfig mirrors the paper's 2..32 sweep.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{MaxWorkers: 32, MsgBytes: 256 << 10, Phases: 30}
}

// HybridPoint is one row of the sweep: the same neighbor-exchange
// workload run with all ranks sharing one node (on-node, by-reference
// message delivery) versus each rank on its own node (off-node,
// serialized copies).
type HybridPoint struct {
	Workers       int
	OnNodeSecs    float64
	OffNodeSecs   float64
	OnNodeBytes   int64
	OffNodeBytes  int64
	SpeedupOnNode float64 // OffNodeSecs / OnNodeSecs
}

// RunHybrid measures ring neighbor exchanges under the two placements
// for worker counts 2, 4, ..., MaxWorkers.
func RunHybrid(cfg HybridConfig) ([]HybridPoint, error) {
	var out []HybridPoint
	for w := 2; w <= cfg.MaxWorkers; w *= 2 {
		on, onStats, err := timedExchange(w, hwtopo.Cluster(1, w), cfg)
		if err != nil {
			return nil, err
		}
		off, offStats, err := timedExchange(w, hwtopo.Cluster(w, 1), cfg)
		if err != nil {
			return nil, err
		}
		pt := HybridPoint{
			Workers:      w,
			OnNodeSecs:   on,
			OffNodeSecs:  off,
			OnNodeBytes:  onStats.OnNodeBytes,
			OffNodeBytes: offStats.OffNodeBytes,
		}
		if on > 0 {
			pt.SpeedupOnNode = off / on
		}
		out = append(out, pt)
	}
	return out, nil
}

func timedExchange(workers int, topo hwtopo.Topology, cfg HybridConfig) (float64, pcu.Stats, error) {
	payload := make([]byte, cfg.MsgBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	var secs float64
	stats, err := pcu.RunOn(workers, topo, func(ctx *pcu.Ctx) error {
		next := (ctx.Rank() + 1) % ctx.Size()
		prev := (ctx.Rank() + ctx.Size() - 1) % ctx.Size()
		// Warm up the allocator and scheduler before timing.
		for p := 0; p < 5; p++ {
			ctx.To(next).Bytes(payload)
			ctx.To(prev).Bytes(payload)
			ctx.Exchange()
		}
		ctx.Barrier()
		start := time.Now()
		for p := 0; p < cfg.Phases; p++ {
			ctx.To(next).Bytes(payload)
			ctx.To(prev).Bytes(payload)
			msgs := ctx.Exchange()
			// On a 2-rank ring both sends target the same peer and
			// arrive as one message with two payloads.
			got := 0
			for _, m := range msgs {
				for !m.Data.Empty() {
					b := m.Data.BytesVal()
					if len(b) != cfg.MsgBytes {
						return fmt.Errorf("hybrid: short message %d", len(b))
					}
					got++
				}
			}
			if got != 2 {
				return fmt.Errorf("hybrid: got %d payloads", got)
			}
		}
		d := time.Since(start).Seconds()
		if ctx.Rank() == 0 {
			secs = d
		}
		return nil
	})
	return secs, stats, err
}

// FormatHybrid renders the sweep.
func FormatHybrid(points []HybridPoint) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%8s %14s %14s %12s\n", "workers", "on-node (s)", "off-node (s)", "off/on")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %14.6f %14.6f %12.2f\n",
			p.Workers, p.OnNodeSecs, p.OffNodeSecs, p.SpeedupOnNode)
	}
	return b.String()
}
