package experiments

import (
	"strings"
	"testing"
)

// Tiny-scale smoke runs of every experiment driver: these validate the
// pipelines end to end and the paper's qualitative shapes; the full
// defaults run from pumi-bench and the root benchmarks.

func tinyTableConfig() TableConfig {
	return TableConfig{NS: 10, N: 6, Parts: 8, Ranks: 4, Tol: 1.05, MaxIters: 40}
}

func TestRunTableShape(t *testing.T) {
	res, err := RunTable(tinyTableConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	t0 := res.Rows[0]
	if t0.Test != "T0" || t0.Mean[3] <= 0 {
		t.Fatalf("T0 row broken: %+v", t0)
	}
	// Table III shape: every ParMA test is much faster than the
	// hypergraph partitioner.
	for _, row := range res.Rows[1:] {
		if row.Seconds >= t0.Seconds {
			t.Errorf("%s: ParMA %.3fs not faster than PHG %.3fs", row.Test, row.Seconds, t0.Seconds)
		}
	}
	// Table II shape: each test improves (or at least does not worsen)
	// the peak imbalance of its highest-priority entity type relative
	// to T0.
	priDim := map[string]int{"T1": 0, "T2": 0, "T3": 1, "T4": 1}
	for _, row := range res.Rows[1:] {
		d := priDim[row.Test]
		if row.Imb[d] > t0.Imb[d]+1e-9 {
			t.Errorf("%s: dim %d imbalance %.3f worse than T0 %.3f", row.Test, d, row.Imb[d], t0.Imb[d])
		}
	}
	// Fig 12 series exist and the after-spread is no wider than before.
	if len(res.Fig12.VtxBefore) != 8 || len(res.Fig12.VtxAfter) != 8 {
		t.Fatalf("fig12 series missing: %d", len(res.Fig12.VtxBefore))
	}
	spread := func(s []float64) float64 {
		lo, hi := s[0], s[0]
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	if spread(res.Fig12.VtxAfter) > spread(res.Fig12.VtxBefore)+1e-9 {
		t.Errorf("vertex spread widened: %.3f -> %.3f",
			spread(res.Fig12.VtxBefore), spread(res.Fig12.VtxAfter))
	}
	out := FormatTable(res)
	if !strings.Contains(out, "T0") || !strings.Contains(out, "T4") {
		t.Fatalf("format output broken:\n%s", out)
	}
}

func TestRunFig13Shape(t *testing.T) {
	cfg := Fig13Config{
		NX: 10, NY: 6, NZ: 3, Parts: 8, Ranks: 4,
		Fine: 0.12, Coarse: 0.8, Band: 0.3, WithSplit: true,
	}
	res, err := RunFig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ElemAfter <= res.ElemBefore {
		t.Fatalf("no net refinement: %d -> %d", res.ElemBefore, res.ElemAfter)
	}
	// The shape: adaptation without balancing leaves a strong spike.
	if res.PeakImbalance < 1.5 {
		t.Fatalf("peak imbalance only %.2f", res.PeakImbalance)
	}
	if res.PartsBelow50 == 0 {
		t.Fatal("no starved parts; the histogram should have a left mass")
	}
	// Heavy part splitting + diffusion recovers substantially.
	if res.SplitImbalance >= res.PeakImbalance {
		t.Fatalf("split did not improve: %.2f -> %.2f", res.PeakImbalance, res.SplitImbalance)
	}
	if got := FormatFig13(res); !strings.Contains(got, "peak imbalance") {
		t.Fatal("format broken")
	}
}

func TestRunHybridShape(t *testing.T) {
	cfg := HybridConfig{MaxWorkers: 8, MsgBytes: 32 << 10, Phases: 30}
	points, err := RunHybrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 { // 2, 4, 8
		t.Fatalf("points = %d", len(points))
	}
	// Traffic classification must match the placement.
	for _, p := range points {
		if p.OnNodeBytes == 0 || p.OffNodeBytes == 0 {
			t.Fatalf("traffic not classified: %+v", p)
		}
	}
	if got := FormatHybrid(points); !strings.Contains(got, "workers") {
		t.Fatal("format broken")
	}
}

func TestRunMigrateShape(t *testing.T) {
	cfg := MigrateConfig{NX: 8, NY: 8, NZ: 8, PartCounts: []int{2, 4}}
	points, err := RunMigrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Elements != 6*8*8*8 {
			t.Fatalf("elements = %d", p.Elements)
		}
		if p.DistributeSecs <= 0 || p.GhostSecs <= 0 || p.GhostElems == 0 {
			t.Fatalf("timings missing: %+v", p)
		}
	}
	// More parts -> more boundary.
	if points[1].BoundaryVtx <= points[0].BoundaryVtx {
		t.Fatalf("boundary did not grow: %+v", points)
	}
	if got := FormatMigrate(points); !strings.Contains(got, "distribute") {
		t.Fatal("format broken")
	}
}

func TestRunLocalSplitShape(t *testing.T) {
	cfg := LocalSplitConfig{NX: 12, NY: 12, NZ: 6, CoarseParts: 4, SplitFactor: 8, Ranks: 4}
	res, err := RunLocalSplit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The spike: local splitting yields worse vertex imbalance than
	// the global partition.
	if res.SplitVtxImb <= res.CoarseVtxImb {
		t.Fatalf("no spike: coarse %.3f split %.3f", res.CoarseVtxImb, res.SplitVtxImb)
	}
	// ParMA recovers: either it improved the spike, or the spike was
	// already within the balancer's 5% tolerance.
	if res.ParMAVtxImb > res.SplitVtxImb || (res.ParMAVtxImb == res.SplitVtxImb && res.SplitVtxImb > 1.05) {
		t.Fatalf("no recovery: %.3f -> %.3f", res.SplitVtxImb, res.ParMAVtxImb)
	}
	if got := FormatLocalSplit(res); !strings.Contains(got, "improvement") {
		t.Fatal("format broken")
	}
}
