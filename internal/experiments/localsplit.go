package experiments

import (
	"bytes"
	"fmt"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// LocalSplitConfig scales the large-part-count study from §III-A: the
// paper creates a 1.5M-part mesh by locally splitting each part of a
// 16,384-part mesh into 96, observes the vertex imbalance jump from 9%
// to 54%, and recovers more than 10 points with ParMA Vtx>Rgn.
type LocalSplitConfig struct {
	NX, NY, NZ int
	// CoarseParts is the globally partitioned part count.
	CoarseParts int
	// SplitFactor multiplies the part count by local splitting.
	SplitFactor int
	// Ranks is the process count (must divide both part counts).
	Ranks int
}

// DefaultLocalSplitConfig splits 4 global parts x16 into 64 small
// parts (~80 tets each), where boundary duplication spikes the vertex
// imbalance the way the paper's 1.5M-part mesh does.
func DefaultLocalSplitConfig() LocalSplitConfig {
	return LocalSplitConfig{NX: 14, NY: 14, NZ: 7, CoarseParts: 4, SplitFactor: 16, Ranks: 4}
}

// LocalSplitResult reports the imbalance at each stage.
type LocalSplitResult struct {
	Config LocalSplitConfig
	// CoarseVtxImb is the vertex imbalance of the global partition.
	CoarseVtxImb float64
	// SplitVtxImb after local splitting (the spike).
	SplitVtxImb float64
	// ParMAVtxImb after ParMA Vtx>Rgn improvement.
	ParMAVtxImb float64
	RgnImbAfter float64
}

// RunLocalSplit reproduces the local-splitting imbalance spike and
// ParMA's recovery.
func RunLocalSplit(cfg LocalSplitConfig) (LocalSplitResult, error) {
	res := LocalSplitResult{Config: cfg}
	model := gmi.Box(2, 2, 1)
	fine := cfg.CoarseParts * cfg.SplitFactor
	if fine%cfg.Ranks != 0 {
		return res, fmt.Errorf("experiments: %d parts not divisible by %d ranks", fine, cfg.Ranks)
	}
	k := fine / cfg.Ranks
	err := pcu.Run(cfg.Ranks, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, cfg.NX, cfg.NY, cfg.NZ)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, k)
		// Global partition to CoarseParts, placed on part ids
		// p*SplitFactor so each coarse part has empty sibling slots.
		var plan map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			g, els := zpart.DualGraph(serial)
			assign := zpart.MLGraph(g, cfg.CoarseParts)
			plan = map[mesh.Ent]int32{}
			for i, el := range els {
				plan[el] = assign[i] * int32(cfg.SplitFactor)
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, plan))
		coarseImb := occupiedImbalance(dm, 0)

		// Local split: every non-empty part RIBs its own elements into
		// SplitFactor pieces with no global view.
		plans := make([]partition.Plan, len(dm.Parts))
		for i, part := range dm.Parts {
			m := part.M
			if m.CountType(mesh.Tet) == 0 {
				continue
			}
			in, els := zpart.Centroids(m)
			sub := zpart.RIB(in, cfg.SplitFactor)
			plans[i] = partition.Plan{}
			for j, el := range els {
				if sub[j] > 0 {
					plans[i][el] = m.Part() + int32(sub[j])
				}
			}
		}
		partition.Migrate(dm, plans)
		_, splitImb := partition.EntityImbalance(dm, 0)

		pri, _ := parma.ParsePriority("Vtx>Rgn")
		parma.Balance(dm, pri, parma.Config{Tolerance: 1.05, MaxIters: 80})
		_, afterImb := partition.EntityImbalance(dm, 0)
		_, rgnImb := partition.EntityImbalance(dm, 3)
		if err := partition.CheckDistributed(dm); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			res.CoarseVtxImb = coarseImb
			res.SplitVtxImb = splitImb
			res.ParMAVtxImb = afterImb
			res.RgnImbAfter = rgnImb
		}
		return nil
	})
	return res, err
}

// occupiedImbalance computes max/mean over the non-empty parts only
// (the coarse stage leaves the sibling slots empty by construction).
func occupiedImbalance(dm *partition.DMesh, dim int) float64 {
	counts := partition.GatherCounts(dm, dim)
	var occ []int64
	for _, c := range counts {
		if c > 0 {
			occ = append(occ, c)
		}
	}
	_, imb := partition.Imbalance(occ)
	return imb
}

// FormatLocalSplit renders the result.
func FormatLocalSplit(res LocalSplitResult) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "global partition to %d parts:         vtx imbalance %.1f%%\n",
		res.Config.CoarseParts, (res.CoarseVtxImb-1)*100)
	fmt.Fprintf(&b, "local split x%d to %d parts:           vtx imbalance %.1f%% (the spike)\n",
		res.Config.SplitFactor, res.Config.CoarseParts*res.Config.SplitFactor,
		(res.SplitVtxImb-1)*100)
	fmt.Fprintf(&b, "after ParMA Vtx>Rgn:                  vtx imbalance %.1f%% (rgn %.1f%%)\n",
		(res.ParMAVtxImb-1)*100, (res.RgnImbAfter-1)*100)
	fmt.Fprintf(&b, "improvement: %.1f points (paper: >10 points on the 1.5M-part mesh)\n",
		(res.SplitVtxImb-res.ParMAVtxImb)*100)
	return b.String()
}
