package field

import (
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/vec"
)

// Point location and mesh-to-mesh solution transfer: the paper's intro
// lists mesh-to-mesh transfer among the unstructured-mesh services
// FASTMath develops on PUMI. Locate walks the simplex mesh toward a
// point through face neighbors; Transfer re-samples a field from one
// mesh onto the nodes of another.

// locateTol accepts barycentric coordinates slightly below zero so
// points on faces/edges land in either neighbor.
const locateTol = -1e-10

// Locate finds the simplex element of m containing point p, starting
// from hint (pass NilEnt to start anywhere). It returns the element and
// its barycentric coordinates at p; ok is false if p lies outside the
// mesh (the nearest element visited is still returned, useful for
// boundary rounding).
func Locate(m *mesh.Mesh, p vec.V, hint mesh.Ent) (el mesh.Ent, bary []float64, ok bool) {
	cur := hint
	if !cur.Ok() || !m.Alive(cur) {
		for e := range m.Elements() {
			cur = e
			break
		}
	}
	if !cur.Ok() {
		return mesh.NilEnt, nil, false
	}
	d := m.Dim()
	visited := map[mesh.Ent]bool{}
	for step := 0; step < m.Count(d)+1; step++ {
		b := Barycentric(m, cur, p)
		worst, wi := b[0], 0
		for i, w := range b {
			if w < worst {
				worst, wi = w, i
			}
		}
		if worst >= locateTol {
			return cur, b, true
		}
		visited[cur] = true
		// Walk through the face opposite the most negative coordinate.
		next := walkNeighbor(m, cur, wi)
		if !next.Ok() || visited[next] {
			// Stuck (left the mesh or cycling on a boundary): fall back
			// to scanning for any containing element.
			return scanLocate(m, p, cur)
		}
		cur = next
	}
	return scanLocate(m, p, cur)
}

// walkNeighbor returns the element across the facet opposite vertex wi
// of el, or NilEnt on the boundary.
func walkNeighbor(m *mesh.Mesh, el mesh.Ent, wi int) mesh.Ent {
	verts := m.Verts(el)
	// The facet opposite verts[wi]: the other vertices.
	facet := make([]mesh.Ent, 0, len(verts)-1)
	for i, v := range verts {
		if i != wi {
			facet = append(facet, v)
		}
	}
	var ft mesh.Type
	if m.Dim() == 3 {
		ft = mesh.Tri
	} else {
		ft = mesh.Edge
	}
	f := m.FindFromVerts(ft, facet)
	if !f.Ok() {
		return mesh.NilEnt
	}
	for _, up := range m.Up(f) {
		if up != el {
			return up
		}
	}
	return mesh.NilEnt
}

// scanLocate linearly scans for a containing element; if none contains
// p, it returns the element minimizing the worst barycentric violation.
func scanLocate(m *mesh.Mesh, p vec.V, fallback mesh.Ent) (mesh.Ent, []float64, bool) {
	best := fallback
	bestWorst := -1e30
	var bestBary []float64
	for e := range m.Elements() {
		if m.IsGhost(e) {
			continue
		}
		b := Barycentric(m, e, p)
		worst := b[0]
		for _, w := range b {
			if w < worst {
				worst = w
			}
		}
		if worst >= locateTol {
			return e, b, true
		}
		if worst > bestWorst {
			bestWorst, best, bestBary = worst, e, b
		}
	}
	return best, bestBary, false
}

// Transfer re-samples the named linear field from src onto the vertex
// nodes of dst (mesh-to-mesh solution transfer). Destination nodes
// outside src (within boundary rounding) take the value of the nearest
// src element. It returns the number of nodes that required the
// outside-fallback. The field must already exist on both meshes.
func Transfer(src, dst *mesh.Mesh, name string) int {
	fs := Find(src, name, Linear)
	fd := Find(dst, name, Linear)
	if fs == nil || fd == nil {
		return -1
	}
	outside := 0
	hint := mesh.NilEnt
	for v := range dst.Iter(0) {
		p := dst.Coord(v)
		el, _, ok := Locate(src, p, hint)
		if !el.Ok() {
			continue
		}
		hint = el
		if !ok {
			outside++
		}
		fd.Set(v, fs.Eval(el, p)...)
	}
	return outside
}
