package field

import (
	"fmt"
	"math"
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
)

func TestCreateAndAccess(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 2, 2, 2)
	f, err := New(m, "pressure", 1, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, "pressure", 1, Linear); err == nil {
		t.Fatal("duplicate field accepted")
	}
	if f.Name() != "pressure" || f.Components() != 1 || f.Shape() != Linear {
		t.Fatal("metadata wrong")
	}
	var v0 mesh.Ent
	for v := range m.Iter(0) {
		v0 = v
		break
	}
	f.Set(v0, 3.5)
	if got, ok := f.Get(v0); !ok || got[0] != 3.5 {
		t.Fatalf("Get = %v %v", got, ok)
	}
	if got := f.MustGet(mesh.Ent{T: mesh.Vertex, I: v0.I + 1}); got[0] != 0 {
		t.Fatal("MustGet of unset node")
	}
	if Find(m, "pressure", Linear) == nil || Find(m, "nope", Linear) != nil {
		t.Fatal("Find wrong")
	}
	// Linear fields reject edge nodes.
	var e0 mesh.Ent
	for e := range m.Iter(1) {
		e0 = e
		break
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("edge node on linear field accepted")
			}
		}()
		f.Set(e0, 1.0)
	}()
}

func TestLinearReproducesLinearFunction(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 3, 3, 3)
	f, _ := New(m, "u", 1, Linear)
	fn := func(p vec.V) []float64 { return []float64{2*p.X - 3*p.Y + p.Z + 1} }
	f.SetByFunc(fn)
	// Linear interpolation is exact for linear functions at any point.
	for el := range m.Elements() {
		c := m.Centroid(el)
		got := f.Eval(el, c)
		want := fn(c)
		if math.Abs(got[0]-want[0]) > 1e-12 {
			t.Fatalf("eval %g want %g", got[0], want[0])
		}
	}
	if d := f.L2Diff(fn); d > 1e-12 {
		t.Fatalf("L2 diff = %g", d)
	}
}

func TestQuadraticReproducesQuadratic(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 2, 2, 2)
	f, _ := New(m, "u", 1, Quadratic)
	fn := func(p vec.V) []float64 { return []float64{p.X*p.X + p.Y*p.Z - p.X + 2} }
	f.SetByFunc(fn)
	for el := range m.Elements() {
		c := m.Centroid(el)
		got := f.Eval(el, c)
		want := fn(c)
		if math.Abs(got[0]-want[0]) > 1e-10 {
			t.Fatalf("eval %g want %g at %v", got[0], want[0], c)
		}
	}
}

func TestBarycentric(t *testing.T) {
	m := mesh.New(nil, 3)
	vs := []mesh.Ent{
		m.CreateVertex(gmi.NoRef, vec.V{}),
		m.CreateVertex(gmi.NoRef, vec.V{X: 1}),
		m.CreateVertex(gmi.NoRef, vec.V{Y: 1}),
		m.CreateVertex(gmi.NoRef, vec.V{Z: 1}),
	}
	tet := m.BuildFromVerts(mesh.Tet, vs, gmi.NoRef)
	b := Barycentric(m, tet, vec.V{X: 0.25, Y: 0.25, Z: 0.25})
	sum := 0.0
	for _, w := range b {
		sum += w
		if w < -1e-12 {
			t.Fatalf("negative weight inside: %v", b)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %g", sum)
	}
	// At a vertex, its weight is 1.
	verts := m.Verts(tet)
	b = Barycentric(m, tet, m.Coord(verts[2]))
	if math.Abs(b[2]-1) > 1e-12 {
		t.Fatalf("vertex weight = %v", b)
	}
	// 2D triangle.
	m2 := meshgen.Rect2D(gmi.Rect(1, 1), 1, 1)
	for el := range m2.Elements() {
		c := m2.Centroid(el)
		b := Barycentric(m2, el, c)
		for _, w := range b {
			if math.Abs(w-1.0/3) > 1e-9 {
				t.Fatalf("centroid bary = %v", b)
			}
		}
	}
}

func TestVectorField(t *testing.T) {
	m := meshgen.Rect2D(gmi.Rect(1, 1), 2, 2)
	f, _ := New(m, "vel", 3, Linear)
	f.SetByFunc(func(p vec.V) []float64 { return []float64{p.X, p.Y, 0} })
	for el := range m.Elements() {
		c := m.Centroid(el)
		got := f.Eval(el, c)
		if math.Abs(got[0]-c.X) > 1e-12 || math.Abs(got[1]-c.Y) > 1e-12 {
			t.Fatalf("vector eval %v at %v", got, c)
		}
	}
}

func distField(ctx *pcu.Ctx) *partition.DMesh {
	model := gmi.Box(2, 1, 1)
	var serial *mesh.Mesh
	if ctx.Rank() == 0 {
		serial = meshgen.Box3D(model, 4, 2, 2)
	}
	dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
	var assign map[mesh.Ent]int32
	if ctx.Rank() == 0 {
		assign = map[mesh.Ent]int32{}
		for el := range serial.Elements() {
			if serial.Centroid(el).X >= 1 {
				assign[el] = 1
			}
		}
	}
	partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
	return dm
}

func TestSyncAcrossParts(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		dm := distField(ctx)
		for _, part := range dm.Parts {
			f, err := New(part.M, "u", 1, Linear)
			if err != nil {
				return err
			}
			// Owners write rank-dependent garbage on copies first.
			for v := range part.M.Iter(0) {
				if part.M.IsOwned(v) {
					f.Set(v, part.M.Coord(v).X*10)
				} else {
					f.Set(v, -999)
				}
			}
		}
		Sync(dm, "u", Linear)
		for _, part := range dm.Parts {
			m := part.M
			f := Find(m, "u", Linear)
			for v := range m.Iter(0) {
				got, ok := f.Get(v)
				if !ok {
					return fmt.Errorf("node unset after sync")
				}
				want := m.Coord(v).X * 10
				if math.Abs(got[0]-want) > 1e-12 {
					return fmt.Errorf("node %v = %g, want %g (owned=%v)", v, got[0], want, m.IsOwned(v))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccumulateShared(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		dm := distField(ctx)
		for _, part := range dm.Parts {
			f, _ := New(part.M, "a", 1, Linear)
			for v := range part.M.Iter(0) {
				f.Set(v, 1) // each copy contributes 1
			}
		}
		AccumulateShared(dm, "a", Linear)
		for _, part := range dm.Parts {
			m := part.M
			f := Find(m, "a", Linear)
			for v := range m.Iter(0) {
				got, _ := f.Get(v)
				want := 1.0
				if m.IsShared(v) && m.IsOwned(v) {
					want = float64(m.Residence(v).Len())
				}
				if m.IsShared(v) && !m.IsOwned(v) {
					want = 1.0 // non-owners untouched
				}
				if got[0] != want {
					return fmt.Errorf("v %v: %g want %g", v, got[0], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGlobalNumbering(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		dm := distField(ctx)
		num := Number(dm, Linear)
		want := partition.GlobalCount(dm, 0)
		if num.Total != want {
			return fmt.Errorf("total = %d, want %d", num.Total, want)
		}
		// Every node has an id in range; shared copies agree with
		// owners (verified by re-gathering ids through a second sync).
		for i, part := range dm.Parts {
			m := part.M
			for v := range m.Iter(0) {
				id, ok := num.IDs[i][v]
				if !ok {
					return fmt.Errorf("node %v unnumbered", v)
				}
				if id < 0 || id >= num.Total {
					return fmt.Errorf("id %d out of range", id)
				}
			}
		}
		// Owned ids are unique globally: sum of ids of owned nodes over
		// all ranks must be total*(total-1)/2.
		var localSum int64
		for i, part := range dm.Parts {
			m := part.M
			for v := range m.Iter(0) {
				if m.IsOwned(v) {
					localSum += num.IDs[i][v]
				}
			}
		}
		sum := pcu.SumInt64(dm.Ctx, localSum)
		if sum != num.Total*(num.Total-1)/2 {
			return fmt.Errorf("ids not a permutation: sum %d", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLumpedMassAssembly exercises the parallel FE assembly pattern:
// every element adds vol/4 to its vertex nodes, non-owner contributions
// accumulate into owners, owners redistribute. The grand total must be
// exactly the mesh volume, and shared nodes must agree across parts.
func TestLumpedMassAssembly(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		dm := distField(ctx)
		for _, part := range dm.Parts {
			m := part.M
			f, err := New(m, "mass", 1, Linear)
			if err != nil {
				return err
			}
			for v := range m.Iter(0) {
				f.Set(v, 0)
			}
			for el := range m.Elements() {
				share := m.Measure(el) / 4
				for _, v := range m.Adjacent(el, 0) {
					cur := f.MustGet(v)
					f.Set(v, cur[0]+share)
				}
			}
		}
		AccumulateShared(dm, "mass", Linear)
		Sync(dm, "mass", Linear)
		// Total over owned nodes = volume of the box (2x1x1).
		var total float64
		for _, part := range dm.Parts {
			m := part.M
			f := Find(m, "mass", Linear)
			for v := range m.Iter(0) {
				if m.IsOwned(v) {
					total += f.MustGet(v)[0]
				}
			}
		}
		sum := pcu.SumFloat64(ctx, total)
		if math.Abs(sum-2) > 1e-9 {
			return fmt.Errorf("assembled mass %g, want 2", sum)
		}
		// Shared copies agree after Sync: verified via a second
		// accumulate which would double-count if they did not...
		// instead assert each shared node's value equals its owner's
		// by checking against the analytic row sum through a global
		// numbering round trip.
		num := Number(dm, Linear)
		if num.Total != partition.GlobalCount(dm, 0) {
			return fmt.Errorf("numbering total mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFieldUtilityAccessors(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 2, 2, 2)
	f, _ := New(m, "w", 1, Quadratic)
	if f.Mesh() != m {
		t.Fatal("Mesh accessor")
	}
	if got := f.CountNodes(); got != m.Count(0)+m.Count(1) {
		t.Fatalf("CountNodes = %d", got)
	}
	var el mesh.Ent
	for e := range m.Elements() {
		el = e
		break
	}
	nodes := f.NodeEntities(el)
	if len(nodes) != 4+6 {
		t.Fatalf("tet quadratic nodes = %d", len(nodes))
	}
	lin, _ := New(m, "l", 1, Linear)
	if len(lin.NodeEntities(el)) != 4 {
		t.Fatal("tet linear nodes")
	}
	if got := lin.CountNodes(); got != m.Count(0) {
		t.Fatalf("linear CountNodes = %d", got)
	}
	// Shape helpers.
	if Linear.HasNodes(1) || !Quadratic.HasNodes(1) || !Linear.HasNodes(0) {
		t.Fatal("HasNodes")
	}
	if len(Quadratic.NodeDims()) != 2 {
		t.Fatal("NodeDims")
	}
}
