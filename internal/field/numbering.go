package field

import (
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// Numbering assigns consecutive global degree-of-freedom ids to the
// nodes of a field across a distributed mesh: each owned node gets a
// unique id, copies of shared nodes receive their owner's id. This is
// the global numbering an FE solver needs to assemble a distributed
// linear system.
type Numbering struct {
	// IDs maps node entities to global ids, per local part index.
	IDs []map[mesh.Ent]int64
	// Total is the global DOF count.
	Total int64
	// OwnedBase is this rank's first id.
	OwnedBase int64
}

// Number globally numbers the field's nodes (collective). Nodes are
// numbered rank by rank in entity-iteration order.
func Number(dm *partition.DMesh, shape Shape) *Numbering {
	num := &Numbering{IDs: make([]map[mesh.Ent]int64, len(dm.Parts))}
	// Count owned nodes per rank.
	var owned int64
	for i, part := range dm.Parts {
		num.IDs[i] = map[mesh.Ent]int64{}
		m := part.M
		for _, d := range shape.NodeDims() {
			for e := range m.Iter(d) {
				if !m.IsGhost(e) && m.IsOwned(e) {
					owned++
				}
			}
		}
	}
	base := pcu.ExscanInt64(dm.Ctx, owned)
	num.OwnedBase = base
	num.Total = pcu.SumInt64(dm.Ctx, owned)
	next := base
	for i, part := range dm.Parts {
		m := part.M
		for _, d := range shape.NodeDims() {
			for e := range m.Iter(d) {
				if !m.IsGhost(e) && m.IsOwned(e) {
					num.IDs[i][e] = next
					next++
				}
			}
		}
	}
	// Distribute owner ids to copies.
	idsOf := func(p *partition.Part) map[mesh.Ent]int64 {
		for i, part := range dm.Parts {
			if part == p {
				return num.IDs[i]
			}
		}
		return nil
	}
	partition.SyncShared(dm, shape.NodeDims(),
		func(p *partition.Part, e mesh.Ent, b *pcu.Buffer) {
			b.Int64(idsOf(p)[e])
		},
		func(p *partition.Part, e mesh.Ent, r *pcu.Reader) {
			idsOf(p)[e] = r.Int64()
		})
	return num
}
