package field

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/vec"
)

func TestLocateInterior(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 4, 4, 4)
	cases := []vec.V{
		{X: 0.5, Y: 0.5, Z: 0.5},
		{X: 0.01, Y: 0.01, Z: 0.01},
		{X: 0.99, Y: 0.5, Z: 0.13},
		{X: 0.25, Y: 0.75, Z: 0.5},
	}
	hint := mesh.NilEnt
	for _, p := range cases {
		el, bary, ok := Locate(m, p, hint)
		if !ok {
			t.Fatalf("point %v not located", p)
		}
		hint = el
		// The barycentric reconstruction must reproduce the point.
		vs := m.Verts(el)
		var q vec.V
		for i, v := range vs {
			q = q.Add(m.Coord(v).Scale(bary[i]))
		}
		if q.Dist(p) > 1e-10 {
			t.Fatalf("reconstructed %v, want %v", q, p)
		}
	}
}

func TestLocateOutside(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 2, 2, 2)
	el, _, ok := Locate(m, vec.V{X: 5, Y: 5, Z: 5}, mesh.NilEnt)
	if ok {
		t.Fatal("outside point reported inside")
	}
	if !el.Ok() {
		t.Fatal("no nearest element returned")
	}
}

func TestLocate2D(t *testing.T) {
	m := meshgen.Rect2D(gmi.Rect(2, 1), 6, 3)
	el, _, ok := Locate(m, vec.V{X: 1.3, Y: 0.4}, mesh.NilEnt)
	if !ok || !el.Ok() {
		t.Fatal("2D locate failed")
	}
}

// Property: every random interior point is located, and the containing
// element's barycentric coordinates are a convex combination.
func TestLocateProperty(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 3, 3, 3)
	f := func(a, b, c uint16) bool {
		p := vec.V{
			X: float64(a) / 65536,
			Y: float64(b) / 65536,
			Z: float64(c) / 65536,
		}
		_, bary, ok := Locate(m, p, mesh.NilEnt)
		if !ok {
			return false
		}
		sum := 0.0
		for _, w := range bary {
			if w < locateTol {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshToMeshTransfer(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	src := meshgen.Box3D(model, 5, 5, 5)
	dst := meshgen.Box3D(model, 3, 4, 7) // non-nested grid
	fn := func(p vec.V) []float64 { return []float64{1 + 2*p.X - p.Y + 3*p.Z} }
	fs, _ := New(src, "u", 1, Linear)
	fs.SetByFunc(fn)
	if _, err := New(dst, "u", 1, Linear); err != nil {
		t.Fatal(err)
	}
	outside := Transfer(src, dst, "u")
	if outside != 0 {
		t.Fatalf("%d nodes fell outside an identical domain", outside)
	}
	// Linear functions transfer exactly between meshes of the same
	// domain.
	fd := Find(dst, "u", Linear)
	for v := range dst.Iter(0) {
		got, ok := fd.Get(v)
		if !ok {
			t.Fatalf("node %v not transferred", v)
		}
		want := fn(dst.Coord(v))
		if math.Abs(got[0]-want[0]) > 1e-9 {
			t.Fatalf("node %v: %g want %g", v, got[0], want[0])
		}
	}
	// Missing fields report failure.
	if Transfer(src, dst, "nope") != -1 {
		t.Fatal("missing field not reported")
	}
}

func TestTransferAcrossAdaptedMesh(t *testing.T) {
	// Transfer from a coarse mesh onto a finer version of the same
	// domain, a mesh-to-mesh transfer use case after remeshing.
	model := gmi.Box(2, 1, 1)
	src := meshgen.Box3D(model, 4, 2, 2)
	dst := meshgen.Box3D(model, 9, 5, 5)
	fn := func(p vec.V) []float64 { return []float64{p.X * 2} }
	fs, _ := New(src, "phi", 1, Linear)
	fs.SetByFunc(fn)
	New(dst, "phi", 1, Linear)
	if out := Transfer(src, dst, "phi"); out != 0 {
		t.Fatalf("outside nodes: %d", out)
	}
	fd := Find(dst, "phi", Linear)
	worst := 0.0
	for v := range dst.Iter(0) {
		got := fd.MustGet(v)
		want := fn(dst.Coord(v))
		if d := math.Abs(got[0] - want[0]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("worst transfer error %g", worst)
	}
}
