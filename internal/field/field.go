// Package field implements the third of PUMI's three data models: the
// tensor quantities defining physical parameter distributions of the
// PDE over the mesh. A field attaches nodal values to mesh entities
// according to its shape — linear Lagrange (nodes on vertices) or
// quadratic Lagrange (nodes on vertices and edges) — and supports
// evaluation inside elements, global DOF numbering across a distributed
// mesh, synchronization of shared nodes, and solution transfer under
// mesh modification.
package field

import (
	"fmt"
	"math"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
)

// Shape selects the nodal distribution of a field.
type Shape int

// Supported shapes.
const (
	// Linear places one node on every mesh vertex.
	Linear Shape = iota
	// Quadratic places nodes on vertices and edge midpoints.
	Quadratic
)

// HasNodes reports whether the shape places nodes on entities of the
// given dimension.
func (s Shape) HasNodes(dim int) bool {
	switch s {
	case Linear:
		return dim == 0
	case Quadratic:
		return dim <= 1
	}
	return false
}

// NodeDims lists the dimensions carrying nodes.
func (s Shape) NodeDims() []int {
	if s == Quadratic {
		return []int{0, 1}
	}
	return []int{0}
}

// Field is a tensor field over one mesh part. Values are stored under a
// mesh tag, so they follow entity lifecycle automatically.
type Field struct {
	m     *mesh.Mesh
	name  string
	comps int
	shape Shape
	tag   *ds.Tag
}

// New creates a field with the given number of components per node.
func New(m *mesh.Mesh, name string, comps int, shape Shape) (*Field, error) {
	if comps < 1 {
		return nil, fmt.Errorf("field: %d components", comps)
	}
	tag, err := m.Tags.Create("field:"+name, ds.TagFloatSlice, comps)
	if err != nil {
		return nil, err
	}
	return &Field{m: m, name: name, comps: comps, shape: shape, tag: tag}, nil
}

// Find returns the existing field of that name on the mesh, or nil.
// The shape and component count must be supplied by the caller's
// convention; Find trusts the tag size for comps.
func Find(m *mesh.Mesh, name string, shape Shape) *Field {
	tag := m.Tags.Find("field:" + name)
	if tag == nil {
		return nil
	}
	return &Field{m: m, name: name, comps: tag.Size, shape: shape, tag: tag}
}

// Name returns the field name.
func (f *Field) Name() string { return f.name }

// Components returns the tensor component count per node.
func (f *Field) Components() int { return f.comps }

// Shape returns the field's nodal shape.
func (f *Field) Shape() Shape { return f.shape }

// Mesh returns the underlying mesh part.
func (f *Field) Mesh() *mesh.Mesh { return f.m }

// Set stores nodal values on a node-bearing entity.
func (f *Field) Set(e mesh.Ent, vals ...float64) {
	if !f.shape.HasNodes(e.Dim()) {
		panic(fmt.Sprintf("field %s: no nodes on %v", f.name, e))
	}
	f.m.Tags.SetFloats(f.tag, e, vals)
}

// Get reads nodal values; ok is false when the node is unset.
func (f *Field) Get(e mesh.Ent) ([]float64, bool) {
	return f.m.Tags.GetFloats(f.tag, e)
}

// MustGet reads nodal values, returning zeros when unset.
func (f *Field) MustGet(e mesh.Ent) []float64 {
	if v, ok := f.Get(e); ok {
		return v
	}
	return make([]float64, f.comps)
}

// SetByFunc fills every node from an analytic function of position
// (edge nodes use the midpoint).
func (f *Field) SetByFunc(fn func(vec.V) []float64) {
	for _, d := range f.shape.NodeDims() {
		for e := range f.m.Iter(d) {
			f.Set(e, fn(f.m.Centroid(e))...)
		}
	}
}

// NodeEntities returns the node-bearing entities of an element in a
// deterministic order: vertices then (for quadratic) edges — the order
// an element matrix indexes its local DOFs.
func (f *Field) NodeEntities(el mesh.Ent) []mesh.Ent {
	nodes := f.m.Adjacent(el, 0)
	if f.shape == Quadratic {
		nodes = append(nodes, f.m.Adjacent(el, 1)...)
	}
	return nodes
}

// CountNodes returns the number of node-bearing entities on the part
// (ghosts excluded).
func (f *Field) CountNodes() int {
	n := 0
	for _, d := range f.shape.NodeDims() {
		for e := range f.m.Iter(d) {
			if !f.m.IsGhost(e) {
				n++
			}
		}
	}
	return n
}

// Barycentric returns the barycentric coordinates of point p in a
// simplex element (tri in 2D with z ignored, tet in 3D). Coordinates
// may be negative when p is outside.
func Barycentric(m *mesh.Mesh, el mesh.Ent, p vec.V) []float64 {
	vs := m.Verts(el)
	switch el.T {
	case mesh.Tet:
		a, b, c, d := m.Coord(vs[0]), m.Coord(vs[1]), m.Coord(vs[2]), m.Coord(vs[3])
		vol := vec.TetVolume(a, b, c, d)
		if vol == 0 {
			return []float64{0.25, 0.25, 0.25, 0.25}
		}
		return []float64{
			vec.TetVolume(p, b, c, d) / vol,
			vec.TetVolume(a, p, c, d) / vol,
			vec.TetVolume(a, b, p, d) / vol,
			vec.TetVolume(a, b, c, p) / vol,
		}
	case mesh.Tri:
		a, b, c := m.Coord(vs[0]), m.Coord(vs[1]), m.Coord(vs[2])
		// Signed areas in the triangle's plane via cross products.
		n := b.Sub(a).Cross(c.Sub(a))
		den := n.Norm2()
		if den == 0 {
			return []float64{1. / 3, 1. / 3, 1. / 3}
		}
		w0 := b.Sub(p).Cross(c.Sub(p)).Dot(n) / den
		w1 := c.Sub(p).Cross(a.Sub(p)).Dot(n) / den
		w2 := 1 - w0 - w1
		return []float64{w0, w1, w2}
	}
	panic(fmt.Sprintf("field: barycentric unsupported for %v", el.T))
}

// Eval interpolates the field at point p inside simplex element el.
func (f *Field) Eval(el mesh.Ent, p vec.V) []float64 {
	bary := Barycentric(f.m, el, p)
	vs := f.m.Verts(el)
	out := make([]float64, f.comps)
	switch f.shape {
	case Linear:
		for i, v := range vs {
			nv := f.MustGet(v)
			for c := 0; c < f.comps; c++ {
				out[c] += bary[i] * nv[c]
			}
		}
	case Quadratic:
		// Standard quadratic Lagrange on simplices: vertex shapes
		// L_i(2L_i - 1), edge shapes 4 L_i L_j.
		for i, v := range vs {
			w := bary[i] * (2*bary[i] - 1)
			nv := f.MustGet(v)
			for c := 0; c < f.comps; c++ {
				out[c] += w * nv[c]
			}
		}
		n := len(vs)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edge := f.m.FindFromVerts(mesh.Edge, []mesh.Ent{vs[i], vs[j]})
				if !edge.Ok() {
					continue
				}
				w := 4 * bary[i] * bary[j]
				nv := f.MustGet(edge)
				for c := 0; c < f.comps; c++ {
					out[c] += w * nv[c]
				}
			}
		}
	}
	return out
}

// L2Diff integrates the squared difference between the field and an
// analytic function over the mesh with one-point (centroid) quadrature,
// returning its square root — a convergence-test helper.
func (f *Field) L2Diff(fn func(vec.V) []float64) float64 {
	sum := 0.0
	for el := range f.m.Elements() {
		if f.m.IsGhost(el) {
			continue
		}
		c := f.m.Centroid(el)
		got := f.Eval(el, c)
		want := fn(c)
		d2 := 0.0
		for i := range got {
			d2 += (got[i] - want[i]) * (got[i] - want[i])
		}
		sum += d2 * f.m.Measure(el)
	}
	return math.Sqrt(sum)
}

// Sync pushes owned shared node values to all remote copies, making the
// field single-valued across part boundaries (collective).
func Sync(dm *partition.DMesh, name string, shape Shape) {
	partition.SyncShared(dm, shape.NodeDims(),
		func(p *partition.Part, e mesh.Ent, b *pcu.Buffer) {
			f := Find(p.M, name, shape)
			if f == nil {
				b.Float64s(nil)
				return
			}
			v, ok := f.Get(e)
			if !ok {
				b.Float64s(nil)
				return
			}
			b.Float64s(v)
		},
		func(p *partition.Part, e mesh.Ent, r *pcu.Reader) {
			vals := r.Float64s()
			if len(vals) == 0 {
				return
			}
			f := Find(p.M, name, shape)
			if f != nil {
				f.Set(e, vals...)
			}
		})
}

// AccumulateShared adds non-owner contributions into owner nodes
// (collective) — the communication step of a parallel FE assembly. The
// copies' values are left untouched; follow with Sync to redistribute.
func AccumulateShared(dm *partition.DMesh, name string, shape Shape) {
	partition.ReduceShared(dm, shape.NodeDims(),
		func(p *partition.Part, e mesh.Ent, b *pcu.Buffer) {
			f := Find(p.M, name, shape)
			if f == nil {
				b.Float64s(nil)
				return
			}
			v, ok := f.Get(e)
			if !ok {
				b.Float64s(nil)
				return
			}
			b.Float64s(v)
		},
		func(p *partition.Part, e mesh.Ent, r *pcu.Reader) {
			vals := r.Float64s()
			if len(vals) == 0 {
				return
			}
			f := Find(p.M, name, shape)
			if f == nil {
				return
			}
			cur := f.MustGet(e)
			for i := range cur {
				cur[i] += vals[i]
			}
			f.Set(e, cur...)
		})
}
