// Package hwtopo describes the hardware topology a run is mapped onto:
// how many nodes the machine has and how many processing units (cores)
// each node offers. PUMI obtains this information from hwloc; here the
// topology is synthetic but serves the same purpose — it tells the
// parallel control layer which ranks share a node's memory so that
// architecture-aware partitioning and communication can distinguish
// on-node from off-node traffic.
package hwtopo

import (
	"fmt"
	"runtime"
)

// Topology is a two-level machine description: Nodes shared-memory nodes
// each exposing CoresPerNode independent processing units. Ranks are
// mapped onto cores in node-major order: rank r runs on node r/CoresPerNode,
// core r%CoresPerNode — the mapping the paper describes (each MPI process
// to the largest hardware entity whose memory is shared, each thread to
// the smallest entity capable of independent computation).
type Topology struct {
	Nodes        int
	CoresPerNode int
}

// Detect returns a topology for the host machine: a single shared-memory
// node exposing the machine's processing units. This mirrors running
// hwloc on a workstation.
func Detect() Topology {
	return Topology{Nodes: 1, CoresPerNode: runtime.NumCPU()}
}

// Cluster returns a synthetic multi-node topology, used to emulate a
// distributed-memory machine (e.g. a Blue Gene/Q rack) inside one process.
func Cluster(nodes, coresPerNode int) Topology {
	if nodes < 1 || coresPerNode < 1 {
		panic(fmt.Sprintf("hwtopo: invalid topology %d x %d", nodes, coresPerNode))
	}
	return Topology{Nodes: nodes, CoresPerNode: coresPerNode}
}

// Cores returns the total number of processing units.
func (t Topology) Cores() int { return t.Nodes * t.CoresPerNode }

// NodeOf returns the node hosting the given rank.
func (t Topology) NodeOf(rank int) int { return rank / t.CoresPerNode }

// CoreOf returns the on-node core index of the given rank.
func (t Topology) CoreOf(rank int) int { return rank % t.CoresPerNode }

// SameNode reports whether two ranks share a node's memory.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// NodeRanks returns the ranks hosted on the given node, in rank order,
// assuming nranks total ranks are mapped onto the machine.
func (t Topology) NodeRanks(node, nranks int) []int {
	lo := node * t.CoresPerNode
	hi := lo + t.CoresPerNode
	if hi > nranks {
		hi = nranks
	}
	if lo >= hi {
		return nil
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// NodesUsed returns how many nodes host at least one of nranks ranks.
func (t Topology) NodesUsed(nranks int) int {
	n := (nranks + t.CoresPerNode - 1) / t.CoresPerNode
	if n > t.Nodes {
		n = t.Nodes
	}
	return n
}

func (t Topology) String() string {
	return fmt.Sprintf("%d node(s) x %d core(s)", t.Nodes, t.CoresPerNode)
}
