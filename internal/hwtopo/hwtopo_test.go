package hwtopo

import (
	"slices"
	"testing"
)

func TestClusterMapping(t *testing.T) {
	topo := Cluster(3, 4)
	if topo.Cores() != 12 {
		t.Fatalf("cores = %d", topo.Cores())
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(11) != 2 {
		t.Fatal("NodeOf wrong")
	}
	if topo.CoreOf(5) != 1 {
		t.Fatalf("CoreOf(5) = %d", topo.CoreOf(5))
	}
	if !topo.SameNode(4, 7) || topo.SameNode(3, 4) {
		t.Fatal("SameNode wrong")
	}
}

func TestNodeRanks(t *testing.T) {
	topo := Cluster(2, 4)
	if got := topo.NodeRanks(0, 8); !slices.Equal(got, []int{0, 1, 2, 3}) {
		t.Fatalf("node 0 ranks = %v", got)
	}
	if got := topo.NodeRanks(1, 6); !slices.Equal(got, []int{4, 5}) {
		t.Fatalf("partial node ranks = %v", got)
	}
	if got := topo.NodeRanks(1, 3); got != nil {
		t.Fatalf("empty node ranks = %v", got)
	}
	if topo.NodesUsed(6) != 2 || topo.NodesUsed(4) != 1 || topo.NodesUsed(99) != 2 {
		t.Fatal("NodesUsed wrong")
	}
}

func TestDetectAndValidation(t *testing.T) {
	topo := Detect()
	if topo.Nodes != 1 || topo.CoresPerNode < 1 {
		t.Fatalf("Detect = %+v", topo)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology accepted")
		}
	}()
	Cluster(0, 4)
}
