package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSARIFGolden pins the SARIF rendering of the full fixture run
// against a checked-in golden file and validates it with CheckSARIF.
// Rerun with UPDATE_GOLDEN=1 to regenerate after intentional changes.
func TestSARIFGolden(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		diags = append(diags, Run(fixturePkgs(t, e.Name()), Analyzers())...)
	}
	got, err := SARIF(Analyzers(), diags)
	if err != nil {
		t.Fatal(err)
	}

	n, err := CheckSARIF(got)
	if err != nil {
		t.Fatalf("generated SARIF fails validation: %v", err)
	}
	if n != len(diags) {
		t.Errorf("CheckSARIF counted %d results, want %d", n, len(diags))
	}
	if n == 0 {
		t.Error("fixture run produced an empty SARIF result set")
	}

	golden := filepath.Join("testdata", "golden.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s out of date (UPDATE_GOLDEN=1 regenerates)", golden)
	}
}

// TestCheckSARIFRejects feeds CheckSARIF malformed inputs.
func TestCheckSARIFRejects(t *testing.T) {
	d := Diagnostic{Analyzer: "collseq", Message: "m"}
	d.Pos.Filename = "a.go"
	d.Pos.Line = 3
	d.Pos.Column = 1
	ok, err := SARIF(Analyzers(), []Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		mut   func(string) string
		wants string
	}{
		{"not json", func(s string) string { return "{" }, "sarif:"},
		{"wrong version", func(s string) string { return strings.Replace(s, `"2.1.0"`, `"1.0.0"`, 1) }, "version"},
		{"unknown rule", func(s string) string { return strings.Replace(s, `"ruleId": "collseq"`, `"ruleId": "nosuch"`, 1) }, "undeclared rule"},
		{"empty message", func(s string) string { return strings.Replace(s, `"text": "m"`, `"text": ""`, 1) }, "empty message"},
	}
	for _, c := range cases {
		if _, err := CheckSARIF([]byte(c.mut(string(ok)))); err == nil || !strings.Contains(err.Error(), c.wants) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.wants)
		}
	}
}

// TestBaselineRoundTrip: findings written as a baseline filter
// themselves out; edits to messages or new findings show up as fresh;
// removed findings surface as stale.
func TestBaselineRoundTrip(t *testing.T) {
	pkgs := fixturePkgs(t, "collseq")
	diags := Run(pkgs, Analyzers())
	if len(diags) == 0 {
		t.Fatal("collseq fixture produced no diagnostics")
	}

	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, []byte(FormatBaseline(diags, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	accepted, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := FilterBaseline(diags, accepted, "")
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip not clean: %d fresh, %d stale", len(fresh), len(stale))
	}

	// A new finding is fresh; when no current finding matches a
	// baseline key anymore, the key surfaces as stale.
	extra := diags[0]
	extra.Message = "an entirely new finding"
	fresh, _ = FilterBaseline(append(diags, extra), accepted, "")
	if len(fresh) != 1 || fresh[0].Message != extra.Message {
		t.Fatalf("new finding not detected: %v", fresh)
	}
	_, stale = FilterBaseline(nil, accepted, "")
	if len(stale) != len(accepted) {
		t.Fatalf("expected every baseline entry stale, got %d of %d", len(stale), len(accepted))
	}

	// Missing baseline file = empty baseline.
	none, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.txt"))
	if err != nil || len(none) != 0 {
		t.Fatalf("missing baseline: %v, %v", none, err)
	}
}

// TestScrubPositions pins the position scrubbing inside messages.
func TestScrubPositions(t *testing.T) {
	cases := []struct{ in, want string }{
		{"guard at internal/x/y.go:30:2; fix it", "guard at internal/x/y.go:_:_; fix it"},
		{"plain message", "plain message"},
		{"(a.go:1:2) and b.go:3:4", "(a.go:_:_) and b.go:_:_"},
	}
	for _, c := range cases {
		if got := scrubPositions(c.in, ""); got != c.want {
			t.Errorf("scrubPositions(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
