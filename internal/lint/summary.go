package lint

// The interprocedural layer of pumi-vet: a callgraph over every loaded
// package with per-function summaries propagated to a fixpoint. The
// per-function analyzers stay lexical; they consult the summaries
// through Facts, so violations hidden behind helpers are caught at the
// call site:
//
//   - transitively collective: the function always reaches a collective
//     op (directly or through callees); collmismatch flags such a call
//     under a rank guard with the witness chain down to the collective.
//   - leaking ctx params: a *pcu.Ctx parameter the function hands to
//     another goroutine, sends on a channel, stores in package state,
//     or forwards to a callee that does; ctxescape flags passing a Ctx
//     into such a parameter.
//   - async func params: a function-typed parameter the function starts
//     on another goroutine; ctxescape flags a Ctx-capturing literal
//     passed into such a parameter.
//   - sends: the function contributes to communication (packs a phase
//     buffer, runs an exchange, enters a collective, or calls a callee
//     that does); maporder flags map-range bodies that reach one.
//
// Summaries include calls made inside nested function literals
// (may-execute over-approximation): a helper that only *constructs* a
// collective closure is treated as collective itself, which errs on
// the side of reporting for the invariants at stake here.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// witnessChain renders a summary call chain for diagnostics: the called
// function followed by the recorded path down to the operation, e.g.
// "helper -> helper2 -> Barrier".
func witnessChain(fn *types.Func, chain []string) string {
	return strings.Join(append([]string{fn.Name()}, chain...), " -> ")
}

// callSite is one resolved call inside a function body.
type callSite struct {
	key  funcKey
	name string // callee display name
	fn   *types.Func
	pos  token.Pos
	// ctxArgs: callee parameter indexes receiving a *pcu.Ctx argument.
	ctxArgs map[int]bool
	// paramArgs: callee parameter index -> caller parameter index, for
	// arguments that are direct uses of the caller's own parameters.
	paramArgs map[int]int
}

// funcNode is the interprocedural summary of one function declaration.
type funcNode struct {
	key    funcKey
	pkg    *Package
	decl   *ast.FuncDecl
	calls  []*callSite
	params []types.Object

	// Monotone summary bits, closed under the callgraph by fixpoint.
	collective bool
	collVia    []string // call chain from here to the collective op
	sends      bool
	sendsVia   []string
	leak       map[int]string // ctx param index -> how it escapes
	async      map[int]string // func param index -> how it is started

	// Rank-return summary: the function's return value derives from the
	// calling rank (a Ctx.Rank() call, directly or through callees whose
	// returns do). retCalls lists the callees invoked inside return
	// statements, in source order, for the fixpoint propagation.
	retRank    bool
	retRankVia []string
	retCalls   []*callSite

	// Communication-effect terms (see effects.go), inferred in
	// reverse-topological SCC order after the boolean fixpoint: effect
	// is the static term (atoms are Go function names), effectRT the
	// runtime projection (atoms are the op names beginOp records).
	// effWidened marks terms approximated because of recursion.
	effect     *Effect
	effectRT   *Effect
	effWidened bool
}

// modeEffect selects the static or runtime term.
func (n *funcNode) modeEffect(rt bool) *Effect {
	if rt {
		return n.effectRT
	}
	return n.effect
}

// callGraph indexes the funcNodes of all loaded packages.
type callGraph struct {
	nodes map[funcKey]*funcNode
	order []funcKey // deterministic fixpoint order
}

// node resolves a callee to its summary, or nil for functions outside
// the loaded set.
func (g *callGraph) node(fn *types.Func) *funcNode {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[keyOfFunc(fn)]
}

// keyOfFunc derives the graph key of a *types.Func the same way
// buildCallGraph derives it from the declaration, so call sites and
// declarations meet even though the source importer re-checks packages
// independently.
func keyOfFunc(fn *types.Func) funcKey {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = namedName(sig.Recv().Type())
	}
	return funcKey{pkg, recv, fn.Name()}
}

// buildCallGraph scans every function declaration, records its direct
// properties and call sites, then propagates the summaries to a
// fixpoint.
func buildCallGraph(pkgs []*Package, facts *Facts) *callGraph {
	g := &callGraph{nodes: map[funcKey]*funcNode{}}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := newFuncNode(p, fd)
				g.nodes[n.key] = n
				g.order = append(g.order, n.key)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].less(g.order[j]) })
	g.fixpoint(facts)
	g.inferEffects(facts)
	return g
}

func (k funcKey) less(o funcKey) bool {
	if k.pkg != o.pkg {
		return k.pkg < o.pkg
	}
	if k.recv != o.recv {
		return k.recv < o.recv
	}
	return k.name < o.name
}

func (k funcKey) String() string {
	if k.recv != "" {
		return k.recv + "." + k.name
	}
	return k.name
}

// newFuncNode computes the direct (intraprocedural) summary of one
// declaration: its call sites, direct sends, direct ctx-param leaks and
// directly started func params.
func newFuncNode(p *Package, fd *ast.FuncDecl) *funcNode {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recv = recvTypeName(fd.Recv.List[0].Type)
	}
	n := &funcNode{
		key:   funcKey{pkgPathOf(p), recv, fd.Name.Name},
		pkg:   p,
		decl:  fd,
		leak:  map[int]string{},
		async: map[int]string{},
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				n.params = append(n.params, p.Info.Defs[name])
			}
			if len(field.Names) == 0 {
				n.params = append(n.params, nil) // unnamed param
			}
		}
	}
	pass := &Pass{Package: p}
	paramIndex := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return -1
		}
		for i, po := range n.params {
			if po != nil && po == obj {
				return i
			}
		}
		return -1
	}
	markGoroutine := func(call *ast.CallExpr) {
		// `go f(ctx)` / `go param(...)` / `go func(){ ... }()` — every
		// caller parameter reaching the spawned work escapes its
		// goroutine.
		for _, arg := range call.Args {
			if i := paramIndex(arg); i >= 0 && isCtxPtr(p.Info.TypeOf(arg)) {
				n.leak[i] = "passes it to a goroutine"
			}
		}
		if i := paramIndex(call.Fun); i >= 0 {
			n.async[i] = "starts it on a goroutine"
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(c ast.Node) bool {
				id, ok := c.(*ast.Ident)
				if !ok {
					return true
				}
				if i := paramIndex(id); i >= 0 {
					obj := n.params[i]
					if v, ok := obj.(*types.Var); ok && v.Pos() < lit.Pos() {
						if isCtxPtr(v.Type()) {
							n.leak[i] = "captures it in a goroutine literal"
						} else if _, isFn := v.Type().Underlying().(*types.Signature); isFn {
							n.async[i] = "runs it from a goroutine literal"
						}
					}
				}
				return true
			})
		}
	}
	ast.Inspect(fd.Body, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.GoStmt:
			markGoroutine(c.Call)
		case *ast.SendStmt:
			if i := paramIndex(c.Value); i >= 0 && isCtxPtr(p.Info.TypeOf(c.Value)) {
				n.leak[i] = "sends it on a channel"
			}
		case *ast.AssignStmt:
			if len(c.Lhs) == len(c.Rhs) {
				for i, rhs := range c.Rhs {
					pi := paramIndex(rhs)
					if pi < 0 || !isCtxPtr(p.Info.TypeOf(rhs)) {
						continue
					}
					if root := rootIdent(c.Lhs[i]); root != nil && isPkgLevelVar(p.Info, root) {
						n.leak[pi] = "stores it in package-level state"
					}
				}
			}
		case *ast.CallExpr:
			if !n.sends {
				switch {
				case isPhaseBufferCall(pass, c):
					n.sends, n.sendsVia = true, []string{"opens a To buffer"}
				case isExchangeCall(pass, c):
					n.sends, n.sendsVia = true, []string{"runs an exchange"}
				case isBufferPack(pass, c):
					n.sends, n.sendsVia = true, []string{"packs a communication buffer"}
				}
			}
			cs := &callSite{fn: calleeFunc(p.Info, c), pos: c.Pos()}
			if cs.fn == nil {
				return true
			}
			cs.key = keyOfFunc(cs.fn)
			cs.name = cs.key.String()
			for ai, arg := range c.Args {
				pi := calleeParamIndex(cs.fn, ai)
				if pi < 0 {
					continue
				}
				if isCtxPtr(p.Info.TypeOf(arg)) {
					if cs.ctxArgs == nil {
						cs.ctxArgs = map[int]bool{}
					}
					cs.ctxArgs[pi] = true
				}
				if i := paramIndex(arg); i >= 0 {
					if cs.paramArgs == nil {
						cs.paramArgs = map[int]int{}
					}
					cs.paramArgs[pi] = i
				}
			}
			n.calls = append(n.calls, cs)
		}
		return true
	})
	// Rank-return scan: does a return statement's result expression
	// derive from Rank()? Record direct Rank() calls and, for the
	// fixpoint, the callees invoked inside results. Function literals
	// are pruned: a returned closure does not evaluate at return time.
	// (Caveat: flows through named results or locals assigned earlier
	// are not tracked; DESIGN.md §11.)
	ast.Inspect(fd.Body, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := c.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(r ast.Node) bool {
				if _, ok := r.(*ast.FuncLit); ok {
					return false
				}
				call, ok := r.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isRankCall(pass, call) {
					if !n.retRank {
						n.retRank = true
						n.retRankVia = []string{"Ctx.Rank"}
					}
					return true
				}
				if fn := calleeFunc(p.Info, call); fn != nil {
					key := keyOfFunc(fn)
					n.retCalls = append(n.retCalls, &callSite{key: key, name: key.String(), fn: fn, pos: call.Pos()})
				}
				return true
			})
		}
		return true
	})
	return n
}

// isBufferPack reports a pack-method call on a *pcu.Buffer.
func isBufferPack(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !packMethods[sel.Sel.Name] {
		return false
	}
	return isBufferPtr(p.Info.TypeOf(sel.X))
}

// calleeParamIndex maps a call argument index to the callee's declared
// parameter index, clamping variadic tails.
func calleeParamIndex(fn *types.Func, argIndex int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return -1
	}
	if argIndex >= sig.Params().Len() {
		if sig.Variadic() {
			return sig.Params().Len() - 1
		}
		return -1
	}
	return argIndex
}

// fixpoint propagates collective/sends/leak/async summaries along call
// edges until stable. Iteration follows g.order and each function's
// call sites in source order, so witness chains are deterministic.
func (g *callGraph) fixpoint(facts *Facts) {
	for changed := true; changed; {
		changed = false
		for _, key := range g.order {
			n := g.nodes[key]
			if !n.retRank {
				for _, rc := range n.retCalls {
					callee := g.nodes[rc.key]
					if callee != nil && callee.retRank {
						n.retRank = true
						n.retRankVia = append([]string{rc.name}, callee.retRankVia...)
						changed = true
						break
					}
				}
			}
			for _, cs := range n.calls {
				callee := g.nodes[cs.key]
				if !n.collective {
					if facts.directCollective(cs.fn) {
						n.collective, n.collVia = true, []string{cs.name}
						changed = true
					} else if callee != nil && callee.collective {
						n.collective = true
						n.collVia = append([]string{cs.name}, callee.collVia...)
						changed = true
					}
				}
				if !n.sends && callee != nil && callee.sends {
					n.sends = true
					n.sendsVia = append([]string{cs.name}, callee.sendsVia...)
					changed = true
				}
				if callee == nil {
					continue
				}
				for calleeIdx, callerIdx := range cs.paramArgs {
					if _, done := n.leak[callerIdx]; !done && callee.leak[calleeIdx] != "" {
						n.leak[callerIdx] = fmt.Sprintf("passes it to %s, which %s",
							cs.name, callee.leak[calleeIdx])
						changed = true
					}
					if _, done := n.async[callerIdx]; !done && callee.async[calleeIdx] != "" {
						if obj := paramObjAt(n, callerIdx); obj != nil {
							if _, isFn := obj.Type().Underlying().(*types.Signature); isFn {
								n.async[callerIdx] = fmt.Sprintf("passes it to %s, which %s",
									cs.name, callee.async[calleeIdx])
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

func paramObjAt(n *funcNode, i int) types.Object {
	if i < 0 || i >= len(n.params) {
		return nil
	}
	return n.params[i]
}

// ---- Facts query surface ----

// directCollective reports whether fn itself is a collective op: a
// seeded pcu built-in or a function whose doc comment declares it
// collective.
func (f *Facts) directCollective(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	if pathHasSuffix(pkg, pcuPkg) {
		for _, name := range builtinCollectives {
			if fn.Name() == name {
				return true
			}
		}
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = namedName(sig.Recv().Type())
	}
	return f.collective[funcKey{pkg, recv, fn.Name()}]
}

// CollectiveWitness reports whether calling fn reaches a collective.
// For a direct collective the chain is nil; for a transitively
// collective function it names the call path down to the collective op.
func (f *Facts) CollectiveWitness(fn *types.Func) ([]string, bool) {
	if f.directCollective(fn) {
		return nil, true
	}
	if n := f.graph.node(fn); n != nil && n.collective {
		return n.collVia, true
	}
	return nil, false
}

// IsCollective reports whether the called function reaches a collective
// directly or transitively.
func (f *Facts) IsCollective(fn *types.Func) bool {
	_, ok := f.CollectiveWitness(fn)
	return ok
}

// SendsWitness reports whether calling fn contributes data to
// communication (phase buffers, exchanges), with the call chain to the
// operation.
func (f *Facts) SendsWitness(fn *types.Func) ([]string, bool) {
	if n := f.graph.node(fn); n != nil && n.sends {
		return n.sendsVia, true
	}
	return nil, false
}

// LeakedCtxParam reports whether fn's i'th parameter is a *pcu.Ctx that
// escapes its goroutine inside fn (or its callees), and how.
func (f *Facts) LeakedCtxParam(fn *types.Func, i int) (string, bool) {
	if n := f.graph.node(fn); n != nil {
		if how, ok := n.leak[i]; ok {
			return how, true
		}
	}
	return "", false
}

// AsyncParam reports whether fn's i'th parameter is a function fn
// starts on another goroutine (directly or through callees), and how.
func (f *Facts) AsyncParam(fn *types.Func, i int) (string, bool) {
	if n := f.graph.node(fn); n != nil {
		if how, ok := n.async[i]; ok {
			return how, true
		}
	}
	return "", false
}

// RankReturn reports whether fn's return value derives from the
// calling rank, with the call chain down to the Ctx.Rank() source.
func (f *Facts) RankReturn(fn *types.Func) ([]string, bool) {
	if n := f.graph.node(fn); n != nil && n.retRank {
		return n.retRankVia, true
	}
	return nil, false
}
