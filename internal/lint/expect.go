package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Expectation is one `// want "regexp"` comment in a fixture file: the
// line it sits on must produce a diagnostic matching the pattern.
// Multiple expectations may share a line:
//
//	bad() // want "first" "second"
type Expectation struct {
	File    string
	Line    int
	Pattern *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// ParseExpectations extracts want-comments from the files of a loaded
// package.
func ParseExpectations(p *Package) ([]Expectation, error) {
	var out []Expectation
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				pats, err := splitQuoted(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern: %v", pos, err)
					}
					out = append(out, Expectation{File: pos.Filename, Line: pos.Line, Pattern: re})
				}
			}
		}
	}
	return out, nil
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want patterns must be quoted strings, got %q", s)
		}
		// Find the end of this quoted string.
		end := -1
		if s[0] == '`' {
			if i := strings.IndexByte(s[1:], '`'); i >= 0 {
				end = i + 2
			}
		} else {
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i + 1
					break
				}
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		unq, err := strconv.Unquote(s[:end])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", s[:end], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end:])
	}
	return out, nil
}

// CheckExpectations matches diagnostics against want-comments and
// returns human-readable failures: unmatched expectations and
// unexpected diagnostics.
func CheckExpectations(expects []Expectation, diags []Diagnostic) []string {
	var fails []string
	used := make([]bool, len(diags))
	for _, want := range expects {
		found := false
		for i, d := range diags {
			if used[i] || d.Pos.Filename != want.File || d.Pos.Line != want.Line {
				continue
			}
			if want.Pattern.MatchString(d.Message) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			fails = append(fails, fmt.Sprintf("%s:%d: no diagnostic matching %q",
				want.File, want.Line, want.Pattern))
		}
	}
	for i, d := range diags {
		if !used[i] {
			fails = append(fails, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	sort.Strings(fails)
	return fails
}
