package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sharedLoader caches one loader (and its source-importer cache) across
// fixture tests; importing pcu/mesh from source once is the dominant
// cost. fixtureCache additionally shares each compiled fixture package
// across tests, so a fixture dir is parsed and type-checked exactly
// once however many analyzers (or the golden test) visit it.
var (
	sharedLoader *Loader
	fixtureCache = map[string][]*Package{}
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

func fixturePkgs(t *testing.T, name string) []*Package {
	t.Helper()
	if pkgs, ok := fixtureCache[name]; ok {
		return pkgs
	}
	dir := filepath.Join("testdata", "src", name)
	pkgs, err := fixtureLoader(t).Load(".", dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	fixtureCache[name] = pkgs
	return pkgs
}

// testAnalyzer runs one analyzer over its fixture package and matches
// diagnostics against the `// want "..."` comments. Each fixture holds
// a positive file (bad.go, with expectations) and a negative file
// (ok.go, with none); unexpected diagnostics fail the test.
func testAnalyzer(t *testing.T, a *Analyzer) {
	pkgs := fixturePkgs(t, a.Name)
	diags := Run(pkgs, []*Analyzer{a})
	expects, err := ParseExpectations(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(expects) == 0 {
		t.Fatalf("fixture %s has no want-comments", a.Name)
	}
	for _, fail := range CheckExpectations(expects, diags) {
		t.Error(fail)
	}
}

func TestCtxEscape(t *testing.T)     { testAnalyzer(t, CtxEscape) }
func TestCollMismatch(t *testing.T)  { testAnalyzer(t, CollMismatch) }
func TestBufDiscipline(t *testing.T) { testAnalyzer(t, BufDiscipline) }
func TestEntHandle(t *testing.T)     { testAnalyzer(t, EntHandle) }
func TestMapOrder(t *testing.T)      { testAnalyzer(t, MapOrder) }
func TestPhaseOrder(t *testing.T)    { testAnalyzer(t, PhaseOrder) }
func TestCollSeq(t *testing.T)       { testAnalyzer(t, CollSeq) }
func TestRankDiv(t *testing.T)       { testAnalyzer(t, RankDiv) }

// TestAnalyzerListStable pins the analyzer set wired into pumi-vet.
func TestAnalyzerListStable(t *testing.T) {
	want := []string{"ctxescape", "collmismatch", "bufdiscipline", "enthandle", "maporder", "phaseorder", "collseq", "rankdiv"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s lacks a doc string", a.Name)
		}
	}
}

// TestDiagnosticDedup exercises the cross-analyzer position dedup: at
// one file:line:col only the most specific analyzer's diagnostics
// survive, and the result is independent of input order.
func TestDiagnosticDedup(t *testing.T) {
	mk := func(line, col int, analyzer, msg string) Diagnostic {
		d := Diagnostic{Analyzer: analyzer, Message: msg}
		d.Pos.Filename = "x.go"
		d.Pos.Line = line
		d.Pos.Column = col
		return d
	}
	in := []Diagnostic{
		mk(10, 2, "collmismatch", "collective under a rank guard"),
		mk(10, 2, "collseq", "divergent schedules with a long witness"),
		mk(10, 2, "collseq", "second collseq finding at the same position"),
		mk(12, 4, "maporder", "map order reaches communication"),
		mk(12, 4, "maporder", "map order reaches communication"), // exact dup
		mk(5, 1, "ctxescape", "ctx escapes"),
	}
	want := []string{
		"x.go:5:1: ctxescape: ctx escapes",
		"x.go:10:2: collseq: divergent schedules with a long witness",
		"x.go:10:2: collseq: second collseq finding at the same position",
		"x.go:12:4: maporder: map order reaches communication",
	}
	for trial := 0; trial < 2; trial++ {
		input := make([]Diagnostic, len(in))
		copy(input, in)
		if trial == 1 { // reversed input must not change the outcome
			for i, j := 0, len(input)-1; i < j; i, j = i+1, j-1 {
				input[i], input[j] = input[j], input[i]
			}
		}
		got := dedupeDiags(input)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d diagnostics, want %d: %v", trial, len(got), len(want), got)
		}
		for i, d := range got {
			if d.String() != want[i] {
				t.Errorf("trial %d: diag[%d] = %s, want %s", trial, i, d.String(), want[i])
			}
		}
	}
}

// TestRunOrderIndependent runs the full analyzer set forwards and
// reversed over every fixture: registration order must not leak into
// the output.
func TestRunOrderIndependent(t *testing.T) {
	fwd := Analyzers()
	rev := make([]*Analyzer, len(fwd))
	for i, a := range fwd {
		rev[len(fwd)-1-i] = a
	}
	for _, name := range []string{"collseq", "rankdiv", "collmismatch"} {
		pkgs := fixturePkgs(t, name)
		a := Run(pkgs, fwd)
		b := Run(pkgs, rev)
		if len(a) != len(b) {
			t.Fatalf("%s: %d diagnostics forward, %d reversed", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: diag[%d] differs by registration order:\n fwd %v\n rev %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestGoldenOutput pins the complete pumi-vet output — every analyzer
// over every fixture package, in both the human and the NDJSON format —
// against checked-in golden files. The per-analyzer tests check each
// analyzer against its own fixtures; this one locks cross-analyzer
// behavior (what the full set reports on each fixture, ignore
// directives included) and the exact rendering of both formats. Rerun
// with UPDATE_GOLDEN=1 to regenerate after intentional changes.
func TestGoldenOutput(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	var human, ndjson strings.Builder
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		diags := Run(fixturePkgs(t, e.Name()), Analyzers())
		for _, d := range diags {
			human.WriteString(d.String() + "\n")
			ndjson.WriteString(d.JSON() + "\n")
		}
	}
	for _, g := range []struct{ file, got string }{
		{filepath.Join("testdata", "golden.txt"), human.String()},
		{filepath.Join("testdata", "golden.ndjson"), ndjson.String()},
	} {
		if os.Getenv("UPDATE_GOLDEN") != "" {
			if err := os.WriteFile(g.file, []byte(g.got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(g.file)
		if err != nil {
			t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
		}
		if g.got != string(want) {
			t.Errorf("%s out of date (UPDATE_GOLDEN=1 regenerates):\n--- want ---\n%s--- got ---\n%s",
				g.file, want, g.got)
		}
	}
}

// TestExpectationEngine exercises the want-comment matcher itself.
func TestExpectationEngine(t *testing.T) {
	pats, err := splitQuoted("\"one\" `two.*`")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 || pats[0] != "one" || pats[1] != "two.*" {
		t.Fatalf("splitQuoted = %q", pats)
	}
	if _, err := splitQuoted(`"unterminated`); err == nil {
		t.Fatal("unterminated pattern accepted")
	}
	if _, err := splitQuoted(`bare`); err == nil {
		t.Fatal("unquoted pattern accepted")
	}
}
