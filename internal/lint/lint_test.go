package lint

import (
	"path/filepath"
	"testing"
)

// sharedLoader caches one loader (and its source-importer cache) across
// fixture tests; importing pcu/mesh from source once is the dominant
// cost.
var sharedLoader *Loader

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// testAnalyzer runs one analyzer over its fixture package and matches
// diagnostics against the `// want "..."` comments. Each fixture holds
// a positive file (bad.go, with expectations) and a negative file
// (ok.go, with none); unexpected diagnostics fail the test.
func testAnalyzer(t *testing.T, a *Analyzer) {
	l := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", a.Name)
	pkgs, err := l.Load(".", dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	diags := Run(pkgs, []*Analyzer{a})
	expects, err := ParseExpectations(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(expects) == 0 {
		t.Fatalf("fixture %s has no want-comments", dir)
	}
	for _, fail := range CheckExpectations(expects, diags) {
		t.Error(fail)
	}
}

func TestCtxEscape(t *testing.T)     { testAnalyzer(t, CtxEscape) }
func TestCollMismatch(t *testing.T)  { testAnalyzer(t, CollMismatch) }
func TestBufDiscipline(t *testing.T) { testAnalyzer(t, BufDiscipline) }
func TestEntHandle(t *testing.T)     { testAnalyzer(t, EntHandle) }

// TestAnalyzerListStable pins the analyzer set wired into pumi-vet.
func TestAnalyzerListStable(t *testing.T) {
	want := []string{"ctxescape", "collmismatch", "bufdiscipline", "enthandle"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s lacks a doc string", a.Name)
		}
	}
}

// TestExpectationEngine exercises the want-comment matcher itself.
func TestExpectationEngine(t *testing.T) {
	pats, err := splitQuoted("\"one\" `two.*`")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 2 || pats[0] != "one" || pats[1] != "two.*" {
		t.Fatalf("splitQuoted = %q", pats)
	}
	if _, err := splitQuoted(`"unterminated`); err == nil {
		t.Fatal("unterminated pattern accepted")
	}
	if _, err := splitQuoted(`bare`); err == nil {
		t.Fatal("unquoted pattern accepted")
	}
}
