package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufDiscipline enforces the packing/reading discipline of a pcu
// communication phase:
//
//   - A buffer obtained from c.To(peer) (or a partition phase's
//     to(from, to)) belongs to the phase it was created in. Writing to
//     it after a subsequent Exchange() in the same function packs data
//     into a buffer that has already been delivered and discarded.
//   - A *pcu.Reader obtained in a function (from a received Message's
//     .Data field or from pcu.NewReader) that is decoded must also be
//     checked for exhaustion via Empty, Remaining or Done on some path;
//     silently dropping trailing bytes hides protocol mismatches
//     between sender and receiver. Readers received as function
//     parameters are exempt: partial decoding may be the callee's
//     contract.
//   - A slice decoded without copying from a pooled message
//     (BytesVal/BytesNoCopy) must not be handed to the flight
//     recorder's Attach, which stores it by reference in the trace
//     ring: the ring outlives the phase, so once Done recycles the
//     message the timeline would render a later phase's bytes.
//
// Both checks are per-function and lexical (position-based), which
// matches the straight-line phase structure of PUMI communication code.
var BufDiscipline = &Analyzer{
	Name: "bufdiscipline",
	Doc:  "detect stale phase buffers and unchecked message readers",
	Run:  runBufDiscipline,
}

var decodeMethods = map[string]bool{
	"Byte": true, "Int32": true, "Int64": true, "Float64": true,
	"Bytes": true, "BytesVal": true, "BytesNoCopy": true,
	"Int32s": true, "Int64s": true, "Float64s": true,
	"AppendInt32s": true, "AppendInt64s": true, "AppendFloat64s": true,
}

var finalizeMethods = map[string]bool{
	"Empty": true, "Remaining": true, "Done": true,
}

// packMethods includes Reset: resetting a phase buffer after Exchange is
// the same bug as writing to it — the backing array belongs to the
// receiver (on-node) or the pool.
var packMethods = map[string]bool{
	"Byte": true, "Int32": true, "Int64": true, "Float64": true,
	"Bytes": true, "Int32s": true, "Int64s": true, "Float64s": true,
	"Reset": true,
}

// aliasMethods decode a slice that aliases the message's backing array;
// on a pooled reader such slices die when Done recycles the array.
var aliasMethods = map[string]bool{
	"BytesVal": true, "BytesNoCopy": true,
}

func runBufDiscipline(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPhaseBody(p, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkPhaseBody(p, n.Body)
				return false
			}
			return true
		})
	}
}

// readerState tracks one reader object (variable or selector path)
// within a function body.
type readerState struct {
	firstDecode token.Pos
	decoded     bool
	finalized   bool
	// pooled marks readers backed by a received Message (.Data): their
	// Done recycles the backing array, so uncopied slices decoded from
	// them must not be used past Done. NewReader readers are not pooled.
	pooled bool
	done   token.Pos // first Done call, NoPos if never
}

func checkPhaseBody(p *Pass, body *ast.BlockStmt) {
	var exchanges []token.Pos               // positions of Exchange()/exchange() calls
	bufDefs := map[types.Object]token.Pos{} // buffer var -> creation pos
	readers := map[any]*readerState{}       // reader key -> state
	type bufWrite struct {
		obj types.Object
		pos token.Pos
	}
	var writes []bufWrite
	type aliasDef struct {
		st  *readerState
		pos token.Pos
	}
	aliases := map[types.Object]aliasDef{} // uncopied decode var -> its reader

	reader := func(key any) *readerState {
		st := readers[key]
		if st == nil {
			st = &readerState{}
			readers[key] = st
		}
		return st
	}

	// readerOf resolves a method receiver to its tracked state: a
	// variable aliasing a reader origin, or a .Data selector path.
	// Untracked receivers (reader-typed parameters) return nil — partial
	// decoding may be the callee's contract.
	readerOf := func(x ast.Expr) *readerState {
		switch recv := ast.Unparen(x).(type) {
		case *ast.Ident:
			obj := p.Info.Uses[recv]
			if obj == nil {
				return nil
			}
			return readers[obj]
		case *ast.SelectorExpr:
			if recv.Sel.Name != "Data" {
				return nil
			}
			st := reader(selectorPath(recv))
			st.pooled = true
			return st
		}
		return nil
	}

	// Single pass in source order, not descending into nested literals
	// (they get their own checkPhaseBody via runBufDiscipline).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if isPhaseBufferCall(p, call) {
						bufDefs[obj] = n.Pos()
					}
				}
				// Reader aliases: r := msg.Data / r := pcu.NewReader(x).
				for i, rhs := range n.Rhs {
					pooled, ok := readerOrigin(p, rhs)
					if !ok {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						obj := p.Info.Defs[id]
						if obj == nil {
							obj = p.Info.Uses[id]
						}
						if obj != nil {
							st := reader(obj) // begin tracking, undecoded
							st.pooled = st.pooled || pooled
						}
					}
				}
				// Uncopied decodes: v := r.BytesNoCopy() aliases the
				// pooled message buffer; remember which reader owns v so
				// uses past that reader's Done can be flagged.
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || !aliasMethods[sel.Sel.Name] || !isReaderPtr(p.TypeOf(sel.X)) {
						continue
					}
					st := readerOf(sel.X)
					if st == nil || !st.pooled {
						continue
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Defs[id]
					if obj == nil {
						obj = p.Info.Uses[id]
					}
					if obj != nil {
						aliases[obj] = aliasDef{st: st, pos: n.Pos()}
					}
				}
			}
		case *ast.CallExpr:
			if isExchangeCall(p, n) {
				exchanges = append(exchanges, n.Pos())
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			// Buffer writes through a tracked variable.
			if packMethods[name] && isBufferPtr(p.TypeOf(sel.X)) {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					var obj types.Object = p.Info.Uses[id]
					if _, tracked := bufDefs[obj]; tracked {
						writes = append(writes, bufWrite{obj, n.Pos()})
					}
				}
			}
			// Trace retention: Attach stores its slice by reference in
			// the recorder ring, which outlives the communication phase.
			// Passing an uncopied pooled-message decode — a tracked alias
			// variable or a direct BytesVal/BytesNoCopy result — retains
			// bytes Done will recycle.
			if name == "Attach" && isRecorderPtr(p.TypeOf(sel.X)) {
				for _, arg := range n.Args {
					switch arg := ast.Unparen(arg).(type) {
					case *ast.Ident:
						if a, ok := aliases[p.Info.Uses[arg]]; ok && a.st.pooled {
							p.Reportf(arg.Pos(),
								"slice %q aliases a pooled message but is retained by the trace ring via Attach; copy it with Bytes first",
								arg.Name)
						}
					case *ast.CallExpr:
						if s, ok := ast.Unparen(arg.Fun).(*ast.SelectorExpr); ok &&
							aliasMethods[s.Sel.Name] && isReaderPtr(p.TypeOf(s.X)) {
							if st := readerOf(s.X); st != nil && st.pooled {
								p.Reportf(arg.Pos(),
									"%s decodes a pooled message by reference but is retained by the trace ring via Attach; copy it with Bytes first",
									s.Sel.Name)
							}
						}
					}
				}
			}
			// Reader decodes / finalizes, keyed by variable object or
			// by the selector path of the receiver.
			if (decodeMethods[name] || finalizeMethods[name]) && isReaderPtr(p.TypeOf(sel.X)) {
				st := readerOf(sel.X)
				if st == nil {
					return true
				}
				if finalizeMethods[name] {
					st.finalized = true
					if name == "Done" && st.done == token.NoPos {
						st.done = n.Pos()
					}
				} else if !st.decoded {
					st.decoded = true
					st.firstDecode = n.Pos()
				}
			}
		}
		return true
	})

	for _, w := range writes {
		def := bufDefs[w.obj]
		for _, e := range exchanges {
			if def < e && e < w.pos {
				p.Reportf(w.pos,
					"phase buffer %q (created at %s) written after Exchange at %s; To buffers are delivered and discarded by Exchange",
					w.obj.Name(), p.Fset.Position(def), p.Fset.Position(e))
				break
			}
		}
	}
	for _, st := range readers {
		if st.decoded && !st.finalized {
			p.Reportf(st.firstDecode,
				"message reader decoded but never checked for exhaustion; call Empty/Remaining in a loop or Done after the last decode")
		}
	}

	// Escape-past-Done: a use of an uncopied slice after the owning
	// reader's Done reads bytes the pool may already have handed to a
	// later phase. Assignment LHS positions are skipped (overwriting the
	// alias variable is fine).
	if len(aliases) > 0 {
		lhs := map[*ast.Ident]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			if a, ok := n.(*ast.AssignStmt); ok {
				for _, l := range a.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						lhs[id] = true
					}
				}
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || lhs[id] {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			a, ok := aliases[obj]
			if !ok {
				return true
			}
			if a.st.done != token.NoPos && id.Pos() > a.st.done && id.Pos() > a.pos {
				p.Reportf(id.Pos(),
					"slice %q aliases a pooled message recycled by Done at %s; copy it with Bytes or use it before Done",
					obj.Name(), p.Fset.Position(a.st.done))
			}
			return true
		})
	}
}

// isPhaseBufferCall reports whether the call creates a phase packing
// buffer: a To/to method returning *pcu.Buffer.
func isPhaseBufferCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "To" && sel.Sel.Name != "to" {
		return false
	}
	return isBufferPtr(p.TypeOf(call))
}

func isExchangeCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Exchange" && name != "exchange" {
		return false
	}
	recv := p.TypeOf(sel.X)
	if isCtxPtr(recv) {
		return true
	}
	// partition's part-addressed phase wrapper.
	return namedName(recv) == "phase"
}

// readerOrigin reports whether the expression produces a fresh reader
// this function is responsible for — pcu.NewReader(...) or a .Data
// selector of reader type (a received message) — and whether that
// origin is pooled (recycled by Done).
func readerOrigin(p *Pass, e ast.Expr) (pooled, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(p.Info, e); fn != nil && fn.Name() == "NewReader" &&
			fn.Pkg() != nil && pathHasSuffix(fn.Pkg().Path(), pcuPkg) {
			return false, true
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "Data" && isReaderPtr(p.TypeOf(e)) {
			return true, true
		}
	}
	return false, false
}

// selectorPath renders a selector chain (msg.Data, m.Data) to a
// comparable string key.
func selectorPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return selectorPath(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return selectorPath(e.X) + "[]"
	case *ast.CallExpr:
		return selectorPath(e.Fun) + "()"
	}
	return "?"
}

func isBufferPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), pcuPkg, "Buffer")
}

func isReaderPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), pcuPkg, "Reader")
}

func isRecorderPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), tracePkg, "Recorder")
}
