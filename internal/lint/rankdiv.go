package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RankDiv tracks rank-derived values through dataflow — arithmetic on
// Ctx.Rank(), helpers whose return values derive from it (the
// interprocedural rank-return summaries in summary.go), rank-indexed
// data, variables assigned from any of those — and flags collectives
// and loop bounds that are control-dependent on them without a
// reconciling collective. "Reconciling" is decided by the effect engine
// (effects.go): a guard whose arms have equal collective-schedule
// languages is rank-safe however rank-derived its condition is.
//
// The lexical forms (a bare Rank() call or a variable assigned directly
// from one in the guard condition) are collmismatch's territory and are
// skipped here; rankdiv exists for the flows that lexical matching
// cannot see. Findings overlapping another analyzer at the same
// position are collapsed by the position-level dedup in Run.
var RankDiv = &Analyzer{
	Name: "rankdiv",
	Doc:  "track rank-derived values into guards of collectives and loop bounds",
	Run:  runRankDiv,
}

func runRankDiv(p *Pass) {
	for _, body := range funcBodies(p) {
		w := &divWalker{
			p:        p,
			rankVars: collectRankVars(p, body),
			taint:    rankTaint(p, body, p.Facts),
			seen:     map[token.Pos]bool{},
		}
		w.walkStmts(body.List, nil)
	}
}

type divWalker struct {
	p        *Pass
	rankVars map[any]bool
	taint    map[types.Object]*taintInfo
	seen     map[token.Pos]bool // collective calls already reported
}

// taintedCond reports whether the condition is rank-derived through
// dataflow only — rankdiv's territory; lexically rank-dependent
// conditions belong to collmismatch/collseq.
func (w *divWalker) taintedCond(e ast.Expr) (string, bool) {
	if e == nil || lexicalRankDep(w.p, e, w.rankVars) {
		return "", false
	}
	return rankCause(w.p, e, w.taint, w.p.Facts)
}

func (w *divWalker) walkStmts(list []ast.Stmt, konts [][]ast.Stmt) {
	for i, s := range list {
		w.walkStmt(s, append([][]ast.Stmt{list[i+1:]}, konts...))
	}
}

func (w *divWalker) walkStmt(s ast.Stmt, konts [][]ast.Stmt) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(n.List, konts)
	case *ast.LabeledStmt:
		w.walkStmt(n.Stmt, konts)
	case *ast.IfStmt:
		if cause, ok := w.taintedCond(n.Cond); ok {
			if _, diverged := divergeIf(w.p, n, konts); diverged {
				w.reportCollectives(n.Body, cause)
				if n.Else != nil {
					w.reportCollectives(n.Else, cause)
				}
			}
		}
		w.walkStmts(n.Body.List, konts)
		if n.Else != nil {
			w.walkStmt(n.Else, konts)
		}
	case *ast.SwitchStmt:
		cause, tainted := w.taintedCond(n.Tag)
		if !tainted {
			for _, stmt := range n.Body.List {
				if cc, ok := stmt.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						if c, ok := w.taintedCond(e); ok {
							cause, tainted = c, true
						}
					}
				}
			}
		}
		if tainted {
			if _, diverged := divergeSwitch(w.p, n.Body, konts); diverged {
				w.reportCollectives(n.Body, cause)
			}
		}
		for _, stmt := range n.Body.List {
			if cc, ok := stmt.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, konts)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, stmt := range n.Body.List {
			if cc, ok := stmt.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, konts)
			}
		}
	case *ast.SelectStmt:
		for _, stmt := range n.Body.List {
			if cc, ok := stmt.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, konts)
			}
		}
	case *ast.ForStmt:
		cause, tainted := w.taintedCond(n.Cond)
		if !tainted {
			cause, tainted = w.taintedCond(rangeInitBound(n))
		}
		if tainted {
			if ops := loopBodyCollectives(w.p, n.Body); len(ops) != 0 {
				w.p.Reportf(n.For,
					"loop bound is rank-derived (%s) and the body runs collective %s; ranks iterate different numbers of times and deadlock",
					cause, strings.Join(ops, "·"))
			}
		}
		w.walkStmts(n.Body.List, nil)
	case *ast.RangeStmt:
		if cause, ok := w.taintedCond(n.X); ok {
			if ops := loopBodyCollectives(w.p, n.Body); len(ops) != 0 {
				w.p.Reportf(n.For,
					"loop bound is rank-derived (%s) and the body runs collective %s; ranks iterate different numbers of times and deadlock",
					cause, strings.Join(ops, "·"))
			}
		}
		w.walkStmts(n.Body.List, nil)
	}
}

// reportCollectives flags every collective call lexically inside the
// divergent arm, with the interprocedural witness chain when the
// collective hides behind helpers. Function literals are separate
// execution contexts and are skipped.
func (w *divWalker) reportCollectives(n ast.Node, cause string) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(w.p.Info, c)
			if fn == nil || w.seen[c.Pos()] {
				return true
			}
			chain, ok := w.p.Facts.CollectiveWitness(fn)
			if !ok {
				return true
			}
			w.seen[c.Pos()] = true
			if chain == nil {
				w.p.Reportf(c.Pos(),
					"collective %s is control-dependent on a rank-derived value (%s) without a reconciling collective; ranks disagree on entering it",
					fn.Name(), cause)
			} else {
				w.p.Reportf(c.Pos(),
					"collective reached through %s is control-dependent on a rank-derived value (%s) without a reconciling collective; ranks disagree on entering it",
					witnessChain(fn, chain), cause)
			}
		}
		return true
	})
}

// ---- rank-taint dataflow, shared with collseq ----

// taintInfo records how a local variable came to hold a rank-derived
// value.
type taintInfo struct {
	how string
	pos token.Pos
}

// rankTaint computes the local variables of one function body that hold
// rank-derived values, iterating assignment chains to a (bounded)
// fixpoint. Sources: Ctx.Rank() calls, calls to functions whose return
// derives from rank (Facts.RankReturn), and uses of already-tainted
// variables — which covers arithmetic on rank and rank-indexed data,
// since containment is checked over whole right-hand sides. Function
// literals are separate contexts and are not descended into.
func rankTaint(p *Pass, body *ast.BlockStmt, facts *Facts) map[types.Object]*taintInfo {
	taint := map[types.Object]*taintInfo{}
	mark := func(id *ast.Ident, ti *taintInfo) bool {
		obj := identObj(p.Info, id)
		if obj == nil || taint[obj] != nil {
			return false
		}
		taint[obj] = ti
		return true
	}
	for round := 0; round < 16; round++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				switch {
				case len(n.Lhs) == len(n.Rhs):
					for i, rhs := range n.Rhs {
						cause, ok := rankCause(p, rhs, taint, facts)
						if !ok {
							continue
						}
						if id, isIdent := n.Lhs[i].(*ast.Ident); isIdent {
							if mark(id, &taintInfo{how: cause, pos: rhs.Pos()}) {
								changed = true
							}
						}
					}
				case len(n.Rhs) == 1:
					if cause, ok := rankCause(p, n.Rhs[0], taint, facts); ok {
						for _, lhs := range n.Lhs {
							if id, isIdent := lhs.(*ast.Ident); isIdent {
								if mark(id, &taintInfo{how: cause, pos: n.Rhs[0].Pos()}) {
									changed = true
								}
							}
						}
					}
				}
			case *ast.RangeStmt:
				if cause, ok := rankCause(p, n.X, taint, facts); ok {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, isIdent := e.(*ast.Ident); isIdent && id != nil {
							if mark(id, &taintInfo{how: "ranges over a value " + cause, pos: n.X.Pos()}) {
								changed = true
							}
						}
					}
				}
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, v := range vs.Values {
						cause, ok := rankCause(p, v, taint, facts)
						if !ok || i >= len(vs.Names) {
							continue
						}
						if mark(vs.Names[i], &taintInfo{how: cause, pos: v.Pos()}) {
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return taint
}

// rankCause reports whether the expression's value derives from the
// calling rank, and how — the first source found in source order.
// Values returned by collective calls are rank-uniform by construction
// (every rank runs the op and receives the reconciled result — an
// Allreduce sum, a gathered error set), so taint does not flow out of
// them: a guard on a collective's return value IS reconciled.
func rankCause(p *Pass, e ast.Expr, taint map[types.Object]*taintInfo, facts *Facts) (string, bool) {
	if e == nil {
		return "", false
	}
	cause := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if cause != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isRankCall(p, n) {
				cause = "computed from Ctx.Rank()"
				return false
			}
			if fn := calleeFunc(p.Info, n); fn != nil {
				if facts != nil && facts.IsCollective(fn) {
					return false // reconciled: same value on every rank
				}
				if via, ok := facts.RankReturn(fn); ok {
					cause = fmt.Sprintf("returned by %s", witnessChain(fn, via))
					return false
				}
			}
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil {
				if ti := taint[obj]; ti != nil {
					cause = fmt.Sprintf("via %s, %s", n.Name, ti.how)
					return false
				}
			}
		}
		return true
	})
	return cause, cause != ""
}

// lexicalRankDep reports whether the expression is rank-dependent in
// the lexical sense collmismatch uses: it contains a Rank() call on a
// *pcu.Ctx or references a variable assigned directly from one.
func lexicalRankDep(p *Pass, e ast.Expr, rankVars map[any]bool) bool {
	if e == nil {
		return false
	}
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRankCall(p, n) {
				dep = true
			}
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil && rankVars[obj] {
				dep = true
			}
		}
		return !dep
	})
	return dep
}
