package lint

import (
	"go/ast"
	"go/types"
)

// CtxEscape enforces goroutine confinement of *pcu.Ctx: a Ctx must only
// be used by the goroutine it was handed to (internal/pcu/world.go). A
// Ctx that is captured by a `go func` literal, passed as an argument in
// a `go` statement, stored in a package-level variable, or sent on a
// channel can be observed by another goroutine, which breaks the
// synchronization contract of barriers, collectives and exchanges.
var CtxEscape = &Analyzer{
	Name: "ctxescape",
	Doc:  "detect *pcu.Ctx values escaping their goroutine",
	Run:  runCtxEscape,
}

func runCtxEscape(p *Pass) {
	for _, file := range p.Files {
		// Calls that are the operand of a `go` statement are handled by
		// checkGoStmt; the interprocedural call check skips them so a
		// `go helper(ctx)` is reported once, not twice.
		goCalls := map[*ast.CallExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goCalls[g.Call] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(p, n)
			case *ast.CallExpr:
				if !goCalls[n] {
					checkCallLeaks(p, n)
				}
			case *ast.SendStmt:
				if isCtxPtr(p.TypeOf(n.Value)) {
					p.Reportf(n.Value.Pos(),
						"*pcu.Ctx sent on a channel; a Ctx is confined to the goroutine it was handed to")
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if len(n.Rhs) != len(n.Lhs) {
						break
					}
					if !isCtxPtr(p.TypeOf(n.Rhs[i])) {
						continue
					}
					if root := rootIdent(lhs); root != nil && isPkgLevelVar(p.Info, root) {
						p.Reportf(n.Rhs[i].Pos(),
							"*pcu.Ctx stored in package-level state %q; a Ctx is confined to the goroutine it was handed to", root.Name)
					}
				}
			case *ast.ValueSpec:
				// Package-level `var x = ctx` declarations.
				for i, name := range n.Names {
					if i < len(n.Values) && isCtxPtr(p.TypeOf(n.Values[i])) && isPkgLevelVar(p.Info, name) {
						p.Reportf(n.Values[i].Pos(),
							"*pcu.Ctx stored in package-level state %q; a Ctx is confined to the goroutine it was handed to", name.Name)
					}
				}
			}
			return true
		})
	}
}

// checkCallLeaks applies the interprocedural summaries at an ordinary
// call site: a Ctx argument bound to a parameter the callee leaks to
// another goroutine (directly or through its own callees) escapes just
// as surely as a direct `go` statement, and so does a Ctx captured by a
// function literal handed to a parameter the callee runs asynchronously.
func checkCallLeaks(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return
	}
	for ai, arg := range call.Args {
		pi := calleeParamIndex(fn, ai)
		if pi < 0 {
			continue
		}
		if isCtxPtr(p.TypeOf(arg)) {
			if how, ok := p.Facts.LeakedCtxParam(fn, pi); ok {
				p.Reportf(arg.Pos(),
					"*pcu.Ctx passed to %s, which %s; a Ctx is confined to the goroutine it was handed to",
					fn.Name(), how)
			}
			continue
		}
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			how, ok := p.Facts.AsyncParam(fn, pi)
			if !ok {
				continue
			}
			for _, id := range ctxCaptures(p, lit) {
				p.Reportf(id.Pos(),
					"*pcu.Ctx %q captured by a function literal passed to %s, which %s; a Ctx is confined to the goroutine it was handed to",
					id.Name, fn.Name(), how)
			}
		}
	}
}

// ctxCaptures returns the identifiers inside lit that are free-variable
// uses of a *pcu.Ctx declared outside the literal.
func ctxCaptures(p *Pass, lit *ast.FuncLit) []*ast.Ident {
	var ids []*ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		// Fields are reached through the struct value, not captured on
		// their own; their declaration position lies in another scope
		// entirely, so the extent test below would misread them.
		if !ok || obj.IsField() || !isCtxPtr(obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

// checkGoStmt flags a Ctx that crosses into a spawned goroutine, either
// as a call argument or as a free variable of a function literal.
func checkGoStmt(p *Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if isCtxPtr(p.TypeOf(arg)) {
			p.Reportf(arg.Pos(),
				"*pcu.Ctx passed to a goroutine; a Ctx is confined to the goroutine it was handed to")
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || !isCtxPtr(obj.Type()) {
			return true
		}
		// Free variable: declared outside the literal's extent.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			p.Reportf(id.Pos(),
				"*pcu.Ctx %q captured by goroutine literal; a Ctx is confined to the goroutine it was handed to", id.Name)
		}
		return true
	})
}

// rootIdent returns the base identifier of an lvalue expression
// (x, x.f, x[i], x.f[i].g, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPkgLevelVar(info *types.Info, id *ast.Ident) bool {
	var obj types.Object
	if o, ok := info.Uses[id]; ok {
		obj = o
	} else if o, ok := info.Defs[id]; ok {
		obj = o
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	pkg := v.Pkg()
	return pkg != nil && pkg.Scope().Lookup(v.Name()) == v
}
