package lint

import (
	"go/ast"
	"go/types"
)

// CtxEscape enforces goroutine confinement of *pcu.Ctx: a Ctx must only
// be used by the goroutine it was handed to (internal/pcu/world.go). A
// Ctx that is captured by a `go func` literal, passed as an argument in
// a `go` statement, stored in a package-level variable, or sent on a
// channel can be observed by another goroutine, which breaks the
// synchronization contract of barriers, collectives and exchanges.
var CtxEscape = &Analyzer{
	Name: "ctxescape",
	Doc:  "detect *pcu.Ctx values escaping their goroutine",
	Run:  runCtxEscape,
}

func runCtxEscape(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(p, n)
			case *ast.SendStmt:
				if isCtxPtr(p.TypeOf(n.Value)) {
					p.Reportf(n.Value.Pos(),
						"*pcu.Ctx sent on a channel; a Ctx is confined to the goroutine it was handed to")
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if len(n.Rhs) != len(n.Lhs) {
						break
					}
					if !isCtxPtr(p.TypeOf(n.Rhs[i])) {
						continue
					}
					if root := rootIdent(lhs); root != nil && isPkgLevelVar(p.Info, root) {
						p.Reportf(n.Rhs[i].Pos(),
							"*pcu.Ctx stored in package-level state %q; a Ctx is confined to the goroutine it was handed to", root.Name)
					}
				}
			case *ast.ValueSpec:
				// Package-level `var x = ctx` declarations.
				for i, name := range n.Names {
					if i < len(n.Values) && isCtxPtr(p.TypeOf(n.Values[i])) && isPkgLevelVar(p.Info, name) {
						p.Reportf(n.Values[i].Pos(),
							"*pcu.Ctx stored in package-level state %q; a Ctx is confined to the goroutine it was handed to", name.Name)
					}
				}
			}
			return true
		})
	}
}

// checkGoStmt flags a Ctx that crosses into a spawned goroutine, either
// as a call argument or as a free variable of a function literal.
func checkGoStmt(p *Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if isCtxPtr(p.TypeOf(arg)) {
			p.Reportf(arg.Pos(),
				"*pcu.Ctx passed to a goroutine; a Ctx is confined to the goroutine it was handed to")
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || !isCtxPtr(obj.Type()) {
			return true
		}
		// Free variable: declared outside the literal's extent.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			p.Reportf(id.Pos(),
				"*pcu.Ctx %q captured by goroutine literal; a Ctx is confined to the goroutine it was handed to", id.Name)
		}
		return true
	})
}

// rootIdent returns the base identifier of an lvalue expression
// (x, x.f, x[i], x.f[i].g, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPkgLevelVar(info *types.Info, id *ast.Ident) bool {
	var obj types.Object
	if o, ok := info.Uses[id]; ok {
		obj = o
	} else if o, ok := info.Defs[id]; ok {
		obj = o
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	pkg := v.Pkg()
	return pkg != nil && pkg.Scope().Lookup(v.Name()) == v
}
