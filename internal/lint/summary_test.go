package lint

import (
	"strings"
	"testing"
)

// TestFixpointRecursion drives the summary fixpoint and effect engine
// over the recurse fixture: self-recursion (countdown), mutual
// recursion (pingA/pingB), and a cycle mixing sends with a collective
// (spiral). The fixpoint must terminate, witness chains must stay
// finite, and the effects must widen to Loop terms.
func TestFixpointRecursion(t *testing.T) {
	pkgs := fixturePkgs(t, "recurse")
	facts := gatherFacts(pkgs)

	for _, name := range []string{"countdown", "pingA", "pingB", "spiral", "drive"} {
		fn := lookupFn(t, pkgs[0], name)
		chain, ok := facts.CollectiveWitness(fn)
		if !ok {
			t.Errorf("%s not recognized as collective", name)
			continue
		}
		if len(chain) > 8 {
			t.Errorf("%s witness chain did not terminate: %v", name, chain)
		}
		rendered := witnessChain(fn, chain)
		if strings.Count(rendered, name) > 2 {
			t.Errorf("%s witness chain loops on itself: %s", name, rendered)
		}
	}

	// Cyclic SCC members are widened; drive (acyclic, calling into the
	// cycles) is not.
	for name, wantWidened := range map[string]bool{
		"countdown": true, "pingA": true, "pingB": true, "spiral": true, "drive": false,
	} {
		fn := lookupFn(t, pkgs[0], name)
		if got := facts.EffectWidened(fn); got != wantWidened {
			t.Errorf("EffectWidened(%s) = %v, want %v", name, got, wantWidened)
		}
	}

	// Widened effects are Loop(Choice(atoms)): nullable (zero
	// repetitions) and containing the cycle's collective atoms.
	count := facts.EffectOf(lookupFn(t, pkgs[0], "countdown"))
	if count == nil || !nullable(count) {
		t.Fatalf("countdown effect %s is not a nullable Loop term", count)
	}
	if got := collProject(count).String(); got != "Barrier*" {
		t.Errorf("countdown effect projects to %s, want Barrier*", got)
	}
	spiral := facts.EffectOf(lookupFn(t, pkgs[0], "spiral"))
	atoms := map[string]bool{}
	for _, a := range alphabet(spiral) {
		atoms[a.op] = true
	}
	if !atoms["Exchange"] || !atoms["send"] {
		t.Errorf("spiral widened alphabet %v lacks Exchange/send", atoms)
	}

	// The whole fixture is deadlock-free: no analyzer fires on it.
	if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
		t.Errorf("recurse fixture produced diagnostics: %v", diags)
	}
}

// TestFixpointDeterministic rebuilds the summaries and compares witness
// chains and effect keys: iteration order must not leak into results.
func TestFixpointDeterministic(t *testing.T) {
	pkgs := fixturePkgs(t, "recurse")
	base := gatherFacts(pkgs)
	for i := 0; i < 3; i++ {
		next := gatherFacts(pkgs)
		for _, name := range []string{"countdown", "pingA", "pingB", "spiral", "drive"} {
			fn := lookupFn(t, pkgs[0], name)
			bChain, _ := base.CollectiveWitness(fn)
			nChain, _ := next.CollectiveWitness(fn)
			if strings.Join(bChain, "|") != strings.Join(nChain, "|") {
				t.Errorf("rebuild %d: %s witness chain changed: %v vs %v", i, name, bChain, nChain)
			}
			bEff, nEff := base.EffectOf(fn), next.EffectOf(fn)
			if (bEff == nil) != (nEff == nil) || (bEff != nil && !bEff.Equal(nEff)) {
				t.Errorf("rebuild %d: %s effect changed: %s vs %s", i, name, bEff, nEff)
			}
		}
	}
}

// TestRankReturnSummary checks the interprocedural rank-return facts
// used by rankdiv's taint sources.
func TestRankReturnSummary(t *testing.T) {
	pkgs := fixturePkgs(t, "rankdiv")
	facts := gatherFacts(pkgs)

	fn := lookupFn(t, pkgs[0], "myOffset")
	via, ok := facts.RankReturn(fn)
	if !ok {
		t.Fatal("myOffset not recognized as rank-returning")
	}
	if got := witnessChain(fn, via); got != "myOffset -> Ctx.Rank" {
		t.Errorf("myOffset rank-return chain = %s", got)
	}
	if _, ok := facts.RankReturn(lookupFn(t, pkgs[0], "syncAll")); ok {
		t.Error("syncAll wrongly marked rank-returning")
	}
}
