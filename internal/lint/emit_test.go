package lint

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/fastmath/pumi-go/internal/san"
)

// TestRuntimeEffects pins the runtime-mode inference over the effects
// fixture: run drivers are transparent, Supervise produces the
// recovered-shrink epoch shape, dynamic calls widen to the wildcard
// loop, and agree keeps its own op name.
func TestRuntimeEffects(t *testing.T) {
	pkgs := fixturePkgs(t, "effects")
	facts := gatherFacts(pkgs)
	cases := []struct {
		fn   string
		want string
	}{
		{"epochBody", "barrier·exchange"},
		{"runWrapped", "barrier·exchange"},
		// The Supervise regression (satellite): epochs that end in a
		// shrink rerun the body, so the schedule is (body·shrink)*·body —
		// not an opaque widening.
		{"supervised", "(barrier·exchange·shrink)*·barrier·exchange"},
		{"dynamic", "**·barrier"},
		{"fieldCall", "**"},
		{"agreeing", "agree"},
	}
	for _, c := range cases {
		fn := lookupFn(t, pkgs[0], c.fn)
		eff := facts.RuntimeEffectOf(fn)
		if eff == nil {
			t.Errorf("RuntimeEffectOf(%s) = nil", c.fn)
			continue
		}
		if got := collProject(eff).String(); got != c.want {
			t.Errorf("RuntimeEffectOf(%s) projects to %s, want %s", c.fn, got, c.want)
		}
	}
}

// TestEmitAutomataFixture compiles an automaton from the fixture's
// supervised entry point and checks the machine recognizes exactly the
// epoch protocol.
func TestEmitAutomataFixture(t *testing.T) {
	pkgs := fixturePkgs(t, "effects")
	set, err := EmitAutomata(pkgs, []string{"effects.supervised"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Automata) != 1 {
		t.Fatalf("got %d automata, want 1", len(set.Automata))
	}
	m := set.Automata[0]
	if m.Entry != "effects.supervised" {
		t.Errorf("entry = %s", m.Entry)
	}
	// (barrier·exchange·shrink)*·barrier·exchange minimizes to three
	// states: start, post-barrier, post-exchange (accepting, shrink
	// loops back to start).
	if len(m.States) != 3 {
		t.Fatalf("got %d states, want 3: %+v", len(m.States), m.States)
	}
	p, err := m.Protocol()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		ops []string
		ok  bool
	}{
		{[]string{"barrier", "exchange"}, true},
		{[]string{"barrier", "exchange", "shrink", "barrier", "exchange"}, true},
		{[]string{"barrier"}, false},
		{[]string{"exchange", "barrier"}, false},
	} {
		res := san.Replay(p, 0, c.ops)
		if accepted := res.Err == nil && res.Accepted; accepted != c.ok {
			t.Errorf("replay %v accepted=%v, want %v", c.ops, accepted, c.ok)
		}
	}
}

// TestFindEntryErrors exercises the entry-resolution failure modes.
func TestFindEntryErrors(t *testing.T) {
	pkgs := fixturePkgs(t, "effects")
	for _, entry := range []string{"noSuchPkg.F", "effects.noSuchFunc", "malformed", ".F", "pkg."} {
		if _, err := findEntry(pkgs, entry); err == nil {
			t.Errorf("findEntry(%q) succeeded, want error", entry)
		}
	}
	if fn, err := findEntry(pkgs, "effects.supervised"); err != nil || fn == nil {
		t.Errorf("findEntry(effects.supervised) = %v, %v", fn, err)
	}
}

// TestFormatEffectsGolden pins the `pumi-vet -effects -v` rendering of
// the fixture package — static and runtime terms plus the derivative
// trace. UPDATE_GOLDEN=1 regenerates.
func TestFormatEffectsGolden(t *testing.T) {
	pkgs := fixturePkgs(t, "effects")
	got := FormatEffects(pkgs, "effects.", true)
	file := filepath.Join("testdata", "effects.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(file, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s out of date (UPDATE_GOLDEN=1 regenerates):\n--- want ---\n%s--- got ---\n%s", file, want, got)
	}
}

// TestFormatEffectsPattern checks the -func substring filter.
func TestFormatEffectsPattern(t *testing.T) {
	pkgs := fixturePkgs(t, "effects")
	out := FormatEffects(pkgs, "supervised", false)
	if out == "" {
		t.Fatal("no output for pattern supervised")
	}
	if FormatEffects(pkgs, "definitely-no-match", false) != "" {
		t.Error("non-matching pattern produced output")
	}
}
