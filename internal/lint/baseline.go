package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support for the self-hosting gate (`make vet-self`): a
// committed file of accepted findings, one key per line, that CI
// compares fresh runs against. Keys deliberately omit line and column
// so unrelated edits shifting code around do not invalidate the
// baseline; a finding is identified by its file, analyzer, and message.
// Messages embed positions in witness text (e.g. "guard at f.go:30:2"),
// so those are scrubbed too.

// BaselineKey renders one diagnostic as a stable baseline line:
// "<slash-path>\t<analyzer>\t<message-with-positions-scrubbed>".
// root, when non-empty, relativizes the file path so keys agree between
// machines that check out the repo at different locations.
func BaselineKey(d Diagnostic, root string) string {
	return strings.Join([]string{
		relSlashPath(d.Pos.Filename, root),
		d.Analyzer,
		scrubPositions(d.Message, root),
	}, "\t")
}

func relSlashPath(path, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}

// scrubPositions replaces file:line:col references inside a message
// with file:_:_ so baselined findings survive unrelated line shifts.
func scrubPositions(msg, root string) string {
	var b strings.Builder
	rest := msg
	for {
		i := strings.Index(rest, ".go:")
		if i < 0 {
			b.WriteString(rest)
			break
		}
		j := i + len(".go:")
		digits := 0
		for j < len(rest) {
			c := rest[j]
			if c >= '0' && c <= '9' {
				digits++
				j++
				continue
			}
			if c == ':' && digits > 0 {
				digits = 0
				j++
				continue
			}
			break
		}
		// Walk i back to the start of the path token.
		start := i
		for start > 0 && rest[start-1] != ' ' && rest[start-1] != '(' {
			start--
		}
		b.WriteString(rest[:start])
		b.WriteString(relSlashPath(rest[start:i+len(".go")], root))
		b.WriteString(":_:_")
		rest = rest[j:]
	}
	return b.String()
}

// LoadBaseline reads a baseline file: one key per line, blank lines and
// #-comments ignored. A missing file is an empty baseline.
func LoadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	defer f.Close()
	keys := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return keys, nil
}

// FilterBaseline splits diagnostics into new findings (not in the
// baseline) and reports baseline entries no current finding matches
// (stale — candidates for removal). Diagnostics order is preserved.
func FilterBaseline(diags []Diagnostic, baseline map[string]bool, root string) (fresh []Diagnostic, stale []string) {
	used := map[string]bool{}
	for _, d := range diags {
		k := BaselineKey(d, root)
		if baseline[k] {
			used[k] = true
			continue
		}
		fresh = append(fresh, d)
	}
	for k := range baseline {
		if !used[k] {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// FormatBaseline renders the diagnostics as a baseline file body, keys
// deduplicated and sorted, with a header explaining the format.
func FormatBaseline(diags []Diagnostic, root string) string {
	seen := map[string]bool{}
	var keys []string
	for _, d := range diags {
		k := BaselineKey(d, root)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# pumi-vet self-hosting baseline: accepted findings, one per line\n")
	b.WriteString("# (file<TAB>analyzer<TAB>message, positions scrubbed to _:_).\n")
	b.WriteString("# Regenerate with: go run ./cmd/pumi-vet -writebaseline <this file> ./...\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString("\n")
	}
	return b.String()
}

// ModRoot exposes the loader's module root so callers can relativize
// baseline and SARIF paths consistently.
func (l *Loader) ModRoot() string { return l.modRoot }
