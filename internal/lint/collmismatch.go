package lint

import (
	"go/ast"
	"go/token"
)

// CollMismatch detects collectives that cannot be entered by every
// rank: a call to a collective operation (a pcu built-in such as
// Barrier/Exchange/Allreduce, or any function whose doc comment
// declares it collective) lexically guarded by a rank-dependent branch
// such as `if c.Rank() == 0`. Since every rank must enter every
// collective in the same order, a rank-guarded collective deadlocks the
// run.
//
// An if statement whose then AND else branches both contain collective
// calls is exempt: that is the root-vs-rest pattern where all ranks
// still reach a collective (the analyzer does not attempt to prove the
// two sequences match). The early-return spelling of the same pattern —
// a rank-guarded branch that ends in return or panic, with collectives
// both inside it and in the code after the if — is exempt for the same
// reason. Function literals are separate execution contexts and are
// scanned independently of the guards around them.
var CollMismatch = &Analyzer{
	Name: "collmismatch",
	Doc:  "detect collectives guarded by rank-dependent branches",
	Run:  runCollMismatch,
}

func runCollMismatch(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFuncBody(p, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkFuncBody(p, n.Body)
				return false
			}
			return true
		})
	}
}

// checkFuncBody analyzes one function body. Nested function literals
// are pushed back through checkFuncBody with a fresh guard context.
func checkFuncBody(p *Pass, body *ast.BlockStmt) {
	rankVars := collectRankVars(p, body)
	w := &collWalker{p: p, rankVars: rankVars}
	w.walk(body, token.NoPos)
}

// collectRankVars finds local variables assigned from a Rank() call on
// a *pcu.Ctx within the body, so `r := c.Rank(); if r == 0 {...}` is
// recognized as rank-dependent.
func collectRankVars(p *Pass, body *ast.BlockStmt) map[any]bool {
	vars := map[any]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isRankCall(p, call) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					vars[obj] = true
				} else if obj := p.Info.Uses[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	return vars
}

func isRankCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rank" {
		return false
	}
	return isCtxPtr(p.TypeOf(sel.X))
}

type collWalker struct {
	p        *Pass
	rankVars map[any]bool
}

// walk traverses statements; guard is the position of the innermost
// rank-dependent branch enclosing the current node (NoPos if none).
func (w *collWalker) walk(n ast.Node, guard token.Pos) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		// Separate execution context: guards around the literal do not
		// guard the calls inside it (it may run elsewhere); but the
		// literal body gets its own analysis.
		checkFuncBody(w.p, n.Body)
		return
	case *ast.BlockStmt:
		w.walkStmts(n.List, guard)
		return
	case *ast.IfStmt:
		w.walk(n.Init, guard)
		w.walkExpr(n.Cond, guard)
		branchGuard := guard
		if w.isRankDependent(n.Cond) && !w.bothBranchesCollective(n) {
			branchGuard = n.If
		}
		w.walk(n.Body, branchGuard)
		w.walk(n.Else, branchGuard)
		return
	case *ast.SwitchStmt:
		w.walk(n.Init, guard)
		w.walkExpr(n.Tag, guard)
		caseGuard := guard
		if w.isRankDependent(n.Tag) || w.anyCaseRankDependent(n) {
			caseGuard = n.Switch
		}
		w.walk(n.Body, caseGuard)
		return
	case *ast.CallExpr:
		if guard.IsValid() {
			if fn := calleeFunc(w.p.Info, n); fn != nil {
				if chain, ok := w.p.Facts.CollectiveWitness(fn); ok {
					if chain == nil {
						w.p.Reportf(n.Pos(),
							"collective %s called under a rank-dependent branch (guard at %s); every rank must enter every collective",
							fn.Name(), w.p.Fset.Position(guard))
					} else {
						w.p.Reportf(n.Pos(),
							"collective reached through %s under a rank-dependent branch (guard at %s); every rank must enter every collective",
							witnessChain(fn, chain), w.p.Fset.Position(guard))
					}
				}
			}
		}
		w.walkExpr(n.Fun, guard)
		for _, a := range n.Args {
			w.walkExpr(a, guard)
		}
		return
	}
	// Generic traversal for everything else.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		switch c.(type) {
		case *ast.FuncLit, *ast.BlockStmt, *ast.IfStmt, *ast.SwitchStmt, *ast.CallExpr:
			w.walk(c, guard)
			return false
		}
		return true
	})
}

// walkStmts traverses a statement list, recognizing the early-return
// spelling of the root-vs-rest pattern: a rank-guarded if with no else
// that terminates (return/panic) and contains a collective, followed by
// tail code that also reaches a collective. Both paths then enter a
// collective, so neither is treated as guarded.
func (w *collWalker) walkStmts(list []ast.Stmt, guard token.Pos) {
	for i, s := range list {
		if ifs, ok := s.(*ast.IfStmt); ok &&
			ifs.Else == nil && w.isRankDependent(ifs.Cond) &&
			terminalBlock(ifs.Body) && w.hasCollective(ifs.Body) &&
			w.stmtsHaveCollective(list[i+1:]) {
			w.walk(ifs.Init, guard)
			w.walkExpr(ifs.Cond, guard)
			w.walk(ifs.Body, guard)
			continue
		}
		w.walk(s, guard)
	}
}

// terminalBlock reports whether the block always leaves the enclosing
// function: its last statement is a return or a panic call.
func terminalBlock(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *collWalker) stmtsHaveCollective(list []ast.Stmt) bool {
	for _, s := range list {
		if w.hasCollective(s) {
			return true
		}
	}
	return false
}

func (w *collWalker) walkExpr(e ast.Expr, guard token.Pos) {
	if e == nil {
		return
	}
	w.walk(e, guard)
}

// isRankDependent reports whether the expression's value depends on the
// calling rank: it contains a Rank() call on a *pcu.Ctx or references a
// variable assigned from one.
func (w *collWalker) isRankDependent(e ast.Expr) bool {
	if e == nil {
		return false
	}
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRankCall(w.p, n) {
				dep = true
			}
		case *ast.Ident:
			if obj := w.p.Info.Uses[n]; obj != nil && w.rankVars[obj] {
				dep = true
			}
		}
		return !dep
	})
	return dep
}

func (w *collWalker) anyCaseRankDependent(s *ast.SwitchStmt) bool {
	for _, stmt := range s.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if w.isRankDependent(e) {
				return true
			}
		}
	}
	return false
}

// bothBranchesCollective reports whether both the then and else
// branches of a rank-guarded if contain collective calls (the
// root-vs-rest pattern, exempt from the lexical rule).
func (w *collWalker) bothBranchesCollective(s *ast.IfStmt) bool {
	if s.Else == nil {
		return false
	}
	return w.hasCollective(s.Body) && w.hasCollective(s.Else)
}

// hasCollective reports whether the subtree contains a collective call,
// not descending into function literals.
func (w *collWalker) hasCollective(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(w.p.Info, c); fn != nil && w.p.Facts.IsCollective(fn) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
