package lint

import (
	"go/ast"
	"go/token"
)

// EntHandle enforces the opacity of mesh entity handles across parts.
// A mesh.Ent is an index into one part's entity arrays; the same
// physical entity has unrelated handles on different parts. The handle
// recorded in a RemoteCopyRef names an entity on ANOTHER part, so
// comparing it with == or != against anything local is meaningless —
// cross-part identity must go through RemoteCopy / global ids.
//
// Comparing against the mesh.NilEnt sentinel is exempt (a validity
// check, not a cross-part identity test).
var EntHandle = &Analyzer{
	Name: "enthandle",
	Doc:  "detect == comparisons of remote-copy entity handles",
	Run:  runEntHandle,
}

func runEntHandle(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				remote, other := pair[0], pair[1]
				if !isRemoteEntSelector(p, remote) {
					continue
				}
				if !isNamedType(p.TypeOf(other), meshPkg, "Ent") {
					continue
				}
				if isNilEnt(p, other) {
					continue
				}
				p.Reportf(be.OpPos,
					"remote-copy handle compared with %s; handles are part-local — resolve cross-part identity via RemoteCopy or global ids", be.Op)
				break
			}
			return true
		})
	}
}

// isRemoteEntSelector reports whether e is the .Ent field of a
// mesh.RemoteCopyRef — a handle that lives on another part.
func isRemoteEntSelector(p *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Ent" {
		return false
	}
	return isNamedType(p.TypeOf(sel.X), meshPkg, "RemoteCopyRef")
}

// isNilEnt reports whether e references the mesh.NilEnt sentinel.
func isNilEnt(p *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "NilEnt"
	case *ast.SelectorExpr:
		return e.Sel.Name == "NilEnt"
	}
	return false
}
