package automata

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/fastmath/pumi-go/internal/san"
)

func compile(t *testing.T, entry string, term *Term) Machine {
	t.Helper()
	m, err := Compile(entry, term)
	if err != nil {
		t.Fatalf("Compile(%s): %v", entry, err)
	}
	return m
}

// accepts replays a stream against the compiled machine via the san
// bridge — the same executable form the runtime uses.
func accepts(t *testing.T, m Machine, ops ...string) bool {
	t.Helper()
	p, err := m.Protocol()
	if err != nil {
		t.Fatalf("Protocol(%s): %v", m.Entry, err)
	}
	res := san.Replay(p, 0, ops)
	return res.Err == nil && res.Accepted
}

func TestCompileTable(t *testing.T) {
	a, b, c := Atom("a"), Atom("b"), Atom("c")
	cases := []struct {
		name   string
		term   *Term
		states int
		accept [][]string // accepted streams
		reject [][]string // rejected streams (off-automaton or non-accepting end)
	}{
		{
			name:   "empty",
			term:   Empty(),
			states: 1,
			accept: [][]string{{}},
			reject: [][]string{{"a"}},
		},
		{
			name:   "seq",
			term:   Seq(a, b),
			states: 3,
			accept: [][]string{{"a", "b"}},
			reject: [][]string{{}, {"a"}, {"b"}, {"a", "b", "a"}},
		},
		{
			name:   "loop of choice",
			term:   Loop(Choice(a, b)),
			states: 1,
			accept: [][]string{{}, {"a"}, {"b", "a", "b", "b"}},
			reject: [][]string{{"c"}},
		},
		{
			// (a*)|(b*): after the first op the other loop is dead. The
			// minimal DFA has 3 states — start accepts, then one state
			// per committed branch.
			name:   "choice of loops",
			term:   Choice(Loop(a), Loop(b)),
			states: 3,
			accept: [][]string{{}, {"a", "a"}, {"b", "b", "b"}},
			reject: [][]string{{"a", "b"}, {"b", "a"}},
		},
		{
			// Supervise's shape: (body·shrink)*·body with body = a·b.
			name:   "epoch loop",
			term:   Seq(Loop(Seq(a, b, c)), a, b),
			states: 3,
			accept: [][]string{{"a", "b"}, {"a", "b", "c", "a", "b"}},
			reject: [][]string{{}, {"a", "b", "c"}, {"a", "a"}},
		},
		{
			// A dynamic call widens to Loop(*): anything between a and b.
			name:   "wildcard window",
			term:   Seq(a, Loop(Wild()), b),
			accept: [][]string{{"a", "b"}, {"a", "c", "c", "b"}, {"a", "b", "b"}},
			reject: [][]string{{"a"}, {"b"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := compile(t, "test."+tc.name, tc.term)
			if tc.states != 0 && len(m.States) != tc.states {
				t.Fatalf("%d states, want %d (term %s)", len(m.States), tc.states, m.Term)
			}
			for _, ops := range tc.accept {
				if !accepts(t, m, ops...) {
					t.Errorf("rejects %v (term %s)", ops, m.Term)
				}
			}
			for _, ops := range tc.reject {
				if accepts(t, m, ops...) {
					t.Errorf("accepts %v (term %s)", ops, m.Term)
				}
			}
		})
	}
}

// TestCompileCanonical pins the heart of the golden-artifact guarantee:
// terms with equal languages compile to identical machines, whatever
// their syntactic shape.
func TestCompileCanonical(t *testing.T) {
	a, b := Atom("a"), Atom("b")
	pairs := []struct {
		name string
		x, y *Term
	}{
		{"star idempotent", Loop(a), Seq(Loop(a), Loop(a))},
		{"choice absorbs", Loop(Choice(a, b)), Loop(Choice(a, b, Seq(a, b)))},
		{"unrolled loop", Loop(a), Choice(Empty(), Seq(a, Loop(a)))},
	}
	for _, tc := range pairs {
		t.Run(tc.name, func(t *testing.T) {
			mx := compile(t, "test.x", tc.x)
			my := compile(t, "test.x", tc.y) // same entry so only shape differs
			mx.Term, my.Term = "", ""        // term strings legitimately differ
			if !reflect.DeepEqual(mx, my) {
				t.Fatalf("machines differ:\n%+v\n%+v", mx, my)
			}
		})
	}
}

func TestCompileDeterministic(t *testing.T) {
	term := Seq(Loop(Seq(Atom("barrier"), Choice(Atom("exchange"), Atom("allreduce")), Atom("shrink"))), Atom("barrier"))
	m1 := compile(t, "test.det", term)
	m2 := compile(t, "test.det", term)
	s1, err := NewSet([]Machine{m1}).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	s2, err := NewSet([]Machine{m2}).Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("encodings differ:\n%s\n%s", s1, s2)
	}
}

func TestWildcardEdges(t *testing.T) {
	// a·(*)*·b: the middle state must carry a "*" default edge; the
	// start state must not.
	m := compile(t, "test.wild", Seq(Atom("a"), Loop(Wild()), Atom("b")))
	if _, ok := m.States[0].Edges[san.OpWildcard]; ok {
		t.Fatalf("start state has a wildcard edge: %+v", m.States)
	}
	mid := m.States[0].Edges["a"]
	if _, ok := m.States[mid].Edges[san.OpWildcard]; !ok {
		t.Fatalf("post-a state lacks the wildcard default: %+v", m.States)
	}
	// An op outside the alphabet is fine mid-window, not at the start.
	if !accepts(t, m, "a", "weird", "b") {
		t.Error("wildcard window rejects an off-alphabet op")
	}
	if accepts(t, m, "weird") {
		t.Error("start state accepts through a phantom wildcard")
	}
}

func TestArtifactRoundtrip(t *testing.T) {
	m1 := compile(t, "pkg.Beta", Seq(Atom("barrier"), Atom("exchange")))
	m2 := compile(t, "pkg.Alpha", Loop(Atom("allreduce")))
	set := NewSet([]Machine{m1, m2})
	if set.Automata[0].Entry != "pkg.Alpha" {
		t.Fatalf("machines not sorted by entry: %+v", set.Automata)
	}
	data, err := set.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(set, got) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", set, got)
	}
	if got.Find("pkg.Beta") == nil || got.Find("pkg.Gamma") != nil {
		t.Fatal("Find misses or over-matches")
	}
}

func TestDecodeRejectsBadArtifacts(t *testing.T) {
	m := compile(t, "pkg.A", Atom("a"))
	cases := []struct {
		name string
		set  *Set
	}{
		{"wrong schema", &Set{Schema: "pumi-proto/0", Automata: []Machine{m}}},
		{"empty", &Set{Schema: Schema}},
		{"duplicate entry", &Set{Schema: Schema, Automata: []Machine{m, m}}},
		{"unsorted", &Set{Schema: Schema, Automata: []Machine{compile(t, "pkg.B", Atom("a")), m}}},
		{"bad edge target", &Set{Schema: Schema, Automata: []Machine{{
			Entry: "pkg.Bad", Ops: []string{"a"},
			States: []State{{Edges: map[string]int{"a": 9}}},
		}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := (&Set{Schema: tc.set.Schema, Automata: tc.set.Automata}).Encode()
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if _, err := Decode(data); err == nil {
				t.Fatal("bad artifact decoded cleanly")
			}
		})
	}
}

func TestTermString(t *testing.T) {
	term := Seq(Loop(Seq(Atom("a"), Atom("b"))), Choice(Atom("c"), Empty()))
	got := term.String()
	want := "(a·b)*·(c | ε)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
