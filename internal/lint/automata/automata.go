// Package automata compiles communication-effect terms — the regular
// expressions over collective ops that internal/lint infers per
// function — into minimal deterministic finite automata, and
// serializes them as the versioned pumi-proto artifact that the
// enforcement points share:
//
//   - online: automata.Machine.Protocol() yields the *san.Protocol a
//     PCU run drives each rank's op stream through (Options.Conform);
//   - offline: pumi-trace -conform replays flight-recorder traces
//     against the same machines;
//   - build time: pumi-vet -emit-automata regenerates the committed
//     golden artifact and `make proto-check` fails on drift.
//
// Compilation is by Brzozowski derivatives: each DFA state is a
// canonical residual term (ACI-normalized keys make structural
// equality decide state identity), discovered breadth-first over the
// term's alphabet. The raw derivative automaton is then minimized by
// Moore partition refinement and renumbered canonically (BFS from the
// start state over sorted edge labels), so equal languages compile to
// byte-identical machines regardless of the source term's shape.
//
// The wildcard atom (san.OpWildcard) represents a dynamic call the
// static analyzer could not resolve: it matches any op. States whose
// residual contains a live wildcard get a "*" default transition in
// the machine, which the runtime takes for ops without an explicit
// edge.
package automata

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/fastmath/pumi-go/internal/san"
)

// Schema identifies the artifact format; bump on incompatible change.
const Schema = "pumi-proto/1"

// ---- term IR ----

type termKind uint8

const (
	termEmpty termKind = iota
	termOp
	termSeq
	termChoice
	termLoop
)

// Term is one canonicalized regular expression over op names. Terms
// are immutable; key is the canonical rendering that decides
// structural equality and DFA state identity.
type Term struct {
	kind termKind
	op   string
	kids []*Term
	key  string
}

var emptyTerm = &Term{kind: termEmpty, key: "ε"}

// Empty returns ε, the term matching only the empty op sequence.
func Empty() *Term { return emptyTerm }

// universal reports whether the term is syntactically Σ*, the wildcard
// loop. The wildcard matches every op, so Loop(Wild) accepts every op
// sequence. The constructors absorb against it — inferred terms are
// littered with dynamic-call wildcards ((Σ* | ε), Σ*·Σ*, (Σ* | ε)* …),
// and without absorption their derivative state space is astronomically
// large even though the language is tiny.
func universal(t *Term) bool {
	return t.kind == termLoop && t.kids[0].kind == termOp && t.kids[0].op == san.OpWildcard
}

// Atom returns the single-op term.
func Atom(op string) *Term { return &Term{kind: termOp, op: op, key: "a:" + op} }

// Wild returns the wildcard atom: it matches exactly one op of any
// name. Use Loop(Wild()) for "any op sequence".
func Wild() *Term { return Atom(san.OpWildcard) }

// Seq composes terms sequentially, flattening nested Seqs and
// dropping ε.
func Seq(kids ...*Term) *Term {
	var flat []*Term
	push := func(k *Term) {
		// Σ*·Σ* = Σ*: collapse runs of universal factors.
		if universal(k) && len(flat) > 0 && universal(flat[len(flat)-1]) {
			return
		}
		flat = append(flat, k)
	}
	for _, k := range kids {
		if k == nil || k.kind == termEmpty {
			continue
		}
		if k.kind == termSeq {
			for _, kk := range k.kids {
				push(kk)
			}
			continue
		}
		push(k)
	}
	switch len(flat) {
	case 0:
		return emptyTerm
	case 1:
		return flat[0]
	}
	keys := make([]string, len(flat))
	for i, k := range flat {
		keys[i] = k.key
	}
	return &Term{kind: termSeq, kids: flat, key: "(" + strings.Join(keys, "·") + ")"}
}

// Choice builds an alternation with ACI canonicalization: nested
// Choices flatten, duplicate arms collapse, arms sort by key.
func Choice(kids ...*Term) *Term {
	var flat []*Term
	seen := map[string]bool{}
	add := func(k *Term) {
		if k == nil || seen[k.key] {
			return
		}
		seen[k.key] = true
		flat = append(flat, k)
	}
	for _, k := range kids {
		if k == nil {
			continue
		}
		if k.kind == termChoice {
			for _, kk := range k.kids {
				add(kk)
			}
			continue
		}
		add(k)
	}
	// Σ* ∪ L = Σ*: a universal arm absorbs the whole alternation.
	for _, k := range flat {
		if universal(k) {
			return k
		}
	}
	// ε ∪ L = L when L is already nullable: drop redundant ε arms.
	if len(flat) > 1 {
		hasNullable := false
		for _, k := range flat {
			if k.kind != termEmpty && nullable(k) {
				hasNullable = true
				break
			}
		}
		if hasNullable {
			kept := flat[:0]
			for _, k := range flat {
				if k.kind != termEmpty {
					kept = append(kept, k)
				}
			}
			flat = kept
		}
	}
	switch len(flat) {
	case 0:
		return emptyTerm
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].key < flat[j].key })
	keys := make([]string, len(flat))
	for i, k := range flat {
		keys[i] = k.key
	}
	return &Term{kind: termChoice, kids: flat, key: "{" + strings.Join(keys, "|") + "}"}
}

// Loop wraps a term in zero-or-more repetition; Loop(ε)=ε and
// Loop(Loop(t))=Loop(t).
func Loop(t *Term) *Term {
	if t == nil || t.kind == termEmpty {
		return emptyTerm
	}
	if t.kind == termLoop {
		return t
	}
	// (ε | x | …)* = (x | …)*: ε arms are redundant under repetition.
	if t.kind == termChoice {
		for i, k := range t.kids {
			if k.kind == termEmpty {
				rest := append(append([]*Term(nil), t.kids[:i]...), t.kids[i+1:]...)
				return Loop(Choice(rest...))
			}
		}
	}
	return &Term{kind: termLoop, kids: []*Term{t}, key: t.key + "*"}
}

// String renders the term for humans (and for the artifact's term
// field).
func (t *Term) String() string {
	if t == nil {
		return "ε"
	}
	switch t.kind {
	case termEmpty:
		return "ε"
	case termOp:
		return t.op
	case termSeq:
		parts := make([]string, len(t.kids))
		for i, k := range t.kids {
			parts[i] = k.String()
		}
		return strings.Join(parts, "·")
	case termChoice:
		parts := make([]string, len(t.kids))
		for i, k := range t.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, " | ") + ")"
	case termLoop:
		inner := t.kids[0].String()
		if t.kids[0].kind == termSeq || t.kids[0].kind == termChoice {
			return "(" + inner + ")*"
		}
		return inner + "*"
	}
	return "?"
}

// nullable reports whether the term's language contains the empty
// sequence.
func nullable(t *Term) bool {
	switch t.kind {
	case termEmpty, termLoop:
		return true
	case termOp:
		return false
	case termSeq:
		for _, k := range t.kids {
			if !nullable(k) {
				return false
			}
		}
		return true
	case termChoice:
		for _, k := range t.kids {
			if nullable(k) {
				return true
			}
		}
	}
	return false
}

// otherSym is the reserved derivative symbol standing for "any op not
// in the alphabet": only the wildcard atom matches it. Its derivative
// becomes the machine's "*" default transition.
const otherSym = "\x00other"

// atomMatches reports whether the atom named op consumes symbol a.
func atomMatches(op, a string) bool {
	return op == san.OpWildcard || op == a
}

// deriv is the Brzozowski derivative of t with respect to symbol a:
// the language of suffixes after consuming a, or nil when a cannot
// occur first.
func deriv(t *Term, a string) *Term {
	switch t.kind {
	case termEmpty:
		return nil
	case termOp:
		if atomMatches(t.op, a) {
			return emptyTerm
		}
		return nil
	case termSeq:
		var alts []*Term
		for i, k := range t.kids {
			if d := deriv(k, a); d != nil {
				rest := append([]*Term{d}, t.kids[i+1:]...)
				alts = append(alts, Seq(rest...))
			}
			if !nullable(k) {
				break
			}
		}
		if len(alts) == 0 {
			return nil
		}
		return Choice(alts...)
	case termChoice:
		var alts []*Term
		for _, k := range t.kids {
			if d := deriv(k, a); d != nil {
				alts = append(alts, d)
			}
		}
		if len(alts) == 0 {
			return nil
		}
		return Choice(alts...)
	case termLoop:
		d := deriv(t.kids[0], a)
		if d == nil {
			return nil
		}
		return Seq(d, t)
	}
	return nil
}

// Alphabet returns the sorted distinct op names of the term, wildcard
// excluded.
func Alphabet(t *Term) []string {
	set := map[string]bool{}
	var walk func(*Term)
	walk = func(t *Term) {
		if t == nil {
			return
		}
		if t.kind == termOp {
			if t.op != san.OpWildcard {
				set[t.op] = true
			}
			return
		}
		for _, k := range t.kids {
			walk(k)
		}
	}
	walk(t)
	out := make([]string, 0, len(set))
	for op := range set {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// ---- DFA compilation ----

// maxStates bounds derivative exploration; ACI canonicalization keeps
// real protocol terms far below it, so hitting the bound means a
// pathological input, not a bigger budget.
const maxStates = 4096

// State is one DFA state of a serialized machine. Edges maps op names
// to successor state ids; the "*" key, when present, is the default
// transition for ops without an explicit edge (wildcard states).
// Missing edges reject.
type State struct {
	Accept bool           `json:"accept"`
	Edges  map[string]int `json:"edges,omitempty"`
}

// Machine is one entry point's compiled protocol automaton. State 0 is
// always the start state (canonical BFS numbering).
type Machine struct {
	Entry  string   `json:"entry"`
	Term   string   `json:"term"`
	Ops    []string `json:"ops"`
	States []State  `json:"states"`
}

// explore runs the Brzozowski derivative BFS: every reachable residual
// term becomes a state, identified by its canonical key.
func explore(t *Term) (terms []*Term, next [][]int, syms []string, err error) {
	ops := Alphabet(t)
	syms = append(append([]string(nil), ops...), otherSym)
	ids := map[string]int{t.key: 0}
	terms = []*Term{t}
	for s := 0; s < len(terms); s++ {
		row := make([]int, len(syms))
		for i, a := range syms {
			d := deriv(terms[s], a)
			if d == nil {
				row[i] = -1
				continue
			}
			id, ok := ids[d.key]
			if !ok {
				id = len(terms)
				if id >= maxStates {
					return nil, nil, nil, fmt.Errorf("automata: term exceeds %d DFA states", maxStates)
				}
				ids[d.key] = id
				terms = append(terms, d)
			}
			row[i] = id
		}
		next = append(next, row)
	}
	return terms, next, syms, nil
}

// Derivatives renders the derivative exploration for humans — one block
// per discovered state with its residual term and transitions, before
// minimization. This is what `pumi-vet -effects -v` prints.
func Derivatives(t *Term) []string {
	if t == nil {
		t = emptyTerm
	}
	terms, next, syms, err := explore(t)
	if err != nil {
		return []string{err.Error()}
	}
	var out []string
	for s, tm := range terms {
		mark := ""
		if nullable(tm) {
			mark = " (accepting)"
		}
		out = append(out, fmt.Sprintf("s%d%s: %s", s, mark, tm))
		for i, target := range next[s] {
			if target < 0 {
				continue
			}
			label := syms[i]
			if label == otherSym {
				label = san.OpWildcard
			}
			out = append(out, fmt.Sprintf("  %s -> s%d", label, target))
		}
	}
	return out
}

// Compile builds the minimal DFA of the term's language. The result is
// canonical: two terms with equal languages compile to identical
// machines.
func Compile(entry string, t *Term) (Machine, error) {
	if t == nil {
		t = emptyTerm
	}
	ops := Alphabet(t)
	terms, next, _, err := explore(t)
	if err != nil {
		return Machine{}, fmt.Errorf("%s: %w", entry, err)
	}
	accept := make([]bool, len(terms))
	for s, tm := range terms {
		accept[s] = nullable(tm)
	}

	next, accept = minimize(next, accept, len(ops)+1)
	next, accept = renumber(next, accept, len(ops)+1)

	m := Machine{Entry: entry, Term: t.String(), Ops: ops, States: make([]State, len(accept))}
	for s := range accept {
		st := State{Accept: accept[s]}
		for i, target := range next[s] {
			if target < 0 {
				continue
			}
			if st.Edges == nil {
				st.Edges = map[string]int{}
			}
			label := san.OpWildcard
			if i < len(ops) {
				label = ops[i]
			}
			st.Edges[label] = target
		}
		m.States[s] = st
	}
	return m, nil
}

// minimize merges language-equivalent states by Moore partition
// refinement. Missing edges (-1) act as an implicit reject sink that
// is always its own class; no live derivative state can merge with it
// because every derivative has a nonempty language.
func minimize(next [][]int, accept []bool, width int) ([][]int, []bool) {
	n := len(accept)
	block := make([]int, n)
	for s := range block {
		if accept[s] {
			block[s] = 1
		}
	}
	for {
		// Signature of a state: its block plus its successors' blocks
		// (-1 edges keep the constant pseudo-block -1).
		sigOf := func(s int) string {
			var b strings.Builder
			fmt.Fprintf(&b, "%d", block[s])
			for i := 0; i < width; i++ {
				t := next[s][i]
				if t >= 0 {
					fmt.Fprintf(&b, ",%d", block[t])
				} else {
					b.WriteString(",-")
				}
			}
			return b.String()
		}
		newBlock := make([]int, n)
		index := map[string]int{}
		for s := 0; s < n; s++ {
			sig := sigOf(s)
			id, ok := index[sig]
			if !ok {
				id = len(index)
				index[sig] = id
			}
			newBlock[s] = id
		}
		stable := len(index) == blockCount(block)
		block = newBlock
		if stable {
			break
		}
	}
	// Collapse each block to one representative.
	nb := blockCount(block)
	repNext := make([][]int, nb)
	repAccept := make([]bool, nb)
	for s := 0; s < n; s++ {
		b := block[s]
		if repNext[b] != nil {
			continue
		}
		row := make([]int, width)
		for i := 0; i < width; i++ {
			if t := next[s][i]; t >= 0 {
				row[i] = block[t]
			} else {
				row[i] = -1
			}
		}
		repNext[b] = row
		repAccept[b] = accept[s]
	}
	// The start state (id 0) must stay identifiable: renumber so block
	// of state 0 becomes state 0.
	if b0 := block[0]; b0 != 0 {
		perm := make([]int, nb)
		for i := range perm {
			perm[i] = i
		}
		perm[0], perm[b0] = b0, 0
		repNext, repAccept = applyPerm(repNext, repAccept, perm, width)
	}
	return repNext, repAccept
}

func blockCount(block []int) int {
	max := -1
	for _, b := range block {
		if b > max {
			max = b
		}
	}
	return max + 1
}

// renumber relabels states in BFS discovery order from the start
// state over the (already sorted) symbol order, making the numbering
// independent of derivative discovery order.
func renumber(next [][]int, accept []bool, width int) ([][]int, []bool) {
	n := len(accept)
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		order = append(order, s)
		for i := 0; i < width; i++ {
			if t := next[s][i]; t >= 0 && !seen[t] {
				seen[t] = true
				queue = append(queue, t)
			}
		}
	}
	perm := make([]int, n) // old id -> new id
	for newID, old := range order {
		perm[old] = newID
	}
	// Unreachable states (possible only after minimization merged the
	// reachable set) are dropped by truncating to the visited count.
	pn, pa := applyPerm(next, accept, perm, width)
	return pn[:len(order)], pa[:len(order)]
}

// applyPerm relabels states by perm (old id -> new id).
func applyPerm(next [][]int, accept []bool, perm []int, width int) ([][]int, []bool) {
	n := len(accept)
	outNext := make([][]int, n)
	outAccept := make([]bool, n)
	for old, row := range next {
		newID := perm[old]
		nr := make([]int, width)
		for i, t := range row {
			if t >= 0 {
				nr[i] = perm[t]
			} else {
				nr[i] = -1
			}
		}
		outNext[newID] = nr
		outAccept[newID] = accept[old]
	}
	return outNext, outAccept
}

// ---- artifact ----

// Set is the pumi-proto artifact: every entry point's machine, sorted
// by entry name.
type Set struct {
	Schema   string    `json:"schema"`
	Automata []Machine `json:"automata"`
}

// NewSet wraps machines into a schema-stamped artifact, sorted by
// entry.
func NewSet(machines []Machine) *Set {
	ms := append([]Machine(nil), machines...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Entry < ms[j].Entry })
	return &Set{Schema: Schema, Automata: ms}
}

// Encode renders the artifact deterministically (sorted machines,
// sorted edge keys via encoding/json's map ordering, trailing
// newline).
func (s *Set) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Validate checks the artifact's schema and internal consistency.
func (s *Set) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("automata: schema %q, want %q", s.Schema, Schema)
	}
	if len(s.Automata) == 0 {
		return fmt.Errorf("automata: artifact holds no machines")
	}
	seen := map[string]bool{}
	for i, m := range s.Automata {
		if m.Entry == "" {
			return fmt.Errorf("automata: machine %d has no entry name", i)
		}
		if seen[m.Entry] {
			return fmt.Errorf("automata: duplicate entry %q", m.Entry)
		}
		seen[m.Entry] = true
		if i > 0 && s.Automata[i-1].Entry > m.Entry {
			return fmt.Errorf("automata: machines not sorted by entry at %q", m.Entry)
		}
		if _, err := m.Protocol(); err != nil {
			return err
		}
	}
	return nil
}

// Decode parses and validates an artifact.
func Decode(data []byte) (*Set, error) {
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("automata: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and validates an artifact file.
func LoadFile(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Find returns the machine for the given entry point, or nil.
func (s *Set) Find(entry string) *Machine {
	for i := range s.Automata {
		if s.Automata[i].Entry == entry {
			return &s.Automata[i]
		}
	}
	return nil
}

// Protocol compiles the machine into the runtime-executable form the
// PCU conformance monitor and trace replay share.
func (m *Machine) Protocol() (*san.Protocol, error) {
	accept := make([]bool, len(m.States))
	edges := make([]map[string]int, len(m.States))
	for i, st := range m.States {
		accept[i] = st.Accept
		edges[i] = st.Edges
	}
	return san.NewProtocol(m.Entry, m.Ops, 0, accept, edges)
}
