// Package lint implements pumi-vet, the project-specific static
// analysis behind `go run ./cmd/pumi-vet ./...`. It enforces the
// concurrency and distribution invariants the Go compiler cannot see:
// goroutine confinement of pcu.Ctx, rank-uniform entry into
// collectives, communication-buffer and message-reader discipline, and
// the opacity of mesh entity handles across parts.
//
// The package uses only the standard library (go/ast, go/parser,
// go/types); packages are loaded by walking the module tree and
// type-checked against a source importer, so the tool needs no
// dependencies beyond the Go toolchain itself.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// JSON renders the diagnostic as one NDJSON object — the `pumi-vet
// -json` machine interface, one object per line, keyed for editor and
// CI consumers.
func (d Diagnostic) JSON() string {
	b, err := json.Marshal(struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
	if err != nil {
		// A flat struct of strings and ints cannot fail to marshal.
		panic(err)
	}
	return string(b)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (or directory for fixtures)
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyzer is one check. Run inspects a package through its Pass and
// reports findings; analyzers may consult the cross-package Facts
// gathered before any analyzer runs.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) context handed to Analyzer.Run.
type Pass struct {
	*Package
	Facts    *Facts
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Analyzers returns pumi-vet's analyzers in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CtxEscape, CollMismatch, BufDiscipline, EntHandle, MapOrder, PhaseOrder, CollSeq, RankDiv}
}

// Facts is cross-package knowledge gathered in a pre-pass over every
// loaded package before analyzers run.
type Facts struct {
	// collective maps functions documented as collective — their doc
	// comment mentions "collective" — keyed by funcKey. The pcu
	// built-in collectives are seeded unconditionally.
	collective map[funcKey]bool
	// graph holds the interprocedural callgraph and per-function
	// summaries (see summary.go); analyzers query it through the
	// witness methods rather than touching nodes directly.
	graph *callGraph
}

// funcKey names a function or method: package path, receiver type name
// (empty for plain functions) and function name.
type funcKey struct {
	pkg, recv, name string
}

// pcuPkg is the import-path suffix identifying the PCU runtime package;
// matching by suffix keeps the analyzers independent of the module
// name.
const (
	pcuPkg   = "internal/pcu"
	meshPkg  = "internal/mesh"
	tracePkg = "internal/trace"
)

// builtinCollectives are the PCU entry points every rank must reach
// together. Their docs predate the "collective" convention, so they are
// seeded explicitly.
var builtinCollectives = []string{
	"Barrier", "Exchange",
	"Allreduce", "Reduce", "Bcast", "Allgather", "Exscan",
	"SumInt64", "MaxInt64", "MinInt64", "SumFloat64", "MaxFloat64",
	"ExscanInt64",
	"Agree",
}

func gatherFacts(pkgs []*Package) *Facts {
	f := &Facts{collective: map[funcKey]bool{}}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				if !strings.Contains(strings.ToLower(fd.Doc.Text()), "collective") {
					continue
				}
				recv := ""
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					recv = recvTypeName(fd.Recv.List[0].Type)
				}
				f.collective[funcKey{pkgPathOf(p), recv, fd.Name.Name}] = true
			}
		}
	}
	f.graph = buildCallGraph(pkgs, f)
	return f
}

func pkgPathOf(p *Package) string {
	if p.Pkg != nil {
		return p.Pkg.Path()
	}
	return p.Path
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// ignoreKey addresses one source line for directive suppression.
type ignoreKey struct {
	file string
	line int
}

// gatherIgnores collects `//pumi-vet:ignore` directives. The directive
// takes a comma-separated analyzer list (or "all") and suppresses
// matching findings on its own line — the trailing-comment form — and
// on the line directly below, for a standalone comment above the
// offender:
//
//	c.Barrier() //pumi-vet:ignore collmismatch
//
//	//pumi-vet:ignore collmismatch
//	pcu.SumInt64(c, 1)
//
// It exists for code whose job is to violate an invariant on purpose —
// chiefly the deadlock-diagnosis tests, which skip collectives on some
// ranks to prove the watchdog catches it.
func gatherIgnores(pkgs []*Package) map[ignoreKey]map[string]bool {
	ign := map[ignoreKey]map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//pumi-vet:ignore")
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					// Allow a trailing explanation: "...ignore x // why".
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i]
					}
					names := map[string]bool{}
					for _, n := range strings.Split(rest, ",") {
						if n = strings.TrimSpace(n); n != "" {
							names[n] = true
						}
					}
					if len(names) == 0 {
						names["all"] = true
					}
					pos := p.Fset.Position(c.Pos())
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := ignoreKey{pos.Filename, line}
						if ign[k] == nil {
							ign[k] = map[string]bool{}
						}
						for n := range names {
							ign[k][n] = true
						}
					}
				}
			}
		}
	}
	return ign
}

// Run executes the given analyzers over the packages and returns all
// findings sorted by position, dropping those suppressed by
// //pumi-vet:ignore directives.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := gatherFacts(pkgs)
	ignored := gatherIgnores(pkgs)
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Package:  p,
				Facts:    facts,
				analyzer: a,
				report: func(d Diagnostic) {
					if names := ignored[ignoreKey{d.Pos.Filename, d.Pos.Line}]; names["all"] || names[d.Analyzer] {
						return
					}
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	return dedupeDiags(diags)
}

// analyzerSpecificity ranks analyzers for position-level dedup: when
// two analyzers report the same file:line:col, only the more specific
// one's diagnostics survive. The schedule-level analyzers explain *why*
// the communication diverges, so they outrank the lexical checks.
var analyzerSpecificity = map[string]int{
	"collseq":      3,
	"rankdiv":      3,
	"collmismatch": 2,
	"phaseorder":   2,
}

// dedupeDiags sorts diagnostics into a total deterministic order —
// position, then analyzer, then message — and collapses positions
// reported by multiple analyzers down to the most specific one. The
// result is identical regardless of analyzer registration order.
func dedupeDiags(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	type posKey struct {
		file      string
		line, col int
	}
	// First pass: pick the winning analyzer per position — highest
	// specificity; ties broken by the longest message, then
	// alphabetically, so the outcome never depends on encounter order.
	winner := map[posKey]Diagnostic{}
	for _, d := range diags {
		k := posKey{d.Pos.Filename, d.Pos.Line, d.Pos.Column}
		w, ok := winner[k]
		if !ok || moreSpecific(d, w) {
			winner[k] = d
		}
	}
	// Second pass: keep every diagnostic from the winning analyzer at
	// each position (one analyzer may legitimately report twice), drop
	// the rest, and drop exact duplicates.
	out := diags[:0]
	var last Diagnostic
	for i, d := range diags {
		k := posKey{d.Pos.Filename, d.Pos.Line, d.Pos.Column}
		if d.Analyzer != winner[k].Analyzer {
			continue
		}
		if i > 0 && d == last {
			continue
		}
		last = d
		out = append(out, d)
	}
	return out
}

// moreSpecific reports whether a should beat b for the same position.
func moreSpecific(a, b Diagnostic) bool {
	sa, sb := analyzerSpecificity[a.Analyzer], analyzerSpecificity[b.Analyzer]
	if sa != sb {
		return sa > sb
	}
	if len(a.Message) != len(b.Message) {
		return len(a.Message) > len(b.Message)
	}
	if a.Message != b.Message {
		return a.Message < b.Message
	}
	return a.Analyzer < b.Analyzer
}

// Loader loads and type-checks packages from a module tree.
type Loader struct {
	Fset *token.FileSet

	// IncludeTests controls whether _test.go files are analyzed.
	IncludeTests bool

	imp     types.Importer
	modRoot string
	modPath string
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		IncludeTests: true,
		imp:          importer.ForCompiler(fset, "source", nil),
		modRoot:      root,
		modPath:      path,
	}, nil
}

func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod lacks a module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// Load resolves the given patterns (a directory, or a directory
// followed by "/..." for a recursive walk, relative to dir) and returns
// the loaded packages. Directories named testdata, vendor, or starting
// with "." or "_" are skipped during recursive walks but may be named
// explicitly.
func (l *Loader) Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = dir
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(dir, pat)
		}
		if !recursive {
			addDir(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			addDir(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, d := range dirs {
		ps, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}

// loadDir parses and type-checks the package(s) in one directory: the
// primary package (with its in-package test files) and, separately, an
// external _test package if present.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkgName := file.Name.Name
		byName[pkgName] = append(byName[pkgName], file)
	}
	importPath := l.importPath(dir)
	var names []string
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, n := range names {
		files := byName[n]
		path := importPath
		if strings.HasSuffix(n, "_test") {
			path += "_test"
		}
		pkgs = append(pkgs, l.check(path, files))
	}
	return pkgs, nil
}

func (l *Loader) importPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// check type-checks one package leniently: type errors (e.g. in
// fixtures that intentionally misuse the API) are tolerated and the
// analyzers work with whatever type information resolved.
func (l *Loader) check(path string, files []*ast.File) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(error) {}, // lenient: analyze what resolved
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	return &Package{Path: path, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}
}

// ---- shared type helpers used by the analyzers ----

// pathHasSuffix reports whether import path p ends in the path suffix
// want (component-aligned).
func pathHasSuffix(p, want string) bool {
	return p == want || strings.HasSuffix(p, "/"+want)
}

// namedName returns the name of the named type underlying t (pointers
// dereferenced), or "".
func namedName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isNamedType reports whether t (pointers dereferenced) is the named
// type pkgSuffix.name.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isCtxPtr reports whether t is *pcu.Ctx.
func isCtxPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), pcuPkg, "Ctx")
}

// calleeFunc resolves a call expression to the called *types.Func
// (function or method), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// methodRecvType returns the receiver expression's type for a method
// call, or nil for plain function calls.
func methodRecvType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && (s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr) {
		return info.TypeOf(sel.X)
	}
	return nil
}
