package lint

import (
	"go/types"
	"strings"
	"testing"
)

func op(name string) *Effect     { return opEffect(name, true, 0) }
func sendOp(name string) *Effect { return opEffect(name, false, 0) }

func TestEffectCanonicalization(t *testing.T) {
	b, e, s := op("Barrier"), op("Exchange"), op("SumInt64")

	if got := seqEffect(); got != emptyEffect {
		t.Errorf("seq() = %s, want ε", got)
	}
	if got := seqEffect(emptyEffect, b, emptyEffect); !got.Equal(b) {
		t.Errorf("ε·Barrier·ε = %s, want Barrier", got)
	}
	// Seq flattening: (a·b)·c == a·(b·c).
	if l, r := seqEffect(seqEffect(b, e), s), seqEffect(b, seqEffect(e, s)); !l.Equal(r) {
		t.Errorf("seq not associative: %s vs %s", l, r)
	}
	// Choice is ACI: dedup, flatten, order-independent.
	if l, r := choiceEffect(b, e), choiceEffect(e, b, e); !l.Equal(r) {
		t.Errorf("choice not ACI: %s vs %s", l, r)
	}
	if got := choiceEffect(b, b); !got.Equal(b) {
		t.Errorf("Barrier|Barrier = %s, want Barrier", got)
	}
	// Loop(ε)=ε, Loop(Loop(e))=Loop(e).
	if got := loopEffect(emptyEffect); got != emptyEffect {
		t.Errorf("ε* = %s, want ε", got)
	}
	if got := loopEffect(loopEffect(b)); !got.Equal(loopEffect(b)) {
		t.Errorf("(Barrier*)* = %s, want Barrier*", got)
	}
}

func TestCollProject(t *testing.T) {
	b, snd := op("Barrier"), sendOp("send")
	// Sends erase; a guard whose arms differ only in sends projects to
	// one schedule.
	term := choiceEffect(seqEffect(snd, b), b)
	if got := collProject(term); !got.Equal(b) {
		t.Errorf("project((send·Barrier)|Barrier) = %s, want Barrier", got)
	}
	if got := collProject(loopEffect(snd)); got != emptyEffect {
		t.Errorf("project(send*) = %s, want ε", got)
	}
}

func TestSchedDivergeEqual(t *testing.T) {
	b, e := op("Barrier"), op("Exchange")
	cases := []struct{ a, b *Effect }{
		{b, b},
		{seqEffect(b, e), seqEffect(b, e)},
		// Distinct terms, equal languages: e|e·e ⊂ e* on both sides.
		{loopEffect(b), choiceEffect(emptyEffect, seqEffect(b, loopEffect(b)))},
		// Sends do not affect the collective schedule.
		{seqEffect(sendOp("send"), b), b},
	}
	for _, c := range cases {
		if w, equal := schedDiverge(c.a, c.b, "x", "y"); !equal {
			t.Errorf("schedDiverge(%s, %s) diverged: %s", c.a, c.b, w)
		}
	}
}

func TestSchedDivergeWitness(t *testing.T) {
	b, e, s := op("Barrier"), op("Exchange"), op("SumInt64")
	cases := []struct {
		a, b *Effect
		want string
	}{
		{b, emptyEffect, "at the branch, the y can finish its collectives while the x must still run Barrier"},
		{seqEffect(b, s), b, "after Barrier, the y can finish its collectives while the x must still run SumInt64"},
		{seqEffect(b, e), seqEffect(b, s), "after Barrier, the x can run Exchange where the y cannot"},
	}
	for _, c := range cases {
		w, equal := schedDiverge(c.a, c.b, "x", "y")
		if equal {
			t.Errorf("schedDiverge(%s, %s) reported equal", c.a, c.b)
			continue
		}
		if w != c.want {
			t.Errorf("schedDiverge(%s, %s)\n got %q\nwant %q", c.a, c.b, w, c.want)
		}
	}
}

func TestSchedDivergeLoopVsFixed(t *testing.T) {
	b := op("Barrier")
	// Barrier* vs Barrier: the starred side may stop at zero.
	w, equal := schedDiverge(loopEffect(b), b, "loop", "straight")
	if equal {
		t.Fatal("Barrier* vs Barrier reported equal")
	}
	if !strings.Contains(w, "can finish its collectives") {
		t.Errorf("witness %q does not explain the nullable mismatch", w)
	}
}

func TestAlphabetSorted(t *testing.T) {
	term := seqEffect(op("Exchange"), choiceEffect(op("Barrier"), sendOp("send")), op("Exchange"))
	var names []string
	for _, a := range alphabet(term) {
		names = append(names, a.op)
	}
	want := "Barrier,Exchange,send"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("alphabet = %s, want %s", got, want)
	}
}

// lookupFn resolves a package-scope function in a fixture package.
func lookupFn(t *testing.T, p *Package, name string) *types.Func {
	t.Helper()
	obj := p.Pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("fixture function %s not found", name)
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("%s is %T, not a function", name, obj)
	}
	return fn
}

func TestInferredEffects(t *testing.T) {
	pkgs := fixturePkgs(t, "collseq")
	facts := gatherFacts(pkgs)
	cases := []struct {
		fn   string
		want string
	}{
		{"seqOne", "Barrier"},
		{"seqBoth", "Barrier·SumInt64"},
		{"okBothArmsEqual", "Bcast"},
		{"okEarlyReturnEqual", "Bcast"},
	}
	for _, c := range cases {
		fn := lookupFn(t, pkgs[0], c.fn)
		eff := facts.EffectOf(fn)
		if eff == nil {
			t.Errorf("EffectOf(%s) = nil", c.fn)
			continue
		}
		if got := collProject(eff).String(); got != c.want {
			t.Errorf("EffectOf(%s) projects to %s, want %s", c.fn, got, c.want)
		}
		if facts.EffectWidened(fn) {
			t.Errorf("EffectOf(%s) unexpectedly widened", c.fn)
		}
	}
}
