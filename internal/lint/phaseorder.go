package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PhaseOrder checks the phased-exchange protocol lexically, per
// function: a phase object obtained from beginPhase must have all its
// send buffers opened (`ph.to(...)`) before its single `ph.exchange()`,
// and a phase that packed sends must reach an exchange. Violations are
// silent at runtime — a buffer packed after the exchange is simply
// never delivered, and a phase that never exchanges starves every
// receiver — so they are worth a static gate.
//
// The analysis is a state machine over the lexical event order
// (create/pack/exchange) of each phase variable, including events
// inside nested function literals. A phase value that escapes the
// function's own protocol — passed to a helper, returned, stored —
// switches off the missed-exchange check for that phase, since the
// exchange may legitimately happen elsewhere; packing after a lexical
// exchange and exchanging twice are still reported.
var PhaseOrder = &Analyzer{
	Name: "phaseorder",
	Doc:  "check begin/to/exchange ordering of phased exchanges",
	Run:  runPhaseOrder,
}

const (
	evCreate = iota
	evPack
	evClose
	evEscape
)

type phaseEvent struct {
	pos  token.Pos
	kind int
	obj  types.Object
}

func runPhaseOrder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPhaseOrder(p, fd.Body)
		}
	}
}

func checkPhaseOrder(p *Pass, body *ast.BlockStmt) {
	// First pass: protocol events. Identifiers consumed by a protocol
	// operation are excluded from the escape pass below.
	consumed := map[*ast.Ident]bool{}
	var events []phaseEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBeginPhaseCall(p, call) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if obj := identObj(p.Info, id); obj != nil {
					consumed[id] = true
					events = append(events, phaseEvent{id.Pos(), evCreate, obj})
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			switch sel.Sel.Name {
			case "to", "To":
				consumed[id] = true
				events = append(events, phaseEvent{n.Pos(), evPack, obj})
			case "exchange", "Exchange":
				consumed[id] = true
				events = append(events, phaseEvent{n.Pos(), evClose, obj})
			}
		}
		return true
	})
	// Second pass: any other use of a phase variable is an escape.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || consumed[id] {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil {
			events = append(events, phaseEvent{id.Pos(), evEscape, obj})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	type phaseState struct {
		openPos  token.Pos
		closePos token.Pos
		open     bool
		packed   bool
		escaped  bool
	}
	// Only variables that beginPhase assigned at some point get a state
	// machine; to/To and exchange/Exchange on anything else (a raw
	// *pcu.Ctx, unrelated types) are out of scope here.
	states := map[types.Object]*phaseState{}
	missedExchange := func(st *phaseState, at token.Pos) {
		p.Reportf(at,
			"phased exchange begun at %s packed sends but never ran exchange; every receiver stalls",
			p.Fset.Position(st.openPos))
	}
	for _, ev := range events {
		st := states[ev.obj]
		switch ev.kind {
		case evCreate:
			if st != nil && st.open && st.packed && !st.escaped {
				missedExchange(st, ev.pos)
			}
			states[ev.obj] = &phaseState{openPos: ev.pos, open: true}
		case evPack:
			if st == nil {
				continue
			}
			if !st.open {
				p.Reportf(ev.pos,
					"send buffer opened after the phase's exchange at %s; data packed now is never delivered",
					p.Fset.Position(st.closePos))
			} else {
				st.packed = true
			}
		case evClose:
			if st == nil {
				continue
			}
			if !st.open {
				p.Reportf(ev.pos,
					"phase exchanged twice (previous exchange at %s)",
					p.Fset.Position(st.closePos))
			} else {
				st.open = false
				st.closePos = ev.pos
			}
		case evEscape:
			if st != nil {
				st.escaped = true
			}
		}
	}
	var leftovers []*phaseState
	for _, st := range states {
		if st.open && st.packed && !st.escaped {
			leftovers = append(leftovers, st)
		}
	}
	sort.Slice(leftovers, func(i, j int) bool { return leftovers[i].openPos < leftovers[j].openPos })
	for _, st := range leftovers {
		missedExchange(st, st.openPos)
	}
}

// isBeginPhaseCall matches the phase constructors: a call to a function
// or method named beginPhase/BeginPhase.
func isBeginPhaseCall(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return false
	}
	return fn.Name() == "beginPhase" || fn.Name() == "BeginPhase"
}

// identObj resolves an identifier in either Defs (`:=`) or Uses (`=`).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
