package lint

// effects.go — the communication-effect inference engine behind the
// collseq and rankdiv analyzers.
//
// Every function body is abstract-interpreted into an *effect term*, a
// regular expression over communication atoms:
//
//	ε           no communication
//	Op(a)       one atom: a collective op (Barrier, Exchange, SumInt64,
//	            a doc-marked collective), a send (To/pack on a buffer),
//	            or a reader-lifecycle event (Reader.Done)
//	e1 · e2     sequential composition (statement order)
//	e1 | e2     alternation (both arms of a branch)
//	e*          zero-or-more repetition (loops, widened recursion)
//
// Terms compose interprocedurally over the callgraph built in
// summary.go: a call site contributes its callee's inferred effect
// inline, so helper wrappers are transparent; pcu built-in collectives
// and doc-marked collective functions stay opaque atoms (a named sync
// point is a schedule event regardless of how it is implemented).
// Recursive call cycles are *widened*: every function in a cyclic SCC
// gets Loop(Choice(atoms-of-the-cycle)) — "some indeterminate
// repetition of these ops" — which keeps inference terminating and errs
// toward reporting when a rank guard surrounds recursion that
// communicates.
//
// The payoff is decidable schedule comparison. The *collective
// schedule* of a term is its projection onto collective atoms (sends
// and reader events erased — rank-divergent packing before a uniform
// Exchange is the canonical sparse pattern and must stay legal). Two
// schedules are compared as regular languages with Brzozowski
// derivatives over canonicalized terms; inequivalence comes with a
// minimal witness string: the shortest op prefix after which one path
// can do something the other cannot.
//
// Soundness caveats (documented in DESIGN.md §11): function values
// invoked through variables contribute ε; goroutine bodies contribute ε
// to the spawning schedule; `goto` and `fallthrough` are approximated
// as fall-through; defers registered under a condition are optionalized
// (Choice with ε); recover is ignored (a panic path is modeled as an
// exit like return).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---- runtime projection ----
//
// Effect terms come in two modes. The *static* mode (the original one,
// used by collseq/rankdiv) names atoms after the Go functions entered:
// Barrier, SumInt64, a doc-marked collective stays an opaque atom. The
// *runtime* mode projects the same bodies onto the op names the PCU
// runtime actually records in beginOp — SumInt64 is one "allreduce",
// doc-marked collectives expand to their bodies — so the resulting term
// describes the op stream a conformance monitor or trace replay will
// observe (see internal/san and internal/lint/automata). Runtime terms
// must over-approximate real streams, so calls of function values the
// analyzer cannot resolve widen to Loop("*"), the wildcard window; the
// static mode keeps them ε to avoid phantom schedule divergence.

// rtOpShrink and rtOpWildcard mirror san.OpShrink/san.OpWildcard
// without importing the runtime package: the world-shrink boundary
// pseudo-op and the any-op wildcard atom.
const (
	rtOpShrink   = "shrink"
	rtOpWildcard = "*"
)

// rtOpName maps each pcu builtin collective to the op name the runtime
// records for it (the convenience reductions are Allreduce/Exscan
// wrappers, so they record the wrapped op).
var rtOpName = map[string]string{
	"Barrier":     "barrier",
	"Exchange":    "exchange",
	"Allreduce":   "allreduce",
	"Reduce":      "reduce",
	"Bcast":       "bcast",
	"Allgather":   "allgather",
	"Exscan":      "exscan",
	"SumInt64":    "allreduce",
	"MaxInt64":    "allreduce",
	"MinInt64":    "allreduce",
	"SumFloat64":  "allreduce",
	"MaxFloat64":  "allreduce",
	"ExscanInt64": "exscan",
	"Agree":       "agree",
}

type effKind uint8

const (
	effEmpty effKind = iota
	effOp
	effSeq
	effChoice
	effLoop
)

// Effect is one canonicalized communication-effect term. Terms are
// immutable after construction; key is a canonical rendering used for
// structural equality, Choice deduplication and derivative memoization.
type Effect struct {
	kind effKind
	op   string // effOp: atom name
	coll bool   // effOp: collective atom (survives schedule projection)
	pos  token.Pos
	kids []*Effect
	key  string
}

var emptyEffect = &Effect{kind: effEmpty, key: "ε"}

func opEffect(name string, coll bool, pos token.Pos) *Effect {
	prefix := "s:"
	if coll {
		prefix = "C:"
	}
	return &Effect{kind: effOp, op: name, coll: coll, pos: pos, key: prefix + name}
}

// seqEffect composes terms sequentially, flattening nested Seqs and
// dropping ε.
func seqEffect(kids ...*Effect) *Effect {
	var flat []*Effect
	for _, k := range kids {
		if k == nil || k.kind == effEmpty {
			continue
		}
		if k.kind == effSeq {
			flat = append(flat, k.kids...)
			continue
		}
		flat = append(flat, k)
	}
	switch len(flat) {
	case 0:
		return emptyEffect
	case 1:
		return flat[0]
	}
	keys := make([]string, len(flat))
	for i, k := range flat {
		keys[i] = k.key
	}
	return &Effect{kind: effSeq, kids: flat, key: "(" + strings.Join(keys, "·") + ")"}
}

// choiceEffect builds an alternation, flattening nested Choices,
// deduplicating and sorting arms by key (ACI canonicalization — this is
// what keeps the Brzozowski derivative state space finite).
func choiceEffect(kids ...*Effect) *Effect {
	var flat []*Effect
	seen := map[string]bool{}
	add := func(k *Effect) {
		if k == nil || seen[k.key] {
			return
		}
		seen[k.key] = true
		flat = append(flat, k)
	}
	for _, k := range kids {
		if k == nil {
			continue
		}
		if k.kind == effChoice {
			for _, kk := range k.kids {
				add(kk)
			}
			continue
		}
		add(k)
	}
	switch len(flat) {
	case 0:
		return emptyEffect
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].key < flat[j].key })
	keys := make([]string, len(flat))
	for i, k := range flat {
		keys[i] = k.key
	}
	return &Effect{kind: effChoice, kids: flat, key: "{" + strings.Join(keys, "|") + "}"}
}

// loopEffect wraps a term in zero-or-more repetition. Loop(ε)=ε and
// Loop(Loop(e))=Loop(e).
func loopEffect(e *Effect) *Effect {
	if e == nil || e.kind == effEmpty {
		return emptyEffect
	}
	if e.kind == effLoop {
		return e
	}
	return &Effect{kind: effLoop, kids: []*Effect{e}, key: e.key + "*"}
}

// String renders a term for diagnostics and debugging.
func (e *Effect) String() string {
	if e == nil {
		return "ε"
	}
	switch e.kind {
	case effEmpty:
		return "ε"
	case effOp:
		return e.op
	case effSeq:
		parts := make([]string, len(e.kids))
		for i, k := range e.kids {
			parts[i] = k.String()
		}
		return strings.Join(parts, "·")
	case effChoice:
		parts := make([]string, len(e.kids))
		for i, k := range e.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, " | ") + ")"
	case effLoop:
		inner := e.kids[0].String()
		if e.kids[0].kind == effSeq || e.kids[0].kind == effChoice {
			return "(" + inner + ")*"
		}
		return inner + "*"
	}
	return "?"
}

// Equal reports structural (canonical) term equality. Language
// equivalence is the job of schedDiverge.
func (e *Effect) Equal(o *Effect) bool {
	if e == nil || o == nil {
		return e == o
	}
	return e.key == o.key
}

// collProject erases non-collective atoms, yielding the collective
// schedule of a term.
func collProject(e *Effect) *Effect {
	if e == nil {
		return emptyEffect
	}
	switch e.kind {
	case effEmpty:
		return emptyEffect
	case effOp:
		if e.coll {
			return e
		}
		return emptyEffect
	case effSeq:
		kids := make([]*Effect, len(e.kids))
		for i, k := range e.kids {
			kids[i] = collProject(k)
		}
		return seqEffect(kids...)
	case effChoice:
		kids := make([]*Effect, len(e.kids))
		for i, k := range e.kids {
			kids[i] = collProject(k)
		}
		return choiceEffect(kids...)
	case effLoop:
		return loopEffect(collProject(e.kids[0]))
	}
	return emptyEffect
}

// alphabet collects the distinct atoms of a term in sorted order.
func alphabet(e *Effect) []*Effect {
	set := map[string]*Effect{}
	var walk func(*Effect)
	walk = func(e *Effect) {
		if e == nil {
			return
		}
		if e.kind == effOp {
			if _, ok := set[e.key]; !ok {
				set[e.key] = e
			}
			return
		}
		for _, k := range e.kids {
			walk(k)
		}
	}
	walk(e)
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Effect, len(keys))
	for i, k := range keys {
		out[i] = set[k]
	}
	return out
}

// ---- Brzozowski-derivative language comparison ----

// nullable reports whether the term's language contains the empty
// sequence (the path can finish without further ops).
func nullable(e *Effect) bool {
	switch e.kind {
	case effEmpty, effLoop:
		return true
	case effOp:
		return false
	case effSeq:
		for _, k := range e.kids {
			if !nullable(k) {
				return false
			}
		}
		return true
	case effChoice:
		for _, k := range e.kids {
			if nullable(k) {
				return true
			}
		}
		return false
	}
	return false
}

// firsts returns the sorted set of atom names that can begin a sequence
// of the term's language.
func firsts(e *Effect) []string {
	set := map[string]bool{}
	var walk func(*Effect)
	walk = func(e *Effect) {
		switch e.kind {
		case effOp:
			set[e.op] = true
		case effSeq:
			for _, k := range e.kids {
				walk(k)
				if !nullable(k) {
					return
				}
			}
		case effChoice, effLoop:
			for _, k := range e.kids {
				walk(k)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// derivative computes the Brzozowski derivative of e with respect to
// atom a: the language of suffixes after consuming a. nil means a
// cannot occur first.
func derivative(e *Effect, a string) *Effect {
	switch e.kind {
	case effEmpty:
		return nil
	case effOp:
		if e.op == a {
			return emptyEffect
		}
		return nil
	case effSeq:
		var alts []*Effect
		for i, k := range e.kids {
			if d := derivative(k, a); d != nil {
				rest := append([]*Effect{d}, e.kids[i+1:]...)
				alts = append(alts, seqEffect(rest...))
			}
			if !nullable(k) {
				break
			}
		}
		if len(alts) == 0 {
			return nil
		}
		return choiceEffect(alts...)
	case effChoice:
		var alts []*Effect
		for _, k := range e.kids {
			if d := derivative(k, a); d != nil {
				alts = append(alts, d)
			}
		}
		if len(alts) == 0 {
			return nil
		}
		return choiceEffect(alts...)
	case effLoop:
		d := derivative(e.kids[0], a)
		if d == nil {
			return nil
		}
		return seqEffect(d, e)
	}
	return nil
}

// maxDivergeStates bounds the pair-state exploration of schedDiverge.
// ACI canonicalization keeps the derivative space finite, so real terms
// stay far below this; the bound is a backstop against pathological
// fixtures. On overflow the comparison conservatively reports equal
// (no finding) rather than a witness it cannot justify.
const maxDivergeStates = 50000

// schedDiverge compares the collective-schedule languages of a and b
// (projection applied internally). It returns ("", true) when the
// languages are equal, else a minimal human-readable witness: the
// shortest op prefix after which the path labeled aLabel can do
// something the path labeled bLabel cannot (or vice versa).
func schedDiverge(a, b *Effect, aLabel, bLabel string) (string, bool) {
	pa, pb := collProject(a), collProject(b)
	if pa.Equal(pb) {
		return "", true
	}
	type pairState struct {
		a, b *Effect
		path []string
	}
	seen := map[string]bool{}
	queue := []pairState{{pa, pb, nil}}
	visited := 0
	prefix := func(path []string) string {
		if len(path) == 0 {
			return "at the branch"
		}
		return "after " + strings.Join(path, "·")
	}
	opsOf := func(e *Effect) string {
		f := firsts(e)
		if len(f) == 0 {
			return "nothing"
		}
		return strings.Join(f, " or ")
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		k := s.a.key + "\x00" + s.b.key
		if seen[k] {
			continue
		}
		seen[k] = true
		if visited++; visited > maxDivergeStates {
			return "", true
		}
		na, nb := nullable(s.a), nullable(s.b)
		if na != nb {
			if na {
				return fmt.Sprintf("%s, the %s can finish its collectives while the %s must still run %s",
					prefix(s.path), aLabel, bLabel, opsOf(s.b)), false
			}
			return fmt.Sprintf("%s, the %s can finish its collectives while the %s must still run %s",
				prefix(s.path), bLabel, aLabel, opsOf(s.a)), false
		}
		ops := map[string]bool{}
		for _, op := range firsts(s.a) {
			ops[op] = true
		}
		for _, op := range firsts(s.b) {
			ops[op] = true
		}
		sorted := make([]string, 0, len(ops))
		for op := range ops {
			sorted = append(sorted, op)
		}
		sort.Strings(sorted)
		for _, op := range sorted {
			da, db := derivative(s.a, op), derivative(s.b, op)
			switch {
			case da != nil && db == nil:
				return fmt.Sprintf("%s, the %s can run %s where the %s cannot",
					prefix(s.path), aLabel, op, bLabel), false
			case da == nil && db != nil:
				return fmt.Sprintf("%s, the %s can run %s where the %s cannot",
					prefix(s.path), bLabel, op, aLabel), false
			default:
				path := make([]string, len(s.path)+1)
				copy(path, s.path)
				path[len(s.path)] = op
				queue = append(queue, pairState{da, db, path})
			}
		}
	}
	return "", true
}

// ---- per-function abstract interpretation ----

// effFlow is the abstract result of executing a statement region: the
// effect of falling through it, whether fall-through is possible at
// all, and the effects (from region entry) of every path that leaves
// the enclosing function inside the region (return/panic).
type effFlow struct {
	eff   *Effect
	falls bool
	exits []*Effect
}

func fallsThrough(eff *Effect) effFlow { return effFlow{eff: eff, falls: true} }

// effEval interprets one function (or function literal) body. A fresh
// evaluator must be used per body: deferred effects accumulate on it.
type effEval struct {
	p         *Package
	facts     *Facts
	g         *callGraph
	rt        bool // runtime-mode projection (see rtOpName)
	condDepth int
	deferred  []*Effect
}

func newEffEval(p *Package, facts *Facts) *effEval {
	var g *callGraph
	if facts != nil {
		g = facts.graph
	}
	return &effEval{p: p, facts: facts, g: g}
}

// funcBody computes the whole-function effect: the alternation of all
// exit paths and the fall-off-the-end path, followed by the deferred
// effects in LIFO order.
func (ev *effEval) funcBody(body *ast.BlockStmt) *Effect {
	ev.deferred = nil
	ev.condDepth = 0
	f := ev.evalStmts(body.List)
	paths := append([]*Effect{}, f.exits...)
	if f.falls {
		paths = append(paths, f.eff)
	}
	all := emptyEffect
	if len(paths) > 0 {
		all = choiceEffect(paths...)
	}
	parts := []*Effect{all}
	for i := len(ev.deferred) - 1; i >= 0; i-- {
		parts = append(parts, ev.deferred[i])
	}
	return seqEffect(parts...)
}

// evalStmts folds a statement list left to right. Statements after a
// non-falling statement are unreachable and ignored.
func (ev *effEval) evalStmts(list []ast.Stmt) effFlow {
	acc := emptyEffect
	var exits []*Effect
	for _, s := range list {
		f := ev.evalStmt(s)
		for _, x := range f.exits {
			exits = append(exits, seqEffect(acc, x))
		}
		if !f.falls {
			return effFlow{eff: emptyEffect, falls: false, exits: exits}
		}
		acc = seqEffect(acc, f.eff)
	}
	return effFlow{eff: acc, falls: true, exits: exits}
}

func (ev *effEval) evalStmt(s ast.Stmt) effFlow {
	switch n := s.(type) {
	case nil:
		return fallsThrough(emptyEffect)
	case *ast.BlockStmt:
		return ev.evalStmts(n.List)
	case *ast.LabeledStmt:
		return ev.evalStmt(n.Stmt)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				var args []*Effect
				for _, a := range call.Args {
					args = append(args, ev.evalExpr(a))
				}
				return effFlow{eff: emptyEffect, falls: false, exits: []*Effect{seqEffect(args...)}}
			}
		}
		return fallsThrough(ev.evalExpr(n.X))
	case *ast.ReturnStmt:
		var parts []*Effect
		for _, r := range n.Results {
			parts = append(parts, ev.evalExpr(r))
		}
		return effFlow{eff: emptyEffect, falls: false, exits: []*Effect{seqEffect(parts...)}}
	case *ast.BranchStmt:
		// break/continue/goto end this path within the function; the
		// enclosing Loop/Choice approximation absorbs the transfer.
		return fallsThrough(emptyEffect)
	case *ast.AssignStmt:
		var parts []*Effect
		for _, l := range n.Lhs {
			parts = append(parts, ev.evalExpr(l))
		}
		for _, r := range n.Rhs {
			parts = append(parts, ev.evalExpr(r))
		}
		return fallsThrough(seqEffect(parts...))
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return fallsThrough(emptyEffect)
		}
		var parts []*Effect
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					parts = append(parts, ev.evalExpr(v))
				}
			}
		}
		return fallsThrough(seqEffect(parts...))
	case *ast.IncDecStmt:
		return fallsThrough(ev.evalExpr(n.X))
	case *ast.SendStmt:
		return fallsThrough(seqEffect(ev.evalExpr(n.Chan), ev.evalExpr(n.Value)))
	case *ast.GoStmt:
		// The spawned body runs on another goroutine: only the argument
		// evaluation happens on this schedule.
		var parts []*Effect
		for _, a := range n.Call.Args {
			parts = append(parts, ev.evalExpr(a))
		}
		return fallsThrough(seqEffect(parts...))
	case *ast.DeferStmt:
		var parts []*Effect
		for _, a := range n.Call.Args {
			parts = append(parts, ev.evalExpr(a))
		}
		d := ev.callEffect(n.Call)
		if ev.condDepth > 0 {
			d = choiceEffect(d, emptyEffect)
		}
		ev.deferred = append(ev.deferred, d)
		return fallsThrough(seqEffect(parts...))
	case *ast.IfStmt:
		init := ev.evalStmt(n.Init)
		prefix := seqEffect(init.eff, ev.evalExpr(n.Cond))
		ev.condDepth++
		t := ev.evalStmts(n.Body.List)
		e := fallsThrough(emptyEffect)
		if n.Else != nil {
			e = ev.evalStmt(n.Else)
		}
		ev.condDepth--
		return ev.branch(prefix, []effFlow{t, e})
	case *ast.SwitchStmt:
		init := ev.evalStmt(n.Init)
		prefix := seqEffect(init.eff, ev.evalExpr(n.Tag))
		return ev.caseBranches(prefix, n.Body, true)
	case *ast.TypeSwitchStmt:
		init := ev.evalStmt(n.Init)
		assign := ev.evalStmt(n.Assign)
		return ev.caseBranches(seqEffect(init.eff, assign.eff), n.Body, true)
	case *ast.SelectStmt:
		return ev.caseBranches(emptyEffect, n.Body, false)
	case *ast.ForStmt:
		init := ev.evalStmt(n.Init)
		condE := ev.evalExpr(n.Cond)
		ev.condDepth++
		body := ev.evalStmts(n.Body.List)
		post := ev.evalStmt(n.Post)
		ev.condDepth--
		iter := seqEffect(condE, body.eff, post.eff)
		loop := loopEffect(iter)
		var exits []*Effect
		for _, x := range body.exits {
			exits = append(exits, seqEffect(init.eff, loop, condE, x))
		}
		return effFlow{eff: seqEffect(init.eff, loop, condE), falls: true, exits: exits}
	case *ast.RangeStmt:
		xEff := ev.evalExpr(n.X)
		ev.condDepth++
		body := ev.evalStmts(n.Body.List)
		ev.condDepth--
		loop := loopEffect(body.eff)
		var exits []*Effect
		for _, x := range body.exits {
			exits = append(exits, seqEffect(xEff, loop, x))
		}
		return effFlow{eff: seqEffect(xEff, loop), falls: true, exits: exits}
	}
	return fallsThrough(emptyEffect)
}

// branch combines the arm flows of a conditional: exits union, normal
// effect the alternation of the arms that fall through.
func (ev *effEval) branch(prefix *Effect, arms []effFlow) effFlow {
	var exits []*Effect
	var norms []*Effect
	for _, a := range arms {
		for _, x := range a.exits {
			exits = append(exits, seqEffect(prefix, x))
		}
		if a.falls {
			norms = append(norms, a.eff)
		}
	}
	if len(norms) == 0 {
		return effFlow{eff: emptyEffect, falls: false, exits: exits}
	}
	return effFlow{eff: seqEffect(prefix, choiceEffect(norms...)), falls: true, exits: exits}
}

// caseBranches evaluates switch/select bodies. implicitDefault adds an
// ε arm when no default clause exists (the whole statement may match
// nothing).
func (ev *effEval) caseBranches(prefix *Effect, body *ast.BlockStmt, implicitDefault bool) effFlow {
	var arms []effFlow
	hasDefault := false
	ev.condDepth++
	for _, stmt := range body.List {
		switch cc := stmt.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			var parts []*Effect
			for _, e := range cc.List {
				parts = append(parts, ev.evalExpr(e))
			}
			f := ev.evalStmts(cc.Body)
			f.eff = seqEffect(seqEffect(parts...), f.eff)
			arms = append(arms, f)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			comm := ev.evalStmt(cc.Comm)
			f := ev.evalStmts(cc.Body)
			f.eff = seqEffect(comm.eff, f.eff)
			arms = append(arms, f)
		}
	}
	ev.condDepth--
	if implicitDefault && !hasDefault {
		arms = append(arms, fallsThrough(emptyEffect))
	}
	if len(arms) == 0 {
		return fallsThrough(prefix)
	}
	return ev.branch(prefix, arms)
}

// evalExpr computes the effect of evaluating an expression, in
// evaluation order (arguments before the call they feed).
func (ev *effEval) evalExpr(e ast.Expr) *Effect {
	switch e := e.(type) {
	case nil:
		return emptyEffect
	case *ast.CallExpr:
		var parts []*Effect
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.SelectorExpr:
			parts = append(parts, ev.evalExpr(fun.X))
		case *ast.Ident, *ast.FuncLit:
			// no receiver sub-expression to evaluate
		default:
			parts = append(parts, ev.evalExpr(e.Fun))
		}
		for _, a := range e.Args {
			parts = append(parts, ev.evalExpr(a))
		}
		parts = append(parts, ev.callEffect(e))
		return seqEffect(parts...)
	case *ast.FuncLit:
		return emptyEffect // a definition communicates nothing
	case *ast.ParenExpr:
		return ev.evalExpr(e.X)
	case *ast.UnaryExpr:
		return ev.evalExpr(e.X)
	case *ast.StarExpr:
		return ev.evalExpr(e.X)
	case *ast.BinaryExpr:
		return seqEffect(ev.evalExpr(e.X), ev.evalExpr(e.Y))
	case *ast.SelectorExpr:
		return ev.evalExpr(e.X)
	case *ast.IndexExpr:
		return seqEffect(ev.evalExpr(e.X), ev.evalExpr(e.Index))
	case *ast.IndexListExpr:
		return ev.evalExpr(e.X)
	case *ast.SliceExpr:
		return seqEffect(ev.evalExpr(e.X), ev.evalExpr(e.Low), ev.evalExpr(e.High), ev.evalExpr(e.Max))
	case *ast.TypeAssertExpr:
		return ev.evalExpr(e.X)
	case *ast.CompositeLit:
		var parts []*Effect
		for _, el := range e.Elts {
			parts = append(parts, ev.evalExpr(el))
		}
		return seqEffect(parts...)
	case *ast.KeyValueExpr:
		return seqEffect(ev.evalExpr(e.Key), ev.evalExpr(e.Value))
	}
	return emptyEffect
}

// callEffect resolves the effect contributed by one call: a collective
// atom for pcu built-ins and doc-marked collectives, the callee's
// inferred effect for resolved in-module functions, a send/reader atom
// for buffer operations, ε otherwise. In runtime mode atoms carry the
// recorded op names, doc-marked collectives expand, and unresolvable
// dynamic calls widen to the wildcard window.
func (ev *effEval) callEffect(call *ast.CallExpr) *Effect {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return ev.sub().funcBody(lit.Body)
	}
	pass := &Pass{Package: ev.p}
	fn := calleeFunc(ev.p.Info, call)
	// The pcu run drivers execute their final function argument on the
	// spawned world's schedule; checked before the doc-mark test because
	// RunOpt's doc mentions the collective watchdog. Supervise reruns
	// the body on a shrunken world after every revocation, so a call to
	// it contributes the epoch shape (body·shrink)*·body.
	if name, ok := runDriver(fn); ok && len(call.Args) > 0 {
		body := ev.bodyArgEffect(call.Args[len(call.Args)-1])
		if name == "Supervise" {
			shrink := opEffect(rtOpShrink, true, call.Pos())
			return seqEffect(loopEffect(seqEffect(body, shrink)), body)
		}
		return body
	}
	if fn != nil && ev.facts != nil && ev.facts.directCollective(fn) {
		if !ev.rt {
			return opEffect(fn.Name(), true, call.Pos())
		}
		return rtCollectiveEffect(ev.g, fn, call.Pos())
	}
	if fn != nil && ev.g != nil {
		if n := ev.g.nodes[keyOfFunc(fn)]; n != nil {
			if eff := n.modeEffect(ev.rt); eff != nil {
				return eff
			}
		}
	}
	if ev.rt {
		// A call of a function value the analyzer cannot resolve —
		// through a variable, a struct field (parma's OnIter checkpoint
		// hook), or a returned closure — may run any schedule at
		// runtime, so it widens to the wildcard window. Interface
		// methods resolve to a *types.Func above and stay ε (caveat in
		// DESIGN.md §13).
		if fn == nil && isFuncValueCall(ev.p.Info, call) {
			return loopEffect(opEffect(rtOpWildcard, true, call.Pos()))
		}
		return emptyEffect
	}
	switch {
	case isPhaseBufferCall(pass, call), isBufferPack(pass, call):
		return opEffect("send", false, call.Pos())
	case isReaderDone(pass, call):
		return opEffect("reader.Done", false, call.Pos())
	}
	return emptyEffect
}

// sub derives a fresh evaluator for a nested body, inheriting the
// graph and mode (deferred effects must not leak across bodies).
func (ev *effEval) sub() *effEval {
	s := newEffEval(ev.p, ev.facts)
	s.g, s.rt = ev.g, ev.rt
	return s
}

// runDriver reports whether fn is one of the pcu run drivers whose
// final argument executes as the spawned world's schedule.
func runDriver(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), pcuPkg) {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	switch name := fn.Name(); name {
	case "Run", "RunOn", "RunOpt", "Supervise":
		return name, true
	}
	return "", false
}

// bodyArgEffect resolves the effect of a run driver's body argument: a
// function literal is evaluated in place, a named function contributes
// its inferred effect, and anything else is a dynamic value — the
// wildcard window in runtime mode, ε statically.
func (ev *effEval) bodyArgEffect(arg ast.Expr) *Effect {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return ev.sub().funcBody(a.Body)
	}
	if fn := exprFunc(ev.p.Info, ast.Unparen(arg)); fn != nil && ev.g != nil {
		if n := ev.g.nodes[keyOfFunc(fn)]; n != nil {
			if eff := n.modeEffect(ev.rt); eff != nil {
				return eff
			}
		}
	}
	if ev.rt {
		return loopEffect(opEffect(rtOpWildcard, true, arg.Pos()))
	}
	return emptyEffect
}

// exprFunc resolves an expression used as a function value to the
// declared *types.Func it names, or nil.
func exprFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// rtCollectiveEffect is the runtime-mode effect of a directCollective
// call: pcu builtins map to the op name beginOp records; doc-marked
// collectives expand to their inferred runtime body (the runtime logs
// what the body does, not the caller's name for it), falling back to
// the wildcard window when no body is available.
func rtCollectiveEffect(g *callGraph, fn *types.Func, pos token.Pos) *Effect {
	if fn.Pkg() != nil && pathHasSuffix(fn.Pkg().Path(), pcuPkg) {
		if name, ok := rtOpName[fn.Name()]; ok {
			return opEffect(name, true, pos)
		}
	}
	if g != nil {
		if n := g.nodes[keyOfFunc(fn)]; n != nil && n.effectRT != nil {
			return n.effectRT
		}
	}
	return loopEffect(opEffect(rtOpWildcard, true, pos))
}

// isFuncValueCall reports whether the call invokes a function *value* —
// a variable, field, or computed expression of function type — rather
// than a declared function, builtin, or type conversion.
func isFuncValueCall(info *types.Info, call *ast.CallExpr) bool {
	isSig := func(t types.Type) bool {
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Signature)
		return ok
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[fun].(*types.Var); ok {
			return isSig(v.Type())
		}
		return false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Kind() == types.FieldVal && isSig(sel.Type())
		}
		if v, ok := info.Uses[fun.Sel].(*types.Var); ok {
			return isSig(v.Type())
		}
		return false
	case *ast.FuncLit:
		return false // evaluated in place by callEffect
	default:
		// Call of a call result, an indexed element, etc.
		return isSig(info.TypeOf(fun))
	}
}

// isReaderDone reports a Done() call on a *pcu.Reader — the reader
// lifecycle atom.
func isReaderDone(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isReaderPtr(p.TypeOf(sel.X))
}

// ---- interprocedural effect inference over the callgraph ----

// inferEffects computes every function's effect term. SCCs of the
// callgraph are processed in reverse-topological order (Tarjan);
// acyclic functions are interpreted structurally with callee effects
// already resolved, cyclic SCCs are widened to
// Loop(Choice(atoms-appearing-in-the-cycle)).
func (g *callGraph) inferEffects(facts *Facts) {
	index := map[funcKey]int{}
	low := map[funcKey]int{}
	onStack := map[funcKey]bool{}
	var stack []funcKey
	next := 0

	var strongconnect func(k funcKey)
	strongconnect = func(k funcKey) {
		n := g.nodes[k]
		next++
		index[k] = next
		low[k] = next
		stack = append(stack, k)
		onStack[k] = true
		for _, cs := range n.calls {
			if _, ok := g.nodes[cs.key]; !ok {
				continue
			}
			if _, seen := index[cs.key]; !seen {
				strongconnect(cs.key)
				if low[cs.key] < low[k] {
					low[k] = low[cs.key]
				}
			} else if onStack[cs.key] && index[cs.key] < low[k] {
				low[k] = index[cs.key]
			}
		}
		if low[k] != index[k] {
			return
		}
		// k roots an SCC: pop it and resolve its effects. All SCCs it
		// calls into are already resolved (reverse-topological order).
		var comp []funcKey
		for {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[top] = false
			comp = append(comp, top)
			if top == k {
				break
			}
		}
		g.resolveEffects(facts, comp)
	}
	for _, k := range g.order {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
}

// resolveEffects assigns effect terms to one SCC.
func (g *callGraph) resolveEffects(facts *Facts, comp []funcKey) {
	if len(comp) == 1 {
		n := g.nodes[comp[0]]
		selfRec := false
		for _, cs := range n.calls {
			if cs.key == n.key {
				selfRec = true
				break
			}
		}
		if !selfRec {
			// facts.graph is not assigned until buildCallGraph returns, so
			// wire this graph into the evaluator directly. Each mode needs
			// a fresh evaluator: deferred effects accumulate per body.
			ev := newEffEval(n.pkg, facts)
			ev.g = g
			n.effect = ev.funcBody(n.decl.Body)
			rev := newEffEval(n.pkg, facts)
			rev.g, rev.rt = g, true
			n.effectRT = rev.funcBody(n.decl.Body)
			return
		}
	}
	// Cyclic SCC (mutual or self recursion): widen. Collect every atom
	// the cycle can perform — direct collectives, alphabets of
	// out-of-cycle callees, direct sends/reader events — and wrap them
	// in Loop(Choice(...)): some indeterminate repetition.
	member := map[funcKey]bool{}
	for _, k := range comp {
		member[k] = true
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i].less(comp[j]) })
	atomSet := map[string]*Effect{}
	rtSet := map[string]*Effect{}
	addTo := func(set map[string]*Effect, e *Effect) {
		if _, ok := set[e.key]; !ok {
			set[e.key] = e
		}
	}
	addAtom := func(e *Effect) { addTo(atomSet, e) }
	addRT := func(e *Effect) { addTo(rtSet, e) }
	for _, k := range comp {
		n := g.nodes[k]
		pass := &Pass{Package: n.pkg}
		ast.Inspect(n.decl.Body, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(n.pkg.Info, call)
			if _, ok := runDriver(fn); ok {
				// A run driver inside a widened cycle: the body argument
				// is dynamic here, so approximate it as an opaque atom
				// statically and the wildcard window at runtime.
				addAtom(opEffect(fn.Name(), true, call.Pos()))
				addRT(opEffect(rtOpWildcard, true, call.Pos()))
				return true
			}
			if fn != nil && facts.directCollective(fn) {
				addAtom(opEffect(fn.Name(), true, call.Pos()))
				for _, a := range alphabet(rtCollectiveEffect(g, fn, call.Pos())) {
					addRT(a)
				}
				return true
			}
			if fn != nil {
				if cn, ok := g.nodes[keyOfFunc(fn)]; ok && !member[cn.key] && cn.effect != nil {
					for _, a := range alphabet(cn.effect) {
						addAtom(a)
					}
					if cn.effectRT != nil {
						for _, a := range alphabet(cn.effectRT) {
							addRT(a)
						}
					}
					return true
				}
			}
			if fn == nil && isFuncValueCall(n.pkg.Info, call) {
				addRT(opEffect(rtOpWildcard, true, call.Pos()))
			}
			switch {
			case isPhaseBufferCall(pass, call), isBufferPack(pass, call):
				addAtom(opEffect("send", false, call.Pos()))
			case isReaderDone(pass, call):
				addAtom(opEffect("reader.Done", false, call.Pos()))
			}
			return true
		})
	}
	widen := func(set map[string]*Effect) *Effect {
		if len(set) == 0 {
			return emptyEffect
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]*Effect, len(keys))
		for i, k := range keys {
			kids[i] = set[k]
		}
		return loopEffect(choiceEffect(kids...))
	}
	eff, effRT := widen(atomSet), widen(rtSet)
	for _, k := range comp {
		g.nodes[k].effect = eff
		g.nodes[k].effectRT = effRT
		g.nodes[k].effWidened = true
	}
}

// ---- Facts query surface for effects ----

// EffectOf returns fn's inferred communication effect: a collective
// atom for direct collectives, the fixpoint term for in-module
// functions, nil for functions outside the loaded set.
func (f *Facts) EffectOf(fn *types.Func) *Effect {
	if fn == nil {
		return nil
	}
	if f.directCollective(fn) {
		return opEffect(fn.Name(), true, fn.Pos())
	}
	if n := f.graph.node(fn); n != nil {
		return n.effect
	}
	return nil
}

// EffectWidened reports whether fn's effect was widened because it sits
// on a recursive call cycle.
func (f *Facts) EffectWidened(fn *types.Func) bool {
	n := f.graph.node(fn)
	return n != nil && n.effWidened
}

// RuntimeEffectOf returns fn's communication effect projected onto the
// op names the PCU runtime records (see rtOpName): pcu builtins become
// their recorded op atoms, doc-marked collectives expand to their
// bodies, unresolvable dynamic calls widen to the wildcard window, and
// pcu.Supervise call sites contribute the epoch shape
// (body·shrink)*·body. nil for functions outside the loaded set.
func (f *Facts) RuntimeEffectOf(fn *types.Func) *Effect {
	if fn == nil {
		return nil
	}
	if fn.Pkg() != nil && pathHasSuffix(fn.Pkg().Path(), pcuPkg) {
		if name, ok := rtOpName[fn.Name()]; ok && f.directCollective(fn) {
			return opEffect(name, true, fn.Pos())
		}
	}
	if n := f.graph.node(fn); n != nil {
		return n.effectRT
	}
	if f.directCollective(fn) {
		return loopEffect(opEffect(rtOpWildcard, true, fn.Pos()))
	}
	return nil
}
