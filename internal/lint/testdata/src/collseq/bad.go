package collseq

import "github.com/fastmath/pumi-go/internal/pcu"

func badGuardedBarrier(c *pcu.Ctx) {
	if c.Rank() == 0 { // want `rank-dependent branch yields divergent collective schedules: at the branch, the false path can finish its collectives while the true path must still run Barrier`
		c.Barrier()
	}
}

func badMidScheduleDivergence(c *pcu.Ctx) {
	// Both arms start with the same collective, then diverge: the
	// witness names the shortest common prefix before the split.
	if c.Rank() == 0 { // want `rank-dependent branch yields divergent collective schedules: after Barrier, the false path can finish its collectives while the true path must still run SumInt64`
		c.Barrier()
		_ = pcu.SumInt64(c, 1)
	} else {
		c.Barrier()
	}
}

func badSwitchArms(c *pcu.Ctx) {
	switch c.Rank() { // want `rank-dependent switch yields divergent collective schedules: at the branch, the default path can finish its collectives while the case-0 path must still run Barrier`
	case 0:
		c.Barrier()
	default:
	}
}

func badEarlyReturn(c *pcu.Ctx) {
	// The early-returning arm skips the Barrier the other ranks run.
	if c.Rank() == 0 { // want `rank-dependent branch yields divergent collective schedules: at the branch, the true path can finish its collectives while the false path must still run Barrier`
		return
	}
	c.Barrier()
}

func badRankLoop(c *pcu.Ctx) {
	for i := 0; i < c.Rank(); i++ { // want `loop iteration count is rank-dependent but the body runs collective Barrier; ranks iterating fewer times miss the collective and deadlock`
		c.Barrier()
	}
}

func badTaintedGuard(c *pcu.Ctx) {
	// Not a lexical rank guard: the condition depends on rank through
	// arithmetic dataflow.
	double := c.Rank() * 2
	if double > 3 { // want `rank-dependent branch yields divergent collective schedules: at the branch, the false path can finish its collectives while the true path must still run Barrier`
		c.Barrier()
	}
}

func badHelperSchedules(c *pcu.Ctx) {
	// Helpers are transparent: seqBoth's schedule is Barrier·SumInt64,
	// seqOne's is Barrier, so the arms diverge after Barrier.
	if c.Rank() == 0 { // want `rank-dependent branch yields divergent collective schedules: after Barrier, the true path can finish its collectives while the false path must still run SumInt64`
		seqOne(c)
	} else {
		seqBoth(c)
	}
}

func seqOne(c *pcu.Ctx) { c.Barrier() }

func seqBoth(c *pcu.Ctx) {
	c.Barrier()
	_ = pcu.SumInt64(c, 2)
}
