package collseq

import "github.com/fastmath/pumi-go/internal/pcu"

func okBothArmsEqual(c *pcu.Ctx) {
	// Root-vs-rest with equal schedules: Bcast on both arms.
	if c.Rank() == 0 {
		_ = pcu.Bcast(c, 0, 42)
	} else {
		_ = pcu.Bcast(c, 0, 0)
	}
}

func okEarlyReturnEqual(c *pcu.Ctx) int {
	// Early-return spelling: the guarded arm and the tail run the same
	// collective sequence, so composing each arm with the continuation
	// proves them equal.
	if c.Rank() == 0 {
		return pcu.Bcast(c, 0, 42)
	}
	return pcu.Bcast(c, 0, 0)
}

func okGuardedPacking(c *pcu.Ctx) {
	// Rank-divergent packing before a uniform Exchange is the canonical
	// sparse pattern; sends are erased from the collective schedule.
	if c.Rank() == 0 {
		c.To(1).Int64(7)
	}
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int64()
		}
	}
}

func okRootWork(c *pcu.Ctx) {
	// Rank-guarded local work, then a uniform barrier.
	if c.Rank() == 0 {
		println("root bookkeeping")
	}
	c.Barrier()
}

func okRankLoopNoCollective(c *pcu.Ctx) int {
	// Rank-dependent trip count is fine while the body stays local.
	sum := 0
	for i := 0; i < c.Rank(); i++ {
		sum += i
	}
	return sum
}

func okEqualViaDifferentHelpers(c *pcu.Ctx) {
	// Different helpers, same schedule language: both arms are Barrier.
	if c.Rank() == 0 {
		helperLeft(c)
	} else {
		helperRight(c)
	}
}

func helperLeft(c *pcu.Ctx)  { c.Barrier() }
func helperRight(c *pcu.Ctx) { c.Barrier() }

func okLiteralDefinition(c *pcu.Ctx) {
	// Defining a collective closure under a guard communicates nothing;
	// both arms are ε and the call site afterwards is uniform.
	var f func()
	if c.Rank() == 0 {
		f = func() { c.Barrier() }
	} else {
		f = func() { c.Barrier() }
	}
	f()
}

func okNestedUniform(c *pcu.Ctx) {
	// A rank-dependent switch whose arms all run the same sequence.
	switch c.Rank() % 2 {
	case 0:
		c.Barrier()
		_ = pcu.SumInt64(c, 1)
	default:
		c.Barrier()
		_ = pcu.SumInt64(c, 9)
	}
}
