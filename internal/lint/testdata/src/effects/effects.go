// Package effects is a fixture for the effect-inference debug surface
// (`pumi-vet -effects`) and the runtime-mode inference behind
// -emit-automata: run drivers, supervised epoch loops, dynamic calls
// and the agree collective. It deliberately triggers no analyzer
// diagnostics.
package effects

import "github.com/fastmath/pumi-go/internal/pcu"

// epochBody is one epoch of work: a barrier then an exchange.
func epochBody(c *pcu.Ctx) error {
	c.Barrier()
	c.Exchange()
	return nil
}

// runWrapped drives epochBody through the plain runner; its schedule is
// exactly the body's.
func runWrapped() error {
	return pcu.Run(2, epochBody)
}

// supervised reruns epochBody under the supervisor: every revoked epoch
// ends in a world-shrink boundary before the body restarts, so the
// runtime schedule is (body·shrink)*·body.
func supervised() error {
	_, err := pcu.Supervise(4, pcu.Options{}, nil, func(c *pcu.Ctx, _ pcu.Epoch) error {
		return epochBody(c)
	})
	return err
}

// dynamic invokes a function value: statically silent, but at runtime
// anything may run inside, so runtime inference widens the call to the
// wildcard loop before the trailing barrier.
func dynamic(c *pcu.Ctx, f func(*pcu.Ctx)) {
	f(c)
	c.Barrier()
}

// hooks carries a callback the way parma's configuration does.
type hooks struct {
	OnIter func(*pcu.Ctx)
}

// fieldCall invokes a callback stored in a struct field — also a
// dynamic call in runtime mode.
func fieldCall(c *pcu.Ctx, h hooks) {
	h.OnIter(c)
}

// agreeing votes on world health: the agree collective records its own
// op name distinct from allreduce.
func agreeing(c *pcu.Ctx) bool {
	ok, _ := pcu.Agree(c, true)
	return ok
}
