package ctxescape

import "github.com/fastmath/pumi-go/internal/pcu"

// Confined use: aliasing within the same goroutine, structs on the
// stack/heap of the owning goroutine, and goroutines that do not touch
// the Ctx are all fine.

type holder struct{ c *pcu.Ctx }

func okAlias(c *pcu.Ctx) {
	d := c
	_ = d.Rank()
	h := holder{c: c}
	_ = h.c.Size()
}

func okGoroutine(c *pcu.Ctx, done chan int) {
	n := c.Size()
	go func() {
		done <- n // captured the value, not the Ctx
	}()
}

func useLocally(c *pcu.Ctx) int { return c.Rank() }

func okHelperCall(c *pcu.Ctx) {
	// Passing a Ctx to a helper that stays on this goroutine is the
	// normal calling convention, not a leak.
	_ = useLocally(c)
}

func okNoCaptureLiteral(c *pcu.Ctx, done chan int) {
	// An async parameter is only a problem when the literal captures a
	// Ctx; capturing plain values is fine.
	n := c.Size()
	runLater(func() { done <- n })
}
