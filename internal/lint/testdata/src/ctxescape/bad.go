package ctxescape

import "github.com/fastmath/pumi-go/internal/pcu"

var leaked *pcu.Ctx

func worker(c *pcu.Ctx) { _ = c.Rank() }

func badCapture(c *pcu.Ctx) {
	go func() {
		c.Barrier() // want `captured by goroutine`
	}()
}

func badArg(c *pcu.Ctx) {
	go worker(c) // want `passed to a goroutine`
}

func badGlobal(c *pcu.Ctx) {
	leaked = c // want `package-level state`
}

func badChannel(c *pcu.Ctx, ch chan *pcu.Ctx) {
	ch <- c // want `sent on a channel`
}
