package ctxescape

import "github.com/fastmath/pumi-go/internal/pcu"

var leaked *pcu.Ctx

func worker(c *pcu.Ctx) { _ = c.Rank() }

func badCapture(c *pcu.Ctx) {
	go func() {
		c.Barrier() // want `captured by goroutine`
	}()
}

func badArg(c *pcu.Ctx) {
	go worker(c) // want `passed to a goroutine`
}

func badGlobal(c *pcu.Ctx) {
	leaked = c // want `package-level state`
}

func badChannel(c *pcu.Ctx, ch chan *pcu.Ctx) {
	ch <- c // want `sent on a channel`
}

// Interprocedural leaks: a helper that hands its Ctx parameter to
// another goroutine leaks every Ctx passed to it, however many calls
// deep the spawn hides.
func spawnHelper(c *pcu.Ctx, ch chan int) {
	go worker(c) // want `passed to a goroutine`
	ch <- 1
}

func forward(c *pcu.Ctx, ch chan int) {
	spawnHelper(c, ch) // want `passed to spawnHelper, which passes it to a goroutine`
}

func badLeakViaHelper(c *pcu.Ctx, ch chan int) {
	forward(c, ch) // want `passed to forward, which passes it to spawnHelper, which passes it to a goroutine`
}

// Interprocedural captures: a function-typed parameter the callee runs
// on another goroutine makes a Ctx-capturing literal argument a leak.
func runLater(f func()) { go f() }

func runIndirect(f func()) { runLater(f) }

func badCtxCapturePassed(c *pcu.Ctx) {
	runLater(func() {
		c.Barrier() // want `captured by a function literal passed to runLater, which starts it on a goroutine`
	})
}

func badCtxCaptureDeep(c *pcu.Ctx) {
	runIndirect(func() {
		_ = c.Rank() // want `captured by a function literal passed to runIndirect, which passes it to runLater, which starts it on a goroutine`
	})
}
