package maporder

import "github.com/fastmath/pumi-go/internal/pcu"

// Map range order is randomized per run; anything it feeds into
// communication — phase buffers, packs, exchanges, collectives,
// directly or through helpers — diverges between runs and ranks.

func badDirectTo(c *pcu.Ctx, parts map[int]int) {
	for q, v := range parts { // want `map iteration order reaches communication \(opens a phase send buffer\)`
		b := c.To(q)
		b.Int32(int32(v))
	}
}

func badPackOnly(c *pcu.Ctx, vals map[int]int32) {
	b := c.To(1)
	for _, v := range vals { // want `map iteration order reaches communication \(packs a communication buffer\)`
		b.Int32(v)
	}
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int32()
		}
	}
}

func badCollectiveInRange(c *pcu.Ctx, parts map[int]int) {
	for range parts { // want `map iteration order reaches communication \(calls collective Barrier\)`
		c.Barrier()
	}
}

func sendOne(c *pcu.Ctx, q int, v int32) {
	c.To(q).Int32(v)
}

func badViaHelper(c *pcu.Ctx, parts map[int]int32) {
	for q, v := range parts { // want `map iteration order reaches communication \(calls sendOne, which packs a communication buffer\)`
		sendOne(c, q, v)
	}
}

func badInClosure(c *pcu.Ctx, parts map[int]int32) {
	for q, v := range parts { // want `map iteration order reaches communication`
		func() { sendOne(c, q, v) }()
	}
}
