package maporder

import (
	"sort"

	"github.com/fastmath/pumi-go/internal/pcu"
)

func okSortedSend(c *pcu.Ctx, parts map[int]int32) {
	// The repo idiom: collect keys, sort, range the slice. The map
	// range only gathers local state; communication runs in sorted
	// order.
	qs := make([]int, 0, len(parts))
	for q := range parts {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		c.To(q).Int32(parts[q])
	}
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int32()
		}
	}
}

func okLocalOnly(parts map[int]int) int {
	// Pure local aggregation; order-independent.
	sum := 0
	for _, v := range parts {
		sum += v
	}
	return sum
}

func okCollectiveAfterRange(c *pcu.Ctx, parts map[int]int) {
	n := int64(0)
	for _, v := range parts {
		n += int64(v)
	}
	_ = pcu.SumInt64(c, n)
}

func okCompiledPlan(c *pcu.Ctx, copies map[int32]int32) {
	// The boundary-plan compile idiom: the map range only accumulates
	// (peer, entity) pairs into local state; the pairs are sorted into
	// a deterministic schedule and only the slice range communicates.
	type pair struct{ peer, ent int32 }
	pairs := make([]pair, 0, len(copies))
	for q, e := range copies {
		pairs = append(pairs, pair{q, e})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].peer != pairs[j].peer {
			return pairs[i].peer < pairs[j].peer
		}
		return pairs[i].ent < pairs[j].ent
	})
	for _, pr := range pairs {
		c.To(int(pr.peer)).Int32(pr.ent)
	}
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int32()
		}
	}
}
