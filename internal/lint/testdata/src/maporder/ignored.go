package maporder

import "github.com/fastmath/pumi-go/internal/pcu"

func ignoredMapSend(c *pcu.Ctx, parts map[int]int32) {
	//pumi-vet:ignore maporder
	for q, v := range parts {
		c.To(q).Int32(v)
	}
}

func ignoredWrongAnalyzerStillFires(c *pcu.Ctx, parts map[int]int32) {
	//pumi-vet:ignore phaseorder
	for q, v := range parts { // want `map iteration order reaches communication`
		c.To(q).Int32(v)
	}
}
