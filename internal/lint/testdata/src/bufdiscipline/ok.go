package bufdiscipline

import "github.com/fastmath/pumi-go/internal/pcu"

func okTwoPhases(c *pcu.Ctx, peer int) {
	// A fresh To per phase is the contract.
	b := c.To(peer)
	b.Int64(1)
	c.Exchange()
	b2 := c.To(peer)
	b2.Int64(2)
	c.Exchange()
}

func okLoopPhases(c *pcu.Ctx, peer int) {
	// Buffer created and written before each phase's Exchange.
	for i := 0; i < 3; i++ {
		b := c.To(peer)
		b.Int32(int32(i))
		c.Exchange()
	}
}

func okEmptyLoop(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int64()
		}
	}
}

func okDone(payload []byte) int32 {
	r := pcu.NewReader(payload)
	v := r.Int32()
	r.Done()
	return v
}

func okRemaining(payload []byte) []byte {
	r := pcu.NewReader(payload)
	_ = r.Byte()
	n := r.Remaining()
	_ = n
	return nil
}

func okParamReader(r *pcu.Reader) float64 {
	// Readers handed in as parameters may be partially decoded; the
	// caller owns the exhaustion check.
	return r.Float64()
}
