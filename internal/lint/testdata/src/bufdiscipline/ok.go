package bufdiscipline

import (
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/trace"
)

func okTwoPhases(c *pcu.Ctx, peer int) {
	// A fresh To per phase is the contract.
	b := c.To(peer)
	b.Int64(1)
	c.Exchange()
	b2 := c.To(peer)
	b2.Int64(2)
	c.Exchange()
}

func okLoopPhases(c *pcu.Ctx, peer int) {
	// Buffer created and written before each phase's Exchange.
	for i := 0; i < 3; i++ {
		b := c.To(peer)
		b.Int32(int32(i))
		c.Exchange()
	}
}

func okEmptyLoop(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int64()
		}
	}
}

func okDone(payload []byte) int32 {
	r := pcu.NewReader(payload)
	v := r.Int32()
	r.Done()
	return v
}

func okRemaining(payload []byte) []byte {
	r := pcu.NewReader(payload)
	_ = r.Byte()
	n := r.Remaining()
	_ = n
	return nil
}

func okParamReader(r *pcu.Reader) float64 {
	// Readers handed in as parameters may be partially decoded; the
	// caller owns the exhaustion check.
	return r.Float64()
}

func okAliasBeforeDone(c *pcu.Ctx) int {
	total := 0
	for _, m := range c.Exchange() {
		v := m.Data.BytesNoCopy()
		total += len(v)
		m.Data.Done()
	}
	return total
}

func okCopiedPastDone(c *pcu.Ctx) [][]byte {
	var keep [][]byte
	for _, m := range c.Exchange() {
		v := m.Data.Bytes() // Bytes copies; the slice survives Done
		m.Data.Done()
		keep = append(keep, v)
	}
	return keep
}

func okStandaloneAlias(payload []byte) byte {
	// NewReader readers are not pooled: Done only asserts exhaustion,
	// so aliased slices stay valid.
	r := pcu.NewReader(payload)
	v := r.BytesNoCopy()
	r.Done()
	return v[0]
}

func okBulkPhase(c *pcu.Ctx, peer int, vals []int64) {
	b := c.To(peer)
	b.Int64s(vals)
	for _, m := range c.Exchange() {
		got := m.Data.AppendInt64s(nil)
		_ = got
		m.Data.Done()
	}
}

func okAttachCopied(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		v := m.Data.Bytes() // Bytes copies; the ring may keep it forever
		c.Trace().Attach("payload", v)
		m.Data.Done()
	}
}

func okAttachStandalone(payload []byte, tr *trace.Recorder) {
	// NewReader readers are not pooled, so an uncopied slice outlives
	// Done and may be attached.
	r := pcu.NewReader(payload)
	v := r.BytesNoCopy()
	tr.Attach("payload", v)
	r.Done()
}

func okPlannedFraming(c *pcu.Ctx, peers []int, payload *pcu.Buffer, sub *pcu.Reader) {
	// The compiled-plan wire idiom: each record is staged in a reusable
	// scratch buffer and framed length-prefixed with Bytes; the receiver
	// slices each record out with BytesNoCopy into a reusable sub-reader
	// and finishes the message with Done. The scratch buffer and
	// sub-reader are long-lived parameters, not phase buffers.
	for _, q := range peers {
		b := c.To(q)
		b.Int32(int32(q))
		payload.Reset()
		payload.Float64(3)
		b.Bytes(payload.Raw())
	}
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			sub.Reset(m.Data.BytesNoCopy())
			_ = sub.Float64()
		}
		m.Data.Done()
	}
}

func okResetStandalone(vals []int32) *pcu.Buffer {
	// Reset is legal on standalone buffers never handed to a phase.
	var b pcu.Buffer
	b.Int32s(vals)
	b.Reset()
	b.Int32s(vals)
	return &b
}
