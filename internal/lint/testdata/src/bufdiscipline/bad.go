package bufdiscipline

import "github.com/fastmath/pumi-go/internal/pcu"

func badStaleBuffer(c *pcu.Ctx, peer int) {
	b := c.To(peer)
	b.Int64(1)
	c.Exchange()
	b.Int64(2) // want `written after Exchange`
}

func badStaleInLoop(c *pcu.Ctx, peer int) {
	b := c.To(peer)
	for i := 0; i < 3; i++ {
		c.Exchange()
		b.Int32(int32(i)) // want `written after Exchange`
	}
}

func badUncheckedReader(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		_ = m.Data.Int64() // want `never checked for exhaustion`
	}
}

func badUncheckedAlias(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		r := m.Data
		_ = r.Float64() // want `never checked for exhaustion`
	}
}

func badUncheckedNewReader(payload []byte) {
	r := pcu.NewReader(payload)
	_ = r.Int32() // want `never checked for exhaustion`
}

func badUncheckedBulk(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		_ = m.Data.Int64s() // want `never checked for exhaustion`
	}
}

func badAliasPastDone(c *pcu.Ctx) byte {
	var last byte
	for _, m := range c.Exchange() {
		v := m.Data.BytesVal()
		m.Data.Done()
		last = v[0] // want `recycled by Done`
	}
	return last
}

func badAliasEscape(c *pcu.Ctx) [][]byte {
	var keep [][]byte
	for _, m := range c.Exchange() {
		v := m.Data.BytesNoCopy()
		m.Data.Done()
		keep = append(keep, v) // want `recycled by Done`
	}
	return keep
}

func badAttachAliasVar(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		v := m.Data.BytesVal()
		c.Trace().Attach("payload", v) // want `retained by the trace ring`
		m.Data.Done()
	}
}

func badAttachDirect(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		c.Trace().Attach("payload", m.Data.BytesNoCopy()) // want `retained by the trace ring`
		m.Data.Done()
	}
}

func badPlannedNoFinalize(c *pcu.Ctx, sub *pcu.Reader, n int) {
	// A plan-driven receiver knows its record count up front, but the
	// pooled message must still be finished: without Done (or an Empty
	// loop) a sender/plan mismatch leaves trailing bytes undetected and
	// the backing array is never recycled.
	for _, m := range c.Exchange() {
		for i := 0; i < n; i++ {
			sub.Reset(m.Data.BytesNoCopy()) // want `never checked for exhaustion`
		}
	}
}

func badResetDelivered(c *pcu.Ctx, peer int) {
	b := c.To(peer)
	b.Int64s([]int64{1, 2})
	c.Exchange()
	b.Reset() // want `written after Exchange`
}
