package bufdiscipline

import "github.com/fastmath/pumi-go/internal/pcu"

func badStaleBuffer(c *pcu.Ctx, peer int) {
	b := c.To(peer)
	b.Int64(1)
	c.Exchange()
	b.Int64(2) // want `written after Exchange`
}

func badStaleInLoop(c *pcu.Ctx, peer int) {
	b := c.To(peer)
	for i := 0; i < 3; i++ {
		c.Exchange()
		b.Int32(int32(i)) // want `written after Exchange`
	}
}

func badUncheckedReader(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		_ = m.Data.Int64() // want `never checked for exhaustion`
	}
}

func badUncheckedAlias(c *pcu.Ctx) {
	for _, m := range c.Exchange() {
		r := m.Data
		_ = r.Float64() // want `never checked for exhaustion`
	}
}

func badUncheckedNewReader(payload []byte) {
	r := pcu.NewReader(payload)
	_ = r.Int32() // want `never checked for exhaustion`
}
