package phaseorder

func ignoredNeverExchanged() {
	//pumi-vet:ignore phaseorder
	ph := beginPhase()
	ph.to(0).Int32(1)
}

func ignoredWrongAnalyzerStillFires() {
	//pumi-vet:ignore maporder
	ph := beginPhase() // want `packed sends but never ran exchange`
	ph.to(0).Int32(1)
}
