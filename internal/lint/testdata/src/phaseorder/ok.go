package phaseorder

func okSinglePhase() {
	ph := beginPhase()
	ph.to(0).Int32(1)
	ph.to(1).Int32(2)
	_ = ph.exchange()
}

func okTwoPhases() {
	// Reusing the variable for a second round is fine once the first
	// exchanged.
	ph := beginPhase()
	ph.to(0).Int32(1)
	_ = ph.exchange()
	ph = beginPhase()
	ph.to(1).Int32(2)
	_ = ph.exchange()
}

func okPackInLiteral() {
	ph := beginPhase()
	func() {
		ph.to(0).Int32(1)
	}()
	_ = ph.exchange()
}

func runPhase(ph *phase) { _ = ph.exchange() }

func okEscaped() {
	// The phase escapes to a helper, which may run the exchange; the
	// lexical missed-exchange check stands down.
	ph := beginPhase()
	ph.to(0).Int32(1)
	runPhase(ph)
}

func okEmptyPhase() {
	// A phase with no sends packed still exchanges (the exchange is
	// collective), but packing nothing is not a finding by itself.
	ph := beginPhase()
	_ = ph.exchange()
}
