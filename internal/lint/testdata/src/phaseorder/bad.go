package phaseorder

// The fixture mirrors the partition package's phased-exchange protocol
// shape: beginPhase gives a phase object, to() opens per-destination
// send buffers, exchange() delivers them, exactly once, after all
// packing.

type buf struct{ n int }

func (b *buf) Int32(v int32) { b.n++ }

type phase struct{ bufs []*buf }

func beginPhase() *phase { return &phase{} }

func (p *phase) to(q int) *buf {
	b := &buf{}
	p.bufs = append(p.bufs, b)
	return b
}

func (p *phase) exchange() []int { return make([]int, len(p.bufs)) }

func badPackAfterExchange() {
	ph := beginPhase()
	ph.to(0).Int32(1)
	_ = ph.exchange()
	ph.to(1).Int32(2) // want `send buffer opened after the phase's exchange`
}

func badDoubleExchange() {
	ph := beginPhase()
	ph.to(0).Int32(1)
	_ = ph.exchange()
	_ = ph.exchange() // want `phase exchanged twice`
}

func badNeverExchanged() {
	ph := beginPhase() // want `packed sends but never ran exchange`
	ph.to(0).Int32(1)
}

func badRestartPending() {
	ph := beginPhase()
	ph.to(0).Int32(1)
	ph = beginPhase() // want `packed sends but never ran exchange`
	ph.to(1).Int32(2)
	_ = ph.exchange()
}
