// Package recurse exercises the interprocedural fixpoint and the effect
// engine's widening on recursive call cycles. Nothing here is a
// violation: every rank runs the same (recursively generated) schedule,
// so the whole package must stay diagnostic-free; summary tests assert
// the witness chains terminate and the effects are widened Loop terms.
package recurse

import "github.com/fastmath/pumi-go/internal/pcu"

// countdown is self-recursive: one barrier per level.
func countdown(c *pcu.Ctx, d int) {
	if d <= 0 {
		return
	}
	c.Barrier()
	countdown(c, d-1)
}

// pingA and pingB are mutually recursive; the cycle's only
// communication op is the reduction in pingA.
func pingA(c *pcu.Ctx, d int) {
	if d <= 0 {
		return
	}
	_ = pcu.SumInt64(c, int64(d))
	pingB(c, d-1)
}

func pingB(c *pcu.Ctx, d int) {
	if d <= 0 {
		return
	}
	pingA(c, d-1)
}

// spiral recurses while also packing sends, so its widened alphabet
// holds both an Exchange and a send atom.
func spiral(c *pcu.Ctx, d int) {
	if d <= 0 {
		return
	}
	c.To(0).Int64(int64(d))
	for range c.Exchange() {
	}
	spiral(c, d-1)
}

// drive runs the recursive helpers uniformly on every rank.
func drive(c *pcu.Ctx, d int) {
	countdown(c, d)
	pingA(c, d)
	spiral(c, d)
}
