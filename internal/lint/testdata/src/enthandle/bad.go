package enthandle

import "github.com/fastmath/pumi-go/internal/mesh"

func badCompare(m *mesh.Mesh, e mesh.Ent) bool {
	for _, rc := range m.Remotes(e) {
		if rc.Ent == e { // want `remote-copy handle compared`
			return true
		}
	}
	return false
}

func badCompareReversed(m *mesh.Mesh, e mesh.Ent) bool {
	rcs := m.Remotes(e)
	if len(rcs) > 0 && e != rcs[0].Ent { // want `remote-copy handle compared`
		return true
	}
	return false
}
