package enthandle

import "github.com/fastmath/pumi-go/internal/mesh"

func okLocalCompare(a, b mesh.Ent) bool {
	return a == b // both handles live on this part
}

func okNilSentinel(rc mesh.RemoteCopyRef) bool {
	return rc.Ent != mesh.NilEnt // validity check, exempt
}

func okPartCompare(m *mesh.Mesh, e mesh.Ent) bool {
	for _, rc := range m.Remotes(e) {
		if rc.Part == m.Part() { // part ids are global, comparable
			return true
		}
	}
	return false
}

func okResolve(m *mesh.Mesh, e mesh.Ent, peer int32, h mesh.Ent) bool {
	// The sanctioned pattern: resolve through RemoteCopy, compare the
	// resulting same-part handles.
	mine, ok := m.RemoteCopy(e, peer)
	return ok && mine == h
}
