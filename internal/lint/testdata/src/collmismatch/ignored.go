package collmismatch

import "github.com/fastmath/pumi-go/internal/pcu"

// //pumi-vet:ignore directives: deliberate invariant violations (e.g.
// deadlock-diagnosis tests) suppress the matching analyzer on their own
// line or the line below; a directive naming a different analyzer does
// not suppress, and neither does one two lines away.

func ignoredTrailing(c *pcu.Ctx) {
	if c.Rank() == 0 {
		c.Barrier() //pumi-vet:ignore collmismatch
	}
}

func ignoredLineAbove(c *pcu.Ctx) {
	if c.Rank() == 0 {
		//pumi-vet:ignore collmismatch
		_ = pcu.SumInt64(c, 1)
	}
}

func ignoredAll(c *pcu.Ctx) {
	if c.Rank() == 0 {
		c.Barrier() //pumi-vet:ignore all
	}
}

func wrongAnalyzerStillFires(c *pcu.Ctx) {
	if c.Rank() == 0 {
		c.Barrier() //pumi-vet:ignore ctxescape // want `collective Barrier`
	}
}

func tooFarAwayStillFires(c *pcu.Ctx) {
	//pumi-vet:ignore collmismatch
	if c.Rank() == 0 {
		c.Barrier() // want `collective Barrier`
	}
}
