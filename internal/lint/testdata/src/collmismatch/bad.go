package collmismatch

import "github.com/fastmath/pumi-go/internal/pcu"

func badBarrier(c *pcu.Ctx) {
	if c.Rank() == 0 {
		c.Barrier() // want `collective Barrier called under a rank-dependent branch`
	}
}

func badRankVar(c *pcu.Ctx) {
	r := c.Rank()
	if r > 0 {
		pcu.SumInt64(c, 1) // want `collective SumInt64`
	}
}

func badSwitch(c *pcu.Ctx) {
	switch c.Rank() {
	case 0:
		c.Exchange() // want `collective Exchange`
	default:
	}
}

// gatherAll reduces the stats over all ranks (collective).
func gatherAll(c *pcu.Ctx) int64 { return pcu.SumInt64(c, 1) }

func badDocMarked(c *pcu.Ctx) {
	if c.Rank() == 1 {
		gatherAll(c) // want `collective gatherAll`
	}
}

func badElse(c *pcu.Ctx) {
	if c.Rank() != 0 {
		_ = c.Size()
	} else {
		c.Barrier() // want `collective Barrier`
	}
}

// helperDeep's barrier hides two calls deep behind plain helpers; the
// interprocedural summaries surface it at the guarded call site with
// the witness chain down to the operation. (The helpers are carefully
// left without the doc marker word, so only the callgraph sees them.)

func helperDeep(c *pcu.Ctx) { c.Barrier() }

func helperMid(c *pcu.Ctx) { helperDeep(c) }

func badHiddenCollective(c *pcu.Ctx) {
	if c.Rank() == 0 {
		helperMid(c) // want `collective reached through helperMid -> helperDeep -> Ctx\.Barrier under a rank-dependent branch`
	}
}
