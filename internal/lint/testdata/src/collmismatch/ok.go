package collmismatch

import "github.com/fastmath/pumi-go/internal/pcu"

func okUnguarded(c *pcu.Ctx) {
	c.Barrier()
	_ = pcu.SumInt64(c, 1)
}

func okRootWork(c *pcu.Ctx) {
	// Rank-guarded non-collective work is the normal root pattern.
	if c.Rank() == 0 {
		println("root bookkeeping")
	}
	c.Barrier()
}

func okBothBranches(c *pcu.Ctx) {
	// Both branches reach a collective: root-vs-rest, exempt.
	if c.Rank() == 0 {
		_ = pcu.Bcast(c, 0, 42)
	} else {
		_ = pcu.Bcast(c, 0, 0)
	}
}

func okLiteralContext(c *pcu.Ctx) {
	// A function literal is a separate execution context; defining it
	// under a guard is not calling a collective under the guard.
	var f func()
	if c.Rank() == 0 {
		f = func() { c.Barrier() }
	} else {
		f = func() { c.Barrier() }
	}
	f()
}

func okEarlyReturn(c *pcu.Ctx) int {
	// Early-return spelling of the root-vs-rest pattern: the guarded
	// branch and the tail both reach a collective.
	if c.Rank() == 0 {
		return pcu.Bcast(c, 0, 42)
	}
	return pcu.Bcast(c, 0, 0)
}

func okGuardedPacking(c *pcu.Ctx) {
	// Rank-dependent packing before a uniform Exchange is the
	// canonical sparse-communication pattern.
	if c.Rank() == 0 {
		c.To(1).Int64(7)
	}
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int64()
		}
	}
}

func okBothBranchesViaHelpers(c *pcu.Ctx) {
	// The root-vs-rest exemption sees through helpers too: both
	// branches transitively reach a collective.
	if c.Rank() == 0 {
		helperMid(c)
	} else {
		helperDeep(c)
	}
}
