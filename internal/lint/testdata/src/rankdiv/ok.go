package rankdiv

import "github.com/fastmath/pumi-go/internal/pcu"

func okLexicalGuard(c *pcu.Ctx) {
	// A bare lexical rank guard is collmismatch/collseq territory;
	// rankdiv stays silent so the finding is not triple-reported.
	if c.Rank() == 0 {
		c.Barrier()
	}
}

func okReconciled(c *pcu.Ctx) {
	// The guard is rank-derived, but both arms run the same collective
	// schedule — the branch reconciles, every rank does one Bcast.
	off := myOffset(c)
	if off > 0 {
		_ = pcu.Bcast(c, 0, 1)
	} else {
		_ = pcu.Bcast(c, 0, 0)
	}
}

func okLocalWork(c *pcu.Ctx) {
	// Rank-derived guards around purely local work are fine.
	off := myOffset(c)
	if off > 0 {
		println("local work", off)
	}
	c.Barrier()
}

func okTaintedPacking(c *pcu.Ctx) {
	// Rank-derived packing before a uniform Exchange: sends are not
	// part of the collective schedule.
	off := myOffset(c)
	if off%2 == 0 {
		c.To(1).Int64(int64(off))
	}
	for _, m := range c.Exchange() {
		for !m.Data.Empty() {
			_ = m.Data.Int64()
		}
	}
}

func okTaintedLoopNoCollective(c *pcu.Ctx) int {
	// Rank-derived trip counts are fine while the body stays local.
	n := c.Rank() * 2
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}
