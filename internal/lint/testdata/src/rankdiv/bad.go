package rankdiv

import "github.com/fastmath/pumi-go/internal/pcu"

// myOffset's return value derives from the calling rank; the summary
// layer records this so callers' guards become rank-dependent.
func myOffset(c *pcu.Ctx) int { return c.Rank() * 2 }

func badOffsetGuard(c *pcu.Ctx) {
	off := myOffset(c)
	if off > 0 {
		c.Barrier() // want `collective Barrier is control-dependent on a rank-derived value \(via off, returned by myOffset -> Ctx\.Rank\) without a reconciling collective`
	}
}

func badHelperUnderTaint(c *pcu.Ctx) {
	// Rank-indexed data taints mine; the collective hides behind a
	// helper, so the witness chain names the path down to it.
	parts := []int{1, 2, 3, 4}
	mine := parts[c.Rank()]
	if mine > 2 {
		syncAll(c) // want `collective reached through syncAll -> Ctx\.Barrier is control-dependent on a rank-derived value \(via mine, computed from Ctx\.Rank\(\)\) without a reconciling collective`
	}
}

func syncAll(c *pcu.Ctx) { c.Barrier() }

func badTaintedLoop(c *pcu.Ctx) {
	n := c.Rank() * 2
	for i := 0; i < n; i++ { // want `loop bound is rank-derived \(via n, computed from Ctx\.Rank\(\)\) and the body runs collective Barrier; ranks iterate different numbers of times and deadlock`
		c.Barrier()
	}
}

func badTaintedRange(c *pcu.Ctx) {
	data := make([]int, c.Rank())
	for range data { // want `loop bound is rank-derived \(via data, computed from Ctx\.Rank\(\)\) and the body runs collective SumInt64; ranks iterate different numbers of times and deadlock`
		_ = pcu.SumInt64(c, 1)
	}
}

func badChainedTaint(c *pcu.Ctx) {
	// Taint propagates through assignment chains: off -> shifted.
	off := myOffset(c)
	shifted := off + 1
	if shifted%3 == 0 {
		_ = pcu.SumInt64(c, 7) // want `collective SumInt64 is control-dependent on a rank-derived value \(via shifted, via off, returned by myOffset -> Ctx\.Rank\) without a reconciling collective`
	}
}
