package lint

import (
	"encoding/json"
	"fmt"
	"path/filepath"
)

// SARIF 2.1.0 encoding of pumi-vet findings, shaped after the static
// analysis results interchange format schema so output loads directly
// into GitHub code scanning and SARIF-aware editors. Only the fields
// pumi-vet populates are modeled; encoding/json omits nothing we emit,
// so the golden test pins the exact wire shape.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
	toolInfoURI  = "https://github.com/fastmath/pumi-go"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifMessage `json:"shortDescription"`
	DefaultConfiguration sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders diagnostics as an indented SARIF 2.1.0 log. The rules
// table lists every registered analyzer (not just the firing ones) so a
// clean run still documents what was checked.
func SARIF(analyzers []*Analyzer, diags []Diagnostic) ([]byte, error) {
	ruleIndex := map[string]int{}
	rules := make([]sarifRule, 0, len(analyzers))
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
		rules = append(rules, sarifRule{
			ID:                   a.Name,
			ShortDescription:     sarifMessage{Text: a.Doc},
			DefaultConfiguration: sarifConfig{Level: "error"},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			return nil, fmt.Errorf("sarif: diagnostic from unregistered analyzer %q", d.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pumi-vet", InformationURI: toolInfoURI, Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// CheckSARIF validates that data is a structurally sound pumi-vet SARIF
// log — correct schema/version, one run, a named driver, every result
// referencing a declared rule with a usable location — and returns the
// number of results. Used by the CI smoke lane.
func CheckSARIF(data []byte) (int, error) {
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		return 0, fmt.Errorf("sarif: %w", err)
	}
	if log.Version != sarifVersion {
		return 0, fmt.Errorf("sarif: version %q, want %q", log.Version, sarifVersion)
	}
	if log.Schema == "" {
		return 0, fmt.Errorf("sarif: missing $schema")
	}
	if len(log.Runs) != 1 {
		return 0, fmt.Errorf("sarif: %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name == "" {
		return 0, fmt.Errorf("sarif: missing tool.driver.name")
	}
	if len(run.Tool.Driver.Rules) == 0 {
		return 0, fmt.Errorf("sarif: empty rules table")
	}
	ruleIDs := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			return 0, fmt.Errorf("sarif: rule %d has no id", i)
		}
		ruleIDs[r.ID] = i
	}
	for i, r := range run.Results {
		idx, ok := ruleIDs[r.RuleID]
		if !ok {
			return 0, fmt.Errorf("sarif: result %d references undeclared rule %q", i, r.RuleID)
		}
		if r.RuleIndex != idx {
			return 0, fmt.Errorf("sarif: result %d ruleIndex %d, want %d", i, r.RuleIndex, idx)
		}
		if r.Message.Text == "" {
			return 0, fmt.Errorf("sarif: result %d has an empty message", i)
		}
		if len(r.Locations) == 0 {
			return 0, fmt.Errorf("sarif: result %d has no locations", i)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine <= 0 {
			return 0, fmt.Errorf("sarif: result %d has an unusable location", i)
		}
	}
	return len(run.Results), nil
}
