package lint

// emit.go — the bridge from effect inference to the pumi-proto
// artifact. `pumi-vet -emit-automata` resolves each protocol entry
// point, takes its runtime-mode effect term (atoms are the op names the
// PCU runtime records, see rtOpName in effects.go), projects it onto
// collectives, and compiles it to a minimal DFA via
// internal/lint/automata. `pumi-vet -effects` prints the inferred terms
// themselves for debugging the inference.

import (
	"fmt"
	"go/types"
	"path"
	"sort"
	"strings"

	"github.com/fastmath/pumi-go/internal/lint/automata"
)

// AutomataEntries are the protocol entry points `pumi-vet
// -emit-automata` compiles by default: the exported operations whose
// collective schedules the runtime enforces online (pcu
// Options.Conform) and offline (pumi-trace -conform).
var AutomataEntries = []string{
	"chaos.RunRecoverable",
	"meshio.LoadCheckpoint",
	"meshio.SaveCheckpoint",
	"parma.Balance",
	"partition.Migrate",
	"pcu.Agree",
}

// findEntry resolves a "pkg.Func" entry name against the loaded
// packages: pkg matches the last import-path component of a non-test
// package, Func a package-scope function.
func findEntry(pkgs []*Package, entry string) (*types.Func, error) {
	i := strings.LastIndex(entry, ".")
	if i <= 0 || i == len(entry)-1 {
		return nil, fmt.Errorf("emit-automata: entry %q is not of the form pkg.Func", entry)
	}
	pkgName, fnName := entry[:i], entry[i+1:]
	for _, p := range pkgs {
		pp := pkgPathOf(p)
		if p.Pkg == nil || strings.HasSuffix(pp, "_test") {
			continue
		}
		if pp != pkgName && !strings.HasSuffix(pp, "/"+pkgName) {
			continue
		}
		if fn, ok := p.Pkg.Scope().Lookup(fnName).(*types.Func); ok {
			return fn, nil
		}
		return nil, fmt.Errorf("emit-automata: package %s has no function %s", pp, fnName)
	}
	return nil, fmt.Errorf("emit-automata: no loaded package matches %q (load the whole module: pumi-vet -emit-automata ./...)", pkgName)
}

// validRuntimeAtoms is the closed op vocabulary a runtime-mode term may
// use: every value of rtOpName plus the shrink boundary and the
// wildcard. Anything else leaking into an emitted term is an inference
// bug, caught before it reaches the artifact.
var validRuntimeAtoms = func() map[string]bool {
	set := map[string]bool{rtOpShrink: true, rtOpWildcard: true}
	for _, op := range rtOpName {
		set[op] = true
	}
	return set
}()

// effectTerm converts a collective-projected runtime effect into the
// automata package's term IR.
func effectTerm(e *Effect) (*automata.Term, error) {
	if e == nil {
		return automata.Empty(), nil
	}
	switch e.kind {
	case effEmpty:
		return automata.Empty(), nil
	case effOp:
		if !validRuntimeAtoms[e.op] {
			return nil, fmt.Errorf("atom %q is not a runtime op name", e.op)
		}
		return automata.Atom(e.op), nil
	case effSeq, effChoice, effLoop:
		kids := make([]*automata.Term, len(e.kids))
		for i, k := range e.kids {
			t, err := effectTerm(k)
			if err != nil {
				return nil, err
			}
			kids[i] = t
		}
		switch e.kind {
		case effSeq:
			return automata.Seq(kids...), nil
		case effChoice:
			return automata.Choice(kids...), nil
		default:
			return automata.Loop(kids[0]), nil
		}
	}
	return nil, fmt.Errorf("unknown effect kind %d", e.kind)
}

// EmitAutomata compiles the protocol automata of the given entry points
// (AutomataEntries when empty) over the loaded packages. The result is
// deterministic: same sources, same artifact bytes.
func EmitAutomata(pkgs []*Package, entries []string) (*automata.Set, error) {
	if len(entries) == 0 {
		entries = AutomataEntries
	}
	facts := gatherFacts(pkgs)
	machines := make([]automata.Machine, 0, len(entries))
	for _, entry := range entries {
		fn, err := findEntry(pkgs, entry)
		if err != nil {
			return nil, err
		}
		eff := facts.RuntimeEffectOf(fn)
		if eff == nil {
			return nil, fmt.Errorf("emit-automata: no effect inferred for %s", entry)
		}
		term, err := effectTerm(collProject(eff))
		if err != nil {
			return nil, fmt.Errorf("emit-automata: %s: %w", entry, err)
		}
		m, err := automata.Compile(entry, term)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	set := automata.NewSet(machines)
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// FormatEffects renders the inferred effect terms of every declared
// function whose qualified name (pkg.Func or pkg.Recv.Func) contains
// pattern, sorted, one block per function: the static term (collseq's
// view), the runtime projection (the conformance monitor's view), and —
// verbose — the derivative exploration of the runtime collective
// schedule. This is `pumi-vet -effects [-func pattern] [-v]`.
func FormatEffects(pkgs []*Package, pattern string, verbose bool) string {
	facts := gatherFacts(pkgs)
	g := facts.graph
	names := make([]string, 0, len(g.order))
	byName := map[string]funcKey{}
	for _, key := range g.order {
		name := path.Base(key.pkg) + "." + key.String()
		if pattern != "" && !strings.Contains(name, pattern) {
			continue
		}
		names = append(names, name)
		byName[name] = key
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		n := g.nodes[byName[name]]
		fmt.Fprintf(&b, "%s:\n", name)
		widened := ""
		if n.effWidened {
			widened = "  (widened: recursive cycle)"
		}
		fmt.Fprintf(&b, "  static:  %s%s\n", n.effect, widened)
		fmt.Fprintf(&b, "  runtime: %s\n", n.effectRT)
		if verbose {
			term, err := effectTerm(collProject(n.effectRT))
			if err != nil {
				fmt.Fprintf(&b, "  derivatives: %v\n", err)
				continue
			}
			b.WriteString("  derivatives:\n")
			for _, line := range automata.Derivatives(term) {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}
