package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CollSeq proves that rank-dependent control flow yields rank-uniform
// collective schedules. Where collmismatch asks the lexical question
// "is a collective under a rank guard?", collseq asks the semantic one:
// for every branch whose condition depends on the calling rank, do both
// arms — each composed with the rest of the function, so early-return
// spellings are handled — run *equal* sequences of collective
// operations? Arms are compared as regular languages of effect terms
// (effects.go); a mismatch is reported with the minimal divergent
// witness: the shortest collective prefix after which one path can do
// something the other cannot. Loops whose iteration count is
// rank-dependent are checked against zero iterations: their bodies must
// have an empty collective schedule.
//
// Rank dependence covers the lexical forms collmismatch recognizes
// (Rank() calls, variables assigned from them) plus the dataflow-
// derived values rankdiv tracks (arithmetic on rank, rank-returning
// helpers, rank-indexed data). Reports nest innermost-first: if a
// nested branch already diverged, the enclosing one is not re-reported.
var CollSeq = &Analyzer{
	Name: "collseq",
	Doc:  "prove rank-dependent branches and loops have rank-uniform collective schedules",
	Run:  runCollSeq,
}

func runCollSeq(p *Pass) {
	for _, body := range funcBodies(p) {
		w := &seqWalker{
			p:        p,
			rankVars: collectRankVars(p, body),
			taint:    rankTaint(p, body, p.Facts),
		}
		w.walkStmts(body.List, nil)
	}
}

// funcBodies collects every function body in the package — declarations
// and function literals — each analyzed as its own execution context.
func funcBodies(p *Pass) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
	}
	return bodies
}

type seqWalker struct {
	p        *Pass
	rankVars map[any]bool
	taint    map[types.Object]*taintInfo
}

func (w *seqWalker) rankDep(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if lexicalRankDep(w.p, e, w.rankVars) {
		return true
	}
	_, tainted := rankCause(w.p, e, w.taint, w.p.Facts)
	return tainted
}

// walkStmts traverses a statement list; konts is the continuation
// stack — the statement tails that run after the current region
// completes, innermost first, cut at loop and function boundaries.
// Returns whether anything was reported in the subtree.
func (w *seqWalker) walkStmts(list []ast.Stmt, konts [][]ast.Stmt) bool {
	reported := false
	for i, s := range list {
		sk := append([][]ast.Stmt{list[i+1:]}, konts...)
		if w.walkStmt(s, sk) {
			reported = true
		}
	}
	return reported
}

// walkStmt handles one statement; konts are the tails running after it.
func (w *seqWalker) walkStmt(s ast.Stmt, konts [][]ast.Stmt) bool {
	switch n := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(n.List, konts)
	case *ast.LabeledStmt:
		return w.walkStmt(n.Stmt, konts)
	case *ast.IfStmt:
		sub := w.walkStmts(n.Body.List, konts)
		if n.Else != nil {
			if w.walkStmt(n.Else, konts) {
				sub = true
			}
		}
		if sub || !w.rankDep(n.Cond) {
			return sub
		}
		witness, diverged := divergeIf(w.p, n, konts)
		if diverged {
			w.p.Reportf(n.If,
				"rank-dependent branch yields divergent collective schedules: %s; every rank must run the same collective sequence",
				witness)
			return true
		}
		return false
	case *ast.SwitchStmt:
		sub := false
		for _, stmt := range n.Body.List {
			if cc, ok := stmt.(*ast.CaseClause); ok && w.walkStmts(cc.Body, konts) {
				sub = true
			}
		}
		dep := w.rankDep(n.Tag)
		if !dep {
			for _, stmt := range n.Body.List {
				if cc, ok := stmt.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						if w.rankDep(e) {
							dep = true
						}
					}
				}
			}
		}
		if sub || !dep {
			return sub
		}
		witness, diverged := divergeSwitch(w.p, n.Body, konts)
		if diverged {
			w.p.Reportf(n.Switch,
				"rank-dependent switch yields divergent collective schedules: %s; every rank must run the same collective sequence",
				witness)
			return true
		}
		return false
	case *ast.TypeSwitchStmt:
		sub := false
		for _, stmt := range n.Body.List {
			if cc, ok := stmt.(*ast.CaseClause); ok && w.walkStmts(cc.Body, konts) {
				sub = true
			}
		}
		return sub
	case *ast.SelectStmt:
		sub := false
		for _, stmt := range n.Body.List {
			if cc, ok := stmt.(*ast.CommClause); ok && w.walkStmts(cc.Body, konts) {
				sub = true
			}
		}
		return sub
	case *ast.ForStmt:
		sub := w.walkStmts(n.Body.List, nil)
		if sub || !(w.rankDep(n.Cond) || w.rankDep(rangeInitBound(n))) {
			return sub
		}
		return w.loopCheck(n.For, n.Body)
	case *ast.RangeStmt:
		sub := w.walkStmts(n.Body.List, nil)
		if sub || !w.rankDep(n.X) {
			return sub
		}
		return w.loopCheck(n.For, n.Body)
	}
	return false
}

// rangeInitBound extracts the init expression of a classic counted loop
// (`for i := lo; ...`) so a rank-derived starting point counts as a
// rank-dependent trip count too.
func rangeInitBound(n *ast.ForStmt) ast.Expr {
	as, ok := n.Init.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil
	}
	return as.Rhs[0]
}

// loopCheck compares a rank-dependent loop's body schedule against zero
// iterations: any collective in the body means ranks iterating
// different numbers of times enter different schedules.
func (w *seqWalker) loopCheck(pos token.Pos, body *ast.BlockStmt) bool {
	ops := loopBodyCollectives(w.p, body)
	if len(ops) == 0 {
		return false
	}
	w.p.Reportf(pos,
		"loop iteration count is rank-dependent but the body runs collective %s; ranks iterating fewer times miss the collective and deadlock",
		strings.Join(ops, "·"))
	return true
}

// loopBodyCollectives returns the sorted collective atoms reachable in
// a loop body (empty when the body's collective schedule is ε, i.e.
// equal to zero iterations).
func loopBodyCollectives(p *Pass, body *ast.BlockStmt) []string {
	f := newEffEval(p.Package, p.Facts).evalStmts(body.List)
	paths := append([]*Effect{}, f.exits...)
	paths = append(paths, f.eff)
	proj := collProject(choiceEffect(paths...))
	var ops []string
	for _, a := range alphabet(proj) {
		ops = append(ops, a.op)
	}
	return ops
}

// divergeIf compares the two arms of an if statement, each composed
// with the continuation tails, as collective-schedule languages.
func divergeIf(p *Pass, n *ast.IfStmt, konts [][]ast.Stmt) (string, bool) {
	thenLang := blockLang(p, n.Body.List, konts)
	var elseLang *Effect
	switch e := n.Else.(type) {
	case nil:
		elseLang = tailLang(p, konts)
	case *ast.BlockStmt:
		elseLang = blockLang(p, e.List, konts)
	case *ast.IfStmt:
		elseLang = blockLang(p, []ast.Stmt{e}, konts)
	default:
		elseLang = tailLang(p, konts)
	}
	witness, equal := schedDiverge(thenLang, elseLang, "true path", "false path")
	return witness, !equal
}

// divergeSwitch compares every case arm (and the implicit no-match path
// when there is no default) against the first arm.
func divergeSwitch(p *Pass, body *ast.BlockStmt, konts [][]ast.Stmt) (string, bool) {
	type arm struct {
		label string
		lang  *Effect
	}
	var arms []arm
	hasDefault := false
	caseIdx := 0
	for _, stmt := range body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		label := fmt.Sprintf("case-%d path", caseIdx)
		if cc.List == nil {
			label = "default path"
			hasDefault = true
		}
		caseIdx++
		arms = append(arms, arm{label, blockLang(p, cc.Body, konts)})
	}
	if !hasDefault {
		arms = append(arms, arm{"no-match path", tailLang(p, konts)})
	}
	for i := 1; i < len(arms); i++ {
		if witness, equal := schedDiverge(arms[0].lang, arms[i].lang, arms[0].label, arms[i].label); !equal {
			return witness, true
		}
	}
	return "", false
}

// blockLang computes the collective-schedule language of executing the
// given statements and then the continuation tails; exit paths
// (return/panic) inside the block skip the tails.
func blockLang(p *Pass, stmts []ast.Stmt, konts [][]ast.Stmt) *Effect {
	f := newEffEval(p.Package, p.Facts).evalStmts(stmts)
	paths := append([]*Effect{}, f.exits...)
	if f.falls {
		paths = append(paths, seqEffect(f.eff, tailLang(p, konts)))
	}
	if len(paths) == 0 {
		return emptyEffect
	}
	return choiceEffect(paths...)
}

// tailLang computes the language of the continuation stack alone.
func tailLang(p *Pass, konts [][]ast.Stmt) *Effect {
	eff := emptyEffect
	var paths []*Effect
	falls := true
	for _, tail := range konts {
		f := newEffEval(p.Package, p.Facts).evalStmts(tail)
		for _, x := range f.exits {
			paths = append(paths, seqEffect(eff, x))
		}
		if !f.falls {
			falls = false
			break
		}
		eff = seqEffect(eff, f.eff)
	}
	if falls {
		paths = append(paths, eff)
	}
	return choiceEffect(paths...)
}
