package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrder detects Go map iteration order flowing into communication.
// Map range order is deliberately randomized by the runtime, so a range
// over a map whose body packs a send buffer, opens a phase buffer, runs
// an exchange, or enters a collective (directly or through helpers —
// the interprocedural summaries decide) produces a different byte
// stream or collective schedule on every run. That breaks both the
// determinism contract (identically seeded runs must produce identical
// communication) and, when the iteration chooses collective order,
// deadlocks ranks against each other.
//
// The fix is always the same and is the idiom used throughout this
// repo: copy the keys to a slice, sort, and range over the slice. A
// range body that merely collects into local state before a sorted send
// elsewhere is not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "detect map iteration order flowing into sends, reductions or migration plans",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if witness := commWitness(p, rs.Body); witness != "" {
				p.Reportf(rs.For,
					"map iteration order reaches communication (%s); sort the keys into a slice and range over that",
					witness)
			}
			return true
		})
	}
}

// commWitness scans a range body — descending into function literals,
// which still execute per-iteration when called — for the first
// communication-reaching operation in source order. It returns a
// human-readable witness, or "" if the body stays local.
func commWitness(p *Pass, body ast.Node) string {
	witness := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if witness != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPhaseBufferCall(p, call):
			witness = "opens a phase send buffer"
		case isBufferPack(p, call):
			witness = "packs a communication buffer"
		case isExchangeCall(p, call):
			witness = "runs an exchange"
		default:
			fn := calleeFunc(p.Info, call)
			if fn == nil {
				return true
			}
			if chain, ok := p.Facts.CollectiveWitness(fn); ok {
				if chain == nil {
					witness = fmt.Sprintf("calls collective %s", fn.Name())
				} else {
					witness = fmt.Sprintf("reaches collective via %s", witnessChain(fn, chain))
				}
			} else if chain, ok := p.Facts.SendsWitness(fn); ok {
				witness = fmt.Sprintf("calls %s, which %s", fn.Name(), chain[len(chain)-1])
			}
		}
		return witness == ""
	})
	return witness
}
