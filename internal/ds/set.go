package ds

// Set is an ordered set: membership tests are O(1) and iteration visits
// elements in insertion order, which keeps every algorithm that walks a
// set deterministic. The zero value is not ready to use; call NewSet.
type Set[T comparable] struct {
	index map[T]int
	items []T
}

// NewSet returns an empty set, optionally seeded with the given values.
func NewSet[T comparable](vals ...T) *Set[T] {
	s := &Set[T]{index: make(map[T]int, len(vals))}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

// Add inserts v and reports whether it was not already present.
func (s *Set[T]) Add(v T) bool {
	if _, ok := s.index[v]; ok {
		return false
	}
	s.index[v] = len(s.items)
	s.items = append(s.items, v)
	return true
}

// Remove deletes v and reports whether it was present. Removal is O(1)
// but moves the last inserted element into the vacated slot, so it
// perturbs iteration order; algorithms that need strict order must not
// interleave removals with ordered walks.
func (s *Set[T]) Remove(v T) bool {
	i, ok := s.index[v]
	if !ok {
		return false
	}
	last := len(s.items) - 1
	moved := s.items[last]
	s.items[i] = moved
	s.index[moved] = i
	s.items = s.items[:last]
	delete(s.index, v)
	return true
}

// Has reports whether v is in the set.
func (s *Set[T]) Has(v T) bool {
	_, ok := s.index[v]
	return ok
}

// Len returns the number of elements.
func (s *Set[T]) Len() int { return len(s.items) }

// Values returns the underlying element slice in iteration order.
// The caller must not mutate it.
func (s *Set[T]) Values() []T { return s.items }

// All iterates the elements in insertion order.
func (s *Set[T]) All() Seq[T] {
	return func(yield func(T) bool) {
		for _, v := range s.items {
			if !yield(v) {
				return
			}
		}
	}
}

// Clone returns a deep copy of the set.
func (s *Set[T]) Clone() *Set[T] {
	c := &Set[T]{index: make(map[T]int, len(s.items)), items: make([]T, len(s.items))}
	copy(c.items, s.items)
	for i, v := range c.items {
		c.index[v] = i
	}
	return c
}

// Union adds every element of other into s.
func (s *Set[T]) Union(other *Set[T]) {
	for _, v := range other.items {
		s.Add(v)
	}
}

// Intersects reports whether the two sets share any element.
func (s *Set[T]) Intersects(other *Set[T]) bool {
	small, big := s, other
	if big.Len() < small.Len() {
		small, big = big, small
	}
	for _, v := range small.items {
		if big.Has(v) {
			return true
		}
	}
	return false
}
