package ds

import "iter"

// Seq is the iterator protocol used throughout the library: a resumable
// single-use sequence of values. It aliases the standard iter.Seq so that
// callers can range over it directly.
type Seq[T any] = iter.Seq[T]

// Collect drains an iterator into a freshly allocated slice.
func Collect[T any](s Seq[T]) []T {
	var out []T
	for v := range s {
		out = append(out, v)
	}
	return out
}

// Count returns the number of values produced by the iterator.
func Count[T any](s Seq[T]) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Filter returns an iterator producing only the values of s for which
// keep reports true.
func Filter[T any](s Seq[T], keep func(T) bool) Seq[T] {
	return func(yield func(T) bool) {
		for v := range s {
			if keep(v) {
				if !yield(v) {
					return
				}
			}
		}
	}
}

// Map returns an iterator applying f to each value of s.
func Map[T, U any](s Seq[T], f func(T) U) Seq[U] {
	return func(yield func(U) bool) {
		for v := range s {
			if !yield(f(v)) {
				return
			}
		}
	}
}

// Of returns an iterator over the given values.
func Of[T any](vals ...T) Seq[T] {
	return func(yield func(T) bool) {
		for _, v := range vals {
			if !yield(v) {
				return
			}
		}
	}
}
