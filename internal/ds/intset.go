package ds

import "slices"

// IntSet is a small sorted set of int32 ids, used for residence-part
// sets and other tiny id collections where a sorted slice beats a map.
// Values are kept unique and ascending, so IntSets compare element-wise
// and hash cheaply via their String key. The zero value is an empty set.
type IntSet struct {
	vals []int32
}

// NewIntSet returns a set holding the given values.
func NewIntSet(vals ...int32) IntSet {
	s := IntSet{}
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

// Add inserts v, keeping the set sorted; reports whether v was new.
func (s *IntSet) Add(v int32) bool {
	i, ok := slices.BinarySearch(s.vals, v)
	if ok {
		return false
	}
	s.vals = slices.Insert(s.vals, i, v)
	return true
}

// Remove deletes v; reports whether it was present.
func (s *IntSet) Remove(v int32) bool {
	i, ok := slices.BinarySearch(s.vals, v)
	if !ok {
		return false
	}
	s.vals = slices.Delete(s.vals, i, i+1)
	return true
}

// Has reports membership.
func (s IntSet) Has(v int32) bool {
	_, ok := slices.BinarySearch(s.vals, v)
	return ok
}

// Len returns the number of elements.
func (s IntSet) Len() int { return len(s.vals) }

// Values returns the sorted elements; the caller must not mutate them.
func (s IntSet) Values() []int32 { return s.vals }

// Min returns the smallest element; it panics on an empty set.
func (s IntSet) Min() int32 { return s.vals[0] }

// Clone returns an independent copy.
func (s IntSet) Clone() IntSet {
	return IntSet{vals: slices.Clone(s.vals)}
}

// Equal reports element-wise equality.
func (s IntSet) Equal(o IntSet) bool { return slices.Equal(s.vals, o.vals) }

// Union returns a new set with the elements of both.
func (s IntSet) Union(o IntSet) IntSet {
	out := s.Clone()
	for _, v := range o.vals {
		out.Add(v)
	}
	return out
}

// Key returns a compact string usable as a map key identifying the set's
// exact contents.
func (s IntSet) Key() string {
	// Each value contributes 4 bytes big-endian; sets are small (the
	// number of parts sharing an entity), so this stays cheap.
	b := make([]byte, 0, 4*len(s.vals))
	for _, v := range s.vals {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}
