package ds

import (
	"slices"
	"testing"
	"testing/quick"
)

func TestSetAddHasRemove(t *testing.T) {
	s := NewSet[int]()
	if s.Len() != 0 {
		t.Fatalf("new set len = %d", s.Len())
	}
	if !s.Add(3) || !s.Add(1) || !s.Add(2) {
		t.Fatal("Add of fresh values returned false")
	}
	if s.Add(3) {
		t.Fatal("Add of duplicate returned true")
	}
	if !s.Has(1) || !s.Has(2) || !s.Has(3) || s.Has(4) {
		t.Fatal("Has wrong")
	}
	if got := s.Values(); !slices.Equal(got, []int{3, 1, 2}) {
		t.Fatalf("insertion order not preserved: %v", got)
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Len() != 2 || s.Has(1) {
		t.Fatal("Remove did not delete")
	}
}

func TestSetIterationOrder(t *testing.T) {
	s := NewSet("c", "a", "b")
	got := Collect(s.All())
	if !slices.Equal(got, []string{"c", "a", "b"}) {
		t.Fatalf("All() order = %v", got)
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet(1, 2)
	c := s.Clone()
	c.Add(3)
	if s.Has(3) {
		t.Fatal("clone shares storage")
	}
	if !c.Has(1) || !c.Has(2) || !c.Has(3) {
		t.Fatal("clone incomplete")
	}
}

func TestSetUnionIntersects(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(2, 3)
	if !a.Intersects(b) {
		t.Fatal("1,2 and 2,3 should intersect")
	}
	c := NewSet(9)
	if a.Intersects(c) {
		t.Fatal("disjoint sets reported intersecting")
	}
	a.Union(b)
	if a.Len() != 3 || !a.Has(3) {
		t.Fatalf("union wrong: %v", a.Values())
	}
}

func TestSetRemoveKeepsIndexConsistent(t *testing.T) {
	s := NewSet(0, 1, 2, 3, 4)
	s.Remove(1)
	for _, v := range []int{0, 2, 3, 4} {
		if !s.Has(v) {
			t.Fatalf("lost %d after unrelated removal", v)
		}
	}
	// Ensure removal of the moved element still works.
	s.Remove(4)
	if s.Has(4) || s.Len() != 3 {
		t.Fatal("second removal broken")
	}
}

func TestIterHelpers(t *testing.T) {
	seq := Of(1, 2, 3, 4)
	if n := Count(seq); n != 4 {
		t.Fatalf("Count = %d", n)
	}
	even := Collect(Filter(Of(1, 2, 3, 4), func(v int) bool { return v%2 == 0 }))
	if !slices.Equal(even, []int{2, 4}) {
		t.Fatalf("Filter = %v", even)
	}
	sq := Collect(Map(Of(1, 2, 3), func(v int) int { return v * v }))
	if !slices.Equal(sq, []int{1, 4, 9}) {
		t.Fatalf("Map = %v", sq)
	}
}

func TestIterEarlyStop(t *testing.T) {
	// Breaking out of a range over Filter/Map must not panic or keep
	// yielding.
	n := 0
	for v := range Map(Of(1, 2, 3, 4, 5), func(v int) int { return v }) {
		n++
		if v == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("visited %d values, want 2", n)
	}
	n = 0
	for range Filter(Of(1, 2, 3), func(int) bool { return true }) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("filter early stop visited %d", n)
	}
}

func TestTagTableScalar(t *testing.T) {
	tt := NewTagTable[int]()
	ti, err := tt.Create("weight", TagInt, 0)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := tt.Create("size", TagFloat, 0)
	if err != nil {
		t.Fatal(err)
	}
	tt.SetInt(ti, 7, 42)
	tt.SetFloat(tf, 7, 2.5)
	if v, ok := tt.GetInt(ti, 7); !ok || v != 42 {
		t.Fatalf("GetInt = %d,%v", v, ok)
	}
	if v, ok := tt.GetFloat(tf, 7); !ok || v != 2.5 {
		t.Fatalf("GetFloat = %g,%v", v, ok)
	}
	if _, ok := tt.GetInt(ti, 8); ok {
		t.Fatal("untagged key reported tagged")
	}
	if !tt.Has(ti, 7) || tt.Has(ti, 8) {
		t.Fatal("Has wrong")
	}
	tt.Delete(ti, 7)
	if tt.Has(ti, 7) {
		t.Fatal("Delete failed")
	}
}

func TestTagTableSlices(t *testing.T) {
	tt := NewTagTable[string]()
	tg, err := tt.Create("coords", TagFloatSlice, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{1, 2, 3}
	tt.SetFloats(tg, "v0", in)
	in[0] = 99 // must not alias stored data
	got, ok := tt.GetFloats(tg, "v0")
	if !ok || !slices.Equal(got, []float64{1, 2, 3}) {
		t.Fatalf("GetFloats = %v,%v", got, ok)
	}
	ig, err := tt.Create("ids", TagIntSlice, 2)
	if err != nil {
		t.Fatal(err)
	}
	tt.SetInts(ig, "v0", []int64{4, 5})
	iv, _ := tt.GetInts(ig, "v0")
	if !slices.Equal(iv, []int64{4, 5}) {
		t.Fatalf("GetInts = %v", iv)
	}
	bg, err := tt.Create("blob", TagBytes, 4)
	if err != nil {
		t.Fatal(err)
	}
	tt.SetBytes(bg, "v0", []byte("abcd"))
	bv, _ := tt.GetBytes(bg, "v0")
	if string(bv) != "abcd" {
		t.Fatalf("GetBytes = %q", bv)
	}
}

func TestTagTableErrorsAndDestroy(t *testing.T) {
	tt := NewTagTable[int]()
	if _, err := tt.Create("x", TagInt, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tt.Create("x", TagFloat, 0); err == nil {
		t.Fatal("duplicate tag name accepted")
	}
	if _, err := tt.Create("bad", TagFloatSlice, 0); err == nil {
		t.Fatal("zero-size slice tag accepted")
	}
	tag := tt.Find("x")
	if tag == nil {
		t.Fatal("Find failed")
	}
	tt.SetInt(tag, 1, 5)
	tt.Destroy(tag)
	if tt.Find("x") != nil {
		t.Fatal("Destroy left tag findable")
	}
	if len(tt.Tags()) != 0 { // "x" destroyed, duplicates and "bad" rejected
		t.Fatalf("Tags() = %v", tt.Tags())
	}
}

func TestTagTableKindMismatchPanics(t *testing.T) {
	tt := NewTagTable[int]()
	tag, _ := tt.Create("w", TagInt, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	tt.SetFloat(tag, 1, 1.0)
}

func TestTagTableDeleteAll(t *testing.T) {
	tt := NewTagTable[int]()
	a, _ := tt.Create("a", TagInt, 0)
	b, _ := tt.Create("b", TagFloat, 0)
	tt.SetInt(a, 5, 1)
	tt.SetFloat(b, 5, 2)
	tt.DeleteAll(5)
	if tt.Has(a, 5) || tt.Has(b, 5) {
		t.Fatal("DeleteAll left data")
	}
}

func TestIntSetBasics(t *testing.T) {
	s := NewIntSet(3, 1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !slices.Equal(s.Values(), []int32{1, 2, 3}) {
		t.Fatalf("Values = %v", s.Values())
	}
	if s.Min() != 1 {
		t.Fatalf("Min = %d", s.Min())
	}
	if !s.Has(2) || s.Has(9) {
		t.Fatal("Has wrong")
	}
	if !s.Remove(2) || s.Remove(2) {
		t.Fatal("Remove semantics")
	}
	o := NewIntSet(1, 3)
	if !s.Equal(o) {
		t.Fatalf("Equal: %v vs %v", s.Values(), o.Values())
	}
	u := s.Union(NewIntSet(5, 0))
	if !slices.Equal(u.Values(), []int32{0, 1, 3, 5}) {
		t.Fatalf("Union = %v", u.Values())
	}
}

func TestIntSetKeyUnique(t *testing.T) {
	a := NewIntSet(0, 1, 2)
	b := NewIntSet(0, 258) // would collide with a naive byte encoding
	if a.Key() == b.Key() {
		t.Fatal("distinct sets share a key")
	}
	if a.Key() != NewIntSet(2, 1, 0).Key() {
		t.Fatal("order-insensitive equality broken")
	}
}

// Property: an IntSet built from arbitrary values always stores the
// sorted unique values, and membership matches the input.
func TestIntSetProperty(t *testing.T) {
	f := func(vals []int32) bool {
		s := NewIntSet(vals...)
		got := s.Values()
		if !slices.IsSorted(got) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return false
			}
		}
		for _, v := range vals {
			if !s.Has(v) {
				return false
			}
		}
		want := slices.Clone(vals)
		slices.Sort(want)
		want = slices.Compact(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Set insertion order equals first-occurrence order of input.
func TestSetOrderProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		s := NewSet[uint8]()
		var want []uint8
		seen := map[uint8]bool{}
		for _, v := range vals {
			s.Add(v)
			if !seen[v] {
				seen[v] = true
				want = append(want, v)
			}
		}
		return slices.Equal(s.Values(), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
