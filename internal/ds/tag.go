package ds

import "fmt"

// TagKind identifies the value type stored by a tag.
type TagKind int

// Tag value kinds. Slice kinds store a fixed number of components per
// tagged datum (the tag's Size).
const (
	TagInt TagKind = iota
	TagFloat
	TagIntSlice
	TagFloatSlice
	TagBytes
	TagAny
)

func (k TagKind) String() string {
	switch k {
	case TagInt:
		return "int"
	case TagFloat:
		return "float"
	case TagIntSlice:
		return "int[]"
	case TagFloatSlice:
		return "float[]"
	case TagBytes:
		return "bytes"
	case TagAny:
		return "any"
	}
	return fmt.Sprintf("TagKind(%d)", int(k))
}

// Tag describes a named piece of user data attachable to arbitrary data.
// A Tag is created once per (name, kind, size) on a TagTable and then
// used as the handle for get/set operations.
type Tag struct {
	Name string
	Kind TagKind
	// Size is the number of components per datum for slice kinds,
	// and 1 otherwise.
	Size int
	id   int
}

// TagTable attaches tag data to arbitrary comparable keys (entity
// handles, model entities, set handles, ...). Storage is sparse: only
// tagged keys consume memory, matching PUMI's tagging semantics where a
// tag may exist on an arbitrary subset of entities.
type TagTable[K comparable] struct {
	tags   []*Tag
	byName map[string]*Tag
	data   []map[K]any // indexed by tag id

	// OnSet, when non-nil, observes every tag write before it lands.
	// The mesh layer hooks pumi-san's owner-only write checking here.
	OnSet func(K)
}

// NewTagTable returns an empty tag table.
func NewTagTable[K comparable]() *TagTable[K] {
	return &TagTable[K]{byName: make(map[string]*Tag)}
}

// Create registers a new tag. It returns an error if the name is taken
// or the size is invalid for the kind.
func (t *TagTable[K]) Create(name string, kind TagKind, size int) (*Tag, error) {
	if _, ok := t.byName[name]; ok {
		return nil, fmt.Errorf("ds: tag %q already exists", name)
	}
	switch kind {
	case TagIntSlice, TagFloatSlice, TagBytes:
		if size < 1 {
			return nil, fmt.Errorf("ds: tag %q: size %d invalid for kind %v", name, size, kind)
		}
	default:
		size = 1
	}
	tag := &Tag{Name: name, Kind: kind, Size: size, id: len(t.tags)}
	t.tags = append(t.tags, tag)
	t.byName[name] = tag
	t.data = append(t.data, make(map[K]any))
	return tag, nil
}

// Find returns the tag with the given name, or nil.
func (t *TagTable[K]) Find(name string) *Tag { return t.byName[name] }

// Tags returns all registered tags in creation order.
func (t *TagTable[K]) Tags() []*Tag { return t.tags }

// Destroy removes a tag and all data attached under it.
func (t *TagTable[K]) Destroy(tag *Tag) {
	if t.byName[tag.Name] != tag {
		return
	}
	delete(t.byName, tag.Name)
	t.data[tag.id] = nil
	// Keep ids stable; slot is retired.
	for i, x := range t.tags {
		if x == tag {
			t.tags = append(t.tags[:i], t.tags[i+1:]...)
			break
		}
	}
}

// Has reports whether key carries data under tag.
func (t *TagTable[K]) Has(tag *Tag, key K) bool {
	m := t.data[tag.id]
	if m == nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// Delete removes tag data from key.
func (t *TagTable[K]) Delete(tag *Tag, key K) {
	if m := t.data[tag.id]; m != nil {
		delete(m, key)
	}
}

// DeleteAll removes tag data for key under every tag (used when the
// underlying datum is destroyed).
func (t *TagTable[K]) DeleteAll(key K) {
	for _, m := range t.data {
		if m != nil {
			delete(m, key)
		}
	}
}

// CountTagged returns the number of keys carrying data under tag.
func (t *TagTable[K]) CountTagged(tag *Tag) int {
	if m := t.data[tag.id]; m != nil {
		return len(m)
	}
	return 0
}

func (t *TagTable[K]) set(tag *Tag, key K, v any) {
	if t.OnSet != nil {
		t.OnSet(key)
	}
	t.data[tag.id][key] = v
}

func (t *TagTable[K]) get(tag *Tag, key K) (any, bool) {
	m := t.data[tag.id]
	if m == nil {
		return nil, false
	}
	v, ok := m[key]
	return v, ok
}

// SetInt attaches an integer value. The tag must have kind TagInt.
func (t *TagTable[K]) SetInt(tag *Tag, key K, v int64) {
	mustKind(tag, TagInt)
	t.set(tag, key, v)
}

// GetInt reads an integer value; ok is false if key is untagged.
func (t *TagTable[K]) GetInt(tag *Tag, key K) (v int64, ok bool) {
	mustKind(tag, TagInt)
	x, ok := t.get(tag, key)
	if !ok {
		return 0, false
	}
	return x.(int64), true
}

// SetFloat attaches a float value. The tag must have kind TagFloat.
func (t *TagTable[K]) SetFloat(tag *Tag, key K, v float64) {
	mustKind(tag, TagFloat)
	t.set(tag, key, v)
}

// GetFloat reads a float value; ok is false if key is untagged.
func (t *TagTable[K]) GetFloat(tag *Tag, key K) (v float64, ok bool) {
	mustKind(tag, TagFloat)
	x, ok := t.get(tag, key)
	if !ok {
		return 0, false
	}
	return x.(float64), true
}

// SetInts attaches a fixed-size integer slice (copied).
func (t *TagTable[K]) SetInts(tag *Tag, key K, v []int64) {
	mustKind(tag, TagIntSlice)
	mustSize(tag, len(v))
	c := make([]int64, len(v))
	copy(c, v)
	t.set(tag, key, c)
}

// GetInts reads an integer slice; the result must not be mutated.
func (t *TagTable[K]) GetInts(tag *Tag, key K) ([]int64, bool) {
	mustKind(tag, TagIntSlice)
	x, ok := t.get(tag, key)
	if !ok {
		return nil, false
	}
	return x.([]int64), true
}

// SetFloats attaches a fixed-size float slice (copied).
func (t *TagTable[K]) SetFloats(tag *Tag, key K, v []float64) {
	mustKind(tag, TagFloatSlice)
	mustSize(tag, len(v))
	c := make([]float64, len(v))
	copy(c, v)
	t.set(tag, key, c)
}

// GetFloats reads a float slice; the result must not be mutated.
func (t *TagTable[K]) GetFloats(tag *Tag, key K) ([]float64, bool) {
	mustKind(tag, TagFloatSlice)
	x, ok := t.get(tag, key)
	if !ok {
		return nil, false
	}
	return x.([]float64), true
}

// SetBytes attaches raw bytes of the tag's size (copied).
func (t *TagTable[K]) SetBytes(tag *Tag, key K, v []byte) {
	mustKind(tag, TagBytes)
	mustSize(tag, len(v))
	c := make([]byte, len(v))
	copy(c, v)
	t.set(tag, key, c)
}

// GetBytes reads raw bytes; the result must not be mutated.
func (t *TagTable[K]) GetBytes(tag *Tag, key K) ([]byte, bool) {
	mustKind(tag, TagBytes)
	x, ok := t.get(tag, key)
	if !ok {
		return nil, false
	}
	return x.([]byte), true
}

// SetAny attaches an arbitrary value under a TagAny tag.
func (t *TagTable[K]) SetAny(tag *Tag, key K, v any) {
	mustKind(tag, TagAny)
	t.set(tag, key, v)
}

// GetAny reads an arbitrary value.
func (t *TagTable[K]) GetAny(tag *Tag, key K) (any, bool) {
	mustKind(tag, TagAny)
	return t.get(tag, key)
}

func mustKind(tag *Tag, k TagKind) {
	if tag.Kind != k {
		panic(fmt.Sprintf("ds: tag %q has kind %v, accessed as %v", tag.Name, tag.Kind, k))
	}
}

func mustSize(tag *Tag, n int) {
	if tag.Size != n {
		panic(fmt.Sprintf("ds: tag %q has size %d, got %d values", tag.Name, tag.Size, n))
	}
}
