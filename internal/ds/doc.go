// Package ds provides the common utility components shared by the
// geometric model and the mesh: iterators over ranges of data, ordered
// sets for grouping arbitrary data, and tag tables for attaching
// arbitrary user data to arbitrary data.
//
// These are the "Common Utilities" of the PUMI software structure
// (Fig. 1 of the paper): Iterator, Set and Tag. They are deliberately
// generic so that both gmi (geometric model) and mesh can reuse them
// with their own handle types.
package ds
