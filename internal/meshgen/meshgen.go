// Package meshgen generates classified unstructured meshes over the
// analytic geometric models of package gmi. It stands in for the
// commercial mesh generators (Simmetrix) that produced the paper's CAD
// meshes: structured-template triangle and tetrahedral meshes whose
// every entity carries a correct geometric classification, so that
// adaptation, snapping and boundary-condition logic downstream exercise
// the same code paths a CAD mesh would.
package meshgen

import (
	"fmt"
	"math"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/vec"
)

// Rect2D meshes the rectangle model with a structured nx x ny grid,
// each cell split into two triangles. Every entity is classified on the
// model (corners on model vertices, boundary edges on model edges,
// the rest on the face).
func Rect2D(model *gmi.RectModel, nx, ny int) *mesh.Mesh {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("meshgen: bad grid %dx%d", nx, ny))
	}
	m := mesh.New(model.Model, 2)
	tol := 1e-9 * (model.Lx + model.Ly)
	verts := make([]mesh.Ent, (nx+1)*(ny+1))
	at := func(i, j int) mesh.Ent { return verts[j*(nx+1)+i] }
	for j := 0; j <= ny; j++ {
		for i := 0; i <= nx; i++ {
			p := vec.V{X: model.Lx * float64(i) / float64(nx), Y: model.Ly * float64(j) / float64(ny)}
			verts[j*(nx+1)+i] = m.CreateVertex(model.ClassifyPoint(p, tol), p)
		}
	}
	faceRef := gmi.Ref{Dim: 2, Tag: 1}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			v00, v10 := at(i, j), at(i+1, j)
			v01, v11 := at(i, j+1), at(i+1, j+1)
			m.BuildFromVerts(mesh.Tri, []mesh.Ent{v00, v10, v11}, faceRef)
			m.BuildFromVerts(mesh.Tri, []mesh.Ent{v00, v11, v01}, faceRef)
		}
	}
	classifyByCentroid(m, func(p vec.V) gmi.Ref { return model.ClassifyPoint(p, tol) })
	return m
}

// Box3D meshes the box model with a structured nx x ny x nz grid, each
// hex cell split into six tetrahedra (Kuhn subdivision, conforming
// across cells). Every entity is classified on the model.
func Box3D(model *gmi.BoxModel, nx, ny, nz int) *mesh.Mesh {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("meshgen: bad grid %dx%dx%d", nx, ny, nz))
	}
	m := mesh.New(model.Model, 3)
	tol := 1e-9 * (model.Lx + model.Ly + model.Lz)
	sx, sy := nx+1, (nx+1)*(ny+1)
	verts := make([]mesh.Ent, (nx+1)*(ny+1)*(nz+1))
	at := func(i, j, k int) mesh.Ent { return verts[k*sy+j*sx+i] }
	for k := 0; k <= nz; k++ {
		for j := 0; j <= ny; j++ {
			for i := 0; i <= nx; i++ {
				p := vec.V{
					X: model.Lx * float64(i) / float64(nx),
					Y: model.Ly * float64(j) / float64(ny),
					Z: model.Lz * float64(k) / float64(nz),
				}
				verts[k*sy+j*sx+i] = m.CreateVertex(model.ClassifyPoint(p, tol), p)
			}
		}
	}
	rgnRef := gmi.Ref{Dim: 3, Tag: 1}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				corner := func(dx, dy, dz int) mesh.Ent { return at(i+dx, j+dy, k+dz) }
				buildKuhnTets(m, corner, rgnRef)
			}
		}
	}
	classifyByCentroid(m, func(p vec.V) gmi.Ref { return model.ClassifyPoint(p, tol) })
	return m
}

// kuhnTets lists the six tetrahedra of the Kuhn subdivision of a unit
// cell, as corner offsets (dx,dy,dz). All share the main diagonal
// 000-111, and every cell face receives the min-to-max diagonal, so
// adjacent cells conform.
var kuhnTets = [6][4][3]int{
	{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 1}},
	{{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {1, 1, 1}},
	{{0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 1, 1}},
	{{0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 1}},
	{{0, 0, 0}, {0, 0, 1}, {1, 0, 1}, {1, 1, 1}},
	{{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}},
}

func buildKuhnTets(m *mesh.Mesh, corner func(dx, dy, dz int) mesh.Ent, rgnRef gmi.Ref) {
	for _, tet := range kuhnTets {
		var vs [4]mesh.Ent
		for v, off := range tet {
			vs[v] = corner(off[0], off[1], off[2])
		}
		m.BuildFromVerts(mesh.Tet, vs[:], rgnRef)
	}
}

// classifyByCentroid classifies every non-vertex entity by the model
// entity containing its centroid. Exact for models whose boundary
// entities are planar (rectangle, box): an entity lies on the boundary
// iff its centroid does.
func classifyByCentroid(m *mesh.Mesh, classify func(vec.V) gmi.Ref) {
	for d := 1; d <= m.Dim(); d++ {
		for e := range m.Iter(d) {
			m.SetClassification(e, classify(m.Centroid(e)))
		}
	}
}

// Vessel3D meshes the vessel model (the AAA surrogate) with ns axial
// layers and an n x n cross-section grid mapped onto the disk, each
// cell split into six tetrahedra. Roughly 6*ns*n*n elements.
// Classification is derived topologically: faces with a single region
// are boundary faces assigned to wall or caps by their axial layer,
// and lower entities classify onto the common model entity of their
// bounding faces (rims where wall meets cap).
func Vessel3D(model *gmi.VesselModel, ns, n int) *mesh.Mesh {
	if ns < 1 || n < 1 {
		panic(fmt.Sprintf("meshgen: bad vessel grid %dx%d", ns, n))
	}
	m := mesh.New(model.Model, 3)
	sx, sy := n+1, (n+1)*(n+1)
	verts := make([]mesh.Ent, (n+1)*(n+1)*(ns+1))
	axial := map[mesh.Ent]int{}
	at := func(iu, iv, it int) mesh.Ent { return verts[it*sy+iv*sx+iu] }
	for it := 0; it <= ns; it++ {
		t := float64(it) / float64(ns)
		c := model.Center(t)
		r := model.Radius(t)
		_, n1, n2 := model.Frame(t)
		for iv := 0; iv <= n; iv++ {
			for iu := 0; iu <= n; iu++ {
				u := -1 + 2*float64(iu)/float64(n)
				v := -1 + 2*float64(iv)/float64(n)
				// Square-to-disk map: boundary of the square lands on
				// the unit circle, interior stays smooth.
				a := u * sqrtNonNeg(1-v*v/2)
				b := v * sqrtNonNeg(1-u*u/2)
				p := c.Add(n1.Scale(r * a)).Add(n2.Scale(r * b))
				ve := m.CreateVertex(gmi.Ref{Dim: 3, Tag: 1}, p)
				verts[it*sy+iv*sx+iu] = ve
				axial[ve] = it
			}
		}
	}
	rgnRef := gmi.Ref{Dim: 3, Tag: 1}
	for it := 0; it < ns; it++ {
		for iv := 0; iv < n; iv++ {
			for iu := 0; iu < n; iu++ {
				corner := func(du, dv, dt int) mesh.Ent { return at(iu+du, iv+dv, it+dt) }
				buildKuhnTets(m, corner, rgnRef)
			}
		}
	}
	// Boundary faces: single upward region. Wall unless the whole face
	// sits on an end layer.
	wall := gmi.Ref{Dim: 2, Tag: 1}
	cap0 := gmi.Ref{Dim: 2, Tag: 2}
	cap1 := gmi.Ref{Dim: 2, Tag: 3}
	faceRef := func(f mesh.Ent) gmi.Ref {
		at0, at1 := true, true
		for _, v := range m.Adjacent(f, 0) {
			if axial[v] != 0 {
				at0 = false
			}
			if axial[v] != ns {
				at1 = false
			}
		}
		switch {
		case at0:
			return cap0
		case at1:
			return cap1
		default:
			return wall
		}
	}
	ClassifyBoundaryTopological(m, faceRef)
	return m
}

func sqrtNonNeg(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x)
}

// ClassifyBoundaryTopological classifies a mesh against its model using
// only mesh topology: entities start classified on the interior region;
// each face bounding exactly one region is a boundary face and is
// assigned the model face faceRef reports; every lower-dimension entity
// adjacent to boundary faces classifies on the highest-dimension model
// entity common to all the model faces it touches (gmi.CommonDown).
// This is robust for curved models where centroid point-classification
// is not.
func ClassifyBoundaryTopological(m *mesh.Mesh, faceRef func(mesh.Ent) gmi.Ref) {
	model := m.Model()
	for f := range m.Iter(m.Dim() - 1) {
		if m.UpCount(f) == 1 {
			m.SetClassification(f, faceRef(f))
		}
	}
	for d := m.Dim() - 2; d >= 0; d-- {
		for e := range m.Iter(d) {
			var refs []gmi.Ref
			seen := map[gmi.Ref]bool{}
			for _, u := range m.Adjacent(e, d+1) {
				c := m.Classification(u)
				if int(c.Dim) < m.Dim() && !seen[c] {
					seen[c] = true
					refs = append(refs, c)
				}
			}
			if len(refs) == 0 {
				continue
			}
			if len(refs) == 1 {
				m.SetClassification(e, refs[0])
				continue
			}
			common := model.CommonDown(refs)
			if common.Valid() {
				m.SetClassification(e, common)
			} else {
				m.SetClassification(e, refs[0])
			}
		}
	}
}
