package meshgen

import (
	"testing"
	"testing/quick"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
)

func TestRect2DCountsAndEuler(t *testing.T) {
	model := gmi.Rect(2, 1)
	m := Rect2D(model, 4, 3)
	wantV := 5 * 4
	wantF := 2 * 4 * 3
	if m.Count(0) != wantV || m.Count(2) != wantF {
		t.Fatalf("V=%d F=%d", m.Count(0), m.Count(2))
	}
	// Euler characteristic of a disk: V - E + F = 1.
	if chi := m.Count(0) - m.Count(1) + m.Count(2); chi != 1 {
		t.Fatalf("chi = %d", chi)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRect2DClassification(t *testing.T) {
	m := Rect2D(gmi.Rect(1, 1), 3, 3)
	counts := map[int8]int{}
	for d := 0; d <= 2; d++ {
		for e := range m.Iter(d) {
			c := m.Classification(e)
			if !c.Valid() {
				t.Fatalf("%v unclassified", e)
			}
			if d == 0 {
				counts[c.Dim]++
			}
			if int(c.Dim) < d {
				t.Fatalf("%v classified on lower-dim %v", e, c)
			}
		}
	}
	// 4 corner vertices on model vertices, 2*(2+2)=8 on edges, 4 interior.
	if counts[0] != 4 || counts[1] != 8 || counts[2] != 4 {
		t.Fatalf("vertex classification counts = %v", counts)
	}
	// Boundary mesh edges: 12 on model edges.
	nb := 0
	for e := range m.Iter(1) {
		if m.Classification(e).Dim == 1 {
			nb++
		}
	}
	if nb != 12 {
		t.Fatalf("boundary edges = %d", nb)
	}
}

func TestBox3DCountsAndEuler(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := Box3D(model, 3, 2, 2)
	wantV := 4 * 3 * 3
	wantT := 6 * 3 * 2 * 2
	if m.Count(0) != wantV || m.Count(3) != wantT {
		t.Fatalf("V=%d T=%d", m.Count(0), m.Count(3))
	}
	// Euler characteristic of a ball: V - E + F - T = 1.
	if chi := m.Count(0) - m.Count(1) + m.Count(2) - m.Count(3); chi != 1 {
		t.Fatalf("chi = %d", chi)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Interior faces bound 2 regions, boundary faces 1.
	for f := range m.IterType(mesh.Tri) {
		n := m.UpCount(f)
		c := m.Classification(f)
		switch n {
		case 1:
			if c.Dim != 2 {
				t.Fatalf("boundary face classified %v", c)
			}
		case 2:
			if c.Dim != 3 {
				t.Fatalf("interior face classified %v", c)
			}
		default:
			t.Fatalf("face with %d regions", n)
		}
	}
	// Boundary face count: 4 tris per grid quad over all 6 sides... two
	// tris per quad: sides x: 2*(2*2), y: 2*(3*2), z: 2*(3*2) quads.
	wantB := 2 * (2*(2*2) + 2*(3*2) + 2*(3*2))
	nb := 0
	for f := range m.IterType(mesh.Tri) {
		if m.UpCount(f) == 1 {
			nb++
		}
	}
	if nb != wantB {
		t.Fatalf("boundary faces = %d, want %d", nb, wantB)
	}
}

func TestBox3DCornersAndEdges(t *testing.T) {
	m := Box3D(gmi.Box(1, 1, 1), 2, 2, 2)
	nCorner, nModelEdge := 0, 0
	for v := range m.Iter(0) {
		switch m.Classification(v).Dim {
		case 0:
			nCorner++
		case 1:
			nModelEdge++
		}
	}
	if nCorner != 8 {
		t.Fatalf("corner vertices = %d", nCorner)
	}
	// 12 model edges with 1 interior grid vertex each.
	if nModelEdge != 12 {
		t.Fatalf("model-edge vertices = %d", nModelEdge)
	}
}

func TestBox3DVolume(t *testing.T) {
	m := Box3D(gmi.Box(2, 1, 1), 2, 2, 2)
	vol := 0.0
	for e := range m.Elements() {
		vol += m.Measure(e)
	}
	if vol < 2-1e-9 || vol > 2+1e-9 {
		t.Fatalf("total volume = %g", vol)
	}
}

func TestVessel3D(t *testing.T) {
	model := gmi.Vessel(10, 1, 0.5, 1)
	m := Vessel3D(model, 8, 4)
	if m.Count(3) != 6*8*4*4 {
		t.Fatalf("tets = %d", m.Count(3))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if chi := m.Count(0) - m.Count(1) + m.Count(2) - m.Count(3); chi != 1 {
		t.Fatalf("chi = %d", chi)
	}
	// Cap faces: 2 tris per cross-section cell.
	nCap0, nCap1, nWall := 0, 0, 0
	for f := range m.IterType(mesh.Tri) {
		if m.UpCount(f) != 1 {
			continue
		}
		switch m.Classification(f) {
		case gmi.Ref{Dim: 2, Tag: 2}:
			nCap0++
		case gmi.Ref{Dim: 2, Tag: 3}:
			nCap1++
		case gmi.Ref{Dim: 2, Tag: 1}:
			nWall++
		default:
			t.Fatalf("boundary face classified %v", m.Classification(f))
		}
	}
	if nCap0 != 2*4*4 || nCap1 != 2*4*4 {
		t.Fatalf("cap faces = %d, %d", nCap0, nCap1)
	}
	if nWall == 0 {
		t.Fatal("no wall faces")
	}
	// Rim edges exist: classified on model edges 1 and 2.
	rims := map[int32]int{}
	for e := range m.Iter(1) {
		c := m.Classification(e)
		if c.Dim == 1 {
			rims[c.Tag]++
		}
	}
	if rims[1] == 0 || rims[2] == 0 {
		t.Fatalf("rim edges = %v", rims)
	}
	// Wall vertices lie near the wall radius.
	for v := range m.Iter(0) {
		if m.Classification(v) == (gmi.Ref{Dim: 2, Tag: 1}) {
			p := m.Coord(v)
			q := model.Snap(gmi.Ref{Dim: 2, Tag: 1}, p)
			if p.Dist(q) > 0.15*model.R0 {
				t.Fatalf("wall vertex %v far from wall: %g", p, p.Dist(q))
			}
		}
	}
}

// Property: the Euler characteristic of any structured box mesh is 1
// and all entities are classified.
func TestBoxEulerProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		nx, ny, nz := int(a%3)+1, int(b%3)+1, int(c%3)+1
		m := Box3D(gmi.Box(1, 2, 3), nx, ny, nz)
		if m.Count(0)-m.Count(1)+m.Count(2)-m.Count(3) != 1 {
			return false
		}
		for d := 0; d <= 3; d++ {
			for e := range m.Iter(d) {
				if !m.Classification(e).Valid() {
					return false
				}
			}
		}
		return m.CheckConsistency() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
