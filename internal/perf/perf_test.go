package perf

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimersAndCounters(t *testing.T) {
	var c Counters
	tm := c.Start("phase")
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d <= 0 {
		t.Fatal("non-positive duration")
	}
	if c.Elapsed("phase") < time.Millisecond {
		t.Fatalf("elapsed = %v", c.Elapsed("phase"))
	}
	c.Add("msgs", 3)
	c.Add("msgs", 4)
	if c.Count("msgs") != 7 {
		t.Fatalf("count = %d", c.Count("msgs"))
	}
	rep := c.Report()
	if !strings.Contains(rep, "phase") || !strings.Contains(rep, "msgs") {
		t.Fatalf("report = %q", rep)
	}
	c.Reset()
	if c.Count("msgs") != 0 || c.Elapsed("phase") != 0 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("n", 1)
				c.Start("t").Stop()
			}
		}()
	}
	wg.Wait()
	if c.Count("n") != 800 {
		t.Fatalf("count = %d", c.Count("n"))
	}
}

func TestMemUsage(t *testing.T) {
	if MemUsage() == 0 {
		t.Fatal("zero heap usage")
	}
}
