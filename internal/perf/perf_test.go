package perf

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTimersAndCounters(t *testing.T) {
	var c Counters
	tm := c.Start("phase")
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d <= 0 {
		t.Fatal("non-positive duration")
	}
	if c.Elapsed("phase") < time.Millisecond {
		t.Fatalf("elapsed = %v", c.Elapsed("phase"))
	}
	c.Add("msgs", 3)
	c.Add("msgs", 4)
	if c.Count("msgs") != 7 {
		t.Fatalf("count = %d", c.Count("msgs"))
	}
	rep := c.Report()
	if !strings.Contains(rep, "phase") || !strings.Contains(rep, "msgs") {
		t.Fatalf("report = %q", rep)
	}
	c.Reset()
	if c.Count("msgs") != 0 || c.Elapsed("phase") != 0 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("n", 1)
				c.Start("t").Stop()
			}
		}()
	}
	wg.Wait()
	if c.Count("n") != 800 {
		t.Fatalf("count = %d", c.Count("n"))
	}
}

func TestMemUsage(t *testing.T) {
	if MemUsage() == 0 {
		t.Fatal("zero heap usage")
	}
}

// TestReportDeterministicAcrossShardOrder is the ordering regression
// test: the same logical totals, accumulated through shards that are
// registered and written in randomized orders, must render an identical
// Report every time. A Report that leaked shard registration order or
// map iteration order would differ between permutations.
func TestReportDeterministicAcrossShardOrder(t *testing.T) {
	names := []string{"parma.balance", "partition.migrate", "exchange", "a.first", "z.last"}
	build := func(rng *rand.Rand) string {
		var c Counters
		shards := make([]*Shard, 4)
		for _, i := range rng.Perm(len(shards)) {
			shards[i] = c.NewShard()
		}
		// Each shard contributes a fixed per-(shard,name) amount, written
		// in shuffled order so first-insertion order varies per run.
		for si, s := range shards {
			idx := rng.Perm(len(names))
			for _, ni := range idx {
				s.Add(names[ni], int64(100*si+ni))
				s.timers[names[ni]] = new(atomic.Int64)
				s.timers[names[ni]].Store(int64(si+1) * int64(ni+1) * 1000)
			}
		}
		// Base-map contributions in shuffled order too.
		for _, ni := range rng.Perm(len(names)) {
			c.Add(names[ni], int64(ni))
		}
		return c.Report()
	}
	want := build(rand.New(rand.NewSource(1)))
	for seed := int64(2); seed < 12; seed++ {
		if got := build(rand.New(rand.NewSource(seed))); got != want {
			t.Fatalf("Report depends on shard/merge order:\nseed 1:\n%s\nseed %d:\n%s", want, seed, got)
		}
	}
	// Sanity: the report is sorted and complete.
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	lines := strings.Split(strings.TrimSpace(want), "\n")
	if len(lines) != 2*len(names) {
		t.Fatalf("report has %d lines, want %d:\n%s", len(lines), 2*len(names), want)
	}
	for i, n := range sorted {
		if !strings.Contains(lines[i], "timer "+n) {
			t.Errorf("line %d = %q, want timer %s", i, lines[i], n)
		}
		if !strings.Contains(lines[len(names)+i], "count "+n) {
			t.Errorf("line %d = %q, want count %s", len(names)+i, lines[len(names)+i], n)
		}
	}
}

// TestSnapshotMergesSorted pins the Snapshot contract directly.
func TestSnapshotMergesSorted(t *testing.T) {
	var c Counters
	s1, s2 := c.NewShard(), c.NewShard()
	s2.Add("b", 2)
	s1.Add("b", 3)
	s1.Add("a", 1)
	c.Add("c", 10)
	timers, counts := c.Snapshot()
	if len(timers) != 0 {
		t.Errorf("timers = %v, want empty", timers)
	}
	want := []CountEntry{{"a", 1}, {"b", 5}, {"c", 10}}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %v, want %v", i, counts[i], want[i])
		}
	}
}
