// Package perf provides the run-time and memory usage counters of
// PUMI's parallel control utilities: named wall-clock timers, event
// counters, and process memory snapshots. All operations are safe for
// concurrent use by rank goroutines.
//
// Two accumulation paths exist. The zero-value Counters works alone,
// serializing every update on one mutex. For hot paths, NewShard hands
// out per-rank shards: a shard accumulates into atomic cells with no
// locking and no cross-rank cache contention, and the parent's read
// methods (Count, Elapsed, Report) merge every shard on demand. Reads
// are therefore exact only at quiescent points (after a run's ranks
// have joined), which is when the paper's tools report them.
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters aggregates named timers and counts. The zero value is ready
// to use. Reads merge any shards created with NewShard.
type Counters struct {
	mu     sync.Mutex
	timers map[string]time.Duration
	counts map[string]int64
	shards []*Shard
}

// Shard is one rank's lock-free accumulation view of a Counters.
// Writes (Add, Start/Stop) are owned by a single goroutine — the rank
// the shard was handed to — and touch only that shard's atomic cells;
// reads delegate to the parent so every shard's contribution is
// visible from any rank.
type Shard struct {
	parent *Counters
	// mu guards map growth: the owning rank inserts new names under it,
	// and mergers read the maps under it. The owner's lookups are
	// lock-free — it is the only inserter, so its own reads can never
	// race an insert.
	mu     sync.Mutex
	timers map[string]*atomic.Int64 // nanoseconds
	counts map[string]*atomic.Int64
}

// NewShard creates and registers a shard. The shard's write methods
// must be used by one goroutine at a time.
func (c *Counters) NewShard() *Shard {
	s := &Shard{
		parent: c,
		timers: make(map[string]*atomic.Int64),
		counts: make(map[string]*atomic.Int64),
	}
	c.mu.Lock()
	c.shards = append(c.shards, s)
	c.mu.Unlock()
	return s
}

// cell returns the named atomic cell, creating it under the shard lock
// on first use. The fast path is a lock-free map hit.
func (s *Shard) cell(m map[string]*atomic.Int64, name string) *atomic.Int64 {
	if v := m[name]; v != nil {
		return v
	}
	v := new(atomic.Int64)
	s.mu.Lock()
	m[name] = v
	s.mu.Unlock()
	return v
}

// Timer measures one interval; obtain one from Start and finish it with
// Stop.
type Timer struct {
	c     *Counters
	s     *Shard
	name  string
	begin time.Time
}

// Start begins timing the named interval, accumulating on the shared
// mutex path.
func (c *Counters) Start(name string) Timer {
	return Timer{c: c, name: name, begin: time.Now()}
}

// Start begins timing the named interval, accumulating lock-free into
// this shard.
func (s *Shard) Start(name string) Timer {
	return Timer{s: s, name: name, begin: time.Now()}
}

// Stop ends the interval and accumulates it, returning the elapsed time.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.begin)
	if t.s != nil {
		t.s.cell(t.s.timers, t.name).Add(int64(d))
		return d
	}
	t.c.mu.Lock()
	if t.c.timers == nil {
		t.c.timers = make(map[string]time.Duration)
	}
	t.c.timers[t.name] += d
	t.c.mu.Unlock()
	return d
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n int64) {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += n
	c.mu.Unlock()
}

// Add increments the named counter by n, lock-free.
func (s *Shard) Add(name string, n int64) {
	s.cell(s.counts, name).Add(n)
}

// Count returns the value of the named counter, merged across the
// parent's shards.
func (s *Shard) Count(name string) int64 { return s.parent.Count(name) }

// Elapsed returns the accumulated duration of the named timer, merged
// across the parent's shards.
func (s *Shard) Elapsed(name string) time.Duration { return s.parent.Elapsed(name) }

// Report renders the merged timers and counters of the parent.
func (s *Shard) Report() string { return s.parent.Report() }

// Reset clears the parent and all its shards.
func (s *Shard) Reset() { s.parent.Reset() }

// Merged returns the parent Counters this shard accumulates into.
func (s *Shard) Merged() *Counters { return s.parent }

// Count returns the value of the named counter.
func (c *Counters) Count(name string) int64 {
	c.mu.Lock()
	total := c.counts[name]
	shards := c.shards
	c.mu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		if v := s.counts[name]; v != nil {
			total += v.Load()
		}
		s.mu.Unlock()
	}
	return total
}

// Elapsed returns the accumulated duration of the named timer.
func (c *Counters) Elapsed(name string) time.Duration {
	c.mu.Lock()
	total := c.timers[name]
	shards := c.shards
	c.mu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		if v := s.timers[name]; v != nil {
			total += time.Duration(v.Load())
		}
		s.mu.Unlock()
	}
	return total
}

// Reset clears all timers and counters, including every shard's cells.
// Shard cells are zeroed in place (not removed) so a concurrent owner
// keeps accumulating into the same cells.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.timers = nil
	c.counts = nil
	shards := c.shards
	c.mu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		for _, v := range s.timers {
			v.Store(0)
		}
		for _, v := range s.counts {
			v.Store(0)
		}
		s.mu.Unlock()
	}
}

// TimerEntry is one merged timer in a Snapshot.
type TimerEntry struct {
	Name  string
	Total time.Duration
}

// CountEntry is one merged counter in a Snapshot.
type CountEntry struct {
	Name  string
	Total int64
}

// Snapshot merges the base maps and every shard into name-sorted
// slices. Accumulation order — which shard was registered first, which
// rank inserted a name first, map iteration order during the merge —
// never reaches the output: values are summed into maps and the sort
// happens once, on the complete merge. Every emitter (Report, the
// tools' JSON output) goes through here, so two runs that accumulated
// the same totals render identically.
func (c *Counters) Snapshot() ([]TimerEntry, []CountEntry) {
	timers := make(map[string]time.Duration)
	counts := make(map[string]int64)
	c.mu.Lock()
	for n, v := range c.timers {
		timers[n] += v
	}
	for n, v := range c.counts {
		counts[n] += v
	}
	shards := c.shards
	c.mu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		for n, v := range s.timers {
			timers[n] += time.Duration(v.Load())
		}
		for n, v := range s.counts {
			counts[n] += v.Load()
		}
		s.mu.Unlock()
	}
	te := make([]TimerEntry, 0, len(timers))
	for n, v := range timers {
		te = append(te, TimerEntry{Name: n, Total: v})
	}
	sort.Slice(te, func(i, j int) bool { return te[i].Name < te[j].Name })
	ce := make([]CountEntry, 0, len(counts))
	for n, v := range counts {
		ce = append(ce, CountEntry{Name: n, Total: v})
	}
	sort.Slice(ce, func(i, j int) bool { return ce[i].Name < ce[j].Name })
	return te, ce
}

// Report renders all timers and counters, merged across shards and
// sorted by name, one per line. The output is byte-for-byte
// deterministic for a given set of accumulated totals, independent of
// shard registration or merge order.
func (c *Counters) Report() string {
	timers, counts := c.Snapshot()
	var b strings.Builder
	for _, e := range timers {
		fmt.Fprintf(&b, "timer %-30s %12.6fs\n", e.Name, e.Total.Seconds())
	}
	for _, e := range counts {
		fmt.Fprintf(&b, "count %-30s %12d\n", e.Name, e.Total)
	}
	return b.String()
}

// MemUsage returns the current heap-allocated bytes of the process, the
// memory usage counter the paper's parallel control utilities expose.
func MemUsage() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
