// Package perf provides the run-time and memory usage counters of
// PUMI's parallel control utilities: named wall-clock timers, event
// counters, and process memory snapshots. All operations are safe for
// concurrent use by rank goroutines.
package perf

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counters aggregates named timers and counts. The zero value is ready
// to use.
type Counters struct {
	mu     sync.Mutex
	timers map[string]time.Duration
	counts map[string]int64
}

// Timer measures one interval; obtain one from Start and finish it with
// Stop.
type Timer struct {
	c     *Counters
	name  string
	begin time.Time
}

// Start begins timing the named interval.
func (c *Counters) Start(name string) Timer {
	return Timer{c: c, name: name, begin: time.Now()}
}

// Stop ends the interval and accumulates it, returning the elapsed time.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.begin)
	t.c.mu.Lock()
	if t.c.timers == nil {
		t.c.timers = make(map[string]time.Duration)
	}
	t.c.timers[t.name] += d
	t.c.mu.Unlock()
	return d
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n int64) {
	c.mu.Lock()
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += n
	c.mu.Unlock()
}

// Count returns the value of the named counter.
func (c *Counters) Count(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Elapsed returns the accumulated duration of the named timer.
func (c *Counters) Elapsed(name string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timers[name]
}

// Reset clears all timers and counters.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.timers = nil
	c.counts = nil
	c.mu.Unlock()
}

// Report renders all timers and counters, sorted by name, one per line.
func (c *Counters) Report() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var names []string
	for n := range c.timers {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "timer %-30s %12.6fs\n", n, c.timers[n].Seconds())
	}
	names = names[:0]
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "count %-30s %12d\n", n, c.counts[n])
	}
	return b.String()
}

// MemUsage returns the current heap-allocated bytes of the process, the
// memory usage counter the paper's parallel control utilities expose.
func MemUsage() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
