package mesh

import "fmt"

// Guard observes every entity mutation of a mesh part. It is the hook
// through which pumi-san's owner-only write and goroutine-confinement
// checking attaches (san.MeshGuard satisfies this interface
// structurally); the mesh package defines its own interface rather
// than importing san so the dependency stays one-way — san is also
// used by pcu, which this package imports.
//
// For each write the mesh reports whether the entity is a shared or
// ghost copy this part does not own: such writes are illegal outside a
// sanctioned protocol window (migration restitching, owner-to-copy
// synchronization), which callers open with SuspendGuard.
type Guard interface {
	CheckWrite(op string, ent fmt.Stringer, sharedNotOwned bool)
	Suspend() func()
}

// SetGuard attaches a write guard to the mesh (nil detaches). The
// partition layer attaches one per part when the sanitizer is enabled.
func (m *Mesh) SetGuard(g Guard) { m.guard = g }

// SuspendGuard opens a sanctioned non-owner write window and returns
// the function that closes it. Windows nest. With no guard attached it
// is a no-op.
func (m *Mesh) SuspendGuard() func() {
	if m.guard == nil {
		return func() {}
	}
	return m.guard.Suspend()
}

// guardWrite routes one mutation through the attached guard, if any.
func (m *Mesh) guardWrite(op string, e Ent) {
	if m.guard == nil {
		return
	}
	notOwned := (m.IsShared(e) || m.IsGhost(e)) && !m.IsOwned(e)
	m.guard.CheckWrite(op, e, notOwned)
}
