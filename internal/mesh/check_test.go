package mesh

import (
	"strings"
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/vec"
)

// corruptCase builds a single-tet mesh, lets corrupt damage it through
// the internal arrays, and asserts CheckConsistency reports a message
// containing want.
func corruptCase(t *testing.T, want string, corrupt func(m *Mesh, tet Ent, vs []Ent)) {
	t.Helper()
	m := newTestMesh()
	tet, vs := singleTet(m)
	if err := m.CheckConsistency(); err != nil {
		t.Fatalf("clean mesh rejected: %v", err)
	}
	corrupt(m, tet, vs)
	err := m.CheckConsistency()
	if err == nil {
		t.Fatalf("corruption %q not detected", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestCheckDetectsDeadDownward(t *testing.T) {
	corruptCase(t, "is not alive", func(m *Mesh, tet Ent, vs []Ent) {
		// Kill a vertex behind the adjacency structure's back.
		m.td[Vertex].alive[vs[0].I] = false
	})
}

func TestCheckDetectsMissingUse(t *testing.T) {
	corruptCase(t, "downward references", func(m *Mesh, tet Ent, vs []Ent) {
		// Drop an edge's use list: its vertices now have more downward
		// references than uses.
		e := m.td[Edge]
		e.firstUse[0] = nilUse
	})
}

func TestCheckDetectsDanglingUse(t *testing.T) {
	corruptCase(t, "does not point back", func(m *Mesh, tet Ent, vs []Ent) {
		// Swap two vertices' use lists: each now claims uses whose
		// downward slots point at the other vertex.
		td := &m.td[Vertex]
		td.firstUse[vs[0].I], td.firstUse[vs[1].I] =
			td.firstUse[vs[1].I], td.firstUse[vs[0].I]
	})
}

func TestCheckDetectsCyclicUseList(t *testing.T) {
	corruptCase(t, "duplicate use", func(m *Mesh, tet Ent, vs []Ent) {
		// Make the use list of vs[0] loop back on itself; the stamp
		// pass reports the revisit instead of walking forever.
		td := &m.td[Vertex]
		first := td.firstUse[vs[0].I]
		utd := &m.td[first.e.T]
		utd.nextUse[int(first.e.I)*utd.degree+int(first.slot)] = first
	})
}

func BenchmarkCheckConsistency(b *testing.B) {
	// A structured tet block large enough that the old
	// O(entities x valence) symmetry scan dominates.
	m := newTestMesh()
	grid := buildTetGrid(m, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CheckConsistency(); err != nil {
			b.Fatal(err)
		}
	}
	_ = grid
}

// buildTetGrid fills m with an n x n x n vertex grid where every cube
// cell is split into 6 tets, and returns the element count.
func buildTetGrid(m *Mesh, n int) int {
	verts := make([]Ent, n*n*n)
	at := func(i, j, k int) Ent { return verts[(i*n+j)*n+k] }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				verts[(i*n+j)*n+k] = m.CreateVertex(gmi.NoRef,
					vec.V{X: float64(i), Y: float64(j), Z: float64(k)})
			}
		}
	}
	// The standard 6-tet decomposition of each cube along the main
	// diagonal c0-c6.
	paths := [6][3]int{{1, 2, 6}, {2, 3, 6}, {3, 7, 6}, {7, 4, 6}, {4, 5, 6}, {5, 1, 6}}
	count := 0
	for i := 0; i < n-1; i++ {
		for j := 0; j < n-1; j++ {
			for k := 0; k < n-1; k++ {
				c := [8]Ent{
					at(i, j, k), at(i+1, j, k), at(i+1, j+1, k), at(i, j+1, k),
					at(i, j, k+1), at(i+1, j, k+1), at(i+1, j+1, k+1), at(i, j+1, k+1),
				}
				for _, p := range paths {
					m.BuildFromVerts(Tet, []Ent{c[0], c[p[0]], c[p[1]], c[p[2]]}, gmi.NoRef)
					count++
				}
			}
		}
	}
	return count
}
