package mesh

import (
	"strings"
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
)

// buildInterfacePart builds a one-edge 1D mesh for the given part id:
// two vertices joined by an edge. The caller wires up the interface
// links between the parts.
func buildInterfacePart(part int32) (*Mesh, [2]Ent) {
	m := New(nil, 1)
	m.SetPart(part)
	v0 := m.CreateVertex(gmi.NoRef, vec.V{X: float64(part)})
	v1 := m.CreateVertex(gmi.NoRef, vec.V{X: float64(part) + 1})
	m.CreateEntity(Edge, gmi.NoRef, []Ent{v0, v1})
	return m, [2]Ent{v0, v1}
}

// twoRankInterface builds the canonical 2-rank picture: rank 0 holds
// part 0 with its right vertex shared, rank 1 holds part 1 with its
// left vertex shared, owner is part 0 on both sides.
func twoRankInterface(c *pcu.Ctx) (*Mesh, [2]Ent) {
	m, v := buildInterfacePart(int32(c.Rank()))
	if c.Rank() == 0 {
		m.SetRemote(v[1], 1, Ent{T: Vertex, I: 0})
		m.SetOwner(v[1], 0)
	} else {
		m.SetRemote(v[0], 0, Ent{T: Vertex, I: 1})
		m.SetOwner(v[0], 0)
	}
	return m, v
}

func TestVerifyParallelClean(t *testing.T) {
	err := pcu.Run(2, func(c *pcu.Ctx) error {
		m, _ := twoRankInterface(c)
		return VerifyParallel(c, m)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// expectVerifyError runs body on n ranks and asserts VerifyParallel
// fails with a message containing want on at least one rank.
func expectVerifyError(t *testing.T, n int, want string, body func(c *pcu.Ctx) *Mesh) {
	t.Helper()
	err := pcu.Run(n, func(c *pcu.Ctx) error {
		return VerifyParallel(c, body(c))
	})
	if err == nil {
		t.Fatalf("VerifyParallel missed the %q violation", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func TestVerifyParallelAsymmetricLink(t *testing.T) {
	expectVerifyError(t, 2, "asymmetric link", func(c *pcu.Ctx) *Mesh {
		m, v := twoRankInterface(c)
		if c.Rank() == 1 {
			// Repoint part 1's back link at the wrong vertex on part 0.
			m.SetRemote(v[0], 0, Ent{T: Vertex, I: 0})
		}
		return m
	})
}

func TestVerifyParallelMissingBackLink(t *testing.T) {
	expectVerifyError(t, 2, "lacks the back link", func(c *pcu.Ctx) *Mesh {
		m, v := twoRankInterface(c)
		if c.Rank() == 1 {
			m.ClearRemotes(v[0])
		}
		return m
	})
}

func TestVerifyParallelOwnerDisagreement(t *testing.T) {
	expectVerifyError(t, 2, "owner disagreement", func(c *pcu.Ctx) *Mesh {
		m, v := twoRankInterface(c)
		if c.Rank() == 1 {
			m.SetOwner(v[0], 1)
		}
		return m
	})
}

func TestVerifyParallelOrphanBoundary(t *testing.T) {
	expectVerifyError(t, 2, "orphan boundary entity", func(c *pcu.Ctx) *Mesh {
		m, _ := twoRankInterface(c)
		// A shared vertex that bounds nothing on this part.
		stray := m.CreateVertex(gmi.NoRef, vec.V{X: 9})
		peer := int32(1 - c.Rank())
		m.SetRemote(stray, peer, Ent{T: Vertex, I: stray.I})
		m.SetOwner(stray, 0)
		return m
	})
}

func TestVerifyParallelDeadCopy(t *testing.T) {
	expectVerifyError(t, 2, "dead copy", func(c *pcu.Ctx) *Mesh {
		m, v := twoRankInterface(c)
		if c.Rank() == 0 {
			// Claim a copy handle that does not exist on part 1.
			m.SetRemote(v[1], 1, Ent{T: Vertex, I: 99})
		}
		return m
	})
}

func TestVerifyParallelSelfLink(t *testing.T) {
	expectVerifyError(t, 2, "its own part", func(c *pcu.Ctx) *Mesh {
		m, v := twoRankInterface(c)
		if c.Rank() == 0 {
			m.SetRemote(v[1], 0, Ent{T: Vertex, I: 0})
		}
		return m
	})
}

func TestVerifyParallelMultiplePartsPerRank(t *testing.T) {
	// Two parts on one rank, one on the other: routing by part id must
	// deliver to the right local mesh.
	err := pcu.Run(2, func(c *pcu.Ctx) error {
		if c.Rank() == 0 {
			m0, v0 := buildInterfacePart(0)
			m1, v1 := buildInterfacePart(1)
			// Interface between local parts 0 and 1.
			m0.SetRemote(v0[1], 1, Ent{T: Vertex, I: 0})
			m0.SetOwner(v0[1], 0)
			m1.SetRemote(v1[0], 0, Ent{T: Vertex, I: 1})
			m1.SetOwner(v1[0], 0)
			// Interface between part 1 and remote part 2.
			m1.SetRemote(v1[1], 2, Ent{T: Vertex, I: 0})
			m1.SetOwner(v1[1], 1)
			return VerifyParallel(c, m0, m1)
		}
		m2, v2 := buildInterfacePart(2)
		m2.SetRemote(v2[0], 1, Ent{T: Vertex, I: 1})
		m2.SetOwner(v2[0], 1)
		return VerifyParallel(c, m2)
	})
	if err != nil {
		t.Fatal(err)
	}
}
