// Package mesh implements the unstructured mesh representation at the
// heart of PUMI: a complete, boundary-representation mesh storing the
// base topological entities (vertex, edge, face, region) with O(1)
// one-level adjacency in both directions, geometric classification
// against a gmi model, coordinates, tags, sets and iterators, and the
// per-entity parallel data (remote copies, ownership, ghost flags) the
// partition layer maintains.
//
// Storage follows PUMI's MDS design: per-type struct-of-arrays with
// free lists, so entities can be created and destroyed dynamically (as
// mesh adaptation and migration require) without invalidating other
// handles, and adjacency queries never allocate per-entity objects.
// Downward adjacency is stored explicitly; upward adjacency is stored
// as intrusive "use" lists threaded through the downward slots, giving
// constant-time insertion, deletion and iteration proportional only to
// local valence — the "complete representation with O(1) adjacency
// interrogation" the paper requires.
package mesh

import (
	"fmt"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/vec"
)

// use identifies one downward slot of an upward entity: entity e's
// slot-th downward adjacency points at the use's target. Uses of the
// same target form a singly linked list (the upward adjacency).
type use struct {
	e    Ent
	slot uint8
}

var nilUse = use{e: NilEnt}

// typeData is the storage of all entities of one type.
type typeData struct {
	degree   int       // downward adjacencies per entity
	down     []Ent     // len = slots * degree
	firstUse []use     // per slot: head of this entity's upward use list
	nextUse  []use     // len = slots * degree: next use after (ent, slot)
	classif  []gmi.Ref // geometric classification
	flags    []uint8
	owner    []int32 // owning part id
	alive    []bool
	free     []int32
	nAlive   int
}

func (td *typeData) slots() int32 { return int32(len(td.alive)) }

// Entity flags.
const (
	// FlagGhost marks a read-only off-part copy localized by ghosting.
	FlagGhost uint8 = 1 << iota
)

// Mesh is one part of a (possibly distributed) mesh: a serial mesh plus
// the part boundary data linking it to peer parts. All methods are
// single-goroutine; in a parallel run each rank owns its parts.
type Mesh struct {
	model *gmi.Model
	dim   int
	part  int32

	td [TypeCount]typeData

	coords []vec.V // per vertex slot

	// links stores the remote-copy links of part-boundary entities:
	// per type, array-backed chains of (peer part, handle) sorted by
	// part (see links.go).
	links [TypeCount]linkStore

	// epoch is the topology epoch: bumped by every mutation that can
	// change the part-boundary communication structure. See TopoEpoch.
	epoch uint64

	// nb caches NeighborParts per dimension against the epoch.
	nb [4]nbCache

	// Tags attaches arbitrary user data to entities.
	Tags *ds.TagTable[Ent]

	// sets are named groupings of entities.
	sets map[string]*ds.Set[Ent]

	// onCreate/onDestroy observers let higher layers (global
	// numbering, fields) track entity lifecycle regardless of which
	// module creates or destroys entities.
	onCreate  []func(Ent)
	onDestroy []func(Ent)

	// guard, when non-nil, checks every mutation (pumi-san).
	guard Guard
}

// New creates an empty mesh part of the given dimension (2 or 3)
// classified against the given geometric model (which may be nil for
// model-free meshes).
func New(model *gmi.Model, dim int) *Mesh {
	if dim < 1 || dim > 3 {
		panic(fmt.Sprintf("mesh: bad dimension %d", dim))
	}
	m := &Mesh{
		model: model,
		dim:   dim,
		Tags:  ds.NewTagTable[Ent](),
		sets:  map[string]*ds.Set[Ent]{},
	}
	for t := Type(0); t < TypeCount; t++ {
		m.td[t].degree = t.DownCount()
		m.links[t].free = -1
	}
	m.epoch = 1
	m.Tags.OnSet = func(e Ent) { m.guardWrite("tag", e) }
	return m
}

// Model returns the geometric model the mesh is classified against.
func (m *Mesh) Model() *gmi.Model { return m.model }

// Dim returns the mesh dimension: the highest entity dimension meshes
// of this part may carry (elements are entities of this dimension).
func (m *Mesh) Dim() int { return m.dim }

// Part returns this part's id within the distributed mesh.
func (m *Mesh) Part() int32 { return m.part }

// SetPart assigns this part's id; the partition layer calls it when
// parts are created.
func (m *Mesh) SetPart(id int32) { m.part = id }

// Count returns the number of live entities of the given dimension.
func (m *Mesh) Count(dim int) int {
	n := 0
	for _, t := range typesOfDim[dim] {
		n += m.td[t].nAlive
	}
	return n
}

// CountType returns the number of live entities of one type.
func (m *Mesh) CountType(t Type) int { return m.td[t].nAlive }

// Alive reports whether the handle names a live entity.
func (m *Mesh) Alive(e Ent) bool {
	if !e.Ok() || e.T >= TypeCount {
		return false
	}
	td := &m.td[e.T]
	return e.I < td.slots() && td.alive[e.I]
}

// alloc returns a fresh slot for type t, growing arrays as needed.
func (m *Mesh) alloc(t Type) int32 {
	td := &m.td[t]
	var idx int32
	ls := &m.links[t]
	if n := len(td.free); n > 0 {
		idx = td.free[n-1]
		td.free = td.free[:n-1]
		td.alive[idx] = true
		ls.clear(idx)
		td.classif[idx] = gmi.NoRef
		td.flags[idx] = 0
		td.owner[idx] = m.part
		for j := 0; j < td.degree; j++ {
			td.down[int(idx)*td.degree+j] = NilEnt
			td.nextUse[int(idx)*td.degree+j] = nilUse
		}
		td.firstUse[idx] = nilUse
	} else {
		idx = td.slots()
		for j := 0; j < td.degree; j++ {
			td.down = append(td.down, NilEnt)
			td.nextUse = append(td.nextUse, nilUse)
		}
		td.firstUse = append(td.firstUse, nilUse)
		td.classif = append(td.classif, gmi.NoRef)
		td.flags = append(td.flags, 0)
		td.owner = append(td.owner, m.part)
		td.alive = append(td.alive, true)
		ls.growTo(int(idx) + 1)
		if t == Vertex {
			m.coords = append(m.coords, vec.V{})
		}
	}
	td.nAlive++
	m.bumpEpoch()
	return idx
}

// OnCreate registers an observer called after every entity creation.
func (m *Mesh) OnCreate(f func(Ent)) { m.onCreate = append(m.onCreate, f) }

// OnDestroy registers an observer called before every entity
// destruction (while the entity is still alive).
func (m *Mesh) OnDestroy(f func(Ent)) { m.onDestroy = append(m.onDestroy, f) }

func (m *Mesh) notifyCreate(e Ent) {
	for _, f := range m.onCreate {
		f(e)
	}
}

// CreateVertex creates a mesh vertex classified on the given model
// entity at the given position.
func (m *Mesh) CreateVertex(c gmi.Ref, p vec.V) Ent {
	idx := m.alloc(Vertex)
	m.coords[idx] = p
	m.td[Vertex].classif[idx] = c
	e := Ent{T: Vertex, I: idx}
	m.guardWrite("create", e)
	m.notifyCreate(e)
	return e
}

// CreateEntity creates an entity of type t from its one-level downward
// adjacent entities, which must be live, of the correct types, and —
// for faces — listed in cycle order (edge i runs from face vertex i to
// i+1). Use BuildFromVerts to create higher-dimension entities directly
// from vertices.
func (m *Mesh) CreateEntity(t Type, c gmi.Ref, down []Ent) Ent {
	if t == Vertex {
		panic("mesh: use CreateVertex for vertices")
	}
	want := downTypes[t]
	if len(down) != len(want) {
		panic(fmt.Sprintf("mesh: %v needs %d downward entities, got %d", t, len(want), len(down)))
	}
	for i, d := range down {
		if !m.Alive(d) {
			panic(fmt.Sprintf("mesh: downward entity %v of new %v is not alive", d, t))
		}
		if d.Dim() != want[i].Dim() {
			panic(fmt.Sprintf("mesh: downward entity %d of %v has dim %d, want %d",
				i, t, d.Dim(), want[i].Dim()))
		}
	}
	idx := m.alloc(t)
	e := Ent{T: t, I: idx}
	td := &m.td[t]
	base := int(idx) * td.degree
	for j, d := range down {
		td.down[base+j] = d
		dtd := &m.td[d.T]
		td.nextUse[base+j] = dtd.firstUse[d.I]
		dtd.firstUse[d.I] = use{e: e, slot: uint8(j)}
	}
	td.classif[idx] = c
	m.guardWrite("create", e)
	m.notifyCreate(e)
	return e
}

// Destroy removes an entity, which must have no live upward
// adjacencies. Downward entities are left alone (PUMI semantics: the
// caller removes orphans explicitly or via DestroyRecursive).
func (m *Mesh) Destroy(e Ent) {
	if !m.Alive(e) {
		panic(fmt.Sprintf("mesh: destroying dead entity %v", e))
	}
	td := &m.td[e.T]
	if td.firstUse[e.I].e.Ok() {
		panic(fmt.Sprintf("mesh: destroying %v which still bounds other entities", e))
	}
	m.guardWrite("destroy", e)
	for _, f := range m.onDestroy {
		f(e)
	}
	base := int(e.I) * td.degree
	for j := 0; j < td.degree; j++ {
		d := td.down[base+j]
		m.unlinkUse(d, use{e: e, slot: uint8(j)})
		td.down[base+j] = NilEnt
	}
	m.Tags.DeleteAll(e)
	m.links[e.T].clear(e.I)
	for _, s := range m.sets {
		s.Remove(e)
	}
	td.alive[e.I] = false
	td.classif[e.I] = gmi.NoRef
	td.flags[e.I] = 0
	td.firstUse[e.I] = nilUse
	td.free = append(td.free, e.I)
	td.nAlive--
	m.bumpEpoch()
}

// DestroyRecursive removes an entity and any downward entities left
// without upward adjacencies, cascading to vertices.
func (m *Mesh) DestroyRecursive(e Ent) {
	var down []Ent
	if e.T != Vertex {
		down = append(down, m.Down(e)...)
	}
	m.Destroy(e)
	for _, d := range down {
		if m.Alive(d) && !m.td[d.T].firstUse[d.I].e.Ok() {
			m.DestroyRecursive(d)
		}
	}
}

// unlinkUse removes the given use from target's use list.
func (m *Mesh) unlinkUse(target Ent, u use) {
	dtd := &m.td[target.T]
	cur := dtd.firstUse[target.I]
	if cur == u {
		dtd.firstUse[target.I] = m.useNext(cur)
		return
	}
	for cur.e.Ok() {
		next := m.useNext(cur)
		if next == u {
			m.setUseNext(cur, m.useNext(next))
			return
		}
		cur = next
	}
	panic(fmt.Sprintf("mesh: use of %v by %v not found", target, u.e))
}

func (m *Mesh) useNext(u use) use {
	td := &m.td[u.e.T]
	return td.nextUse[int(u.e.I)*td.degree+int(u.slot)]
}

func (m *Mesh) setUseNext(u, next use) {
	td := &m.td[u.e.T]
	td.nextUse[int(u.e.I)*td.degree+int(u.slot)] = next
}

// Coord returns a vertex's position.
func (m *Mesh) Coord(v Ent) vec.V {
	if v.T != Vertex {
		panic(fmt.Sprintf("mesh: Coord of non-vertex %v", v))
	}
	return m.coords[v.I]
}

// SetCoord moves a vertex.
func (m *Mesh) SetCoord(v Ent, p vec.V) {
	if v.T != Vertex {
		panic(fmt.Sprintf("mesh: SetCoord of non-vertex %v", v))
	}
	m.guardWrite("coord", v)
	m.coords[v.I] = p
}

// Classification returns the model entity e is classified on.
func (m *Mesh) Classification(e Ent) gmi.Ref { return m.td[e.T].classif[e.I] }

// SetClassification reclassifies e.
func (m *Mesh) SetClassification(e Ent, c gmi.Ref) {
	m.guardWrite("classify", e)
	m.td[e.T].classif[e.I] = c
}

// Flags returns e's flag byte.
func (m *Mesh) Flags(e Ent) uint8 { return m.td[e.T].flags[e.I] }

// SetFlag sets or clears one flag bit on e.
func (m *Mesh) SetFlag(e Ent, flag uint8, on bool) {
	m.guardWrite("flag", e)
	if on {
		m.td[e.T].flags[e.I] |= flag
	} else {
		m.td[e.T].flags[e.I] &^= flag
	}
}

// IterType iterates the live entities of one type in slot order.
func (m *Mesh) IterType(t Type) ds.Seq[Ent] {
	return func(yield func(Ent) bool) {
		td := &m.td[t]
		for i := int32(0); i < td.slots(); i++ {
			if td.alive[i] {
				if !yield(Ent{T: t, I: i}) {
					return
				}
			}
		}
	}
}

// Iter iterates the live entities of one dimension, vertex-type first,
// in slot order.
func (m *Mesh) Iter(dim int) ds.Seq[Ent] {
	return func(yield func(Ent) bool) {
		for _, t := range typesOfDim[dim] {
			for e := range m.IterType(t) {
				if !yield(e) {
					return
				}
			}
		}
	}
}

// Elements iterates the mesh elements (entities of the mesh dimension).
func (m *Mesh) Elements() ds.Seq[Ent] { return m.Iter(m.dim) }

// Set returns the named entity set, creating it if absent.
func (m *Mesh) Set(name string) *ds.Set[Ent] {
	s := m.sets[name]
	if s == nil {
		s = ds.NewSet[Ent]()
		m.sets[name] = s
	}
	return s
}

// DeleteSet removes a named set (the entities are unaffected).
func (m *Mesh) DeleteSet(name string) { delete(m.sets, name) }

// SetNames returns the names of all sets (unordered).
func (m *Mesh) SetNames() []string {
	out := make([]string, 0, len(m.sets))
	for n := range m.sets {
		out = append(out, n)
	}
	return out
}
