package mesh

import "fmt"

// Type enumerates the topological entity types the mesh representation
// supports: the base entities vertex (0D), edge (1D), face (2D:
// triangle, quadrilateral) and region (3D: tetrahedron, hexahedron,
// prism, pyramid).
type Type uint8

// Entity types.
const (
	Vertex Type = iota
	Edge
	Tri
	Quad
	Tet
	Hex
	Prism
	Pyramid
	TypeCount
)

var typeNames = [TypeCount]string{
	"vertex", "edge", "tri", "quad", "tet", "hex", "prism", "pyramid",
}

func (t Type) String() string {
	if t < TypeCount {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// typeDims gives the topological dimension of each type.
var typeDims = [TypeCount]int{0, 1, 2, 2, 3, 3, 3, 3}

// Dim returns the topological dimension of the type.
func (t Type) Dim() int { return typeDims[t] }

// typesOfDim lists the types of each dimension, in Type order.
var typesOfDim = [4][]Type{
	{Vertex},
	{Edge},
	{Tri, Quad},
	{Tet, Hex, Prism, Pyramid},
}

// TypesOfDim returns the entity types of the given dimension.
func TypesOfDim(dim int) []Type { return typesOfDim[dim] }

// nVerts gives the canonical vertex count per type.
var nVerts = [TypeCount]int{1, 2, 3, 4, 4, 8, 6, 5}

// VertCount returns the canonical number of vertices of the type.
func (t Type) VertCount() int { return nVerts[t] }

// downTypes[t] lists the types of t's one-level downward adjacent
// entities in canonical order; downVerts[t][i] lists the canonical
// vertex indices of the i-th downward entity.
//
// Conventions: face edges form the cycle edge i = (v_i, v_{i+1}); the
// first region face is the "base". Tet vertices 0..3 with base (0,1,2);
// hex bottom (0,1,2,3) and top (4,5,6,7); prism bottom triangle (0,1,2)
// and top (3,4,5); pyramid base quad (0,1,2,3) with apex 4.
var downTypes = [TypeCount][]Type{
	Vertex:  nil,
	Edge:    {Vertex, Vertex},
	Tri:     {Edge, Edge, Edge},
	Quad:    {Edge, Edge, Edge, Edge},
	Tet:     {Tri, Tri, Tri, Tri},
	Hex:     {Quad, Quad, Quad, Quad, Quad, Quad},
	Prism:   {Tri, Tri, Quad, Quad, Quad},
	Pyramid: {Quad, Tri, Tri, Tri, Tri},
}

var downVerts = [TypeCount][][]int{
	Vertex: nil,
	Edge:   {{0}, {1}},
	Tri:    {{0, 1}, {1, 2}, {2, 0}},
	Quad:   {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	Tet: {
		{0, 1, 2}, // base
		{0, 1, 3},
		{1, 2, 3},
		{0, 2, 3},
	},
	Hex: {
		{0, 1, 2, 3}, // bottom
		{4, 5, 6, 7}, // top
		{0, 1, 5, 4},
		{1, 2, 6, 5},
		{2, 3, 7, 6},
		{3, 0, 4, 7},
	},
	Prism: {
		{0, 1, 2}, // bottom
		{3, 4, 5}, // top
		{0, 1, 4, 3},
		{1, 2, 5, 4},
		{2, 0, 3, 5},
	},
	Pyramid: {
		{0, 1, 2, 3}, // base
		{0, 1, 4},
		{1, 2, 4},
		{2, 3, 4},
		{3, 0, 4},
	},
}

// DownCount returns the number of one-level downward adjacent entities.
func (t Type) DownCount() int { return len(downTypes[t]) }

// Ent is an entity handle: the unique identifier M^d_i of a mesh entity
// within one part, combining its topological type and slot index.
// Handles stay valid until the entity is destroyed; slots of destroyed
// entities may be reused by later creations.
type Ent struct {
	T Type
	I int32
}

// NilEnt is the invalid handle.
var NilEnt = Ent{I: -1}

// Ok reports whether the handle names an entity (it does not check
// liveness; see Mesh.Alive).
func (e Ent) Ok() bool { return e.I >= 0 }

// Dim returns the entity's topological dimension.
func (e Ent) Dim() int { return typeDims[e.T] }

func (e Ent) String() string {
	if !e.Ok() {
		return "M(nil)"
	}
	return fmt.Sprintf("M%d(%v %d)", e.Dim(), e.T, e.I)
}

// Less orders handles by (dimension, type, index); used wherever a
// deterministic entity order is required.
func (e Ent) Less(o Ent) bool {
	if e.T != o.T {
		return e.T < o.T
	}
	return e.I < o.I
}
