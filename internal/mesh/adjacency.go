package mesh

import (
	"fmt"
	"sort"

	"github.com/fastmath/pumi-go/internal/gmi"
)

// Down returns e's one-level downward adjacent entities in canonical
// order. The returned slice is freshly allocated; use DownTo to reuse a
// buffer in hot loops.
func (m *Mesh) Down(e Ent) []Ent {
	return m.DownTo(e, nil)
}

// DownTo appends e's one-level downward adjacencies to buf and returns
// it.
func (m *Mesh) DownTo(e Ent, buf []Ent) []Ent {
	td := &m.td[e.T]
	base := int(e.I) * td.degree
	return append(buf, td.down[base:base+td.degree]...)
}

// Up returns the one-level upward adjacent entities of e (most recently
// created first — the use-list order). The slice is freshly allocated;
// use UpTo to reuse a buffer.
func (m *Mesh) Up(e Ent) []Ent {
	return m.UpTo(e, nil)
}

// UpTo appends e's one-level upward adjacencies to buf and returns it.
// An entity may appear once per use (e.g. both end vertices of a
// collapsed edge); uses of the same entity are deduplicated.
func (m *Mesh) UpTo(e Ent, buf []Ent) []Ent {
	start := len(buf)
	for u := m.td[e.T].firstUse[e.I]; u.e.Ok(); u = m.useNext(u) {
		dup := false
		for _, prev := range buf[start:] {
			if prev == u.e {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, u.e)
		}
	}
	return buf
}

// UpCount returns the number of distinct one-level upward adjacencies.
func (m *Mesh) UpCount(e Ent) int {
	n := 0
	var seen [2]Ent // entities rarely repeat more than twice
	nSeen := 0
	for u := m.td[e.T].firstUse[e.I]; u.e.Ok(); u = m.useNext(u) {
		dup := false
		for i := 0; i < nSeen; i++ {
			if seen[i] == u.e {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if nSeen < len(seen) {
			seen[nSeen] = u.e
			nSeen++
			n++
			continue
		}
		// Fall back to the allocating path for pathological valence.
		return len(m.Up(e))
	}
	return n
}

// HasUp reports whether e bounds any higher-dimension entity.
func (m *Mesh) HasUp(e Ent) bool { return m.td[e.T].firstUse[e.I].e.Ok() }

// Adjacent returns the entities of dimension dim adjacent to e,
// traversing one level at a time through the complete representation.
// Same-dimension queries return nil (use BridgeAdjacent for
// second-order adjacency). Results are deduplicated and sorted for
// determinism.
func (m *Mesh) Adjacent(e Ent, dim int) []Ent {
	ed := e.Dim()
	if dim == ed {
		return nil
	}
	cur := []Ent{e}
	for d := ed; d < dim; d++ {
		cur = m.stepUp(cur)
	}
	for d := ed; d > dim; d-- {
		cur = m.stepDown(cur)
	}
	sort.Slice(cur, func(i, j int) bool { return cur[i].Less(cur[j]) })
	return cur
}

// appendUnique adds e to out unless present. Local adjacency sets are
// small (bounded by valence), so a linear scan beats hashing; switch to
// a map only for pathological sizes.
func appendUnique(out []Ent, e Ent) []Ent {
	for _, x := range out {
		if x == e {
			return out
		}
	}
	return append(out, e)
}

func (m *Mesh) stepUp(ents []Ent) []Ent {
	var out []Ent
	for _, e := range ents {
		for u := m.td[e.T].firstUse[e.I]; u.e.Ok(); u = m.useNext(u) {
			out = appendUnique(out, u.e)
		}
	}
	return out
}

func (m *Mesh) stepDown(ents []Ent) []Ent {
	var out []Ent
	for _, e := range ents {
		td := &m.td[e.T]
		base := int(e.I) * td.degree
		for _, d := range td.down[base : base+td.degree] {
			out = appendUnique(out, d)
		}
	}
	return out
}

// BridgeAdjacent returns the second-order adjacency of e: entities of
// dimension targetDim reachable through shared entities of dimension
// bridgeDim (e.g. the elements sharing a face with an element). e
// itself is excluded; results are sorted.
func (m *Mesh) BridgeAdjacent(e Ent, bridgeDim, targetDim int) []Ent {
	seen := map[Ent]bool{e: true}
	var out []Ent
	for _, b := range m.Adjacent(e, bridgeDim) {
		for _, t := range m.Adjacent(b, targetDim) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Verts returns e's vertices in an order consistent with the canonical
// templates in downVerts: for faces the edge cycle order, for regions
// an order with the base face first. Regions may be returned in a
// rotation/reflection of their creation order; all derived quantities
// (volumes, shape functions) treat that as an equivalent labeling.
func (m *Mesh) Verts(e Ent) []Ent {
	switch e.Dim() {
	case 0:
		return []Ent{e}
	case 1:
		return m.Down(e)
	case 2:
		return m.faceVerts(e)
	default:
		return m.regionVerts(e)
	}
}

// faceVerts recovers a face's vertex cycle from its edges: vertex i is
// the vertex shared by edges i-1 and i.
func (m *Mesh) faceVerts(f Ent) []Ent {
	edges := m.Down(f)
	n := len(edges)
	out := make([]Ent, n)
	for i := 0; i < n; i++ {
		prev := edges[(i+n-1)%n]
		out[i] = m.sharedVert(prev, edges[i])
	}
	return out
}

func (m *Mesh) sharedVert(e1, e2 Ent) Ent {
	a := m.Down(e1)
	b := m.Down(e2)
	for _, v1 := range a {
		for _, v2 := range b {
			if v1 == v2 {
				return v1
			}
		}
	}
	panic(fmt.Sprintf("mesh: edges %v and %v share no vertex", e1, e2))
}

// regionVerts recovers a region's vertices: the base face's cycle plus
// the remaining vertices matched through mesh edges.
func (m *Mesh) regionVerts(r Ent) []Ent {
	faces := m.Down(r)
	base := m.faceVerts(faces[0])
	inBase := map[Ent]bool{}
	for _, v := range base {
		inBase[v] = true
	}
	switch r.T {
	case Tet, Pyramid:
		// One apex vertex: any vertex of the second face not in the base.
		for _, v := range m.faceVerts(faces[1]) {
			if !inBase[v] {
				return append(base, v)
			}
		}
		panic(fmt.Sprintf("mesh: %v has no apex vertex", r))
	case Hex, Prism:
		// Top face vertices matched to base vertices through vertical
		// mesh edges of this region.
		top := m.faceVerts(faces[1])
		inTop := map[Ent]bool{}
		for _, v := range top {
			inTop[v] = true
		}
		out := append([]Ent{}, base...)
		for _, v := range base {
			partner := NilEnt
			for _, edge := range m.Adjacent(v, 1) {
				o := m.otherVert(edge, v)
				if inTop[o] && m.edgeInRegion(edge, r) {
					partner = o
					break
				}
			}
			if !partner.Ok() {
				panic(fmt.Sprintf("mesh: no vertical partner for %v in %v", v, r))
			}
			out = append(out, partner)
		}
		return out
	}
	panic(fmt.Sprintf("mesh: Verts unsupported for %v", r.T))
}

func (m *Mesh) otherVert(edge, v Ent) Ent {
	d := m.Down(edge)
	if d[0] == v {
		return d[1]
	}
	return d[0]
}

func (m *Mesh) edgeInRegion(edge, r Ent) bool {
	for _, f := range m.Adjacent(edge, 2) {
		for u := m.td[f.T].firstUse[f.I]; u.e.Ok(); u = m.useNext(u) {
			if u.e == r {
				return true
			}
		}
	}
	return false
}

// FindByDown returns the live entity of type t whose downward set
// equals the given entities (order-insensitive), or NilEnt.
func (m *Mesh) FindByDown(t Type, down []Ent) Ent {
	d0 := down[0]
	for u := m.td[d0.T].firstUse[d0.I]; u.e.Ok(); u = m.useNext(u) {
		if u.e.T != t {
			continue
		}
		if m.downSetEquals(u.e, down) {
			return u.e
		}
	}
	return NilEnt
}

func (m *Mesh) downSetEquals(e Ent, down []Ent) bool {
	td := &m.td[e.T]
	base := int(e.I) * td.degree
	if td.degree != len(down) {
		return false
	}
	// Multiset equality: each stored entity may be matched once.
	var used [8]bool
	for _, want := range down {
		found := false
		for k, have := range td.down[base : base+td.degree] {
			if !used[k] && have == want {
				used[k] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// FindFromVerts returns the live entity of type t whose vertex set
// equals verts, or NilEnt.
func (m *Mesh) FindFromVerts(t Type, verts []Ent) Ent {
	if t == Vertex {
		return verts[0]
	}
	if t == Edge {
		return m.FindByDown(Edge, verts)
	}
	// Walk candidates adjacent to the first vertex.
	for _, cand := range m.Adjacent(verts[0], t.Dim()) {
		if cand.T != t {
			continue
		}
		if m.vertSetEquals(cand, verts) {
			return cand
		}
	}
	return NilEnt
}

func (m *Mesh) vertSetEquals(e Ent, verts []Ent) bool {
	have := m.Adjacent(e, 0)
	if len(have) != len(verts) {
		return false
	}
	for _, want := range verts {
		found := false
		for _, h := range have {
			if h == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// BuildFromVerts creates (or finds, if already present) the entity of
// type t with the given canonical vertex order, creating any missing
// intermediate entities. Intermediate entities are classified on c as
// well unless they already exist; callers typically reclassify boundary
// sides afterwards or pass the region classification. It returns the
// entity.
func (m *Mesh) BuildFromVerts(t Type, verts []Ent, c gmi.Ref) Ent {
	if len(verts) != t.VertCount() {
		panic(fmt.Sprintf("mesh: %v needs %d vertices, got %d", t, t.VertCount(), len(verts)))
	}
	if t == Vertex {
		return verts[0]
	}
	if e := m.FindFromVerts(t, verts); e.Ok() {
		return e
	}
	down := make([]Ent, len(downTypes[t]))
	for i, dt := range downTypes[t] {
		dv := make([]Ent, len(downVerts[t][i]))
		for j, li := range downVerts[t][i] {
			dv[j] = verts[li]
		}
		down[i] = m.BuildFromVerts(dt, dv, c)
	}
	return m.CreateEntity(t, c, down)
}
