package mesh

import (
	"math"

	"github.com/fastmath/pumi-go/internal/vec"
)

// Centroid returns the average position of e's vertices.
func (m *Mesh) Centroid(e Ent) vec.V {
	var s vec.V
	vs := m.Adjacent(e, 0)
	if e.T == Vertex {
		return m.Coord(e)
	}
	for _, v := range vs {
		s = s.Add(m.Coord(v))
	}
	return s.Scale(1 / float64(len(vs)))
}

// Measure returns the size of an entity: length for edges, area for
// faces, volume for regions (unsigned). Quads and non-tet regions are
// measured by simplex decomposition about their centroid, exact for
// the planar/convex cells the structured generators emit.
func (m *Mesh) Measure(e Ent) float64 {
	switch e.T {
	case Vertex:
		return 0
	case Edge:
		d := m.Down(e)
		return m.Coord(d[0]).Dist(m.Coord(d[1]))
	case Tri:
		v := m.Verts(e)
		return vec.TriArea(m.Coord(v[0]), m.Coord(v[1]), m.Coord(v[2]))
	case Quad:
		v := m.Verts(e)
		c := m.Centroid(e)
		a := 0.0
		for i := 0; i < 4; i++ {
			a += vec.TriArea(m.Coord(v[i]), m.Coord(v[(i+1)%4]), c)
		}
		return a
	case Tet:
		v := m.Verts(e)
		return math.Abs(vec.TetVolume(m.Coord(v[0]), m.Coord(v[1]), m.Coord(v[2]), m.Coord(v[3])))
	default:
		// Decompose about the cell centroid: one tet per face triangle.
		c := m.Centroid(e)
		vol := 0.0
		for _, f := range m.Down(e) {
			fv := m.Verts(f)
			fc := m.Centroid(f)
			n := len(fv)
			for i := 0; i < n; i++ {
				vol += math.Abs(vec.TetVolume(m.Coord(fv[i]), m.Coord(fv[(i+1)%n]), fc, c))
			}
		}
		return vol
	}
}

// EdgeLength returns the length of the edge between two vertices.
func (m *Mesh) EdgeLength(e Ent) float64 { return m.Measure(e) }

// MeanRatioQuality returns a scale-invariant shape quality in (0, 1]
// for triangles and tetrahedra (1 = equilateral/regular, -> 0 for
// degenerate). Other types return 1.
func (m *Mesh) MeanRatioQuality(e Ent) float64 {
	switch e.T {
	case Tri:
		v := m.Verts(e)
		a, b, c := m.Coord(v[0]), m.Coord(v[1]), m.Coord(v[2])
		area := vec.TriArea(a, b, c)
		l2 := a.Sub(b).Norm2() + b.Sub(c).Norm2() + c.Sub(a).Norm2()
		if l2 == 0 {
			return 0
		}
		// Equilateral: area = sqrt(3)/4 s^2, l2 = 3 s^2.
		return 4 * math.Sqrt(3) * area / l2
	case Tet:
		v := m.Verts(e)
		p := [4]vec.V{m.Coord(v[0]), m.Coord(v[1]), m.Coord(v[2]), m.Coord(v[3])}
		vol := math.Abs(vec.TetVolume(p[0], p[1], p[2], p[3]))
		l2 := 0.0
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				l2 += p[i].Sub(p[j]).Norm2()
			}
		}
		if l2 == 0 {
			return 0
		}
		// Regular tet with edge s: vol = s^3/(6 sqrt 2), sum l2 = 6 s^2.
		s2 := l2 / 6
		ideal := math.Pow(s2, 1.5) / (6 * math.Sqrt2)
		return vol / ideal
	}
	return 1
}
