package mesh

import (
	"sort"

	"github.com/fastmath/pumi-go/internal/ds"
)

// Remote copy management. A part-boundary entity is duplicated on every
// part whose higher-dimension entities it bounds; each copy records the
// handles of its siblings on the other parts. The partition layer
// maintains these links during migration and ghosting.

// SetRemote records that entity e has a copy named h on the given peer
// part.
func (m *Mesh) SetRemote(e Ent, part int32, h Ent) {
	m.guardWrite("remote", e)
	byPart := m.remotes[e.T][e.I]
	if byPart == nil {
		byPart = map[int32]Ent{}
		m.remotes[e.T][e.I] = byPart
	}
	byPart[part] = h
}

// ClearRemotes removes all remote copy links of e (the entity becomes
// interior from this part's point of view).
func (m *Mesh) ClearRemotes(e Ent) {
	m.guardWrite("remote", e)
	delete(m.remotes[e.T], e.I)
}

// RemoveRemote removes the link to one peer part's copy.
func (m *Mesh) RemoveRemote(e Ent, part int32) {
	m.guardWrite("remote", e)
	byPart := m.remotes[e.T][e.I]
	delete(byPart, part)
	if len(byPart) == 0 {
		delete(m.remotes[e.T], e.I)
	}
}

// RemoteCopy returns e's handle on the given peer part; ok is false if
// no copy is recorded there.
func (m *Mesh) RemoteCopy(e Ent, part int32) (Ent, bool) {
	h, ok := m.remotes[e.T][e.I][part]
	return h, ok
}

// RemoteParts returns the peer parts holding copies of e, sorted.
func (m *Mesh) RemoteParts(e Ent) []int32 {
	byPart := m.remotes[e.T][e.I]
	if len(byPart) == 0 {
		return nil
	}
	out := make([]int32, 0, len(byPart))
	for p := range byPart {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Remotes returns (part, handle) pairs for all copies of e, sorted by
// part.
func (m *Mesh) Remotes(e Ent) []RemoteCopyRef {
	byPart := m.remotes[e.T][e.I]
	if len(byPart) == 0 {
		return nil
	}
	out := make([]RemoteCopyRef, 0, len(byPart))
	for p, h := range byPart {
		out = append(out, RemoteCopyRef{Part: p, Ent: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Part < out[j].Part })
	return out
}

// RemoteCopyRef names an entity copy on a peer part.
type RemoteCopyRef struct {
	Part int32
	Ent  Ent
}

// IsShared reports whether e lies on a part boundary (has remote
// copies). Ghost copies are not shared in this sense.
func (m *Mesh) IsShared(e Ent) bool {
	return len(m.remotes[e.T][e.I]) > 0 && !m.IsGhost(e)
}

// Residence returns the residence part set of e: the ids of all parts
// where e exists — this part plus all remote-copy parts.
func (m *Mesh) Residence(e Ent) ds.IntSet {
	s := ds.NewIntSet(m.part)
	for p := range m.remotes[e.T][e.I] {
		s.Add(p)
	}
	return s
}

// Owner returns the owning part of e: the part with the right to
// modify the entity. Interior entities are owned by their own part.
func (m *Mesh) Owner(e Ent) int32 { return m.td[e.T].owner[e.I] }

// SetOwner assigns e's owning part.
func (m *Mesh) SetOwner(e Ent, part int32) {
	m.guardWrite("owner", e)
	m.td[e.T].owner[e.I] = part
}

// IsOwned reports whether this part owns e.
func (m *Mesh) IsOwned(e Ent) bool { return m.Owner(e) == m.part }

// IsGhost reports whether e is a read-only ghost copy localized from
// another part.
func (m *Mesh) IsGhost(e Ent) bool { return m.Flags(e)&FlagGhost != 0 }

// SetGhost marks or unmarks e as a ghost copy.
func (m *Mesh) SetGhost(e Ent, on bool) { m.SetFlag(e, FlagGhost, on) }

// PartBoundary iterates the shared (part-boundary) entities of one
// dimension in slot order.
func (m *Mesh) PartBoundary(dim int) ds.Seq[Ent] {
	return ds.Filter(m.Iter(dim), m.IsShared)
}

// NeighborParts returns the peer parts this part shares entities of
// dimension dim with ("a part Pi neighbors part Pj over entity type d
// if they share d dimensional mesh entities on part boundary"), sorted.
func (m *Mesh) NeighborParts(dim int) []int32 {
	seen := map[int32]bool{}
	for _, t := range typesOfDim[dim] {
		for i, byPart := range m.remotes[t] {
			if !m.td[t].alive[i] || m.td[t].flags[i]&FlagGhost != 0 {
				continue
			}
			for p := range byPart {
				seen[p] = true
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
