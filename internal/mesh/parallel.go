package mesh

import (
	"slices"

	"github.com/fastmath/pumi-go/internal/ds"
)

// Remote copy management. A part-boundary entity is duplicated on every
// part whose higher-dimension entities it bounds; each copy records the
// handles of its siblings on the other parts. The partition layer
// maintains these links during migration and ghosting.
//
// Links live in the per-type array-backed linkStore (links.go): chains
// sorted by part id, so all read paths are allocation-free walks in
// deterministic order. Every mutation that can change the part-boundary
// communication structure — entity creation and destruction, remote
// link edits, ownership and ghost-flag changes — bumps the mesh's
// topology epoch, which higher layers (the partition layer's compiled
// boundary-exchange plans, this file's NeighborParts cache) use to
// invalidate derived communication schedules.

// TopoEpoch returns the mesh's topology epoch: a counter bumped by any
// mutation that can change the part-boundary communication structure
// (create/destroy, SetRemote/RemoveRemote/ClearRemotes, SetOwner,
// SetGhost). Derived structures cached against an epoch stay valid
// exactly while the epoch is unchanged.
func (m *Mesh) TopoEpoch() uint64 { return m.epoch }

// bumpEpoch advances the topology epoch, invalidating epoch-cached
// derived data (NeighborParts, partition-layer boundary plans).
func (m *Mesh) bumpEpoch() { m.epoch++ }

// SetRemote records that entity e has a copy named h on the given peer
// part.
func (m *Mesh) SetRemote(e Ent, part int32, h Ent) {
	m.guardWrite("remote", e)
	m.links[e.T].set(e.I, part, h)
	m.bumpEpoch()
}

// ClearRemotes removes all remote copy links of e (the entity becomes
// interior from this part's point of view).
func (m *Mesh) ClearRemotes(e Ent) {
	m.guardWrite("remote", e)
	m.links[e.T].clear(e.I)
	m.bumpEpoch()
}

// RemoveRemote removes the link to one peer part's copy.
func (m *Mesh) RemoveRemote(e Ent, part int32) {
	m.guardWrite("remote", e)
	m.links[e.T].remove(e.I, part)
	m.bumpEpoch()
}

// RemoteCopy returns e's handle on the given peer part; ok is false if
// no copy is recorded there.
func (m *Mesh) RemoteCopy(e Ent, part int32) (Ent, bool) {
	ls := &m.links[e.T]
	id := ls.find(e.I, part)
	if id < 0 {
		return NilEnt, false
	}
	return ls.ent[id], true
}

// HasRemotes reports whether e carries any remote-copy links (ghost or
// not; contrast IsShared, which excludes ghosts).
func (m *Mesh) HasRemotes(e Ent) bool { return m.links[e.T].headOf(e.I) >= 0 }

// NRemotes returns the number of remote copies of e.
func (m *Mesh) NRemotes(e Ent) int { return m.links[e.T].count(e.I) }

// EachRemote walks e's remote copies in ascending part order without
// allocating; yield returning false stops the walk. The links must not
// be mutated during the walk.
func (m *Mesh) EachRemote(e Ent, yield func(part int32, h Ent) bool) {
	ls := &m.links[e.T]
	for cur := ls.headOf(e.I); cur >= 0; cur = ls.next[cur] {
		if !yield(ls.part[cur], ls.ent[cur]) {
			return
		}
	}
}

// RemoteParts returns the peer parts holding copies of e, in ascending
// order (sorted by construction — the link chains are part-ordered).
func (m *Mesh) RemoteParts(e Ent) []int32 {
	ls := &m.links[e.T]
	n := ls.count(e.I)
	if n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	for cur := ls.headOf(e.I); cur >= 0; cur = ls.next[cur] {
		out = append(out, ls.part[cur])
	}
	return out
}

// AppendRemoteParts appends e's peer parts to dst in ascending order
// and returns it — the allocation-free variant of RemoteParts for hot
// sweeps that reuse a scratch slice.
func (m *Mesh) AppendRemoteParts(e Ent, dst []int32) []int32 {
	ls := &m.links[e.T]
	for cur := ls.headOf(e.I); cur >= 0; cur = ls.next[cur] {
		dst = append(dst, ls.part[cur])
	}
	return dst
}

// Remotes returns (part, handle) pairs for all copies of e, in
// ascending part order.
func (m *Mesh) Remotes(e Ent) []RemoteCopyRef {
	ls := &m.links[e.T]
	n := ls.count(e.I)
	if n == 0 {
		return nil
	}
	out := make([]RemoteCopyRef, 0, n)
	for cur := ls.headOf(e.I); cur >= 0; cur = ls.next[cur] {
		out = append(out, RemoteCopyRef{Part: ls.part[cur], Ent: ls.ent[cur]})
	}
	return out
}

// RemoteCopyRef names an entity copy on a peer part.
type RemoteCopyRef struct {
	Part int32
	Ent  Ent
}

// IsShared reports whether e lies on a part boundary (has remote
// copies). Ghost copies are not shared in this sense.
func (m *Mesh) IsShared(e Ent) bool {
	return m.links[e.T].headOf(e.I) >= 0 && !m.IsGhost(e)
}

// Residence returns the residence part set of e: the ids of all parts
// where e exists — this part plus all remote-copy parts.
func (m *Mesh) Residence(e Ent) ds.IntSet {
	s := ds.NewIntSet(m.part)
	ls := &m.links[e.T]
	for cur := ls.headOf(e.I); cur >= 0; cur = ls.next[cur] {
		s.Add(ls.part[cur])
	}
	return s
}

// Owner returns the owning part of e: the part with the right to
// modify the entity. Interior entities are owned by their own part.
func (m *Mesh) Owner(e Ent) int32 { return m.td[e.T].owner[e.I] }

// SetOwner assigns e's owning part.
func (m *Mesh) SetOwner(e Ent, part int32) {
	m.guardWrite("owner", e)
	m.td[e.T].owner[e.I] = part
	m.bumpEpoch()
}

// IsOwned reports whether this part owns e.
func (m *Mesh) IsOwned(e Ent) bool { return m.Owner(e) == m.part }

// IsGhost reports whether e is a read-only ghost copy localized from
// another part.
func (m *Mesh) IsGhost(e Ent) bool { return m.Flags(e)&FlagGhost != 0 }

// SetGhost marks or unmarks e as a ghost copy.
func (m *Mesh) SetGhost(e Ent, on bool) {
	m.SetFlag(e, FlagGhost, on)
	m.bumpEpoch()
}

// PartBoundary iterates the shared (part-boundary) entities of one
// dimension in slot order.
func (m *Mesh) PartBoundary(dim int) ds.Seq[Ent] {
	return ds.Filter(m.Iter(dim), m.IsShared)
}

// NeighborParts returns the peer parts this part shares entities of
// dimension dim with ("a part Pi neighbors part Pj over entity type d
// if they share d dimensional mesh entities on part boundary"), in
// ascending order. The result is cached against the topology epoch:
// repeated calls between boundary mutations return the same backing
// slice without allocating. Callers must treat it as read-only.
func (m *Mesh) NeighborParts(dim int) []int32 {
	c := &m.nb[dim]
	if c.valid && c.epoch == m.epoch {
		return c.parts
	}
	c.parts = c.parts[:0]
	for _, t := range typesOfDim[dim] {
		td := &m.td[t]
		ls := &m.links[t]
		for i := int32(0); i < td.slots(); i++ {
			if !td.alive[i] || td.flags[i]&FlagGhost != 0 {
				continue
			}
			for cur := ls.headOf(i); cur >= 0; cur = ls.next[cur] {
				c.parts = append(c.parts, ls.part[cur])
			}
		}
	}
	slices.Sort(c.parts)
	c.parts = slices.Compact(c.parts)
	c.epoch = m.epoch
	c.valid = true
	return c.parts
}
