package mesh

// linkStore is the MDS-style array-backed store of remote-copy links
// for all entities of one type. Each entity's links form a singly
// linked chain threaded through pooled parallel arrays (struct of
// arrays: part, handle, next), headed by a per-slot index. Chains are
// kept sorted by part id at insertion, so every read — RemoteCopy,
// Remotes, RemoteParts, Residence — observes a deterministic order by
// construction, with no per-call sorting and no map-order hazards.
// Freed records go on an intrusive free list and are reused, so a
// boundary that churns (migration, ghosting) recycles storage instead
// of growing it.
// nbCache memoizes one dimension's NeighborParts result against the
// topology epoch.
type nbCache struct {
	parts []int32
	epoch uint64
	valid bool
}

type linkStore struct {
	head []int32 // per entity slot: first link record, -1 = none
	part []int32 // link record: peer part id
	ent  []Ent   // link record: the copy's handle on that part
	next []int32 // link record: next record of the same entity, -1 = end
	free int32   // head of the free list threaded through next, -1 = none
	n    int     // live link records
}

// growTo extends the per-slot head array to cover `slots` entity slots.
func (ls *linkStore) growTo(slots int) {
	for len(ls.head) < slots {
		ls.head = append(ls.head, -1)
	}
}

// headOf returns the first link record of slot i, -1 if none. It is
// safe on handles beyond the grown region (a fresh mesh has no links).
func (ls *linkStore) headOf(i int32) int32 {
	if int(i) >= len(ls.head) {
		return -1
	}
	return ls.head[i]
}

// allocRec takes a record off the free list (or appends one) and fills
// it.
func (ls *linkStore) allocRec(part int32, h Ent, next int32) int32 {
	if ls.free >= 0 {
		id := ls.free
		ls.free = ls.next[id]
		ls.part[id], ls.ent[id], ls.next[id] = part, h, next
		return id
	}
	ls.part = append(ls.part, part)
	ls.ent = append(ls.ent, h)
	ls.next = append(ls.next, next)
	return int32(len(ls.part) - 1)
}

// set records (part -> h) on slot i, keeping the chain sorted by part.
// It reports whether a new link was added (false: updated in place).
func (ls *linkStore) set(i, part int32, h Ent) bool {
	prev := int32(-1)
	cur := ls.head[i]
	for cur >= 0 && ls.part[cur] < part {
		prev, cur = cur, ls.next[cur]
	}
	if cur >= 0 && ls.part[cur] == part {
		ls.ent[cur] = h
		return false
	}
	id := ls.allocRec(part, h, cur)
	if prev < 0 {
		ls.head[i] = id
	} else {
		ls.next[prev] = id
	}
	ls.n++
	return true
}

// find returns slot i's link record for the given part, -1 if absent.
func (ls *linkStore) find(i, part int32) int32 {
	for cur := ls.headOf(i); cur >= 0; cur = ls.next[cur] {
		if ls.part[cur] == part {
			return cur
		}
		if ls.part[cur] > part {
			return -1
		}
	}
	return -1
}

// remove unlinks slot i's record for the given part onto the free
// list; it reports whether a link existed.
func (ls *linkStore) remove(i, part int32) bool {
	prev := int32(-1)
	cur := ls.head[i]
	for cur >= 0 && ls.part[cur] != part {
		prev, cur = cur, ls.next[cur]
	}
	if cur < 0 {
		return false
	}
	if prev < 0 {
		ls.head[i] = ls.next[cur]
	} else {
		ls.next[prev] = ls.next[cur]
	}
	ls.next[cur] = ls.free
	ls.free = cur
	ls.n--
	return true
}

// clear moves slot i's whole chain onto the free list in one splice;
// it reports whether any link existed.
func (ls *linkStore) clear(i int32) bool {
	cur := ls.headOf(i)
	if cur < 0 {
		return false
	}
	for {
		ls.n--
		next := ls.next[cur]
		if next < 0 {
			ls.next[cur] = ls.free
			ls.free = ls.head[i]
			ls.head[i] = -1
			return true
		}
		cur = next
	}
}

// count returns the number of links of slot i.
func (ls *linkStore) count(i int32) int {
	n := 0
	for cur := ls.headOf(i); cur >= 0; cur = ls.next[cur] {
		n++
	}
	return n
}
