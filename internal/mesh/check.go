package mesh

import "fmt"

// CheckConsistency verifies the structural invariants of the complete
// representation and returns the first violation found:
//
//   - every downward adjacency of a live entity is live and of the
//     expected dimension;
//   - up/down symmetry: d appears in e's downward list iff e appears in
//     d's use list;
//   - face edge cycles close (consecutive edges share a vertex);
//   - every region's faces form a closed shell (each edge of the region
//     bounds exactly two of its faces);
//   - classification, when a model is attached, resolves to a model
//     entity of dimension >= the entity's dimension.
func (m *Mesh) CheckConsistency() error {
	for t := Type(0); t < TypeCount; t++ {
		td := &m.td[t]
		for i := int32(0); i < td.slots(); i++ {
			if !td.alive[i] {
				continue
			}
			e := Ent{T: t, I: i}
			if err := m.checkEntity(e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *Mesh) checkEntity(e Ent) error {
	td := &m.td[e.T]
	base := int(e.I) * td.degree
	for j := 0; j < td.degree; j++ {
		d := td.down[base+j]
		if !m.Alive(d) {
			return fmt.Errorf("mesh: %v downward[%d] = %v is not alive", e, j, d)
		}
		if d.Dim() != downTypes[e.T][j].Dim() {
			return fmt.Errorf("mesh: %v downward[%d] = %v has wrong dimension", e, j, d)
		}
		// Up/down symmetry: find the use.
		found := false
		for u := m.td[d.T].firstUse[d.I]; u.e.Ok(); u = m.useNext(u) {
			if u.e == e && int(u.slot) == j {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("mesh: %v downward[%d] = %v lacks the matching use", e, j, d)
		}
	}
	// Use lists only reference live entities pointing back at us.
	for u := m.td[e.T].firstUse[e.I]; u.e.Ok(); u = m.useNext(u) {
		if !m.Alive(u.e) {
			return fmt.Errorf("mesh: %v has use by dead entity %v", e, u.e)
		}
		utd := &m.td[u.e.T]
		if utd.down[int(u.e.I)*utd.degree+int(u.slot)] != e {
			return fmt.Errorf("mesh: %v use by %v slot %d does not point back", e, u.e, u.slot)
		}
	}
	switch e.Dim() {
	case 2:
		if err := m.checkFaceCycle(e); err != nil {
			return err
		}
	case 3:
		if err := m.checkRegionShell(e); err != nil {
			return err
		}
	}
	if m.model != nil {
		c := m.Classification(e)
		if c.Valid() {
			if m.model.Get(c) == nil {
				return fmt.Errorf("mesh: %v classified on unknown %v", e, c)
			}
			if int(c.Dim) < e.Dim() {
				return fmt.Errorf("mesh: %v (dim %d) classified on lower-dim %v", e, e.Dim(), c)
			}
		}
	}
	return nil
}

func (m *Mesh) checkFaceCycle(f Ent) error {
	edges := m.Down(f)
	n := len(edges)
	for i := 0; i < n; i++ {
		a, b := edges[i], edges[(i+1)%n]
		shared := false
		for _, v1 := range m.Down(a) {
			for _, v2 := range m.Down(b) {
				if v1 == v2 {
					shared = true
				}
			}
		}
		if !shared {
			return fmt.Errorf("mesh: face %v edges %v,%v do not share a vertex", f, a, b)
		}
	}
	return nil
}

func (m *Mesh) checkRegionShell(r Ent) error {
	faces := m.Down(r)
	edgeCount := map[Ent]int{}
	for _, f := range faces {
		for _, e := range m.Down(f) {
			edgeCount[e]++
		}
	}
	for e, n := range edgeCount {
		if n != 2 {
			return fmt.Errorf("mesh: region %v edge %v bounds %d of its faces, want 2", r, e, n)
		}
	}
	return nil
}

// Stats summarizes a part's entity counts per dimension.
type Stats struct {
	Counts   [4]int
	Shared   [4]int
	Ghosts   [4]int
	Owned    [4]int
	PartID   int32
	Boundary int // total shared entities
}

// ComputeStats tallies the part's entities.
func (m *Mesh) ComputeStats() Stats {
	s := Stats{PartID: m.part}
	for d := 0; d <= m.dim; d++ {
		for e := range m.Iter(d) {
			s.Counts[d]++
			if m.IsGhost(e) {
				s.Ghosts[d]++
				continue
			}
			if m.IsShared(e) {
				s.Shared[d]++
				s.Boundary++
			}
			if m.IsOwned(e) {
				s.Owned[d]++
			}
		}
	}
	return s
}
