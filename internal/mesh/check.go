package mesh

import "fmt"

// CheckConsistency verifies the structural invariants of the complete
// representation and returns the first violation found:
//
//   - every downward adjacency of a live entity is live and of the
//     expected dimension;
//   - up/down symmetry: d appears in e's downward list iff e appears in
//     d's use list;
//   - face edge cycles close (consecutive edges share a vertex);
//   - every region's faces form a closed shell (each edge of the region
//     bounds exactly two of its faces);
//   - classification, when a model is attached, resolves to a model
//     entity of dimension >= the entity's dimension.
//
// The up/down symmetry check is linear in the mesh size: a first sweep
// counts the downward references each entity receives, a second walks
// each use list once, verifying every use points back, appears only
// once (per-slot stamps), and that the list length matches the
// reference count. Point-back plus uniqueness plus equal cardinality
// force the two relations to coincide without the per-reference list
// scan, whose cost grows with vertex valence and made verification of
// large parts quadratic.
func (m *Mesh) CheckConsistency() error {
	// Pass 1: downward references are live and well-dimensioned; tally
	// how many references each entity receives.
	var refCount [TypeCount][]int32
	for t := Type(0); t < TypeCount; t++ {
		refCount[t] = make([]int32, m.td[t].slots())
	}
	for t := Type(0); t < TypeCount; t++ {
		td := &m.td[t]
		for i := int32(0); i < td.slots(); i++ {
			if !td.alive[i] {
				continue
			}
			e := Ent{T: t, I: i}
			base := int(i) * td.degree
			for j := 0; j < td.degree; j++ {
				d := td.down[base+j]
				if !m.Alive(d) {
					return fmt.Errorf("mesh: %v downward[%d] = %v is not alive", e, j, d)
				}
				if d.Dim() != downTypes[t][j].Dim() {
					return fmt.Errorf("mesh: %v downward[%d] = %v has wrong dimension", e, j, d)
				}
				refCount[d.T][d.I]++
			}
			if err := m.checkEntityLocal(e); err != nil {
				return err
			}
		}
	}
	// Pass 2: walk each use list once. stamp marks the (user, slot)
	// pairs seen for the current entity, so duplicates are caught; the
	// walk is cut off past the reference count, so a corrupt cyclic
	// list terminates with an error instead of hanging.
	var stamp [TypeCount][]int32
	for t := Type(0); t < TypeCount; t++ {
		stamp[t] = make([]int32, len(m.td[t].down))
		for i := range stamp[t] {
			stamp[t][i] = -1
		}
	}
	var gen int32
	for t := Type(0); t < TypeCount; t++ {
		td := &m.td[t]
		for i := int32(0); i < td.slots(); i++ {
			if !td.alive[i] {
				continue
			}
			e := Ent{T: t, I: i}
			want := refCount[t][i]
			var n int32
			for u := td.firstUse[i]; u.e.Ok(); u = m.useNext(u) {
				if !m.Alive(u.e) {
					return fmt.Errorf("mesh: %v has use by dead entity %v", e, u.e)
				}
				utd := &m.td[u.e.T]
				idx := int(u.e.I)*utd.degree + int(u.slot)
				if utd.down[idx] != e {
					return fmt.Errorf("mesh: %v use by %v slot %d does not point back", e, u.e, u.slot)
				}
				if stamp[u.e.T][idx] == gen {
					return fmt.Errorf("mesh: %v has duplicate use by %v slot %d", e, u.e, u.slot)
				}
				stamp[u.e.T][idx] = gen
				if n++; n > want {
					return fmt.Errorf("mesh: %v use list exceeds its %d downward references (corrupt or cyclic)", e, want)
				}
			}
			if n != want {
				return fmt.Errorf("mesh: %v has %d uses but %d downward references", e, n, want)
			}
			gen++
		}
	}
	return nil
}

// checkEntityLocal runs the per-entity checks that need no global
// information: face cycles, region shells and classification.
func (m *Mesh) checkEntityLocal(e Ent) error {
	switch e.Dim() {
	case 2:
		if err := m.checkFaceCycle(e); err != nil {
			return err
		}
	case 3:
		if err := m.checkRegionShell(e); err != nil {
			return err
		}
	}
	if m.model != nil {
		c := m.Classification(e)
		if c.Valid() {
			if m.model.Get(c) == nil {
				return fmt.Errorf("mesh: %v classified on unknown %v", e, c)
			}
			if int(c.Dim) < e.Dim() {
				return fmt.Errorf("mesh: %v (dim %d) classified on lower-dim %v", e, e.Dim(), c)
			}
		}
	}
	return nil
}

func (m *Mesh) checkFaceCycle(f Ent) error {
	var ebuf, abuf, bbuf [8]Ent
	edges := m.DownTo(f, ebuf[:0])
	n := len(edges)
	for i := 0; i < n; i++ {
		a, b := edges[i], edges[(i+1)%n]
		shared := false
		for _, v1 := range m.DownTo(a, abuf[:0]) {
			for _, v2 := range m.DownTo(b, bbuf[:0]) {
				if v1 == v2 {
					shared = true
				}
			}
		}
		if !shared {
			return fmt.Errorf("mesh: face %v edges %v,%v do not share a vertex", f, a, b)
		}
	}
	return nil
}

func (m *Mesh) checkRegionShell(r Ent) error {
	// A region has at most 6 faces of at most 4 edges; count in a small
	// stack buffer rather than a map, this runs for every region.
	var edges [24]Ent
	var counts [24]int
	var fbuf, ebuf [8]Ent
	n := 0
	for _, f := range m.DownTo(r, fbuf[:0]) {
		for _, e := range m.DownTo(f, ebuf[:0]) {
			found := false
			for i := 0; i < n; i++ {
				if edges[i] == e {
					counts[i]++
					found = true
					break
				}
			}
			if !found {
				edges[n] = e
				counts[n] = 1
				n++
			}
		}
	}
	for i := 0; i < n; i++ {
		if counts[i] != 2 {
			return fmt.Errorf("mesh: region %v edge %v bounds %d of its faces, want 2", r, edges[i], counts[i])
		}
	}
	return nil
}

// Stats summarizes a part's entity counts per dimension.
type Stats struct {
	Counts   [4]int
	Shared   [4]int
	Ghosts   [4]int
	Owned    [4]int
	PartID   int32
	Boundary int // total shared entities
}

// ComputeStats tallies the part's entities.
func (m *Mesh) ComputeStats() Stats {
	s := Stats{PartID: m.part}
	for d := 0; d <= m.dim; d++ {
		for e := range m.Iter(d) {
			s.Counts[d]++
			if m.IsGhost(e) {
				s.Ghosts[d]++
				continue
			}
			if m.IsShared(e) {
				s.Shared[d]++
				s.Boundary++
			}
			if m.IsOwned(e) {
				s.Owned[d]++
			}
		}
	}
	return s
}
