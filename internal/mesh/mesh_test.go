package mesh

import (
	"math"
	"testing"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/vec"
)

// newTestMesh returns a 3D mesh with no model.
func newTestMesh() *Mesh { return New(nil, 3) }

func mkVerts(m *Mesh, pts ...vec.V) []Ent {
	out := make([]Ent, len(pts))
	for i, p := range pts {
		out[i] = m.CreateVertex(gmi.NoRef, p)
	}
	return out
}

func singleTet(m *Mesh) (Ent, []Ent) {
	vs := mkVerts(m,
		vec.V{}, vec.V{X: 1}, vec.V{Y: 1}, vec.V{Z: 1})
	t := m.BuildFromVerts(Tet, vs, gmi.NoRef)
	return t, vs
}

func TestSingleTetCounts(t *testing.T) {
	m := newTestMesh()
	tet, _ := singleTet(m)
	if m.Count(0) != 4 || m.Count(1) != 6 || m.Count(2) != 4 || m.Count(3) != 1 {
		t.Fatalf("counts = %d %d %d %d", m.Count(0), m.Count(1), m.Count(2), m.Count(3))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if !m.Alive(tet) {
		t.Fatal("tet not alive")
	}
	if m.CountType(Tri) != 4 || m.CountType(Quad) != 0 {
		t.Fatal("face types wrong")
	}
}

func TestTetAdjacencies(t *testing.T) {
	m := newTestMesh()
	tet, vs := singleTet(m)
	if got := m.Adjacent(tet, 0); len(got) != 4 {
		t.Fatalf("tet verts = %v", got)
	}
	if got := m.Adjacent(tet, 1); len(got) != 6 {
		t.Fatalf("tet edges = %v", got)
	}
	if got := m.Adjacent(vs[0], 3); len(got) != 1 || got[0] != tet {
		t.Fatalf("vert regions = %v", got)
	}
	if got := m.Adjacent(vs[0], 1); len(got) != 3 {
		t.Fatalf("vert edges = %v", got)
	}
	if got := m.Adjacent(vs[0], 2); len(got) != 3 {
		t.Fatalf("vert faces = %v", got)
	}
	// Same-dim adjacency returns nil.
	if m.Adjacent(tet, 3) != nil {
		t.Fatal("same-dim adjacency should be nil")
	}
	// Down of tet: 4 tris in canonical order.
	down := m.Down(tet)
	if len(down) != 4 {
		t.Fatal("down count")
	}
	for _, f := range down {
		if f.T != Tri {
			t.Fatalf("tet face type %v", f.T)
		}
		ups := m.Up(f)
		if len(ups) != 1 || ups[0] != tet {
			t.Fatalf("face up = %v", ups)
		}
	}
}

func TestTwoTetsShareFace(t *testing.T) {
	m := newTestMesh()
	vs := mkVerts(m,
		vec.V{}, vec.V{X: 1}, vec.V{Y: 1}, vec.V{Z: 1}, vec.V{Z: -1})
	t1 := m.BuildFromVerts(Tet, []Ent{vs[0], vs[1], vs[2], vs[3]}, gmi.NoRef)
	t2 := m.BuildFromVerts(Tet, []Ent{vs[0], vs[1], vs[2], vs[4]}, gmi.NoRef)
	if m.Count(3) != 2 {
		t.Fatal("two tets expected")
	}
	// The shared face (0,1,2) must exist exactly once.
	if m.Count(2) != 7 {
		t.Fatalf("face count = %d, want 7", m.Count(2))
	}
	shared := m.FindFromVerts(Tri, []Ent{vs[0], vs[1], vs[2]})
	if !shared.Ok() {
		t.Fatal("shared face not found")
	}
	ups := m.Up(shared)
	if len(ups) != 2 {
		t.Fatalf("shared face ups = %v", ups)
	}
	// Second-order adjacency: t1's face-neighbors = {t2}.
	nb := m.BridgeAdjacent(t1, 2, 3)
	if len(nb) != 1 || nb[0] != t2 {
		t.Fatalf("bridge = %v", nb)
	}
	// Vertex-bridged neighbors too.
	nbv := m.BridgeAdjacent(t1, 0, 3)
	if len(nbv) != 1 || nbv[0] != t2 {
		t.Fatalf("vertex bridge = %v", nbv)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestVertsRecovery(t *testing.T) {
	m := newTestMesh()
	tet, vs := singleTet(m)
	got := m.Verts(tet)
	if len(got) != 4 {
		t.Fatalf("verts = %v", got)
	}
	set := map[Ent]bool{}
	for _, v := range got {
		set[v] = true
	}
	for _, v := range vs {
		if !set[v] {
			t.Fatalf("missing vertex %v", v)
		}
	}
	// Face verts come back as a cycle of the right vertices.
	f := m.Down(tet)[0]
	fv := m.Verts(f)
	if len(fv) != 3 {
		t.Fatalf("face verts = %v", fv)
	}
	// Edge verts are its down.
	e := m.Down(f)[0]
	ev := m.Verts(e)
	if len(ev) != 2 {
		t.Fatal("edge verts")
	}
	// Vertex verts is itself.
	if vv := m.Verts(vs[0]); len(vv) != 1 || vv[0] != vs[0] {
		t.Fatal("vertex verts")
	}
}

func TestHexPrismPyramidBuild(t *testing.T) {
	m := newTestMesh()
	// Unit hex.
	hv := mkVerts(m,
		vec.V{}, vec.V{X: 1}, vec.V{X: 1, Y: 1}, vec.V{Y: 1},
		vec.V{Z: 1}, vec.V{X: 1, Z: 1}, vec.V{X: 1, Y: 1, Z: 1}, vec.V{Y: 1, Z: 1})
	hex := m.BuildFromVerts(Hex, hv, gmi.NoRef)
	if m.CountType(Quad) != 6 || m.Count(1) != 12 {
		t.Fatalf("hex: %d quads, %d edges", m.CountType(Quad), m.Count(1))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	got := m.Verts(hex)
	if len(got) != 8 {
		t.Fatalf("hex verts = %d", len(got))
	}
	// The recovered bottom/top pairing must be vertical partners.
	for i := 0; i < 4; i++ {
		b := m.Coord(got[i])
		tp := m.Coord(got[i+4])
		if b.X != tp.X || b.Y != tp.Y {
			t.Fatalf("vertical partner mismatch: %v over %v", tp, b)
		}
	}
	if v := m.Measure(hex); v < 0.99 || v > 1.01 {
		t.Fatalf("hex volume = %g", v)
	}

	// Prism on its own mesh.
	m2 := newTestMesh()
	pv := mkVerts(m2,
		vec.V{}, vec.V{X: 1}, vec.V{Y: 1},
		vec.V{Z: 1}, vec.V{X: 1, Z: 1}, vec.V{Y: 1, Z: 1})
	prism := m2.BuildFromVerts(Prism, pv, gmi.NoRef)
	if m2.CountType(Tri) != 2 || m2.CountType(Quad) != 3 {
		t.Fatalf("prism faces: %d tri %d quad", m2.CountType(Tri), m2.CountType(Quad))
	}
	if err := m2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := m2.Verts(prism); len(got) != 6 {
		t.Fatalf("prism verts = %d", len(got))
	}
	if v := m2.Measure(prism); v < 0.49 || v > 0.51 {
		t.Fatalf("prism volume = %g", v)
	}

	// Pyramid.
	m3 := newTestMesh()
	yv := mkVerts(m3,
		vec.V{}, vec.V{X: 1}, vec.V{X: 1, Y: 1}, vec.V{Y: 1},
		vec.V{X: 0.5, Y: 0.5, Z: 1})
	pyr := m3.BuildFromVerts(Pyramid, yv, gmi.NoRef)
	if m3.CountType(Tri) != 4 || m3.CountType(Quad) != 1 {
		t.Fatal("pyramid faces wrong")
	}
	if err := m3.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	got = m3.Verts(pyr)
	if len(got) != 5 || got[4] != yv[4] {
		t.Fatalf("pyramid verts = %v", got)
	}
	if v := m3.Measure(pyr); v < 1.0/3-0.01 || v > 1.0/3+0.01 {
		t.Fatalf("pyramid volume = %g", v)
	}
}

func TestDestroyAndReuse(t *testing.T) {
	m := newTestMesh()
	tet, _ := singleTet(m)
	// Destroying a face with ups panics.
	f := m.Down(tet)[0]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("destroy of bounded face did not panic")
			}
		}()
		m.Destroy(f)
	}()
	m.Destroy(tet)
	if m.Count(3) != 0 {
		t.Fatal("tet not destroyed")
	}
	// Faces now have no ups and can go recursively.
	for _, fc := range []Ent{f} {
		m.DestroyRecursive(fc)
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Rebuild a tet; slots must be reused without corruption.
	before := m.Count(0)
	tet2, _ := singleTet(m)
	if !m.Alive(tet2) {
		t.Fatal("rebuild failed")
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	_ = before
}

func TestDestroyRecursiveCleansEverything(t *testing.T) {
	m := newTestMesh()
	tet, _ := singleTet(m)
	m.Destroy(tet)
	for _, f := range ds_Collect(m.Iter(2)) {
		m.DestroyRecursive(f)
	}
	if m.Count(0)+m.Count(1)+m.Count(2)+m.Count(3) != 0 {
		t.Fatalf("leftovers: %d %d %d %d", m.Count(0), m.Count(1), m.Count(2), m.Count(3))
	}
}

func ds_Collect(seq func(func(Ent) bool)) []Ent {
	var out []Ent
	seq(func(e Ent) bool { out = append(out, e); return true })
	return out
}

func TestFindByDownAndFromVerts(t *testing.T) {
	m := newTestMesh()
	tet, vs := singleTet(m)
	e := m.FindFromVerts(Edge, []Ent{vs[0], vs[1]})
	if !e.Ok() {
		t.Fatal("edge not found")
	}
	if m.FindFromVerts(Edge, []Ent{vs[0], vs[0]}).Ok() {
		t.Fatal("degenerate edge found")
	}
	f := m.FindFromVerts(Tri, []Ent{vs[2], vs[0], vs[1]}) // order-insensitive
	if !f.Ok() {
		t.Fatal("tri not found by permuted verts")
	}
	if got := m.FindFromVerts(Tet, []Ent{vs[0], vs[1], vs[2], vs[3]}); got != tet {
		t.Fatalf("tet find = %v", got)
	}
	// BuildFromVerts of an existing entity returns it.
	if got := m.BuildFromVerts(Tet, vs, gmi.NoRef); got != tet {
		t.Fatal("rebuild created a duplicate")
	}
	if m.Count(3) != 1 {
		t.Fatal("duplicate region created")
	}
}

func TestIterationOrderDeterministic(t *testing.T) {
	m := newTestMesh()
	singleTet(m)
	first := ds_Collect(m.Iter(1))
	second := ds_Collect(m.Iter(1))
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("iteration order unstable")
		}
	}
	if len(first) != 6 {
		t.Fatalf("edges = %d", len(first))
	}
}

func TestCoordsAndMeasure(t *testing.T) {
	m := newTestMesh()
	tet, vs := singleTet(m)
	if v := m.Measure(tet); v < 1.0/6-1e-12 || v > 1.0/6+1e-12 {
		t.Fatalf("tet volume = %g", v)
	}
	e := m.FindFromVerts(Edge, []Ent{vs[0], vs[1]})
	if l := m.Measure(e); l != 1 {
		t.Fatalf("edge length = %g", l)
	}
	m.SetCoord(vs[1], vec.V{X: 2})
	if l := m.Measure(e); l != 2 {
		t.Fatalf("moved edge length = %g", l)
	}
	c := m.Centroid(e)
	if c != (vec.V{X: 1}) {
		t.Fatalf("centroid = %v", c)
	}
	// Quality: unit right tet is less regular than 1 but > 0.
	q := m.MeanRatioQuality(tet)
	if q <= 0 || q > 1 {
		t.Fatalf("quality = %g", q)
	}
}

func TestTagsSetsOnEntities(t *testing.T) {
	m := newTestMesh()
	tet, vs := singleTet(m)
	w, err := m.Tags.Create("weight", ds.TagFloat, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Tags.SetFloat(w, tet, 2.5)
	if v, ok := m.Tags.GetFloat(w, tet); !ok || v != 2.5 {
		t.Fatal("tag round trip")
	}
	s := m.Set("bc-verts")
	s.Add(vs[0])
	s.Add(vs[1])
	if m.Set("bc-verts").Len() != 2 {
		t.Fatal("set persistence")
	}
	// Destroying an entity cleans its tag and set membership.
	m.Destroy(tet)
	if _, ok := m.Tags.GetFloat(w, tet); ok {
		t.Fatal("tag survived destroy")
	}
	f := m.FindFromVerts(Tri, []Ent{vs[0], vs[1], vs[2]})
	s.Add(f)
	m.DestroyRecursive(f)
	if s.Has(f) {
		t.Fatal("set member survived destroy")
	}
}

func TestClassificationStorage(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := New(model.Model, 3)
	v := m.CreateVertex(gmi.Ref{Dim: 0, Tag: 1}, vec.V{})
	if m.Classification(v) != (gmi.Ref{Dim: 0, Tag: 1}) {
		t.Fatal("classification storage")
	}
	m.SetClassification(v, gmi.Ref{Dim: 3, Tag: 1})
	if m.Classification(v).Dim != 3 {
		t.Fatal("reclassification")
	}
	// CheckConsistency validates classification resolves.
	m.SetClassification(v, gmi.Ref{Dim: 2, Tag: 99})
	if err := m.CheckConsistency(); err == nil {
		t.Fatal("bogus classification accepted")
	}
}

func TestRemoteCopiesAndResidence(t *testing.T) {
	m := newTestMesh()
	m.SetPart(1)
	_, vs := singleTet(m)
	v := vs[0]
	if m.IsShared(v) {
		t.Fatal("fresh vertex shared")
	}
	m.SetRemote(v, 0, Ent{T: Vertex, I: 7})
	m.SetRemote(v, 2, Ent{T: Vertex, I: 9})
	if !m.IsShared(v) {
		t.Fatal("not shared after SetRemote")
	}
	res := m.Residence(v)
	if res.Len() != 3 || !res.Has(0) || !res.Has(1) || !res.Has(2) {
		t.Fatalf("residence = %v", res.Values())
	}
	if got := m.RemoteParts(v); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("remote parts = %v", got)
	}
	h, ok := m.RemoteCopy(v, 2)
	if !ok || h.I != 9 {
		t.Fatal("remote copy lookup")
	}
	rs := m.Remotes(v)
	if len(rs) != 2 || rs[0].Part != 0 || rs[1].Part != 2 {
		t.Fatalf("remotes = %v", rs)
	}
	m.RemoveRemote(v, 0)
	if got := m.RemoteParts(v); len(got) != 1 {
		t.Fatalf("after remove: %v", got)
	}
	m.ClearRemotes(v)
	if m.IsShared(v) {
		t.Fatal("still shared after clear")
	}
	// Ownership.
	if !m.IsOwned(v) || m.Owner(v) != 1 {
		t.Fatal("default owner should be own part")
	}
	m.SetOwner(v, 0)
	if m.IsOwned(v) {
		t.Fatal("owner change ignored")
	}
	// Ghost flag.
	m.SetGhost(v, true)
	if !m.IsGhost(v) {
		t.Fatal("ghost flag")
	}
	m.SetRemote(v, 5, v)
	if m.IsShared(v) {
		t.Fatal("ghosts are not shared")
	}
	m.SetGhost(v, false)
	if m.IsGhost(v) {
		t.Fatal("ghost unset")
	}
}

func TestNeighborPartsAndBoundaryIter(t *testing.T) {
	m := newTestMesh()
	m.SetPart(0)
	_, vs := singleTet(m)
	m.SetRemote(vs[0], 1, vs[0])
	m.SetRemote(vs[1], 2, vs[1])
	m.SetRemote(vs[1], 1, vs[1])
	nb := m.NeighborParts(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
	if got := m.NeighborParts(1); len(got) != 0 {
		t.Fatalf("edge neighbors = %v", got)
	}
	n := 0
	for range m.PartBoundary(0) {
		n++
	}
	if n != 2 {
		t.Fatalf("boundary verts = %d", n)
	}
	stats := m.ComputeStats()
	if stats.Shared[0] != 2 || stats.Counts[0] != 4 || stats.Counts[3] != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestUpCountAndHasUp(t *testing.T) {
	m := newTestMesh()
	vs := mkVerts(m,
		vec.V{}, vec.V{X: 1}, vec.V{Y: 1}, vec.V{Z: 1}, vec.V{Z: -1})
	m.BuildFromVerts(Tet, []Ent{vs[0], vs[1], vs[2], vs[3]}, gmi.NoRef)
	m.BuildFromVerts(Tet, []Ent{vs[0], vs[1], vs[2], vs[4]}, gmi.NoRef)
	shared := m.FindFromVerts(Tri, []Ent{vs[0], vs[1], vs[2]})
	if m.UpCount(shared) != 2 {
		t.Fatalf("UpCount = %d", m.UpCount(shared))
	}
	if !m.HasUp(shared) {
		t.Fatal("HasUp")
	}
	lone := m.CreateVertex(gmi.NoRef, vec.V{X: 9})
	if m.HasUp(lone) || m.UpCount(lone) != 0 {
		t.Fatal("lone vertex has ups")
	}
}

// TestMixedElementMesh builds a mesh combining a hex, a prism, and a
// pyramid sharing faces, validating mixed-topology storage and the
// shared-face semantics of BuildFromVerts across element types.
func TestMixedElementMesh(t *testing.T) {
	m := newTestMesh()
	// A unit hex [0,1]^3 with a prism on its +y face and a pyramid on
	// its +x face.
	hv := mkVerts(m,
		vec.V{}, vec.V{X: 1}, vec.V{X: 1, Y: 1}, vec.V{Y: 1},
		vec.V{Z: 1}, vec.V{X: 1, Z: 1}, vec.V{X: 1, Y: 1, Z: 1}, vec.V{Y: 1, Z: 1})
	hex := m.BuildFromVerts(Hex, hv, gmi.NoRef)
	// Prism on face (3,2,6,7) == y=1 side: bottom tri (3,2,6), top ...
	// instead, attach a pyramid to the y=1 quad (3,2,6,7) with apex
	// out at y=2.
	apex := m.CreateVertex(gmi.NoRef, vec.V{X: 0.5, Y: 2, Z: 0.5})
	pyr := m.BuildFromVerts(Pyramid, []Ent{hv[3], hv[2], hv[6], hv[7], apex}, gmi.NoRef)
	// Prism on the x=1 quad (1,2,6,5): split that quad... a prism needs
	// two triangular faces; attach it so its quads include (1,2,6,5):
	// bottom tri (1,2,5'), top (5,6,?) -- simpler: prism with bottom
	// tri (1, 2, p) and top tri (5, 6, q).
	p := m.CreateVertex(gmi.NoRef, vec.V{X: 2, Y: 0.5, Z: 0})
	q := m.CreateVertex(gmi.NoRef, vec.V{X: 2, Y: 0.5, Z: 1})
	prism := m.BuildFromVerts(Prism, []Ent{hv[1], hv[2], p, hv[5], hv[6], q}, gmi.NoRef)
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if m.Count(3) != 3 {
		t.Fatalf("regions = %d", m.Count(3))
	}
	// The pyramid's base quad must be the hex's face (shared, 2 ups).
	base := m.Down(pyr)[0]
	if base.T != Quad || m.UpCount(base) != 2 {
		t.Fatalf("pyramid base %v has %d ups", base.T, m.UpCount(base))
	}
	// The prism shares quad (1,2,6,5) with the hex.
	shared := m.FindFromVerts(Quad, []Ent{hv[1], hv[2], hv[6], hv[5]})
	if !shared.Ok() || m.UpCount(shared) != 2 {
		t.Fatal("prism-hex quad not shared")
	}
	// Element neighbors through faces: the hex touches both.
	nb := m.BridgeAdjacent(hex, 2, 3)
	if len(nb) != 2 {
		t.Fatalf("hex face neighbors = %v", nb)
	}
	_ = prism
	// Total volume: hex 1 + pyramid (base 1, apex height 1)/3 + prism
	// (bottom tri area 0.5 x height 1).
	vol := 0.0
	for el := range m.Elements() {
		vol += m.Measure(el)
	}
	want := 1 + 1.0/3 + 0.5
	if math.Abs(vol-want) > 1e-9 {
		t.Fatalf("volume = %g, want %g", vol, want)
	}
}

// TestUseListStressReuse churns create/destroy cycles to stress the
// free lists and use-list unlink paths.
func TestUseListStressReuse(t *testing.T) {
	m := newTestMesh()
	vs := mkVerts(m,
		vec.V{}, vec.V{X: 1}, vec.V{Y: 1}, vec.V{Z: 1}, vec.V{X: 1, Y: 1, Z: 1})
	for i := 0; i < 200; i++ {
		t1 := m.BuildFromVerts(Tet, []Ent{vs[0], vs[1], vs[2], vs[3]}, gmi.NoRef)
		t2 := m.BuildFromVerts(Tet, []Ent{vs[1], vs[2], vs[3], vs[4]}, gmi.NoRef)
		if i%3 == 0 {
			m.Destroy(t1)
			m.Destroy(t2)
			// Remove orphaned faces/edges but keep the vertices.
			for d := 2; d >= 1; d-- {
				var dead []Ent
				for e := range m.Iter(d) {
					if !m.HasUp(e) {
						dead = append(dead, e)
					}
				}
				for _, e := range dead {
					m.Destroy(e)
				}
			}
		} else {
			m.Destroy(t2)
			m.Destroy(t1)
			for d := 2; d >= 1; d-- {
				var dead []Ent
				for e := range m.Iter(d) {
					if !m.HasUp(e) {
						dead = append(dead, e)
					}
				}
				for _, e := range dead {
					m.Destroy(e)
				}
			}
		}
		if i%50 == 0 {
			if err := m.CheckConsistency(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
	if m.Count(3) != 0 || m.Count(0) != 5 {
		t.Fatalf("counts after churn: %d regions %d verts", m.Count(3), m.Count(0))
	}
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessorsAndSets(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := New(model.Model, 3)
	if m.Model() != model.Model || m.Dim() != 3 {
		t.Fatal("Model/Dim accessors")
	}
	m.SetPart(7)
	if m.Part() != 7 {
		t.Fatal("Part accessor")
	}
	created := 0
	destroyed := 0
	m.OnCreate(func(Ent) { created++ })
	m.OnDestroy(func(Ent) { destroyed++ })
	tet, _ := singleTet(m)
	if created != 4+6+4+1 {
		t.Fatalf("created hook fired %d times", created)
	}
	m.Destroy(tet)
	if destroyed != 1 {
		t.Fatalf("destroyed hook fired %d times", destroyed)
	}
	// Sets bookkeeping.
	m.Set("a").Add(tet)
	m.Set("b")
	names := m.SetNames()
	if len(names) != 2 {
		t.Fatalf("SetNames = %v", names)
	}
	m.DeleteSet("a")
	if len(m.SetNames()) != 1 {
		t.Fatal("DeleteSet failed")
	}
	// Type helpers.
	if len(TypesOfDim(3)) != 4 || TypesOfDim(0)[0] != Vertex {
		t.Fatal("TypesOfDim")
	}
	if Tet.String() != "tet" || Type(99).String() == "" {
		t.Fatal("Type.String")
	}
	if NilEnt.String() != "M(nil)" {
		t.Fatalf("NilEnt string %q", NilEnt.String())
	}
	if (Ent{T: Tet, I: 3}).Dim() != 3 {
		t.Fatal("Ent.Dim")
	}
}

func TestMeasureAllTypesAndQuality(t *testing.T) {
	m := newTestMesh()
	v := m.CreateVertex(gmi.NoRef, vec.V{})
	if m.Measure(v) != 0 {
		t.Fatal("vertex measure")
	}
	tet, vs := singleTet(m)
	e := m.FindFromVerts(Edge, []Ent{vs[0], vs[1]})
	if m.EdgeLength(e) != m.Measure(e) {
		t.Fatal("EdgeLength alias")
	}
	f := m.Down(tet)[0]
	if m.Measure(f) <= 0 {
		t.Fatal("tri area")
	}
	// Quad measure.
	m2 := newTestMesh()
	qv := mkVerts(m2, vec.V{}, vec.V{X: 2}, vec.V{X: 2, Y: 1}, vec.V{Y: 1})
	q := m2.BuildFromVerts(Quad, qv, gmi.NoRef)
	if a := m2.Measure(q); math.Abs(a-2) > 1e-12 {
		t.Fatalf("quad area = %g", a)
	}
	if m2.MeanRatioQuality(q) != 1 {
		t.Fatal("non-simplex quality should be 1")
	}
	// Equilateral triangle has quality ~1; a sliver ~0.
	m3 := New(nil, 2)
	a := m3.CreateVertex(gmi.NoRef, vec.V{})
	b := m3.CreateVertex(gmi.NoRef, vec.V{X: 1})
	c := m3.CreateVertex(gmi.NoRef, vec.V{X: 0.5, Y: math.Sqrt(3) / 2})
	tri := m3.BuildFromVerts(Tri, []Ent{a, b, c}, gmi.NoRef)
	if q := m3.MeanRatioQuality(tri); math.Abs(q-1) > 1e-9 {
		t.Fatalf("equilateral quality = %g", q)
	}
	d := m3.CreateVertex(gmi.NoRef, vec.V{X: 0.5, Y: 1e-6})
	sliver := m3.BuildFromVerts(Tri, []Ent{a, b, d}, gmi.NoRef)
	if q := m3.MeanRatioQuality(sliver); q > 0.01 {
		t.Fatalf("sliver quality = %g", q)
	}
	// Regular tet quality ~1.
	m4 := newTestMesh()
	rt := mkVerts(m4,
		vec.V{X: 1, Y: 1, Z: 1}, vec.V{X: 1, Y: -1, Z: -1},
		vec.V{X: -1, Y: 1, Z: -1}, vec.V{X: -1, Y: -1, Z: 1})
	reg := m4.BuildFromVerts(Tet, rt, gmi.NoRef)
	if q := m4.MeanRatioQuality(reg); math.Abs(q-1) > 1e-9 {
		t.Fatalf("regular tet quality = %g", q)
	}
	// Coord panics on non-vertices.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Coord of edge did not panic")
			}
		}()
		m.Coord(e)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetCoord of edge did not panic")
			}
		}()
		m.SetCoord(e, vec.V{})
	}()
}
