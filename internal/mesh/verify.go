package mesh

import (
	"fmt"

	"github.com/fastmath/pumi-go/internal/pcu"
)

// VerifyParallel is the distributed-mesh verifier — PUMI's verify() —
// run directly on the mesh layer (collective; every rank must call it
// with its local parts, however many it holds). It checks, across all
// parts of the distributed mesh:
//
//   - every part passes CheckConsistency;
//   - elements are never shared, and ghosts carry no remote-copy links;
//   - remote-copy symmetry: if part A records a copy of e on part B
//     with handle h, then B holds a live, non-ghost h whose remotes
//     point back at (A, e);
//   - owner agreement: both sides of every link record the same owning
//     part, and the owner lies inside the entity's residence set;
//   - part-boundary classification: a shared entity bounds at least one
//     higher-dimension entity on its part (no orphaned boundary
//     entities), links never name the entity's own part, and the
//     downward closure of a shared entity is shared with at least the
//     same parts (an edge on the boundary with q implies its vertices
//     are too).
//
// The symmetry checks neighbor-exchange the remote-copy links, so the
// cost is one sparse communication phase plus a linear sweep; it is
// meant to run at the end of every parallel test path and after bulk
// operations (migration, ghosting, adaptation) while debugging.
func VerifyParallel(c *pcu.Ctx, ms ...*Mesh) error {
	// Part layout: every rank announces the part ids it holds, so links
	// can be routed rank-to-rank even with many parts per rank.
	ids := make([]int32, len(ms))
	local := map[int32]*Mesh{}
	for i, m := range ms {
		ids[i] = m.Part()
		if local[m.Part()] != nil {
			panic(fmt.Sprintf("mesh: VerifyParallel passed duplicate part %d", m.Part()))
		}
		local[m.Part()] = m
	}
	layout := pcu.Allgather(c, ids)
	rankOf := map[int32]int{}
	for r, parts := range layout {
		for _, p := range parts {
			rankOf[p] = r
		}
	}

	var firstErr error
	record := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}

	// Local sweeps.
	for _, m := range ms {
		record(m.CheckConsistency())
		for el := range m.Elements() {
			if m.IsShared(el) {
				record(fmt.Errorf("mesh: element %v on part %d is shared", el, m.Part()))
				break
			}
		}
		for d := 0; d < m.Dim(); d++ {
			for e := range m.Iter(d) {
				if m.IsGhost(e) {
					if m.HasRemotes(e) {
						record(fmt.Errorf("mesh: ghost %v on part %d has remote-copy links", e, m.Part()))
					}
					continue
				}
				rcs := m.Remotes(e)
				if len(rcs) == 0 {
					continue
				}
				if !m.HasUp(e) {
					record(fmt.Errorf("mesh: shared %v on part %d bounds nothing (orphan boundary entity)", e, m.Part()))
				}
				if !m.Residence(e).Has(m.Owner(e)) {
					record(fmt.Errorf("mesh: owner %d of shared %v on part %d outside residence set",
						m.Owner(e), e, m.Part()))
				}
				for _, rc := range rcs {
					if rc.Part == m.Part() {
						record(fmt.Errorf("mesh: %v on part %d lists its own part as a remote", e, m.Part()))
					}
					if _, ok := rankOf[rc.Part]; !ok {
						record(fmt.Errorf("mesh: %v on part %d linked to unknown part %d", e, m.Part(), rc.Part))
					}
					// Closure: everything bounding a shared entity is
					// shared with at least the same parts.
					for _, de := range m.Down(e) {
						if _, ok := m.RemoteCopy(de, rc.Part); !ok {
							record(fmt.Errorf("mesh: %v shared with part %d but its bounding %v is not",
								e, rc.Part, de))
						}
					}
				}
			}
		}
	}

	// Neighbor exchange: each side sends every link it holds; the
	// receiver confirms liveness, the back link and the owner. Because
	// both directions send, a one-sided link is always caught.
	for _, m := range ms {
		for d := 0; d < m.Dim(); d++ {
			for e := range m.PartBoundary(d) {
				owner := m.Owner(e)
				for _, rc := range m.Remotes(e) {
					r, ok := rankOf[rc.Part]
					if !ok {
						continue // already recorded above
					}
					b := c.To(r)
					b.Int32(rc.Part)
					b.Int32(m.Part())
					b.Byte(byte(e.T))
					b.Int32(e.I)
					b.Byte(byte(rc.Ent.T))
					b.Int32(rc.Ent.I)
					b.Int32(owner)
				}
			}
		}
	}
	for _, msg := range c.Exchange() {
		r := msg.Data
		for !r.Empty() {
			dest := r.Int32()
			src := r.Int32()
			theirs := Ent{T: Type(r.Byte()), I: r.Int32()}
			mine := Ent{T: Type(r.Byte()), I: r.Int32()}
			owner := r.Int32()
			m := local[dest]
			if m == nil {
				record(fmt.Errorf("mesh: link for part %d routed to rank %d which does not hold it", dest, c.Rank()))
				continue
			}
			if !m.Alive(mine) {
				record(fmt.Errorf("mesh: part %d claims dead copy %v on part %d", src, mine, dest))
				continue
			}
			if m.IsGhost(mine) {
				record(fmt.Errorf("mesh: part %d claims ghost %v on part %d as a remote copy", src, mine, dest))
				continue
			}
			back, ok := m.RemoteCopy(mine, src)
			if !ok {
				record(fmt.Errorf("mesh: part %d lacks the back link to part %d for %v", dest, src, mine))
			} else if back != theirs {
				record(fmt.Errorf("mesh: asymmetric link on part %d: %v points to %v on part %d, peer says %v",
					dest, mine, back, src, theirs))
			}
			if m.Owner(mine) != owner {
				record(fmt.Errorf("mesh: owner disagreement for %v on part %d: local %d, part %d says %d",
					mine, dest, m.Owner(mine), src, owner))
			}
		}
	}

	// Every rank learns whether any rank failed, so collective callers
	// can assert a clean mesh on all ranks at once.
	anyErr := pcu.Allreduce(c, firstErr != nil, func(a, b bool) bool { return a || b })
	if firstErr == nil && anyErr {
		return fmt.Errorf("mesh: a peer rank found parallel mesh inconsistencies")
	}
	return firstErr
}
