package partition

import (
	"fmt"
	"math"
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// xorshift is a tiny deterministic PRNG so the randomized migration
// storm is reproducible without math/rand seeding ceremony.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// TestRandomMigrationStorm subjects the distributed mesh to rounds of
// randomized migration plans — every part scatters random subsets of
// its elements to random destinations — and asserts after every round
// that all distributed invariants hold and nothing is lost: global
// entity counts per dimension, total element volume, and boundary
// classification counts stay exactly constant.
func TestRandomMigrationStorm(t *testing.T) {
	const ranks, k, rounds = 4, 2, 8
	model := gmi.Box(2, 1, 1)
	err := pcu.Run(ranks, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 4, 3, 3)
		}
		dm := Adopt(ctx, model.Model, 3, serial, k)
		nparts := int32(dm.NParts())
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			i := 0
			for el := range serial.Elements() {
				assign[el] = int32(i) % nparts
				i++
			}
		}
		Migrate(dm, PlansFromAssignment(dm, assign))

		wantCounts := [4]int64{}
		for d := 0; d <= 3; d++ {
			wantCounts[d] = GlobalCount(dm, d)
		}
		wantVol := globalVolume(dm)
		wantBnd := globalBoundaryFaces(dm)

		rng := xorshift(0x9e3779b97f4a7c15 ^ uint64(ctx.Rank()+1))
		for round := 0; round < rounds; round++ {
			plans := make([]Plan, len(dm.Parts))
			for i, part := range dm.Parts {
				plans[i] = Plan{}
				for el := range part.M.Elements() {
					r := rng.next()
					if r%100 < 30 { // ~30% of elements move
						plans[i][el] = int32(r % uint64(nparts))
					}
				}
			}
			Migrate(dm, plans)
			if err := Verify(dm); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
			for d := 0; d <= 3; d++ {
				if got := GlobalCount(dm, d); got != wantCounts[d] {
					return fmt.Errorf("round %d dim %d: count %d, want %d", round, d, got, wantCounts[d])
				}
			}
			if got := globalVolume(dm); math.Abs(got-wantVol) > 1e-9 {
				return fmt.Errorf("round %d: volume %g, want %g", round, got, wantVol)
			}
			if got := globalBoundaryFaces(dm); got != wantBnd {
				return fmt.Errorf("round %d: boundary faces %d, want %d", round, got, wantBnd)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// globalVolume sums owned element volumes over all ranks.
func globalVolume(dm *DMesh) float64 {
	v := 0.0
	for _, part := range dm.Parts {
		m := part.M
		for el := range m.Elements() {
			if m.IsOwned(el) && !m.IsGhost(el) {
				v += m.Measure(el)
			}
		}
	}
	return pcu.SumFloat64(dm.Ctx, v)
}

// globalBoundaryFaces counts owned model-boundary-classified faces.
func globalBoundaryFaces(dm *DMesh) int64 {
	var n int64
	for _, part := range dm.Parts {
		m := part.M
		for f := range m.Iter(2) {
			if m.IsOwned(f) && !m.IsGhost(f) && m.Classification(f).Dim == 2 {
				n++
			}
		}
	}
	return pcu.SumInt64(dm.Ctx, n)
}

// TestRandomMigrationWithGhostCycles interleaves random migration with
// ghost build/remove cycles.
func TestRandomMigrationWithGhostCycles(t *testing.T) {
	model := gmi.Box(2, 1, 1)
	err := pcu.Run(3, func(ctx *pcu.Ctx) error {
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 4, 2, 2)
		}
		dm := Adopt(ctx, model.Model, 3, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			i := 0
			for el := range serial.Elements() {
				assign[el] = int32(i % 3)
				i++
			}
		}
		Migrate(dm, PlansFromAssignment(dm, assign))
		want := GlobalCount(dm, 3)

		rng := xorshift(42 + uint64(ctx.Rank()))
		for round := 0; round < 5; round++ {
			Ghost(dm, round%2*2, 1) // alternate vertex- and face-bridged
			RemoveGhosts(dm)
			plans := make([]Plan, len(dm.Parts))
			for i, part := range dm.Parts {
				plans[i] = Plan{}
				for el := range part.M.Elements() {
					if rng.next()%4 == 0 {
						plans[i][el] = int32(rng.next() % 3)
					}
				}
			}
			Migrate(dm, plans)
			if err := Verify(dm); err != nil {
				return fmt.Errorf("round %d: %w", round, err)
			}
			if got := GlobalCount(dm, 3); got != want {
				return fmt.Errorf("round %d: %d elements, want %d", round, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
