package partition

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// abortSetup distributes a small box across 2 single-rank nodes (so all
// cross-rank traffic is framed off-node) and returns the DMesh plus a
// plan moving every element of part 0 to part 1 — guaranteeing both the
// residence staging and the closure shipment send off-node payloads.
func abortSetup(ctx *pcu.Ctx) (*DMesh, []Plan) {
	model := gmi.Box(4, 1, 1)
	dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
		return meshgen.Box3D(model, 4, 1, 1)
	}, 1, 4)
	plans := make([]Plan, len(dm.Parts))
	if ctx.Rank() == 0 {
		plans[0] = Plan{}
		for el := range dm.Parts[0].M.Elements() {
			plans[0][el] = 1
		}
	}
	return dm, plans
}

func entCounts(dm *DMesh) [4]int {
	var out [4]int
	for d := 0; d <= dm.Dim; d++ {
		out[d] = dm.Parts[0].M.Count(d)
	}
	return out
}

// TestTryMigrateAbortLeavesSourceIntact injects wire faults into the
// exchanges inside TryMigrate — first into residence staging, then into
// closure shipment — and asserts the migration aborts with
// ErrMigrateAborted while the source DMesh still passes Verify with its
// entity counts unchanged.
func TestTryMigrateAbortLeavesSourceIntact(t *testing.T) {
	topo := hwtopo.Cluster(2, 1)

	// Probe: the workload is deterministic, so one fault-free run tells
	// us each rank's op count right before TryMigrate; fault plans can
	// then target exact stages inside it.
	baseOps := make([]int64, 2)
	if _, err := pcu.RunOpt(2, pcu.Options{Topo: topo}, func(ctx *pcu.Ctx) error {
		abortSetup(ctx)
		baseOps[ctx.Rank()] = ctx.Ops()
		return nil
	}); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	if baseOps[0] != baseOps[1] {
		t.Fatalf("op counts diverge across ranks: %v", baseOps)
	}
	base := baseOps[0]

	// TryMigrate's blocking-op sequence after the probe point:
	// +1 residence round one, +2 residence round two, +3 abort vote,
	// +4 closure shipment, +5 abort vote, +6 commit restitch.
	//
	// The faults are Sticky: the transient-fault retry layer repairs a
	// one-shot wire fault before TryMigrate ever sees it, so forcing the
	// abort path requires damage that survives the retransmit budget.
	cases := []struct {
		name  string
		fault pcu.Fault
	}{
		{"corrupt residence staging", pcu.Fault{Rank: 0, Op: base + 1, Kind: pcu.FaultCorrupt, Sticky: true}},
		{"truncate residence staging", pcu.Fault{Rank: 0, Op: base + 1, Kind: pcu.FaultTruncate, Sticky: true}},
		{"corrupt closure shipment", pcu.Fault{Rank: 0, Op: base + 4, Kind: pcu.FaultCorrupt, Sticky: true}},
		{"truncate closure shipment", pcu.Fault{Rank: 0, Op: base + 4, Kind: pcu.FaultTruncate, Sticky: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := &pcu.FaultPlan{Faults: []pcu.Fault{tc.fault}}
			_, err := pcu.RunOpt(2, pcu.Options{
				Topo:         topo,
				Faults:       plan,
				RetryBackoff: -1,
				StallTimeout: 30 * time.Second,
			}, func(ctx *pcu.Ctx) error {
				dm, plans := abortSetup(ctx)
				before := entCounts(dm)
				err := TryMigrate(dm, plans)
				if !errors.Is(err, ErrMigrateAborted) {
					return fmt.Errorf("rank %d: want ErrMigrateAborted, got %v", ctx.Rank(), err)
				}
				if errors.Is(err, pcu.ErrPeerFailed) {
					return fmt.Errorf("rank %d: abort escalated to teardown: %v", ctx.Rank(), err)
				}
				if got := entCounts(dm); got != before {
					return fmt.Errorf("rank %d: entity counts changed across abort: %v -> %v",
						ctx.Rank(), before, got)
				}
				if verr := Verify(dm); verr != nil {
					return fmt.Errorf("rank %d: source DMesh broken after abort: %v", ctx.Rank(), verr)
				}
				// The aborted migration must be retryable: a clean
				// second attempt completes and verifies.
				_, plans2 := abortSetup2(dm, ctx)
				if err := TryMigrate(dm, plans2); err != nil {
					return fmt.Errorf("rank %d: retry after abort failed: %v", ctx.Rank(), err)
				}
				return Verify(dm)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// abortSetup2 rebuilds the move-everything plan against the current
// (post-abort) state of dm.
func abortSetup2(dm *DMesh, ctx *pcu.Ctx) (*DMesh, []Plan) {
	plans := make([]Plan, len(dm.Parts))
	if ctx.Rank() == 0 {
		plans[0] = Plan{}
		for el := range dm.Parts[0].M.Elements() {
			plans[0][el] = 1
		}
	}
	return dm, plans
}

// TestTryMigrateSurvivesTransientFault: a non-sticky wire fault inside
// the migration is repaired by the retransmit layer before TryMigrate's
// validation sees it, so the migration completes instead of aborting.
func TestTryMigrateSurvivesTransientFault(t *testing.T) {
	topo := hwtopo.Cluster(2, 1)
	plan := &pcu.FaultPlan{Faults: []pcu.Fault{{Rank: 0, Op: 10, Kind: pcu.FaultCorrupt}}}
	st, err := pcu.RunOpt(2, pcu.Options{
		Topo:         topo,
		Faults:       plan,
		StallTimeout: 30 * time.Second,
	}, func(ctx *pcu.Ctx) error {
		dm, plans := abortSetup(ctx)
		if err := TryMigrate(dm, plans); err != nil {
			return fmt.Errorf("rank %d: transient fault should be retried away: %w", ctx.Rank(), err)
		}
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Fatal("fault plan injected no recoverable wire damage; move the op index onto an off-node exchange")
	}
}

// TestTryMigrateCleanPathUnchanged guards the refactor: a fault-free
// TryMigrate behaves exactly like the old Migrate.
func TestTryMigrateCleanPathUnchanged(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		dm, plans := abortSetup(ctx)
		if err := TryMigrate(dm, plans); err != nil {
			return err
		}
		//pumi-vet:ignore collseq // assertion failure ends the run; poisoning unblocks peers
		if n := dm.Parts[0].M.Count(dm.Dim); ctx.Rank() == 0 && n != 0 {
			return fmt.Errorf("part 0 still holds %d elements after moving all away", n)
		}
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}
