package partition

import (
	"testing"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/telemetry"
)

// TestPlannedExchangeMetered checks a metered run feeds the partition
// layer's live series: plan compilation and execution latencies from
// the planned boundary exchange, and migration durations from the
// initial distribution.
func TestPlannedExchangeMetered(t *testing.T) {
	reg := telemetry.NewRegistry()
	const ranks = 4
	_, err := pcu.RunOpt(ranks, pcu.Options{Metrics: reg}, func(ctx *pcu.Ctx) error {
		dm := planWorld(ctx)
		round := func() {
			SyncShared(dm, []int{0},
				func(p *Part, e mesh.Ent, b *pcu.Buffer) { b.Float64(float64(p.Gid(e))) },
				func(p *Part, e mesh.Ent, r *pcu.Reader) { _ = r.Float64() })
		}
		round()
		round() // second round hits the cached plan: exec without compile
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Histogram("partition.plan.exec.ns").Count(); n < ranks*2 {
		t.Errorf("plan exec observations = %d, want >= %d", n, ranks*2)
	}
	if reg.Histogram("partition.plan.compile.ns").Count() == 0 {
		t.Error("no plan compile durations recorded")
	}
	if reg.Histogram("partition.migrate.ns").Count() == 0 {
		t.Error("no migration durations recorded")
	}
}
