//go:build race

package partition

// raceEnabled gates allocation-regression tests: the race detector's
// instrumentation changes allocation behavior, so counts are only
// meaningful in the plain test lane.
const raceEnabled = true
