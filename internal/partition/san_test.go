package partition

import (
	"errors"
	"fmt"
	"testing"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
)

// TestSanitizedProtocols: distribution, migration, ghosting, tag sync
// and ghost removal all run clean under the full sanitizer — every
// non-owner write the protocols perform goes through a sanctioned
// window, and the collective schedule cross-checks at every sync point.
func TestSanitizedProtocols(t *testing.T) {
	san.Enable()
	defer san.Disable()
	run := func() uint64 {
		stats, err := pcu.RunOpt(2, pcu.Options{Sanitize: true}, func(ctx *pcu.Ctx) error {
			model := gmi.Box(4, 1, 1)
			dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
				return meshgen.Box3D(model, 4, 2, 2)
			}, 2, 4)
			if err := Verify(dm); err != nil {
				return err
			}
			for _, part := range dm.Parts {
				m := part.M
				tag := m.Tags.Find("val")
				if tag == nil {
					var err error
					tag, err = m.Tags.Create("val", ds.TagFloat, 0)
					if err != nil {
						return err
					}
				}
				for el := range m.Elements() {
					m.Tags.SetFloat(tag, el, float64(m.Part())+1)
				}
			}
			Ghost(dm, 0, 1)
			SyncGhostFloatTag(dm, "val")
			RemoveGhosts(dm)
			if err := Verify(dm); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			t.Fatalf("sanitized protocol run failed: %v", err)
		}
		return stats.SanHash
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("sanitized runs not reproducible: %#x vs %#x", a, b)
	}
}

// TestSanitizedOwnershipViolation: a direct write to a shared entity
// this part does not own — outside any sanctioned protocol window —
// fails the run with a *san.OwnershipError naming op, entity and the
// offending goroutine.
func TestSanitizedOwnershipViolation(t *testing.T) {
	san.Enable()
	defer san.Disable()
	_, err := pcu.RunOpt(2, pcu.Options{Sanitize: true}, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 1, 1)
		}, 1, 2)
		for _, part := range dm.Parts {
			m := part.M
			for v := range m.PartBoundary(0) {
				if !m.IsOwned(v) {
					m.SetCoord(v, m.Coord(v)) // illegal: owner-only
				}
			}
		}
		ctx.Barrier()
		return nil
	})
	if err == nil {
		t.Fatal("non-owner write passed the sanitizer")
	}
	if !errors.Is(err, san.ErrOwnership) {
		t.Fatalf("error does not match san.ErrOwnership: %v", err)
	}
	var oe *san.OwnershipError
	if !errors.As(err, &oe) {
		t.Fatalf("error carries no *san.OwnershipError: %v", err)
	}
	if oe.Kind != "owner" || oe.Op != "coord" || oe.GID == 0 {
		t.Fatalf("violation not diagnosed: %+v", oe)
	}
}

// TestSanitizedCheckpointAssemble: saving and reassembling a
// distributed mesh is clean under the sanitizer (the restitch step
// writes remote links on entities owned elsewhere through a sanctioned
// window).
func TestSanitizedCheckpointAssemble(t *testing.T) {
	san.Enable()
	defer san.Disable()
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 1, 1)
		}, 1, 2)
		// Rebuild the remote links the way a checkpoint restore does:
		// record residence, clear links, reassemble by gid.
		res := make([]map[mesh.Ent][]int32, len(dm.Parts))
		for i, part := range dm.Parts {
			m := part.M
			res[i] = map[mesh.Ent][]int32{}
			for d := 0; d <= dm.Dim; d++ {
				for e := range m.PartBoundary(d) {
					res[i][e] = m.Residence(e).Values()
				}
			}
			resume := m.SuspendGuard()
			for d := 0; d <= dm.Dim; d++ {
				for e := range m.Iter(d) {
					m.ClearRemotes(e)
				}
			}
			resume()
		}
		dm2, err := Assemble(ctx, dm.Model, dm.Dim, dm.K, dm.Parts, res)
		if err != nil {
			return err
		}
		if err := Verify(dm2); err != nil {
			return fmt.Errorf("after reassembly: %w", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
