package partition

import (
	"fmt"
	"math"
	"testing"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// distributeByX builds a distributed mesh on nranks*k parts from a
// serial generator run on rank 0, assigning elements to parts by
// equal-width slabs along x.
func distributeByX(ctx *pcu.Ctx, model *gmi.Model, gen func() *mesh.Mesh, k int, xmax float64) *DMesh {
	var serial *mesh.Mesh
	if ctx.Rank() == 0 {
		serial = gen()
	}
	dim := 3
	if model.Dim == 2 {
		dim = 2
	}
	dm := Adopt(ctx, model, dim, serial, k)
	nparts := dm.NParts()
	var assign map[mesh.Ent]int32
	if ctx.Rank() == 0 {
		assign = map[mesh.Ent]int32{}
		for el := range serial.Elements() {
			c := serial.Centroid(el)
			p := int32(c.X / xmax * float64(nparts))
			if int(p) >= nparts {
				p = int32(nparts - 1)
			}
			assign[el] = p
		}
	}
	Migrate(dm, PlansFromAssignment(dm, assign))
	return dm
}

func TestDistributeBox(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 4, 2, 2)
		}, 1, 4)
		if err := Verify(dm); err != nil {
			return err
		}
		wantT := int64(6 * 4 * 2 * 2)
		if got := GlobalCount(dm, 3); got != wantT {
			return fmt.Errorf("global tets = %d, want %d", got, wantT)
		}
		if got := GlobalCount(dm, 0); got != int64(5*3*3) {
			return fmt.Errorf("global verts = %d", got)
		}
		// Every part holds a quarter of the elements (slab split of a
		// uniform grid).
		counts := GatherCounts(dm, 3)
		for p, c := range counts {
			if c != int64(wantT)/4 {
				return fmt.Errorf("part %d has %d tets", p, c)
			}
		}
		mean, imb := Imbalance(counts)
		if math.Abs(mean-float64(wantT)/4) > 1e-9 || math.Abs(imb-1) > 1e-9 {
			return fmt.Errorf("mean=%g imb=%g", mean, imb)
		}
		// Each interior slab boundary plane has shared vertices.
		if tr := GatherBoundaryTraffic(dm, 0); tr.SharedTotal == 0 {
			return fmt.Errorf("no shared vertices after distribution")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrationPreservesClassification(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 2, 2)
		}, 1, 2)
		// Count boundary-classified faces globally; must match serial.
		var bnd int64
		for _, part := range dm.Parts {
			m := part.M
			for f := range m.Iter(2) {
				if m.IsOwned(f) && m.Classification(f).Dim == 2 {
					bnd++
				}
			}
		}
		total := pcu.SumInt64(ctx, bnd)
		want := int64(2 * 6 * (2 * 2)) // 2 tris per boundary grid quad, 6 sides of 2x2
		if total != want {
			return fmt.Errorf("boundary faces = %d, want %d", total, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiplePartsPerRank(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 4, 2, 2)
		}, 3, 4) // 6 parts on 2 ranks
		if dm.NParts() != 6 {
			return fmt.Errorf("nparts = %d", dm.NParts())
		}
		if err := Verify(dm); err != nil {
			return err
		}
		if got := GlobalCount(dm, 3); got != 96 {
			return fmt.Errorf("tets = %d", got)
		}
		counts := GatherCounts(dm, 3)
		var nonEmpty int
		for _, c := range counts {
			if c > 0 {
				nonEmpty++
			}
		}
		if nonEmpty != 6 {
			return fmt.Errorf("%d non-empty parts", nonEmpty)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSecondMigrationAndReturn(t *testing.T) {
	err := pcu.Run(3, func(ctx *pcu.Ctx) error {
		model := gmi.Box(3, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 3, 2, 2)
		}, 1, 3)
		if err := Verify(dm); err != nil {
			return fmt.Errorf("after distribute: %w", err)
		}
		// Move everything to part 0 again.
		plans := make([]Plan, len(dm.Parts))
		for i, part := range dm.Parts {
			plans[i] = Plan{}
			for el := range part.M.Elements() {
				plans[i][el] = 0
			}
		}
		Migrate(dm, plans)
		if err := Verify(dm); err != nil {
			return fmt.Errorf("after regather: %w", err)
		}
		counts := GatherCounts(dm, 3)
		if counts[0] != 72 || counts[1] != 0 || counts[2] != 0 {
			return fmt.Errorf("counts = %v", counts)
		}
		// Part 0 must hold a complete consistent serial mesh again:
		// no shared entities anywhere.
		for _, part := range dm.Parts {
			m := part.M
			for d := 0; d < 3; d++ {
				for range m.PartBoundary(d) {
					return fmt.Errorf("part %d still has boundary entities", m.Part())
				}
			}
		}
		if got := GlobalCount(dm, 0); got != int64(4*3*3) {
			return fmt.Errorf("verts = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPartitionModelFig34(t *testing.T) {
	// Reproduce the paper's Fig 3/4 structure: a 2D mesh on 3 parts
	// where one vertex is shared by all three parts (classifying on a
	// partition vertex P^0) and other boundary entities by pairs of
	// parts (partition edges P^1).
	err := pcu.Run(3, func(ctx *pcu.Ctx) error {
		model := gmi.Rect(2, 2)
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Rect2D(model, 2, 2)
		}
		dm := Adopt(ctx, model.Model, 2, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			for el := range serial.Elements() {
				c := serial.Centroid(el)
				switch {
				case c.X < 1 && c.Y < 1:
					assign[el] = 0
				case c.X >= 1 && c.Y < 1:
					assign[el] = 1
				default:
					assign[el] = 2
				}
			}
		}
		Migrate(dm, PlansFromAssignment(dm, assign))
		if err := Verify(dm); err != nil {
			return err
		}
		pm := BuildPtnModel(dm)
		var p0, p1, p2 int
		for _, pe := range pm.Ents {
			switch pe.Dim {
			case 0:
				p0++
				if pe.Residence.Len() != 3 {
					return fmt.Errorf("partition vertex with residence %v", pe.Residence.Values())
				}
			case 1:
				p1++
				if pe.Residence.Len() != 2 {
					return fmt.Errorf("partition edge with residence %v", pe.Residence.Values())
				}
			case 2:
				p2++
			}
		}
		// One central vertex shared by parts {0,1,2}; pairs {0,1},
		// {1,2}, {0,2}... the L-shaped part 2 touches both 0 and 1.
		if p0 != 1 {
			return fmt.Errorf("partition vertices = %d, want 1", p0)
		}
		if p1 < 2 {
			return fmt.Errorf("partition edges = %d", p1)
		}
		if p2 != 3 {
			return fmt.Errorf("partition faces = %d, want 3 (one per part interior)", p2)
		}
		// The partition vertex's owner is its minimum residence part.
		for _, pe := range pm.Ents {
			if pe.Owner != pe.Residence.Min() {
				return fmt.Errorf("owner %d not min of %v", pe.Owner, pe.Residence.Values())
			}
		}
		// The central mesh vertex classifies on the partition vertex.
		for _, part := range dm.Parts {
			m := part.M
			for v := range m.PartBoundary(0) {
				pe := pm.Classify(m, v)
				if pe == nil {
					return fmt.Errorf("vertex %v unclassified in partition model", v)
				}
				if m.Residence(v).Len() == 3 && pe.Dim != 0 {
					return fmt.Errorf("3-part vertex classified on P^%d", pe.Dim)
				}
				if m.Residence(v).Len() == 2 && pe.Dim != 1 {
					return fmt.Errorf("2-part vertex classified on P^%d", pe.Dim)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOwnershipUnique(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 4, 2, 2)
		}, 1, 4)
		// Sum of owned counts must equal global unique counts; global
		// count already counts owners only, so cross-check against the
		// serial totals.
		if GlobalCount(dm, 0) != 45 || GlobalCount(dm, 1) != 45+98+44 {
			// V=5*3*3=45. E from Euler: V-E+F-T=1.
			v, e, f, tt := GlobalCount(dm, 0), GlobalCount(dm, 1), GlobalCount(dm, 2), GlobalCount(dm, 3)
			if v-e+f-tt != 1 {
				return fmt.Errorf("global Euler broken: %d %d %d %d", v, e, f, tt)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestImbalanceMath(t *testing.T) {
	mean, imb := Imbalance([]int64{10, 10, 10, 30})
	if mean != 15 || imb != 2 {
		t.Fatalf("mean=%g imb=%g", mean, imb)
	}
	if _, imb := Imbalance(nil); imb != 0 {
		t.Fatal("empty imbalance")
	}
	mean, imb = Imbalance([]int64{0, 0})
	if mean != 0 || imb != 0 {
		t.Fatal("zero imbalance")
	}
}

func TestGidsStableAcrossMigration(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 1, 1)
		}, 1, 2)
		// Shared vertices must have matching gids on both sides:
		// verified by CheckDistributed, plus explicit spot check that
		// every shared entity's gid is known to its remote part.
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsTravelWithMigration(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		var serial *mesh.Mesh
		//pumi-vet:ignore collseq // setup failure ends the run; poisoning unblocks peers
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 4, 2, 2)
			// Tag every element and vertex before distribution.
			w, err := serial.Tags.Create("w", ds.TagFloat, 0)
			if err != nil {
				return err
			}
			for el := range serial.Elements() {
				serial.Tags.SetFloat(w, el, serial.Centroid(el).X)
			}
			vv, err := serial.Tags.Create("vv", ds.TagFloatSlice, 3)
			if err != nil {
				return err
			}
			for v := range serial.Iter(0) {
				p := serial.Coord(v)
				serial.Tags.SetFloats(vv, v, []float64{p.X, p.Y, p.Z})
			}
		}
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh { return serial }, 1, 2)
		for _, part := range dm.Parts {
			m := part.M
			w := m.Tags.Find("w")
			if w == nil {
				return fmt.Errorf("part %d lost tag w", m.Part())
			}
			for el := range m.Elements() {
				got, ok := m.Tags.GetFloat(w, el)
				if !ok {
					return fmt.Errorf("element %v lost its tag", el)
				}
				if math.Abs(got-m.Centroid(el).X) > 1e-12 {
					return fmt.Errorf("element tag %g, want %g", got, m.Centroid(el).X)
				}
			}
			vv := m.Tags.Find("vv")
			for v := range m.Iter(0) {
				got, ok := m.Tags.GetFloats(vv, v)
				if !ok {
					return fmt.Errorf("vertex %v lost its tag", v)
				}
				p := m.Coord(v)
				if got[0] != p.X || got[1] != p.Y || got[2] != p.Z {
					return fmt.Errorf("vertex tag %v at %v", got, p)
				}
			}
		}
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerfCountersRecorded(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 2, 2)
		}, 1, 2)
		Ghost(dm, 0, 1)
		RemoveGhosts(dm)
		c := ctx.Counters()
		if c.Elapsed("partition.migrate") <= 0 {
			return fmt.Errorf("migrate timer not recorded")
		}
		if c.Elapsed("partition.ghost") <= 0 {
			return fmt.Errorf("ghost timer not recorded")
		}
		if c.Count("partition.migrated-elements") <= 0 {
			return fmt.Errorf("migrated-element counter not recorded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
