package partition

import (
	"fmt"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// Tag data travels with entities: migration and ghosting pack the
// sender's tag values for every transferred entity and recreate them on
// the receiver (PUMI semantics — a copy carries its tag data). Only
// scalar and slice numeric tags move; TagAny values are host-local.

// writeTagTable encodes the sender part's movable tag directory.
func writeTagTable(b *pcu.Buffer, m *mesh.Mesh) []*ds.Tag {
	var movable []*ds.Tag
	for _, t := range m.Tags.Tags() {
		switch t.Kind {
		case ds.TagInt, ds.TagFloat, ds.TagIntSlice, ds.TagFloatSlice, ds.TagBytes:
			movable = append(movable, t)
		}
	}
	if len(movable) > 255 {
		panic("partition: more than 255 movable tags")
	}
	b.Byte(byte(len(movable)))
	for _, t := range movable {
		b.Bytes([]byte(t.Name))
		b.Byte(byte(t.Kind))
		b.Int32(int32(t.Size))
	}
	return movable
}

// tagSlot pairs a wire tag layout with the locally reconciled tag
// (nil when a same-named tag with a different layout exists locally;
// such values decode but drop).
type tagSlot struct {
	tag  *ds.Tag
	kind ds.TagKind
	size int
}

// readTagTable decodes a tag directory, creating missing tags on the
// receiving mesh.
func readTagTable(r *pcu.Reader, m *mesh.Mesh) []tagSlot {
	n := int(r.Byte())
	out := make([]tagSlot, n)
	for i := 0; i < n; i++ {
		name := string(r.BytesNoCopy())
		kind := ds.TagKind(r.Byte())
		size := int(r.Int32())
		tag := m.Tags.Find(name)
		if tag == nil {
			var err error
			tag, err = m.Tags.Create(name, kind, size)
			if err != nil {
				panic(fmt.Sprintf("partition: recreating tag %q: %v", name, err))
			}
		}
		if tag.Kind != kind || tag.Size != size {
			tag = nil
		}
		out[i] = tagSlot{tag: tag, kind: kind, size: size}
	}
	return out
}

// writeEntityTags encodes e's values for the movable tags.
func writeEntityTags(b *pcu.Buffer, m *mesh.Mesh, movable []*ds.Tag, e mesh.Ent) {
	present := 0
	for _, t := range movable {
		if m.Tags.Has(t, e) {
			present++
		}
	}
	b.Byte(byte(present))
	for i, t := range movable {
		if !m.Tags.Has(t, e) {
			continue
		}
		b.Byte(byte(i))
		switch t.Kind {
		case ds.TagInt:
			v, _ := m.Tags.GetInt(t, e)
			b.Int64(v)
		case ds.TagFloat:
			v, _ := m.Tags.GetFloat(t, e)
			b.Float64(v)
		case ds.TagIntSlice:
			v, _ := m.Tags.GetInts(t, e)
			b.Int64s(v)
		case ds.TagFloatSlice:
			v, _ := m.Tags.GetFloats(t, e)
			b.Float64s(v)
		case ds.TagBytes:
			v, _ := m.Tags.GetBytes(t, e)
			b.Bytes(v)
		}
	}
}

// applyEntityTags decodes and attaches tag values to e. Entries whose
// tag could not be reconciled are consumed and dropped.
func applyEntityTags(r *pcu.Reader, m *mesh.Mesh, table []tagSlot, e mesh.Ent, apply bool) {
	n := int(r.Byte())
	for k := 0; k < n; k++ {
		i := int(r.Byte())
		tag := table[i].tag
		if !apply {
			tag = nil
		}
		kind := table[i].kind
		switch kind {
		case ds.TagInt:
			v := r.Int64()
			if tag != nil {
				m.Tags.SetInt(tag, e, v)
			}
		case ds.TagFloat:
			v := r.Float64()
			if tag != nil {
				m.Tags.SetFloat(tag, e, v)
			}
		case ds.TagIntSlice:
			vals := r.Int64s()
			if tag != nil {
				m.Tags.SetInts(tag, e, vals)
			}
		case ds.TagFloatSlice:
			v := r.Float64s()
			if tag != nil {
				m.Tags.SetFloats(tag, e, v)
			}
		case ds.TagBytes:
			// Aliasing is safe here: SetBytes copies before the message
			// can be released.
			v := r.BytesNoCopy()
			if tag != nil {
				m.Tags.SetBytes(tag, e, v)
			}
		}
	}
}
