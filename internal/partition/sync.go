package partition

import (
	"sort"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// SyncShared pushes data from each owned part-boundary entity of the
// given dimensions to all its remote copies (collective). pack encodes
// the owner's payload; apply decodes it on each copy. Fields use this
// to keep shared nodal values and global DOF numbers consistent, the
// way PUMI's apf::synchronize works.
func SyncShared(dm *DMesh, dims []int, pack func(p *Part, e mesh.Ent, b *pcu.Buffer), apply func(p *Part, e mesh.Ent, r *pcu.Reader)) {
	dm.Ctx.Trace().Begin("partition.sync")
	defer dm.Ctx.Trace().End("partition.sync")
	ph := dm.beginPhase()
	var payload pcu.Buffer // reused across entities; Bytes copies it out
	for _, part := range dm.Parts {
		m := part.M
		for _, d := range dims {
			for e := range m.PartBoundary(d) {
				if !m.IsOwned(e) {
					continue
				}
				payload.Reset()
				pack(part, e, &payload)
				for _, rc := range m.Remotes(e) {
					b := ph.to(m.Part(), rc.Part)
					b.Byte(byte(rc.Ent.T))
					b.Int32(rc.Ent.I)
					b.Bytes(payload.Raw())
				}
			}
		}
	}
	// The apply side writes owner data onto copies this part does not
	// own — the point of the protocol, so sanctioned for the sanitizer.
	defer dm.suspendGuards()()
	var sub pcu.Reader
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		for !msg.Data.Empty() {
			e := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			sub.Reset(msg.Data.BytesNoCopy())
			apply(part, e, &sub)
		}
	}
}

// ReduceShared is the inverse pattern: every non-owner copy sends its
// payload for each shared entity to the owner, which combines them
// (e.g. accumulating element contributions to shared nodes in an FE
// assembly). apply runs on the owning part once per contributing copy.
func ReduceShared(dm *DMesh, dims []int, pack func(p *Part, e mesh.Ent, b *pcu.Buffer), apply func(p *Part, e mesh.Ent, r *pcu.Reader)) {
	dm.Ctx.Trace().Begin("partition.reduce")
	defer dm.Ctx.Trace().End("partition.reduce")
	ph := dm.beginPhase()
	var payload pcu.Buffer // reused across entities; Bytes copies it out
	for _, part := range dm.Parts {
		m := part.M
		for _, d := range dims {
			for e := range m.PartBoundary(d) {
				if m.IsOwned(e) {
					continue
				}
				owner := m.Owner(e)
				h, ok := m.RemoteCopy(e, owner)
				if !ok {
					continue
				}
				payload.Reset()
				pack(part, e, &payload)
				b := ph.to(m.Part(), owner)
				b.Byte(byte(h.T))
				b.Int32(h.I)
				b.Bytes(payload.Raw())
			}
		}
	}
	var sub pcu.Reader
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		for !msg.Data.Empty() {
			e := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			sub.Reset(msg.Data.BytesNoCopy())
			apply(part, e, &sub)
		}
	}
}

// NeighborRanks returns the ranks this rank's parts communicate with,
// sorted — the message-routing neighborhood used for sparse exchanges.
func NeighborRanks(dm *DMesh) []int {
	seen := map[int]bool{}
	for _, part := range dm.Parts {
		for _, q := range part.M.NeighborParts(0) {
			seen[dm.RankOf(q)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
