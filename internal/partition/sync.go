package partition

import (
	"slices"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// SyncShared pushes data from each owned part-boundary entity of the
// given dimensions to all its remote copies (collective). pack encodes
// the owner's payload; apply decodes it on each copy. Fields use this
// to keep shared nodal values and global DOF numbers consistent, the
// way PUMI's apf::synchronize works.
//
// The exchange runs on a compiled BoundaryPlan (plan.go) cached across
// rounds: once the plan is hot, a round performs no allocations and
// ships no per-entity headers. Any boundary mutation bumps the mesh
// topology epoch and the next call recompiles locally. Under the
// sanitizer the self-describing headered wire format is used instead.
func SyncShared(dm *DMesh, dims []int, pack func(p *Part, e mesh.Ent, b *pcu.Buffer), apply func(p *Part, e mesh.Ent, r *pcu.Reader)) {
	dm.Ctx.Trace().Begin("partition.sync")
	defer dm.Ctx.Trace().End("partition.sync")
	if !planned() {
		syncSharedHeadered(dm, dims, pack, apply)
		return
	}
	pl := dm.boundaryPlan(dims, dirSync)
	// The apply side writes owner data onto copies this part does not
	// own — the point of the protocol, so sanctioned for the sanitizer.
	defer dm.suspendGuards()()
	dm.execPlan(pl, pack, apply)
}

// ReduceShared is the inverse pattern: every non-owner copy sends its
// payload for each shared entity to the owner, which combines them
// (e.g. accumulating element contributions to shared nodes in an FE
// assembly). apply runs on the owning part once per contributing copy,
// in ascending contributor-part order. Planned and cached like
// SyncShared.
func ReduceShared(dm *DMesh, dims []int, pack func(p *Part, e mesh.Ent, b *pcu.Buffer), apply func(p *Part, e mesh.Ent, r *pcu.Reader)) {
	dm.Ctx.Trace().Begin("partition.reduce")
	defer dm.Ctx.Trace().End("partition.reduce")
	if !planned() {
		reduceSharedHeadered(dm, dims, pack, apply)
		return
	}
	pl := dm.boundaryPlan(dims, dirReduce)
	dm.execPlan(pl, pack, apply)
}

// syncSharedHeadered is the validation/sanitizer fallback: every
// entity is addressed on the wire by (type, index) of the receiving
// copy, so decoders can check each record independently.
func syncSharedHeadered(dm *DMesh, dims []int, pack func(p *Part, e mesh.Ent, b *pcu.Buffer), apply func(p *Part, e mesh.Ent, r *pcu.Reader)) {
	ph := dm.beginPhase()
	var payload pcu.Buffer // reused across entities; Bytes copies it out
	for _, part := range dm.Parts {
		m := part.M
		for _, d := range dims {
			for e := range m.PartBoundary(d) {
				if !m.IsOwned(e) {
					continue
				}
				payload.Reset()
				pack(part, e, &payload)
				for _, rc := range m.Remotes(e) {
					b := ph.to(m.Part(), rc.Part)
					b.Byte(byte(rc.Ent.T))
					b.Int32(rc.Ent.I)
					b.Bytes(payload.Raw())
				}
			}
		}
	}
	defer dm.suspendGuards()()
	var sub pcu.Reader
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		for !msg.Data.Empty() {
			e := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			sub.Reset(msg.Data.BytesNoCopy())
			apply(part, e, &sub)
		}
	}
}

// reduceSharedHeadered is the headered fallback for ReduceShared.
func reduceSharedHeadered(dm *DMesh, dims []int, pack func(p *Part, e mesh.Ent, b *pcu.Buffer), apply func(p *Part, e mesh.Ent, r *pcu.Reader)) {
	ph := dm.beginPhase()
	var payload pcu.Buffer // reused across entities; Bytes copies it out
	for _, part := range dm.Parts {
		m := part.M
		for _, d := range dims {
			for e := range m.PartBoundary(d) {
				if m.IsOwned(e) {
					continue
				}
				owner := m.Owner(e)
				h, ok := m.RemoteCopy(e, owner)
				if !ok {
					continue
				}
				payload.Reset()
				pack(part, e, &payload)
				b := ph.to(m.Part(), owner)
				b.Byte(byte(h.T))
				b.Int32(h.I)
				b.Bytes(payload.Raw())
			}
		}
	}
	var sub pcu.Reader
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		for !msg.Data.Empty() {
			e := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			sub.Reset(msg.Data.BytesNoCopy())
			apply(part, e, &sub)
		}
	}
}

// NeighborRanks returns the ranks this rank's parts communicate with,
// sorted — the message-routing neighborhood used for sparse exchanges.
// The result is cached against the parts' topology epochs: repeated
// calls between boundary mutations return the same backing slice with
// no allocations. Callers must treat it as read-only.
func NeighborRanks(dm *DMesh) []int {
	if dm.nbRanksSet && dm.epochsMatch(dm.nbEpochs) {
		return dm.nbRanks
	}
	dm.nbRanks = dm.nbRanks[:0]
	for _, part := range dm.Parts {
		for _, q := range part.M.NeighborParts(0) {
			dm.nbRanks = append(dm.nbRanks, dm.RankOf(q))
		}
	}
	slices.Sort(dm.nbRanks)
	dm.nbRanks = slices.Compact(dm.nbRanks)
	dm.nbEpochs = dm.recordEpochs(dm.nbEpochs)
	dm.nbRanksSet = true
	return dm.nbRanks
}

// epochsMatch reports whether the recorded epoch vector still matches
// every local part.
func (dm *DMesh) epochsMatch(epochs []uint64) bool {
	if len(epochs) != len(dm.Parts) {
		return false
	}
	for i, p := range dm.Parts {
		if epochs[i] != p.M.TopoEpoch() {
			return false
		}
	}
	return true
}

// recordEpochs stores every local part's current topology epoch into
// dst (reused across calls).
func (dm *DMesh) recordEpochs(dst []uint64) []uint64 {
	dst = dst[:0]
	for _, p := range dm.Parts {
		dst = append(dst, p.M.TopoEpoch())
	}
	return dst
}
