package partition

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
)

// Plan assigns elements of one part to destination parts. Elements not
// in the plan (or mapped to their own part) stay.
type Plan map[mesh.Ent]int32

// ErrMigrateAborted is wrapped by every TryMigrate abort: the migration
// was rolled back before any destructive step and the source DMesh is
// intact (it still passes Verify).
var ErrMigrateAborted = errors.New("partition: migration aborted")

// migrateLocalError marks a recoverable local validation failure inside
// a migration stage; catchStage converts it to an error for the abort
// vote instead of tearing the run down.
type migrateLocalError struct{ err error }

// catchStage runs f, converting recoverable local failures — corrupt
// off-node frames and staged-data validation — into a returned error.
// Teardown panics (peer failure, watchdog stall) and genuine bugs
// propagate.
func catchStage(f func()) (err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if le, ok := p.(migrateLocalError); ok {
			err = le.err
			return
		}
		if e, ok := p.(error); ok && errors.Is(e, pcu.ErrCorruptMessage) {
			err = e
			return
		}
		panic(p)
	}()
	f()
	return nil
}

// voteAbort is the collective go/no-go decision after a staging step:
// every rank contributes its local error (or none), and if any part of
// the world failed, every rank returns the same abort error naming all
// causes. The Allgather keeps the collective schedule aligned even when
// only some ranks failed.
func voteAbort(dm *DMesh, localErr error, stage string) error {
	s := ""
	if localErr != nil {
		s = localErr.Error()
	}
	all := pcu.Allgather(dm.Ctx, s)
	var causes []string
	for r, m := range all {
		if m != "" {
			causes = append(causes, fmt.Sprintf("rank %d: %s", r, m))
		}
	}
	if len(causes) == 0 {
		return nil
	}
	return fmt.Errorf("%w while %s: %s", ErrMigrateAborted, stage, strings.Join(causes, "; "))
}

// rollbackCreated destroys the entities a migration staged onto each
// part, newest first so no entity is removed before its upward
// adjacencies. After rollback the mesh is exactly as before TryMigrate:
// staging only ever creates entities, it never mutates existing ones.
func rollbackCreated(dm *DMesh, created [][]mesh.Ent) {
	for i, list := range created {
		m := dm.Parts[i].M
		for j := len(list) - 1; j >= 0; j-- {
			m.Destroy(list[j])
		}
	}
}

// Migrate moves mesh elements between parts according to per-local-part
// plans. It is TryMigrate with failures escalated to panics; callers
// that want to survive an aborted migration use TryMigrate directly.
func Migrate(dm *DMesh, plans []Plan) {
	if err := TryMigrate(dm, plans); err != nil {
		panic(err)
	}
}

// TryMigrate moves mesh elements between parts according to
// per-local-part plans (indexed like dm.Parts; nil entries mean no
// moves). It is collective: every rank must call it, even with empty
// plans.
//
// The procedure follows Seol's distributed mesh migration: (1) compute
// each affected entity's new residence part set by combining local
// destination contributions with those of all current remote copies;
// (2) ship moving elements with their full closures, stitching arriving
// entities to existing copies by global id; (3) remove migrated
// elements and downward entities left without local adjacency; (4)
// rebuild remote-copy links and ownership for every entity whose
// residence changed.
//
// The steps are ordered stage-validate-commit: residence staging and
// closure shipment only ever add entities, and each is followed by a
// collective abort vote. A failure before commit (a corrupt off-node
// frame, a closure that failed validation) rolls back the staged
// entities on every rank and returns an error wrapping
// ErrMigrateAborted, leaving the source DMesh Verify-intact. Only after
// the votes pass does TryMigrate destroy migrated elements and restitch
// remote links.
func TryMigrate(dm *DMesh, plans []Plan) error {
	t := dm.Ctx.Counters().Start("partition.migrate")
	defer t.Stop()
	tr := dm.Ctx.Trace()
	tr.Begin("partition.migrate")
	defer tr.End("partition.migrate")
	start := time.Now()
	defer func() {
		dm.Ctx.Metrics().Histogram("partition.migrate.ns").Observe(dm.Ctx.Rank(), int64(time.Since(start)))
	}()
	d := dm.Dim
	for _, part := range dm.Parts {
		if part.nGhosts > 0 {
			panic("partition: migration with ghosts present; call RemoveGhosts first")
		}
	}

	// Normalize plans: drop self-moves, validate.
	dests := make([]Plan, len(dm.Parts))
	for i, part := range dm.Parts {
		dests[i] = Plan{}
		var plan Plan
		if i < len(plans) {
			plan = plans[i]
		}
		for el, q := range plan {
			if int(q) < 0 || int(q) >= dm.NParts() {
				panic(fmt.Sprintf("partition: plan sends %v to invalid part %d", el, q))
			}
			if el.Dim() != d {
				panic(fmt.Sprintf("partition: plan contains non-element %v", el))
			}
			if q != part.M.Part() {
				dests[i][el] = q
			}
		}
	}

	// Step 1: local residence contributions, computed only for the
	// entities adjacent to moving elements (migration cost must scale
	// with the move, not the mesh — ParMA runs many small migrations).
	// contrib(e) = destinations of ALL local elements adjacent to e.
	contribs := make([]map[mesh.Ent]ds.IntSet, len(dm.Parts))
	localContrib := func(i int, m *mesh.Mesh, e mesh.Ent) ds.IntSet {
		var s ds.IntSet
		self := m.Part()
		for _, up := range m.Adjacent(e, d) {
			if dst, moving := dests[i][up]; moving {
				s.Add(dst)
			} else {
				s.Add(self)
			}
		}
		return s
	}
	for i, part := range dm.Parts {
		m := part.M
		contrib := map[mesh.Ent]ds.IntSet{}
		for el := range dests[i] {
			for dd := 0; dd < d; dd++ {
				for _, e := range m.Adjacent(el, dd) {
					if _, done := contrib[e]; !done {
						contrib[e] = localContrib(i, m, e)
					}
				}
			}
		}
		contribs[i] = contrib
	}

	// Step 2: exchange contributions across current residence parts of
	// the affected shared entities. Two rounds: parts with moving
	// elements announce their contributions to every copy; any copy
	// that received an announcement without having sent one replies
	// with its own contribution to every copy, so all copies end up
	// with the complete new residence set.
	newRes := make([]map[mesh.Ent]ds.IntSet, len(dm.Parts))
	for i := range newRes {
		newRes[i] = map[mesh.Ent]ds.IntSet{}
		for e, s := range contribs[i] {
			newRes[i][e] = s.Clone()
		}
	}
	sendContrib := func(ph *phase, part *Part, e mesh.Ent, s ds.IntSet) {
		m := part.M
		for _, r := range m.RemoteParts(e) {
			b := ph.to(m.Part(), r)
			b.Byte(byte(e.Dim()))
			b.Int64(part.Gid(e))
			b.Int32s(s.Values())
		}
	}
	var localErr error
	ph := dm.beginPhase()
	for i, part := range dm.Parts {
		m := part.M
		ents := sortedEnts(contribs[i])
		for _, e := range ents {
			if m.IsShared(e) {
				sendContrib(ph, part, e, contribs[i][e])
			}
		}
	}
	replied := make([]map[mesh.Ent]bool, len(dm.Parts))
	for i := range replied {
		replied[i] = map[mesh.Ent]bool{}
	}
	applyContrib := func(msg partMsg) []mesh.Ent {
		part := dm.LocalPart(msg.To)
		li := dm.localIndex(msg.To)
		var fresh []mesh.Ent
		for !msg.Data.Empty() {
			dd := int(msg.Data.Byte())
			gid := msg.Data.Int64()
			vals := msg.Data.Int32s()
			e, ok := part.FindGid(dd, gid)
			if !ok {
				panic(fmt.Sprintf("partition: contribution for unknown gid %d dim %d on part %d",
					gid, dd, msg.To))
			}
			s, seen := newRes[li][e]
			if !seen {
				// First word of this entity here: fold in the local
				// contribution and remember to reply in round two.
				s = localContrib(li, part.M, e)
				fresh = append(fresh, e)
			}
			for _, v := range vals {
				s.Add(v)
			}
			newRes[li][e] = s
		}
		return fresh
	}
	roundTwo := make([][]mesh.Ent, len(dm.Parts))
	localErr = catchStage(func() {
		for _, msg := range ph.exchange() {
			li := dm.localIndex(msg.To)
			for _, e := range applyContrib(msg) {
				if !replied[li][e] {
					replied[li][e] = true
					roundTwo[li] = append(roundTwo[li], e)
				}
			}
		}
	})
	// A rank whose round-one decode failed still takes part in the
	// round-two exchange (with nothing to send) so the collective
	// schedule stays aligned all the way to the abort vote.
	ph = dm.beginPhase()
	if localErr == nil {
		for i, part := range dm.Parts {
			for _, e := range roundTwo[i] {
				sendContrib(ph, part, e, newRes[i][e])
			}
		}
	}
	if err := catchStage(func() {
		for _, msg := range ph.exchange() {
			applyContrib(msg)
		}
	}); localErr == nil {
		localErr = err
	}
	if err := voteAbort(dm, localErr, "staging residence updates"); err != nil {
		// Nothing has been created or destroyed yet; the vote is the
		// only cleanup needed.
		tr.Point("migrate.abort", 1)
		return err
	}
	tr.Point("migrate.residence-voted", 1)

	// Step 3: ship moving elements with closures, grouped per
	// destination part.
	ph = dm.beginPhase()
	for i, part := range dm.Parts {
		m := part.M
		byDest := map[int32][]mesh.Ent{}
		for el, q := range dests[i] {
			byDest[q] = append(byDest[q], el)
		}
		qs := make([]int32, 0, len(byDest))
		for q := range byDest {
			qs = append(qs, q)
		}
		sort.Slice(qs, func(a, b int) bool { return qs[a] < qs[b] })
		for _, q := range qs {
			els := byDest[q]
			sort.Slice(els, func(a, b int) bool { return els[a].Less(els[b]) })
			packElements(ph.to(m.Part(), q), dm, i, q, els, newRes[i])
		}
	}
	received := make([]map[mesh.Ent]ds.IntSet, len(dm.Parts))
	for i := range received {
		received[i] = map[mesh.Ent]ds.IntSet{}
	}
	created := make([][]mesh.Ent, len(dm.Parts))
	localErr = catchStage(func() {
		for _, msg := range ph.exchange() {
			li := dm.localIndex(msg.To)
			unpackElements(dm, msg, received[li], &created[li])
		}
	})
	if err := voteAbort(dm, localErr, "shipping element closures"); err != nil {
		rollbackCreated(dm, created)
		tr.Point("migrate.abort", 2)
		return err
	}
	// Commit point reached: stage marks 1/2 are the abort votes passed,
	// mark 3 is the irreversible destroy-and-restitch step starting.
	tr.Point("migrate.commit", 3)

	// Commit point: every rank has staged and validated its incoming
	// data. The destructive steps below run only on a unanimous vote.
	// They destroy orphaned boundary copies and rewrite remote links and
	// ownership on entities this part does not own — that is the
	// protocol, so sanctioned for the sanitizer.
	defer dm.suspendGuards()()

	// Step 4: remove migrated elements and orphaned closure entities.
	for i, part := range dm.Parts {
		m := part.M
		affected := map[mesh.Ent]bool{}
		var els []mesh.Ent
		for el := range dests[i] {
			els = append(els, el)
		}
		sort.Slice(els, func(a, b int) bool { return els[a].Less(els[b]) })
		for _, el := range els {
			for dd := 0; dd < d; dd++ {
				for _, e := range m.Adjacent(el, dd) {
					affected[e] = true
				}
			}
			m.Destroy(el)
		}
		for dd := d - 1; dd >= 0; dd-- {
			var level []mesh.Ent
			for e := range affected {
				if e.Dim() == dd {
					level = append(level, e)
				}
			}
			sort.Slice(level, func(a, b int) bool { return level[a].Less(level[b]) })
			for _, e := range level {
				if m.Alive(e) && !m.HasUp(e) {
					m.Destroy(e)
				}
			}
		}
	}

	// Step 5: rebuild remote copies and ownership where residence
	// changed. Received entities always restitch.
	ph = dm.beginPhase()
	type fix struct {
		e   mesh.Ent
		res ds.IntSet
	}
	fixes := make([][]fix, len(dm.Parts))
	for i, part := range dm.Parts {
		m := part.M
		self := m.Part()
		// Merge retained-entity residence changes and received entities.
		cand := map[mesh.Ent]ds.IntSet{}
		for e, s := range newRes[i] {
			if m.Alive(e) {
				cand[e] = s
			}
		}
		for e, s := range received[i] {
			if m.Alive(e) {
				merged := s.Clone()
				if prior, ok := cand[e]; ok {
					merged = merged.Union(prior)
				}
				cand[e] = merged
			}
		}
		var ents []mesh.Ent
		for e := range cand {
			ents = append(ents, e)
		}
		sort.Slice(ents, func(a, b int) bool { return ents[a].Less(ents[b]) })
		for _, e := range ents {
			res := cand[e]
			// Restitch exactly when the residence set changed. This
			// decision is symmetric across all copies: newRes is
			// globally consistent and pre-migration remote links are
			// symmetric, so either every copy restitches or none does.
			// A freshly created copy always restitches (its local
			// residence starts as just this part).
			if res.Equal(m.Residence(e)) {
				continue
			}
			m.ClearRemotes(e)
			fixes[i] = append(fixes[i], fix{e: e, res: res})
			for _, q := range res.Values() {
				if q == self {
					continue
				}
				b := ph.to(self, q)
				b.Byte(byte(e.Dim()))
				b.Int64(part.Gid(e))
				b.Byte(byte(e.T))
				b.Int32(e.I)
			}
		}
	}
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		for !msg.Data.Empty() {
			dd := int(msg.Data.Byte())
			gid := msg.Data.Int64()
			rt := mesh.Type(msg.Data.Byte())
			ri := msg.Data.Int32()
			e, ok := part.FindGid(dd, gid)
			if !ok {
				panic(fmt.Sprintf("partition: stitch for unknown gid %d dim %d on part %d",
					gid, dd, msg.To))
			}
			part.M.SetRemote(e, msg.From, mesh.Ent{T: rt, I: ri})
		}
	}
	for i, part := range dm.Parts {
		for _, f := range fixes[i] {
			part.M.SetOwner(f.e, f.res.Min())
		}
	}
	var totalMoved int64
	for i := range dests {
		totalMoved += int64(len(dests[i]))
	}
	dm.Ctx.Counters().Add("partition.migrated-elements", totalMoved)
	tr.Point("migrate.moved-elements", totalMoved)
	return nil
}

func (dm *DMesh) localIndex(part int32) int {
	return int(part) - dm.Ctx.Rank()*dm.K
}

// sortedEnts returns the map's keys in deterministic entity order.
func sortedEnts(m map[mesh.Ent]ds.IntSet) []mesh.Ent {
	out := make([]mesh.Ent, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// packElements encodes the closure of the given elements plus the
// elements themselves into b, dimension by dimension.
func packElements(b *pcu.Buffer, dm *DMesh, partIdx int, dest int32, els []mesh.Ent, res map[mesh.Ent]ds.IntSet) {
	part := dm.Parts[partIdx]
	m := part.M
	d := dm.Dim
	movable := writeTagTable(b, m)
	closure := map[mesh.Ent]bool{}
	for _, el := range els {
		for dd := 0; dd < d; dd++ {
			for _, e := range m.Adjacent(el, dd) {
				closure[e] = true
			}
		}
	}
	var gids []int64 // down-adjacency gid scratch, bulk-packed per entity
	for dd := 0; dd <= d; dd++ {
		var level []mesh.Ent
		if dd == d {
			level = els
		} else {
			for e := range closure {
				if e.Dim() == dd {
					level = append(level, e)
				}
			}
			sort.Slice(level, func(a, b int) bool { return level[a].Less(level[b]) })
		}
		b.Int32(int32(len(level)))
		for _, e := range level {
			b.Byte(byte(e.T))
			b.Int64(part.Gid(e))
			c := m.Classification(e)
			b.Byte(byte(int8(c.Dim) + 1)) // -1..3 -> 0..4
			b.Int32(c.Tag)
			if dd == d {
				b.Int32(1) // residence set {dest}, same wire as Int32s
				b.Int32(dest)
			} else {
				b.Int32s(res[e].Values())
			}
			if dd == 0 {
				p := m.Coord(e)
				b.Float64(p.X)
				b.Float64(p.Y)
				b.Float64(p.Z)
			} else {
				down := m.Down(e)
				gids = gids[:0]
				for _, de := range down {
					gids = append(gids, part.Gid(de))
				}
				b.Int64s(gids)
			}
			writeEntityTags(b, m, movable, e)
		}
	}
}

// unpackElements decodes one element-transfer message into the
// destination part, creating missing entities and recording the new
// residence of every transferred entity. Tag data accompanies every
// entity; it is applied to newly created copies (existing copies keep
// their own values). Every created entity is appended to createdLog in
// creation order so an aborted migration can roll the staging back.
func unpackElements(dm *DMesh, msg partMsg, recvRes map[mesh.Ent]ds.IntSet, createdLog *[]mesh.Ent) {
	part := dm.LocalPart(msg.To)
	m := part.M
	d := dm.Dim
	r := msg.Data
	table := readTagTable(r, m)
	var resScratch []int32 // residence-set decode scratch, consumed by mergeRes
	var gidScratch []int64 // down-adjacency gid decode scratch
	for dd := 0; dd <= d; dd++ {
		n := int(r.Int32())
		for k := 0; k < n; k++ {
			t := mesh.Type(r.Byte())
			gid := r.Int64()
			cdim := int8(r.Byte()) - 1
			ctag := r.Int32()
			resVals := r.AppendInt32s(resScratch[:0])
			resScratch = resVals
			cls := gmi.Ref{Dim: cdim, Tag: ctag}
			if dd == 0 {
				x, y, z := r.Float64(), r.Float64(), r.Float64()
				e, ok := part.FindGid(0, gid)
				if !ok {
					e = m.CreateVertex(cls, vec.V{X: x, Y: y, Z: z})
					part.setGid(e, gid)
					*createdLog = append(*createdLog, e)
				}
				applyEntityTags(r, m, table, e, !ok)
				mergeRes(recvRes, e, resVals)
				continue
			}
			gidScratch = r.AppendInt64s(gidScratch[:0])
			down := make([]mesh.Ent, len(gidScratch))
			missing := false
			for j, dg := range gidScratch {
				de, ok := part.FindGid(dd-1, dg)
				if !ok {
					missing = true
				}
				down[j] = de
			}
			if missing {
				// Recoverable: the abort vote rolls the staging back.
				panic(migrateLocalError{fmt.Errorf(
					"partition: entity gid %d dim %d arrived before its closure", gid, dd)})
			}
			e, ok := part.FindGid(dd, gid)
			if !ok {
				e = m.CreateEntity(t, cls, down)
				part.setGid(e, gid)
				*createdLog = append(*createdLog, e)
			}
			applyEntityTags(r, m, table, e, !ok)
			mergeRes(recvRes, e, resVals)
		}
	}
	r.Done()
}

func mergeRes(recvRes map[mesh.Ent]ds.IntSet, e mesh.Ent, vals []int32) {
	s := recvRes[e]
	for _, v := range vals {
		s.Add(v)
	}
	recvRes[e] = s
}
