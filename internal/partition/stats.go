package partition

import (
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// GatherCounts returns the per-part count of live entities of the given
// dimension, indexed by global part id, identical on every rank
// (collective). Ghost copies are excluded: they are read-only
// duplicates, not load.
func GatherCounts(dm *DMesh, dim int) []int64 {
	local := make([]int64, dm.K)
	for i, part := range dm.Parts {
		n := int64(0)
		for e := range part.M.Iter(dim) {
			if !part.M.IsGhost(e) {
				n++
			}
		}
		local[i] = n
	}
	all := pcu.Allgather(dm.Ctx, local)
	out := make([]int64, 0, dm.NParts())
	for _, block := range all {
		out = append(out, block...)
	}
	return out
}

// GatherWeights is GatherCounts for an arbitrary per-part load functor.
func GatherWeights(dm *DMesh, weight func(p *Part) float64) []float64 {
	local := make([]float64, dm.K)
	for i, part := range dm.Parts {
		local[i] = weight(part)
	}
	all := pcu.Allgather(dm.Ctx, local)
	out := make([]float64, 0, dm.NParts())
	for _, block := range all {
		out = append(out, block...)
	}
	return out
}

// Imbalance summarizes a per-part load vector the way the paper does:
// the mean load and the peak imbalance max/mean (1.0 = perfect balance;
// the paper reports (max/mean - 1) as "Imb.%").
func Imbalance(counts []int64) (mean float64, imb float64) {
	if len(counts) == 0 {
		return 0, 0
	}
	var sum, max int64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	mean = float64(sum) / float64(len(counts))
	if mean == 0 {
		return 0, 0
	}
	return mean, float64(max) / mean
}

// EntityImbalance gathers the counts of one dimension and returns mean
// and max/mean (collective).
func EntityImbalance(dm *DMesh, dim int) (mean, imb float64) {
	return Imbalance(GatherCounts(dm, dim))
}

// BoundaryTraffic counts this distributed mesh's part-boundary
// duplication, split by architecture class: entities shared only with
// parts whose ranks live on the same node versus entities with at least
// one off-node copy. This is the quantity two-level architecture-aware
// partitioning optimizes (on-node boundaries can live implicitly in
// shared memory; off-node ones are explicit duplicates).
type BoundaryTraffic struct {
	SharedTotal   int64
	SharedOnNode  int64 // all copies on this rank's node
	SharedOffNode int64 // at least one copy off node
}

// GatherBoundaryTraffic sums boundary statistics over all parts
// (collective; identical result on every rank).
func GatherBoundaryTraffic(dm *DMesh, dim int) BoundaryTraffic {
	topo := dm.Ctx.Topo()
	myNode := topo.NodeOf(dm.Ctx.Rank())
	var local BoundaryTraffic
	for _, part := range dm.Parts {
		m := part.M
		for e := range m.PartBoundary(dim) {
			local.SharedTotal++
			off := false
			m.EachRemote(e, func(q int32, _ mesh.Ent) bool {
				if topo.NodeOf(dm.RankOf(q)) != myNode {
					off = true
					return false
				}
				return true
			})
			if off {
				local.SharedOffNode++
			} else {
				local.SharedOnNode++
			}
		}
	}
	return pcu.Allreduce(dm.Ctx, local, func(a, b BoundaryTraffic) BoundaryTraffic {
		return BoundaryTraffic{
			SharedTotal:   a.SharedTotal + b.SharedTotal,
			SharedOnNode:  a.SharedOnNode + b.SharedOnNode,
			SharedOffNode: a.SharedOffNode + b.SharedOffNode,
		}
	})
}

// GlobalCount returns the number of distinct entities of the given
// dimension across the whole distributed mesh (each shared entity
// counted once, at its owner; ghosts excluded). Collective.
func GlobalCount(dm *DMesh, dim int) int64 {
	var owned int64
	for _, part := range dm.Parts {
		m := part.M
		for e := range m.Iter(dim) {
			if !m.IsGhost(e) && m.IsOwned(e) {
				owned++
			}
		}
	}
	return pcu.SumInt64(dm.Ctx, owned)
}

// ElementDest is a helper for building migration plans from a global
// assignment computed on one rank: rank 0's part 0 typically holds a
// freshly generated serial mesh, and assign maps its elements to
// destination parts. Other ranks pass nil. Returns per-local-part plans
// for Migrate.
func PlansFromAssignment(dm *DMesh, assign map[mesh.Ent]int32) []Plan {
	plans := make([]Plan, len(dm.Parts))
	if assign == nil {
		return plans
	}
	plans[0] = Plan(assign)
	return plans
}
