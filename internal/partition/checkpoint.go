package partition

import (
	"fmt"
	"sort"
	"strings"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// Checkpoint restore support: the meshio checkpoint format stores each
// part's mesh, global ids, ownership and residence sets on disk; this
// file exports just enough of the Part bookkeeping to rebuild a DMesh
// from that state, and Assemble to restitch the remote-copy links that
// are never stored (handles are process-local and meaningless across
// restarts).

// NewPart wraps a mesh in the distribution-layer bookkeeping (gid
// tables and lifecycle hooks). The checkpoint loader uses it on meshes
// whose entities already exist; ids are then restored with RestoreGid.
func NewPart(m *mesh.Mesh) *Part { return newPart(m) }

// RestoreGid assigns e the global id recorded in a checkpoint.
func (p *Part) RestoreGid(e mesh.Ent, gid int64) { p.setGid(e, gid) }

// FreshCounter returns the part-scoped id allocation cursor, saved in
// checkpoints so restored parts keep allocating unique ids.
func (p *Part) FreshCounter() int64 { return p.counter }

// RestoreFreshCounter resets the part-scoped id allocation cursor.
func (p *Part) RestoreFreshCounter(v int64) { p.counter = v }

// HasGhosts reports whether the part currently holds ghost copies.
// Checkpoints exclude ghost state; callers remove ghosts before saving.
func (p *Part) HasGhosts() bool { return p.nGhosts > 0 }

// Assemble builds a DMesh from restored parts and rebuilds the
// remote-copy links from each entity's residence set (res holds, per
// local part, the multi-part residence of every shared entity). It is
// collective; every rank must call it with the same layout. Entities
// are matched across parts by global id — a residence entry naming a
// part that holds no copy of the gid means the checkpoint is
// inconsistent, and every rank returns the same error.
func Assemble(ctx *pcu.Ctx, model *gmi.Model, dim, k int, parts []*Part, res []map[mesh.Ent][]int32) (*DMesh, error) {
	if len(parts) != k {
		panic(fmt.Sprintf("partition: Assemble with %d parts, want %d per rank", len(parts), k))
	}
	dm := &DMesh{Ctx: ctx, Model: model, Dim: dim, K: k, Parts: parts}
	ph := dm.beginPhase()
	for i, part := range parts {
		m := part.M
		self := m.Part()
		ents := make([]mesh.Ent, 0, len(res[i]))
		for e := range res[i] {
			ents = append(ents, e)
		}
		sort.Slice(ents, func(a, b int) bool { return ents[a].Less(ents[b]) })
		for _, e := range ents {
			for _, q := range res[i][e] {
				if q == self {
					continue
				}
				b := ph.to(self, q)
				b.Byte(byte(e.Dim()))
				b.Int64(part.Gid(e))
				b.Byte(byte(e.T))
				b.Int32(e.I)
			}
		}
	}
	// Restitching records remote links on entities owned elsewhere;
	// sanctioned for the sanitizer.
	resume := dm.suspendGuards()
	localErr := catchStage(func() {
		for _, msg := range ph.exchange() {
			part := dm.LocalPart(msg.To)
			for !msg.Data.Empty() {
				dd := int(msg.Data.Byte())
				gid := msg.Data.Int64()
				rt := mesh.Type(msg.Data.Byte())
				ri := msg.Data.Int32()
				e, ok := part.FindGid(dd, gid)
				if !ok {
					panic(migrateLocalError{fmt.Errorf(
						"partition: checkpoint names part %d in the residence of gid %d dim %d, but that part holds no copy",
						msg.To, gid, dd)})
				}
				part.M.SetRemote(e, msg.From, mesh.Ent{T: rt, I: ri})
			}
		}
	})
	resume()
	s := ""
	if localErr != nil {
		s = localErr.Error()
	}
	var causes []string
	for r, m := range pcu.Allgather(ctx, s) {
		if m != "" {
			causes = append(causes, fmt.Sprintf("rank %d: %s", r, m))
		}
	}
	if len(causes) > 0 {
		return nil, fmt.Errorf("partition: assembling checkpoint: %s", strings.Join(causes, "; "))
	}
	return dm, nil
}
