//go:build !race

package partition

const raceEnabled = false
