package partition

import (
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
)

// Tests of the compiled boundary-exchange plans: correctness of the
// owner-agreed ordering, epoch-driven invalidation, and the zero-alloc
// steady state the plans exist to provide.

// allocGate skips t when allocation counts are not meaningful
// (pattern of internal/pcu/alloc_test.go).
func allocGate(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if san.Enabled() {
		t.Skip("the sanitizer uses the headered fallback path by design")
	}
}

// planWorld builds the standard 4-rank distributed box used by the
// plan tests.
func planWorld(ctx *pcu.Ctx) *DMesh {
	model := gmi.Box(4, 1, 1)
	return distributeByX(ctx, model.Model, func() *mesh.Mesh {
		return meshgen.Box3D(model, 4, 2, 2)
	}, 1, 4)
}

// vertexSlots returns a float slice covering every vertex slot of the
// part, for header-free per-vertex storage in pack/apply closures.
func vertexSlots(m *mesh.Mesh) []float64 {
	maxI := int32(0)
	for v := range m.IterType(mesh.Vertex) {
		if v.I > maxI {
			maxI = v.I
		}
	}
	return make([]float64, maxI+1)
}

// TestSyncSharedPlannedValues checks the planned owner-to-copy push
// end to end: owners send their entity's global id, and every copy
// must receive exactly its own gid — any ordering disagreement between
// the compiled send and recv runs would cross-wire the values.
func TestSyncSharedPlannedValues(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		dm := planWorld(ctx)
		part := dm.Parts[0]
		vals := vertexSlots(part.M)
		for i := range vals {
			vals[i] = -1
		}
		got := 0
		SyncShared(dm, []int{0},
			func(p *Part, e mesh.Ent, b *pcu.Buffer) { b.Float64(float64(p.Gid(e))) },
			func(p *Part, e mesh.Ent, r *pcu.Reader) { vals[e.I] = r.Float64(); got++ })
		m := part.M
		want := 0
		for e := range m.PartBoundary(0) {
			if m.IsOwned(e) {
				continue
			}
			want++
			if vals[e.I] != float64(part.Gid(e)) {
				t.Errorf("rank %d: shared vertex %v got %v, want gid %d", ctx.Rank(), e, vals[e.I], part.Gid(e))
			}
		}
		if got != want {
			t.Errorf("rank %d: applied %d planned records, want %d", ctx.Rank(), got, want)
		}
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReduceSharedPlannedValues checks the planned copy-to-owner
// direction: every copy contributes 1 and each owner must accumulate
// exactly one contribution per remote copy.
func TestReduceSharedPlannedValues(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		dm := planWorld(ctx)
		part := dm.Parts[0]
		sum := vertexSlots(part.M)
		ReduceShared(dm, []int{0},
			func(p *Part, e mesh.Ent, b *pcu.Buffer) { b.Float64(1) },
			func(p *Part, e mesh.Ent, r *pcu.Reader) { sum[e.I] += r.Float64() })
		m := part.M
		for e := range m.PartBoundary(0) {
			if !m.IsOwned(e) {
				continue
			}
			if want := float64(m.NRemotes(e)); sum[e.I] != want {
				t.Errorf("rank %d: owner %v accumulated %v, want %v", ctx.Rank(), e, sum[e.I], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlanInvalidation drives the epoch machinery: a second sync round
// reuses the cached plan (no new compile), a boundary mutation forces
// exactly one recompile, and after a migration — epoch bumps on every
// touched part — plans recompile and the full distributed verification
// stays green.
func TestPlanInvalidation(t *testing.T) {
	if !planned() {
		t.Skip("plans disabled under the sanitizer")
	}
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		dm := planWorld(ctx)
		part := dm.Parts[0]
		vals := vertexSlots(part.M)
		pack := func(p *Part, e mesh.Ent, b *pcu.Buffer) { b.Float64(float64(p.Gid(e))) }
		apply := func(p *Part, e mesh.Ent, r *pcu.Reader) { vals[e.I] = r.Float64() }
		round := func() { SyncShared(dm, []int{0}, pack, apply) }
		ctrs := dm.Ctx.Counters()

		// The miss counter is merged across ranks and the sparse
		// exchange is not a barrier, so bracket every read with
		// Barrier to keep non-neighbor ranks' compiles out of deltas.
		round() // compile
		ctx.Barrier()
		miss0 := ctrs.Count("partition.plan.miss")
		round() // cached
		ctx.Barrier()
		if d := ctrs.Count("partition.plan.miss") - miss0; d != 0 {
			t.Errorf("unmutated second round recompiled %d plans, want 0", d)
		}
		ctx.Barrier() // keep later rounds' compiles out of the read above

		// A no-op ownership write still bumps the topology epoch and
		// must invalidate the plan on the mutated rank.
		var bv mesh.Ent
		for e := range part.M.PartBoundary(0) {
			bv = e
			break
		}
		part.M.SetOwner(bv, part.M.Owner(bv))
		round()
		ctx.Barrier()
		if d := ctrs.Count("partition.plan.miss") - miss0; d < 1 {
			t.Errorf("post-mutation round recompiled %d plans, want >= 1", d)
		}

		// Migrate everything one part to the right and back: epochs
		// move on every part, plans recompile, verification holds.
		for pass := 0; pass < 2; pass++ {
			plan := Plan{}
			nparts := int32(dm.NParts())
			for el := range part.M.Elements() {
				plan[el] = (part.M.Part() + 1) % nparts
			}
			Migrate(dm, []Plan{plan})
			if err := Verify(dm); err != nil {
				return err
			}
		}
		vals = vertexSlots(part.M)
		round()
		if err := Verify(dm); err != nil {
			return err
		}
		_ = vals
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSyncReduceSteadyStateZeroAlloc pins the planned SyncShared and
// ReduceShared rounds at zero allocations once the plan is hot, rank 0
// measuring while the other ranks run phases in lockstep (pattern of
// internal/pcu/alloc_test.go).
func TestSyncReduceSteadyStateZeroAlloc(t *testing.T) {
	allocGate(t)
	const (
		warmup = 4
		runs   = 50
	)
	var syncAvg, reduceAvg float64
	_, err := pcu.RunOpt(4, pcu.Options{StallTimeout: -1}, func(ctx *pcu.Ctx) error {
		dm := planWorld(ctx)
		vals := vertexSlots(dm.Parts[0].M)
		dims := []int{0}
		pack := func(p *Part, e mesh.Ent, b *pcu.Buffer) { b.Float64(vals[e.I]) }
		applySet := func(p *Part, e mesh.Ent, r *pcu.Reader) { vals[e.I] = r.Float64() }
		applyAdd := func(p *Part, e mesh.Ent, r *pcu.Reader) { vals[e.I] += r.Float64() }
		syncRound := func() { SyncShared(dm, dims, pack, applySet) }
		reduceRound := func() { ReduceShared(dm, dims, pack, applyAdd) }
		for i := 0; i < warmup; i++ {
			syncRound()
			reduceRound()
		}
		if ctx.Rank() == 0 {
			syncAvg = testing.AllocsPerRun(runs, syncRound)
			reduceAvg = testing.AllocsPerRun(runs, reduceRound)
		} else {
			// AllocsPerRun calls its function runs+1 times; the
			// exchange is collective, so every other rank runs exactly
			// as many rounds.
			for i := 0; i < runs+1; i++ {
				syncRound()
			}
			for i := 0; i < runs+1; i++ {
				reduceRound()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if syncAvg != 0 {
		t.Errorf("steady-state planned SyncShared: %.1f allocs/round, want 0", syncAvg)
	}
	if reduceAvg != 0 {
		t.Errorf("steady-state planned ReduceShared: %.1f allocs/round, want 0", reduceAvg)
	}
}

// TestNeighborCachesZeroAlloc pins the cached neighborhood queries:
// between boundary mutations, repeated NeighborRanks and NeighborParts
// calls must return the identical backing data without allocating, and
// a mutation must refresh them.
func TestNeighborCachesZeroAlloc(t *testing.T) {
	allocGate(t)
	_, err := pcu.RunOpt(4, pcu.Options{StallTimeout: -1}, func(ctx *pcu.Ctx) error {
		dm := planWorld(ctx)
		m := dm.Parts[0].M

		r1 := NeighborRanks(dm)
		r2 := NeighborRanks(dm)
		if len(r1) == 0 || len(r2) != len(r1) || &r1[0] != &r2[0] {
			t.Errorf("rank %d: NeighborRanks not served from cache: %v vs %v", ctx.Rank(), r1, r2)
		}
		p1 := m.NeighborParts(0)
		p2 := m.NeighborParts(0)
		if len(p1) == 0 || len(p2) != len(p1) || &p1[0] != &p2[0] {
			t.Errorf("rank %d: NeighborParts not served from cache: %v vs %v", ctx.Rank(), p1, p2)
		}
		if avg := testing.AllocsPerRun(100, func() {
			_ = NeighborRanks(dm)
			_ = m.NeighborParts(0)
		}); avg != 0 {
			t.Errorf("rank %d: cached neighborhood queries: %.1f allocs/op, want 0", ctx.Rank(), avg)
		}

		// A mutation invalidates: the caches recompute to the same
		// logical answer (the mutation is a no-op ownership write).
		var bv mesh.Ent
		for e := range m.PartBoundary(0) {
			bv = e
			break
		}
		m.SetOwner(bv, m.Owner(bv))
		r3 := NeighborRanks(dm)
		p3 := m.NeighborParts(0)
		if len(r3) != len(r1) || len(p3) != len(p1) {
			t.Errorf("rank %d: caches changed answers after no-op mutation", ctx.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
