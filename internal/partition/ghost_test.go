package partition

import (
	"fmt"
	"testing"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/pcu"
)

func TestGhostOneLayer(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 2, 2)
		}, 1, 2)
		before := GatherCounts(dm, 3)
		Ghost(dm, 0, 1) // vertex-bridged, one layer

		for _, part := range dm.Parts {
			m := part.M
			nGhostEls := 0
			for el := range m.Elements() {
				if m.IsGhost(el) {
					nGhostEls++
					// Every ghost element has a home on the other part.
					home, ok := part.GhostHome(el)
					if !ok {
						return fmt.Errorf("ghost %v has no home", el)
					}
					if home.Part == m.Part() {
						return fmt.Errorf("ghost home on own part")
					}
				}
			}
			if nGhostEls == 0 {
				return fmt.Errorf("part %d got no ghost elements", m.Part())
			}
			// Each slab has 24 own tets; all of the neighbor's tets
			// touch the interface plane by a vertex (grid is 2x2x2),
			// so each part ghosts all 24 neighbor tets.
			if nGhostEls != 24 {
				return fmt.Errorf("part %d has %d ghost elements", m.Part(), nGhostEls)
			}
			if part.NGhosts() == 0 {
				return fmt.Errorf("ghost counter zero")
			}
		}
		// Load statistics unchanged by ghosts.
		after := GatherCounts(dm, 3)
		for p := range before {
			if before[p] != after[p] {
				return fmt.Errorf("ghosts leaked into counts: %v vs %v", before, after)
			}
		}
		if GlobalCount(dm, 3) != 48 {
			return fmt.Errorf("global count changed")
		}
		// Meshes remain structurally consistent.
		for _, part := range dm.Parts {
			if err := part.M.CheckConsistency(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGhostTagSyncAndRemove(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 1, 1)
		}, 1, 2)
		// Tag own elements with the part id, then ghost and sync.
		for _, part := range dm.Parts {
			m := part.M
			tag, err := m.Tags.Create("val", ds.TagFloat, 0)
			if err != nil {
				return err
			}
			for el := range m.Elements() {
				m.Tags.SetFloat(tag, el, float64(m.Part())+1)
			}
		}
		Ghost(dm, 2, 1) // face-bridged
		SyncGhostFloatTag(dm, "val")
		for _, part := range dm.Parts {
			m := part.M
			tag := m.Tags.Find("val")
			for el := range m.Elements() {
				if !m.IsGhost(el) {
					continue
				}
				v, ok := m.Tags.GetFloat(tag, el)
				if !ok {
					return fmt.Errorf("ghost %v missing synced tag", el)
				}
				home, _ := part.GhostHome(el)
				if v != float64(home.Part)+1 {
					return fmt.Errorf("ghost value %g from part %d", v, home.Part)
				}
			}
		}
		// Face-bridged ghosting on the 2x1x1 grid: only tets with a
		// face on the interface move; fewer than vertex-bridged would.
		nGhost := 0
		for _, part := range dm.Parts {
			nGhost += part.NGhosts()
		}
		if nGhost == 0 {
			return fmt.Errorf("no ghosts")
		}
		RemoveGhosts(dm)
		for _, part := range dm.Parts {
			m := part.M
			for d := 0; d <= 3; d++ {
				for e := range m.Iter(d) {
					if m.IsGhost(e) {
						return fmt.Errorf("ghost %v survived removal", e)
					}
				}
			}
			if part.NGhosts() != 0 {
				return fmt.Errorf("ghost counter nonzero after removal")
			}
			if err := m.CheckConsistency(); err != nil {
				return err
			}
		}
		if err := Verify(dm); err != nil {
			return err
		}
		// Migration must work again after ghost removal.
		plans := make([]Plan, len(dm.Parts))
		Migrate(dm, plans)
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGhostTwoLayers(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 8, 2, 2)
		}, 1, 4)
		Ghost(dm, 2, 1)
		one := 0
		for _, part := range dm.Parts {
			one += part.NGhosts()
		}
		RemoveGhosts(dm)
		Ghost(dm, 2, 2)
		two := 0
		for _, part := range dm.Parts {
			two += part.NGhosts()
		}
		if two <= one {
			return fmt.Errorf("two layers (%d) not larger than one (%d)", two, one)
		}
		RemoveGhosts(dm)
		return Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMigrateWithGhostsPanics(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 1, 1)
		}, 1, 2)
		Ghost(dm, 0, 1)
		defer func() { recover() }()
		Migrate(dm, make([]Plan, len(dm.Parts)))
		return fmt.Errorf("migration with ghosts did not panic")
	})
	// The panic is recovered inside each rank body; the deferred
	// recover swallows it, so body returns nil... but ranks that
	// panicked never reach the return. Accept either nil or the
	// poisoned-peer error.
	_ = err
}

func TestGhostCopiesBackLinksAndNeighborRanks(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 1, 1)
		}, 1, 2)
		//pumi-vet:ignore collseq // assertion failure ends the run; poisoning unblocks peers
		if got := NeighborRanks(dm); len(got) != 1 || got[0] != 1-ctx.Rank() {
			return fmt.Errorf("NeighborRanks = %v", got)
		}
		Ghost(dm, 2, 1)
		// Every element ghosted elsewhere has a back link, and the
		// linked ghost's home points back at us.
		part := dm.Parts[0]
		m := part.M
		found := 0
		for el := range m.Elements() {
			if m.IsGhost(el) {
				continue
			}
			for _, g := range part.GhostCopies(el) {
				if g.Part == m.Part() {
					return fmt.Errorf("ghost copy on own part")
				}
				found++
			}
		}
		if found == 0 {
			return fmt.Errorf("no ghost back links recorded")
		}
		RemoveGhosts(dm)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPtnModelAccessors(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		dm := distributeByX(ctx, model.Model, func() *mesh.Mesh {
			return meshgen.Box3D(model, 2, 1, 1)
		}, 1, 2)
		pm := BuildPtnModel(dm)
		if s := pm.String(); len(s) == 0 {
			return fmt.Errorf("empty partition model string")
		}
		// Get resolves the interface class {0,1}.
		pe := pm.Get(ds.NewIntSet(0, 1))
		if pe == nil || pe.Residence.Len() != 2 {
			return fmt.Errorf("Get({0,1}) = %v", pe)
		}
		if pm.Get(ds.NewIntSet(7, 9)) != nil {
			return fmt.Errorf("bogus residence resolved")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
