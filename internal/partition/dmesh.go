// Package partition implements PUMI's distributed mesh: parts assigned
// to processes, part-boundary entities duplicated across parts with
// remote-copy links, the partition model classifying boundary entities
// by residence part set, and the distributed manipulation services built
// on them — mesh migration, ghosting, multiple parts per process, and
// distributed verification.
//
// Entity identity across parts is tracked with 64-bit global ids
// maintained by this layer through mesh lifecycle hooks; migration and
// ghosting stitch remote copies by global id. Ids of entities created
// after initial numbering embed the creating part, so they stay unique
// without communication.
package partition

import (
	"fmt"
	"sort"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/telemetry"
)

// freshGidBase is the bit position above which part-scoped id ranges
// live: initial serial numbering stays below 1<<freshGidBase.
const freshGidBase = 40

// Part is one mesh part plus the bookkeeping the distribution layer
// needs: global ids per entity and the reverse index.
type Part struct {
	M *mesh.Mesh

	gids    [mesh.TypeCount][]int64
	byGid   [4]map[int64]mesh.Ent
	counter int64

	// Ghost bookkeeping: local ghost element -> its home copy, and
	// local element -> its ghost copies on other parts.
	nGhosts   int
	ghostHome map[mesh.Ent]mesh.RemoteCopyRef
	ghostsOf  map[mesh.Ent][]mesh.RemoteCopyRef
}

func newPart(m *mesh.Mesh) *Part {
	p := &Part{
		M:         m,
		ghostHome: map[mesh.Ent]mesh.RemoteCopyRef{},
		ghostsOf:  map[mesh.Ent][]mesh.RemoteCopyRef{},
	}
	for d := range p.byGid {
		p.byGid[d] = map[int64]mesh.Ent{}
	}
	m.OnDestroy(func(e mesh.Ent) { p.dropGid(e) })
	m.OnCreate(func(e mesh.Ent) { p.setGid(e, p.freshGid()) })
	if san.Enabled() {
		m.SetGuard(san.NewMeshGuard())
	}
	return p
}

// suspendGuards opens a pumi-san sanctioned-write window on every local
// part and returns the closer. The distributed protocols (migration
// commit, checkpoint restitching, owner-to-copy synchronization) use it
// around the steps that legitimately write to entities the writing part
// does not own.
// The resume functions collect into a slice reused across calls, and
// the returned closer is built once, so the steady-state hot paths
// (planned sync rounds) stay allocation-free. Windows from nested
// suspendGuards calls close in LIFO order like before, because the
// shared closer pops only the functions its own call pushed.
func (dm *DMesh) suspendGuards() func() {
	if dm.resumeAll == nil {
		dm.resumeAll = func() {
			for i := len(dm.resume) - 1; i >= len(dm.resume)-len(dm.Parts); i-- {
				dm.resume[i]()
			}
			dm.resume = dm.resume[:len(dm.resume)-len(dm.Parts)]
		}
	}
	for _, p := range dm.Parts {
		dm.resume = append(dm.resume, p.M.SuspendGuard())
	}
	return dm.resumeAll
}

// Gid returns e's global id (-1 if never assigned).
func (p *Part) Gid(e mesh.Ent) int64 {
	s := p.gids[e.T]
	if int(e.I) >= len(s) {
		return -1
	}
	return s[e.I]
}

// FindGid resolves a global id of the given dimension to the local
// entity, if this part holds a copy.
func (p *Part) FindGid(dim int, gid int64) (mesh.Ent, bool) {
	e, ok := p.byGid[dim][gid]
	return e, ok
}

func (p *Part) setGid(e mesh.Ent, gid int64) {
	s := p.gids[e.T]
	for int(e.I) >= len(s) {
		s = append(s, -1)
	}
	if old := s[e.I]; old >= 0 {
		delete(p.byGid[e.Dim()], old)
	}
	s[e.I] = gid
	p.gids[e.T] = s
	p.byGid[e.Dim()][gid] = e
}

func (p *Part) dropGid(e mesh.Ent) {
	s := p.gids[e.T]
	if int(e.I) < len(s) && s[e.I] >= 0 {
		delete(p.byGid[e.Dim()], s[e.I])
		s[e.I] = -1
	}
}

// freshGid allocates a new globally unique id scoped to this part.
func (p *Part) freshGid() int64 {
	p.counter++
	return (int64(p.M.Part()+1) << freshGidBase) | p.counter
}

// assignSerialGids numbers all current entities 0..n-1 per dimension
// (used on a freshly generated serial mesh).
func (p *Part) assignSerialGids() {
	for d := 0; d <= p.M.Dim(); d++ {
		var next int64
		for e := range p.M.Iter(d) {
			p.setGid(e, next)
			next++
		}
	}
}

// DMesh is a distributed mesh: the local parts of this rank plus the
// global layout. Parts are laid out in contiguous blocks of K per rank
// (multiple parts per process), so part p lives on rank p/K.
type DMesh struct {
	Ctx   *pcu.Ctx
	Model *gmi.Model
	Dim   int
	K     int // parts per rank
	Parts []*Part

	// Compiled boundary-exchange plans (plan.go), cached against the
	// parts' topology epochs, plus the scratch the planned execution
	// path reuses so steady-state rounds do not allocate.
	plans     map[dimsKey]*BoundaryPlan
	ghostPlan *ghostSyncPlan
	payload   pcu.Buffer
	sub       pcu.Reader

	// execNs is the plan-execution latency series, resolved lazily on
	// the first metered execPlan round and nil for unmetered runs, so
	// the steady-state path pays two nil checks and no mutex.
	execNs *telemetry.Histogram

	// nbRanks caches NeighborRanks against the parts' epochs.
	nbRanks    []int
	nbEpochs   []uint64
	nbRanksSet bool

	// resume and resumeAll are suspendGuards scratch, reused per call.
	resume    []func()
	resumeAll func()
}

// New creates a distributed mesh with k empty parts on every rank.
func New(ctx *pcu.Ctx, model *gmi.Model, dim, k int) *DMesh {
	if k < 1 {
		panic(fmt.Sprintf("partition: parts per rank %d < 1", k))
	}
	dm := &DMesh{Ctx: ctx, Model: model, Dim: dim, K: k}
	for i := 0; i < k; i++ {
		m := mesh.New(model, dim)
		m.SetPart(int32(ctx.Rank()*k + i))
		dm.Parts = append(dm.Parts, newPart(m))
	}
	return dm
}

// Adopt builds a distributed mesh whose part 0 is an existing serial
// mesh and whose remaining parts start empty. Rank 0 passes the serial
// mesh (its part id is overwritten and global ids are assigned); all
// other ranks pass nil. Every rank must pass an equivalent model —
// the analytic model builders are deterministic, so each rank simply
// constructs its own instance.
func Adopt(ctx *pcu.Ctx, model *gmi.Model, dim int, serial *mesh.Mesh, k int) *DMesh {
	dm := New(ctx, model, dim, k)
	if ctx.Rank() == 0 {
		if serial == nil {
			panic("partition: rank 0 must provide the serial mesh")
		}
		serial.SetPart(0)
		p := newPart(serial)
		p.assignSerialGids()
		dm.Parts[0] = p
	}
	return dm
}

// NParts returns the global part count.
func (dm *DMesh) NParts() int { return dm.Ctx.Size() * dm.K }

// Meshes returns the local part meshes in part order — the argument
// list for mesh.VerifyParallel.
func (dm *DMesh) Meshes() []*mesh.Mesh {
	ms := make([]*mesh.Mesh, len(dm.Parts))
	for i, p := range dm.Parts {
		ms[i] = p.M
	}
	return ms
}

// Verify runs the full distributed verification (collective): the
// gid-based CheckDistributed plus the link-symmetry VerifyParallel of
// the mesh layer. Parallel test paths end with this.
func Verify(dm *DMesh) error {
	if err := CheckDistributed(dm); err != nil {
		return err
	}
	return mesh.VerifyParallel(dm.Ctx, dm.Meshes()...)
}

// RankOf returns the rank hosting the given part.
func (dm *DMesh) RankOf(part int32) int { return int(part) / dm.K }

// LocalPart returns the local Part with the given global part id; it
// panics if the part lives on another rank.
func (dm *DMesh) LocalPart(part int32) *Part {
	r := dm.RankOf(part)
	if r != dm.Ctx.Rank() {
		panic(fmt.Sprintf("partition: part %d lives on rank %d, not %d", part, r, dm.Ctx.Rank()))
	}
	return dm.Parts[int(part)-r*dm.K]
}

// partWriter accumulates one part-to-part payload.
type partWriter struct {
	to, from int32
	buf      pcu.Buffer
}

// phase batches part-to-part messages for one communication phase.
type phase struct {
	dm      *DMesh
	writers map[[2]int32]*partWriter
}

// beginPhase starts a part-addressed communication phase.
func (dm *DMesh) beginPhase() *phase {
	return &phase{dm: dm, writers: map[[2]int32]*partWriter{}}
}

// to returns the buffer for messages from one local part to any part
// (local or remote).
func (ph *phase) to(fromPart, toPart int32) *pcu.Buffer {
	key := [2]int32{fromPart, toPart}
	w := ph.writers[key]
	if w == nil {
		w = &partWriter{to: toPart, from: fromPart}
		ph.writers[key] = w
	}
	return &w.buf
}

// partMsg is one received part-to-part payload.
type partMsg struct {
	From, To int32
	Data     *pcu.Reader
}

// exchange completes the phase: all buffered messages are delivered and
// the messages addressed to this rank's parts are returned sorted by
// (To, From). Collective across ranks.
func (ph *phase) exchange() []partMsg {
	dm := ph.dm
	keys := make([][2]int32, 0, len(ph.writers))
	for k := range ph.writers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		w := ph.writers[k]
		b := dm.Ctx.To(dm.RankOf(w.to))
		b.Int32(w.from)
		b.Int32(w.to)
		b.Bytes(w.buf.Raw())
	}
	msgs := dm.Ctx.Exchange()
	var out []partMsg
	for _, m := range msgs {
		for !m.Data.Empty() {
			from := m.Data.Int32()
			to := m.Data.Int32()
			payload := m.Data.BytesVal()
			out = append(out, partMsg{From: from, To: to, Data: pcu.NewReader(payload)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return out[i].To < out[j].To
		}
		return out[i].From < out[j].From
	})
	return out
}
